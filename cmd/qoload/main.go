// Command qoload is QO-Advisor's open-loop load harness. It drives the
// rank+reward steering loop against a serving cluster through a
// multi-phase traffic plan (constant, linear ramp, diurnal sinusoid,
// flash crowd) with a heavy-tailed Zipf template mix, measures every
// op's latency from its *scheduled* send time — so server stalls widen
// the measured tail instead of silently thinning the arrival stream
// (coordinated omission) — and writes a BENCH_load.json report with
// p50/p90/p99/p999, goodput, and the typed-error breakdown per phase.
//
// After the run it scrapes /v2/stats from every endpoint and embeds the
// fleet-merged view (internal/fleet), so the report shows both what the
// harness observed and what the cluster accounted.
//
// Usage:
//
//	qoload -cluster http://h1:8080,http://h2:8081 \
//	       [-phases "steady:30s@400,ramp:60s@100..2000,crowd:30s@200!1500"] \
//	       [-batch 16] [-workers 64] [-templates 64] [-zipf 1.3] \
//	       [-seed 1] [-timeout 30s] [-no-rewards] [-out BENCH_load.json]
//
//	qoload -selfhost [-stall 600ms] [-incident-dir DIR] [...]
//
// -selfhost spins a sync-mode WAL primary plus one tailing follower on
// loopback listeners and aims the run at that two-node cluster — the CI
// load-smoke path, and the only mode where -stall works: it injects a
// one-shot WAL fsync stall mid-run and appends an open-loop vs
// closed-loop comparison arm to the report, demonstrating the
// coordinated-omission gap on a live stall.
//
// -incident-dir (selfhost only) enables the primary's incident engine,
// so a -stall run also exercises the burn→capture path: the stalled
// fsync burns the reward-latency SLO, the engine captures a diagnostic
// bundle into the directory, and the report gains an incidents block
// (bundle count, last reason, retained-trace count, longest retained
// trace) that CI's incident-smoke step asserts on.
//
// -fleet-check exits nonzero unless the run ranked jobs (goodput > 0)
// and the fleet-merged histogram count equals the sum of the per-node
// counts — the merge invariant CI pins on every push.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api/client"
	"qoadvisor/internal/fleet"
	"qoadvisor/internal/load"
	"qoadvisor/internal/replicate"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/wal"
)

func main() {
	clusterFlag := flag.String("cluster", "", "comma-separated endpoint list to load (primary first is conventional, not required)")
	selfhost := flag.Bool("selfhost", false, "spin an in-process sync-WAL primary + follower pair on loopback and load that")
	stall := flag.Duration("stall", 0, "with -selfhost: inject a one-shot WAL fsync stall of this length and run the open-vs-closed comparison arm")
	incidentDir := flag.String("incident-dir", "", "with -selfhost: enable incident capture on the primary, writing diagnostic bundles to this directory")
	phasesFlag := flag.String("phases", "steady:10s@200,ramp:10s@50..500,crowd:10s@100!800",
		"load plan: name:dur@rate phases; rate forms: 500 (const), 100..2000 (ramp), 200~800 (diurnal), 100!2000 (flash)")
	batch := flag.Int("batch", 16, "jobs per scheduled op")
	workers := flag.Int("workers", 64, "max concurrent in-flight ops")
	templates := flag.Int("templates", 64, "synthetic template population size")
	zipfS := flag.Float64("zipf", 1.3, "Zipf skew over the template population (> 1)")
	seed := flag.Int64("seed", 1, "workload seed (template population + mix)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-op timeout")
	noRewards := flag.Bool("no-rewards", false, "skip reward follow-ups (rank-only ops)")
	out := flag.String("out", "BENCH_load.json", "report output path (empty = stdout only)")
	fleetCheck := flag.Bool("fleet-check", false, "exit nonzero unless goodput > 0 and fleet count == Σ node counts")
	flag.Parse()

	phases, err := load.ParsePhases(*phasesFlag)
	if err != nil {
		fatal(err)
	}

	var endpoints []string
	var primaryWAL *wal.WAL
	switch {
	case *selfhost:
		var cleanup func()
		endpoints, primaryWAL, cleanup, err = startSelfhost(*seed, *incidentDir)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
	case *clusterFlag != "":
		endpoints = strings.Split(*clusterFlag, ",")
		for i := range endpoints {
			endpoints[i] = strings.TrimSpace(endpoints[i])
		}
	default:
		fatal(fmt.Errorf("one of -cluster or -selfhost is required"))
	}
	if *stall > 0 && primaryWAL == nil {
		fatal(fmt.Errorf("-stall requires -selfhost (it injects faults into the in-process primary's WAL)"))
	}
	if *incidentDir != "" && !*selfhost {
		fatal(fmt.Errorf("-incident-dir requires -selfhost (it configures the in-process primary)"))
	}

	target, err := client.NewCluster(endpoints, client.WithTimeout(*timeout))
	if err != nil {
		fatal(err)
	}
	cfg := load.Config{
		Target:    target,
		Templates: *templates,
		ZipfS:     *zipfS,
		Batch:     *batch,
		Workers:   *workers,
		Timeout:   *timeout,
		NoRewards: *noRewards,
		Seed:      *seed,
	}
	runner := load.NewRunner(cfg)

	report := load.Report{
		Target:    strings.Join(endpoints, ","),
		Seed:      *seed,
		Batch:     *batch,
		Workers:   *workers,
		Templates: *templates,
		ZipfS:     *zipfS,
	}
	ctx := context.Background()
	var totalRanked int64
	for _, p := range phases {
		fmt.Fprintf(os.Stderr, "phase %-10s %-8s %v @ %.0f", p.Name, p.Shape, p.Duration, p.Low)
		if p.Shape != load.ShapeConstant {
			fmt.Fprintf(os.Stderr, "→%.0f", p.High)
		}
		fmt.Fprintln(os.Stderr, " ops/s")
		res := runner.RunPhase(ctx, p)
		pr := load.Summarize(res)
		report.Phases = append(report.Phases, pr)
		totalRanked += res.RankedJobs
		fmt.Fprintf(os.Stderr, "  %d/%d ops, %d jobs ranked, goodput %.0f jobs/s, p50 %.2fms p99 %.2fms p999 %.2fms, errors %v\n",
			pr.CompletedOps, pr.OfferedOps, pr.RankedJobs, pr.GoodputJobsPerSec, pr.P50Ms, pr.P99Ms, pr.P999Ms, pr.Errors)
	}

	if *stall > 0 {
		report.Stall = runStallArm(ctx, cfg, endpoints[0], primaryWAL, *stall)
	}

	snap := fleet.Scrape(ctx, endpoints, client.WithTimeout(*timeout))
	snap.Render(os.Stderr)
	report.Fleet = load.FleetReportFrom(snap)

	if *incidentDir != "" {
		report.Incidents = scrapeIncidents(ctx, endpoints[0], *timeout)
		fmt.Fprintf(os.Stderr, "incidents: %d bundles (last %s %s), %d retained traces, max %.1fms\n",
			report.Incidents.Bundles, report.Incidents.LastReason, report.Incidents.LastID,
			report.Incidents.RetainedTraces, report.Incidents.MaxTraceMs)
	}

	if *out != "" {
		buf, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\nreport: %s\n", *out)
	} else {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
	}

	if *fleetCheck {
		switch {
		case totalRanked == 0:
			fatal(fmt.Errorf("fleet-check: zero jobs ranked"))
		case report.Fleet.RankFleetCount == 0:
			fatal(fmt.Errorf("fleet-check: fleet-merged rank histogram is empty"))
		case report.Fleet.RankFleetCount != report.Fleet.RankNodeSum:
			fatal(fmt.Errorf("fleet-check: fleet count %d != Σ node counts %d",
				report.Fleet.RankFleetCount, report.Fleet.RankNodeSum))
		}
		fmt.Fprintf(os.Stderr, "fleet-check: ok (%d ranks merged across %d nodes)\n",
			report.Fleet.RankFleetCount, snap.Reachable())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoload:", err)
	os.Exit(1)
}

// scrapeIncidents condenses the primary's /v2/incidents and /v2/traces
// answers into the report's incidents block. Best-effort: a failed
// scrape leaves the corresponding fields zero instead of failing the
// run — the CI smoke's assertions then fail with the report in hand.
func scrapeIncidents(ctx context.Context, primaryURL string, timeout time.Duration) *load.IncidentReport {
	cl := client.New(primaryURL, client.WithTimeout(timeout))
	ir := &load.IncidentReport{}
	if inc, err := cl.Incidents(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qoload: incidents scrape failed: %v\n", err)
	} else {
		ir.Bundles = len(inc.Incidents)
		if len(inc.Incidents) > 0 {
			ir.LastID = inc.Incidents[0].ID
			ir.LastReason = inc.Incidents[0].Reason
		}
	}
	if tr, err := cl.Traces(ctx, client.TracesOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "qoload: traces scrape failed: %v\n", err)
	} else {
		ir.RetainedTraces = len(tr.Traces)
		for _, t := range tr.Traces {
			if ms := float64(t.DurMicros) / 1e3; ms > ir.MaxTraceMs {
				ir.MaxTraceMs = ms
			}
		}
	}
	return ir
}

// startSelfhost spins the in-process two-node cluster: a sync-mode
// WAL primary and one tailing follower, each on its own loopback
// listener. Returns the endpoints (primary first), the primary's WAL
// for fault injection, and a cleanup closing everything in order.
// A non-empty incidentDir enables incident capture on the primary
// with stock thresholds, so an injected stall exercises the real
// burn→capture path end to end.
func startSelfhost(seed int64, incidentDir string) (endpoints []string, j *wal.WAL, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "qoload-wal-*")
	if err != nil {
		return nil, nil, nil, err
	}
	j, err = wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	pCfg := serve.Config{Seed: seed, WAL: j}
	if incidentDir != "" {
		pCfg.Incidents = &serve.IncidentConfig{Dir: incidentDir}
	}
	primary := serve.New(pCfg)
	pURL, pStop, err := listenAndServe(primary)
	if err != nil {
		primary.Close()
		j.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}

	follower, err := replicate.Start(replicate.Config{Primary: pURL, Seed: seed})
	if err != nil {
		pStop()
		primary.Close()
		j.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	fURL, fStop, err := listenAndServe(follower)
	if err != nil {
		follower.Close()
		pStop()
		primary.Close()
		j.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := follower.WaitCaughtUp(ctx, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "qoload: follower slow to catch up: %v (continuing)\n", err)
	}

	fmt.Fprintf(os.Stderr, "selfhost: primary %s (sync WAL %s), follower %s\n", pURL, dir, fURL)
	cleanup = func() {
		fStop()
		follower.Close()
		pStop()
		primary.Close()
		j.Close()
		os.RemoveAll(dir)
	}
	return []string{pURL, fURL}, j, cleanup, nil
}

// listenAndServe serves handler on a fresh loopback port, returning
// its base URL and a stop closure.
func listenAndServe(handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runStallArm runs the injected-stall comparison: the same constant
// workload measured open-loop and then closed-loop against the
// primary, each with an identical one-shot fsync stall armed mid-run.
// The two p99s side by side are the coordinated-omission story.
func runStallArm(ctx context.Context, cfg load.Config, primaryURL string, j *wal.WAL, stall time.Duration) *load.StallReport {
	fmt.Fprintf(os.Stderr, "stall arm: one-shot %v fsync stall, open-loop then closed-loop\n", stall)
	armCfg := cfg
	armCfg.Target = client.New(primaryURL, client.WithTimeout(cfg.Timeout))
	armCfg.Batch = 2

	open := load.NewRunner(armCfg)
	armStall(j, 300*time.Millisecond, stall)
	openRes := open.RunPhase(ctx, load.Phase{
		Name: "stall-open", Shape: load.ShapeConstant, Duration: 4 * stall / 2, Low: 200,
	})
	j.SetFaults(nil)

	closed := load.NewRunner(armCfg)
	armStall(j, 300*time.Millisecond, stall)
	closedRes := closed.RunClosedLoopN(ctx, 400, 1)
	j.SetFaults(nil)

	or, cr := load.Summarize(openRes), load.Summarize(closedRes)
	fmt.Fprintf(os.Stderr, "  open-loop   p99 %8.2fms over %d ops (stall visible)\n", or.P99Ms, or.CompletedOps)
	fmt.Fprintf(os.Stderr, "  closed-loop p99 %8.2fms over %d ops (coordinated omission hides it)\n", cr.P99Ms, cr.CompletedOps)
	return &load.StallReport{
		StallMs:    float64(stall) / float64(time.Millisecond),
		OpenLoop:   or,
		ClosedLoop: cr,
	}
}

// armStall installs a one-shot fsync stall that fires once the arm is
// `after` old.
func armStall(j *wal.WAL, after, stall time.Duration) {
	start := time.Now()
	var fired atomic.Bool
	j.SetFaults(&wal.Faults{SyncDelay: func() time.Duration {
		if time.Since(start) >= after && fired.CompareAndSwap(false, true) {
			return stall
		}
		return 0
	}})
}
