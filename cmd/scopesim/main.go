// Command scopesim compiles, optimizes and (optionally) executes a single
// SCOPE script on the simulator, printing the logical DAG, the physical
// plan, the rule signature and the job span — the developer's view into
// the steering surface QO-Advisor operates on.
//
// Usage:
//
//	scopesim [-run] [-span] [-flip +R123|-R045] [-tokens N] script.scope
//	scopesim -demo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
	spanpkg "qoadvisor/internal/span"
)

const demoScript = `// Demo: click analysis joined with a user dimension.
logs  = EXTRACT uid:long, page:string, dur:int, score:double FROM "store/logs_20211103.tsv";
users = EXTRACT uid:long, region:string FROM "store/users.tsv";
clicks = SELECT uid, page, dur FROM logs WHERE dur > 100 AND score >= 0.5;
joined = SELECT l.uid, l.dur, u.region
         FROM clicks AS l JOIN users AS u ON l.uid == u.uid;
agg = SELECT region, COUNT(*) AS cnt, SUM(dur) AS total
      FROM joined GROUP BY region HAVING COUNT(*) > 10
      ORDER BY total DESC TOP 100;
OUTPUT agg TO "out/agg.tsv";
`

func main() {
	runIt := flag.Bool("run", false, "execute the plan on the cluster simulator")
	showSpan := flag.Bool("span", false, "compute and print the job span")
	flipStr := flag.String("flip", "", "apply a single rule flip, e.g. +R123 or -R045")
	tokens := flag.Int("tokens", 0, "parallelism budget (0 = default)")
	demo := flag.Bool("demo", false, "use the built-in demo script")
	flag.Parse()

	var src string
	switch {
	case *demo:
		src = demoScript
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatalf("scopesim: %v", err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: scopesim [-run] [-span] [-flip +R123] <script.scope> | -demo")
		os.Exit(2)
	}

	graph, err := scope.CompileScript(src)
	if err != nil {
		log.Fatalf("scopesim: %v", err)
	}
	fmt.Println("=== logical DAG ===")
	fmt.Print(graph)
	fmt.Printf("template hash: %016x\n\n", graph.TemplateHash())

	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	if *flipStr != "" {
		flip, err := rules.ParseFlip(*flipStr)
		if err != nil {
			log.Fatalf("scopesim: %v", err)
		}
		r := cat.Rule(flip.RuleID)
		fmt.Printf("applying flip %s (%s, %s)\n\n", flip, r.Name, r.Category)
		cfg = cfg.WithFlip(flip)
	}

	// Demo statistics: every table defaults to 1M rows unless known.
	stats := optimizer.MapStats{
		"store/logs_20211103.tsv": {Rows: 5e6, NDV: map[string]float64{"uid": 1e5, "page": 5000, "dur": 2000}},
		"store/users.tsv":         {Rows: 1e5, NDV: map[string]float64{"uid": 1e5, "region": 50}},
	}
	opts := optimizer.Options{Catalog: cat, Stats: stats, Tokens: *tokens}

	res, err := optimizer.Optimize(graph, cfg, opts)
	if err != nil {
		log.Fatalf("scopesim: %v", err)
	}
	fmt.Println("=== physical plan ===")
	fmt.Print(res.Plan)
	fmt.Printf("estimated cost: %.4g, estimated vertices: %d\n", res.EstCost, res.Plan.EstVertices)

	fired := res.Signature.Bits()
	fmt.Printf("\n=== rule signature (%d rules fired) ===\n", len(fired))
	for _, id := range fired {
		r := cat.Rule(id)
		fmt.Printf("  R%03d %-32s %s\n", r.ID, r.Name, r.Category)
	}

	if *showSpan {
		sp, err := spanpkg.Compute(graph, cat, spanpkg.Options{Optimizer: opts})
		if err != nil {
			log.Fatalf("scopesim: span: %v", err)
		}
		bits := sp.Span.Bits()
		fmt.Printf("\n=== job span (%d plan-affecting rules, %d iterations) ===\n", len(bits), sp.Iterations)
		for _, id := range bits {
			r := cat.Rule(id)
			fmt.Printf("  R%03d %-32s %s\n", r.ID, r.Name, r.Category)
		}
	}

	if *runIt {
		truth := &exec.Truth{JitterSeed: 7}
		m := exec.Run(res.Plan, truth, stats, exec.DefaultCluster(1), 1)
		fmt.Println("\n=== simulated execution ===")
		fmt.Printf("latency:      %.1f s\n", m.LatencySec)
		fmt.Printf("PNhours:      %.4f\n", m.PNHours)
		fmt.Printf("vertices:     %d\n", m.Vertices)
		fmt.Printf("data read:    %.1f MB\n", m.DataRead/1e6)
		fmt.Printf("data written: %.1f MB\n", m.DataWritten/1e6)
		fmt.Printf("max memory:   %.1f MB\n", m.MaxMemory/1e6)
	}
}
