// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the simulated SCOPE substrate and prints the
// same rows and series the paper reports. See EXPERIMENTS.md for the
// paper-versus-measured record.
//
// Usage:
//
//	experiments [-scale quick|full] [-only fig2,fig3,...,table2,table3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"qoadvisor/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated subset (fig2..fig12, table2, table3)")
	flag.Parse()

	cfg := experiments.Quick
	if *scale == "full" {
		cfg = experiments.Full
	}
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }

	fmt.Printf("QO-Advisor experiment reproduction (scale=%s, %d templates, seed %d)\n\n",
		*scale, cfg.NumTemplates, cfg.Seed)

	if run("fig2") {
		figure2(lab)
	}
	if run("fig3") {
		figure3(lab)
	}
	if run("fig4") {
		figure4(lab)
	}
	if run("fig5") {
		figure5(lab)
	}
	if run("fig6") {
		figure6(lab)
	}
	if run("fig7") || run("fig8") {
		figures78(lab, run)
	}
	if run("fig9") {
		figure9(lab)
	}
	if run("table2") || run("fig10") || run("fig11") || run("fig12") {
		table2(lab)
	}
	if run("table3") {
		table3(lab)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

func figure2(lab *experiments.Lab) {
	res, err := lab.Stability("latency")
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 2: recurring job stability (latency) ===")
	fmt.Printf("jobs measured: %d\n", len(res.Points))
	fmt.Printf("jobs with week-0 latency improvement: %s\n", experiments.FormatPct(res.FracImproved))
	fmt.Printf("improved jobs regressing in week 1:   %s   (paper: >40%%)\n\n", experiments.FormatPct(res.FracRegressed))
}

func figure3(lab *experiments.Lab) {
	res, err := lab.Variance("latency")
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 3: A/A latency variance ===")
	fmt.Printf("jobs: %d (x%d runs)\n", len(res.Points), lab.Cfg.AARuns)
	fmt.Printf("jobs above 5%% latency variance: %s   (paper: >90%%)\n", experiments.FormatPct(res.FracAbove5))
	fmt.Printf("median CV %.3f, max CV %.2f\n\n", res.MedianCV, res.MaxCV)
}

func figure4(lab *experiments.Lab) {
	res, err := lab.Stability("pnhours")
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 4: recurring job stability (PNhours) ===")
	fmt.Printf("jobs measured: %d\n", len(res.Points))
	fmt.Printf("jobs with week-0 PNhours improvement: %s\n", experiments.FormatPct(res.FracImproved))
	fmt.Printf("improved jobs regressing in week 1:   %s   (paper: >40%%)\n\n", experiments.FormatPct(res.FracRegressed))
}

func figure5(lab *experiments.Lab) {
	res, err := lab.Variance("pnhours")
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 5: A/A PNhours variance ===")
	fmt.Printf("jobs: %d (x%d runs)\n", len(res.Points), lab.Cfg.AARuns)
	fmt.Printf("jobs above 5%% PNhours variance: %s   (paper: <50%%)\n", experiments.FormatPct(res.FracAbove5))
	fmt.Printf("median CV %.3f, max CV %.2f\n\n", res.MedianCV, res.MaxCV)
}

func figure6(lab *experiments.Lab) {
	res, err := lab.CostVsLatency()
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 6: estimated-cost delta vs latency delta ===")
	fmt.Printf("flighted jobs: %d over 5 days\n", len(res.Observations))
	fmt.Printf("Pearson %.3f, Spearman %.3f   (paper: no real correlation)\n", res.Pearson, res.Spearman)
	fmt.Printf("cost-improved jobs with latency regression: %s   (paper: >40%%)\n\n",
		experiments.FormatPct(res.FracRegressedAmongImproved))
}

func figures78(lab *experiments.Lab, run func(string) bool) {
	if run("fig7") {
		res, err := lab.IOCorrelation("read")
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Figure 7: DataRead delta vs PNhours delta ===")
		fmt.Printf("observations: %d, Pearson %.3f, trend slope %.3f   (paper: positive trend)\n\n",
			len(res.Observations), res.Pearson, res.TrendSlope)
	}
	if run("fig8") {
		res, err := lab.IOCorrelation("written")
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Figure 8: DataWritten delta vs PNhours delta ===")
		fmt.Printf("observations: %d, Pearson %.3f, trend slope %.3f   (paper: positive trend)\n\n",
			len(res.Observations), res.Pearson, res.TrendSlope)
	}
}

func figure9(lab *experiments.Lab) {
	res, err := lab.ValidationAccuracy()
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Figure 9: validation model accuracy (temporal split) ===")
	fmt.Printf("train/test samples: %d/%d, threshold %.2f\n", res.TrainSamples, res.TestSamples, res.Threshold)
	fmt.Printf("model: %s (test R^2 %.2f)\n", res.Model, res.RSquaredOnTest)
	fmt.Printf("accepted (predicted < threshold): %d\n", res.AcceptedCount)
	fmt.Printf("  of which actual < threshold: %s   (paper: 85%%)\n", experiments.FormatPct(res.FracActualBelowT))
	fmt.Printf("  of which actual < 0:         %s   (paper: 91%%)\n\n", experiments.FormatPct(res.FracActualBelow0))
}

func table2(lab *experiments.Lab) {
	res, err := lab.Aggregate(8)
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Table 2: pre-production aggregate results ===")
	fmt.Printf("training days: %d, matched jobs on evaluation day: %d of %d\n",
		res.TrainingDays, res.MatchedJobs, res.TotalJobs)
	fmt.Printf("%-10s %12s %12s\n", "Metric", "%Reduction", "(paper)")
	fmt.Printf("%-10s %12s %12s\n", "PNhours", experiments.FormatPct(res.PNHoursReduction), "-14.3%")
	fmt.Printf("%-10s %12s %12s\n", "Latency", experiments.FormatPct(res.LatencyReduction), "-8.9%")
	fmt.Printf("%-10s %12s %12s\n\n", "Vertices", experiments.FormatPct(res.VerticesReduction), "-52.8%")

	fmt.Println("=== Figure 10: per-job PNhours delta (sorted) ===")
	printSeries(res.SortedDeltas("pnhours"))
	fmt.Printf("improved: %s, best %s, worst %s   (paper: ~80%%, -50%%, +15%%)\n\n",
		experiments.FormatPct(res.FracPNImproved), experiments.FormatPct(res.BestPNDelta), experiments.FormatPct(res.WorstPNDelta))

	fmt.Println("=== Figure 11: per-job latency delta (sorted) ===")
	printSeries(res.SortedDeltas("latency"))
	fmt.Printf("improved: %s, best %s, worst %s   (paper: ~80%%, -90%%, +45%%)\n\n",
		experiments.FormatPct(res.FracLatencyImproved), experiments.FormatPct(res.BestLatencyDelta), experiments.FormatPct(res.WorstLatencyDelta))

	fmt.Println("=== Figure 12: per-job vertices delta (sorted) ===")
	printSeries(res.SortedDeltas("vertices"))
	fmt.Printf("best %s, worst %s   (paper: -60%%, +10%%)\n\n",
		experiments.FormatPct(res.BestVertexDelta), experiments.FormatPct(res.WorstVertexDelta))
}

func printSeries(xs []float64) {
	if len(xs) == 0 {
		fmt.Println("  (no matched jobs)")
		return
	}
	fmt.Print("  ")
	for i, x := range xs {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%+.2f", x)
	}
	fmt.Println()
}

func table3(lab *experiments.Lab) {
	res, err := lab.Table3(10)
	if err != nil {
		fatal(err)
	}
	fmt.Println("=== Table 3: random vs contextual-bandit rule flips ===")
	fmt.Printf("jobs: %d (non-empty span: %s; paper: ~66%%), CB trained %d days off-policy\n",
		res.JobsConsidered, experiments.FormatPct(res.NonEmptySpanFrac), res.TrainingDays)
	row := func(r experiments.Table3Row, total float64) {
		n := float64(res.JobsConsidered)
		fmt.Printf("%-18s lower=%3d (%4.1f%%)  equal=%3d (%4.1f%%)  higher=%3d (%4.1f%%)  failures=%3d (%4.1f%%)  total-cost=%.3g\n",
			r.Label, r.LowerCost, 100*float64(r.LowerCost)/n, r.EqualCost, 100*float64(r.EqualCost)/n,
			r.HigherCost, 100*float64(r.HigherCost)/n, r.Failures, 100*float64(r.Failures)/n, total)
	}
	row(res.Random, res.RandomTotalCost)
	row(res.CB, res.CBTotalCost)
	fmt.Printf("(paper: random 10.6%%/35.4%%/36.0%%/18.0%%, CB 34.5%%/32.1%%/19.5%%/13.9%%, total 1.7e11 vs 1.0e9)\n")
}
