// Command qoserved runs QO-Advisor's online steering service: an HTTP
// Rank/Reward server backed by a sharded hint cache and an asynchronous
// reward-ingestion pipeline.
//
// On startup it can bootstrap itself end-to-end by running the offline
// daily pipeline for a few simulated days — producing a validated hint
// table and a trained bandit — and then serves both: cached hints answer
// steering queries for known templates, the bandit ranks everything else,
// and /v1/reward telemetry trains the model continuously off the request
// path. On SIGINT/SIGTERM the server drains the reward queue and, when
// -model is set, persists the learner so a restart resumes from the
// learned state.
//
// With -wal-dir set the server runs durably: every rank decision,
// accepted reward batch, and hint-table rollover is journaled to a
// segmented write-ahead log (group-commit fsync per -wal-sync), a
// checkpoint ticker (-snapshot-every) snapshots the model with its
// covering WAL offset and truncates sealed segments, and startup
// replays the journal suffix above the snapshot watermark — so a
// crash loses at most the last unsynced group-commit window instead
// of every reward since boot. A WAL-backed server is also a
// replication primary: followers bootstrap from GET /v2/wal/snapshot
// and tail GET /v2/wal.
//
// With -follow set the server runs as a read-scaled follower instead:
// it bootstraps a replica of the primary's learner and hint table,
// tails the primary's WAL to stay current, serves /v2/rank (greedy,
// deterministic), /v2/healthz and /v2/stats locally, and rejects
// writes with a structured not_primary error carrying the primary's
// URL. If the primary compacts past the follower's position, the
// follower re-bootstraps on its own.
//
// Usage:
//
//	qoserved [-addr :8080] [-bootstrap-days 5] [-templates 24] [-seed 42]
//	         [-hints file] [-model file] [-shards 32] [-queue 4096]
//	         [-workers 0] [-train-every 256] [-rank-workers 0] [-uniform]
//	         [-wal-dir dir] [-wal-sync async] [-wal-segment-mb 64]
//	         [-snapshot-every 5m] [-log-level info] [-pprof :6060]
//	         [-trace-out trace.json] [-trace-sample 100] [-trace-retain-ms 250]
//	         [-incident-dir dir] [-incident-burn-threshold 2] [-incident-cooldown 5m]
//	qoserved -follow http://primary:8080 [-addr :8081] [-train-every 256]
//
// Observability: every node serves Prometheus text-format metrics at
// GET /metrics and its build identity at GET /v2/version (also:
// qoserved -version). -pprof mounts net/http/pprof on a separate
// listener; -trace-out samples 1 in -trace-sample requests and writes
// their stage timelines as Chrome-trace JSON. Independently of head
// sampling, every node tail-retains traces of slow or errored requests
// in a bounded in-memory ring served at GET /v2/traces
// (-trace-retain-ms tunes the threshold). With -incident-dir set, the
// incident engine watches the SLO burn rate, drift quarantines and
// journal fail-stops, and captures a diagnostic bundle (profiles,
// histograms, retained traces, full stats) when one fires; bundles are
// listed at GET /v2/incidents.
//
// It doubles as the protocol's ops CLI via the typed client
// (qoadvisor/internal/api/client) and the journal's offline tooling:
//
//	qoserved -check http://host:8080              # /v2/healthz + /v2/stats
//	qoserved -push-hints http://host:8080 -hints f.hints   # rollover upload
//	qoserved -replay out.model -wal-dir dir [-model snap]  # offline rebuild
//	qoserved -audit records -wal-dir dir [-event e] [-template-hash h]
//	qoserved -audit decision -wal-dir dir -event e         # decision trace
//	qoserved -audit template -wal-dir dir -template-hash h # steering lineage
//	qoserved -audit asof -wal-dir dir [-lsn n] [-audit-out m.snap]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/fleet"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/replicate"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/workload"
)

// logg is the process-wide leveled logger, built from -log-level
// before any mode dispatches. Writes key=value lines to stderr.
var logg *obs.Logger

// fatal logs msg at error level and exits nonzero — the leveled
// replacement for log.Fatalf.
func fatal(msg string, kv ...any) {
	logg.Error(msg, kv...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	seed := flag.Int64("seed", 42, "workload, pipeline and exploration seed")
	templates := flag.Int("templates", 24, "bootstrap workload size (recurring job templates)")
	bootstrapDays := flag.Int("bootstrap-days", 5, "simulated pipeline days to run before serving (0 = none)")
	hintsPath := flag.String("hints", "", "load an additional SIS hint file into the cache")
	modelPath := flag.String("model", "", "model snapshot path: loaded at startup if present, written on shutdown and POST /v1/model/snapshot")
	shards := flag.Int("shards", 0, "hint cache shard count (0 = default)")
	queue := flag.Int("queue", 0, "reward ingestion queue size (0 = default)")
	workers := flag.Int("workers", 0, "reward ingestion workers (0 = default 1; applies serialize on the learner)")
	trainEvery := flag.Int("train-every", 0, "train after this many applied rewards (0 = default)")
	rankWorkers := flag.Int("rank-workers", 0, "/v2/rank batch fan-out pool size (0 = GOMAXPROCS)")
	maxLog := flag.Int("max-log", 0, "cap on retained rank events (0 = default, negative = unbounded)")
	uniform := flag.Bool("uniform", false, "rank with the uniform-at-random logging policy")
	walDir := flag.String("wal-dir", "", "durable reward journal directory (empty = in-memory only)")
	walSync := flag.String("wal-sync", "async", "journal durability mode: sync (fsync before ack), async (group-commit window), off (never fsync)")
	walSegMB := flag.Int64("wal-segment-mb", 64, "journal segment size in MiB before rolling to a new file")
	driftOn := flag.Bool("drift", false, "detect per-template reward drift and auto-quarantine regressed hints (journaled; primary only)")
	driftThreshold := flag.Float64("drift-threshold", 0, "with -drift: baseline standard deviations below baseline mean that count as degraded (0 = default 4)")
	driftQuarantineAfter := flag.Int("drift-quarantine-after", 0, "with -drift: consecutive degraded observations before quarantine (0 = default 16)")
	driftRestoreAfter := flag.Int("drift-restore-after", 0, "with -drift: consecutive recovered probation observations before full restore (0 = default 32)")
	driftMaxTemplates := flag.Int("drift-max-templates", 0, "with -drift: cap on exactly-tracked templates, the rest stay in the sketch (0 = default 4096)")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute, "checkpoint interval: snapshot the model and truncate covered journal segments (0 = only on shutdown)")
	replayOut := flag.String("replay", "", "ops mode: rebuild a model offline from -wal-dir (+ optional -model snapshot), write it to this path, exit")
	auditMode := flag.String("audit", "", "ops mode: offline journal query over -wal-dir (records, decision, template, asof), print, exit")
	auditEvent := flag.String("event", "", "with -audit: event ID to trace (decision) or filter on (records)")
	auditTemplate := flag.String("template-hash", "", "with -audit: 64-bit hex template hash to query (template) or filter on (records)")
	auditLSN := flag.Uint64("lsn", 0, "with -audit asof: reconstruction LSN (0 = journal end)")
	auditFrom := flag.Uint64("audit-from", 0, "with -audit records: lowest LSN to return (0 = journal start)")
	auditTo := flag.Uint64("audit-to", 0, "with -audit records: highest LSN to return (0 = journal end)")
	auditType := flag.String("audit-type", "", "with -audit records: comma-separated record types (rank, reward, train, hints, quarantine)")
	auditLimit := flag.Int("audit-limit", 0, "with -audit records: stop after this many rows (0 = unlimited)")
	auditOut := flag.String("audit-out", "", "with -audit asof: write the reconstructed snapshot to this path")
	check := flag.String("check", "", "client mode: probe a running server's /v2/healthz and /v2/stats, print, exit")
	cluster := flag.String("cluster", "", "fleet check mode: comma-separated endpoint list; scrape /v2/stats from every node and render per-node rows plus the fleet-merged route/stage percentiles")
	pushHints := flag.String("push-hints", "", "client mode: upload the -hints file to a running server and exit")
	follow := flag.String("follow", "", "follower mode: primary base URL to replicate from (serves reads locally, rejects writes)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	showVersion := flag.Bool("version", false, "print build information and exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on a separate listener at this address (empty = disabled)")
	traceOut := flag.String("trace-out", "", "write Chrome-trace JSON for sampled requests to this file (load in chrome://tracing or ui.perfetto.dev)")
	traceSample := flag.Int("trace-sample", 100, "with -trace-out, trace 1 in N requests")
	traceRetainMS := flag.Int("trace-retain-ms", 0, "retain traces of requests slower than this many ms in the in-memory ring served at /v2/traces (0 = default 250ms; negative disables tail retention)")
	incidentDir := flag.String("incident-dir", "", "capture diagnostic bundles (profiles, histograms, slow traces, stats) into this directory when an incident trigger fires (empty = disabled)")
	incidentBurn := flag.Float64("incident-burn-threshold", 0, "with -incident-dir: shortest-window SLO burn rate that triggers a capture (0 = default 2.0)")
	incidentCooldown := flag.Duration("incident-cooldown", 0, "with -incident-dir: minimum spacing between captures (0 = default 5m)")
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoserved: %v\n", err)
		os.Exit(1)
	}
	logg = obs.NewLogger(os.Stderr, lv)

	if *showVersion {
		b := obs.Build()
		rev := b.Revision
		if rev == "" {
			rev = "unknown"
		}
		if b.Modified {
			rev += "-dirty"
		}
		fmt.Printf("qoserved %s (%s, revision %s, %s)\n", b.Version, b.Module, rev, b.GoVersion)
		return
	}

	if *cluster != "" {
		if err := runClusterCheck(*cluster); err != nil {
			fatal("cluster check failed", "cluster", *cluster, "err", err)
		}
		return
	}
	if *check != "" {
		// A comma-separated -check target is a fleet check spelled the
		// old way; route it to the aggregator.
		if strings.Contains(*check, ",") {
			if err := runClusterCheck(*check); err != nil {
				fatal("cluster check failed", "cluster", *check, "err", err)
			}
			return
		}
		if err := runCheck(*check); err != nil {
			fatal("check failed", "target", *check, "err", err)
		}
		return
	}
	if *pushHints != "" {
		if err := runPushHints(*pushHints, *hintsPath); err != nil {
			fatal("push-hints failed", "target", *pushHints, "err", err)
		}
		return
	}
	if *replayOut != "" {
		if err := runReplay(*replayOut, *walDir, *modelPath, *trainEvery, *maxLog, *seed); err != nil {
			fatal("replay failed", "out", *replayOut, "err", err)
		}
		return
	}
	if *auditMode != "" {
		err := runAudit(auditArgs{
			mode:         *auditMode,
			walDir:       *walDir,
			event:        *auditEvent,
			template:     *auditTemplate,
			lsn:          *auditLSN,
			from:         *auditFrom,
			to:           *auditTo,
			types:        *auditType,
			limit:        *auditLimit,
			out:          *auditOut,
			snapshotPath: *modelPath,
			trainEvery:   *trainEvery,
			maxLog:       *maxLog,
			seed:         *seed,
		})
		if err != nil {
			fatal("audit failed", "mode", *auditMode, "err", err)
		}
		return
	}

	// Profiling and tracing apply to primary and follower modes alike.
	// pprof gets its own listener so profile endpoints are never exposed
	// on the serving address.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logg.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logg.Info("pprof listening", "addr", *pprofAddr)
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tf, terr := os.Create(*traceOut)
		if terr != nil {
			fatal("creating trace output", "path", *traceOut, "err", terr)
		}
		tracer = obs.NewTracer(tf, *traceSample)
		logg.Info("request tracing enabled", "path", *traceOut, "sampleEvery", *traceSample)
	}
	if *follow != "" {
		if *walDir != "" {
			fatal("-follow and -wal-dir are mutually exclusive (a follower's durable state IS the primary's journal)")
		}
		// A follower serves only the primary's replicated model and hint
		// table; fail loudly on primary-only flags rather than silently
		// ignoring an operator's hint file or bootstrap config.
		primaryOnly := map[string]string{
			"hints":                   "hint tables reach a cluster via -push-hints to the primary",
			"model":                   "a follower's state is the primary's snapshot + journal",
			"bootstrap-days":          "followers bootstrap from the primary, not the offline pipeline",
			"templates":               "followers bootstrap from the primary, not the offline pipeline",
			"uniform":                 "the ranking policy is the primary's; followers serve it greedily",
			"queue":                   "followers have no reward ingestion queue (writes are redirected)",
			"workers":                 "followers have no reward ingestion workers (writes are redirected)",
			"wal-sync":                "followers do not journal (the primary's WAL is the journal)",
			"wal-segment-mb":          "followers do not journal (the primary's WAL is the journal)",
			"snapshot-every":          "followers do not checkpoint (the primary owns durability)",
			"drift":                   "drift detection runs on the primary; followers replicate its quarantine table",
			"drift-threshold":         "drift detection runs on the primary; followers replicate its quarantine table",
			"drift-quarantine-after":  "drift detection runs on the primary; followers replicate its quarantine table",
			"drift-restore-after":     "drift detection runs on the primary; followers replicate its quarantine table",
			"drift-max-templates":     "drift detection runs on the primary; followers replicate its quarantine table",
			"incident-dir":            "incident capture is a primary concern; scrape the follower's /v2/traces and /metrics instead",
			"incident-burn-threshold": "incident capture is a primary concern; scrape the follower's /v2/traces and /metrics instead",
			"incident-cooldown":       "incident capture is a primary concern; scrape the follower's /v2/traces and /metrics instead",
		}
		var conflict string
		flag.Visit(func(f *flag.Flag) {
			if why, ok := primaryOnly[f.Name]; ok && conflict == "" {
				conflict = fmt.Sprintf("-%s has no effect in -follow mode: %s", f.Name, why)
			}
		})
		if conflict != "" {
			fatal(conflict)
		}
		ferr := runFollower(*addr, *follow, *shards, *rankWorkers, *trainEvery, *maxLog, *seed, tracer, traceRetain(*traceRetainMS))
		closeTracer(tracer)
		if ferr != nil {
			fatal("follow failed", "primary", *follow, "err", ferr)
		}
		return
	}

	cat := rules.NewCatalog()

	mode, err := wal.ParseMode(*walSync)
	if err != nil {
		fatal("bad -wal-sync", "err", err)
	}
	// A WAL without a snapshot path would replay the whole journal on
	// every boot and never compact; default the snapshot next to it.
	if *walDir != "" && *modelPath == "" {
		*modelPath = filepath.Join(*walDir, "model.snap")
	}

	// Model precedence: recovered durable state wins (snapshot + WAL
	// suffix, or snapshot alone); otherwise the bootstrap pipeline's
	// trained bandit; otherwise fresh.
	var svc *bandit.Service
	var journal *wal.WAL
	var recoveredHints []sis.Hint
	var recoveredGen uint64
	var recoveredRollovers int64
	var recoveredQuarantine map[uint64]drift.State
	var recoveredQuarRecords int64
	if *walDir != "" {
		journal, err = wal.Open(wal.Options{Dir: *walDir, Mode: mode, SegmentBytes: *walSegMB << 20})
		if err != nil {
			fatal("opening WAL", "dir", *walDir, "err", err)
		}
		if torn, reason := journal.TailDamage(); torn > 0 {
			// Open already cut the damage away; tell the operator that a
			// crash discarded records past the last durable group commit.
			logg.Warn("journal tail damaged (crash artifact)", "truncatedBytes", torn, "reason", reason)
		}
		rec, err := serve.Recover(journal, *modelPath, *trainEvery, *maxLog, *seed)
		if err != nil {
			fatal("recovering journal", "dir", *walDir, "err", err)
		}
		if rec.Recovered() {
			svc = rec.Service
			recoveredHints, recoveredGen, recoveredRollovers = rec.Hints, rec.HintGen, rec.HintRollovers
			recoveredQuarantine, recoveredQuarRecords = rec.Quarantine, rec.QuarantineRecords
			logg.Info("recovered model",
				"snapshot", rec.SnapshotLoaded, "watermarkLsn", rec.FromLSN,
				"records", rec.Journal.Records, "ranks", rec.Replay.Ranks,
				"rewards", rec.Replay.Rewards, "trained", rec.Replay.TrainedEvents,
				"hintRollovers", rec.HintRollovers)
		}
	} else if *modelPath != "" {
		if f, err := os.Open(*modelPath); err == nil {
			loaded, lerr := bandit.Load(f, *seed)
			f.Close()
			if lerr != nil {
				fatal("loading model", "path", *modelPath, "err", lerr)
			}
			svc = loaded
			logg.Info("model restored", "path", *modelPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal("opening model", "path", *modelPath, "err", err)
		}
	}

	var hints, fileHints []sis.Hint
	if *bootstrapDays > 0 {
		adv, bootHints, err := bootstrap(cat, *seed, *templates, *bootstrapDays)
		if err != nil {
			fatal("bootstrap failed", "err", err)
		}
		hints = bootHints
		if svc == nil {
			svc = adv.CB.Service
			logg.Info("serving the bootstrap pipeline's trained bandit")
		}
	}
	if *hintsPath != "" {
		f, err := os.Open(*hintsPath)
		if err != nil {
			fatal("opening hints", "path", *hintsPath, "err", err)
		}
		file, err := sis.Parse(f)
		f.Close()
		if err != nil {
			fatal("parsing hints", "path", *hintsPath, "err", err)
		}
		if err := sis.Validate(file, cat); err != nil {
			fatal("validating hints", "path", *hintsPath, "err", err)
		}
		// Merge with the bootstrap table, file hints winning on conflict:
		// both describe the same workload, so template overlap is normal.
		fileHints = file.Hints
		hints = mergeHints(hints, fileHints)
	}

	var driftCfg *drift.Config
	if *driftOn {
		dc := drift.DefaultConfig()
		if *driftThreshold > 0 {
			dc.Threshold = *driftThreshold
			dc.RecoverThreshold = *driftThreshold / 2
		}
		if *driftQuarantineAfter > 0 {
			dc.QuarantineAfter = *driftQuarantineAfter
		}
		if *driftRestoreAfter > 0 {
			dc.RestoreAfter = *driftRestoreAfter
		}
		if *driftMaxTemplates > 0 {
			dc.MaxTemplates = *driftMaxTemplates
		}
		driftCfg = &dc
	}

	var incidentCfg *serve.IncidentConfig
	if *incidentDir != "" {
		incidentCfg = &serve.IncidentConfig{
			Dir:           *incidentDir,
			BurnThreshold: *incidentBurn,
			Cooldown:      *incidentCooldown,
		}
	}
	srv := serve.New(serve.Config{
		Catalog:      cat,
		Bandit:       svc,
		Seed:         *seed,
		Uniform:      *uniform,
		Shards:       *shards,
		QueueSize:    *queue,
		Workers:      *workers,
		TrainEvery:   *trainEvery,
		RankWorkers:  *rankWorkers,
		MaxLogEvents: *maxLog,
		SnapshotPath: *modelPath,
		WAL:          journal,
		Tracer:       tracer,
		TraceRetain:  traceRetain(*traceRetainMS),
		Incidents:    incidentCfg,
		Drift:        driftCfg,
	})
	if incidentCfg != nil {
		logg.Info("incident capture enabled", "dir", *incidentDir)
	}
	// Re-arm the safeguard from the journal BEFORE the initial
	// checkpoint: like the hint table, the quarantine table must be
	// restored without re-journaling, and the checkpoint's snapshot
	// re-journal then carries it above the new watermark. Restoring is
	// unconditional on -drift — enforcement is cheaper than a regressed
	// plan, and an operator who disabled detection still should not
	// serve a hint the journal says was quarantined.
	if recoveredQuarRecords > 0 {
		srv.RestoreQuarantines(recoveredQuarantine)
		logg.Info("quarantine table recovered from journal",
			"templates", len(recoveredQuarantine), "records", recoveredQuarRecords)
	}
	// Gate on rollovers seen, not table size: a journaled rollover to an
	// EMPTY table is a legitimate retirement and must win over the
	// bootstrap pipeline's regenerated hints, at its journaled generation.
	if recoveredRollovers > 0 {
		// Restore the journaled hint table — at its journaled generation,
		// without re-journaling — BEFORE the initial checkpoint, whose
		// hint re-journal would otherwise persist an empty table over it.
		srv.RestoreHints(recoveredHints, recoveredGen)
		logg.Info("hint cache recovered from journal",
			"hints", len(recoveredHints), "generation", recoveredGen)
		// The recovered table is authoritative over the bootstrap
		// pipeline's regenerated one; an explicit -hints file still
		// overlays below (as a fresh journaled rollover).
		hints = nil
		if *hintsPath != "" {
			hints = mergeHints(recoveredHints, fileHints)
		}
	}
	if journal != nil && *modelPath != "" {
		// Checkpoint immediately so pre-journal state (bootstrap training,
		// replayed suffix) is covered by a snapshot: a crash before the
		// first ticker fire must not lose it.
		info, err := srv.Checkpoint(*modelPath)
		if err != nil {
			fatal("initial checkpoint failed", "err", err)
		}
		logg.Info("checkpoint", "bytes", info.Bytes, "walOffset", info.LSN,
			"segmentsCompacted", info.SegmentsRemoved, "took", info.Duration.Round(time.Microsecond))
	}
	if len(hints) > 0 {
		gen, err := srv.InstallHints(hints)
		if err != nil {
			fatal("installing hints failed", "err", err)
		}
		logg.Info("hint cache installed", "hints", srv.Cache().Size(),
			"generation", gen, "shards", srv.Cache().Shards())
	}

	// Periodic checkpoints: persist the model off the SIGTERM path so a
	// crash loses at most one interval of training (and, with a WAL,
	// nothing that was journaled durably), and compact covered journal
	// segments. The ticker stops with the serve context.
	var snapWG sync.WaitGroup
	serveErr := serveUntilSignal(*addr, srv, func(ctx context.Context) {
		if *snapshotEvery > 0 && *modelPath != "" {
			snapWG.Add(1)
			go func() {
				defer snapWG.Done()
				t := time.NewTicker(*snapshotEvery)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						info, err := srv.Checkpoint(*modelPath)
						if err != nil {
							logg.Error("checkpoint failed", "err", err)
							continue
						}
						logg.Info("checkpoint", "bytes", info.Bytes,
							"took", info.Duration.Round(time.Microsecond),
							"walOffset", info.LSN, "segmentsCompacted", info.SegmentsRemoved)
					}
				}
			}()
		}
		logg.Info("qoserved listening", "addr", *addr)
	})
	if serveErr != nil {
		fatal("serving failed", "err", serveErr)
	}

	// Graceful teardown: drain pending rewards into the model, then
	// persist it for the next start.
	snapWG.Wait()
	srv.Close()
	if *modelPath != "" {
		info, err := srv.Checkpoint(*modelPath)
		if err != nil {
			fatal("final snapshot failed", "err", err)
		}
		logg.Info("model persisted", "path", *modelPath, "bytes", info.Bytes, "walOffset", info.LSN)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			logg.Error("closing WAL", "err", err)
		}
	}
	closeTracer(tracer)
	logg.Info("qoserved stopped")
}

// traceRetain maps the -trace-retain-ms flag onto the serve layer's
// threshold semantics: 0 keeps the default, negative disables tail
// retention.
func traceRetain(ms int) time.Duration {
	if ms < 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

// closeTracer flushes and closes the trace output (nil-safe); without
// the close the emitted JSON array is unterminated.
func closeTracer(t *obs.Tracer) {
	if t == nil {
		return
	}
	if err := t.Close(); err != nil {
		logg.Warn("closing trace output", "err", err)
	}
}

// runReplay is the offline recovery tool: rebuild a model from a
// journal directory (plus an optional snapshot to start from), write
// it to outPath, and report what the journal contributed. The rebuild
// is deterministic — running it twice produces byte-identical output —
// and read-only with respect to the journal.
func runReplay(outPath, walDir, snapshotPath string, trainEvery, maxLog int, seed int64) error {
	if walDir == "" {
		return fmt.Errorf("-replay needs -wal-dir <journal directory>")
	}
	rec, err := serve.Recover(wal.DirSource{Dir: walDir}, snapshotPath, trainEvery, maxLog, seed)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := rec.Service.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:  loaded=%v watermark=%d\n", rec.SnapshotLoaded, rec.FromLSN)
	fmt.Printf("journal:   %d records replayed, %d skipped (covered by snapshot)\n",
		rec.Journal.Records, rec.Journal.Skipped)
	if rec.Journal.Truncated {
		fmt.Printf("tail:      damaged record skipped cleanly (%v)\n", rec.Journal.TailError)
	}
	fmt.Printf("rebuilt:   %d ranks, %d rewards (%d unknown), %d training runs over %d events\n",
		rec.Replay.Ranks, rec.Replay.Rewards, rec.Replay.UnknownRewards,
		rec.Replay.TrainRuns, rec.Replay.TrainedEvents)
	if rec.HintRollovers > 0 {
		fmt.Printf("hints:     %d rollovers replayed; active table has %d hints (generation %d)\n",
			rec.HintRollovers, len(rec.Hints), rec.HintGen)
	}
	if rec.QuarantineRecords > 0 {
		fmt.Printf("safeguard: %d quarantine records replayed; %d templates held (quarantined or probation)\n",
			rec.QuarantineRecords, len(rec.Quarantine))
	}
	fmt.Printf("model:     %d bytes -> %s (WAL watermark %d)\n", buf.Len(), outPath, rec.Service.WALWatermark())
	return nil
}

// runFollower runs the read-scaled replica mode: bootstrap from the
// primary, tail its WAL, serve reads locally until SIGINT/SIGTERM.
// The replicate.Follower re-bootstraps itself if the primary compacts
// past its position, so there is nothing to babysit here.
func runFollower(addr, primary string, shards, rankWorkers, trainEvery, maxLog int, seed int64, tracer *obs.Tracer, traceRetain time.Duration) error {
	f, err := replicate.Start(replicate.Config{
		Primary:      primary,
		Seed:         seed,
		TrainEvery:   trainEvery,
		MaxLogEvents: maxLog,
		Shards:       shards,
		RankWorkers:  rankWorkers,
		Logger:       logg,
		Tracer:       tracer,
		TraceRetain:  traceRetain,
	})
	if err != nil {
		return err
	}

	if err := serveUntilSignal(addr, f, func(context.Context) {
		logg.Info("qoserved following", "primary", primary, "addr", addr)
	}); err != nil {
		return err
	}
	st := f.Stats()
	logg.Info("follower stopping", "appliedLsn", st.AppliedLSN, "lag", st.LagRecords,
		"recordsApplied", st.RecordsApplied, "reconnects", st.Reconnects, "resyncs", st.Resyncs)
	f.Close()
	return nil
}

// serveUntilSignal runs one HTTP server with the shared production
// timeouts until SIGINT/SIGTERM, then shuts it down gracefully —
// primary and follower modes serve through this one scaffold so their
// timeout and shutdown behavior cannot drift apart. onUp runs before
// serving begins with a context that cancels at the signal, for
// goroutines that must stop with the server (the checkpoint ticker).
// ListenAndServe returns as soon as Shutdown begins while in-flight
// requests keep running until Shutdown itself returns, so this waits
// for the full drain: when it returns, no handler is running.
func serveUntilSignal(addr string, handler http.Handler, onUp func(ctx context.Context)) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if onUp != nil {
		onUp(ctx)
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-shutdownDone
	return nil
}

// runClusterCheck scrapes /v2/stats from every listed endpoint and
// renders the fleet view: per-node rows (role, lag, quarantine state)
// plus the fleet-merged per-route and per-stage percentiles, computed
// by merging the raw histogram buckets each node ships — not by
// averaging per-node percentiles, which would be wrong. Like -check it
// is a gate: any unreachable node fails the exit code (its row still
// prints with the scrape error).
func runClusterCheck(list string) error {
	var endpoints []string
	for _, ep := range strings.Split(list, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			endpoints = append(endpoints, ep)
		}
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("no endpoints in %q", list)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap := fleet.Scrape(ctx, endpoints, client.WithTimeout(5*time.Second))
	snap.Render(os.Stdout)
	if n := snap.Reachable(); n < len(endpoints) {
		return fmt.Errorf("%d of %d nodes unreachable", len(endpoints)-n, len(endpoints))
	}
	return nil
}

// runCheck probes a running server through the typed client: healthz
// first (cheap, gateable), then the full stats payload with per-route
// latency metrics.
func runCheck(base string) error {
	cl := client.New(base, client.WithTimeout(5*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A degraded node still decodes its health body — print the
	// diagnosis, but keep the error for the exit code: -check is a
	// gate, and a stale follower must fail it.
	health, healthErr := cl.Health(ctx)
	if healthErr != nil && health.Status == "" {
		return healthErr
	}
	fmt.Printf("health:     %s (generation %d, %d hints, queue %d/%d, up %.1fs)\n",
		health.Status, health.Generation, health.Hints,
		health.QueueDepth, health.QueueCap, health.UptimeSec)

	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	if v := stats.Version; v != nil {
		rev := v.Revision
		if rev == "" {
			rev = "unknown"
		}
		if v.Modified {
			rev += "-dirty"
		}
		fmt.Printf("version:    %s (revision %s, %s)\n", v.Version, rev, v.GoVersion)
	}
	fmt.Printf("serving:    %d ranks (%d hint hits, %d bandit, %d noops), event log %d\n",
		stats.RankRequests, stats.HintHits, stats.BanditRanks, stats.NoOps, stats.BanditLog)
	fmt.Printf("ingest:     %d enqueued, %d applied, %d dropped, %d unknown, %d train runs\n",
		stats.Ingest.Enqueued, stats.Ingest.Applied, stats.Ingest.Dropped,
		stats.Ingest.UnknownEvents, stats.Ingest.TrainRuns)
	if stats.WAL != nil {
		w := stats.WAL
		fmt.Printf("wal:        mode=%s lsn %d..%d (synced %d), %d appends / %d syncs, %d segments (%d compacted)\n",
			w.Mode, w.FirstLSN, w.LastLSN, w.SyncedLSN, w.Appends, w.Syncs, w.Segments, w.TruncatedSegments)
		fmt.Printf("checkpoint: %d taken, last at offset %d (%d bytes, %dus)\n",
			w.Checkpoints, w.LastCheckpointLSN, w.LastCheckpointB, w.LastCheckpointUs)
	}
	if d := stats.Drift; d != nil && (d.Enabled || d.QuarantinedNow > 0 || d.ProbationNow > 0) {
		fmt.Printf("safeguard:  detection=%v, %d quarantined, %d probation, %d blocked ranks, %d transitions (%d manual)\n",
			d.Enabled, d.QuarantinedNow, d.ProbationNow, d.BlockedRanks, d.Transitions, d.Manual)
	}
	if in := stats.Incidents; in != nil {
		line := fmt.Sprintf("incidents:  %d bundles, %d triggered (%d suppressed, %d capture errors)",
			in.Count, in.Triggered, in.Suppressed, in.CaptureErrors)
		if in.LastID != "" {
			line += fmt.Sprintf(", last %s (%s) %.0fs ago", in.LastID, in.LastReason, in.LastAgeSec)
		}
		fmt.Println(line)
	}
	if tr := stats.Traces; tr != nil {
		fmt.Printf("flightrec:  %d/%d traces retained (%d slow, %d error, %d sampled), %d evicted, threshold %dms\n",
			tr.Retained, tr.Capacity, tr.RetainedSlow, tr.RetainedError, tr.RetainedSampled,
			tr.Evicted, tr.ThresholdMicros/1000)
	}

	routes := make([]string, 0, len(stats.Routes))
	for r := range stats.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		m := stats.Routes[r]
		if m.Count == 0 {
			continue
		}
		fmt.Printf("route %-20s %6d calls, %d errors, avg %.0fus, p50 %dus, p99 %dus, p999 %dus, max %dus\n",
			r, m.Count, m.Errors, float64(m.TotalMicros)/float64(m.Count),
			m.P50Micros, m.P99Micros, m.P999Micros, m.MaxMicros)
	}

	stages := make([]string, 0, len(stats.Stages))
	for s := range stats.Stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		m := stats.Stages[s]
		if m.Count == 0 {
			continue
		}
		fmt.Printf("stage %-20s %6d obs,             mean %dus, p50 %dus, p99 %dus, p999 %dus\n",
			s, m.Count, m.MeanMicros, m.P50Micros, m.P99Micros, m.P999Micros)
	}
	return healthErr
}

// runPushHints uploads a SIS hint file to a running server — the
// out-of-process half of the pipeline rollover, over the typed client.
func runPushHints(base, hintsPath string) error {
	if hintsPath == "" {
		return fmt.Errorf("-push-hints needs -hints <file>")
	}
	f, err := os.Open(hintsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cl := client.New(base, client.WithTimeout(30*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := cl.InstallHints(ctx, f)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			return fmt.Errorf("server rejected rollover (%s): %s", apiErr.Code, apiErr.Message)
		}
		return err
	}
	fmt.Printf("installed %d hints (day %d) as generation %d\n",
		resp.Installed, resp.Day, resp.Generation)
	return nil
}

// mergeHints overlays additions onto base, additions winning on
// template conflicts; order is preserved (base first, new additions
// appended).
func mergeHints(base, additions []sis.Hint) []sis.Hint {
	index := make(map[uint64]int, len(base))
	out := make([]sis.Hint, len(base))
	copy(out, base)
	for i, h := range out {
		index[h.TemplateHash] = i
	}
	for _, h := range additions {
		if i, ok := index[h.TemplateHash]; ok {
			out[i] = h
			continue
		}
		index[h.TemplateHash] = len(out)
		out = append(out, h)
	}
	return out
}

// bootstrap runs the offline daily pipeline for the requested number of
// simulated days and returns the advisor (whose bandit is now trained)
// plus the active hint table in servable form.
func bootstrap(cat *rules.Catalog, seed int64, templates, days int) (*core.Advisor, []sis.Hint, error) {
	gen, err := workload.New(workload.Config{Seed: seed, NumTemplates: templates, MaxDailyInstances: 2})
	if err != nil {
		return nil, nil, err
	}
	cluster := exec.DefaultCluster(seed)
	store := sis.NewStore(cat)
	adv := core.NewAdvisor(cat, store, core.Config{
		Seed:      seed,
		Flighting: flighting.Config{Catalog: cat, Cluster: cluster, Seed: seed + 5},
	})
	prod := core.NewProduction(cat, store, cluster, seed+9)

	for day := 1; day <= days; day++ {
		// Off-policy schedule: uniform logging for the first third, the
		// learned policy afterwards (as in cmd/qoadvisor).
		adv.CB.Uniform = day <= days/3
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			return nil, nil, err
		}
		_, view, err := prod.RunDay(day, jobs)
		if err != nil {
			return nil, nil, err
		}
		if _, err := adv.RunDay(day, jobs, view); err != nil {
			return nil, nil, err
		}
	}
	logg.Info("bootstrap complete", "days", days, "templates", templates, "activeHints", store.Size())
	return adv, adv.ActiveHints(), nil
}
