package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"qoadvisor/internal/audit"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/walrec"
)

// auditArgs carries the -audit mode's flag values into runAudit.
type auditArgs struct {
	mode     string // records | decision | template | asof
	walDir   string
	event    string // decision, or a records filter
	template string // template (hex), or a records filter
	lsn      uint64 // asof target (0 = journal end)
	from, to uint64 // records LSN window
	types    string // records type filter (comma-separated names)
	limit    int    // records row cap (0 = unlimited)
	out      string // asof: write the reconstructed snapshot here

	// Replay parameters for asof — must match the journaled run's
	// serving configuration.
	snapshotPath string
	trainEvery   int
	maxLog       int
	seed         int64
}

// runAudit is the offline audit tool: read-only queries over a journal
// directory (live or copied — the engine never writes segments, and
// its index sidecars are derived data, safe to delete). Output is
// deterministic for a given journal, so runs can be diffed.
func runAudit(a auditArgs) error {
	if a.walDir == "" {
		return fmt.Errorf("-audit needs -wal-dir <journal directory>")
	}
	eng, err := audit.Open(a.walDir)
	if err != nil {
		return err
	}
	switch a.mode {
	case "records":
		return auditRecords(eng, a)
	case "decision":
		if a.event == "" {
			return fmt.Errorf("-audit decision needs -event <event ID>")
		}
		return auditDecision(eng, a.event)
	case "template":
		if a.template == "" {
			return fmt.Errorf("-audit template needs -template-hash <64-bit hex>")
		}
		hash, err := strconv.ParseUint(a.template, 16, 64)
		if err != nil {
			return fmt.Errorf("bad -template-hash %q: want 64-bit hex", a.template)
		}
		return auditTemplate(eng, hash)
	case "asof":
		return auditAsOf(eng, a)
	default:
		return fmt.Errorf("unknown -audit mode %q (want records, decision, template, or asof)", a.mode)
	}
}

// auditQuery assembles the records-listing filter from the CLI flags.
func auditQuery(a auditArgs) (audit.Query, error) {
	q := audit.Query{EventID: a.event, FromLSN: a.from, ToLSN: a.to, Limit: a.limit}
	if a.types != "" {
		for _, name := range strings.Split(a.types, ",") {
			tag, err := walrec.ParseTag(strings.TrimSpace(name))
			if err != nil {
				return q, err
			}
			q.Tags = append(q.Tags, tag)
		}
	}
	if a.template != "" {
		hash, err := strconv.ParseUint(a.template, 16, 64)
		if err != nil {
			return q, fmt.Errorf("bad -template-hash %q: want 64-bit hex", a.template)
		}
		q.Template, q.HasTemplate = hash, true
	}
	return q, nil
}

func auditRecords(eng *audit.Engine, a auditArgs) error {
	q, err := auditQuery(a)
	if err != nil {
		return err
	}
	it, err := eng.Run(q)
	if err != nil {
		return err
	}
	defer it.Close()
	n := 0
	for {
		res, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		fmt.Printf("%10d  %-13s %s\n", res.LSN, walrec.Name(res.Rec.Tag), audit.Summary(res))
		n++
	}
	printScan("records", n, it.Stats())
	return nil
}

func auditDecision(eng *audit.Engine, eventID string) error {
	tr, err := eng.Trace(eventID)
	if err != nil {
		return err
	}
	if tr.Rank == nil {
		fmt.Printf("event %s: no rank record in the journal (never ranked, or compacted away)\n", eventID)
		return nil
	}
	fmt.Printf("event:    %s\n", eventID)
	fmt.Printf("decision: lsn=%d prob=%.4f ctxFeatures=%d actFeatures=%d\n",
		tr.RankLSN, tr.Rank.Prob, len(tr.Rank.CtxIDs), len(tr.Rank.ActIDs))
	for _, rw := range tr.Rewards {
		fmt.Printf("reward:   lsn=%d value=%.4f\n", rw.LSN, rw.Value)
	}
	if len(tr.Rewards) == 0 {
		fmt.Printf("reward:   none journaled\n")
	}
	if tr.TrainedAtLSN > 0 {
		fmt.Printf("trained:  lsn=%d (first training boundary after the last reward)\n", tr.TrainedAtLSN)
	}
	for _, lr := range tr.Lineage {
		fmt.Printf("lineage:  lsn=%d event=%s value=%.4f\n", lr.LSN, lr.EventID, lr.Value)
	}
	if tr.LineageTruncated {
		fmt.Printf("lineage:  (truncated at cap)\n")
	}
	printScan("decision", len(tr.Rewards)+len(tr.Lineage)+1, tr.Scan)
	return nil
}

func auditTemplate(eng *audit.Engine, hash uint64) error {
	th, err := eng.Template(hash)
	if err != nil {
		return err
	}
	fmt.Printf("template: %016x\n", hash)
	for _, ev := range th.Events {
		switch ev.Kind {
		case "hint":
			fmt.Printf("%10d  hint flip=%s day=%d generation=%d\n", ev.LSN, ev.Flip, ev.Day, ev.Gen)
		case "hint_removed":
			fmt.Printf("%10d  hint removed (generation %d)\n", ev.LSN, ev.Gen)
		case "quarantine":
			kind := "transition"
			if ev.Snapshot {
				kind = "checkpoint re-journal"
			}
			fmt.Printf("%10d  quarantine state=%s (%s)\n", ev.LSN, drift.State(ev.State).String(), kind)
		case "quarantine_cleared":
			fmt.Printf("%10d  quarantine cleared\n", ev.LSN)
		}
	}
	fmt.Printf("history:  %d events from %d rollovers, %d quarantine records\n",
		len(th.Events), th.Rollovers, th.QuarantineRecords)
	printScan("template", len(th.Events), th.Scan)
	return nil
}

func auditAsOf(eng *audit.Engine, a auditArgs) error {
	// Mirror the serving default: a WAL-backed server snapshots next to
	// the journal unless told otherwise.
	if a.snapshotPath == "" {
		a.snapshotPath = filepath.Join(a.walDir, "model.snap")
	}
	lsn := a.lsn
	if lsn == 0 {
		end, err := journalEnd(a.walDir)
		if err != nil {
			return err
		}
		if end == 0 {
			return fmt.Errorf("journal %s is empty; nothing to reconstruct", a.walDir)
		}
		lsn = end
	}
	res, err := eng.AsOf(lsn, audit.AsOfOptions{
		SnapshotPath: a.snapshotPath,
		TrainEvery:   a.trainEvery,
		MaxLogEvents: a.maxLog,
		Seed:         a.seed,
	})
	if err != nil {
		return err
	}
	// Reconstruction needs the records in (FromLSN, lsn] to still exist;
	// compaction may have eaten them (the offline remedy: run against a
	// journal copy taken before the checkpoint).
	if segs, err := wal.Segments(a.walDir); err == nil && len(segs) > 0 &&
		lsn > res.FromLSN && segs[0].FirstLSN > res.FromLSN+1 {
		return fmt.Errorf("journal history before LSN %d is compacted; reconstruction at %d needs records from %d",
			segs[0].FirstLSN, lsn, res.FromLSN+1)
	}
	sum := sha256.Sum256(res.Snapshot)
	fmt.Printf("asof:     lsn=%d\n", res.LSN)
	fmt.Printf("seed:     snapshot=%v watermark=%d (%s)\n", res.SnapshotSeeded, res.FromLSN, a.snapshotPath)
	fmt.Printf("replayed: %d records (%d ranks, %d rewards, %d train marks -> %d training runs over %d events)\n",
		res.Replay.Records, res.Replay.Ranks, res.Replay.Rewards,
		res.Replay.TrainMarks, res.Replay.TrainRuns, res.Replay.TrainedEvents)
	if len(res.Hints) > 0 {
		fmt.Printf("hints:    %d active (generation %d)\n", len(res.Hints), res.HintGen)
	}
	if len(res.Quarantine) > 0 {
		fmt.Printf("held:     %d templates in a durable safeguard state\n", len(res.Quarantine))
	}
	fmt.Printf("model:    %d bytes, sha256=%s\n", len(res.Snapshot), hex.EncodeToString(sum[:]))
	if a.out != "" {
		if err := os.WriteFile(a.out, res.Snapshot, 0o644); err != nil {
			return err
		}
		fmt.Printf("written:  %s\n", a.out)
	}
	printScan("asof", int(res.Replay.Records), res.Scan)
	return nil
}

// journalEnd finds the journal's last LSN by scanning only the final
// segment (earlier segments contribute their record counts implicitly
// through the next segment's header).
func journalEnd(dir string) (uint64, error) {
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) == 0 {
		return 0, err
	}
	sr, err := wal.OpenSegment(segs[len(segs)-1])
	if err != nil {
		return 0, err
	}
	defer sr.Close()
	for {
		if _, _, err := sr.Next(); err != nil {
			if err == io.EOF || wal.IsCorruptRecord(err) {
				// A torn tail is the crash artifact; the end is the last
				// intact record.
				return sr.NextLSN() - 1, nil
			}
			return 0, err
		}
	}
}

// printScan reports what the query read versus pruned — the audit
// tool's own observability, on stderr so stdout stays diffable.
func printScan(mode string, rows int, st audit.ScanStats) {
	fmt.Fprintf(os.Stderr,
		"audit %s: %d rows; segments %d scanned / %d skipped of %d (lsn=%d time=%d tag=%d key=%d); %d records scanned, %d matched; sidecars %d built, %d loaded, %d rebuilt\n",
		mode, rows, st.SegmentsScanned, st.SegmentsSkipped, st.SegmentsTotal,
		st.SkippedByLSN, st.SkippedByTime, st.SkippedByTag, st.SkippedByKey,
		st.RecordsScanned, st.RecordsMatched,
		st.SidecarsBuilt, st.SidecarsLoaded, st.SidecarsRebuilt)
}
