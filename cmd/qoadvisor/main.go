// Command qoadvisor runs the full QO-Advisor deployment loop on a
// synthetic recurring SCOPE workload: every simulated day, production
// executes all jobs under the current hints, and the offline pipeline
// (Feature Generation → CB Recommendation → Recompilation → Flighting →
// Validation → Hint Generation) processes the day's telemetry and uploads
// a fresh hint file to the Stats & Insight Service.
//
// Usage:
//
//	qoadvisor [-days 10] [-templates 60] [-seed 42] [-hints out.hints]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/stats"
	"qoadvisor/internal/workload"
)

func main() {
	days := flag.Int("days", 10, "number of simulated days")
	templates := flag.Int("templates", 60, "number of recurring job templates")
	seed := flag.Int64("seed", 42, "workload and pipeline seed")
	hintsOut := flag.String("hints", "", "write the final SIS hint file to this path")
	parallelism := flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	flag.Parse()

	gen, err := workload.New(workload.Config{Seed: *seed, NumTemplates: *templates, MaxDailyInstances: 2})
	if err != nil {
		log.Fatalf("qoadvisor: %v", err)
	}
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(*seed)
	store := sis.NewStore(cat)
	adv := core.NewAdvisor(cat, store, core.Config{
		Seed:        *seed,
		Parallelism: *parallelism,
		Flighting:   flighting.Config{Catalog: cat, Cluster: cluster, Seed: *seed + 5},
	})
	prod := core.NewProduction(cat, store, cluster, *seed+9)

	fmt.Printf("QO-Advisor daily loop: %d templates, %d days, seed %d\n\n", *templates, *days, *seed)
	fmt.Printf("%4s %6s %6s %7s %7s %7s %6s %8s %7s %6s\n",
		"day", "jobs", "span", "lower", "higher", "fails", "flts", "samples", "valid", "hints")

	var hintedPN, defaultPN []float64
	for day := 1; day <= *days; day++ {
		// Off-policy schedule: uniform logging for the first third, the
		// learned policy afterwards.
		adv.CB.Uniform = day <= *days/3

		jobs, err := gen.JobsForDay(day)
		if err != nil {
			log.Fatalf("qoadvisor: %v", err)
		}
		runs, view, err := prod.RunDay(day, jobs)
		if err != nil {
			log.Fatalf("qoadvisor: %v", err)
		}
		for _, r := range runs {
			if r.Hinted {
				hintedPN = append(hintedPN, r.Metrics.PNHours)
			} else {
				defaultPN = append(defaultPN, r.Metrics.PNHours)
			}
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			log.Fatalf("qoadvisor: %v", err)
		}
		fmt.Printf("%4d %6d %6d %7d %7d %7d %6d %8d %7d %6d\n",
			day, rep.JobsInView, rep.JobsWithSpan, rep.LowerCost, rep.HigherCost,
			rep.CompileFails, rep.FlightsRequested, rep.ValidationSamples,
			rep.Validated, rep.HintsUploaded)
	}

	fmt.Printf("\nfinal state: %d active hints, SIS version %d\n", store.Size(), store.Version())
	fmt.Printf("hinted executions: %d (total PNhours %.2f), default executions: %d (total PNhours %.2f)\n",
		len(hintedPN), stats.Sum(hintedPN), len(defaultPN), stats.Sum(defaultPN))

	if *hintsOut != "" {
		f, err := os.Create(*hintsOut)
		if err != nil {
			log.Fatalf("qoadvisor: %v", err)
		}
		defer f.Close()
		hist := store.History()
		if len(hist) > 0 {
			if err := sis.Serialize(f, hist[len(hist)-1]); err != nil {
				log.Fatalf("qoadvisor: %v", err)
			}
		}
		fmt.Printf("hint file written to %s\n", *hintsOut)
	}
}
