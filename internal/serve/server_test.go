package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRankRewardEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 11, TrainEvery: 4})

	// No hints installed: the bandit path must answer and log an event.
	rank := postJSON(t, ts.URL+"/v1/rank", map[string]any{
		"templateHash": "00000000deadbeef",
		"templateId":   "T0001",
		"span":         []int{3, 17, 40},
		"rowCount":     1e6,
		"bytesRead":    1e9,
	})
	if rank.StatusCode != http.StatusOK {
		t.Fatalf("rank status = %d", rank.StatusCode)
	}
	rr := decodeJSON[RankResponse](t, rank)
	if rr.Source != "bandit" || rr.EventID == "" {
		t.Fatalf("rank response = %+v, want bandit source with event ID", rr)
	}
	if rr.Prob <= 0 || rr.Prob > 1 {
		t.Fatalf("rank propensity %v out of (0,1]", rr.Prob)
	}
	if !rr.NoOp {
		if _, err := rules.ParseFlip(rr.Flip); err != nil {
			t.Fatalf("unparseable flip %q: %v", rr.Flip, err)
		}
	}

	// Reward the event asynchronously, then drain and check it landed.
	reward := postJSON(t, ts.URL+"/v1/reward", map[string]any{"eventId": rr.EventID, "reward": 1.7})
	if reward.StatusCode != http.StatusAccepted {
		t.Fatalf("reward status = %d, want 202", reward.StatusCode)
	}
	reward.Body.Close()
	srv.Ingestor().Drain()

	stats := decodeJSON[Stats](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats.RankRequests != 1 || stats.BanditRanks != 1 || stats.HintHits != 0 {
		t.Errorf("stats = %+v, want 1 rank, 1 bandit rank, 0 hint hits", stats)
	}
	if stats.Ingest.Applied != 1 || stats.Ingest.TrainedEvents != 1 {
		t.Errorf("ingest stats = %+v, want 1 applied and trained", stats.Ingest)
	}
	if stats.BanditLog != 1 {
		t.Errorf("bandit log = %d, want 1", stats.BanditLog)
	}
}

func TestHintsInstallAndServe(t *testing.T) {
	cat := rules.NewCatalog()
	_, ts := newTestServer(t, Config{Catalog: cat, Seed: 11})

	// Install a day-7 hint table through the rollover endpoint.
	file := sis.File{Day: 7, Hints: []sis.Hint{
		{TemplateHash: 0xabc123, TemplateID: "T0042", Flip: cat.FlipFor(40), Day: 7},
	}}
	var buf bytes.Buffer
	if err := sis.Serialize(&buf, file); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/hints", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	install := decodeJSON[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || install["installed"].(float64) != 1 {
		t.Fatalf("hints install: status %d, body %v", resp.StatusCode, install)
	}

	// A rank for the hinted template must hit the cache — no event logged.
	rank := postJSON(t, ts.URL+"/v1/rank", map[string]any{
		"templateHash": fmt.Sprintf("%016x", 0xabc123),
		"span":         []int{40},
	})
	rr := decodeJSON[RankResponse](t, rank)
	if rr.Source != "hint" || rr.EventID != "" {
		t.Fatalf("rank = %+v, want hint-cache hit", rr)
	}
	if rr.Flip != cat.FlipFor(40).String() || rr.HintDay != 7 || rr.Generation != 1 {
		t.Fatalf("hint payload = %+v", rr)
	}

	// Unknown template still goes to the bandit.
	rank2 := postJSON(t, ts.URL+"/v1/rank", map[string]any{
		"templateHash": "0000000000000001",
		"span":         []int{40},
	})
	if rr2 := decodeJSON[RankResponse](t, rank2); rr2.Source != "bandit" {
		t.Fatalf("unhinted rank source = %q, want bandit", rr2.Source)
	}

	// Invalid hint files are rejected by SIS validation.
	resp, err = http.Post(ts.URL+"/v1/hints", "text/plain",
		strings.NewReader("qoadvisor-hints v1 day=7\n00000000000abc12,T1,-R000,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("required-rule flip install status = %d, want 400", resp.StatusCode)
	}
}

func TestRankValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"bad hash", `{"templateHash":"zz","span":[1]}`, http.StatusBadRequest},
		{"span bit out of range", `{"templateHash":"1","span":[999]}`, http.StatusBadRequest},
		{"empty span", `{"templateHash":"1","span":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/rank", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rank status = %d, want 405", resp.StatusCode)
	}
}

func TestRewardValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/reward", "application/json",
		strings.NewReader(`{"eventId":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fields status = %d, want 400", resp.StatusCode)
	}
}

func TestModelSnapshotOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snapshot")
	srv, ts := newTestServer(t, Config{Seed: 11, SnapshotPath: path})

	// Learn something first so the snapshot carries weights.
	rr, err := srv.Rank(RankRequest{TemplateHash: 1, Span: []int{3, 17}, RowCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv.RewardAsync(rr.EventID, 1.9)
	srv.Ingestor().Drain()

	// GET streams a loadable model.
	get := mustGet(t, ts.URL+"/v1/model/snapshot")
	defer get.Body.Close()
	loaded, err := bandit.Load(get.Body, 1)
	if err != nil {
		t.Fatalf("GET snapshot is not loadable: %v", err)
	}

	// POST persists to the configured path; the file round-trips to the
	// same scores as the in-memory learner.
	post := postJSON(t, ts.URL+"/v1/model/snapshot", nil)
	body := decodeJSON[map[string]any](t, post)
	if post.StatusCode != http.StatusOK || body["path"] != path {
		t.Fatalf("POST snapshot: status %d body %v", post.StatusCode, body)
	}
	var mem, file bytes.Buffer
	if err := srv.SnapshotTo(&mem); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&file); err != nil {
		t.Fatal(err)
	}
	if mem.String() != file.String() {
		t.Error("GET snapshot differs from in-memory model")
	}
}

func TestSnapshotPostWithoutPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 1})
	resp := postJSON(t, ts.URL+"/v1/model/snapshot", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot POST without path status = %d, want 409", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
