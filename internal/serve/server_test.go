package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRankRewardEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 11, TrainEvery: 4})

	// No hints installed: the bandit path must answer and log an event.
	rank := postJSON(t, ts.URL+api.RouteV1Rank, api.RankRequest{
		TemplateHash: 0xdeadbeef,
		TemplateID:   "T0001",
		Span:         []int{3, 17, 40},
		RowCount:     1e6,
		BytesRead:    1e9,
	})
	if rank.StatusCode != http.StatusOK {
		t.Fatalf("rank status = %d", rank.StatusCode)
	}
	rr := decodeJSON[api.RankResponse](t, rank)
	if rr.Source != api.SourceBandit || rr.EventID == "" {
		t.Fatalf("rank response = %+v, want bandit source with event ID", rr)
	}
	if rr.Prob <= 0 || rr.Prob > 1 {
		t.Fatalf("rank propensity %v out of (0,1]", rr.Prob)
	}
	if !rr.NoOp {
		if _, err := rules.ParseFlip(rr.Flip); err != nil {
			t.Fatalf("unparseable flip %q: %v", rr.Flip, err)
		}
	}

	// Reward the event asynchronously, then drain and check it landed.
	reward := postJSON(t, ts.URL+api.RouteV1Reward, map[string]any{"eventId": rr.EventID, "reward": 1.7})
	if reward.StatusCode != http.StatusAccepted {
		t.Fatalf("reward status = %d, want 202", reward.StatusCode)
	}
	reward.Body.Close()
	srv.Ingestor().Drain()

	stats := decodeJSON[api.StatsResponse](t, mustGet(t, ts.URL+api.RouteV1Stats))
	if stats.RankRequests != 1 || stats.BanditRanks != 1 || stats.HintHits != 0 {
		t.Errorf("stats = %+v, want 1 rank, 1 bandit rank, 0 hint hits", stats)
	}
	if stats.Ingest.Applied != 1 || stats.Ingest.TrainedEvents != 1 {
		t.Errorf("ingest stats = %+v, want 1 applied and trained", stats.Ingest)
	}
	if stats.BanditLog != 1 {
		t.Errorf("bandit log = %d, want 1", stats.BanditLog)
	}
	if stats.Routes != nil {
		t.Errorf("v1 stats carries route metrics %v, want none (v2-only field)", stats.Routes)
	}
}

func TestHintsInstallAndServe(t *testing.T) {
	cat := rules.NewCatalog()
	_, ts := newTestServer(t, Config{Catalog: cat, Seed: 11})

	// Install a day-7 hint table through the rollover endpoint.
	file := sis.File{Day: 7, Hints: []sis.Hint{
		{TemplateHash: 0xabc123, TemplateID: "T0042", Flip: cat.FlipFor(40), Day: 7},
	}}
	var buf bytes.Buffer
	if err := sis.Serialize(&buf, file); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+api.RouteV1Hints, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	install := decodeJSON[api.HintsInstallResponse](t, resp)
	if resp.StatusCode != http.StatusOK || install.Installed != 1 || install.Day != 7 || install.Generation != 1 {
		t.Fatalf("hints install: status %d, body %+v", resp.StatusCode, install)
	}

	// A rank for the hinted template must hit the cache — no event logged.
	rank := postJSON(t, ts.URL+api.RouteV1Rank, api.RankRequest{TemplateHash: 0xabc123, Span: []int{40}})
	rr := decodeJSON[api.RankResponse](t, rank)
	if rr.Source != api.SourceHint || rr.EventID != "" {
		t.Fatalf("rank = %+v, want hint-cache hit", rr)
	}
	if rr.Flip != cat.FlipFor(40).String() || rr.HintDay != 7 || rr.Generation != 1 {
		t.Fatalf("hint payload = %+v", rr)
	}

	// Unknown template still goes to the bandit.
	rank2 := postJSON(t, ts.URL+api.RouteV1Rank, api.RankRequest{TemplateHash: 1, Span: []int{40}})
	if rr2 := decodeJSON[api.RankResponse](t, rank2); rr2.Source != api.SourceBandit {
		t.Fatalf("unhinted rank source = %q, want bandit", rr2.Source)
	}
}

// expectError asserts a structured error envelope with the wanted code.
func expectError(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	env := decodeJSON[api.ErrorResponse](t, resp)
	if env.Error.Code != wantCode {
		t.Errorf("error code = %q, want %q (message %q)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Errorf("error envelope for %s has empty message", wantCode)
	}
}

// TestAPIConformanceErrorEnvelopes covers the HTTP error paths of both
// protocol versions: wrong method, malformed JSON, oversized bodies,
// unknown reward events, rollover validation failures — all asserting
// the machine-readable envelope.
func TestAPIConformanceErrorEnvelopes(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 3})

	// One real rank event so reward tests can tell unknown from known.
	known, err := srv.Rank(api.RankRequest{TemplateHash: 9, Span: []int{5}})
	if err != nil {
		t.Fatal(err)
	}

	do := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	oversized := `{"templateId":"` + strings.Repeat("A", maxJSONBody) + `"}`

	cases := []struct {
		name         string
		method, path string
		body         string
		wantStatus   int
		wantCode     string
	}{
		{"GET v1 rank", http.MethodGet, api.RouteV1Rank, "", 405, api.CodeMethodNotAllowed},
		{"GET v2 rank", http.MethodGet, api.RouteV2Rank, "", 405, api.CodeMethodNotAllowed},
		{"GET v1 reward", http.MethodGet, api.RouteV1Reward, "", 405, api.CodeMethodNotAllowed},
		{"DELETE v2 reward", http.MethodDelete, api.RouteV2Reward, "", 405, api.CodeMethodNotAllowed},
		{"POST v2 healthz", http.MethodPost, api.RouteV2Healthz, "", 405, api.CodeMethodNotAllowed},
		{"POST v2 stats", http.MethodPost, api.RouteV2Stats, "", 405, api.CodeMethodNotAllowed},
		{"GET v1 hints", http.MethodGet, api.RouteV1Hints, "", 405, api.CodeMethodNotAllowed},
		{"DELETE snapshot", http.MethodDelete, api.RouteV1Snapshot, "", 405, api.CodeMethodNotAllowed},

		{"malformed v1 rank", http.MethodPost, api.RouteV1Rank, "{", 400, api.CodeInvalidJSON},
		{"malformed v2 rank", http.MethodPost, api.RouteV2Rank, "{", 400, api.CodeInvalidJSON},
		{"malformed v1 reward", http.MethodPost, api.RouteV1Reward, "{", 400, api.CodeInvalidJSON},
		{"malformed v2 reward", http.MethodPost, api.RouteV2Reward, "{", 400, api.CodeInvalidJSON},
		{"bad hash", http.MethodPost, api.RouteV1Rank, `{"templateHash":"zz","span":[1]}`, 400, api.CodeInvalidJSON},

		{"oversized v1 rank", http.MethodPost, api.RouteV1Rank, oversized, 413, api.CodeBodyTooLarge},
		{"oversized v1 reward", http.MethodPost, api.RouteV1Reward, oversized, 413, api.CodeBodyTooLarge},

		{"span out of range v1", http.MethodPost, api.RouteV1Rank,
			`{"templateHash":"0000000000000001","span":[999]}`, 400, api.CodeInvalidRequest},
		{"empty span v1", http.MethodPost, api.RouteV1Rank,
			`{"templateHash":"0000000000000001","span":[]}`, 400, api.CodeInvalidRequest},
		{"empty batch v2 rank", http.MethodPost, api.RouteV2Rank, `{"jobs":[]}`, 400, api.CodeInvalidRequest},
		{"empty batch v2 reward", http.MethodPost, api.RouteV2Reward, `{"events":[]}`, 400, api.CodeInvalidRequest},

		{"missing templateHash v1", http.MethodPost, api.RouteV1Rank, `{"span":[1]}`, 400, api.CodeInvalidJSON},
		{"missing templateHash v2", http.MethodPost, api.RouteV2Rank, `{"jobs":[{"span":[1]}]}`, 400, api.CodeInvalidJSON},

		{"unknown route", http.MethodGet, "/v1/nope", "", 404, api.CodeNotFound},
		{"root path", http.MethodGet, "/", "", 404, api.CodeNotFound},
		{"unversioned rank", http.MethodPost, "/rank", `{}`, 404, api.CodeNotFound},

		{"missing reward fields v1", http.MethodPost, api.RouteV1Reward, `{"eventId":""}`, 400, api.CodeInvalidRequest},
		{"unknown event v1", http.MethodPost, api.RouteV1Reward,
			`{"eventId":"ev-never-ranked","reward":1.0}`, 404, api.CodeUnknownEvent},

		{"rollover validation failure", http.MethodPost, api.RouteV1Hints,
			"qoadvisor-hints v1 day=7\n00000000000abc12,T1,-R000,7\n", 400, api.CodeValidationFailed},
		{"rollover parse failure", http.MethodPost, api.RouteV1Hints,
			"not a hint file", 400, api.CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectError(t, do(tc.method, tc.path, tc.body), tc.wantStatus, tc.wantCode)
		})
	}

	// The known event still rewards fine after all that.
	resp := postJSON(t, ts.URL+api.RouteV1Reward, map[string]any{"eventId": known.EventID, "reward": 0.5})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("known event reward status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestAPIConformanceOversizedBatch checks the 8 MiB v2 cap separately
// (the body is large enough to keep out of the table above).
func TestAPIConformanceOversizedBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 3})
	body := `{"jobs":[{"templateId":"` + strings.Repeat("A", maxBatchBody) + `"}]}`
	resp, err := http.Post(ts.URL+api.RouteV2Rank, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	expectError(t, resp, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge)
}

// TestAPIConformanceOversizedHintFile checks the 64 MiB rollover cap:
// the truncation must be reported as body_too_large, not as a bogus
// parse error at the cut point (and never installed truncated).
func TestAPIConformanceOversizedHintFile(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 3})
	var body strings.Builder
	body.WriteString("qoadvisor-hints v1 day=1\n")
	// Valid lines all the way past the cap, so a scanner that parsed
	// the truncated body would accept it.
	line := "00000000000abc12,T1,-R040,1\n"
	for body.Len() <= maxHintBody {
		body.WriteString(line)
	}
	resp, err := http.Post(ts.URL+api.RouteV1Hints, "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	expectError(t, resp, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge)
	if srv.Cache().Size() != 0 || srv.Cache().Generation() != 0 {
		t.Errorf("truncated hint file was installed: size %d gen %d",
			srv.Cache().Size(), srv.Cache().Generation())
	}
}

// TestAPIConformanceV1V2Rank proves the two protocol versions return
// identical steering decisions for the same job: the hint path on one
// server (deterministic), and the bandit path across two servers with
// identical seeds (same rng sequence), ranked via /v1 on one and /v2 on
// the other.
func TestAPIConformanceV1V2Rank(t *testing.T) {
	cat := rules.NewCatalog()

	t.Run("hint path", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{Catalog: cat, Seed: 5})
		if _, err := srv.InstallHints([]sis.Hint{
			{TemplateHash: 0x77, TemplateID: "T7", Flip: cat.FlipFor(52), Day: 3},
		}); err != nil {
			t.Fatal(err)
		}
		job := api.RankRequest{TemplateHash: 0x77, Span: []int{52}}

		v1 := decodeJSON[api.RankResponse](t, postJSON(t, ts.URL+api.RouteV1Rank, job))
		v2 := decodeJSON[api.BatchRankResponse](t, postJSON(t, ts.URL+api.RouteV2Rank,
			api.BatchRankRequest{Jobs: []api.RankRequest{job}}))
		if len(v2.Results) != 1 || v2.Results[0].Error != nil {
			t.Fatalf("v2 batch = %+v", v2)
		}
		if v1 != v2.Results[0].RankResponse {
			t.Errorf("v1 = %+v\nv2 = %+v, want identical hint decisions", v1, v2.Results[0].RankResponse)
		}
		if v2.Generation != 1 || v2.RequestID == "" {
			t.Errorf("v2 envelope generation=%d requestId=%q", v2.Generation, v2.RequestID)
		}
	})

	t.Run("bandit path", func(t *testing.T) {
		// Same seed, sequential batch fan-out: the rng sequences align,
		// so decision i of the v1 stream must equal decision i of the v2
		// batch (event IDs carry a per-instance nonce and are excluded).
		_, ts1 := newTestServer(t, Config{Catalog: cat, Seed: 9, RankWorkers: 1})
		_, ts2 := newTestServer(t, Config{Catalog: cat, Seed: 9, RankWorkers: 1})
		jobs := make([]api.RankRequest, 6)
		for i := range jobs {
			jobs[i] = api.RankRequest{
				TemplateHash: api.TemplateHash(i + 1),
				Span:         []int{3 + i, 40, 100 + i},
				RowCount:     float64(1000 * (i + 1)),
				BytesRead:    float64(int64(1) << (10 + i)),
			}
		}
		var fromV1 []api.RankResponse
		for _, job := range jobs {
			fromV1 = append(fromV1, decodeJSON[api.RankResponse](t, postJSON(t, ts1.URL+api.RouteV1Rank, job)))
		}
		batch := decodeJSON[api.BatchRankResponse](t, postJSON(t, ts2.URL+api.RouteV2Rank,
			api.BatchRankRequest{Jobs: jobs}))
		if len(batch.Results) != len(jobs) {
			t.Fatalf("v2 returned %d results for %d jobs", len(batch.Results), len(jobs))
		}
		for i, res := range batch.Results {
			if res.Error != nil {
				t.Fatalf("job %d: v2 error %v", i, res.Error)
			}
			got, want := res.RankResponse, fromV1[i]
			got.EventID, want.EventID = "", ""
			if got != want {
				t.Errorf("job %d: v1 = %+v\n          v2 = %+v, want identical decisions", i, want, got)
			}
		}
	})
}

func TestV2BatchRankMixedResults(t *testing.T) {
	cat := rules.NewCatalog()
	srv, ts := newTestServer(t, Config{Catalog: cat, Seed: 21})
	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: 0x10, TemplateID: "T0", Flip: cat.FlipFor(44), Day: 2},
	}); err != nil {
		t.Fatal(err)
	}

	batch := api.BatchRankRequest{Jobs: []api.RankRequest{
		{TemplateHash: 0x10, Span: []int{44}},             // hint hit
		{TemplateHash: 0x11, Span: []int{44, 60}},         // bandit
		{TemplateHash: 0x12, Span: []int{}},               // invalid: empty span
		{TemplateHash: 0x13, Span: []int{rules.NumRules}}, // invalid: out of range
	}}
	resp := postJSON(t, ts.URL+api.RouteV2Rank, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (per-job errors ride inside)", resp.StatusCode)
	}
	if rid := resp.Header.Get(api.RequestIDHeader); rid == "" {
		t.Error("missing X-Request-Id response header")
	}
	out := decodeJSON[api.BatchRankResponse](t, resp)
	if len(out.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(out.Results))
	}
	if out.Results[0].Source != api.SourceHint || out.Results[0].Error != nil {
		t.Errorf("job 0 = %+v, want hint hit", out.Results[0])
	}
	if out.Results[1].Source != api.SourceBandit || out.Results[1].EventID == "" {
		t.Errorf("job 1 = %+v, want bandit decision", out.Results[1])
	}
	for i := 2; i < 4; i++ {
		if out.Results[i].Error == nil || out.Results[i].Error.Code != api.CodeInvalidRequest {
			t.Errorf("job %d error = %+v, want %s", i, out.Results[i].Error, api.CodeInvalidRequest)
		}
	}
}

func TestV2BatchReward(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 8, TrainEvery: 2})

	var events []api.RewardEvent
	val := 1.25
	for i := 0; i < 3; i++ {
		rr, err := srv.Rank(api.RankRequest{TemplateHash: api.TemplateHash(i + 1), Span: []int{7 + i}})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, api.RewardEvent{EventID: rr.EventID, Reward: &val})
	}
	events = append(events,
		api.RewardEvent{EventID: "ev-nope", Reward: &val}, // unknown
		api.RewardEvent{EventID: events[0].EventID},       // missing reward
	)

	resp := postJSON(t, ts.URL+api.RouteV2Reward, api.BatchRewardRequest{Events: events})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch reward status = %d, want 202", resp.StatusCode)
	}
	out := decodeJSON[api.BatchRewardResponse](t, resp)
	if out.Queued != 3 || len(out.Rejected) != 2 {
		t.Fatalf("batch reward = %+v, want 3 queued 2 rejected", out)
	}
	if out.Rejected[0].Index != 3 || out.Rejected[0].Error.Code != api.CodeUnknownEvent {
		t.Errorf("rejection 0 = %+v, want unknown_event at index 3", out.Rejected[0])
	}
	if out.Rejected[1].Index != 4 || out.Rejected[1].Error.Code != api.CodeInvalidRequest {
		t.Errorf("rejection 1 = %+v, want invalid_request at index 4", out.Rejected[1])
	}

	srv.Ingestor().Drain()
	if st := srv.Ingestor().Stats(); st.Applied != 3 {
		t.Errorf("applied = %d, want 3", st.Applied)
	}
}

func TestV2RewardQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 8})
	rr, err := srv.Rank(api.RankRequest{TemplateHash: 1, Span: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	// Closing the ingestor makes every enqueue report backpressure —
	// the same path a saturated queue takes.
	srv.Close()
	val := 1.0
	resp := postJSON(t, ts.URL+api.RouteV2Reward,
		api.BatchRewardRequest{Events: []api.RewardEvent{{EventID: rr.EventID, Reward: &val}}})
	expectError(t, resp, http.StatusServiceUnavailable, api.CodeQueueFull)

	v1 := postJSON(t, ts.URL+api.RouteV1Reward, map[string]any{"eventId": rr.EventID, "reward": 1.0})
	expectError(t, v1, http.StatusServiceUnavailable, api.CodeQueueFull)

	// A malformed straggler must not mask the backpressure: nothing was
	// queued and queue_full is among the rejections, so the batch still
	// 503s (a 202 here would defeat the client's retry and silently
	// drop every reward that would succeed on retry).
	mixed := postJSON(t, ts.URL+api.RouteV2Reward,
		api.BatchRewardRequest{Events: []api.RewardEvent{
			{EventID: ""}, // invalid_request
			{EventID: rr.EventID, Reward: &val},
		}})
	expectError(t, mixed, http.StatusServiceUnavailable, api.CodeQueueFull)
}

func TestV2HealthzAndStats(t *testing.T) {
	cat := rules.NewCatalog()
	srv, ts := newTestServer(t, Config{Catalog: cat, Seed: 2})
	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: 0x42, TemplateID: "T", Flip: cat.FlipFor(41), Day: 1},
	}); err != nil {
		t.Fatal(err)
	}

	// Propagate a caller-chosen correlation ID.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+api.RouteV2Healthz, nil)
	req.Header.Set(api.RequestIDHeader, "corr-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(api.RequestIDHeader); got != "corr-123" {
		t.Errorf("request-id header = %q, want propagated corr-123", got)
	}
	health := decodeJSON[api.HealthResponse](t, resp)
	if health.Status != api.HealthOK || health.Generation != 1 || health.Hints != 1 || health.RequestID != "corr-123" {
		t.Errorf("healthz = %+v", health)
	}

	// Drive one rank and one 405 so the route metrics have content.
	postJSON(t, ts.URL+api.RouteV1Rank, api.RankRequest{TemplateHash: 0x42, Span: []int{41}}).Body.Close()
	mustGet(t, ts.URL+api.RouteV1Rank).Body.Close()

	stats := decodeJSON[api.StatsResponse](t, mustGet(t, ts.URL+api.RouteV2Stats))
	if stats.RequestID == "" {
		t.Error("v2 stats missing requestId")
	}
	rank := stats.Routes[api.RouteV1Rank]
	if rank.Count != 2 || rank.Errors != 1 {
		t.Errorf("route metrics for v1 rank = %+v, want count 2 errors 1", rank)
	}
	if hz := stats.Routes[api.RouteV2Healthz]; hz.Count != 1 || hz.Errors != 0 {
		t.Errorf("route metrics for healthz = %+v, want count 1", hz)
	}
	if stats.HintHits != 1 {
		t.Errorf("hint hits = %d, want 1", stats.HintHits)
	}
}

func TestModelSnapshotOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snapshot")
	srv, ts := newTestServer(t, Config{Seed: 11, SnapshotPath: path})

	// Learn something first so the snapshot carries weights.
	rr, err := srv.Rank(api.RankRequest{TemplateHash: 1, Span: []int{3, 17}, RowCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv.RewardAsync(rr.EventID, 1.9)
	srv.Ingestor().Drain()

	// GET streams a loadable model.
	get := mustGet(t, ts.URL+api.RouteV1Snapshot)
	defer get.Body.Close()
	loaded, err := bandit.Load(get.Body, 1)
	if err != nil {
		t.Fatalf("GET snapshot is not loadable: %v", err)
	}

	// POST persists to the configured path; the file round-trips to the
	// same scores as the in-memory learner.
	post := postJSON(t, ts.URL+api.RouteV1Snapshot, nil)
	body := decodeJSON[api.SnapshotSaveResponse](t, post)
	if post.StatusCode != http.StatusOK || body.Path != path || body.Bytes <= 0 {
		t.Fatalf("POST snapshot: status %d body %+v", post.StatusCode, body)
	}
	var mem, file bytes.Buffer
	if err := srv.SnapshotTo(&mem); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&file); err != nil {
		t.Fatal(err)
	}
	if mem.String() != file.String() {
		t.Error("GET snapshot differs from in-memory model")
	}
}

func TestSnapshotPostWithoutPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 1})
	resp := postJSON(t, ts.URL+api.RouteV1Snapshot, nil)
	expectError(t, resp, http.StatusConflict, api.CodeSnapshotUnconfigured)
}

func TestBatchRankTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 1})
	jobs := make([]api.RankRequest, api.MaxRankBatch+1)
	for i := range jobs {
		jobs[i] = api.RankRequest{TemplateHash: api.TemplateHash(i), Span: []int{1}}
	}
	resp := postJSON(t, ts.URL+api.RouteV2Rank, api.BatchRankRequest{Jobs: jobs})
	expectError(t, resp, http.StatusBadRequest, api.CodeInvalidRequest)
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
