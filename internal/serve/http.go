package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/par"
	"qoadvisor/internal/sis"
)

// Request body caps: steering queries and rewards are tiny; batches
// scale with the job population; hint files scale with the template
// population but stay far below their cap.
const (
	maxJSONBody  = 1 << 20  // 1 MiB: single-job v1 bodies
	maxBatchBody = 8 << 20  // 8 MiB: /v2 batch bodies
	maxHintBody  = 64 << 20 // 64 MiB: hint rollover files
)

// httpLayer is the server's HTTP face: the versioned mux plus the
// middleware state (request-ID source, per-route metrics). The /v1
// handlers are thin single-item adapters over the same batch cores the
// /v2 handlers fan out, so both versions make identical decisions.
type httpLayer struct {
	srv *Server
	mux *http.ServeMux

	// reqNonce spreads request IDs across server instances; reqSeq
	// orders them within one.
	reqNonce uint64
	reqSeq   atomic.Uint64

	stats map[string]*routeStats
}

// routeStats aggregates one route's middleware counters and its
// latency histogram (the source of the /v2/stats percentile fields and
// the qoserved_http_request_duration_seconds series).
type routeStats struct {
	count       atomic.Int64
	errors      atomic.Int64
	status5xx   atomic.Int64
	totalMicros atomic.Int64
	maxMicros   atomic.Int64
	lat         obs.Histogram
}

func newHTTPLayer(s *Server) *httpLayer {
	h := &httpLayer{
		srv:      s,
		mux:      http.NewServeMux(),
		reqNonce: bandit.Mix64(uint64(time.Now().UnixNano())),
		stats:    make(map[string]*routeStats),
	}
	for _, route := range []struct {
		path    string
		handler http.HandlerFunc
	}{
		{api.RouteV1Rank, h.handleRankV1},
		{api.RouteV1Reward, h.handleRewardV1},
		{api.RouteV1Hints, h.handleHints},
		{api.RouteV1Stats, h.handleStatsV1},
		{api.RouteV1Snapshot, h.handleSnapshot},
		{api.RouteV2Rank, h.handleRankV2},
		{api.RouteV2Reward, h.handleRewardV2},
		{api.RouteV2Healthz, h.handleHealthz},
		{api.RouteV2Stats, h.handleStatsV2},
		{api.RouteV2Quarantine, h.handleQuarantine},
		{api.RouteV2WAL, h.handleWALStream},
		{api.RouteV2WALSnapshot, h.handleWALSnapshot},
		{api.RouteV2AuditRecords, h.handleAuditRecords},
		{api.RouteV2AuditDecision, h.handleAuditDecision},
		{api.RouteV2AuditTemplate, h.handleAuditTemplate},
		{api.RouteV2AuditAsOf, h.handleAuditAsOf},
		{api.RouteV2Traces, h.handleTraces},
		{api.RouteV2Incidents, h.handleIncidents},
		{api.RouteV2Version, h.handleVersion},
		{api.RouteMetrics, h.handleMetrics},
	} {
		h.stats[route.path] = &routeStats{}
		h.mux.HandleFunc(route.path, h.instrument(route.path, route.handler))
	}
	// /v2/incidents/{id} shares the list route's handler and metrics
	// label; the handler dispatches on the path suffix.
	h.mux.HandleFunc(api.RouteV2Incidents+"/", h.instrument(api.RouteV2Incidents, h.handleIncidents))
	// Unmatched paths must still speak the protocol: an envelope with a
	// request ID, not the mux's plain-text 404 (which a typed client
	// would misread as a server fault).
	h.stats[routeUnmatched] = &routeStats{}
	h.mux.HandleFunc("/", h.instrument(routeUnmatched, h.handleNotFound))
	return h
}

// routeUnmatched is the metrics label for requests no route claimed.
const routeUnmatched = "(unmatched)"

func (h *httpLayer) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, requestID(r), api.Errorf(api.CodeNotFound, "no route %s in /v1 or /v2", r.URL.Path))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.http.mux.ServeHTTP(w, r) }

// --- middleware: request IDs + per-route metrics ---

type ctxKeyRequest struct{}

// requestInfo is the per-request context payload: correlation ID plus
// the request's span buffer. One struct under one key keeps the
// middleware at a single context node whether or not the request is
// traced — tracing must not add allocations to the fast path.
type requestInfo struct {
	id string
	tr *obs.Trace // nil when untraced
}

// requestID returns the request's correlation ID, assigned or
// propagated by the instrument middleware.
func requestID(r *http.Request) string {
	if ri, ok := r.Context().Value(ctxKeyRequest{}).(*requestInfo); ok {
		return ri.id
	}
	return ""
}

func (h *httpLayer) newRequestID() string {
	return fmt.Sprintf("%08x-%08x", uint32(h.reqNonce), h.reqSeq.Add(1))
}

// statusRecorder captures the response status for the error counter.
//
// The forwarding contract: wrapping an http.ResponseWriter hides every
// optional interface the underlying writer implements, because type
// assertions see only statusRecorder's method set. Each optional
// interface a handler or the net/http internals probe for must be
// re-implemented here as a forwarding method — currently http.Flusher
// (the WAL replication stream flushes frames through the middleware)
// and io.ReaderFrom (ServeContent/io.Copy use it for sendfile-grade
// body copies; without the forward, wrapping silently degrades them to
// buffered copies). Add a forward here when a handler starts relying
// on another one (http.Hijacker, http.Pusher, ...).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (the
// WAL replication stream) can push frames through the middleware.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards to the underlying writer's io.ReaderFrom (the
// sendfile path) when it has one, falling back to a plain copy.
func (sr *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := sr.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	return io.Copy(sr.ResponseWriter, src)
}

// traceFrom returns the request's sampled trace, or nil. All obs.Trace
// methods are nil-safe, so callers thread the result through without
// checking.
func traceFrom(r *http.Request) *obs.Trace {
	if ri, ok := r.Context().Value(ctxKeyRequest{}).(*requestInfo); ok {
		return ri.tr
	}
	return nil
}

// instrument wraps a route handler with request-ID injection (header in,
// header out, context through), latency/count/error metrics, and trace
// sampling: when the server's tracer elects this request, an obs.Trace
// rides the context for handlers to record stages on, and the completed
// event group is emitted when the handler returns.
func (h *httpLayer) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	m := h.stats[route]
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(api.RequestIDHeader)
		if rid == "" {
			rid = h.newRequestID()
		}
		w.Header().Set(api.RequestIDHeader, rid)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		tr := h.srv.sampleTrace() // nil tracer+recorder or unsampled: nil
		tr.SetRequestID(rid)      // nil-safe
		ctx := context.WithValue(r.Context(), ctxKeyRequest{}, &requestInfo{id: rid, tr: tr})
		start := time.Now()
		next(rec, r.WithContext(ctx))
		dur := time.Since(start)
		el := dur.Microseconds()

		m.count.Add(1)
		m.totalMicros.Add(el)
		m.lat.Observe(dur)
		if rec.status >= 400 {
			m.errors.Add(1)
		}
		if rec.status >= 500 {
			// Availability SLO input: 5xx is the server failing, 4xx is
			// the client's problem.
			m.status5xx.Add(1)
		}
		for {
			max := m.maxMicros.Load()
			if el <= max || m.maxMicros.CompareAndSwap(max, el) {
				break
			}
		}
		tr.FinishRequest(route, start, dur, rec.status)
	}
}

// routeMetrics snapshots the middleware counters for /v2/stats.
func (h *httpLayer) routeMetrics() map[string]api.RouteStats {
	out := make(map[string]api.RouteStats, len(h.stats))
	for route, m := range h.stats {
		lat := m.lat.Snapshot()
		out[route] = api.RouteStats{
			Count:       m.count.Load(),
			Errors:      m.errors.Load(),
			TotalMicros: m.totalMicros.Load(),
			MaxMicros:   m.maxMicros.Load(),
			P50Micros:   lat.Quantile(0.50).Microseconds(),
			P90Micros:   lat.Quantile(0.90).Microseconds(),
			P99Micros:   lat.Quantile(0.99).Microseconds(),
			P999Micros:  lat.Quantile(0.999).Microseconds(),
			Hist:        histToWire(lat),
		}
	}
	return out
}

// --- encoding helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the structured envelope; the status follows the code.
func writeError(w http.ResponseWriter, rid string, e *api.Error) {
	writeJSON(w, api.StatusForCode(e.Code), api.ErrorResponse{Error: *e, RequestID: rid})
}

// toAPIError coerces any error into the envelope payload: typed errors
// pass through, everything else becomes an internal error.
func toAPIError(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	return api.Errorf(api.CodeInternal, "%v", err)
}

// decodeBody decodes a JSON body under a size cap, classifying failures
// as body_too_large vs invalid_json.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) *api.Error {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v)
	if err == nil {
		return nil
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return api.Errorf(api.CodeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
	}
	return api.Errorf(api.CodeInvalidJSON, "decoding request: %v", err)
}

// requireMethod writes the 405 envelope and returns false when the verb
// does not match.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeError(w, requestID(r), api.Errorf(api.CodeMethodNotAllowed, "%s required", method))
		return false
	}
	return true
}

// requirePrimary rejects state-mutating requests on a follower with the
// structured not_primary envelope carrying the leader URL, so clients
// chase the redirect instead of guessing. Returns false when rejected.
func (h *httpLayer) requirePrimary(w http.ResponseWriter, r *http.Request) bool {
	if h.srv.follower {
		writeError(w, requestID(r), api.NotPrimary(h.srv.leaderURL))
		return false
	}
	return true
}

// --- batch cores (shared by v1 adapters and v2 handlers) ---

// rankBatch fans a job batch out over the rank worker pool. Results
// align index-for-index with jobs; per-job failures land in the item's
// Error field so one malformed job cannot void its neighbors. tr, when
// the request was sampled, records each job's stages on its own trace
// lane (nil otherwise).
func (h *httpLayer) rankBatch(jobs []api.RankRequest, tr *obs.Trace) []api.RankResult {
	results := make([]api.RankResult, len(jobs))
	par.For(len(jobs), h.srv.rankWorkers, func(i int) {
		resp, err := h.srv.rankTraced(jobs[i], tr, i)
		if err != nil {
			results[i].Error = toAPIError(err)
			return
		}
		results[i].RankResponse = resp
	})
	return results
}

// rewardBatch feeds a telemetry batch to the ingestion queue. Events
// that name no logged rank decision are rejected synchronously
// (unknown_event) rather than silently dropped on the async path; the
// valid remainder is accepted as one batch — journaled before this
// call returns when the server runs with a WAL, so a 202 means the
// telemetry is as durable as the configured sync mode promises — with
// queue saturation rejecting the overflow as queue_full.
//
// An event carrying a templateHash additionally feeds the drift
// safeguard (observed counts those); a template-only event — the
// reward path for hint-served decisions, which log no rank event — is
// observed without being queued. A non-finite reward is rejected
// typed (invalid_reward) before it can reach either the bandit
// weights or the drift sketches, and a drift transition that cannot
// be journaled rejects the event with CodeInternal (fail-stop: the
// hint must not keep serving unsafeguarded while the disk is sick).
func (h *httpLayer) rewardBatch(events []api.RewardEvent, tr *obs.Trace) (queued, observed int, rejected []api.RewardRejection) {
	reject := func(i int, e *api.Error) {
		rejected = append(rejected, api.RewardRejection{Index: i, EventID: events[i].EventID, Error: *e})
	}
	entries := make([]bandit.RewardEntry, 0, len(events))
	idxs := make([]int, 0, len(events))
	for i, ev := range events {
		switch {
		case ev.Reward == nil || (ev.EventID == "" && ev.TemplateHash == nil):
			reject(i, api.Errorf(api.CodeInvalidRequest, "reward plus eventId and/or templateHash are required"))
			continue
		case math.IsNaN(*ev.Reward) || math.IsInf(*ev.Reward, 0):
			reject(i, api.Errorf(api.CodeInvalidReward, "reward must be finite, got %v", *ev.Reward))
			continue
		case ev.EventID != "" && !h.srv.bandit.HasEvent(ev.EventID):
			reject(i, api.Errorf(api.CodeUnknownEvent, "unknown event %q", ev.EventID))
			continue
		}
		if ev.TemplateHash != nil {
			if err := h.srv.ObserveReward(uint64(*ev.TemplateHash), *ev.Reward); err != nil {
				reject(i, toAPIError(err))
				continue
			}
			observed++
		}
		if ev.EventID != "" {
			entries = append(entries, bandit.RewardEntry{EventID: ev.EventID, Value: *ev.Reward})
			idxs = append(idxs, i)
		}
	}
	if len(entries) == 0 {
		return 0, observed, rejected
	}
	accepted, err := h.srv.ingest.enqueueBatch(entries, tr)
	queued = accepted
	for k := accepted; k < len(entries); k++ {
		// A journal failure with nothing accepted means the append
		// itself failed — those events were never queued (internal). Any
		// other shortfall is queue capacity, the retryable condition
		// (including a post-queue Commit failure: the overflow entries
		// were dropped for capacity before the journal was involved, so
		// they must keep the backpressure signal).
		if err != nil && accepted == 0 {
			reject(idxs[k], api.Errorf(api.CodeInternal, "journaling reward: %v", err))
		} else {
			reject(idxs[k], api.Errorf(api.CodeQueueFull, "reward queue full, retry"))
		}
	}
	return queued, observed, rejected
}

// --- v2 handlers ---

func (h *httpLayer) handleRankV2(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req api.BatchRankRequest
	if e := decodeBody(w, r, maxBatchBody, &req); e != nil {
		writeError(w, rid, e)
		return
	}
	switch n := len(req.Jobs); {
	case n == 0:
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "empty jobs batch"))
		return
	case n > api.MaxRankBatch:
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest,
			"batch of %d jobs exceeds limit %d", n, api.MaxRankBatch))
		return
	}
	writeJSON(w, http.StatusOK, api.BatchRankResponse{
		RequestID:  rid,
		Generation: h.srv.cache.Generation(),
		Results:    h.rankBatch(req.Jobs, traceFrom(r)),
	})
}

func (h *httpLayer) handleRewardV2(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodPost) || !h.requirePrimary(w, r) {
		return
	}
	var req api.BatchRewardRequest
	if e := decodeBody(w, r, maxBatchBody, &req); e != nil {
		writeError(w, rid, e)
		return
	}
	switch n := len(req.Events); {
	case n == 0:
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "empty events batch"))
		return
	case n > api.MaxRewardBatch:
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest,
			"batch of %d events exceeds limit %d", n, api.MaxRewardBatch))
		return
	}
	queued, observed, rejected := h.rewardBatch(req.Events, traceFrom(r))
	// Nothing accepted at all and a systemic failure was among the
	// reasons: surface it as the whole-batch status so clients react to
	// the condition instead of parsing rejections. queue_full → 503
	// (back off and retry; safe — no event was accepted, and any
	// malformed/unknown stragglers re-reject deterministically).
	// internal (journal fail-stop, including an unjournalable drift
	// transition) → 500. Partial acceptance stays 202 with per-event
	// rejections.
	if queued == 0 && observed == 0 {
		for _, rej := range rejected {
			if rej.Error.Code == api.CodeQueueFull {
				writeError(w, rid, api.Errorf(api.CodeQueueFull, "reward queue full, retry"))
				return
			}
		}
		for _, rej := range rejected {
			if rej.Error.Code == api.CodeInternal {
				e := rej.Error
				writeError(w, rid, &e)
				return
			}
		}
	}
	writeJSON(w, http.StatusAccepted, api.BatchRewardResponse{
		RequestID:  rid,
		Generation: h.srv.cache.Generation(),
		Queued:     queued,
		Observed:   observed,
		Rejected:   rejected,
	})
}

func (h *httpLayer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := h.srv.Health()
	resp.RequestID = requestID(r)
	status := http.StatusOK
	if resp.Status != api.HealthOK {
		// Degraded (stale follower): the body still describes the node,
		// but the status code is what LB health checks act on.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (h *httpLayer) handleStatsV2(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := h.fullStats()
	resp.RequestID = requestID(r)
	writeJSON(w, http.StatusOK, resp)
}

// fullStats assembles the complete stats document — the /v2/stats body
// minus the request ID. Incident captures snapshot the same document
// into the bundle's stats.json.
func (h *httpLayer) fullStats() api.StatsResponse {
	resp := h.srv.Stats()
	resp.Routes = h.routeMetrics()
	resp.Stages = h.srv.stageSummaries()
	resp.Version = &h.srv.version
	resp.Drift = h.srv.DriftStats(driftStatsTemplates)
	resp.SLO = h.srv.sloStats()
	return resp
}

// handleTraces serves the retained slow-trace ring as a Chrome-trace
// document: GET /v2/traces?route=&min_ms=&limit=. The body's
// traceEvents key loads directly in chrome://tracing / Perfetto.
func (h *httpLayer) handleTraces(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "min_ms must be a non-negative number, got %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "limit must be a non-negative integer, got %q", v))
			return
		}
		limit = n
	}
	resp := h.srv.tracesResponse(q.Get("route"), minDur, limit)
	resp.RequestID = rid
	writeJSON(w, http.StatusOK, resp)
}

// handleIncidents is the flight recorder's capture surface:
// GET /v2/incidents lists bundles, GET /v2/incidents/{id} fetches one
// bundle's metadata, GET /v2/incidents/{id}?file={name} streams an
// artifact, and POST /v2/incidents captures a manual bundle (bypassing
// the cooldown — the operator is asking for evidence now).
func (h *httpLayer) handleIncidents(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	eng := h.srv.incidents
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, api.RouteV2Incidents), "/")
	switch r.Method {
	case http.MethodGet:
		if eng == nil {
			if id != "" {
				writeError(w, rid, api.Errorf(api.CodeIncidentsDisabled, "incident capture is disabled (no -incident-dir)"))
				return
			}
			writeJSON(w, http.StatusOK, api.IncidentsResponse{Incidents: []api.IncidentMeta{}, RequestID: rid})
			return
		}
		if id == "" {
			writeJSON(w, http.StatusOK, api.IncidentsResponse{
				Enabled: true, Incidents: eng.list(), RequestID: rid,
			})
			return
		}
		if name := r.URL.Query().Get("file"); name != "" {
			f, err := eng.file(id, name)
			if err != nil {
				writeError(w, rid, toAPIError(err))
				return
			}
			defer f.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			io.Copy(w, f)
			return
		}
		meta, err := eng.get(id)
		if err != nil {
			writeError(w, rid, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.IncidentResponse{Incident: meta, RequestID: rid})
	case http.MethodPost:
		if eng == nil {
			writeError(w, rid, api.Errorf(api.CodeIncidentsDisabled, "incident capture is disabled (no -incident-dir)"))
			return
		}
		if id != "" {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "POST %s to capture; bundle paths are read-only", api.RouteV2Incidents))
			return
		}
		meta, err := eng.fire(time.Now(), incidentManual, "operator capture via POST "+api.RouteV2Incidents, 0, true)
		if err != nil {
			writeError(w, rid, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.IncidentResponse{Incident: meta, RequestID: rid})
	default:
		writeError(w, rid, api.Errorf(api.CodeMethodNotAllowed, "GET or POST required"))
	}
}

// driftStatsTemplates caps the per-template drift listing in /v2/stats
// (non-healthy templates always appear; the rest are the worst-scoring
// tracked ones up to this many total).
const driftStatsTemplates = 32

// handleQuarantine is the drift-safeguard admin surface: GET lists the
// durable quarantine table (served on any node — a follower's answer
// reflects the replicated state), POST applies a manual quarantine or
// restore on the primary, journaled exactly like a detector
// transition.
func (h *httpLayer) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	switch r.Method {
	case http.MethodGet:
		resp := api.QuarantineListResponse{RequestID: rid, Templates: []api.QuarantineEntry{}}
		for _, t := range h.srv.DriftStats(0).Templates {
			if t.State == drift.StateQuarantined.String() || t.State == drift.StateProbation.String() {
				resp.Templates = append(resp.Templates, api.QuarantineEntry{
					TemplateHash: t.TemplateHash, State: t.State,
				})
			}
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		if !h.requirePrimary(w, r) {
			return
		}
		var req api.QuarantineRequest
		if e := decodeBody(w, r, maxJSONBody, &req); e != nil {
			writeError(w, rid, e)
			return
		}
		var quarantine bool
		switch req.Action {
		case api.QuarantineActionQuarantine:
			quarantine = true
		case api.QuarantineActionRestore:
			quarantine = false
		default:
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest,
				"action must be %q or %q", api.QuarantineActionQuarantine, api.QuarantineActionRestore))
			return
		}
		tr, err := h.srv.Quarantine(uint64(req.TemplateHash), quarantine)
		if err != nil {
			writeError(w, rid, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.QuarantineResponse{
			RequestID:    rid,
			TemplateHash: req.TemplateHash,
			From:         tr.From.String(),
			To:           tr.To.String(),
		})
	default:
		writeError(w, rid, api.Errorf(api.CodeMethodNotAllowed, "GET or POST required"))
	}
}

// --- v1 handlers (single-item adapters over the batch cores) ---

func (h *httpLayer) handleRankV1(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var job api.RankRequest
	if e := decodeBody(w, r, maxJSONBody, &job); e != nil {
		writeError(w, rid, e)
		return
	}
	res := h.rankBatch([]api.RankRequest{job}, traceFrom(r))[0]
	if res.Error != nil {
		writeError(w, rid, res.Error)
		return
	}
	writeJSON(w, http.StatusOK, res.RankResponse)
}

func (h *httpLayer) handleRewardV1(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodPost) || !h.requirePrimary(w, r) {
		return
	}
	var ev api.RewardEvent
	if e := decodeBody(w, r, maxJSONBody, &ev); e != nil {
		writeError(w, rid, e)
		return
	}
	if _, _, rejected := h.rewardBatch([]api.RewardEvent{ev}, traceFrom(r)); len(rejected) > 0 {
		writeError(w, rid, &rejected[0].Error)
		return
	}
	writeJSON(w, http.StatusAccepted, api.RewardResponse{Status: "queued"})
}

// handleHints installs a hint table from a SIS exchange-format body —
// the HTTP face of the pipeline rollover.
func (h *httpLayer) handleHints(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodPost) || !h.requirePrimary(w, r) {
		return
	}
	// Read the whole body before parsing: sis.Parse runs on a
	// line scanner, so a MaxBytesReader truncation would otherwise
	// surface as a bogus mid-line parse error — or, cut exactly on a
	// line boundary, install a silently truncated table.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHintBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, rid, api.Errorf(api.CodeBodyTooLarge, "hint file exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "reading hint file: %v", err))
		return
	}
	file, err := sis.Parse(bytes.NewReader(body))
	if err != nil {
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	gen, err := h.srv.InstallHints(file.Hints)
	if err != nil {
		// Typed errors (journal fail-stop = internal) pass through; plain
		// errors are the SIS validation gate.
		var ae *api.Error
		if errors.As(err, &ae) {
			writeError(w, rid, ae)
		} else {
			writeError(w, rid, api.Errorf(api.CodeValidationFailed, "%v", err))
		}
		return
	}
	writeJSON(w, http.StatusOK, api.HintsInstallResponse{
		Installed:  len(file.Hints),
		Day:        file.Day,
		Generation: gen,
	})
}

func (h *httpLayer) handleStatsV1(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, h.srv.Stats())
}

// handleSnapshot serves the model state: GET streams the persisted form,
// POST writes it to the configured snapshot path for restart recovery.
func (h *httpLayer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := h.srv.SnapshotTo(w); err != nil {
			// Headers are gone; the truncated body will fail bandit.Load.
			return
		}
	case http.MethodPost:
		if !h.requirePrimary(w, r) {
			return
		}
		if h.srv.snapshotPath == "" {
			writeError(w, rid, api.Errorf(api.CodeSnapshotUnconfigured, "no snapshot path configured"))
			return
		}
		n, err := h.srv.SnapshotToPath(h.srv.snapshotPath)
		if err != nil {
			writeError(w, rid, api.Errorf(api.CodeInternal, "snapshot failed: %v", err))
			return
		}
		writeJSON(w, http.StatusOK, api.SnapshotSaveResponse{Path: h.srv.snapshotPath, Bytes: n})
	default:
		writeError(w, rid, api.Errorf(api.CodeMethodNotAllowed, "GET or POST required"))
	}
}
