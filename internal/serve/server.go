package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

// Config parameterizes the steering server.
type Config struct {
	// Catalog is the rule catalog steering decisions are made against
	// (nil selects the canonical 256-rule catalog).
	Catalog *rules.Catalog
	// Bandit is the rank/reward learner to serve. Nil builds a fresh one
	// from Seed; passing the daily pipeline's trained service carries the
	// learned policy into serving.
	Bandit *bandit.Service
	// Seed drives exploration when Bandit is nil.
	Seed int64
	// Uniform switches ranking to the uniform-at-random logging policy
	// (the paper's off-policy data-collection mode).
	Uniform bool
	// Shards is the hint-cache shard count (0 = default).
	Shards int
	// QueueSize bounds the reward-ingestion backlog (0 = default).
	QueueSize int
	// Workers sizes the reward-ingestion worker pool (0 = default).
	Workers int
	// TrainEvery is the ingestion training batch size (0 = default).
	TrainEvery int
	// MaxLogEvents caps the learner's in-memory event log so an
	// indefinitely running server does not leak rank events (0 = default
	// 16384, negative = unbounded). Each logged event retains its full
	// featurized context (measured ~6 KiB for a 10-bit span), so the
	// default bounds event state near 100 MiB. Applies to a
	// caller-supplied Bandit too.
	MaxLogEvents int
	// SnapshotPath is where POST /v1/model/snapshot persists the model.
	SnapshotPath string
}

// RankRequest is one steering query: "which rule flip for this job?".
// Span carries the job span's bit positions; RowCount and BytesRead are
// the coarse input-stream features of the paper's featurization.
type RankRequest struct {
	TemplateHash uint64
	TemplateID   string
	Span         []int
	RowCount     float64
	BytesRead    float64
}

// RankResponse is the steering decision. Source "hint" means the sharded
// cache had a validated hint for the template (the production fast path:
// no bandit call, no event logged). Source "bandit" means the learner
// picked an action and logged a rank event awaiting a reward.
type RankResponse struct {
	Source     string  `json:"source"`
	Flip       string  `json:"flip,omitempty"`
	NoOp       bool    `json:"noop"`
	EventID    string  `json:"eventId,omitempty"`
	Prob       float64 `json:"prob,omitempty"`
	Chosen     int     `json:"chosen,omitempty"`
	HintDay    int     `json:"hintDay,omitempty"`
	Generation uint64  `json:"generation"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeSec    float64     `json:"uptimeSec"`
	RankRequests int64       `json:"rankRequests"`
	HintHits     int64       `json:"hintHits"`
	BanditRanks  int64       `json:"banditRanks"`
	NoOps        int64       `json:"noops"`
	CacheSize    int         `json:"cacheSize"`
	CacheGen     uint64      `json:"cacheGeneration"`
	CacheShards  int         `json:"cacheShards"`
	BanditLog    int         `json:"banditLogSize"`
	Ingest       IngestStats `json:"ingest"`
}

// Server is the embeddable online steering service. It serves hint-cache
// lookups and bandit ranks, ingests rewards asynchronously, and exposes
// the whole surface over HTTP via ServeHTTP.
type Server struct {
	cat    *rules.Catalog
	cache  *HintCache
	bandit *bandit.Service
	ingest *Ingestor

	uniform      bool
	snapshotPath string
	snapMu       sync.Mutex
	start        time.Time
	mux          *http.ServeMux

	rankRequests atomic.Int64
	hintHits     atomic.Int64
	banditRanks  atomic.Int64
	noops        atomic.Int64
}

// New assembles a steering server.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		cfg.Catalog = rules.NewCatalog()
	}
	if cfg.Bandit == nil {
		cfg.Bandit = bandit.New(bandit.DefaultConfig(cfg.Seed))
	}
	switch {
	case cfg.MaxLogEvents == 0:
		cfg.Bandit.SetMaxLog(1 << 14)
	case cfg.MaxLogEvents > 0:
		cfg.Bandit.SetMaxLog(cfg.MaxLogEvents)
	default:
		cfg.Bandit.SetMaxLog(0) // negative: lift any existing cap
	}
	s := &Server{
		cat:          cfg.Catalog,
		cache:        NewHintCache(cfg.Shards),
		bandit:       cfg.Bandit,
		ingest:       NewIngestor(cfg.Bandit, cfg.QueueSize, cfg.Workers, cfg.TrainEvery),
		uniform:      cfg.Uniform,
		snapshotPath: cfg.SnapshotPath,
		start:        time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/reward", s.handleReward)
	mux.HandleFunc("/v1/hints", s.handleHints)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/model/snapshot", s.handleSnapshot)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache returns the hint cache (for embedding and diagnostics).
func (s *Server) Cache() *HintCache { return s.cache }

// Bandit returns the served learner.
func (s *Server) Bandit() *bandit.Service { return s.bandit }

// Ingestor returns the reward-ingestion pipeline.
func (s *Server) Ingestor() *Ingestor { return s.ingest }

// InstallHints validates and hot-swaps the hint table — the
// pipeline-rollover entry point, fed from core.Advisor.ActiveHints() or
// a parsed SIS file. Validation is the same gate the HTTP rollover
// applies: rule IDs in range, no duplicate templates, no Required-rule
// flips.
func (s *Server) InstallHints(hints []sis.Hint) (uint64, error) {
	if err := sis.Validate(sis.File{Hints: hints}, s.cat); err != nil {
		return s.cache.Generation(), err
	}
	return s.cache.Replace(hints), nil
}

// Close drains and stops the reward ingestor.
func (s *Server) Close() { s.ingest.Close() }

// Rank answers one steering query: a cached validated hint when the
// template has one, otherwise an epsilon-greedy bandit decision over the
// job's span actions. This is the embeddable core of POST /v1/rank.
func (s *Server) Rank(req RankRequest) (RankResponse, error) {
	s.rankRequests.Add(1)
	// Validate before the cache lookup so a request is accepted or
	// rejected identically whether or not its template currently has a
	// hint — otherwise a client's malformed span only surfaces as a 400
	// after a rollover evicts the hint.
	var span rules.Bitset
	for _, b := range req.Span {
		if b < 0 || b >= rules.NumRules {
			return RankResponse{}, fmt.Errorf("serve: span bit %d out of range [0,%d)", b, rules.NumRules)
		}
		span.Set(b)
	}
	if span.IsEmpty() {
		return RankResponse{}, fmt.Errorf("serve: empty span (empty-span jobs are not steered)")
	}

	if h, ok := s.cache.Lookup(req.TemplateHash); ok {
		s.hintHits.Add(1)
		return RankResponse{
			Source:     "hint",
			Flip:       h.Flip.String(),
			HintDay:    h.Day,
			Generation: s.cache.Generation(),
		}, nil
	}
	gen := s.cache.Generation()

	f := &core.JobFeatures{Span: span, RowCount: req.RowCount, BytesRead: req.BytesRead}
	ctx := core.ContextFeatures(f)
	actions, flips := core.ActionsFor(s.cat, f)
	var ranked bandit.Ranked
	var err error
	if s.uniform {
		ranked, err = s.bandit.RankUniform(ctx, actions)
	} else {
		ranked, err = s.bandit.Rank(ctx, actions)
	}
	if err != nil {
		return RankResponse{}, err
	}
	s.banditRanks.Add(1)
	resp := RankResponse{
		Source:     "bandit",
		EventID:    ranked.EventID,
		Prob:       ranked.Prob,
		Chosen:     ranked.Chosen,
		NoOp:       ranked.Chosen == 0,
		Generation: gen,
	}
	if resp.NoOp {
		s.noops.Add(1)
	} else {
		resp.Flip = flips[ranked.Chosen].String()
	}
	return resp, nil
}

// RewardAsync submits a reward observation to the ingestion pipeline.
// It returns false on backpressure (queue full or ingestor closed).
func (s *Server) RewardAsync(eventID string, value float64) bool {
	return s.ingest.Enqueue(eventID, value)
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeSec:    time.Since(s.start).Seconds(),
		RankRequests: s.rankRequests.Load(),
		HintHits:     s.hintHits.Load(),
		BanditRanks:  s.banditRanks.Load(),
		NoOps:        s.noops.Load(),
		CacheSize:    s.cache.Size(),
		CacheGen:     s.cache.Generation(),
		CacheShards:  s.cache.Shards(),
		BanditLog:    s.bandit.LogSize(),
		Ingest:       s.ingest.Stats(),
	}
}

// SnapshotTo streams the learner's persisted form (bandit.Save).
func (s *Server) SnapshotTo(w io.Writer) error { return s.bandit.Save(w) }

// SnapshotToPath persists the model to the given path atomically
// (write to temp file, rename) and returns the byte count.
func (s *Server) SnapshotToPath(path string) (int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := s.bandit.Save(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	// Sync before rename: otherwise a crash can promote an empty or
	// truncated snapshot, and the next start fails loading it.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// --- HTTP wire layer ---

// rankWire is the JSON form of RankRequest. Template hashes travel as
// hex strings (64-bit values do not survive JSON number decoding in
// every client), matching the SIS exchange format.
type rankWire struct {
	TemplateHash string  `json:"templateHash"`
	TemplateID   string  `json:"templateId"`
	Span         []int   `json:"span"`
	RowCount     float64 `json:"rowCount"`
	BytesRead    float64 `json:"bytesRead"`
}

type rewardWire struct {
	EventID string   `json:"eventId"`
	Reward  *float64 `json:"reward"`
}

// Request body caps: steering queries and rewards are tiny; hint files
// scale with the template population but stay far below this.
const (
	maxJSONBody = 1 << 20  // 1 MiB
	maxHintBody = 64 << 20 // 64 MiB
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var wire rankWire
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, "bad rank request: %v", err)
		return
	}
	hash, err := strconv.ParseUint(wire.TemplateHash, 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad templateHash %q: want 64-bit hex", wire.TemplateHash)
		return
	}
	resp, err := s.Rank(RankRequest{
		TemplateHash: hash,
		TemplateID:   wire.TemplateID,
		Span:         wire.Span,
		RowCount:     wire.RowCount,
		BytesRead:    wire.BytesRead,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReward(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var wire rewardWire
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, "bad reward request: %v", err)
		return
	}
	if wire.EventID == "" || wire.Reward == nil {
		writeError(w, http.StatusBadRequest, "eventId and reward are required")
		return
	}
	if !s.RewardAsync(wire.EventID, *wire.Reward) {
		writeError(w, http.StatusServiceUnavailable, "reward queue full, retry")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "queued"})
}

// handleHints installs a hint table from a SIS exchange-format body —
// the HTTP face of the pipeline rollover.
func (s *Server) handleHints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	file, err := sis.Parse(http.MaxBytesReader(w, r.Body, maxHintBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	gen, err := s.InstallHints(file.Hints)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"installed":  len(file.Hints),
		"day":        file.Day,
		"generation": gen,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleSnapshot serves the model state: GET streams the persisted form,
// POST writes it to the configured snapshot path for restart recovery.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.SnapshotTo(w); err != nil {
			// Headers are gone; the truncated body will fail bandit.Load.
			return
		}
	case http.MethodPost:
		if s.snapshotPath == "" {
			writeError(w, http.StatusConflict, "no snapshot path configured")
			return
		}
		n, err := s.SnapshotToPath(s.snapshotPath)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "snapshot failed: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"path": s.snapshotPath, "bytes": n})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}
