package serve

import (
	"bytes"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/audit"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// Config parameterizes the steering server.
type Config struct {
	// Catalog is the rule catalog steering decisions are made against
	// (nil selects the canonical 256-rule catalog).
	Catalog *rules.Catalog
	// Bandit is the rank/reward learner to serve. Nil builds a fresh one
	// from Seed; passing the daily pipeline's trained service carries the
	// learned policy into serving.
	Bandit *bandit.Service
	// Seed drives exploration when Bandit is nil.
	Seed int64
	// Uniform switches ranking to the uniform-at-random logging policy
	// (the paper's off-policy data-collection mode).
	Uniform bool
	// Shards is the hint-cache shard count (0 = default).
	Shards int
	// QueueSize bounds the reward-ingestion backlog (0 = default).
	QueueSize int
	// Workers sizes the reward-ingestion worker pool (0 = default).
	Workers int
	// TrainEvery is the ingestion training batch size (0 = default).
	TrainEvery int
	// RankWorkers bounds the /v2/rank batch fan-out pool (0 = GOMAXPROCS,
	// 1 = rank batch jobs sequentially).
	RankWorkers int
	// MaxLogEvents caps the learner's in-memory event log so an
	// indefinitely running server does not leak rank events (0 = default
	// 16384, negative = unbounded). Each logged event retains its full
	// featurized context (measured ~6 KiB for a 10-bit span), so the
	// default bounds event state near 100 MiB. Applies to a
	// caller-supplied Bandit too.
	MaxLogEvents int
	// SnapshotPath is where POST /v1/model/snapshot persists the model.
	SnapshotPath string
	// WAL, when non-nil, is the durable reward journal: rank decisions
	// are journaled by the learner, reward batches are journaled before
	// acknowledgment, hint rollovers are journaled as RecHintRollover
	// records, and Checkpoint snapshots the model with a WAL watermark
	// and truncates covered segments. The server takes ownership of
	// journaling but not of the WAL's lifecycle — the caller still
	// closes it (after Close and the final Checkpoint). A WAL-backed
	// server is also a replication primary: followers bootstrap from
	// GET /v2/wal/snapshot and tail GET /v2/wal.
	WAL *wal.WAL
	// Follower switches the server to read-only replica mode: the
	// bandit path of Rank answers with the deterministic greedy policy
	// (no event logged, no exploration randomness consumed — serving a
	// read must not diverge the replica from the primary's journaled
	// state), and every write route (/v1/reward, /v2/reward, /v1/hints,
	// POST /v1/model/snapshot, the replication surface) rejects with a
	// structured not_primary error carrying LeaderURL. The replica's
	// state advances only through applied journal records
	// (internal/replicate tails them).
	Follower bool
	// LeaderURL is the primary's base URL, carried by not_primary
	// rejections and reported in stats (follower mode only).
	LeaderURL string
	// Tracer, when non-nil, samples requests for stage-level tracing:
	// sampled requests carry an obs.Trace through the rank/reward path
	// and emit a Chrome-trace event group on completion. Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer
	// Drift, when non-nil, enables online drift detection: rewards
	// attributed to a template (RewardEvent.TemplateHash) feed
	// per-template streaming statistics, and templates whose rewards
	// collapse are auto-quarantined — their installed hint refused,
	// rank requests routed to the bandit path — with every transition
	// journaled as a RecQuarantine record. Enforcement (refusing
	// quarantined hints, the manual admin endpoint, replication of the
	// quarantine table) is always on regardless of this field; Drift
	// only controls the detector. Ignored on followers: detection runs
	// where writes land, replicas enforce the replicated table.
	Drift *drift.Config
	// SLO parameterizes service-level-objective tracking (rank-latency
	// and availability burn rates on /metrics and /v2/stats). Nil
	// enables the defaults; use &SLOConfig{Disabled: true} to turn the
	// subsystem off.
	SLO *SLOConfig
	// Flight, when non-nil, is an externally owned flight recorder —
	// the replication tailer threads one recorder through every
	// re-bootstrapped core so retained traces survive resync swaps.
	// When nil the server builds its own from TraceRetain.
	Flight *obs.FlightRecorder
	// TraceRetain is the tail-retention slow threshold for routes
	// without a per-route override (0 = obs.DefaultRetainThreshold;
	// negative disables the flight recorder entirely). Ignored when
	// Flight is set.
	TraceRetain time.Duration
	// Incidents, when non-nil with a Dir, enables the incident engine:
	// SLO-burn, quarantine, and WAL-failure triggers capture diagnostic
	// bundles into Dir.
	Incidents *IncidentConfig
}

// Server is the embeddable online steering service. It serves hint-cache
// lookups and bandit ranks, ingests rewards asynchronously, and exposes
// the whole surface over HTTP via ServeHTTP. All request/response wire
// types live in qoadvisor/internal/api; this type carries only domain
// state.
type Server struct {
	cat    *rules.Catalog
	cache  *HintCache
	bandit *bandit.Service
	ingest *Ingestor
	wal    *wal.WAL
	guard  *safeguard

	checkpoints    atomic.Int64
	lastCkptLSN    atomic.Uint64
	lastCkptBytes  atomic.Int64
	lastCkptMicros atomic.Int64

	uniform      bool
	follower     bool
	leaderURL    string
	rankWorkers  int
	snapshotPath string
	snapMu       sync.Mutex
	start        time.Time
	http         *httpLayer

	// Journal audit: the lazily opened engine behind /v2/audit, its
	// query-latency histogram, and the replay parameters AsOf needs to
	// mirror this server's own recovery.
	auditMu   sync.Mutex
	auditEng  *audit.Engine
	auditLat  obs.Histogram
	auditOpts audit.AsOfOptions

	// rolloverMu orders hint-table swaps against their journal records:
	// two racing rollovers must append in generation order or replay
	// would finish on the older table.
	rolloverMu sync.Mutex

	// Primary-side replication counters (maintained by the /v2/wal
	// stream handler) and the follower-side stats probe installed by
	// the replication tailer.
	walStreams      atomic.Int64
	walStreamsTotal atomic.Int64
	walRecsShipped  atomic.Int64
	walBytesShipped atomic.Int64
	replProbe       atomic.Pointer[func() api.ReplicationStats]

	rankRequests atomic.Int64
	hintHits     atomic.Int64
	banditRanks  atomic.Int64
	noops        atomic.Int64

	// Observability: per-stage latency histograms, externally registered
	// stages/collectors (the replication tailer), the sampling tracer,
	// and the build identity served by /v2/version.
	stages      *stageHists
	tracer      *obs.Tracer
	version     api.VersionInfo
	extraMu     sync.RWMutex
	extraStages map[string]*obs.Histogram
	collectors  []func(*obs.Exposition)

	// slo tracks the node's service-level objectives (nil = disabled).
	slo *obs.SLOTracker

	// flight is the tail-retention trace ring (nil = disabled);
	// incidents is the diagnostic-capture engine (nil = disabled).
	flight    *obs.FlightRecorder
	incidents *incidentEngine
}

// New assembles a steering server.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		cfg.Catalog = rules.NewCatalog()
	}
	if cfg.Bandit == nil {
		cfg.Bandit = bandit.New(bandit.DefaultConfig(cfg.Seed))
	}
	switch {
	case cfg.MaxLogEvents == 0:
		cfg.Bandit.SetMaxLog(1 << 14)
	case cfg.MaxLogEvents > 0:
		cfg.Bandit.SetMaxLog(cfg.MaxLogEvents)
	default:
		cfg.Bandit.SetMaxLog(0) // negative: lift any existing cap
	}
	// Stage histograms are shared with the ingestor's workers, so they
	// must exist before newIngestor starts the pool.
	stages := newStageHists()
	// Detection runs only where writes land; enforcement (the table
	// inside the safeguard) exists on every node.
	var det *drift.Detector
	if cfg.Drift != nil && !cfg.Follower {
		det = drift.NewDetector(*cfg.Drift)
	}
	s := &Server{
		cat:          cfg.Catalog,
		cache:        NewHintCache(cfg.Shards),
		bandit:       cfg.Bandit,
		wal:          cfg.WAL,
		guard:        newSafeguard(det, cfg.WAL),
		ingest:       newIngestor(cfg.Bandit, cfg.WAL, cfg.QueueSize, cfg.Workers, cfg.TrainEvery, stages),
		uniform:      cfg.Uniform,
		follower:     cfg.Follower,
		leaderURL:    cfg.LeaderURL,
		rankWorkers:  cfg.RankWorkers,
		snapshotPath: cfg.SnapshotPath,
		start:        time.Now(),
		stages:       stages,
		tracer:       cfg.Tracer,
		version:      VersionInfo(),
	}
	// The audit engine reconstructs past states by replaying the journal
	// with this server's own recovery parameters.
	s.auditOpts = audit.AsOfOptions{
		SnapshotPath: cfg.SnapshotPath,
		TrainEvery:   cfg.TrainEvery,
		MaxLogEvents: cfg.MaxLogEvents,
		Seed:         cfg.Seed,
	}
	if cfg.WAL != nil {
		// Attach after any snapshot load / journal replay the caller did:
		// from here on every rank decision is journaled.
		cfg.Bandit.AttachJournal(cfg.WAL)
		// Route the journal's fsync timings (committer thread and
		// sync-mode commits alike) into the wal_fsync stage histogram.
		cfg.WAL.SetSyncObserver(stages.walFsync.Observe)
	}
	s.http = newHTTPLayer(s)
	// Objectives read the HTTP layer's route counters, so they declare
	// after the routes exist.
	var sloCfg SLOConfig
	if cfg.SLO != nil {
		sloCfg = *cfg.SLO
	}
	s.initSLO(sloCfg)
	switch {
	case cfg.Flight != nil:
		s.flight = cfg.Flight
	case cfg.TraceRetain >= 0:
		s.flight = NewFlightRecorder(cfg.TraceRetain)
	}
	if cfg.Incidents != nil && cfg.Incidents.Dir != "" {
		s.incidents = newIncidentEngine(s, *cfg.Incidents)
		s.incidents.start()
	}
	return s
}

// NewFlightRecorder builds a flight recorder with the server's
// per-route slow thresholds: rank routes retain at the SLO rank-latency
// bound (the requests whose tail burns the budget), the WAL long-poll
// routes never retain as slow (they are slow by design), everything
// else at retain (0 = obs.DefaultRetainThreshold). Exported so the
// replication tailer can own one recorder across core swaps.
func NewFlightRecorder(retain time.Duration) *obs.FlightRecorder {
	slo := SLOConfig{}.withDefaults()
	return obs.NewFlightRecorder(obs.FlightConfig{
		Threshold: retain,
		RouteThresholds: map[string]time.Duration{
			api.RouteV2Rank:        slo.RankThreshold,
			api.RouteV1Rank:        slo.RankThreshold,
			api.RouteV2WAL:         -1,
			api.RouteV2WALSnapshot: -1,
		},
	})
}

// sampleTrace issues the span buffer for one request: a pooled
// always-recording trace when the flight recorder is on (retention
// decided at Finish), otherwise plain 1-in-N head sampling.
func (s *Server) sampleTrace() *obs.Trace {
	if s.flight != nil {
		return s.flight.Begin(s.tracer)
	}
	return s.tracer.Sample()
}

// FlightRecorder exposes the retained-trace ring (nil when retention
// is disabled).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// journalErrors is the WAL fail-stop signal the incident engine
// watches: reward/rank journal failures (ingest) plus quarantine
// transition journal failures (safeguard).
func (s *Server) journalErrors() int64 {
	return s.ingest.Stats().JournalErrors + s.guard.journalErrs.Load()
}

// Cache returns the hint cache (for embedding and diagnostics).
func (s *Server) Cache() *HintCache { return s.cache }

// Bandit returns the served learner.
func (s *Server) Bandit() *bandit.Service { return s.bandit }

// Ingestor returns the reward-ingestion pipeline.
func (s *Server) Ingestor() *Ingestor { return s.ingest }

// InstallHints validates and hot-swaps the hint table — the
// pipeline-rollover entry point, fed from core.Advisor.ActiveHints() or
// a parsed SIS file. Validation is the same gate the HTTP rollover
// applies: rule IDs in range, no duplicate templates, no Required-rule
// flips. On a WAL-backed server the rollover is journaled (table +
// generation) before this returns, under the same fence as the swap so
// racing rollovers journal in generation order: a restart recovers the
// installed hints, and followers replicate them in decision order. A
// journal failure is fail-stop — the rollover is rejected rather than
// installed un-replayably — and surfaces as *api.Error(CodeInternal).
func (s *Server) InstallHints(hints []sis.Hint) (uint64, error) {
	if err := sis.Validate(sis.File{Hints: hints}, s.cat); err != nil {
		return s.cache.Generation(), err
	}
	s.rolloverMu.Lock()
	if s.wal != nil {
		// Append before the swap: if the disk is sick the table must not
		// be serving while absent from the journal. The generation the
		// swap WILL mint is current+1 (rolloverMu excludes other writers).
		if _, err := s.wal.Append(EncodeHintRollover(s.cache.Generation()+1, hints)); err != nil {
			s.rolloverMu.Unlock()
			return s.cache.Generation(), api.Errorf(api.CodeInternal, "journaling hint rollover: %v", err)
		}
	}
	gen := s.cache.Replace(hints)
	s.rolloverMu.Unlock()
	return gen, nil
}

// RestoreHints installs a recovered hint table at its journaled
// generation without re-journaling — the crash-recovery path (the
// record that produced it is already in the log).
func (s *Server) RestoreHints(hints []sis.Hint, gen uint64) {
	s.rolloverMu.Lock()
	s.cache.Restore(hints, gen)
	s.rolloverMu.Unlock()
}

// journalHints re-appends the live hint table to the journal — called
// with the snapshot watermark already fixed, so the record lands above
// it and survives both replay-from-snapshot and segment compaction.
// Without this a checkpoint could truncate the only journaled copy of
// the table while the snapshot (model-only) carries none.
func (s *Server) journalHints() error {
	if s.wal == nil {
		return nil
	}
	s.rolloverMu.Lock()
	defer s.rolloverMu.Unlock()
	hints, gen := s.cache.Export()
	if gen == 0 && len(hints) == 0 {
		return nil // nothing ever installed; don't journal an empty wipe
	}
	_, err := s.wal.Append(EncodeHintRollover(gen, hints))
	return err
}

// QuarantineTable exposes the drift-safeguard enforcement table. The
// replication tailer passes it to its Applier so replicated
// RecQuarantine records take effect on the serving path.
func (s *Server) QuarantineTable() *drift.Table { return s.guard.table }

// RestoreQuarantines seeds the safeguard from recovered journal state
// without re-journaling — the crash-recovery path, symmetric with
// RestoreHints. On a detecting primary the detector's state machine is
// seeded too (statistics start fresh; only state is durable).
func (s *Server) RestoreQuarantines(states map[uint64]drift.State) {
	s.guard.restore(states)
}

// ObserveReward feeds one template-attributed reward to the drift
// detector and commits (journal-first) any transition it triggers. A
// *api.Error(CodeInternal) means a proposed transition could not be
// journaled — fail-stop: the safeguard state did not change, and the
// caller must surface the failure rather than acknowledge the reward.
// No-op on nodes without detection.
func (s *Server) ObserveReward(templateHash uint64, reward float64) error {
	return s.guard.observe(templateHash, reward)
}

// Quarantine applies a manual safeguard override: quarantine forces
// the template's hint to be refused, restore (quarantine=false)
// forces it healthy. The transition is journaled exactly like a
// detector-initiated one, so it survives restarts and replicates.
func (s *Server) Quarantine(templateHash uint64, quarantine bool) (drift.Transition, error) {
	return s.guard.setManual(templateHash, quarantine)
}

// DriftStats reports the safeguard's operational view (the /v2/stats
// drift block). templateLimit caps the per-template listing.
func (s *Server) DriftStats(templateLimit int) *api.DriftStats {
	return s.guard.stats(templateLimit)
}

// SetReplProbe installs the follower-side replication stats source
// (applied LSN, lag, tail age), reported under /v2/stats. The
// replication tailer owns the numbers; the server only serves them.
func (s *Server) SetReplProbe(fn func() api.ReplicationStats) {
	s.replProbe.Store(&fn)
}

// Close drains and stops the reward ingestor and the incident engine.
func (s *Server) Close() {
	if s.incidents != nil {
		s.incidents.stop()
	}
	s.ingest.Close()
}

// Rank answers one steering query: a cached validated hint when the
// template has one, otherwise an epsilon-greedy bandit decision over the
// job's span actions. This is the embeddable core of POST /v1/rank and
// the per-job unit of the /v2/rank batch fan-out. Validation failures
// return *api.Error with api.CodeInvalidRequest.
func (s *Server) Rank(req api.RankRequest) (api.RankResponse, error) {
	return s.rankTraced(req, nil, 0)
}

// rankTraced is Rank with stage instrumentation threaded through: the
// hint-cache lookup and the bandit decision are timed into the stage
// histograms (always; one time.Now pair and one atomic add each, no
// allocation) and recorded on tr when the request was sampled for
// tracing (tr nil otherwise — Stage is a nil-safe no-op). tid
// distinguishes batch lanes in the emitted trace.
func (s *Server) rankTraced(req api.RankRequest, tr *obs.Trace, tid int) (api.RankResponse, error) {
	s.rankRequests.Add(1)
	// Validate before the cache lookup so a request is accepted or
	// rejected identically whether or not its template currently has a
	// hint — otherwise a client's malformed span only surfaces as a 400
	// after a rollover evicts the hint.
	var span rules.Bitset
	for _, b := range req.Span {
		if b < 0 || b >= rules.NumRules {
			return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
				"span bit %d out of range [0,%d)", b, rules.NumRules)
		}
		span.Set(b)
	}
	if span.IsEmpty() {
		return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
			"empty span (empty-span jobs are not steered)")
	}

	// Clock reads dominate instrumentation cost (~50ns each on the
	// bench host vs ~20ns for an atomic histogram record), so the two
	// stages share a midpoint timestamp: hint-lookup end doubles as
	// bandit-stage start. The bandit stage therefore covers everything
	// after a hint miss — feature building, action enumeration, and the
	// bandit decision — which is the latency a caller actually pays for
	// taking the model path.
	lookupStart := time.Now()
	h, ok := s.cache.Lookup(uint64(req.TemplateHash))
	if ok && s.guard.blocked(uint64(req.TemplateHash)) {
		// Drift safeguard: the template is quarantined, so its installed
		// hint is refused and the request takes the bandit/exploration
		// path below — the hint stays in the cache for when the
		// quarantine lifts.
		ok = false
	}
	banditStart := time.Now()
	lookupDur := banditStart.Sub(lookupStart)
	s.stages.rankHint.Observe(lookupDur)
	tr.Stage(tid, "rank_hint_lookup", lookupStart, lookupDur)
	if ok {
		s.hintHits.Add(1)
		return api.RankResponse{
			Source:     api.SourceHint,
			Flip:       h.Flip.String(),
			HintDay:    h.Day,
			Generation: s.cache.Generation(),
		}, nil
	}
	gen := s.cache.Generation()

	f := &core.JobFeatures{Span: span, RowCount: req.RowCount, BytesRead: req.BytesRead}
	ctx := core.ContextFeatures(f)
	actions, flips := core.ActionsFor(s.cat, f)
	var ranked bandit.Ranked
	var err error
	switch {
	case s.follower:
		// Read replica: deterministic greedy decision over the replicated
		// weights — no event logged, no rng consumed, nothing to diverge
		// from the primary. No EventID is returned: the reward for this
		// decision has nowhere to land here (writes go to the leader).
		ranked, err = s.bandit.RankGreedy(ctx, actions)
	case s.uniform:
		ranked, err = s.bandit.RankUniform(ctx, actions)
	default:
		ranked, err = s.bandit.Rank(ctx, actions)
	}
	banditDur := time.Since(banditStart)
	s.stages.rankBandit.Observe(banditDur)
	tr.Stage(tid, "rank_bandit", banditStart, banditDur)
	if err != nil {
		return api.RankResponse{}, err
	}
	s.banditRanks.Add(1)
	resp := api.RankResponse{
		Source:     api.SourceBandit,
		EventID:    ranked.EventID,
		Prob:       ranked.Prob,
		Chosen:     ranked.Chosen,
		NoOp:       ranked.Chosen == 0,
		Generation: gen,
	}
	if resp.NoOp {
		s.noops.Add(1)
	} else {
		resp.Flip = flips[ranked.Chosen].String()
	}
	return resp, nil
}

// RewardAsync submits a reward observation to the ingestion pipeline.
// It returns false on backpressure (queue full or ingestor closed).
func (s *Server) RewardAsync(eventID string, value float64) bool {
	return s.ingest.Enqueue(eventID, value)
}

// Stats snapshots the serving counters (the /v1/stats field set; the
// HTTP layer adds request ID and per-route metrics for /v2/stats).
func (s *Server) Stats() api.StatsResponse {
	var walStats *api.WALStats
	if s.wal != nil {
		ws := s.wal.Stats()
		walStats = &api.WALStats{
			Mode:              ws.Mode,
			FirstLSN:          ws.FirstLSN,
			LastLSN:           ws.LastLSN,
			SyncedLSN:         ws.SyncedLSN,
			Appends:           ws.Appends,
			AppendedBytes:     ws.AppendedBytes,
			Syncs:             ws.Syncs,
			Segments:          ws.Segments,
			TruncatedSegments: ws.TruncatedSegs,
			Checkpoints:       s.checkpoints.Load(),
			LastCheckpointLSN: s.lastCkptLSN.Load(),
			LastCheckpointB:   s.lastCkptBytes.Load(),
			LastCheckpointUs:  s.lastCkptMicros.Load(),
		}
	}
	return api.StatsResponse{
		UptimeSec:    time.Since(s.start).Seconds(),
		RankRequests: s.rankRequests.Load(),
		HintHits:     s.hintHits.Load(),
		BanditRanks:  s.banditRanks.Load(),
		NoOps:        s.noops.Load(),
		CacheSize:    s.cache.Size(),
		CacheGen:     s.cache.Generation(),
		CacheShards:  s.cache.Shards(),
		BanditLog:    int64(s.bandit.LogSize()),
		Ingest:       s.ingest.Stats(),
		WAL:          walStats,
		Replication:  s.replicationStats(),
		Audit:        s.auditStats(),
		Traces:       s.traceStats(),
		Incidents:    s.incidents.stats(),
	}
}

// traceStats assembles the /v2/stats traces block (nil when the flight
// recorder is disabled).
func (s *Server) traceStats() *api.TraceStats {
	if s.flight == nil {
		return nil
	}
	fs := s.flight.Stats()
	return &api.TraceStats{
		Retained:        fs.Retained,
		Capacity:        fs.Capacity,
		RetainedTotal:   fs.RetainedSlow + fs.RetainedError + fs.RetainedSampled,
		RetainedSlow:    fs.RetainedSlow,
		RetainedError:   fs.RetainedError,
		RetainedSampled: fs.RetainedSampled,
		Evicted:         fs.Evicted,
		ThresholdMicros: fs.Threshold.Microseconds(),
		WriteErrors:     s.tracer.WriteErrors(),
	}
}

// replicationStats reports the node's cluster role: the follower probe
// when the tailer installed one, primary counters when a WAL makes
// this node shippable, nothing for a standalone in-memory server.
func (s *Server) replicationStats() *api.ReplicationStats {
	if probe := s.replProbe.Load(); probe != nil {
		r := (*probe)()
		return &r
	}
	if s.follower {
		// Follower before its probe is wired (or embedded without one).
		return &api.ReplicationStats{Role: api.RoleFollower, LeaderURL: s.leaderURL}
	}
	if s.wal != nil {
		return &api.ReplicationStats{
			Role:           api.RolePrimary,
			Followers:      int(s.walStreams.Load()),
			StreamsServed:  s.walStreamsTotal.Load(),
			RecordsShipped: s.walRecsShipped.Load(),
			BytesShipped:   s.walBytesShipped.Load(),
		}
	}
	return nil
}

// followerStaleAfter is how long a follower's replication tail may be
// silent before /v2/healthz degrades. A healthy follower touches its
// tail at least every long-poll window (10s default) even when the
// primary is idle, so a minute of silence means the primary is gone or
// unreachable and the replica is serving increasingly stale state.
const followerStaleAfter = time.Minute

// Health snapshots the cheap liveness view served by /v2/healthz. On a
// follower it degrades (HTTP 503 on the wire) once the replication
// tail has been silent past followerStaleAfter, so load balancers
// gating on healthz eject stale replicas instead of serving them.
func (s *Server) Health() api.HealthResponse {
	ing := s.ingest.Stats()
	status := api.HealthOK
	if s.follower {
		if probe := s.replProbe.Load(); probe != nil {
			if r := (*probe)(); r.LastTailSec > followerStaleAfter.Seconds() {
				status = api.HealthDegraded
			}
		}
	}
	return api.HealthResponse{
		Status:     status,
		Generation: s.cache.Generation(),
		UptimeSec:  time.Since(s.start).Seconds(),
		Hints:      s.cache.Size(),
		QueueDepth: ing.QueueDepth,
		QueueCap:   ing.QueueCap,
	}
}

// SnapshotTo streams the learner's persisted form (bandit.Save).
func (s *Server) SnapshotTo(w io.Writer) error { return s.bandit.Save(w) }

// CheckpointInfo reports one checkpoint's outcome.
type CheckpointInfo struct {
	// Bytes is the snapshot size written.
	Bytes int64
	// LSN is the WAL watermark the snapshot covers (0 without a WAL).
	LSN uint64
	// SegmentsRemoved counts WAL segments compacted away.
	SegmentsRemoved int
	// Duration is the end-to-end checkpoint time, including the barrier.
	Duration time.Duration
}

// Checkpoint persists the model to path atomically and, when a WAL is
// attached, runs the full durability barrier first: reward intake is
// fenced, the queue drains, a train mark flushes pending telemetry
// into the weights, and the snapshot records the WAL watermark it
// covers — so recovery replays only the suffix. Sealed segments wholly
// below the watermark are then truncated (snapshot compaction).
//
// This is the one snapshot entry point for recovery-grade state:
// SIGTERM, the -snapshot-every ticker, and POST /v1/model/snapshot all
// land here.
func (s *Server) Checkpoint(path string) (CheckpointInfo, error) {
	start := time.Now()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	var info CheckpointInfo
	var buf bytes.Buffer
	if s.wal != nil {
		release := s.ingest.Quiesce()
		s.ingest.trainFlush()
		err := s.bandit.CheckpointTo(&buf)
		release()
		if err != nil {
			return info, err
		}
		// Re-journal the live hint table ABOVE the watermark the snapshot
		// just fixed: the model snapshot carries no hints, so the journal
		// suffix must always hold the table's latest copy — for the crash
		// restart that replays the suffix, and for the segments the
		// compaction below is about to delete.
		if err := s.journalHints(); err != nil {
			return info, err
		}
		// Same re-journal for the quarantine table: its only durable copy
		// lives in the journal, and the segments about to be compacted
		// may hold it.
		if err := s.guard.journalState(); err != nil {
			return info, err
		}
		// Make the journal durable up to the watermark (covers the train
		// mark) before the snapshot that claims to supersede it can be
		// promoted.
		if err := s.wal.Sync(); err != nil {
			return info, err
		}
	} else {
		if err := s.bandit.Save(&buf); err != nil {
			return info, err
		}
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return info, err
	}
	info.Bytes = int64(buf.Len())
	if s.wal != nil {
		info.LSN = s.bandit.WALWatermark()
		info.SegmentsRemoved = s.wal.TruncateBefore(info.LSN)
		// Prebuild audit index sidecars for the surviving sealed
		// segments while they are cold — the first audit query after a
		// checkpoint then plans against ready indexes.
		s.buildAuditSidecars()
	}
	info.Duration = time.Since(start)
	s.stages.checkpoint.Observe(info.Duration)
	s.checkpoints.Add(1)
	s.lastCkptLSN.Store(info.LSN)
	s.lastCkptBytes.Store(info.Bytes)
	s.lastCkptMicros.Store(info.Duration.Microseconds())
	return info, nil
}

// BootstrapSnapshot writes a checkpoint-consistent model snapshot for
// a joining follower and returns the WAL watermark it covers: the full
// checkpoint barrier runs (intake fenced, queue drained, training
// flushed, watermark fixed under the rank lock) so the bytes are
// exactly the state at the watermark — tailing the journal from there
// replays no record twice and misses none. The live hint table is
// re-journaled above the watermark, so the follower's very first tail
// batch delivers the hints; nothing is written to disk and no segments
// are truncated (bootstraps must not race compaction decisions).
func (s *Server) BootstrapSnapshot(w io.Writer) (uint64, error) {
	buf, wm, err := s.bootstrapSnapshot()
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return wm, nil
}

// bootstrapSnapshot runs BootstrapSnapshot's checkpoint barrier and
// returns the buffered snapshot. The barrier runs under snapMu, but
// the caller's network write does not: a follower on a slow link must
// not wedge checkpoints and other bootstraps behind the mutex for the
// length of the transfer. Splitting the buffer from the write also
// lets the HTTP handler report barrier failures as error envelopes —
// no response byte has been committed yet.
func (s *Server) bootstrapSnapshot() (*bytes.Buffer, uint64, error) {
	if s.wal == nil {
		return nil, 0, errWALDisabled()
	}
	var buf bytes.Buffer
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	release := s.ingest.Quiesce()
	s.ingest.trainFlush()
	err := s.bandit.CheckpointTo(&buf)
	release()
	if err != nil {
		return nil, 0, err
	}
	if err := s.journalHints(); err != nil {
		return nil, 0, err
	}
	if err := s.guard.journalState(); err != nil {
		return nil, 0, err
	}
	// The suffix the follower will tail begins at the watermark; sync
	// so the hint record (and the train mark) is inside the durable
	// frontier the stream ships.
	if err := s.wal.Sync(); err != nil {
		return nil, 0, err
	}
	return &buf, s.bandit.WALWatermark(), nil
}

// SnapshotToPath persists the model to the given path atomically and
// returns the byte count. It is Checkpoint under the covers, so the
// snapshot is always recovery-grade.
func (s *Server) SnapshotToPath(path string) (int64, error) {
	info, err := s.Checkpoint(path)
	return info.Bytes, err
}

// writeFileAtomic writes data via a temp file, fsync, and rename:
// a crash mid-write can never promote an empty or truncated snapshot.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
