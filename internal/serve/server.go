package serve

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

// Config parameterizes the steering server.
type Config struct {
	// Catalog is the rule catalog steering decisions are made against
	// (nil selects the canonical 256-rule catalog).
	Catalog *rules.Catalog
	// Bandit is the rank/reward learner to serve. Nil builds a fresh one
	// from Seed; passing the daily pipeline's trained service carries the
	// learned policy into serving.
	Bandit *bandit.Service
	// Seed drives exploration when Bandit is nil.
	Seed int64
	// Uniform switches ranking to the uniform-at-random logging policy
	// (the paper's off-policy data-collection mode).
	Uniform bool
	// Shards is the hint-cache shard count (0 = default).
	Shards int
	// QueueSize bounds the reward-ingestion backlog (0 = default).
	QueueSize int
	// Workers sizes the reward-ingestion worker pool (0 = default).
	Workers int
	// TrainEvery is the ingestion training batch size (0 = default).
	TrainEvery int
	// RankWorkers bounds the /v2/rank batch fan-out pool (0 = GOMAXPROCS,
	// 1 = rank batch jobs sequentially).
	RankWorkers int
	// MaxLogEvents caps the learner's in-memory event log so an
	// indefinitely running server does not leak rank events (0 = default
	// 16384, negative = unbounded). Each logged event retains its full
	// featurized context (measured ~6 KiB for a 10-bit span), so the
	// default bounds event state near 100 MiB. Applies to a
	// caller-supplied Bandit too.
	MaxLogEvents int
	// SnapshotPath is where POST /v1/model/snapshot persists the model.
	SnapshotPath string
}

// Server is the embeddable online steering service. It serves hint-cache
// lookups and bandit ranks, ingests rewards asynchronously, and exposes
// the whole surface over HTTP via ServeHTTP. All request/response wire
// types live in qoadvisor/internal/api; this type carries only domain
// state.
type Server struct {
	cat    *rules.Catalog
	cache  *HintCache
	bandit *bandit.Service
	ingest *Ingestor

	uniform      bool
	rankWorkers  int
	snapshotPath string
	snapMu       sync.Mutex
	start        time.Time
	http         *httpLayer

	rankRequests atomic.Int64
	hintHits     atomic.Int64
	banditRanks  atomic.Int64
	noops        atomic.Int64
}

// New assembles a steering server.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		cfg.Catalog = rules.NewCatalog()
	}
	if cfg.Bandit == nil {
		cfg.Bandit = bandit.New(bandit.DefaultConfig(cfg.Seed))
	}
	switch {
	case cfg.MaxLogEvents == 0:
		cfg.Bandit.SetMaxLog(1 << 14)
	case cfg.MaxLogEvents > 0:
		cfg.Bandit.SetMaxLog(cfg.MaxLogEvents)
	default:
		cfg.Bandit.SetMaxLog(0) // negative: lift any existing cap
	}
	s := &Server{
		cat:          cfg.Catalog,
		cache:        NewHintCache(cfg.Shards),
		bandit:       cfg.Bandit,
		ingest:       NewIngestor(cfg.Bandit, cfg.QueueSize, cfg.Workers, cfg.TrainEvery),
		uniform:      cfg.Uniform,
		rankWorkers:  cfg.RankWorkers,
		snapshotPath: cfg.SnapshotPath,
		start:        time.Now(),
	}
	s.http = newHTTPLayer(s)
	return s
}

// Cache returns the hint cache (for embedding and diagnostics).
func (s *Server) Cache() *HintCache { return s.cache }

// Bandit returns the served learner.
func (s *Server) Bandit() *bandit.Service { return s.bandit }

// Ingestor returns the reward-ingestion pipeline.
func (s *Server) Ingestor() *Ingestor { return s.ingest }

// InstallHints validates and hot-swaps the hint table — the
// pipeline-rollover entry point, fed from core.Advisor.ActiveHints() or
// a parsed SIS file. Validation is the same gate the HTTP rollover
// applies: rule IDs in range, no duplicate templates, no Required-rule
// flips.
func (s *Server) InstallHints(hints []sis.Hint) (uint64, error) {
	if err := sis.Validate(sis.File{Hints: hints}, s.cat); err != nil {
		return s.cache.Generation(), err
	}
	return s.cache.Replace(hints), nil
}

// Close drains and stops the reward ingestor.
func (s *Server) Close() { s.ingest.Close() }

// Rank answers one steering query: a cached validated hint when the
// template has one, otherwise an epsilon-greedy bandit decision over the
// job's span actions. This is the embeddable core of POST /v1/rank and
// the per-job unit of the /v2/rank batch fan-out. Validation failures
// return *api.Error with api.CodeInvalidRequest.
func (s *Server) Rank(req api.RankRequest) (api.RankResponse, error) {
	s.rankRequests.Add(1)
	// Validate before the cache lookup so a request is accepted or
	// rejected identically whether or not its template currently has a
	// hint — otherwise a client's malformed span only surfaces as a 400
	// after a rollover evicts the hint.
	var span rules.Bitset
	for _, b := range req.Span {
		if b < 0 || b >= rules.NumRules {
			return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
				"span bit %d out of range [0,%d)", b, rules.NumRules)
		}
		span.Set(b)
	}
	if span.IsEmpty() {
		return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
			"empty span (empty-span jobs are not steered)")
	}

	if h, ok := s.cache.Lookup(uint64(req.TemplateHash)); ok {
		s.hintHits.Add(1)
		return api.RankResponse{
			Source:     api.SourceHint,
			Flip:       h.Flip.String(),
			HintDay:    h.Day,
			Generation: s.cache.Generation(),
		}, nil
	}
	gen := s.cache.Generation()

	f := &core.JobFeatures{Span: span, RowCount: req.RowCount, BytesRead: req.BytesRead}
	ctx := core.ContextFeatures(f)
	actions, flips := core.ActionsFor(s.cat, f)
	var ranked bandit.Ranked
	var err error
	if s.uniform {
		ranked, err = s.bandit.RankUniform(ctx, actions)
	} else {
		ranked, err = s.bandit.Rank(ctx, actions)
	}
	if err != nil {
		return api.RankResponse{}, err
	}
	s.banditRanks.Add(1)
	resp := api.RankResponse{
		Source:     api.SourceBandit,
		EventID:    ranked.EventID,
		Prob:       ranked.Prob,
		Chosen:     ranked.Chosen,
		NoOp:       ranked.Chosen == 0,
		Generation: gen,
	}
	if resp.NoOp {
		s.noops.Add(1)
	} else {
		resp.Flip = flips[ranked.Chosen].String()
	}
	return resp, nil
}

// RewardAsync submits a reward observation to the ingestion pipeline.
// It returns false on backpressure (queue full or ingestor closed).
func (s *Server) RewardAsync(eventID string, value float64) bool {
	return s.ingest.Enqueue(eventID, value)
}

// Stats snapshots the serving counters (the /v1/stats field set; the
// HTTP layer adds request ID and per-route metrics for /v2/stats).
func (s *Server) Stats() api.StatsResponse {
	return api.StatsResponse{
		UptimeSec:    time.Since(s.start).Seconds(),
		RankRequests: s.rankRequests.Load(),
		HintHits:     s.hintHits.Load(),
		BanditRanks:  s.banditRanks.Load(),
		NoOps:        s.noops.Load(),
		CacheSize:    s.cache.Size(),
		CacheGen:     s.cache.Generation(),
		CacheShards:  s.cache.Shards(),
		BanditLog:    int64(s.bandit.LogSize()),
		Ingest:       s.ingest.Stats(),
	}
}

// Health snapshots the cheap liveness view served by /v2/healthz.
func (s *Server) Health() api.HealthResponse {
	ing := s.ingest.Stats()
	return api.HealthResponse{
		Status:     api.HealthOK,
		Generation: s.cache.Generation(),
		UptimeSec:  time.Since(s.start).Seconds(),
		Hints:      s.cache.Size(),
		QueueDepth: ing.QueueDepth,
		QueueCap:   ing.QueueCap,
	}
}

// SnapshotTo streams the learner's persisted form (bandit.Save).
func (s *Server) SnapshotTo(w io.Writer) error { return s.bandit.Save(w) }

// SnapshotToPath persists the model to the given path atomically
// (write to temp file, rename) and returns the byte count.
func (s *Server) SnapshotToPath(path string) (int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := s.bandit.Save(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	// Sync before rename: otherwise a crash can promote an empty or
	// truncated snapshot, and the next start fails loading it.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
