package serve

import (
	"bytes"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// Config parameterizes the steering server.
type Config struct {
	// Catalog is the rule catalog steering decisions are made against
	// (nil selects the canonical 256-rule catalog).
	Catalog *rules.Catalog
	// Bandit is the rank/reward learner to serve. Nil builds a fresh one
	// from Seed; passing the daily pipeline's trained service carries the
	// learned policy into serving.
	Bandit *bandit.Service
	// Seed drives exploration when Bandit is nil.
	Seed int64
	// Uniform switches ranking to the uniform-at-random logging policy
	// (the paper's off-policy data-collection mode).
	Uniform bool
	// Shards is the hint-cache shard count (0 = default).
	Shards int
	// QueueSize bounds the reward-ingestion backlog (0 = default).
	QueueSize int
	// Workers sizes the reward-ingestion worker pool (0 = default).
	Workers int
	// TrainEvery is the ingestion training batch size (0 = default).
	TrainEvery int
	// RankWorkers bounds the /v2/rank batch fan-out pool (0 = GOMAXPROCS,
	// 1 = rank batch jobs sequentially).
	RankWorkers int
	// MaxLogEvents caps the learner's in-memory event log so an
	// indefinitely running server does not leak rank events (0 = default
	// 16384, negative = unbounded). Each logged event retains its full
	// featurized context (measured ~6 KiB for a 10-bit span), so the
	// default bounds event state near 100 MiB. Applies to a
	// caller-supplied Bandit too.
	MaxLogEvents int
	// SnapshotPath is where POST /v1/model/snapshot persists the model.
	SnapshotPath string
	// WAL, when non-nil, is the durable reward journal: rank decisions
	// are journaled by the learner, reward batches are journaled before
	// acknowledgment, and Checkpoint snapshots the model with a WAL
	// watermark and truncates covered segments. The server takes
	// ownership of journaling but not of the WAL's lifecycle — the
	// caller still closes it (after Close and the final Checkpoint).
	WAL *wal.WAL
}

// Server is the embeddable online steering service. It serves hint-cache
// lookups and bandit ranks, ingests rewards asynchronously, and exposes
// the whole surface over HTTP via ServeHTTP. All request/response wire
// types live in qoadvisor/internal/api; this type carries only domain
// state.
type Server struct {
	cat    *rules.Catalog
	cache  *HintCache
	bandit *bandit.Service
	ingest *Ingestor
	wal    *wal.WAL

	checkpoints    atomic.Int64
	lastCkptLSN    atomic.Uint64
	lastCkptBytes  atomic.Int64
	lastCkptMicros atomic.Int64

	uniform      bool
	rankWorkers  int
	snapshotPath string
	snapMu       sync.Mutex
	start        time.Time
	http         *httpLayer

	rankRequests atomic.Int64
	hintHits     atomic.Int64
	banditRanks  atomic.Int64
	noops        atomic.Int64
}

// New assembles a steering server.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		cfg.Catalog = rules.NewCatalog()
	}
	if cfg.Bandit == nil {
		cfg.Bandit = bandit.New(bandit.DefaultConfig(cfg.Seed))
	}
	switch {
	case cfg.MaxLogEvents == 0:
		cfg.Bandit.SetMaxLog(1 << 14)
	case cfg.MaxLogEvents > 0:
		cfg.Bandit.SetMaxLog(cfg.MaxLogEvents)
	default:
		cfg.Bandit.SetMaxLog(0) // negative: lift any existing cap
	}
	s := &Server{
		cat:          cfg.Catalog,
		cache:        NewHintCache(cfg.Shards),
		bandit:       cfg.Bandit,
		wal:          cfg.WAL,
		ingest:       NewIngestor(cfg.Bandit, cfg.WAL, cfg.QueueSize, cfg.Workers, cfg.TrainEvery),
		uniform:      cfg.Uniform,
		rankWorkers:  cfg.RankWorkers,
		snapshotPath: cfg.SnapshotPath,
		start:        time.Now(),
	}
	if cfg.WAL != nil {
		// Attach after any snapshot load / journal replay the caller did:
		// from here on every rank decision is journaled.
		cfg.Bandit.AttachJournal(cfg.WAL)
	}
	s.http = newHTTPLayer(s)
	return s
}

// Cache returns the hint cache (for embedding and diagnostics).
func (s *Server) Cache() *HintCache { return s.cache }

// Bandit returns the served learner.
func (s *Server) Bandit() *bandit.Service { return s.bandit }

// Ingestor returns the reward-ingestion pipeline.
func (s *Server) Ingestor() *Ingestor { return s.ingest }

// InstallHints validates and hot-swaps the hint table — the
// pipeline-rollover entry point, fed from core.Advisor.ActiveHints() or
// a parsed SIS file. Validation is the same gate the HTTP rollover
// applies: rule IDs in range, no duplicate templates, no Required-rule
// flips.
func (s *Server) InstallHints(hints []sis.Hint) (uint64, error) {
	if err := sis.Validate(sis.File{Hints: hints}, s.cat); err != nil {
		return s.cache.Generation(), err
	}
	return s.cache.Replace(hints), nil
}

// Close drains and stops the reward ingestor.
func (s *Server) Close() { s.ingest.Close() }

// Rank answers one steering query: a cached validated hint when the
// template has one, otherwise an epsilon-greedy bandit decision over the
// job's span actions. This is the embeddable core of POST /v1/rank and
// the per-job unit of the /v2/rank batch fan-out. Validation failures
// return *api.Error with api.CodeInvalidRequest.
func (s *Server) Rank(req api.RankRequest) (api.RankResponse, error) {
	s.rankRequests.Add(1)
	// Validate before the cache lookup so a request is accepted or
	// rejected identically whether or not its template currently has a
	// hint — otherwise a client's malformed span only surfaces as a 400
	// after a rollover evicts the hint.
	var span rules.Bitset
	for _, b := range req.Span {
		if b < 0 || b >= rules.NumRules {
			return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
				"span bit %d out of range [0,%d)", b, rules.NumRules)
		}
		span.Set(b)
	}
	if span.IsEmpty() {
		return api.RankResponse{}, api.Errorf(api.CodeInvalidRequest,
			"empty span (empty-span jobs are not steered)")
	}

	if h, ok := s.cache.Lookup(uint64(req.TemplateHash)); ok {
		s.hintHits.Add(1)
		return api.RankResponse{
			Source:     api.SourceHint,
			Flip:       h.Flip.String(),
			HintDay:    h.Day,
			Generation: s.cache.Generation(),
		}, nil
	}
	gen := s.cache.Generation()

	f := &core.JobFeatures{Span: span, RowCount: req.RowCount, BytesRead: req.BytesRead}
	ctx := core.ContextFeatures(f)
	actions, flips := core.ActionsFor(s.cat, f)
	var ranked bandit.Ranked
	var err error
	if s.uniform {
		ranked, err = s.bandit.RankUniform(ctx, actions)
	} else {
		ranked, err = s.bandit.Rank(ctx, actions)
	}
	if err != nil {
		return api.RankResponse{}, err
	}
	s.banditRanks.Add(1)
	resp := api.RankResponse{
		Source:     api.SourceBandit,
		EventID:    ranked.EventID,
		Prob:       ranked.Prob,
		Chosen:     ranked.Chosen,
		NoOp:       ranked.Chosen == 0,
		Generation: gen,
	}
	if resp.NoOp {
		s.noops.Add(1)
	} else {
		resp.Flip = flips[ranked.Chosen].String()
	}
	return resp, nil
}

// RewardAsync submits a reward observation to the ingestion pipeline.
// It returns false on backpressure (queue full or ingestor closed).
func (s *Server) RewardAsync(eventID string, value float64) bool {
	return s.ingest.Enqueue(eventID, value)
}

// Stats snapshots the serving counters (the /v1/stats field set; the
// HTTP layer adds request ID and per-route metrics for /v2/stats).
func (s *Server) Stats() api.StatsResponse {
	var walStats *api.WALStats
	if s.wal != nil {
		ws := s.wal.Stats()
		walStats = &api.WALStats{
			Mode:              ws.Mode,
			FirstLSN:          ws.FirstLSN,
			LastLSN:           ws.LastLSN,
			SyncedLSN:         ws.SyncedLSN,
			Appends:           ws.Appends,
			AppendedBytes:     ws.AppendedBytes,
			Syncs:             ws.Syncs,
			Segments:          ws.Segments,
			TruncatedSegments: ws.TruncatedSegs,
			Checkpoints:       s.checkpoints.Load(),
			LastCheckpointLSN: s.lastCkptLSN.Load(),
			LastCheckpointB:   s.lastCkptBytes.Load(),
			LastCheckpointUs:  s.lastCkptMicros.Load(),
		}
	}
	return api.StatsResponse{
		UptimeSec:    time.Since(s.start).Seconds(),
		RankRequests: s.rankRequests.Load(),
		HintHits:     s.hintHits.Load(),
		BanditRanks:  s.banditRanks.Load(),
		NoOps:        s.noops.Load(),
		CacheSize:    s.cache.Size(),
		CacheGen:     s.cache.Generation(),
		CacheShards:  s.cache.Shards(),
		BanditLog:    int64(s.bandit.LogSize()),
		Ingest:       s.ingest.Stats(),
		WAL:          walStats,
	}
}

// Health snapshots the cheap liveness view served by /v2/healthz.
func (s *Server) Health() api.HealthResponse {
	ing := s.ingest.Stats()
	return api.HealthResponse{
		Status:     api.HealthOK,
		Generation: s.cache.Generation(),
		UptimeSec:  time.Since(s.start).Seconds(),
		Hints:      s.cache.Size(),
		QueueDepth: ing.QueueDepth,
		QueueCap:   ing.QueueCap,
	}
}

// SnapshotTo streams the learner's persisted form (bandit.Save).
func (s *Server) SnapshotTo(w io.Writer) error { return s.bandit.Save(w) }

// CheckpointInfo reports one checkpoint's outcome.
type CheckpointInfo struct {
	// Bytes is the snapshot size written.
	Bytes int64
	// LSN is the WAL watermark the snapshot covers (0 without a WAL).
	LSN uint64
	// SegmentsRemoved counts WAL segments compacted away.
	SegmentsRemoved int
	// Duration is the end-to-end checkpoint time, including the barrier.
	Duration time.Duration
}

// Checkpoint persists the model to path atomically and, when a WAL is
// attached, runs the full durability barrier first: reward intake is
// fenced, the queue drains, a train mark flushes pending telemetry
// into the weights, and the snapshot records the WAL watermark it
// covers — so recovery replays only the suffix. Sealed segments wholly
// below the watermark are then truncated (snapshot compaction).
//
// This is the one snapshot entry point for recovery-grade state:
// SIGTERM, the -snapshot-every ticker, and POST /v1/model/snapshot all
// land here.
func (s *Server) Checkpoint(path string) (CheckpointInfo, error) {
	start := time.Now()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	var info CheckpointInfo
	var buf bytes.Buffer
	if s.wal != nil {
		release := s.ingest.Quiesce()
		s.ingest.trainFlush()
		err := s.bandit.CheckpointTo(&buf)
		release()
		if err != nil {
			return info, err
		}
		// Make the journal durable up to the watermark (covers the train
		// mark) before the snapshot that claims to supersede it can be
		// promoted.
		if err := s.wal.Sync(); err != nil {
			return info, err
		}
	} else {
		if err := s.bandit.Save(&buf); err != nil {
			return info, err
		}
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return info, err
	}
	info.Bytes = int64(buf.Len())
	if s.wal != nil {
		info.LSN = s.bandit.WALWatermark()
		info.SegmentsRemoved = s.wal.TruncateBefore(info.LSN)
	}
	info.Duration = time.Since(start)
	s.checkpoints.Add(1)
	s.lastCkptLSN.Store(info.LSN)
	s.lastCkptBytes.Store(info.Bytes)
	s.lastCkptMicros.Store(info.Duration.Microseconds())
	return info, nil
}

// SnapshotToPath persists the model to the given path atomically and
// returns the byte count. It is Checkpoint under the covers, so the
// snapshot is always recovery-grade.
func (s *Server) SnapshotToPath(path string) (int64, error) {
	info, err := s.Checkpoint(path)
	return info.Bytes, err
}

// writeFileAtomic writes data via a temp file, fsync, and rename:
// a crash mid-write can never promote an empty or truncated snapshot.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
