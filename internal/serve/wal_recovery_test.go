package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/wal"
)

// walTestRig is a WAL-backed server driven over real HTTP, plus the
// journal and snapshot paths crash-recovery tests poke at.
type walTestRig struct {
	srv  *Server
	ts   *httptest.Server
	cl   *client.Client
	j    *wal.WAL
	dir  string
	snap string
}

const walTestTrainEvery = 8

func newWALRig(t *testing.T, segBytes int64) *walTestRig {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Seed: 42, TrainEvery: walTestTrainEvery, QueueSize: 1024, WAL: j})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &walTestRig{
		srv:  srv,
		ts:   ts,
		cl:   client.New(ts.URL),
		j:    j,
		dir:  dir,
		snap: filepath.Join(dir, "model.snap"),
	}
}

// rankSome steers n bandit-path jobs over /v2/rank and returns their
// event IDs.
func (r *walTestRig) rankSome(t *testing.T, n, salt int) []string {
	t.Helper()
	jobs := make([]api.RankRequest, n)
	for i := range jobs {
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(uint64(salt)<<32 | uint64(i)),
			Span:         []int{3 + (i+salt)%50, 60 + (i*7+salt)%50, 120 + i%30},
			RowCount:     float64(1000 * (i + 1)),
		}
	}
	resp, err := r.cl.RankBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, n)
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("job %d rejected: %v", i, res.Error)
		}
		if res.EventID == "" {
			t.Fatalf("job %d took the hint path in a hintless server", i)
		}
		ids = append(ids, res.EventID)
	}
	return ids
}

// rewardAll posts one /v2/reward batch for the given events and
// requires full acceptance.
func (r *walTestRig) rewardAll(t *testing.T, ids []string, v float64) {
	t.Helper()
	events := make([]api.RewardEvent, len(ids))
	for i, id := range ids {
		val := v + float64(i)*0.01
		events[i] = api.RewardEvent{EventID: id, Reward: &val}
	}
	resp, err := r.cl.RewardBatch(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Queued != len(ids) {
		t.Fatalf("queued %d of %d rewards: %+v", resp.Queued, len(ids), resp.Rejected)
	}
}

// captureLive drains the pipeline, syncs the journal, and returns the
// live model's persisted form with its watermark at the journal end —
// the reference a crash recovery must reproduce byte for byte.
func (r *walTestRig) captureLive(t *testing.T) []byte {
	t.Helper()
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}
	r.srv.Bandit().SetWALWatermark(r.j.LastLSN())
	var buf bytes.Buffer
	if err := r.srv.Bandit().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recoverBytes rebuilds a model from the rig's snapshot + journal
// directory (the crashed-process view) and returns its persisted form.
func (r *walTestRig) recoverBytes(t *testing.T, seed int64) ([]byte, RecoverResult) {
	t.Helper()
	rec, err := Recover(wal.DirSource{Dir: r.dir}, r.snap, walTestTrainEvery, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Service.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rec
}

// TestCrashRecoveryEquivalence is the acceptance core: a model rebuilt
// from snapshot + WAL suffix must be byte-identical to the live
// model's Save output, through the real HTTP serving path — including
// rewards that straddle the checkpoint (ranked before it, rewarded
// after) and events that were never rewarded at all.
func TestCrashRecoveryEquivalence(t *testing.T) {
	r := newWALRig(t, 2048)

	// Phase 1: traffic, partially rewarded.
	ids1 := r.rankSome(t, 60, 1)
	r.rewardAll(t, ids1[:20], 1.0)
	r.rewardAll(t, ids1[20:40], 0.5)

	// Mid-run checkpoint: quiesce, train-flush, snapshot with
	// watermark, compact covered segments.
	info, err := r.srv.Checkpoint(r.snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN == 0 || info.Bytes == 0 {
		t.Fatalf("checkpoint info = %+v", info)
	}
	if info.SegmentsRemoved == 0 {
		t.Errorf("no segments compacted at 2 KiB segment size (info %+v, wal %+v)", info, r.j.Stats())
	}

	// Phase 2: more traffic, including rewards for phase-1 events that
	// were open at checkpoint time (they travel in the snapshot).
	ids2 := r.rankSome(t, 40, 2)
	r.rewardAll(t, append(append([]string{}, ids1[40:55]...), ids2[:25]...), 0.75)

	want := r.captureLive(t)

	// "Crash": nothing is closed gracefully; recovery reads the
	// snapshot and journal exactly as a restarted process would.
	got, rec := r.recoverBytes(t, 777)
	if !rec.SnapshotLoaded || rec.Journal.Skipped == 0 || rec.Journal.Records == 0 {
		t.Fatalf("recovery did not use snapshot + suffix: %+v", rec)
	}
	if rec.Journal.Truncated {
		t.Fatalf("clean journal reported truncated: %v", rec.Journal.TailError)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered model differs from live model\nlive %d bytes, recovered %d bytes\nlive head:\n%s\nrecovered head:\n%s",
			len(want), len(got), head(want), head(got))
	}

	// Determinism: a second recovery from the same state is identical.
	got2, _ := r.recoverBytes(t, 31337)
	if !bytes.Equal(got, got2) {
		t.Fatal("two recoveries from identical state diverged")
	}

	// The recovered model still serves: an event left open across the
	// crash accepts its reward.
	openID := ids1[59] // never rewarded
	if !rec.Service.HasEvent(openID) {
		t.Fatalf("open event %s lost in recovery", openID)
	}
	if err := rec.Service.Reward(openID, 1.25); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTornTail kills the journal mid-record — the
// signature of a crash during an append — and requires recovery to
// skip the torn tail cleanly, reproducing the pre-tail state exactly.
func TestCrashRecoveryTornTail(t *testing.T) {
	r := newWALRig(t, 1<<20) // one segment: the torn record is in it

	ids := r.rankSome(t, 30, 9)
	r.rewardAll(t, ids[:12], 1.0)
	if _, err := r.srv.Checkpoint(r.snap); err != nil {
		t.Fatal(err)
	}
	r.rewardAll(t, ids[12:20], 0.5)

	// Reference point: everything up to here is durable and captured.
	want := r.captureLive(t)
	segs, err := filepath.Glob(filepath.Join(r.dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	lastSeg := segs[len(segs)-1]
	fi, err := os.Stat(lastSeg)
	if err != nil {
		t.Fatal(err)
	}
	sizeAtCapture := fi.Size()

	// One more durable reward batch after the capture...
	r.rewardAll(t, ids[20:25], 0.25)
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}
	// ...then tear it: cut the file a few bytes into the record that
	// follows the captured state, as a crash mid-write would.
	if err := os.Truncate(lastSeg, sizeAtCapture+5); err != nil {
		t.Fatal(err)
	}

	got, rec := r.recoverBytes(t, 5)
	if !rec.Journal.Truncated {
		t.Fatal("torn tail not reported")
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recovery from torn tail differs from pre-tail state\nwant head:\n%s\ngot head:\n%s",
			head(want), head(got))
	}

	// A server restarted on the damaged directory opens cleanly (Open
	// truncates the tail) and keeps journaling from the valid end.
	lastGood := rec.Service.WALWatermark()
	j2, err := wal.Open(wal.Options{Dir: r.dir, Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastLSN() != lastGood {
		t.Fatalf("reopened journal at LSN %d, recovery ended at %d", j2.LastLSN(), lastGood)
	}
	srv2 := New(Config{Seed: 7, TrainEvery: walTestTrainEvery, WAL: j2, Bandit: rec.Service})
	defer srv2.Close()
	resp, err := srv2.Rank(api.RankRequest{TemplateHash: 99, Span: []int{5, 80}})
	if err != nil || resp.EventID == "" {
		t.Fatalf("recovered server cannot rank: %+v %v", resp, err)
	}
	if !srv2.RewardAsync(resp.EventID, 1.0) {
		t.Fatal("recovered server cannot ingest rewards")
	}
	srv2.Ingestor().Drain()
}

// TestCheckpointCompactsAndRestartsFromSuffix covers the compactor
// contract end to end: after a checkpoint truncates covered segments,
// a recovery that can no longer see the old records still reproduces
// the live model (the snapshot carries everything below the
// watermark).
func TestCheckpointCompactsAndRestartsFromSuffix(t *testing.T) {
	r := newWALRig(t, 1024)

	for round := 0; round < 3; round++ {
		ids := r.rankSome(t, 25, 10+round)
		r.rewardAll(t, ids[:20], 0.6)
		if _, err := r.srv.Checkpoint(r.snap); err != nil {
			t.Fatal(err)
		}
	}
	st := r.j.Stats()
	if st.TruncatedSegs == 0 {
		t.Fatalf("no compaction after 3 checkpoints at 1 KiB segments: %+v", st)
	}
	if st.FirstLSN <= 1 {
		t.Fatalf("journal still starts at LSN %d after compaction", st.FirstLSN)
	}

	ids := r.rankSome(t, 10, 99)
	r.rewardAll(t, ids[:5], 0.9)
	want := r.captureLive(t)
	got, rec := r.recoverBytes(t, 1)
	if !bytes.Equal(want, got) {
		t.Fatal("recovery after compaction differs from live model")
	}
	if rec.Journal.Skipped != 0 && rec.FromLSN < st.FirstLSN-1 {
		t.Fatalf("replay started below the retained window: from %d, first retained %d", rec.FromLSN, st.FirstLSN)
	}
}

// TestQuiesceFencesIntake pins the checkpoint barrier semantics: while
// quiesced, new reward batches block (rather than slipping past the
// snapshot's watermark) and resume after release.
func TestQuiesceFencesIntake(t *testing.T) {
	svc := bandit.New(bandit.DefaultConfig(3))
	in := NewIngestor(svc, nil, 16, 1, 4)
	defer in.Close()
	ids := rankEvents(t, svc, 2)

	release := in.Quiesce()
	done := make(chan bool, 1)
	go func() {
		ok := in.Enqueue(ids[0], 1.0)
		done <- ok
	}()
	select {
	case <-done:
		t.Fatal("Enqueue completed while quiesced")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Enqueue failed after release")
		}
	case <-time.After(time.Second):
		t.Fatal("Enqueue still blocked after release")
	}
	in.Drain()
	if st := in.Stats(); st.Applied != 1 {
		t.Fatalf("Applied = %d, want 1", st.Applied)
	}
}

func head(b []byte) string {
	const n = 400
	if len(b) < n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
