package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qoadvisor/internal/api"
)

// scrapeMetrics drives a little traffic through the server so every
// family has data, then fetches and returns the /metrics body.
func scrapeMetrics(t *testing.T, tsURL string) string {
	t.Helper()
	rank := postJSON(t, tsURL+api.RouteV1Rank, api.RankRequest{
		TemplateHash: 0xfeed, TemplateID: "T0001", Span: []int{1, 2, 3}, RowCount: 1e5,
	})
	rr := decodeJSON[api.RankResponse](t, rank)
	if rr.EventID != "" {
		v := 1.0
		resp := postJSON(t, tsURL+api.RouteV1Reward, api.RewardEvent{EventID: rr.EventID, Reward: &v})
		resp.Body.Close()
	}
	resp, err := http.Get(tsURL + api.RouteMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parseSampleLine splits one exposition sample into metric name, label
// text, and value, validating label syntax along the way.
func parseSampleLine(t *testing.T, line string) (name, labels string, value float64) {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("sample line without value: %q", line)
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	series := line[:sp]
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("unterminated label set: %q", line)
		}
		name, labels = series[:i], series[i+1:len(series)-1]
	} else {
		name = series
	}
	for _, c := range name {
		if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			t.Fatalf("invalid metric name char %q in %q", c, line)
		}
	}
	return name, labels, v
}

// baseFamily strips histogram sample suffixes to the declared family
// name (TYPE/HELP are declared for the family, samples carry suffixes).
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestMetricsExposition validates the hand-rolled Prometheus text
// encoding against the format's structural rules: every sample belongs
// to a family with exactly one preceding HELP and TYPE line, values
// parse, histogram buckets are cumulative and consistent with _count,
// and label values round-trip the escaping rules.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 3, TrainEvery: 4})
	body := scrapeMetrics(t, ts.URL)

	types := map[string]string{} // family -> declared type
	helps := map[string]int{}    // family -> HELP line count
	var families []string
	samples := map[string][]string{} // sample metric name -> lines

	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			fam := rest[:strings.IndexByte(rest, ' ')]
			helps[fam]++
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			fam, typ := fields[0], fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type %q for %s", typ, fam)
			}
			if _, dup := types[fam]; dup {
				t.Fatalf("family %s declared twice", fam)
			}
			types[fam] = typ
			families = append(families, fam)
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line: %q", line)
		default:
			name, _, _ := parseSampleLine(t, line)
			samples[name] = append(samples[name], line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Every sample's family must be declared; every family must have
	// exactly one HELP and carry at least one sample.
	for name := range samples {
		fam := baseFamily(name)
		if _, ok := types[fam]; !ok && name == fam {
			t.Errorf("sample %s has no TYPE declaration", name)
		}
	}
	for _, fam := range families {
		if helps[fam] != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", fam, helps[fam])
		}
		n := len(samples[fam])
		if types[fam] == "histogram" {
			n = len(samples[fam+"_bucket"]) + len(samples[fam+"_sum"]) + len(samples[fam+"_count"])
		}
		if n == 0 {
			t.Errorf("family %s declared but has no samples", fam)
		}
	}

	// Core families from every subsystem must be present.
	for _, want := range []string{
		"qoserved_build_info", "qoserved_rank_requests_total",
		"qoserved_ingest_enqueued_total", "qoserved_ingest_queue_depth",
		"qoserved_http_requests_total", "qoserved_http_request_duration_seconds",
		"qoserved_stage_duration_seconds",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}

	// The rank we drove must be visible in the counters.
	foundRank := false
	for _, line := range samples["qoserved_http_requests_total"] {
		_, labels, v := parseSampleLine(t, line)
		if strings.Contains(labels, `route="/v1/rank"`) && v >= 1 {
			foundRank = true
		}
	}
	if !foundRank {
		t.Error("qoserved_http_requests_total{route=\"/v1/rank\"} did not count the driven request")
	}
}

// TestMetricsHistogramConsistency checks every exported histogram's
// invariants: le= bounds strictly increase, bucket counts are
// cumulative (monotone non-decreasing), the +Inf bucket equals _count,
// and _sum is present for each series.
func TestMetricsHistogramConsistency(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 3, TrainEvery: 4})
	body := scrapeMetrics(t, ts.URL)

	type seriesKey struct{ fam, labels string }
	buckets := map[seriesKey][]struct {
		le  float64
		cum float64
	}{}
	counts := map[seriesKey]float64{}
	sums := map[seriesKey]bool{}

	stripLe := func(labels string) (rest string, le float64, inf bool) {
		parts := strings.Split(labels, ",")
		kept := parts[:0]
		for _, p := range parts {
			if strings.HasPrefix(p, `le="`) {
				val := strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
				if val == "+Inf" {
					inf = true
					le = 0
				} else {
					f, err := strconv.ParseFloat(val, 64)
					if err != nil {
						t.Fatalf("bad le value %q", val)
					}
					le = f
				}
				continue
			}
			kept = append(kept, p)
		}
		return strings.Join(kept, ","), le, inf
	}

	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, v := parseSampleLine(t, line)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := strings.TrimSuffix(name, "_bucket")
			rest, le, inf := stripLe(labels)
			k := seriesKey{fam, rest}
			if inf {
				le = inf64()
			}
			buckets[k] = append(buckets[k], struct{ le, cum float64 }{le, v})
		case strings.HasSuffix(name, "_count"):
			counts[seriesKey{strings.TrimSuffix(name, "_count"), labels}] = v
		case strings.HasSuffix(name, "_sum"):
			sums[seriesKey{strings.TrimSuffix(name, "_sum"), labels}] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series found in exposition")
	}

	for k, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				t.Errorf("%s{%s}: le bounds not increasing at %v", k.fam, k.labels, bs[i].le)
			}
			if bs[i].cum < bs[i-1].cum {
				t.Errorf("%s{%s}: bucket counts not cumulative at le=%v", k.fam, k.labels, bs[i].le)
			}
		}
		last := bs[len(bs)-1]
		if last.le != inf64() {
			t.Errorf("%s{%s}: final bucket is le=%v, want +Inf", k.fam, k.labels, last.le)
		}
		cnt, ok := counts[k]
		if !ok {
			t.Errorf("%s{%s}: no _count sample", k.fam, k.labels)
		} else if last.cum != cnt {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", k.fam, k.labels, last.cum, cnt)
		}
		if !sums[k] {
			t.Errorf("%s{%s}: no _sum sample", k.fam, k.labels)
		}
	}
}

func inf64() float64 { return math.Inf(1) }

// TestVersionEndpoint exercises GET /v2/version and the version echo
// in /v2/stats.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 3})
	resp, err := http.Get(ts.URL + api.RouteV2Version)
	if err != nil {
		t.Fatal(err)
	}
	ver := decodeJSON[api.VersionResponse](t, resp)
	if ver.GoVersion == "" || ver.Module == "" {
		t.Errorf("version response missing build identity: %+v", ver)
	}
	if ver.RequestID == "" {
		t.Error("version response missing request ID")
	}

	sresp, err := http.Get(ts.URL + api.RouteV2Stats)
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeJSON[api.StatsResponse](t, sresp)
	if stats.Version == nil || stats.Version.GoVersion != ver.GoVersion {
		t.Errorf("stats version = %+v, want to match /v2/version %+v", stats.Version, ver.VersionInfo)
	}
}

// TestStatsStagesAndRoutePercentiles checks that /v2/stats carries the
// additive stage summaries and route percentile fields after traffic.
func TestStatsStagesAndRoutePercentiles(t *testing.T) {
	_, ts := newTestServer(t, Config{Seed: 3, TrainEvery: 2})
	for i := 0; i < 8; i++ {
		rank := postJSON(t, ts.URL+api.RouteV1Rank, api.RankRequest{
			TemplateHash: api.TemplateHash(i), TemplateID: fmt.Sprintf("T%04d", i), Span: []int{1, 5}, RowCount: 1e5,
		})
		rr := decodeJSON[api.RankResponse](t, rank)
		if rr.EventID != "" {
			v := 0.5
			resp := postJSON(t, ts.URL+api.RouteV1Reward, api.RewardEvent{EventID: rr.EventID, Reward: &v})
			resp.Body.Close()
		}
	}
	resp, err := http.Get(ts.URL + api.RouteV2Stats)
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeJSON[api.StatsResponse](t, resp)

	if len(stats.Stages) == 0 {
		t.Fatal("stats carries no stage summaries")
	}
	var names []string
	for name := range stats.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, want := range []string{"rank_bandit", "rank_hint_lookup", "reward_apply", "reward_queue_wait"} {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			t.Errorf("stage %q missing from stats (have %v)", want, names)
		}
	}
	bandit := stats.Stages["rank_bandit"]
	if bandit.Count < 8 {
		t.Errorf("rank_bandit count = %d, want >= 8", bandit.Count)
	}
	if bandit.P50Micros > bandit.P99Micros || bandit.P99Micros > bandit.P999Micros {
		t.Errorf("percentiles not monotone: %+v", bandit)
	}

	rankRoute := stats.Routes[api.RouteV1Rank]
	if rankRoute.Count < 8 || rankRoute.P50Micros <= 0 || rankRoute.P999Micros < rankRoute.P50Micros {
		t.Errorf("route percentile fields inconsistent: %+v", rankRoute)
	}
}
