package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/wal"
)

// WAL replication stream: GET /v2/wal?from=<lsn> ships every journal
// record with LSN > from as api.WALFrame frames, then long-polls the
// tail — the primary half of log-shipping replication. The stream only
// ever ships records at or below the durable frontier (wal.SyncedLSN),
// so a follower can never apply state the primary would lose in a
// crash; in async mode the group-commit window bounds shipping latency
// at a few milliseconds.
const (
	// walStreamMaxDuration bounds one response so it finishes inside
	// common proxy/server write timeouts (qoserved serves with a 30s
	// WriteTimeout); followers resume with from=<applied> on reconnect.
	walStreamMaxDuration = 20 * time.Second
	// walStreamPollWait is the default long-poll window at the tail: an
	// idle primary holds the request open this long waiting for fresh
	// records before closing the stream empty-handed. The follower can
	// shorten it with ?wait=<ms> (capped at walStreamPollMax).
	walStreamPollWait = 10 * time.Second
	walStreamPollMax  = 30 * time.Second
)

// assertFrameLimitMatches pins the api-side frame payload bound to the
// journal's record bound at compile time: a journal record must always
// fit one frame. (api is stdlib-only and cannot import wal, so the
// constant is restated there.)
var _ = [1]struct{}{}[api.MaxWALFramePayload-wal.MaxRecordSize]

func (h *httpLayer) handleWALStream(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) || !h.requirePrimary(w, r) {
		return
	}
	s := h.srv
	if s.wal == nil {
		writeError(w, rid, errWALDisabled())
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "bad from LSN %q", q))
			return
		}
		from = v
	}
	pollWait := walStreamPollWait
	if q := r.URL.Query().Get("wait"); q != "" {
		ms, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "bad wait duration %q (want milliseconds)", q))
			return
		}
		pollWait = min(time.Duration(ms)*time.Millisecond, walStreamPollMax)
	}
	first := s.wal.FirstLSN()
	if first > 0 && from+1 < first {
		// Compaction removed the records the follower needs; tailing
		// cannot catch it up. The follower must take a fresh bootstrap
		// snapshot (which re-journals the hint table above its watermark).
		writeError(w, rid, api.Errorf(api.CodeWALGap,
			"records through %d were compacted (oldest retained is %d); re-bootstrap from %s",
			first-1, first, api.RouteV2WALSnapshot))
		return
	}

	w.Header().Set("Content-Type", api.WALStreamContentType)
	w.Header().Set(api.WALFrontierHeader, strconv.FormatUint(s.wal.SyncedLSN(), 10))
	w.Header().Set(api.WALFirstHeader, strconv.FormatUint(first, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: the first batch may be a long-poll
		// wait away, and the follower's HTTP client is blocked on them.
		flusher.Flush()
	}

	s.walStreams.Add(1)
	s.walStreamsTotal.Add(1)
	defer s.walStreams.Add(-1)

	// A stateful cursor remembers the byte offset of the last shipped
	// record, so each long-poll wake reads only the new suffix — a
	// naive per-wake Replay would re-scan (and re-CRC) the whole active
	// segment every group-commit window, per follower.
	cur := s.wal.NewCursor(from)
	deadline := time.Now().Add(walStreamMaxDuration)
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			return
		}
		if wait > pollWait {
			wait = pollWait
		}
		synced := s.wal.WaitLSN(from+1, wait)
		if synced <= from {
			// Idle long-poll window expired (or the WAL closed) with
			// nothing new; end the response so the client reconnects.
			return
		}
		_, err := cur.Next(synced, func(lsn uint64, payload []byte) error {
			if werr := api.WriteWALFrame(w, lsn, payload); werr != nil {
				return werr
			}
			from = lsn
			s.walRecsShipped.Add(1)
			s.walBytesShipped.Add(int64(api.WALFrameHeaderSize + len(payload)))
			return nil
		})
		if err != nil {
			// Client gone, journal error, or compaction passed the cursor
			// (the follower will get wal_gap on reconnect); all end here.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

// handleWALSnapshot streams a checkpoint-consistent bootstrap snapshot
// (the follower's join path). The response body is the bandit model's
// persisted form; its embedded wal= watermark is where the follower
// starts tailing, and the hint table is re-journaled above that
// watermark so the first tail batch delivers it.
func (h *httpLayer) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) || !h.requirePrimary(w, r) {
		return
	}
	// The barrier buffers the whole snapshot before anything touches the
	// ResponseWriter, so a barrier failure (WAL disabled, latched disk
	// error, checkpoint fault) still gets a proper error envelope — a
	// bare 200 with an empty body would send the follower into a silent
	// re-bootstrap loop while hiding the primary's fault.
	buf, _, err := h.srv.bootstrapSnapshot()
	if err != nil {
		var e *api.Error
		if !errors.As(err, &e) {
			e = api.Errorf(api.CodeInternal, "bootstrap snapshot: %v", err)
		}
		writeError(w, rid, e)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Body write failures past this point mean the follower is gone; a
	// truncated body fails bandit.Load loudly there, which retries.
	w.Write(buf.Bytes())
}

// errWALDisabled is the one construction of the wal_disabled envelope:
// every replication route on a WAL-less server must report the same
// wire contract.
func errWALDisabled() *api.Error {
	return api.Errorf(api.CodeWALDisabled, "this server runs without a WAL; nothing to replicate")
}
