package serve

import (
	"fmt"

	"qoadvisor/internal/drift"
	"qoadvisor/internal/walrec"
)

// RecQuarantine is the journal record type for drift-safeguard state,
// aliased from the shared registry (tag 5; tags 1-3 belong to
// qoadvisor/internal/bandit, tag 4 is the hint rollover). Like hint
// rollovers, each record carries the COMPLETE durable quarantine
// table — every template currently quarantined or on probation — so
// replay is last-record-wins: a transition record and the
// checkpoint-time re-journal use the same encoding, and a follower
// applying any one record holds the full safeguard state as of that
// LSN. Healthy and suspect templates are absent by construction
// (healthy is the implicit default; suspicion is noisy and
// deliberately never durable).
//
// The wire codec lives in qoadvisor/internal/walrec (shared with the
// audit engine); this wrapper enforces the drift-state durability
// invariant the wire layer cannot know about.
const RecQuarantine = walrec.TagQuarantine

// EncodeQuarantine frames the durable quarantine table:
//
//	[tag][flags][uvarint count] per template: [8-byte hash][state byte]
//
// Iteration order is unspecified; decode builds a map, so records with
// the same content replay identically regardless of encoding order.
// Only durable states belong in the journal — anything else is
// dropped defensively before encoding.
func EncodeQuarantine(states map[uint64]drift.State, snapshot, manual bool) []byte {
	raw := make(map[uint64]byte, len(states))
	for hash, st := range states {
		if !st.Durable() {
			continue
		}
		raw[hash] = byte(st)
	}
	return walrec.EncodeQuarantine(raw, snapshot, manual)
}

// DecodeQuarantine parses a RecQuarantine payload.
func DecodeQuarantine(p []byte) (states map[uint64]drift.State, snapshot, manual bool, err error) {
	rec, err := walrec.DecodeQuarantine(p)
	if err != nil {
		return nil, false, false, err
	}
	states = make(map[uint64]drift.State, len(rec.States))
	for hash, raw := range rec.States {
		st := drift.State(raw)
		if !st.Durable() {
			return nil, false, false, fmt.Errorf("serve: quarantine record carries non-durable state %d for template %016x", st, hash)
		}
		states[hash] = st
	}
	return states, rec.Snapshot, rec.Manual, nil
}
