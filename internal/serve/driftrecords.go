package serve

import (
	"encoding/binary"
	"fmt"

	"qoadvisor/internal/drift"
)

// RecQuarantine is the journal record type for drift-safeguard state
// (tag 5; tags 1-3 belong to qoadvisor/internal/bandit, tag 4 is the
// hint rollover). Like hint rollovers, each record carries the
// COMPLETE durable quarantine table — every template currently
// quarantined or on probation — so replay is last-record-wins: a
// transition record and the checkpoint-time re-journal use the same
// encoding, and a follower applying any one record holds the full
// safeguard state as of that LSN. Healthy and suspect templates are
// absent by construction (healthy is the implicit default; suspicion
// is noisy and deliberately never durable).
const RecQuarantine byte = 5

// Quarantine record flags.
const (
	// quarFlagSnapshot marks a checkpoint/bootstrap re-journal of the
	// live table (no transition happened at this LSN).
	quarFlagSnapshot byte = 1 << 0
	// quarFlagManual marks an operator-initiated transition (the
	// POST /v2/quarantine admin endpoint).
	quarFlagManual byte = 1 << 1
)

// EncodeQuarantine frames the durable quarantine table:
//
//	[tag][flags][uvarint count] per template: [8-byte hash][state byte]
//
// Iteration order is unspecified; decode builds a map, so records with
// the same content replay identically regardless of encoding order.
func EncodeQuarantine(states map[uint64]drift.State, snapshot, manual bool) []byte {
	var flags byte
	if snapshot {
		flags |= quarFlagSnapshot
	}
	if manual {
		flags |= quarFlagManual
	}
	b := make([]byte, 0, 2+binary.MaxVarintLen64+9*len(states))
	b = append(b, RecQuarantine, flags)
	b = binary.AppendUvarint(b, uint64(len(states)))
	for hash, st := range states {
		if !st.Durable() {
			continue // defensive: only durable states belong in the journal
		}
		b = binary.LittleEndian.AppendUint64(b, hash)
		b = append(b, byte(st))
	}
	return b
}

// DecodeQuarantine parses a RecQuarantine payload.
func DecodeQuarantine(p []byte) (states map[uint64]drift.State, snapshot, manual bool, err error) {
	if len(p) < 2 || p[0] != RecQuarantine {
		return nil, false, false, fmt.Errorf("serve: not a quarantine record")
	}
	flags := p[1]
	b := p[2:]
	var n uint64
	if n, b, err = takeUvarint(b); err != nil {
		return nil, false, false, fmt.Errorf("serve: quarantine record: %w", err)
	}
	if n > uint64(len(b))/9 {
		return nil, false, false, fmt.Errorf("serve: quarantine record claims %d templates in %d bytes", n, len(b))
	}
	states = make(map[uint64]drift.State, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 9 {
			return nil, false, false, fmt.Errorf("serve: quarantine record truncated")
		}
		hash := binary.LittleEndian.Uint64(b)
		st := drift.State(b[8])
		b = b[9:]
		if !st.Durable() {
			return nil, false, false, fmt.Errorf("serve: quarantine record carries non-durable state %d for template %016x", st, hash)
		}
		states[hash] = st
	}
	return states, flags&quarFlagSnapshot != 0, flags&quarFlagManual != 0, nil
}
