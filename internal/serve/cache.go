// Package serve is QO-Advisor's online steering layer: an embeddable,
// concurrency-safe service that answers per-job steering requests at
// compile time and feeds run telemetry back into the contextual bandit.
// It mirrors the deployment architecture of the paper (§4): the daily
// offline pipeline produces rule-flip hints, a production-facing serving
// layer answers "what flip for this job template?" on the hot path from
// a sharded hint cache, and reward telemetry flows asynchronously into
// the Personalizer-style rank/reward learner.
package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/sis"
)

// defaultShards is the hint-cache shard count when the caller does not
// choose one. 32 shards keep lock contention negligible at request
// concurrencies well beyond typical GOMAXPROCS values.
const defaultShards = 32

// HintCache is a sharded, read-mostly map from job-template hash to the
// template's active hint. Lookups take a per-shard read lock; Replace
// hot-swaps the whole table shard by shard on pipeline rollover, so
// readers never block behind a full rebuild and never observe a torn
// table beyond a momentary mix of two adjacent generations.
type HintCache struct {
	shards []hintShard
	mask   uint64
	gen    atomic.Uint64
	size   atomic.Int64
	// replaceMu serializes writers: two concurrent Replace calls must not
	// interleave their per-shard swaps, or the table would permanently mix
	// two generations.
	replaceMu sync.Mutex
}

type hintShard struct {
	mu sync.RWMutex
	m  map[uint64]sis.Hint
}

// NewHintCache creates a cache with at least n shards (rounded up to a
// power of two; n <= 0 selects the default).
func NewHintCache(n int) *HintCache {
	if n <= 0 {
		n = defaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	c := &HintCache{shards: make([]hintShard, p), mask: uint64(p - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]sis.Hint)
	}
	return c
}

// Shard selection finalizes the template hash with bandit.Mix64 —
// template hashes are already well-distributed FNV values, but
// finalizing makes shard selection robust to any clustering in the low
// bits.
func (c *HintCache) shard(templateHash uint64) *hintShard {
	return &c.shards[bandit.Mix64(templateHash)&c.mask]
}

// Lookup returns the active hint for a job template, if any. This is the
// serving hot path: one hash finalization, one shard RLock, one map read.
func (c *HintCache) Lookup(templateHash uint64) (sis.Hint, bool) {
	sh := c.shard(templateHash)
	sh.mu.RLock()
	h, ok := sh.m[templateHash]
	sh.mu.RUnlock()
	return h, ok
}

// Replace installs a fresh hint table, replacing the previous one — the
// pipeline-rollover hot swap. The new shard maps are built entirely
// outside the locks; each shard then swaps its map pointer under a brief
// write lock. Duplicate template hashes keep the last occurrence,
// matching sis.Store upload semantics. Returns the new generation.
func (c *HintCache) Replace(hints []sis.Hint) uint64 {
	c.replaceMu.Lock()
	defer c.replaceMu.Unlock()
	fresh := make([]map[uint64]sis.Hint, len(c.shards))
	// Pre-size each shard near its expected share of the table: Mix64
	// spreads templates evenly, so len/shards is the right hint and the
	// rollover build stops paying for incremental map growth.
	per := len(hints)/len(c.shards) + 1
	for i := range fresh {
		fresh[i] = make(map[uint64]sis.Hint, per)
	}
	for _, h := range hints {
		fresh[bandit.Mix64(h.TemplateHash)&c.mask][h.TemplateHash] = h
	}
	total := 0
	for i := range c.shards {
		total += len(fresh[i])
		c.shards[i].mu.Lock()
		c.shards[i].m = fresh[i]
		c.shards[i].mu.Unlock()
	}
	c.size.Store(int64(total))
	return c.gen.Add(1)
}

// Restore installs a hint table at an explicit generation — the
// journal-replay and replication path. Unlike Replace it does not mint
// a new generation: the journal record carries the generation the
// table was installed as on the primary, and restoring it verbatim is
// what keeps the generation clients observe identical across a crash
// restart or between a primary and its followers.
func (c *HintCache) Restore(hints []sis.Hint, gen uint64) {
	c.replaceMu.Lock()
	defer c.replaceMu.Unlock()
	fresh := make([]map[uint64]sis.Hint, len(c.shards))
	per := len(hints)/len(c.shards) + 1
	for i := range fresh {
		fresh[i] = make(map[uint64]sis.Hint, per)
	}
	for _, h := range hints {
		fresh[bandit.Mix64(h.TemplateHash)&c.mask][h.TemplateHash] = h
	}
	total := 0
	for i := range c.shards {
		total += len(fresh[i])
		c.shards[i].mu.Lock()
		c.shards[i].m = fresh[i]
		c.shards[i].mu.Unlock()
	}
	c.size.Store(int64(total))
	c.gen.Store(gen)
}

// Export snapshots the active table and its generation in ascending
// template-hash order — the stable form checkpoints re-journal and
// tests compare. It takes the writer lock so the hints and generation
// are a consistent pair even against a concurrent Replace.
func (c *HintCache) Export() ([]sis.Hint, uint64) {
	c.replaceMu.Lock()
	defer c.replaceMu.Unlock()
	out := make([]sis.Hint, 0, c.size.Load())
	for i := range c.shards {
		c.shards[i].mu.RLock()
		for _, h := range c.shards[i].m {
			out = append(out, h)
		}
		c.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TemplateHash < out[j].TemplateHash })
	return out, c.gen.Load()
}

// Size returns the number of active hints as of the last Replace.
func (c *HintCache) Size() int { return int(c.size.Load()) }

// Generation returns how many tables have been installed.
func (c *HintCache) Generation() uint64 { return c.gen.Load() }

// Shards returns the shard count (diagnostic).
func (c *HintCache) Shards() int { return len(c.shards) }
