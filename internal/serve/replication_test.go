package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// testHints builds a small valid hint table.
func testHints(cat *rules.Catalog, n, day int) []sis.Hint {
	hints := make([]sis.Hint, n)
	for i := range hints {
		hints[i] = sis.Hint{
			TemplateHash: uint64(0x1000 + i),
			TemplateID:   fmt.Sprintf("T%04d", i),
			Flip:         cat.FlipFor(40 + i%40),
			Day:          day,
		}
	}
	return hints
}

func TestHintRolloverRecordRoundTrip(t *testing.T) {
	cat := rules.NewCatalog()
	hints := testHints(cat, 17, 5)
	rec := EncodeHintRollover(3, hints)
	gen, got, err := DecodeHintRollover(rec)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || len(got) != len(hints) {
		t.Fatalf("decoded gen %d, %d hints", gen, len(got))
	}
	for i := range hints {
		if got[i] != hints[i] {
			t.Fatalf("hint %d: %+v != %+v", i, got[i], hints[i])
		}
	}
	// Truncated payloads fail loudly rather than installing a partial table.
	for cut := 1; cut < len(rec); cut += 7 {
		if _, _, err := DecodeHintRollover(rec[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", cut)
		}
	}
}

// TestHintTableCrashRecovery is the satellite regression: before hint
// journaling, a crash restart restored the bandit but came back with
// an EMPTY hint cache — every steered template silently fell back to
// the bandit path. Now the rollover is journaled, so a restart after a
// rollover must serve the installed hints at the installed generation.
func TestHintTableCrashRecovery(t *testing.T) {
	r := newWALRig(t, 1<<20)
	cat := rules.NewCatalog()

	ids := r.rankSome(t, 10, 1)
	r.rewardAll(t, ids[:6], 0.8)

	hints := testHints(cat, 9, 4)
	if _, err := r.srv.InstallHints(hints); err != nil {
		t.Fatal(err)
	}
	// A second rollover: recovery must finish on the NEWEST table and
	// generation, not the first one it sees.
	hints2 := testHints(cat, 12, 5)
	if _, err := r.srv.InstallHints(hints2); err != nil {
		t.Fatal(err)
	}
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover from the journal alone (no snapshot ever taken).
	rec, err := Recover(wal.DirSource{Dir: r.dir}, "", walTestTrainEvery, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HintRollovers != 2 || rec.HintGen != 2 || len(rec.Hints) != len(hints2) {
		t.Fatalf("recovered rollovers=%d gen=%d hints=%d, want 2/2/%d",
			rec.HintRollovers, rec.HintGen, len(rec.Hints), len(hints2))
	}

	// A restarted server restores the table and serves it.
	srv2 := New(Config{Seed: 42, TrainEvery: walTestTrainEvery, Bandit: rec.Service})
	defer srv2.Close()
	srv2.RestoreHints(rec.Hints, rec.HintGen)
	resp, err := srv2.Rank(api.RankRequest{TemplateHash: api.TemplateHash(hints2[3].TemplateHash), Span: []int{50}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != api.SourceHint || resp.Flip != hints2[3].Flip.String() || resp.Generation != 2 {
		t.Fatalf("restart does not serve the rolled-over hint: %+v", resp)
	}
}

// TestHintTableSurvivesCompaction covers the re-journal-at-checkpoint
// discipline: checkpoints truncate covered segments, which can delete
// the original rollover record — the checkpoint must have re-appended
// the live table above its watermark so recovery still finds it.
func TestHintTableSurvivesCompaction(t *testing.T) {
	r := newWALRig(t, 1024) // tiny segments so checkpoints compact
	cat := rules.NewCatalog()

	hints := testHints(cat, 7, 3)
	if _, err := r.srv.InstallHints(hints); err != nil {
		t.Fatal(err)
	}
	// Traffic + checkpoints until the segment holding the rollover is
	// compacted away.
	for round := 0; round < 3; round++ {
		ids := r.rankSome(t, 25, 20+round)
		r.rewardAll(t, ids[:20], 0.5)
		if _, err := r.srv.Checkpoint(r.snap); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.j.Stats(); st.TruncatedSegs == 0 {
		t.Fatalf("no compaction happened; test is vacuous: %+v", st)
	}

	rec, err := Recover(wal.DirSource{Dir: r.dir}, r.snap, walTestTrainEvery, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HintGen != 1 || len(rec.Hints) != len(hints) {
		t.Fatalf("hint table lost to compaction: gen=%d hints=%d", rec.HintGen, len(rec.Hints))
	}
	for i := range hints {
		if rec.Hints[i] != hints[i] {
			t.Fatalf("hint %d corrupted across checkpoint: %+v != %+v", i, rec.Hints[i], hints[i])
		}
	}
}

func getURL(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readFrames drains one /v2/wal response into (lsn, payload) pairs.
func readFrames(t *testing.T, body io.Reader) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	for {
		lsn, p, err := api.ReadWALFrame(body)
		if err == io.EOF {
			return lsns, payloads
		}
		if err != nil {
			t.Fatalf("reading frame: %v", err)
		}
		lsns = append(lsns, lsn)
		payloads = append(payloads, p)
	}
}

// TestWALStreamCatchUpAndResume drives the streaming endpoint the way
// a follower does: full catch-up from 0, then resume-from-LSN after a
// torn connection, with every frame CRC-verified and dense.
func TestWALStreamCatchUpAndResume(t *testing.T) {
	r := newWALRig(t, 1<<20)
	cat := rules.NewCatalog()
	ids := r.rankSome(t, 20, 3)
	r.rewardAll(t, ids[:15], 0.7)
	if _, err := r.srv.InstallHints(testHints(cat, 5, 2)); err != nil {
		t.Fatal(err)
	}
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}
	last := r.j.LastLSN()

	resp, err := http.Get(r.ts.URL + api.RouteV2WAL + "?from=0&wait=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != api.WALStreamContentType {
		t.Fatalf("stream status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	frontier, err := strconv.ParseUint(resp.Header.Get(api.WALFrontierHeader), 10, 64)
	if err != nil || frontier < last {
		t.Fatalf("frontier header %q, journal end %d", resp.Header.Get(api.WALFrontierHeader), last)
	}

	// Read a prefix, then tear the connection mid-stream.
	var applied uint64
	for applied < last/2 {
		lsn, _, err := api.ReadWALFrame(resp.Body)
		if err != nil {
			t.Fatalf("frame after %d: %v", applied, err)
		}
		if lsn != applied+1 {
			t.Fatalf("LSN gap: got %d after %d", lsn, applied)
		}
		applied = lsn
	}
	resp.Body.Close() // torn connection

	// Resume from the last applied LSN: the remainder arrives exactly
	// once, no gaps, no duplicates.
	resp2, err := http.Get(fmt.Sprintf("%s%s?from=%d&wait=100", r.ts.URL, api.RouteV2WAL, applied))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lsns, _ := readFrames(t, resp2.Body)
	if uint64(len(lsns)) != last-applied {
		t.Fatalf("resume delivered %d frames, want %d", len(lsns), last-applied)
	}
	for i, lsn := range lsns {
		if lsn != applied+uint64(i)+1 {
			t.Fatalf("resume frame %d has LSN %d, want %d", i, lsn, applied+uint64(i)+1)
		}
	}

	// The stream long-polls: records appended while a tail stream is
	// open are delivered on that same connection.
	tail, err := http.Get(fmt.Sprintf("%s%s?from=%d&wait=3000", r.ts.URL, api.RouteV2WAL, last))
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Body.Close()
	frameCh := make(chan uint64, 16)
	go func() {
		for {
			lsn, _, err := api.ReadWALFrame(tail.Body)
			if err != nil {
				close(frameCh)
				return
			}
			frameCh <- lsn
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the long-poll park
	r.rankSome(t, 3, 77)
	deadline := time.After(5 * time.Second)
	got := 0
	for got < 3 {
		select {
		case _, ok := <-frameCh:
			if !ok {
				t.Fatal("tail stream closed before delivering new records")
			}
			got++
		case <-deadline:
			t.Fatalf("long-poll tail delivered %d of 3 new records", got)
		}
	}
}

// TestWALStreamErrors covers the replication surface's failure modes:
// gap after compaction (410), no WAL at all (409), follower node (421),
// bad from parameter (400).
func TestWALStreamErrors(t *testing.T) {
	t.Run("gap after compaction", func(t *testing.T) {
		r := newWALRig(t, 1024)
		for round := 0; round < 3; round++ {
			ids := r.rankSome(t, 25, round)
			r.rewardAll(t, ids[:20], 0.5)
			if _, err := r.srv.Checkpoint(r.snap); err != nil {
				t.Fatal(err)
			}
		}
		first := r.j.FirstLSN()
		if first <= 1 {
			t.Fatalf("no compaction; test is vacuous (first=%d)", first)
		}
		resp, err := http.Get(r.ts.URL + api.RouteV2WAL + "?from=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("status %d, want 410", resp.StatusCode)
		}
		var env api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != api.CodeWALGap {
			t.Fatalf("envelope %+v (%v)", env, err)
		}
	})

	t.Run("wal disabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Seed: 1})
		for _, route := range []string{api.RouteV2WAL, api.RouteV2WALSnapshot} {
			resp, err := http.Get(ts.URL + route)
			if err != nil {
				t.Fatal(err)
			}
			var env api.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if resp.StatusCode != http.StatusConflict || env.Error.Code != api.CodeWALDisabled {
				t.Fatalf("%s: status %d code %q", route, resp.StatusCode, env.Error.Code)
			}
		}
	})

	t.Run("bad from", func(t *testing.T) {
		r := newWALRig(t, 1<<20)
		resp, err := http.Get(r.ts.URL + api.RouteV2WAL + "?from=banana")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	// A bootstrap whose checkpoint barrier fails (here: the journal is
	// gone, so the barrier's hint re-journal cannot append) must report
	// an error envelope — a bare 200 with an empty body would send the
	// joining follower into a silent re-bootstrap loop while hiding the
	// primary's fault.
	t.Run("barrier failure gets envelope", func(t *testing.T) {
		r := newWALRig(t, 1<<20)
		if _, err := r.srv.InstallHints(testHints(rules.NewCatalog(), 3, 1)); err != nil {
			t.Fatal(err)
		}
		if err := r.j.Close(); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(r.ts.URL + api.RouteV2WALSnapshot)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		var env api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != api.CodeInternal {
			t.Fatalf("envelope %+v (%v)", env, err)
		}
	})
}

// TestFollowerModeContract pins the read-only replica semantics: reads
// serve (hints byte-for-byte, bandit greedily with no event), every
// write rejects with not_primary + the leader URL, and stats report
// the follower role.
func TestFollowerModeContract(t *testing.T) {
	cat := rules.NewCatalog()
	const leader = "http://primary.example:8080"
	srv, ts := newTestServer(t, Config{Catalog: cat, Seed: 9, Follower: true, LeaderURL: leader})
	srv.RestoreHints(testHints(cat, 3, 2), 7)

	// Hint read path serves, with the restored generation.
	hinted := decodeJSON[api.RankResponse](t, postJSON(t, ts.URL+api.RouteV1Rank,
		api.RankRequest{TemplateHash: 0x1001, Span: []int{45}}))
	if hinted.Source != api.SourceHint || hinted.Generation != 7 {
		t.Fatalf("follower hint rank = %+v", hinted)
	}
	// Bandit read path is deterministic greedy: no event ID, twice the
	// same answer.
	job := api.RankRequest{TemplateHash: 0x9999, Span: []int{10, 30, 90}}
	b1 := decodeJSON[api.RankResponse](t, postJSON(t, ts.URL+api.RouteV1Rank, job))
	b2 := decodeJSON[api.RankResponse](t, postJSON(t, ts.URL+api.RouteV1Rank, job))
	if b1.Source != api.SourceBandit || b1.EventID != "" {
		t.Fatalf("follower bandit rank = %+v", b1)
	}
	if b1.Chosen != b2.Chosen || b1.Prob != b2.Prob {
		t.Fatalf("follower bandit rank not deterministic: %+v vs %+v", b1, b2)
	}
	if n := srv.Bandit().LogSize(); n != 0 {
		t.Fatalf("follower logged %d events serving reads", n)
	}

	// Writes reject with the structured redirect.
	val := 1.0
	for name, do := range map[string]func() *http.Response{
		"v1 reward": func() *http.Response {
			return postJSON(t, ts.URL+api.RouteV1Reward, api.RewardEvent{EventID: "e", Reward: &val})
		},
		"v2 reward": func() *http.Response {
			return postJSON(t, ts.URL+api.RouteV2Reward, api.BatchRewardRequest{Events: []api.RewardEvent{{EventID: "e", Reward: &val}}})
		},
		"hints rollover": func() *http.Response {
			resp, err := http.Post(ts.URL+api.RouteV1Hints, "text/plain", bytes.NewBufferString("qoadvisor-hints v1 day=1\n"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		},
		"snapshot save": func() *http.Response {
			resp, err := http.Post(ts.URL+api.RouteV1Snapshot, "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			return resp
		},
		"wal stream": func() *http.Response {
			resp, err := http.Get(ts.URL + api.RouteV2WAL)
			if err != nil {
				t.Fatal(err)
			}
			return resp
		},
	} {
		resp := do()
		var env api.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest || env.Error.Code != api.CodeNotPrimary {
			t.Errorf("%s: status %d code %q, want 421 not_primary", name, resp.StatusCode, env.Error.Code)
		}
		if env.Error.Leader != leader {
			t.Errorf("%s: leader %q, want %q", name, env.Error.Leader, leader)
		}
	}

	// Stats carry the role.
	stats := decodeJSON[api.StatsResponse](t, getURL(t, ts.URL+api.RouteV2Stats))
	if stats.Replication == nil || stats.Replication.Role != api.RoleFollower || stats.Replication.LeaderURL != leader {
		t.Fatalf("follower stats replication = %+v", stats.Replication)
	}
}

// TestPrimaryReplicationStats checks the primary side of /v2/stats:
// role, open-stream gauge, and shipped counters.
func TestPrimaryReplicationStats(t *testing.T) {
	r := newWALRig(t, 1<<20)
	ids := r.rankSome(t, 5, 1)
	r.rewardAll(t, ids, 0.5)
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}

	// No streams yet.
	st := decodeJSON[api.StatsResponse](t, getURL(t, r.ts.URL+api.RouteV2Stats))
	if st.Replication == nil || st.Replication.Role != api.RolePrimary || st.Replication.Followers != 0 {
		t.Fatalf("primary stats = %+v", st.Replication)
	}

	// One open tail stream: the gauge sees it.
	tail, err := http.Get(fmt.Sprintf("%s%s?from=%d&wait=2000", r.ts.URL, api.RouteV2WAL, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Body.Close()
	if _, _, err := api.ReadWALFrame(tail.Body); err != nil { // consume one frame; keep open
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = decodeJSON[api.StatsResponse](t, getURL(t, r.ts.URL+api.RouteV2Stats))
		if st.Replication.Followers == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Replication.Followers != 1 || st.Replication.StreamsServed < 1 || st.Replication.RecordsShipped == 0 {
		t.Fatalf("primary stats with open stream = %+v", st.Replication)
	}
}

// TestFollowerHealthzDegradesWhenStale: a follower whose replication
// tail has gone silent must fail LB health checks (503 degraded)
// instead of serving arbitrarily stale hints behind a green light.
func TestFollowerHealthzDegradesWhenStale(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 4, Follower: true, LeaderURL: "http://p:1"})

	tailAge := 1.0 // seconds; fresh
	srv.SetReplProbe(func() api.ReplicationStats {
		return api.ReplicationStats{Role: api.RoleFollower, LastTailSec: tailAge}
	})
	resp := getURL(t, ts.URL+api.RouteV2Healthz)
	h := decodeJSON[api.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusOK || h.Status != api.HealthOK {
		t.Fatalf("fresh follower healthz = %d %q", resp.StatusCode, h.Status)
	}

	tailAge = 2 * followerStaleAfter.Seconds()
	resp = getURL(t, ts.URL+api.RouteV2Healthz)
	h = decodeJSON[api.HealthResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != api.HealthDegraded {
		t.Fatalf("stale follower healthz = %d %q, want 503 degraded", resp.StatusCode, h.Status)
	}
}
