package serve

import (
	"testing"

	"qoadvisor/internal/bandit"
)

func rankEvents(t *testing.T, svc *bandit.Service, n int) []string {
	t.Helper()
	ctx := bandit.Context{Features: []string{"span:1", "span:9"}}
	actions := []bandit.Action{
		{ID: "noop", Features: []string{"act:noop"}},
		{ID: "+R030", Features: []string{"rule:30"}},
	}
	ids := make([]string, n)
	for i := range ids {
		r, err := svc.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = r.EventID
	}
	return ids
}

func TestIngestorAppliesAndTrains(t *testing.T) {
	svc := bandit.New(bandit.DefaultConfig(5))
	in := NewIngestor(svc, nil, 128, 2, 16)
	defer in.Close()

	ids := rankEvents(t, svc, 64)
	for _, id := range ids {
		if !in.Enqueue(id, 1.5) {
			t.Fatalf("Enqueue(%s) rejected with capacity to spare", id)
		}
	}
	in.Drain()

	st := in.Stats()
	if st.Applied != 64 {
		t.Errorf("Applied = %d, want 64", st.Applied)
	}
	if st.Dropped != 0 || st.UnknownEvents != 0 {
		t.Errorf("Dropped=%d Unknown=%d, want 0/0", st.Dropped, st.UnknownEvents)
	}
	if st.TrainedEvents != 64 {
		t.Errorf("TrainedEvents = %d, want 64 (all rewards consumed by training)", st.TrainedEvents)
	}
	if st.TrainRuns == 0 {
		t.Error("no training pass ran despite 64 applied rewards at batch size 16")
	}
	// Training must actually have moved the model.
	ctx := bandit.Context{Features: []string{"span:1", "span:9"}}
	a := bandit.Action{ID: "+R030", Features: []string{"rule:30"}}
	if svc.Score(ctx, a) == 0 {
		t.Error("model weights untouched after ingestion training")
	}
}

func TestIngestorUnknownEvents(t *testing.T) {
	svc := bandit.New(bandit.DefaultConfig(5))
	in := NewIngestor(svc, nil, 16, 1, 4)
	defer in.Close()
	in.Enqueue("ev-no-such", 1.0)
	in.Drain()
	if st := in.Stats(); st.UnknownEvents != 1 || st.Applied != 0 {
		t.Errorf("Unknown=%d Applied=%d, want 1/0", st.UnknownEvents, st.Applied)
	}
}

// TestIngestorBackpressure uses a worker-less ingestor (white box) so the
// bounded queue fills deterministically.
func TestIngestorBackpressure(t *testing.T) {
	svc := bandit.New(bandit.DefaultConfig(5))
	in := &Ingestor{svc: svc, ch: make(chan reward, 2), trainEvery: 8, stages: newStageHists()}

	ids := rankEvents(t, svc, 3)
	if !in.Enqueue(ids[0], 1) || !in.Enqueue(ids[1], 1) {
		t.Fatal("enqueue into empty queue rejected")
	}
	if in.Enqueue(ids[2], 1) {
		t.Fatal("enqueue into full queue accepted")
	}
	if st := in.Stats(); st.Dropped != 1 || st.QueueDepth != 2 || st.QueueCap != 2 {
		t.Errorf("stats = %+v, want dropped=1 depth=2 cap=2", st)
	}

	// Starting the drain pool empties the backlog.
	in.start(1)
	in.Drain()
	if st := in.Stats(); st.Applied != 2 {
		t.Errorf("Applied = %d, want 2", st.Applied)
	}
	in.Close()
}

func TestIngestorCloseRejectsAndDrains(t *testing.T) {
	svc := bandit.New(bandit.DefaultConfig(5))
	in := NewIngestor(svc, nil, 64, 2, 1000) // batch too large to trigger mid-run
	ids := rankEvents(t, svc, 32)
	for _, id := range ids {
		in.Enqueue(id, 2.0)
	}
	in.Close()
	st := in.Stats()
	if st.Applied != 32 {
		t.Errorf("Applied after Close = %d, want 32", st.Applied)
	}
	if st.TrainedEvents != 32 {
		t.Errorf("TrainedEvents after Close = %d, want 32 (final training pass)", st.TrainedEvents)
	}
	if in.Enqueue("ev-after-close", 1.0) {
		t.Error("Enqueue accepted after Close")
	}
	in.Close() // second Close is a no-op
}
