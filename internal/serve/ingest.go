package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
)

// reward is one queued reward observation.
type reward struct {
	eventID string
	value   float64
}

// Ingestor is the asynchronous reward-ingestion pipeline: a bounded
// queue drained by a worker pool that applies rewards to the bandit
// service and triggers an IPS training pass every trainEvery applied
// rewards. Keeping reward application and SGD off the request path is
// what lets /v1/reward return in microseconds while the model still
// learns continuously.
type Ingestor struct {
	svc        *bandit.Service
	ch         chan reward
	trainEvery int64

	// closeMu serializes Enqueue sends against Close closing the channel.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	// queued counts accepted-but-not-yet-applied rewards; Drain spins on
	// it reaching zero.
	queued  atomic.Int64
	pending atomic.Int64 // applied since the last training pass

	enqueued      atomic.Int64
	dropped       atomic.Int64
	applied       atomic.Int64
	unknown       atomic.Int64
	trainRuns     atomic.Int64
	trainedEvents atomic.Int64
}

// NewIngestor starts an ingestion pipeline over the given bandit
// service. queueSize bounds the reward backlog (default 4096); workers
// is the drain pool size; trainEvery is the training batch size in
// applied rewards (default 256). The default pool size is 1: reward
// application serializes on the bandit's event-log mutex anyway, so
// extra workers only add contention against the Rank hot path — raise
// it only when reward application itself stops being the bottleneck
// (e.g. a future sharded learner).
func NewIngestor(svc *bandit.Service, queueSize, workers, trainEvery int) *Ingestor {
	if queueSize <= 0 {
		queueSize = 4096
	}
	if workers <= 0 {
		workers = 1
	}
	if trainEvery <= 0 {
		trainEvery = 256
	}
	in := &Ingestor{
		svc:        svc,
		ch:         make(chan reward, queueSize),
		trainEvery: int64(trainEvery),
	}
	in.start(workers)
	return in
}

func (in *Ingestor) start(workers int) {
	for i := 0; i < workers; i++ {
		in.wg.Add(1)
		go in.worker()
	}
}

func (in *Ingestor) worker() {
	defer in.wg.Done()
	for r := range in.ch {
		in.apply(r)
	}
}

func (in *Ingestor) apply(r reward) {
	if err := in.svc.Reward(r.eventID, r.value); err != nil {
		in.unknown.Add(1)
	} else {
		in.applied.Add(1)
		if p := in.pending.Add(1); p >= in.trainEvery {
			// One worker claims the batch; a failed CAS means a peer is
			// racing on a fresher count and will claim it instead.
			if in.pending.CompareAndSwap(p, 0) {
				in.train()
			}
		}
	}
	in.queued.Add(-1)
}

func (in *Ingestor) train() {
	n := in.svc.Train()
	in.trainRuns.Add(1)
	in.trainedEvents.Add(int64(n))
}

// Enqueue submits a reward without blocking. It returns false when the
// queue is full or the ingestor is closed — backpressure the HTTP layer
// surfaces as 503 so callers can retry.
func (in *Ingestor) Enqueue(eventID string, value float64) bool {
	in.closeMu.RLock()
	defer in.closeMu.RUnlock()
	if in.closed {
		in.dropped.Add(1)
		return false
	}
	// Count before handing off: a worker can pick the item up and apply
	// it before this goroutine resumes, and Drain must never observe
	// queued==0 while an accepted reward is still in flight.
	in.queued.Add(1)
	select {
	case in.ch <- reward{eventID: eventID, value: value}:
		in.enqueued.Add(1)
		return true
	default:
		in.queued.Add(-1)
		in.dropped.Add(1)
		return false
	}
}

// Drain blocks until every accepted reward has been applied, then runs a
// final training pass over whatever remains below the batch threshold.
// It is a test/shutdown aid, not a hot-path call.
func (in *Ingestor) Drain() {
	for in.queued.Load() > 0 {
		time.Sleep(100 * time.Microsecond)
	}
	in.pending.Store(0)
	in.train()
}

// Close stops accepting rewards, drains the queue, applies a final
// training pass, and waits for the workers to exit.
func (in *Ingestor) Close() {
	in.closeMu.Lock()
	if in.closed {
		in.closeMu.Unlock()
		return
	}
	in.closed = true
	close(in.ch)
	in.closeMu.Unlock()
	in.wg.Wait()
	in.queued.Store(0)
	in.pending.Store(0)
	in.train()
}

// Stats returns a snapshot of the ingestion counters in wire form
// (api.IngestStats is the protocol type embedded in the stats payload).
func (in *Ingestor) Stats() api.IngestStats {
	return api.IngestStats{
		Enqueued:      in.enqueued.Load(),
		Dropped:       in.dropped.Load(),
		Applied:       in.applied.Load(),
		UnknownEvents: in.unknown.Load(),
		TrainRuns:     in.trainRuns.Load(),
		TrainedEvents: in.trainedEvents.Load(),
		QueueDepth:    len(in.ch),
		QueueCap:      cap(in.ch),
	}
}
