package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/wal"
)

// reward is one queued reward observation. enq stamps the queue
// hand-off so the worker can report queue-wait latency.
type reward struct {
	eventID string
	value   float64
	enq     time.Time
}

// Ingestor is the asynchronous reward-ingestion pipeline: a bounded
// queue drained by a worker pool that applies rewards to the bandit
// service and triggers an IPS training pass every trainEvery applied
// rewards. Keeping reward application and SGD off the request path is
// what lets /v1/reward return in microseconds while the model still
// learns continuously.
//
// When a WAL is attached, every accepted batch is journaled before the
// caller is acknowledged (the durability barrier the journal's Commit
// mode defines), and journal order equals apply order — the invariant
// deterministic crash replay rests on — because the journal append and
// the queue hand-off happen atomically under seqMu and the default
// single worker drains the queue in FIFO order.
type Ingestor struct {
	svc        *bandit.Service
	wal        *wal.WAL // nil = in-memory only
	ch         chan reward
	trainEvery int64

	// closeMu serializes Enqueue sends against Close closing the channel.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	// seqMu makes journal-append + channel-send atomic so WAL record
	// order equals queue (and hence apply) order. The checkpoint
	// barrier holds it to fence new intake.
	seqMu sync.Mutex

	// queued counts accepted-but-not-yet-applied rewards; drainMu/
	// drainCond let Drain sleep until it reaches zero instead of
	// busy-polling.
	queued    atomic.Int64
	drainMu   sync.Mutex
	drainCond *sync.Cond
	pending   atomic.Int64 // applied since the last training pass

	enqueued      atomic.Int64
	dropped       atomic.Int64
	applied       atomic.Int64
	unknown       atomic.Int64
	trainRuns     atomic.Int64
	trainedEvents atomic.Int64
	journalErrs   atomic.Int64

	// stages receives the pipeline's latency observations (queue wait,
	// reward apply, WAL append, commit wait). Set before the workers
	// start and never nil.
	stages *stageHists
}

// NewIngestor starts an ingestion pipeline over the given bandit
// service. j, when non-nil, is the durable reward journal. queueSize
// bounds the reward backlog (default 4096); workers is the drain pool
// size; trainEvery is the training batch size in applied rewards
// (default bandit.DefaultTrainEvery). The default pool size is 1:
// reward application serializes on the bandit's event-log mutex
// anyway, so extra workers only add contention against the Rank hot
// path — and with a journal attached, a single worker is also what
// keeps apply order equal to journal order for deterministic replay.
func NewIngestor(svc *bandit.Service, j *wal.WAL, queueSize, workers, trainEvery int) *Ingestor {
	return newIngestor(svc, j, queueSize, workers, trainEvery, newStageHists())
}

// newIngestor is NewIngestor with the stage-histogram sink supplied by
// the owning server. Standalone ingestors get private histograms from
// the exported constructor; the distinction matters because workers
// read stages from their first iteration, so it cannot be assigned
// after construction.
func newIngestor(svc *bandit.Service, j *wal.WAL, queueSize, workers, trainEvery int, stages *stageHists) *Ingestor {
	if queueSize <= 0 {
		queueSize = 4096
	}
	if workers <= 0 {
		workers = 1
	}
	if trainEvery <= 0 {
		trainEvery = bandit.DefaultTrainEvery
	}
	in := &Ingestor{
		svc:        svc,
		wal:        j,
		ch:         make(chan reward, queueSize),
		trainEvery: int64(trainEvery),
		stages:     stages,
	}
	in.drainCond = sync.NewCond(&in.drainMu)
	in.start(workers)
	return in
}

func (in *Ingestor) start(workers int) {
	if in.drainCond == nil {
		in.drainCond = sync.NewCond(&in.drainMu)
	}
	for i := 0; i < workers; i++ {
		in.wg.Add(1)
		go in.worker()
	}
}

func (in *Ingestor) worker() {
	defer in.wg.Done()
	for r := range in.ch {
		in.apply(r)
	}
}

func (in *Ingestor) apply(r reward) {
	// One clock read serves both stages: it ends the queue wait and
	// starts the apply measurement.
	applyStart := time.Now()
	in.stages.queueWait.Observe(applyStart.Sub(r.enq))
	err := in.svc.Reward(r.eventID, r.value)
	in.stages.rewardApply.ObserveSince(applyStart)
	if err != nil {
		in.unknown.Add(1)
	} else {
		in.applied.Add(1)
		if p := in.pending.Add(1); p >= in.trainEvery {
			// One worker claims the batch; a failed CAS means a peer is
			// racing on a fresher count and will claim it instead.
			if in.pending.CompareAndSwap(p, 0) {
				in.train()
			}
		}
	}
	if in.queued.Add(-1) == 0 {
		// Pair the broadcast with the drain lock so a Drain caller
		// between its counter check and cond.Wait cannot miss the wake.
		in.drainMu.Lock()
		in.drainMu.Unlock()
		in.drainCond.Broadcast()
	}
}

func (in *Ingestor) train() {
	n := in.svc.Train()
	in.trainRuns.Add(1)
	in.trainedEvents.Add(int64(n))
}

// Enqueue submits one reward without blocking — the single-event
// adapter over EnqueueBatch. It returns false when the queue is full
// or the ingestor is closed (backpressure the HTTP layer surfaces as
// 503 so callers can retry), or when the journal rejected the write.
func (in *Ingestor) Enqueue(eventID string, value float64) bool {
	n, err := in.EnqueueBatch([]bandit.RewardEntry{{EventID: eventID, Value: value}})
	return n == 1 && err == nil
}

// EnqueueBatch submits a reward batch without blocking. A prefix of
// the batch sized to the queue's free capacity is accepted — journaled
// (when a WAL is attached) and queued, in that order, atomically with
// respect to other batches — and the remainder is dropped for the
// caller to reject with backpressure. The returned error reports a
// journal failure: when it is non-nil and accepted is 0 nothing was
// queued; a non-nil error with accepted > 0 means the rewards were
// queued but their durability could not be confirmed (fail-stop disk).
func (in *Ingestor) EnqueueBatch(entries []bandit.RewardEntry) (accepted int, err error) {
	return in.enqueueBatch(entries, nil)
}

// enqueueBatch is EnqueueBatch with an optional trace: when the
// request carrying the batch was sampled, the journal append and the
// commit wait are recorded as trace stages (tr nil otherwise).
func (in *Ingestor) enqueueBatch(entries []bandit.RewardEntry, tr *obs.Trace) (accepted int, err error) {
	in.closeMu.RLock()
	defer in.closeMu.RUnlock()
	if in.closed {
		in.dropped.Add(int64(len(entries)))
		return 0, nil
	}

	in.seqMu.Lock()
	// Workers only drain the channel, and seqMu serializes senders, so
	// this free-capacity read is a safe lower bound: the sends below
	// cannot block.
	free := cap(in.ch) - len(in.ch)
	n := len(entries)
	if n > free {
		n = free
	}
	var lsn uint64
	if n > 0 && in.wal != nil {
		appendStart := time.Now()
		lsn, err = in.wal.Append(bandit.EncodeRewardBatch(entries[:n]))
		appendDur := time.Since(appendStart)
		in.stages.rewardAppend.Observe(appendDur)
		tr.Stage(0, "reward_wal_append", appendStart, appendDur)
		if err != nil {
			in.seqMu.Unlock()
			in.journalErrs.Add(1)
			in.dropped.Add(int64(len(entries)))
			return 0, err
		}
	}
	// Count before handing off: a worker can pick an item up and apply
	// it before this goroutine resumes, and Drain must never observe
	// queued==0 while an accepted reward is still in flight.
	in.queued.Add(int64(n))
	enq := time.Now()
	for i := 0; i < n; i++ {
		in.ch <- reward{eventID: entries[i].EventID, value: entries[i].Value, enq: enq}
	}
	in.seqMu.Unlock()

	in.enqueued.Add(int64(n))
	in.dropped.Add(int64(len(entries) - n))
	if n > 0 && in.wal != nil {
		// The durability barrier: sync mode waits for the group fsync
		// covering this batch, async returns immediately, off never
		// syncs. Held outside seqMu so concurrent batches share fsyncs.
		commitStart := time.Now()
		cerr := in.wal.Commit(lsn)
		commitDur := time.Since(commitStart)
		in.stages.rewardCommit.Observe(commitDur)
		tr.Stage(0, "reward_commit_wait", commitStart, commitDur)
		if cerr != nil {
			in.journalErrs.Add(1)
			return n, cerr
		}
	}
	return n, nil
}

// waitDrained blocks until every accepted reward has been applied.
func (in *Ingestor) waitDrained() {
	in.drainMu.Lock()
	for in.queued.Load() > 0 {
		in.drainCond.Wait()
	}
	in.drainMu.Unlock()
}

// trainFlush journals a train mark (so replay reproduces this
// boundary) and runs a training pass over whatever is pending below
// the batch threshold.
func (in *Ingestor) trainFlush() {
	if in.wal != nil {
		if _, err := in.wal.Append(bandit.EncodeTrainMark()); err != nil {
			in.journalErrs.Add(1)
		}
	}
	in.pending.Store(0)
	in.train()
}

// Drain blocks until every accepted reward has been applied, then runs
// a final training pass over whatever remains below the batch
// threshold. It holds the intake fence (seqMu) across the wait and the
// flush so the journaled train mark cannot land after a reward batch
// that the flush did not train — the ordering deterministic replay
// depends on. It is a test/shutdown aid, not a hot-path call.
func (in *Ingestor) Drain() {
	in.seqMu.Lock()
	in.waitDrained()
	in.trainFlush()
	in.seqMu.Unlock()
}

// Quiesce fences the ingestion pipeline for a checkpoint barrier: new
// batches block at seqMu, and the call returns once every already
// accepted reward has been applied. The caller runs its critical
// section (train flush, snapshot encode) and then releases.
func (in *Ingestor) Quiesce() (release func()) {
	in.seqMu.Lock()
	in.waitDrained()
	return in.seqMu.Unlock
}

// Close stops accepting rewards, drains the queue, applies a final
// training pass, and waits for the workers to exit.
func (in *Ingestor) Close() {
	in.closeMu.Lock()
	if in.closed {
		in.closeMu.Unlock()
		return
	}
	in.closed = true
	close(in.ch)
	in.closeMu.Unlock()
	in.wg.Wait()
	in.queued.Store(0)
	in.drainCond.Broadcast()
	in.trainFlush()
}

// Stats returns a snapshot of the ingestion counters in wire form
// (api.IngestStats is the protocol type embedded in the stats payload).
func (in *Ingestor) Stats() api.IngestStats {
	return api.IngestStats{
		Enqueued:      in.enqueued.Load(),
		Dropped:       in.dropped.Load(),
		Applied:       in.applied.Load(),
		UnknownEvents: in.unknown.Load(),
		TrainRuns:     in.trainRuns.Load(),
		TrainedEvents: in.trainedEvents.Load(),
		QueueDepth:    len(in.ch),
		QueueCap:      cap(in.ch),
		JournalErrors: in.journalErrs.Load() + in.svc.JournalErrors(),
	}
}
