package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// driftTestConfig shrinks the hysteresis windows so transitions fire
// in tens of observations instead of thousands.
func driftTestConfig() *drift.Config {
	return &drift.Config{
		MinSamples:      8,
		QuarantineAfter: 4,
		ProbationAfter:  4,
		RestoreAfter:    8,
		GateCount:       1,
	}
}

// driftRig is a WAL-backed, drift-enabled primary with one installed
// hint the tests regress and restore.
type driftRig struct {
	*walTestRig
	cat      *rules.Catalog
	hintHash uint64
	altHash  uint64
}

func newDriftRig(t *testing.T, mode wal.Mode) *driftRig {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: mode, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	srv := New(Config{
		Catalog: cat, Seed: 42, TrainEvery: walTestTrainEvery,
		QueueSize: 4096, WAL: j, Drift: driftTestConfig(),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	r := &driftRig{
		walTestRig: &walTestRig{srv: srv, ts: ts, cl: client.New(ts.URL), j: j,
			dir: dir, snap: filepath.Join(dir, "model.snap")},
		cat:      cat,
		hintHash: 0xabc123,
		altHash:  0xdef456,
	}
	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: r.hintHash, TemplateID: "T0042", Flip: cat.FlipFor(40), Day: 7},
		{TemplateHash: r.altHash, TemplateID: "T0043", Flip: cat.FlipFor(55), Day: 7},
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

// source ranks one job for hash and reports which path answered.
func (r *driftRig) source(t *testing.T, hash uint64) string {
	t.Helper()
	resp, err := r.cl.Rank(context.Background(), api.RankRequest{
		TemplateHash: api.TemplateHash(hash), Span: []int{5, 60, 120}, RowCount: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Source
}

// observe posts one template-attributed reward over /v2/reward and
// returns the transport/typed error, if any.
func (r *driftRig) observe(hash uint64, v float64) error {
	th := api.TemplateHash(hash)
	resp, err := r.cl.RewardBatch(context.Background(),
		[]api.RewardEvent{{TemplateHash: &th, Reward: &v}})
	if err != nil {
		return err
	}
	if len(resp.Rejected) > 0 {
		e := resp.Rejected[0].Error
		return &e
	}
	if resp.Observed != 1 {
		return fmt.Errorf("observed %d, want 1", resp.Observed)
	}
	return nil
}

// observeUntil feeds rewards drawn from the flood until cond holds,
// failing the test if it never does within max observations.
func (r *driftRig) observeUntil(t *testing.T, hash uint64, f *drift.Flood, max int, cond func() bool) int {
	t.Helper()
	for i := 0; i < max; i++ {
		if cond() {
			return i
		}
		if err := r.observe(hash, f.Next()); err != nil {
			t.Fatalf("observation %d: %v", i, err)
		}
	}
	if !cond() {
		t.Fatalf("condition not reached after %d observations", max)
	}
	return max
}

// TestAutoQuarantineAndProbationRestore is the safeguard's end-to-end
// acceptance over real HTTP: a reward collapse on one hinted template
// quarantines it (its ranks fall back to the bandit path) while the
// other hinted template keeps serving; recovery walks it through
// probation back to healthy and the hint serves again.
func TestAutoQuarantineAndProbationRestore(t *testing.T) {
	r := newDriftRig(t, wal.ModeSync)
	table := r.srv.QuarantineTable()

	if got := r.source(t, r.hintHash); got != api.SourceHint {
		t.Fatalf("pre-drift rank source = %q, want hint", got)
	}

	// Healthy baseline, then a collapse.
	flood := drift.NewFlood(1, 1.0, 0.05)
	for i, v := range flood.Batch(64) {
		if err := r.observe(r.hintHash, v); err != nil {
			t.Fatalf("baseline observation %d: %v", i, err)
		}
	}
	flood.Shift(0.0)
	n := r.observeUntil(t, r.hintHash, flood, 200, func() bool { return table.Blocked(r.hintHash) })
	t.Logf("quarantined after %d degraded observations", n)

	// Enforcement: the regressed template's hint is refused, the
	// healthy one still serves.
	if got := r.source(t, r.hintHash); got != api.SourceBandit {
		t.Fatalf("quarantined rank source = %q, want bandit", got)
	}
	if got := r.source(t, r.altHash); got != api.SourceHint {
		t.Fatalf("unaffected template source = %q, want hint", got)
	}

	// The admin list and stats agree.
	list, err := r.cl.QuarantineList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Templates) != 1 || uint64(list.Templates[0].TemplateHash) != r.hintHash ||
		list.Templates[0].State != "quarantined" {
		t.Fatalf("quarantine list = %+v", list.Templates)
	}
	st, err := r.cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift == nil || !st.Drift.Enabled || st.Drift.QuarantinedNow != 1 ||
		st.Drift.Quarantines == 0 || st.Drift.BlockedRanks == 0 {
		t.Fatalf("stats drift block = %+v", st.Drift)
	}

	// Recovery: back to the healthy distribution. Quarantine lifts into
	// probation (hint serves again, tentatively), then full restore.
	flood.Shift(1.0)
	n = r.observeUntil(t, r.hintHash, flood, 400, func() bool { return !table.Blocked(r.hintHash) })
	t.Logf("probation after %d recovered observations", n)
	if got := r.source(t, r.hintHash); got != api.SourceHint {
		t.Fatalf("probation rank source = %q, want hint", got)
	}
	r.observeUntil(t, r.hintHash, flood, 400, func() bool {
		return table.StateOf(r.hintHash) == drift.StateHealthy
	})
	st, err = r.cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift.QuarantinedNow != 0 || st.Drift.ProbationNow != 0 ||
		st.Drift.Probations == 0 || st.Drift.Restores == 0 {
		t.Fatalf("post-restore drift block = %+v", st.Drift)
	}
}

// TestRewardFloodIsolation is the chaos acceptance: a reward flood
// collapsing one template auto-quarantines it while concurrent ranks
// on other templates keep being served from the hint path throughout.
func TestRewardFloodIsolation(t *testing.T) {
	r := newDriftRig(t, wal.ModeAsync)
	table := r.srv.QuarantineTable()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	rankErrs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := r.cl.Rank(context.Background(), api.RankRequest{
				TemplateHash: api.TemplateHash(r.altHash), Span: []int{5, 60}, RowCount: 1e4,
			})
			if err != nil || resp.Source != api.SourceHint {
				select {
				case rankErrs <- fmt.Errorf("concurrent rank: source=%q err=%v", resp.Source, err):
				default:
				}
				return
			}
		}
	}()

	flood := drift.NewFlood(7, 1.0, 0.05)
	for _, v := range flood.Batch(64) {
		if err := r.observe(r.hintHash, v); err != nil {
			t.Fatal(err)
		}
	}
	flood.Shift(-0.5)
	r.observeUntil(t, r.hintHash, flood, 300, func() bool { return table.Blocked(r.hintHash) })
	close(stop)
	wg.Wait()
	select {
	case err := <-rankErrs:
		t.Fatal(err)
	default:
	}
	if table.Blocked(r.altHash) {
		t.Fatal("flood on one template quarantined another")
	}
}

// TestQuarantineJournalFailureFailStop pins the fail-stop invariant: a
// WAL append failure during a quarantine transition surfaces as a
// typed internal error on the reward that proposed it, commits
// NOTHING (the table and detector stay as they were), and the next
// observation after the fault window closes re-proposes and commits.
// The safeguard can never hold state the journal does not.
func TestQuarantineJournalFailureFailStop(t *testing.T) {
	r := newDriftRig(t, wal.ModeSync)
	table := r.srv.QuarantineTable()

	flood := drift.NewFlood(3, 1.0, 0.05)
	for _, v := range flood.Batch(64) {
		if err := r.observe(r.hintHash, v); err != nil {
			t.Fatal(err)
		}
	}

	// Fault window: every quarantine-record append fails. Reward
	// batches keep journaling normally — the fault is scoped to the
	// safeguard's records, as a torn-record or full-disk window on
	// exactly the transition moment would be.
	injected := errors.New("injected append fault")
	r.j.SetFaults(&wal.Faults{AppendErr: func(p []byte) error {
		if len(p) > 0 && p[0] == RecQuarantine {
			return injected
		}
		return nil
	}})

	flood.Shift(0.0)
	var typedErr *api.Error
	for i := 0; i < 200; i++ {
		err := r.observe(r.hintHash, flood.Next())
		if err == nil {
			continue
		}
		if !errors.As(err, &typedErr) {
			t.Fatalf("observation %d failed untyped: %v", i, err)
		}
		break
	}
	if typedErr == nil {
		t.Fatal("no transition proposed during the fault window")
	}
	if typedErr.Code != api.CodeInternal {
		t.Fatalf("journal-failure error code = %q, want %q", typedErr.Code, api.CodeInternal)
	}
	// Nothing committed: the template still serves (the unjournaled
	// quarantine never took effect) and the error is counted.
	if table.Blocked(r.hintHash) {
		t.Fatal("transition took effect despite journal failure")
	}
	if got := r.source(t, r.hintHash); got != api.SourceHint {
		t.Fatalf("rank source during fault window = %q, want hint", got)
	}
	if ds := r.srv.DriftStats(0); ds.JournalErrs == 0 {
		t.Fatalf("journal errors not counted: %+v", ds)
	}

	// Fault window closes: the very next degraded observation
	// re-proposes the same transition and commits it durably.
	r.j.SetFaults(nil)
	if err := r.observe(r.hintHash, flood.Next()); err != nil {
		t.Fatalf("post-fault observation: %v", err)
	}
	if !table.Blocked(r.hintHash) {
		t.Fatal("transition not re-proposed after fault window closed")
	}
	if got := r.source(t, r.hintHash); got != api.SourceBandit {
		t.Fatalf("post-commit rank source = %q, want bandit", got)
	}
}

// TestCheckpointDuringQuarantineNoDeadlock races checkpoints against a
// transition-heavy reward flood with injected append and fsync latency
// — the lock-order soak for guard.mu vs the checkpoint barrier. The
// test passes by terminating (run under -race in CI).
func TestCheckpointDuringQuarantineNoDeadlock(t *testing.T) {
	r := newDriftRig(t, wal.ModeAsync)
	r.j.SetFaults(&wal.Faults{
		AppendDelay: func() time.Duration { return 200 * time.Microsecond },
		SyncDelay:   func() time.Duration { return time.Millisecond },
	})
	defer r.j.SetFaults(nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Oscillating flood: crosses the quarantine and recovery
		// thresholds repeatedly, so transitions keep journaling while
		// checkpoints run.
		flood := drift.NewFlood(11, 1.0, 0.05)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%40 == 20 {
				flood.Shift(0.0)
			} else if i%40 == 0 {
				flood.Shift(1.0)
			}
			_ = r.observe(r.hintHash, flood.Next())
		}
	}()

	finished := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			if _, err := r.srv.Checkpoint(r.snap); err != nil {
				finished <- err
				return
			}
		}
		finished <- nil
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatalf("checkpoint under fault load: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("checkpoint deadlocked against quarantine transitions")
	}
	close(done)
	wg.Wait()
}

// TestCrashRecoveryQuarantineState is the durability acceptance: kill
// a primary mid-quarantine, replay snapshot + journal, and the rebuilt
// quarantine table is identical — a restarted server refuses the
// quarantined template's hint exactly like the crashed one did.
func TestCrashRecoveryQuarantineState(t *testing.T) {
	r := newDriftRig(t, wal.ModeSync)
	table := r.srv.QuarantineTable()

	// History that exercises the full record mix: traffic, a
	// checkpoint (snapshot re-journal), a quarantine, then a manual
	// quarantine of a second template after the checkpoint.
	ids := r.rankSome(t, 20, 1)
	r.rewardAll(t, ids[:10], 0.8)
	flood := drift.NewFlood(5, 1.0, 0.05)
	for _, v := range flood.Batch(64) {
		if err := r.observe(r.hintHash, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.srv.Checkpoint(r.snap); err != nil {
		t.Fatal(err)
	}
	flood.Shift(0.0)
	r.observeUntil(t, r.hintHash, flood, 200, func() bool { return table.Blocked(r.hintHash) })
	if _, err := r.srv.Quarantine(r.altHash, true); err != nil {
		t.Fatal(err)
	}
	want := table.Snapshot()
	if len(want) != 2 {
		t.Fatalf("live quarantine table = %v, want 2 entries", want)
	}

	// "Crash": recover from the directory alone, twice (determinism).
	rec, err := Recover(wal.DirSource{Dir: r.dir}, r.snap, walTestTrainEvery, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec.QuarantineRecords == 0 || len(rec.Quarantine) != len(want) {
		t.Fatalf("recovered %d quarantine records, table %v (want %v)",
			rec.QuarantineRecords, rec.Quarantine, want)
	}
	for h, s := range want {
		if rec.Quarantine[h] != s {
			t.Fatalf("template %016x recovered as %v, want %v", h, rec.Quarantine[h], s)
		}
	}
	rec2, err := Recover(wal.DirSource{Dir: r.dir}, r.snap, walTestTrainEvery, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for h, s := range rec.Quarantine {
		if rec2.Quarantine[h] != s {
			t.Fatal("two recoveries disagree on quarantine state")
		}
	}

	// A restarted server (same hint table, restored quarantines)
	// refuses the quarantined hints and serves the rest.
	srv2 := New(Config{Catalog: r.cat, Seed: 42, TrainEvery: walTestTrainEvery, Bandit: rec.Service})
	defer srv2.Close()
	if _, err := srv2.InstallHints([]sis.Hint{
		{TemplateHash: r.hintHash, TemplateID: "T0042", Flip: r.cat.FlipFor(40), Day: 7},
		{TemplateHash: r.altHash, TemplateID: "T0043", Flip: r.cat.FlipFor(55), Day: 7},
		{TemplateHash: 0x777, TemplateID: "T0044", Flip: r.cat.FlipFor(60), Day: 7},
	}); err != nil {
		t.Fatal(err)
	}
	srv2.RestoreQuarantines(rec.Quarantine)
	for _, tc := range []struct {
		hash uint64
		want string
	}{{r.hintHash, api.SourceBandit}, {r.altHash, api.SourceBandit}, {0x777, api.SourceHint}} {
		resp, err := srv2.Rank(api.RankRequest{TemplateHash: api.TemplateHash(tc.hash), Span: []int{5, 60}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != tc.want {
			t.Fatalf("restarted rank(%016x) source = %q, want %q", tc.hash, resp.Source, tc.want)
		}
	}
}

// TestManualQuarantineEndpoint drives the admin surface through the
// typed client: quarantine blocks the hint immediately, restore lifts
// it (skipping probation), and a redundant restore is rejected.
func TestManualQuarantineEndpoint(t *testing.T) {
	r := newDriftRig(t, wal.ModeSync)

	tr, err := r.cl.Quarantine(context.Background(), api.TemplateHash(r.hintHash), api.QuarantineActionQuarantine)
	if err != nil {
		t.Fatal(err)
	}
	if tr.From != "healthy" || tr.To != "quarantined" {
		t.Fatalf("transition = %+v", tr)
	}
	if got := r.source(t, r.hintHash); got != api.SourceBandit {
		t.Fatalf("post-quarantine source = %q, want bandit", got)
	}
	list, err := r.cl.QuarantineList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Templates) != 1 || list.Templates[0].State != "quarantined" {
		t.Fatalf("list = %+v", list.Templates)
	}

	if _, err := r.cl.Quarantine(context.Background(), api.TemplateHash(r.hintHash), api.QuarantineActionRestore); err != nil {
		t.Fatal(err)
	}
	if got := r.source(t, r.hintHash); got != api.SourceHint {
		t.Fatalf("post-restore source = %q, want hint", got)
	}
	_, err = r.cl.Quarantine(context.Background(), api.TemplateHash(r.hintHash), api.QuarantineActionRestore)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidRequest {
		t.Fatalf("redundant restore error = %v, want invalid_request", err)
	}
	_, err = r.cl.Quarantine(context.Background(), api.TemplateHash(r.hintHash), "purge")
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidRequest {
		t.Fatalf("bad action error = %v, want invalid_request", err)
	}
	if ds := r.srv.DriftStats(0); ds.Manual != 2 {
		t.Fatalf("manual transitions = %d, want 2", ds.Manual)
	}
}

// TestRewardRejectsNonFinite pins the intake guard: NaN and ±Inf
// rewards get the typed invalid_reward rejection on both the batch
// core and the v1 adapter, and never reach the queue or the detector.
func TestRewardRejectsNonFinite(t *testing.T) {
	r := newDriftRig(t, wal.ModeSync)
	th := api.TemplateHash(r.hintHash)

	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		v := v
		_, observed, rejected := r.srv.http.rewardBatch(
			[]api.RewardEvent{{TemplateHash: &th, Reward: &v}}, nil)
		if observed != 0 || len(rejected) != 1 || rejected[0].Error.Code != api.CodeInvalidReward {
			t.Fatalf("reward %v: observed=%d rejected=%+v, want invalid_reward", v, observed, rejected)
		}
	}
	if ds := r.srv.DriftStats(0); ds.Observations != 0 {
		t.Fatalf("non-finite rewards reached the detector: %+v", ds)
	}

	// Over the wire a NaN cannot even be JSON — the decode guard
	// rejects it before the reward core sees it. Send it raw to pin
	// the status code.
	st, body := postRaw2(t, r.ts.URL+api.RouteV1Reward, `{"eventId":"x","reward":NaN}`)
	if st != 400 {
		t.Fatalf("raw NaN reward status = %d body %s, want 400", st, body)
	}
}

// TestUnknownRecordTagTypedError pins the version-skew diagnostic: a
// journal record with a tag from the future fails replay with a typed
// UnknownRecordError carrying the LSN and tag — at both the bandit
// replayer and the serve applier.
func TestUnknownRecordTagTypedError(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := j.Append([]byte{99, 1, 2, 3}) // tag 99: not invented yet
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = Recover(wal.DirSource{Dir: dir}, "", walTestTrainEvery, 0, 1)
	var ue *bandit.UnknownRecordError
	if !errors.As(err, &ue) {
		t.Fatalf("recover error = %v (%T), want *bandit.UnknownRecordError", err, err)
	}
	if ue.Tag != 99 || ue.LSN != lsn {
		t.Fatalf("typed error = %+v, want tag 99 at lsn %d", ue, lsn)
	}
}

// postRaw2 posts a raw (possibly invalid-JSON) body and returns status
// + body text.
func postRaw2(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}
