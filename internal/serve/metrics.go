package serve

import (
	"net/http"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/obs"
)

// Observability assembly: the serving path's stage histograms, the
// Prometheus text-format exposition behind GET /metrics, and the
// /v2/version build-info endpoint. Every counter and gauge that
// /v2/stats reports is registered here under a stable qoserved_*
// metric name, plus the latency histograms the JSON stats summarize
// as percentiles.

// stageHists holds one latency histogram per instrumented serving
// stage. Recording is lock-free and allocation-free (obs.Histogram),
// so these sit directly on the rank and reward hot paths.
type stageHists struct {
	rankHint     *obs.Histogram // hint-cache lookup inside Rank (hit or miss)
	rankBandit   *obs.Histogram // bandit decision incl. rank-event journaling
	rewardAppend *obs.Histogram // WAL append of an accepted reward batch
	rewardCommit *obs.Histogram // group-commit durability wait after append
	queueWait    *obs.Histogram // enqueue -> worker pickup
	rewardApply  *obs.Histogram // worker's bandit.Reward application
	walFsync     *obs.Histogram // journal fsync (committer / sync-mode commit)
	checkpoint   *obs.Histogram // full checkpoint barrier duration
}

func newStageHists() *stageHists {
	return &stageHists{
		rankHint:     &obs.Histogram{},
		rankBandit:   &obs.Histogram{},
		rewardAppend: &obs.Histogram{},
		rewardCommit: &obs.Histogram{},
		queueWait:    &obs.Histogram{},
		rewardApply:  &obs.Histogram{},
		walFsync:     &obs.Histogram{},
		checkpoint:   &obs.Histogram{},
	}
}

// each visits the stages in stable order under their wire names (the
// keys of StatsResponse.Stages and the stage label of
// qoserved_stage_duration_seconds).
func (st *stageHists) each(fn func(name string, h *obs.Histogram)) {
	fn("rank_hint_lookup", st.rankHint)
	fn("rank_bandit", st.rankBandit)
	fn("reward_wal_append", st.rewardAppend)
	fn("reward_commit_wait", st.rewardCommit)
	fn("reward_queue_wait", st.queueWait)
	fn("reward_apply", st.rewardApply)
	fn("wal_fsync", st.walFsync)
	fn("checkpoint", st.checkpoint)
}

// summarize renders a histogram snapshot as the JSON percentile form,
// carrying the raw buckets alongside so fleet tooling can merge the
// distributions the percentiles were estimated from.
func summarize(s obs.HistSnapshot) api.LatencySummary {
	return api.LatencySummary{
		Count:      int64(s.Count),
		MeanMicros: s.Mean().Microseconds(),
		P50Micros:  s.Quantile(0.50).Microseconds(),
		P90Micros:  s.Quantile(0.90).Microseconds(),
		P99Micros:  s.Quantile(0.99).Microseconds(),
		P999Micros: s.Quantile(0.999).Microseconds(),
		Hist:       histToWire(s),
	}
}

// histToWire puts a histogram snapshot's raw buckets on the wire
// (api.Hist); internal/fleet rebuilds and merges them with
// obs.SnapshotFromParts.
func histToWire(s obs.HistSnapshot) *api.Hist {
	b := make([]uint64, obs.NumHistBuckets)
	copy(b, s.Buckets[:])
	return &api.Hist{Count: s.Count, SumNanos: s.Sum, Buckets: b}
}

// stageSummaries builds StatsResponse.Stages: every built-in stage
// plus externally registered ones (the replication tailer's apply
// latency).
func (s *Server) stageSummaries() map[string]api.LatencySummary {
	out := make(map[string]api.LatencySummary, 10)
	s.stages.each(func(name string, h *obs.Histogram) {
		out[name] = summarize(h.Snapshot())
	})
	s.extraMu.RLock()
	for name, h := range s.extraStages {
		out[name] = summarize(h.Snapshot())
	}
	s.extraMu.RUnlock()
	return out
}

// RegisterStage attaches an externally owned stage histogram under
// name: it appears in StatsResponse.Stages and as a
// qoserved_stage_duration_seconds series. The replication tailer
// registers its apply latency this way (the histogram outlives the
// serving cores re-syncs swap in).
func (s *Server) RegisterStage(name string, h *obs.Histogram) {
	s.extraMu.Lock()
	if s.extraStages == nil {
		s.extraStages = make(map[string]*obs.Histogram)
	}
	s.extraStages[name] = h
	s.extraMu.Unlock()
}

// RegisterCollector adds a callback that contributes additional
// families to the /metrics exposition (for components the server does
// not own). Collectors run on every scrape.
func (s *Server) RegisterCollector(fn func(*obs.Exposition)) {
	s.extraMu.Lock()
	s.collectors = append(s.collectors, fn)
	s.extraMu.Unlock()
}

// collectMetrics assembles the server-owned families of the /metrics
// exposition from the same counters /v2/stats reports, plus the stage
// histograms. Route-level families are added by the HTTP layer.
func (s *Server) collectMetrics(e *obs.Exposition) {
	v := s.version
	e.Gauge("qoserved_build_info",
		"Build metadata of the running binary (always 1; identity is in the labels).",
		obs.Labels{{Name: "module", Value: v.Module}, {Name: "version", Value: v.Version},
			{Name: "go_version", Value: v.GoVersion}, {Name: "revision", Value: v.Revision}}, 1)
	e.Gauge("qoserved_uptime_seconds", "Seconds since the server started.",
		nil, time.Since(s.start).Seconds())

	// Serving counters.
	e.Counter("qoserved_rank_requests_total", "Rank decisions requested.", nil, float64(s.rankRequests.Load()))
	e.Counter("qoserved_rank_hint_hits_total", "Ranks answered from the hint cache.", nil, float64(s.hintHits.Load()))
	e.Counter("qoserved_rank_bandit_total", "Ranks answered by the bandit policy.", nil, float64(s.banditRanks.Load()))
	e.Counter("qoserved_rank_noops_total", "Bandit ranks that chose the no-op action.", nil, float64(s.noops.Load()))
	e.Gauge("qoserved_hint_cache_entries", "Hints in the serving cache.", nil, float64(s.cache.Size()))
	e.Gauge("qoserved_hint_cache_generation", "Hint-table generation.", nil, float64(s.cache.Generation()))
	e.Gauge("qoserved_hint_cache_shards", "Hint-cache shard count.", nil, float64(s.cache.Shards()))
	e.Gauge("qoserved_bandit_log_events", "Rank events retained awaiting rewards.", nil, float64(s.bandit.LogSize()))

	// Ingestion counters.
	ing := s.ingest.Stats()
	e.Counter("qoserved_ingest_enqueued_total", "Rewards accepted into the ingestion queue.", nil, float64(ing.Enqueued))
	e.Counter("qoserved_ingest_dropped_total", "Rewards rejected for backpressure or shutdown.", nil, float64(ing.Dropped))
	e.Counter("qoserved_ingest_applied_total", "Rewards applied to the learner.", nil, float64(ing.Applied))
	e.Counter("qoserved_ingest_unknown_events_total", "Rewards naming no logged rank event.", nil, float64(ing.UnknownEvents))
	e.Counter("qoserved_ingest_train_runs_total", "Training passes run.", nil, float64(ing.TrainRuns))
	e.Counter("qoserved_ingest_trained_events_total", "Events consumed by training passes.", nil, float64(ing.TrainedEvents))
	e.Counter("qoserved_ingest_journal_errors_total", "Failed durable-journal writes.", nil, float64(ing.JournalErrors))
	e.Gauge("qoserved_ingest_queue_depth", "Rewards waiting in the ingestion queue.", nil, float64(ing.QueueDepth))
	e.Gauge("qoserved_ingest_queue_capacity", "Ingestion queue capacity.", nil, float64(ing.QueueCap))

	// Journal counters (WAL-backed servers only).
	if s.wal != nil {
		ws := s.wal.Stats()
		e.Counter("qoserved_wal_appends_total", "Journal records appended.", nil, float64(ws.Appends))
		e.Counter("qoserved_wal_appended_bytes_total", "Journal bytes appended.", nil, float64(ws.AppendedBytes))
		e.Counter("qoserved_wal_syncs_total", "Journal fsync batches.", nil, float64(ws.Syncs))
		e.Gauge("qoserved_wal_segments", "Journal segment files on disk.", nil, float64(ws.Segments))
		e.Counter("qoserved_wal_truncated_segments_total", "Segments removed by snapshot compaction.", nil, float64(ws.TruncatedSegs))
		e.Gauge("qoserved_wal_first_lsn", "Oldest retained journal position.", nil, float64(ws.FirstLSN))
		e.Gauge("qoserved_wal_last_lsn", "Newest appended journal position.", nil, float64(ws.LastLSN))
		e.Gauge("qoserved_wal_synced_lsn", "Durable journal frontier.", nil, float64(ws.SyncedLSN))
		e.Counter("qoserved_checkpoints_total", "Checkpoints taken.", nil, float64(s.checkpoints.Load()))
		e.Gauge("qoserved_checkpoint_last_lsn", "Journal watermark of the last checkpoint.", nil, float64(s.lastCkptLSN.Load()))
		e.Gauge("qoserved_checkpoint_last_bytes", "Snapshot size of the last checkpoint.", nil, float64(s.lastCkptBytes.Load()))
		e.Gauge("qoserved_checkpoint_last_duration_seconds", "End-to-end duration of the last checkpoint.", nil,
			float64(s.lastCkptMicros.Load())/1e6)
	}

	// Drift-safeguard families. Enforcement gauges/counters are live on
	// every node (the quarantine table replicates); detector families
	// only where detection runs.
	ds := s.guard.stats(0)
	enabled := 0.0
	if ds.Enabled {
		enabled = 1
	}
	e.Gauge("qoserved_drift_enabled", "Whether drift detection runs on this node (enforcement is always on).", nil, enabled)
	e.Counter("qoserved_quarantine_blocked_ranks_total", "Rank requests whose installed hint was refused because the template is quarantined.", nil, float64(ds.BlockedRanks))
	e.Counter("qoserved_quarantine_transitions_total", "Committed quarantine state-machine transitions.", nil, float64(ds.Transitions))
	e.Counter("qoserved_quarantine_entered_total", "Transitions into quarantine.", nil, float64(ds.Quarantines))
	e.Counter("qoserved_quarantine_probations_total", "Transitions from quarantine into probation.", nil, float64(ds.Probations))
	e.Counter("qoserved_quarantine_restores_total", "Transitions back to healthy.", nil, float64(ds.Restores))
	e.Counter("qoserved_quarantine_manual_total", "Operator-initiated transitions (POST /v2/quarantine).", nil, float64(ds.Manual))
	e.Counter("qoserved_quarantine_journal_errors_total", "Quarantine transitions rejected because the journal append failed.", nil, float64(ds.JournalErrs))
	e.Gauge("qoserved_quarantine_templates", "Templates currently quarantined.", nil, float64(ds.QuarantinedNow))
	e.Gauge("qoserved_quarantine_probation_templates", "Templates currently on probation.", nil, float64(ds.ProbationNow))
	if ds.Enabled {
		e.Gauge("qoserved_drift_tracked_templates", "Templates with exact drift-tracking entries.", nil, float64(ds.Tracked))
		e.Gauge("qoserved_drift_suspect_templates", "Templates currently under suspicion (pre-quarantine hysteresis).", nil, float64(ds.Suspects))
		e.Counter("qoserved_drift_observations_total", "Template-attributed rewards observed by the detector.", nil, float64(ds.Observations))
		e.Counter("qoserved_drift_sketch_gated_total", "Observations absorbed by the count-min sketch without exact tracking.", nil, float64(ds.SketchGated))
		e.Counter("qoserved_drift_evictions_total", "Exact entries evicted under the template cap.", nil, float64(ds.Evictions))
		e.Gauge("qoserved_drift_sketch_bytes", "Count-min sketch memory footprint.", nil, float64(ds.SketchBytes))
	}

	// Replication counters (cluster nodes only).
	if r := s.replicationStats(); r != nil {
		e.Gauge("qoserved_replication_info",
			"Cluster role of this node (always 1; role is in the labels).",
			obs.Labels{{Name: "role", Value: r.Role}, {Name: "leader", Value: r.LeaderURL}}, 1)
		if r.Role == api.RolePrimary {
			e.Gauge("qoserved_replication_followers", "Follower streams currently attached.", nil, float64(r.Followers))
			e.Counter("qoserved_replication_streams_served_total", "WAL streams served.", nil, float64(r.StreamsServed))
			e.Counter("qoserved_replication_records_shipped_total", "Journal records shipped to followers.", nil, float64(r.RecordsShipped))
			e.Counter("qoserved_replication_bytes_shipped_total", "Journal bytes shipped to followers.", nil, float64(r.BytesShipped))
		} else {
			e.Gauge("qoserved_replication_applied_lsn", "Newest journal record applied locally.", nil, float64(r.AppliedLSN))
			e.Gauge("qoserved_replication_frontier_lsn", "Newest durable primary position observed.", nil, float64(r.FrontierLSN))
			e.Gauge("qoserved_replication_lag_records", "Records behind the observed primary frontier.", nil, float64(r.LagRecords))
			e.Gauge("qoserved_replication_last_tail_seconds", "Seconds since the last tail activity.", nil, r.LastTailSec)
			e.Counter("qoserved_replication_records_applied_total", "Journal records applied since start.", nil, float64(r.RecordsApplied))
			e.Counter("qoserved_replication_reconnects_total", "Tail stream reconnects.", nil, float64(r.Reconnects))
			e.Counter("qoserved_replication_resyncs_total", "Full re-bootstraps.", nil, float64(r.Resyncs))
		}
	}

	// Stage latency histograms (built-in + registered).
	const stageHelp = "Serving-stage latency distributions."
	s.stages.each(func(name string, h *obs.Histogram) {
		e.Histogram("qoserved_stage_duration_seconds", stageHelp, obs.L("stage", name), h.Snapshot())
	})
	s.extraMu.RLock()
	for name, h := range s.extraStages {
		e.Histogram("qoserved_stage_duration_seconds", stageHelp, obs.L("stage", name), h.Snapshot())
	}
	collectors := s.collectors
	s.extraMu.RUnlock()
	for _, fn := range collectors {
		fn(e)
	}
	s.collectSLOMetrics(e)
	s.collectTraceMetrics(e)
	s.incidents.collectMetrics(e)
}

// collectTraceMetrics contributes the flight recorder's
// qoserved_trace_* families (and the export arm's write-error counter,
// which exists whenever a tracer does, recorder or not).
func (s *Server) collectTraceMetrics(e *obs.Exposition) {
	if s.flight == nil {
		if s.tracer != nil {
			e.Counter("qoserved_trace_write_errors_total",
				"Failed writes on the -trace-out export stream.", nil, float64(s.tracer.WriteErrors()))
		}
		return
	}
	fs := s.flight.Stats()
	const retainedHelp = "Traces retained by the flight recorder, by retention reason."
	e.Counter("qoserved_trace_retained_total", retainedHelp, obs.L("reason", obs.RetainSlow), float64(fs.RetainedSlow))
	e.Counter("qoserved_trace_retained_total", retainedHelp, obs.L("reason", obs.RetainError), float64(fs.RetainedError))
	e.Counter("qoserved_trace_retained_total", retainedHelp, obs.L("reason", obs.RetainSampled), float64(fs.RetainedSampled))
	e.Counter("qoserved_trace_evicted_total",
		"Retained traces pushed out of the ring by newer ones.", nil, float64(fs.Evicted))
	e.Gauge("qoserved_trace_ring_size", "Traces currently retained.", nil, float64(fs.Retained))
	e.Gauge("qoserved_trace_ring_capacity", "Retained-ring capacity.", nil, float64(fs.Capacity))
	e.Gauge("qoserved_trace_retain_threshold_seconds",
		"Default slow-retention latency cutoff.", nil, fs.Threshold.Seconds())
	e.Counter("qoserved_trace_write_errors_total",
		"Failed writes on the -trace-out export stream.", nil, float64(s.tracer.WriteErrors()))
}

// collectRouteMetrics adds the HTTP middleware's per-route families.
func (h *httpLayer) collectRouteMetrics(e *obs.Exposition) {
	for route, m := range h.stats {
		labels := obs.L("route", route)
		e.Counter("qoserved_http_requests_total", "HTTP requests served, by route.", labels, float64(m.count.Load()))
		e.Counter("qoserved_http_request_errors_total", "HTTP requests answered with status >= 400, by route.", labels, float64(m.errors.Load()))
		e.Counter("qoserved_http_request_5xx_total", "HTTP requests answered with status >= 500, by route (the availability-SLO error input).", labels, float64(m.status5xx.Load()))
		e.Histogram("qoserved_http_request_duration_seconds", "HTTP request latency, by route.", labels, m.lat.Snapshot())
	}
}

// handleMetrics serves the Prometheus text-format exposition.
func (h *httpLayer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	e := obs.NewExposition()
	h.srv.collectMetrics(e)
	h.collectRouteMetrics(e)
	// Map-fed families (routes, stages) iterate in random order; sort
	// so consecutive scrapes diff cleanly.
	e.SortSeries()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w)
}

// handleVersion serves the node's build identity.
func (h *httpLayer) handleVersion(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, api.VersionResponse{
		VersionInfo: h.srv.version,
		RequestID:   requestID(r),
	})
}

// VersionInfo reports the build identity embedded in stats responses.
func VersionInfo() api.VersionInfo {
	b := obs.Build()
	return api.VersionInfo{
		Module:    b.Module,
		Version:   b.Version,
		GoVersion: b.GoVersion,
		Revision:  b.Revision,
		BuildTime: b.BuildTime,
		Modified:  b.Modified,
	}
}
