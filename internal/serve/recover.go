package serve

import (
	"errors"
	"fmt"
	"os"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/wal"
)

// RecoverResult reports what Recover rebuilt.
type RecoverResult struct {
	// Service is the reconstructed learner (never nil on success).
	Service *bandit.Service
	// SnapshotLoaded reports whether a snapshot file seeded the model.
	SnapshotLoaded bool
	// FromLSN is the snapshot's WAL watermark replay started after.
	FromLSN uint64
	// Replay counts what the journal suffix contributed.
	Replay bandit.ReplayStats
	// Journal describes the replay pass (tail truncation etc).
	Journal wal.ReplayInfo
}

// Recovered reports whether any persisted state was found — when
// false the caller should fall back to its bootstrap path (the model
// is a fresh, untrained learner).
func (r RecoverResult) Recovered() bool {
	return r.SnapshotLoaded || r.Journal.Records > 0
}

// Recover rebuilds a bandit model from a snapshot plus the journal
// suffix above its watermark: the startup path of a WAL-backed server
// and the offline "-replay" ops mode. snapshotPath may be empty or
// name a file that does not exist yet (first boot) — the journal is
// then replayed from the beginning into a fresh learner built with
// DefaultConfig(seed). trainEvery and maxLogEvents must match the
// serving configuration (both with Config's 0-default / negative-
// unbounded semantics) or replay would train on different boundaries —
// or evict different events — than the live run did.
//
// Recovery is deterministic: replaying the same snapshot and journal
// yields a bit-identical model, and under the single-worker ingestion
// default it is also bit-identical to the model the crashed process
// had built (modulo rewards that were never journaled durably, and
// modulo event-log eviction: under cap pressure the live interleaving
// of ranks and reward applies is not recorded, so replay may evict on
// slightly different boundaries). A torn or corrupt journal tail —
// the signature of a crash mid-append — is skipped cleanly and
// reported in the result; damage before the tail fails loudly instead,
// because that is data loss, not a crash artifact.
func Recover(src wal.Source, snapshotPath string, trainEvery, maxLogEvents int, seed int64) (RecoverResult, error) {
	var res RecoverResult
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			res.Service, err = bandit.Load(f, seed)
			f.Close()
			if err != nil {
				return res, fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
			}
			res.SnapshotLoaded = true
			res.FromLSN = res.Service.WALWatermark()
		case errors.Is(err, os.ErrNotExist):
			// first boot: no snapshot yet
		default:
			return res, err
		}
	}
	if res.Service == nil {
		res.Service = bandit.New(bandit.DefaultConfig(seed))
	}
	// Apply the serving event-log cap before replay so eviction behaves
	// as it did live (serve.New applies the same rule to the learner).
	switch {
	case maxLogEvents == 0:
		res.Service.SetMaxLog(1 << 14)
	case maxLogEvents > 0:
		res.Service.SetMaxLog(maxLogEvents)
	default:
		res.Service.SetMaxLog(0)
	}

	rp := bandit.NewReplayer(res.Service, trainEvery)
	info, err := src.Replay(res.FromLSN, rp.Apply)
	res.Journal = info
	res.Replay = rp.Stats
	if err != nil {
		return res, fmt.Errorf("replaying journal: %w", err)
	}
	if info.Records > 0 {
		// Drain-equivalent tail flush: rewards past the last training
		// boundary train now, exactly as a graceful shutdown would have
		// trained them.
		rp.Finish()
		res.Replay = rp.Stats
	}
	return res, nil
}
