package serve

import (
	"errors"
	"fmt"
	"os"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// Applier applies journal records to a learner and, when one is
// attached, a live hint cache — the single record-dispatch path shared
// by crash recovery (offline, cache applied afterwards) and follower
// replication (online, cache updated as records arrive). Bandit-owned
// records (rank, reward batch, train mark) go to a bandit.Replayer
// with its train-boundary accounting; hint-rollover records restore
// the hint table at the journaled generation.
type Applier struct {
	svc   *bandit.Service
	rp    *bandit.Replayer
	cache *HintCache   // nil: hints only accumulate in Hints/HintGen
	quar  *drift.Table // nil: quarantines only accumulate in Quarantine

	// Hints / HintGen track the newest rollover applied (replay keeps
	// the last one: rollovers are wholesale). Rollovers counts them.
	Hints     []sis.Hint
	HintGen   uint64
	Rollovers int64

	// Quarantine is the durable drift-safeguard table as of the newest
	// RecQuarantine record applied (wholesale, like rollovers: the last
	// record wins). Nil until one is seen — distinguishable from an
	// explicit empty table, which means every template was restored.
	Quarantine        map[uint64]drift.State
	QuarantineRecords int64
}

// NewApplier builds an applier over svc. cache, when non-nil, receives
// hint rollovers as they are applied, and quar, when non-nil, receives
// quarantine-table records (the follower's live mode); trainEvery must
// match the journaled run's ingestion batch size.
func NewApplier(svc *bandit.Service, cache *HintCache, quar *drift.Table, trainEvery int) *Applier {
	return &Applier{svc: svc, rp: bandit.NewReplayer(svc, trainEvery), cache: cache, quar: quar}
}

// Apply consumes one journal record.
func (a *Applier) Apply(lsn uint64, payload []byte) error {
	if len(payload) > 0 && payload[0] == RecHintRollover {
		gen, hints, err := DecodeHintRollover(payload)
		if err != nil {
			return fmt.Errorf("serve: lsn %d: %w", lsn, err)
		}
		a.Hints, a.HintGen = hints, gen
		a.Rollovers++
		if a.cache != nil {
			a.cache.Restore(hints, gen)
		}
		// Hint records advance the covered-state watermark like any other
		// applied record, so a later snapshot supersedes them.
		a.svc.SetWALWatermark(lsn)
		return nil
	}
	if len(payload) > 0 && payload[0] == RecQuarantine {
		states, _, _, err := DecodeQuarantine(payload)
		if err != nil {
			return fmt.Errorf("serve: lsn %d: %w", lsn, err)
		}
		a.Quarantine = states
		a.QuarantineRecords++
		if a.quar != nil {
			a.quar.Replace(states)
		}
		a.svc.SetWALWatermark(lsn)
		return nil
	}
	return a.rp.Apply(lsn, payload)
}

// Finish runs the drain-equivalent tail training flush.
func (a *Applier) Finish() { a.rp.Finish() }

// ReplayStats reports the bandit-side replay counters.
func (a *Applier) ReplayStats() bandit.ReplayStats { return a.rp.Stats }

// RecoverResult reports what Recover rebuilt.
type RecoverResult struct {
	// Service is the reconstructed learner (never nil on success).
	Service *bandit.Service
	// SnapshotLoaded reports whether a snapshot file seeded the model.
	SnapshotLoaded bool
	// FromLSN is the snapshot's WAL watermark replay started after.
	FromLSN uint64
	// Replay counts what the journal suffix contributed.
	Replay bandit.ReplayStats
	// Journal describes the replay pass (tail truncation etc).
	Journal wal.ReplayInfo
	// Hints is the hint table as of the newest journaled rollover (nil
	// when the journal holds none — pre-rollover crash or a journal from
	// before hint journaling). HintGen is the cache generation it was
	// installed as; HintRollovers counts rollover records replayed.
	Hints         []sis.Hint
	HintGen       uint64
	HintRollovers int64
	// Quarantine is the drift-safeguard table as of the newest
	// RecQuarantine record (nil when the journal holds none);
	// QuarantineRecords counts them.
	Quarantine        map[uint64]drift.State
	QuarantineRecords int64
}

// Recovered reports whether any persisted state was found — when
// false the caller should fall back to its bootstrap path (the model
// is a fresh, untrained learner).
func (r RecoverResult) Recovered() bool {
	return r.SnapshotLoaded || r.Journal.Records > 0
}

// Recover rebuilds a bandit model plus the active hint table from a
// snapshot and the journal suffix above its watermark: the startup
// path of a WAL-backed server and the offline "-replay" ops mode.
// snapshotPath may be empty or name a file that does not exist yet
// (first boot) — the journal is then replayed from the beginning into
// a fresh learner built with DefaultConfig(seed). trainEvery and
// maxLogEvents must match the serving configuration (both with
// Config's 0-default / negative-unbounded semantics) or replay would
// train on different boundaries — or evict different events — than
// the live run did.
//
// Recovery is deterministic: replaying the same snapshot and journal
// yields a bit-identical model, and under the single-worker ingestion
// default it is also bit-identical to the model the crashed process
// had built (modulo rewards that were never journaled durably, and
// modulo event-log eviction: under cap pressure the live interleaving
// of ranks and reward applies is not recorded, so replay may evict on
// slightly different boundaries). A torn or corrupt journal tail —
// the signature of a crash mid-append — is skipped cleanly and
// reported in the result; damage before the tail fails loudly instead,
// because that is data loss, not a crash artifact.
func Recover(src wal.Source, snapshotPath string, trainEvery, maxLogEvents int, seed int64) (RecoverResult, error) {
	var res RecoverResult
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			res.Service, err = bandit.Load(f, seed)
			f.Close()
			if err != nil {
				return res, fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
			}
			res.SnapshotLoaded = true
			res.FromLSN = res.Service.WALWatermark()
		case errors.Is(err, os.ErrNotExist):
			// first boot: no snapshot yet
		default:
			return res, err
		}
	}
	if res.Service == nil {
		res.Service = bandit.New(bandit.DefaultConfig(seed))
	}
	// Apply the serving event-log cap before replay so eviction behaves
	// as it did live (serve.New applies the same rule to the learner).
	switch {
	case maxLogEvents == 0:
		res.Service.SetMaxLog(1 << 14)
	case maxLogEvents > 0:
		res.Service.SetMaxLog(maxLogEvents)
	default:
		res.Service.SetMaxLog(0)
	}

	ap := NewApplier(res.Service, nil, nil, trainEvery)
	info, err := src.Replay(res.FromLSN, ap.Apply)
	res.Journal = info
	res.Replay = ap.ReplayStats()
	res.Hints, res.HintGen, res.HintRollovers = ap.Hints, ap.HintGen, ap.Rollovers
	res.Quarantine, res.QuarantineRecords = ap.Quarantine, ap.QuarantineRecords
	if err != nil {
		return res, fmt.Errorf("replaying journal: %w", err)
	}
	if info.Records > 0 {
		// Drain-equivalent tail flush: rewards past the last training
		// boundary train now, exactly as a graceful shutdown would have
		// trained them.
		ap.Finish()
		res.Replay = ap.ReplayStats()
	}
	return res, nil
}
