package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/obs"
)

// Incident engine: the flight recorder's capture arm. Detection
// already exists (SLO burn rates, drift quarantine, WAL fail-stop);
// this layer turns a detection into evidence, at the moment of the
// anomaly, without an operator attached: when a trigger fires it
// writes a timestamped diagnostic bundle — goroutine + heap profiles,
// histogram snapshots, the retained slow-trace ring, the full stats
// document — into -incident-dir, debounced so a sustained burn yields
// one incident rather than thousands.

// Incident trigger reasons.
const (
	incidentBurn       = "burn"       // SLO burn rate crossed the threshold
	incidentQuarantine = "quarantine" // a template entered quarantine
	incidentWAL        = "wal"        // journal append/commit failed (fail-stop)
	incidentManual     = "manual"     // operator POST /v2/incidents
)

// IncidentConfig parameterizes the incident engine. Dir is required;
// zero-valued fields take the defaults.
type IncidentConfig struct {
	// Dir is where capture bundles are written (one subdirectory per
	// incident). Empty disables the engine.
	Dir string
	// BurnThreshold is the shortest-window burn rate that trips the SLO
	// trigger (0 = 2.0: burning the error budget at twice the sustainable
	// rate).
	BurnThreshold float64
	// Cooldown is the minimum spacing between captures; trigger firings
	// inside it are counted as suppressed (0 = 5m).
	Cooldown time.Duration
	// Tick is the trigger-evaluation period (0 = 1s).
	Tick time.Duration
	// MaxBundles bounds the bundles kept on disk; the oldest is removed
	// when a capture exceeds it (0 = 32).
	MaxBundles int
}

func (c IncidentConfig) withDefaults() IncidentConfig {
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 32
	}
	return c
}

// incidentTriggers is the pure decision core, separated from the
// engine so the crossing/debounce logic is unit-testable with an
// injected clock. Not self-locking; the engine serializes access.
type incidentTriggers struct {
	burnThreshold float64
	cooldown      time.Duration

	burnHigh        bool
	prevJournalErrs int64
	fired           bool
	lastFire        time.Time
}

// burnCross reports a rising edge: the burn rate reached the threshold
// after being below it. Sustained burn returns true exactly once.
func (t *incidentTriggers) burnCross(rate float64) bool {
	high := rate >= t.burnThreshold
	cross := high && !t.burnHigh
	t.burnHigh = high
	return cross
}

// journalFailure reports that the journal-error counter advanced since
// the last evaluation.
func (t *incidentTriggers) journalFailure(errs int64) bool {
	advanced := errs > t.prevJournalErrs
	t.prevJournalErrs = errs
	return advanced
}

// admit applies the cooldown: a firing inside cooldown of the last
// admitted one is rejected. force (a manual capture) bypasses the
// check but still stamps the window — the operator just captured the
// evidence an automatic trigger would duplicate. Admitted firings
// advance lastFire.
func (t *incidentTriggers) admit(now time.Time, force bool) bool {
	if !force && t.fired && now.Sub(t.lastFire) < t.cooldown {
		return false
	}
	t.fired = true
	t.lastFire = now
	return true
}

// incidentEvent is an asynchronous trigger firing (quarantine
// transitions arrive from the safeguard's commit path, which must not
// block on a capture).
type incidentEvent struct {
	reason string
	detail string
}

type incidentEngine struct {
	srv *Server
	cfg IncidentConfig

	events chan incidentEvent
	stopCh chan struct{}
	done   chan struct{}

	triggered   atomic.Int64
	capturedN   atomic.Int64
	suppressed  atomic.Int64
	captureErrs atomic.Int64

	// mu guards the trigger state and the bundle index.
	mu                sync.Mutex
	trig              incidentTriggers
	bundles           []api.IncidentMeta // oldest first
	lastCaptureMicros int64
}

func newIncidentEngine(s *Server, cfg IncidentConfig) *incidentEngine {
	cfg = cfg.withDefaults()
	e := &incidentEngine{
		srv:    s,
		cfg:    cfg,
		events: make(chan incidentEvent, 8),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
		trig: incidentTriggers{
			burnThreshold: cfg.BurnThreshold,
			cooldown:      cfg.Cooldown,
		},
	}
	os.MkdirAll(cfg.Dir, 0o755)
	e.loadExisting()
	// Quarantine transitions ride the safeguard's commit path.
	s.guard.setNotify(e.noteTransition)
	return e
}

// start launches the trigger-evaluation loop; stop (from Server.Close)
// terminates it.
func (e *incidentEngine) start() { go e.run() }

func (e *incidentEngine) stop() {
	close(e.stopCh)
	<-e.done
}

func (e *incidentEngine) run() {
	defer close(e.done)
	tick := time.NewTicker(e.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case ev := <-e.events:
			e.fire(time.Now(), ev.reason, ev.detail, 0, false)
		case now := <-tick.C:
			e.evaluate(now)
		}
	}
}

// evaluate runs the polled triggers: SLO burn-rate crossing and
// journal-error advancement. Exported to tests via direct calls with
// an injected clock; the run loop drives it once per Tick.
func (e *incidentEngine) evaluate(now time.Time) {
	burn, objective := e.maxBurn(now)
	e.mu.Lock()
	burnCross := e.trig.burnCross(burn)
	walFail := e.trig.journalFailure(e.srv.journalErrors())
	e.mu.Unlock()
	if burnCross {
		e.fire(now, incidentBurn,
			fmt.Sprintf("%s burn rate %.2f crossed threshold %.2f", objective, burn, e.cfg.BurnThreshold), burn, false)
	}
	if walFail {
		e.fire(now, incidentWAL, "journal append/commit failed (fail-stop)", 0, false)
	}
}

// maxBurn reads the worst shortest-window burn rate across the node's
// objectives (0 when SLO tracking is off).
func (e *incidentEngine) maxBurn(now time.Time) (float64, string) {
	t := e.srv.slo
	if t == nil {
		return 0, ""
	}
	t.Tick(now)
	worst, name := 0.0, ""
	for _, st := range t.Report(now) {
		if len(st.Windows) == 0 {
			continue
		}
		// Windows are sorted ascending; the shortest reacts fastest.
		if r := st.Windows[0].BurnRate; r > worst {
			worst, name = r, st.Name
		}
	}
	return worst, name
}

// noteTransition is the safeguard hook: committed transitions into
// quarantine enqueue a trigger without blocking the commit path.
func (e *incidentEngine) noteTransition(tr drift.Transition) {
	if tr.To != drift.StateQuarantined {
		return
	}
	detail := fmt.Sprintf("template %016x quarantined", tr.TemplateHash)
	if tr.Manual {
		detail += " (manual)"
	}
	select {
	case e.events <- incidentEvent{reason: incidentQuarantine, detail: detail}:
	default:
		// Queue full means captures are already backed up; the cooldown
		// would suppress this firing anyway.
		e.triggered.Add(1)
		e.suppressed.Add(1)
	}
}

// fire applies the cooldown and captures a bundle. force bypasses the
// cooldown (manual captures).
func (e *incidentEngine) fire(now time.Time, reason, detail string, burn float64, force bool) (api.IncidentMeta, error) {
	e.triggered.Add(1)
	e.mu.Lock()
	admitted := e.trig.admit(now, force)
	last := e.trig.lastFire
	e.mu.Unlock()
	if !admitted {
		e.suppressed.Add(1)
		return api.IncidentMeta{}, api.Errorf(api.CodeInvalidRequest,
			"incident capture suppressed: cooldown %s since %s", e.cfg.Cooldown, last.Format(time.RFC3339))
	}
	return e.capture(now, reason, detail, burn)
}

// capture writes one diagnostic bundle. It must NOT hold e.mu while
// snapshotting: stats.json embeds the incidents block, whose assembly
// takes the lock. Concurrent captures are already spaced by admit's
// cooldown stamp; forced overlaps land in distinct timestamped dirs.
// Artifact write failures are counted and skipped — a partial bundle
// with the profiles missing still beats no bundle.
func (e *incidentEngine) capture(now time.Time, reason, detail string, burn float64) (api.IncidentMeta, error) {
	captureStart := time.Now()
	id := fmt.Sprintf("incident-%s-%s", now.UTC().Format("20060102T150405.000"), reason)
	dir := filepath.Join(e.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		e.captureErrs.Add(1)
		return api.IncidentMeta{}, api.Errorf(api.CodeInternal, "creating incident bundle: %v", err)
	}
	meta := api.IncidentMeta{
		ID:       id,
		Reason:   reason,
		Detail:   detail,
		UnixNano: now.UnixNano(),
		Time:     now.UTC().Format(time.RFC3339Nano),
		BurnRate: burn,
	}

	writeJSONFile := func(name string, v any) {
		b, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(dir, name), b, 0o644)
		}
		if err != nil {
			e.captureErrs.Add(1)
			return
		}
		meta.Files = append(meta.Files, api.IncidentFile{Name: name, Bytes: int64(len(b))})
	}
	writeProfile := func(name, profile string) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			e.captureErrs.Add(1)
			return
		}
		err = pprof.Lookup(profile).WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			e.captureErrs.Add(1)
			return
		}
		if fi, serr := os.Stat(filepath.Join(dir, name)); serr == nil {
			meta.Files = append(meta.Files, api.IncidentFile{Name: name, Bytes: fi.Size()})
		}
	}

	// The full stats document carries the WAL, replication, drift, SLO,
	// and route/stage state the responder needs first.
	writeJSONFile("stats.json", e.srv.http.fullStats())
	writeJSONFile("traces.json", e.srv.tracesResponse("", 0, 0))
	writeJSONFile("histograms.json", e.srv.histogramSnapshots())
	writeProfile("goroutine.pprof", "goroutine")
	writeProfile("heap.pprof", "heap")

	meta.CaptureMicros = time.Since(captureStart).Microseconds()
	b, err := json.MarshalIndent(meta, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "meta.json"), b, 0o644)
	}
	if err != nil {
		e.captureErrs.Add(1)
		return meta, api.Errorf(api.CodeInternal, "writing incident meta: %v", err)
	}
	e.capturedN.Add(1)
	e.mu.Lock()
	e.lastCaptureMicros = meta.CaptureMicros
	e.bundles = append(e.bundles, meta)
	var evict []string
	for len(e.bundles) > e.cfg.MaxBundles {
		evict = append(evict, e.bundles[0].ID)
		e.bundles = e.bundles[1:]
	}
	e.mu.Unlock()
	for _, id := range evict {
		os.RemoveAll(filepath.Join(e.cfg.Dir, id))
	}
	return meta, nil
}

// loadExisting indexes bundles left by earlier runs so -check and
// GET /v2/incidents see them after a restart.
func (e *incidentEngine) loadExisting() {
	entries, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(e.cfg.Dir, ent.Name(), "meta.json"))
		if err != nil {
			continue
		}
		var meta api.IncidentMeta
		if json.Unmarshal(b, &meta) != nil || meta.ID == "" {
			continue
		}
		e.bundles = append(e.bundles, meta)
	}
	sort.Slice(e.bundles, func(i, j int) bool { return e.bundles[i].UnixNano < e.bundles[j].UnixNano })
}

// list returns the bundle index newest-first.
func (e *incidentEngine) list() []api.IncidentMeta {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]api.IncidentMeta, len(e.bundles))
	for i, m := range e.bundles {
		out[len(out)-1-i] = m
	}
	return out
}

// get re-reads one bundle's meta.json from disk (so a deleted bundle
// 404s even if still indexed).
func (e *incidentEngine) get(id string) (api.IncidentMeta, error) {
	if !validIncidentID(id) {
		return api.IncidentMeta{}, api.Errorf(api.CodeInvalidRequest, "invalid incident id %q", id)
	}
	b, err := os.ReadFile(filepath.Join(e.cfg.Dir, id, "meta.json"))
	if err != nil {
		return api.IncidentMeta{}, api.Errorf(api.CodeNotFound, "no incident %q", id)
	}
	var meta api.IncidentMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		return api.IncidentMeta{}, api.Errorf(api.CodeInternal, "corrupt incident meta for %q: %v", id, err)
	}
	return meta, nil
}

// file opens one bundle artifact for streaming.
func (e *incidentEngine) file(id, name string) (*os.File, error) {
	if !validIncidentID(id) || !validIncidentID(name) {
		return nil, api.Errorf(api.CodeInvalidRequest, "invalid incident file %q/%q", id, name)
	}
	f, err := os.Open(filepath.Join(e.cfg.Dir, id, name))
	if err != nil {
		return nil, api.Errorf(api.CodeNotFound, "no artifact %q in incident %q", name, id)
	}
	return f, nil
}

// validIncidentID rejects path traversal in client-supplied bundle and
// artifact names.
func validIncidentID(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return s != "." && s != ".."
}

// stats assembles the /v2/stats incidents block (nil-safe: a disabled
// engine contributes no block).
func (e *incidentEngine) stats() *api.IncidentStats {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	count := int64(len(e.bundles))
	var last *api.IncidentMeta
	if n := len(e.bundles); n > 0 {
		last = &e.bundles[n-1]
	}
	st := &api.IncidentStats{
		Enabled:       true,
		Count:         count,
		Triggered:     e.triggered.Load(),
		Captured:      e.capturedN.Load(),
		Suppressed:    e.suppressed.Load(),
		CaptureErrors: e.captureErrs.Load(),
		BurnThreshold: e.cfg.BurnThreshold,
		CooldownSec:   e.cfg.Cooldown.Seconds(),
	}
	if last != nil {
		st.LastAgeSec = time.Since(time.Unix(0, last.UnixNano)).Seconds()
		st.LastCaptureMicros = e.lastCaptureMicros
		st.LastReason = last.Reason
		st.LastID = last.ID
	}
	e.mu.Unlock()
	return st
}

// collectMetrics contributes the qoserved_incident_* families.
func (e *incidentEngine) collectMetrics(x *obs.Exposition) {
	if e == nil {
		return
	}
	st := e.stats()
	x.Gauge("qoserved_incident_enabled",
		"1 when the incident engine is capturing to -incident-dir.", nil, 1)
	x.Gauge("qoserved_incident_bundles",
		"Diagnostic bundles currently on disk.", nil, float64(st.Count))
	x.Counter("qoserved_incident_triggered_total",
		"Incident trigger firings (burn, quarantine, wal, manual).", nil, float64(st.Triggered))
	x.Counter("qoserved_incident_captured_total",
		"Diagnostic bundles captured.", nil, float64(st.Captured))
	x.Counter("qoserved_incident_suppressed_total",
		"Trigger firings swallowed by the capture cooldown.", nil, float64(st.Suppressed))
	x.Counter("qoserved_incident_capture_errors_total",
		"Bundle artifacts that failed to write.", nil, float64(st.CaptureErrors))
	x.Gauge("qoserved_incident_burn_threshold",
		"Shortest-window SLO burn rate that trips the burn trigger.", nil, st.BurnThreshold)
	x.Gauge("qoserved_incident_cooldown_seconds",
		"Minimum spacing between captures.", nil, st.CooldownSec)
	if st.LastAgeSec > 0 {
		x.Gauge("qoserved_incident_last_age_seconds",
			"Age of the newest bundle.", nil, st.LastAgeSec)
		x.Gauge("qoserved_incident_last_capture_duration_seconds",
			"Wall time the newest capture took.", nil, float64(st.LastCaptureMicros)/1e6)
	}
}

// histogramSnapshots assembles the full-resolution histogram dump for
// a capture bundle: every stage and route distribution in wire form
// (raw log₂ buckets, not just summaries).
func (s *Server) histogramSnapshots() map[string]map[string]*api.Hist {
	out := map[string]map[string]*api.Hist{
		"stages": make(map[string]*api.Hist),
		"routes": make(map[string]*api.Hist),
	}
	s.stages.each(func(name string, h *obs.Histogram) {
		snap := h.Snapshot()
		out["stages"][name] = histToWire(snap)
	})
	s.extraMu.RLock()
	for name, h := range s.extraStages {
		snap := h.Snapshot()
		out["stages"][name] = histToWire(snap)
	}
	s.extraMu.RUnlock()
	for route, m := range s.http.stats {
		snap := m.lat.Snapshot()
		out["routes"][route] = histToWire(snap)
	}
	return out
}

// tracesResponse renders the retained ring as a /v2/traces answer: a
// Chrome-trace document (the traceEvents key loads directly in
// chrome://tracing / Perfetto, each retained trace as its own pid)
// plus per-trace metadata.
func (s *Server) tracesResponse(route string, minDur time.Duration, limit int) api.TracesResponse {
	resp := api.TracesResponse{TraceEvents: []api.TraceEvent{}, Traces: []api.TraceMeta{}}
	if s.flight == nil {
		return resp
	}
	epoch := s.flight.Epoch()
	for _, rt := range s.flight.Query(route, minDur, limit) {
		resp.Traces = append(resp.Traces, api.TraceMeta{
			Seq:       rt.Seq,
			Route:     rt.Route,
			RequestID: rt.RequestID,
			Reason:    rt.Reason,
			Status:    rt.Status,
			StartUnix: float64(rt.Start.UnixNano()) / 1e9,
			DurMicros: rt.Duration.Microseconds(),
			Events:    len(rt.Events),
		})
		for _, ev := range rt.Events {
			resp.TraceEvents = append(resp.TraceEvents, api.TraceEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   "X",
				Ts:   float64(ev.Start.Sub(epoch)) / float64(time.Microsecond),
				Dur:  float64(ev.Duration) / float64(time.Microsecond),
				Pid:  int(rt.Seq),
				Tid:  ev.TID,
				Args: map[string]string{"requestId": rt.RequestID, "reason": rt.Reason, "route": rt.Route},
			})
		}
	}
	return resp
}
