package serve

import (
	"fmt"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/walrec"
)

// RecHintRollover is the journal record type for hint-table rollovers,
// aliased from the shared registry (tag 4; tags 1-3 belong to
// qoadvisor/internal/bandit). Journaling rollovers closes the
// durability gap the model-only snapshot left — a restart used to come
// back with a trained bandit and an EMPTY hint cache — and is what
// lets followers replicate the hint table in decision order,
// interleaved with the rank and reward records it steers.
//
// Each record carries the COMPLETE table (Replace semantics are
// wholesale, matching the daily pipeline's output) plus the cache
// generation it installed, so replay restores not just the hints but
// the exact generation number clients observe in responses — a
// follower's /v2/rank answers are byte-identical to the primary's
// only if the generation matches too. Checkpoints and follower
// bootstraps re-journal the live table above the snapshot watermark,
// so compaction can never truncate the only copy.
//
// The wire codec lives in qoadvisor/internal/walrec (shared with the
// audit engine); this wrapper converts between the wire-level string
// flip and the typed sis.Hint the serve layer uses.
const RecHintRollover = walrec.TagHintRollover

// EncodeHintRollover frames one hint-table rollover:
//
//	[tag][uvarint generation][uvarint count]
//	per hint: [8-byte hash][string templateID][string flip][uvarint day]
func EncodeHintRollover(gen uint64, hints []sis.Hint) []byte {
	raw := make([]walrec.Hint, len(hints))
	for i, h := range hints {
		raw[i] = walrec.Hint{
			TemplateHash: h.TemplateHash,
			TemplateID:   h.TemplateID,
			Flip:         h.Flip.String(),
			Day:          h.Day,
		}
	}
	return walrec.EncodeHintRollover(gen, raw)
}

// DecodeHintRollover parses a RecHintRollover payload.
func DecodeHintRollover(p []byte) (gen uint64, hints []sis.Hint, err error) {
	rec, err := walrec.DecodeHintRollover(p)
	if err != nil {
		return 0, nil, err
	}
	hints = make([]sis.Hint, 0, len(rec.Hints))
	for _, h := range rec.Hints {
		flip, err := rules.ParseFlip(h.Flip)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: hint record: %w", err)
		}
		hints = append(hints, sis.Hint{
			TemplateHash: h.TemplateHash,
			TemplateID:   h.TemplateID,
			Flip:         flip,
			Day:          h.Day,
		})
	}
	return rec.Gen, hints, nil
}
