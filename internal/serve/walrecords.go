package serve

import (
	"encoding/binary"
	"fmt"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

// RecHintRollover is the journal record type for hint-table rollovers
// (tag 4; tags 1-3 belong to qoadvisor/internal/bandit). Journaling
// rollovers closes the durability gap the model-only snapshot left —
// a restart used to come back with a trained bandit and an EMPTY hint
// cache — and is what lets followers replicate the hint table in
// decision order, interleaved with the rank and reward records it
// steers.
//
// Each record carries the COMPLETE table (Replace semantics are
// wholesale, matching the daily pipeline's output) plus the cache
// generation it installed, so replay restores not just the hints but
// the exact generation number clients observe in responses — a
// follower's /v2/rank answers are byte-identical to the primary's
// only if the generation matches too. Checkpoints and follower
// bootstraps re-journal the live table above the snapshot watermark,
// so compaction can never truncate the only copy.
const RecHintRollover byte = 4

// EncodeHintRollover frames one hint-table rollover:
//
//	[tag][uvarint generation][uvarint count]
//	per hint: [8-byte hash][string templateID][string flip][uvarint day]
func EncodeHintRollover(gen uint64, hints []sis.Hint) []byte {
	size := 1 + 2*binary.MaxVarintLen64
	for _, h := range hints {
		size += 8 + len(h.TemplateID) + 16
	}
	b := make([]byte, 0, size)
	b = append(b, RecHintRollover)
	b = binary.AppendUvarint(b, gen)
	b = binary.AppendUvarint(b, uint64(len(hints)))
	for _, h := range hints {
		b = binary.LittleEndian.AppendUint64(b, h.TemplateHash)
		b = appendLenPrefixed(b, h.TemplateID)
		b = appendLenPrefixed(b, h.Flip.String())
		b = binary.AppendUvarint(b, uint64(h.Day))
	}
	return b
}

// DecodeHintRollover parses a RecHintRollover payload.
func DecodeHintRollover(p []byte) (gen uint64, hints []sis.Hint, err error) {
	if len(p) == 0 || p[0] != RecHintRollover {
		return 0, nil, fmt.Errorf("serve: not a hint-rollover record")
	}
	b := p[1:]
	if gen, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	var n uint64
	if n, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	// A hint encodes to at least 11 bytes (8-byte hash, two length
	// prefixes, one day varint); a count claiming more than the payload
	// could hold is corruption, not an allocation request.
	const minHintEnc = 11
	if n > uint64(len(b))/minHintEnc {
		return 0, nil, fmt.Errorf("serve: hint record claims %d hints in %d bytes", n, len(b))
	}
	hints = make([]sis.Hint, 0, n)
	for i := uint64(0); i < n; i++ {
		var h sis.Hint
		if len(b) < 8 {
			return 0, nil, fmt.Errorf("serve: hint record truncated at hash")
		}
		h.TemplateHash = binary.LittleEndian.Uint64(b)
		b = b[8:]
		if h.TemplateID, b, err = takeLenPrefixed(b); err != nil {
			return 0, nil, err
		}
		var flip string
		if flip, b, err = takeLenPrefixed(b); err != nil {
			return 0, nil, err
		}
		if h.Flip, err = rules.ParseFlip(flip); err != nil {
			return 0, nil, fmt.Errorf("serve: hint record: %w", err)
		}
		var day uint64
		if day, b, err = takeUvarint(b); err != nil {
			return 0, nil, err
		}
		h.Day = int(day)
		hints = append(hints, h)
	}
	return gen, hints, nil
}

func appendLenPrefixed(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("serve: hint record truncated at varint")
	}
	return v, b[n:], nil
}

func takeLenPrefixed(b []byte) (string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, fmt.Errorf("serve: hint record truncated at string")
	}
	return string(b[:n]), b[n:], nil
}
