package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"qoadvisor/internal/api"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/wal"
)

// safeguard wires the drift package into the server: detection (on a
// primary with -drift enabled), journaled state-machine commits, and
// the enforcement table every rank request consults. The split
// mirrors the cluster: every node enforces (the table replicates via
// RecQuarantine records), only the primary detects (the sketches are
// in-memory statistics; replaying rewards would not reproduce them
// bit-identically anyway, so only transitions are durable).
//
// Commit protocol (the fail-stop invariant): a proposed transition is
// journaled FIRST — the record carrying the full post-transition
// table — and only a successful append commits the detector state and
// swaps the enforcement table. A journal failure leaves both
// untouched and surfaces as *api.Error(CodeInternal); the detector
// re-proposes on the next observation, so the safeguard can never
// hold state the journal does not.
type safeguard struct {
	det   *drift.Detector // nil: enforcement-only node
	table *drift.Table    // never nil
	wal   *wal.WAL        // nil: in-memory server (transitions uncommitted to disk)

	// mu orders transition journal appends against table swaps: two
	// racing transitions must append in the order their tables are
	// installed, or replay would finish on the older table.
	mu sync.Mutex

	blockedRanks atomic.Int64
	transitions  atomic.Int64
	quarantines  atomic.Int64
	probations   atomic.Int64
	restores     atomic.Int64
	manualMoves  atomic.Int64
	journalErrs  atomic.Int64

	// notify observes committed transitions (the incident engine's
	// quarantine trigger). Called with g.mu held, so it must not block.
	notify atomic.Pointer[func(drift.Transition)]
}

// setNotify installs the committed-transition observer.
func (g *safeguard) setNotify(fn func(drift.Transition)) {
	g.notify.Store(&fn)
}

func newSafeguard(det *drift.Detector, w *wal.WAL) *safeguard {
	return &safeguard{det: det, table: drift.NewTable(), wal: w}
}

// blocked is the rank-path enforcement check: one atomic load on the
// (common) no-quarantine path, zero allocations always. The counter
// only advances on an actual block, so the hot path stays untouched.
func (g *safeguard) blocked(hash uint64) bool {
	if !g.table.Blocked(hash) {
		return false
	}
	g.blockedRanks.Add(1)
	return true
}

// observe feeds one attributed reward to the detector and commits any
// transition it proposes. Nil-detector nodes (followers, detection
// disabled) ignore observations.
func (g *safeguard) observe(hash uint64, reward float64) error {
	if g.det == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	tr, ok := g.det.Observe(hash, reward)
	if !ok {
		return nil
	}
	return g.commitLocked(tr)
}

// setManual applies an operator transition from POST /v2/quarantine:
// quarantine forces StateQuarantined, restore forces StateHealthy
// (skipping probation — the operator is overriding the detector).
func (g *safeguard) setManual(hash uint64, quarantine bool) (drift.Transition, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.table.StateOf(hash)
	to := drift.StateQuarantined
	if !quarantine {
		to = drift.StateHealthy
	}
	if cur == to {
		return drift.Transition{}, api.Errorf(api.CodeInvalidRequest,
			"template %016x is already %s", hash, cur)
	}
	tr := drift.Transition{TemplateHash: hash, From: cur, To: to, Manual: true}
	if err := g.commitLocked(tr); err != nil {
		return drift.Transition{}, err
	}
	return tr, nil
}

// commitLocked journals and applies one transition (g.mu held).
func (g *safeguard) commitLocked(tr drift.Transition) error {
	next := g.table.Snapshot()
	if tr.To.Durable() {
		next[tr.TemplateHash] = tr.To
	} else {
		delete(next, tr.TemplateHash)
	}
	if g.wal != nil {
		lsn, err := g.wal.Append(EncodeQuarantine(next, false, tr.Manual))
		if err == nil {
			// Same durability barrier as an accepted reward batch: in sync
			// mode the transition is on disk before it takes effect.
			err = g.wal.Commit(lsn)
		}
		if err != nil {
			g.journalErrs.Add(1)
			return api.Errorf(api.CodeInternal,
				"journaling quarantine transition for template %016x: %v", tr.TemplateHash, err)
		}
	}
	if g.det != nil {
		g.det.Commit(tr)
	}
	g.table.Replace(next)
	g.transitions.Add(1)
	switch tr.To {
	case drift.StateQuarantined:
		g.quarantines.Add(1)
	case drift.StateProbation:
		g.probations.Add(1)
	case drift.StateHealthy:
		g.restores.Add(1)
	}
	if tr.Manual {
		g.manualMoves.Add(1)
	}
	if fn := g.notify.Load(); fn != nil {
		(*fn)(tr)
	}
	return nil
}

// journalState re-appends the durable quarantine table — the
// checkpoint/bootstrap path, called with the snapshot watermark
// already fixed so the record lands above it (exactly like
// journalHints). An empty table is skipped: replay from any snapshot
// starts with an empty table, so absence IS the empty state, and
// skipping keeps restored templates from leaving stale empty records
// to re-apply.
func (g *safeguard) journalState() error {
	if g.wal == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := g.table.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	_, err := g.wal.Append(EncodeQuarantine(snap, true, false))
	return err
}

// restore seeds the safeguard from recovered journal state without
// re-journaling (the records that produced it are already in the
// log). Detector statistics start fresh — only the state machine
// position is durable.
func (g *safeguard) restore(states map[uint64]drift.State) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.table.Replace(states)
	if g.det != nil {
		g.det.Restore(states)
	}
}

// stats assembles the /v2/stats drift block.
func (g *safeguard) stats(templateLimit int) *api.DriftStats {
	out := &api.DriftStats{
		Enabled:      g.det != nil,
		BlockedRanks: g.blockedRanks.Load(),
		Transitions:  g.transitions.Load(),
		Quarantines:  g.quarantines.Load(),
		Probations:   g.probations.Load(),
		Restores:     g.restores.Load(),
		Manual:       g.manualMoves.Load(),
		JournalErrs:  g.journalErrs.Load(),
	}
	out.QuarantinedNow, out.ProbationNow = g.table.Counts()
	if g.det != nil {
		ds := g.det.Stats()
		out.Tracked = ds.Tracked
		out.Observations = ds.Observations
		out.SketchGated = ds.SketchGated
		out.Evictions = ds.Evictions
		out.SketchBytes = ds.SketchBytes
		out.Suspects = ds.Suspects
		for _, ts := range g.det.Templates(templateLimit) {
			out.Templates = append(out.Templates, api.DriftTemplateStats{
				TemplateHash: api.TemplateHash(ts.TemplateHash),
				State:        ts.State.String(),
				Score:        ts.Score,
				FastMean:     ts.FastMean,
				SlowMean:     ts.SlowMean,
				Observations: int64(ts.Observations),
			})
		}
	} else {
		// Enforcement-only node: the table is still the durable truth.
		for hash, st := range g.table.Snapshot() {
			out.Templates = append(out.Templates, api.DriftTemplateStats{
				TemplateHash: api.TemplateHash(hash),
				State:        st.String(),
			})
		}
		sort.Slice(out.Templates, func(i, j int) bool {
			return out.Templates[i].TemplateHash < out.Templates[j].TemplateHash
		})
	}
	return out
}
