package serve

import (
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/obs"
)

// SLO assembly: the server's default service-level objectives, their
// tracker, and the two faces they are reported through (the /v2/stats
// slo block and the qoserved_slo_* metric families).
//
// Objectives are declared over counters the serving layer already
// maintains — the rank routes' latency histograms and the per-route
// status counters — so tracking adds no hot-path work. The tracker
// samples lazily from the stats/metrics paths (every scrape advances
// the windows), which means burn rates are exactly as fresh as the
// monitoring that reads them and no background goroutine is needed.

// SLOConfig parameterizes the server's objectives. The zero value
// selects the defaults below; Disabled switches the subsystem off.
type SLOConfig struct {
	// Disabled turns SLO tracking off entirely (no slo block, no
	// qoserved_slo_* families).
	Disabled bool
	// RankThreshold is the latency bound of the rank-latency objective:
	// a rank request answered within it is "good" (0 = 25ms).
	RankThreshold time.Duration
	// RankTarget is the required good fraction of rank requests
	// (0 = 0.99).
	RankTarget float64
	// RewardThreshold is the latency bound of the reward-latency
	// objective. Reward acknowledgment includes the journal fsync in
	// sync mode, so the bound is wider than the rank one and a sick
	// disk (fsync stalls) burns this objective first (0 = 100ms).
	RewardThreshold time.Duration
	// RewardTarget is the required good fraction of reward requests
	// (0 = 0.99).
	RewardTarget float64
	// AvailabilityTarget is the required non-5xx fraction across every
	// route (0 = 0.999).
	AvailabilityTarget float64
	// Windows are the rolling burn-rate windows (nil = 1m, 5m, 30m).
	Windows []time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.RankThreshold <= 0 {
		c.RankThreshold = 25 * time.Millisecond
	}
	if c.RankTarget <= 0 || c.RankTarget >= 1 {
		c.RankTarget = 0.99
	}
	if c.RewardThreshold <= 0 {
		c.RewardThreshold = 100 * time.Millisecond
	}
	if c.RewardTarget <= 0 || c.RewardTarget >= 1 {
		c.RewardTarget = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	return c
}

// Objective names of the built-in SLOs.
const (
	sloRankLatency   = "rank_latency"
	sloRewardLatency = "reward_latency"
	sloAvailability  = "availability"
)

// initSLO declares the built-in objectives over the HTTP layer's
// counters. Called by New after the routes exist; a nil tracker (the
// Disabled case) disables every SLO surface.
func (s *Server) initSLO(cfg SLOConfig) {
	if cfg.Disabled {
		return
	}
	cfg = cfg.withDefaults()
	t := obs.NewSLOTracker(cfg.Windows...)

	// Rank latency: good = rank requests (both protocol versions)
	// answered at or under the threshold.
	rankRoutes := []*routeStats{s.http.stats[api.RouteV2Rank], s.http.stats[api.RouteV1Rank]}
	t.Add(obs.Objective{
		Name:      sloRankLatency,
		Kind:      obs.SLOLatency,
		Target:    cfg.RankTarget,
		Threshold: cfg.RankThreshold,
		Source: func() (float64, float64) {
			good, total := 0.0, 0.0
			for _, m := range rankRoutes {
				snap := m.lat.Snapshot()
				good += snap.CountBelow(cfg.RankThreshold)
				total += float64(snap.Count)
			}
			return good, total
		},
	})

	// Reward latency: good = reward batches acknowledged at or under
	// the threshold. The acknowledgment path includes the journal
	// append and (in sync mode) the commit fsync, so this objective is
	// the one a sick disk burns — the incident engine's burn trigger
	// fires on it when fsyncs stall.
	rewardRoutes := []*routeStats{s.http.stats[api.RouteV2Reward], s.http.stats[api.RouteV1Reward]}
	t.Add(obs.Objective{
		Name:      sloRewardLatency,
		Kind:      obs.SLOLatency,
		Target:    cfg.RewardTarget,
		Threshold: cfg.RewardThreshold,
		Source: func() (float64, float64) {
			good, total := 0.0, 0.0
			for _, m := range rewardRoutes {
				snap := m.lat.Snapshot()
				good += snap.CountBelow(cfg.RewardThreshold)
				total += float64(snap.Count)
			}
			return good, total
		},
	})

	// Availability: good = requests not answered 5xx, across every
	// route. 4xx is the client's error, not an availability event.
	routes := make([]*routeStats, 0, len(s.http.stats))
	for _, m := range s.http.stats {
		routes = append(routes, m)
	}
	t.Add(obs.Objective{
		Name:   sloAvailability,
		Kind:   obs.SLOAvailability,
		Target: cfg.AvailabilityTarget,
		Source: func() (float64, float64) {
			var total, bad int64
			for _, m := range routes {
				total += m.count.Load()
				bad += m.status5xx.Load()
			}
			return float64(total - bad), float64(total)
		},
	})
	s.slo = t
}

// SLOTracker exposes the tracker (nil when disabled) for embedding
// callers and tests.
func (s *Server) SLOTracker() *obs.SLOTracker { return s.slo }

// sloStats builds the /v2/stats slo block, advancing the sample ring
// first so every read also feeds the windows.
func (s *Server) sloStats() *api.SLOStats {
	if s.slo == nil {
		return nil
	}
	now := time.Now()
	s.slo.Tick(now)
	rep := s.slo.Report(now)
	out := &api.SLOStats{Objectives: make([]api.SLOObjectiveStats, 0, len(rep))}
	for _, st := range rep {
		o := api.SLOObjectiveStats{
			Name:            st.Name,
			Kind:            st.Kind,
			Target:          st.Target,
			ThresholdMicros: st.Threshold.Microseconds(),
		}
		for _, w := range st.Windows {
			o.Windows = append(o.Windows, api.SLOWindowStats{
				Window:          obs.FormatWindow(w.Window),
				Ops:             w.Ops,
				Compliance:      w.Compliance,
				BurnRate:        w.BurnRate,
				BudgetRemaining: w.BudgetRemaining,
			})
		}
		out.Objectives = append(out.Objectives, o)
	}
	return out
}

// collectSLOMetrics contributes the qoserved_slo_* families.
func (s *Server) collectSLOMetrics(e *obs.Exposition) {
	if s.slo == nil {
		return
	}
	now := time.Now()
	s.slo.Tick(now)
	for _, st := range s.slo.Report(now) {
		base := obs.Labels{{Name: "slo", Value: st.Name}}
		e.Gauge("qoserved_slo_target",
			"Declared good-fraction target of the objective.",
			append(append(obs.Labels{}, base...), obs.Label{Name: "kind", Value: st.Kind}), st.Target)
		if st.Kind == obs.SLOLatency {
			e.Gauge("qoserved_slo_latency_threshold_seconds",
				"Latency bound under which a request counts as good.",
				base, st.Threshold.Seconds())
		}
		for _, w := range st.Windows {
			labels := append(append(obs.Labels{}, base...), obs.Label{Name: "window", Value: obs.FormatWindow(w.Window)})
			e.Gauge("qoserved_slo_window_ops",
				"Operations observed inside the rolling window.", labels, w.Ops)
			e.Gauge("qoserved_slo_compliance_ratio",
				"Achieved good fraction over the rolling window.", labels, w.Compliance)
			e.Gauge("qoserved_slo_burn_rate",
				"Error rate over the window divided by the budgeted rate (1.0 = spending the budget exactly).", labels, w.BurnRate)
			e.Gauge("qoserved_slo_error_budget_remaining",
				"Unspent fraction of the window's error budget (negative once overspent).", labels, w.BudgetRemaining)
		}
	}
}
