package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/wal"
)

// statsMetricRules maps every numeric (or boolean) leaf of the
// /v2/stats JSON document to the qoserved_* family that carries the
// same figure on /metrics. An empty family marks a leaf that is
// deliberately NOT a metric series, with the justification alongside —
// every skip must argue for itself. A leaf matching no rule fails the
// conformance test, so adding a stats field without its metric (or a
// conscious skip) is caught at test time, not during an incident.
var statsMetricRules = []struct {
	path   *regexp.Regexp
	family string
	why    string // justification when family is empty
}{
	{path: re(`^uptimeSec$`), family: "qoserved_uptime_seconds"},
	{path: re(`^rankRequests$`), family: "qoserved_rank_requests_total"},
	{path: re(`^hintHits$`), family: "qoserved_rank_hint_hits_total"},
	{path: re(`^banditRanks$`), family: "qoserved_rank_bandit_total"},
	{path: re(`^noops$`), family: "qoserved_rank_noops_total"},
	{path: re(`^cacheSize$`), family: "qoserved_hint_cache_entries"},
	{path: re(`^cacheGeneration$`), family: "qoserved_hint_cache_generation"},
	{path: re(`^cacheShards$`), family: "qoserved_hint_cache_shards"},
	{path: re(`^banditLogSize$`), family: "qoserved_bandit_log_events"},

	{path: re(`^ingest\.enqueued$`), family: "qoserved_ingest_enqueued_total"},
	{path: re(`^ingest\.dropped$`), family: "qoserved_ingest_dropped_total"},
	{path: re(`^ingest\.applied$`), family: "qoserved_ingest_applied_total"},
	{path: re(`^ingest\.unknownEvents$`), family: "qoserved_ingest_unknown_events_total"},
	{path: re(`^ingest\.trainRuns$`), family: "qoserved_ingest_train_runs_total"},
	{path: re(`^ingest\.trainedEvents$`), family: "qoserved_ingest_trained_events_total"},
	{path: re(`^ingest\.journalErrors$`), family: "qoserved_ingest_journal_errors_total"},
	{path: re(`^ingest\.queueDepth$`), family: "qoserved_ingest_queue_depth"},
	{path: re(`^ingest\.queueCap$`), family: "qoserved_ingest_queue_capacity"},

	{path: re(`^wal\.firstLsn$`), family: "qoserved_wal_first_lsn"},
	{path: re(`^wal\.lastLsn$`), family: "qoserved_wal_last_lsn"},
	{path: re(`^wal\.syncedLsn$`), family: "qoserved_wal_synced_lsn"},
	{path: re(`^wal\.appends$`), family: "qoserved_wal_appends_total"},
	{path: re(`^wal\.appendedBytes$`), family: "qoserved_wal_appended_bytes_total"},
	{path: re(`^wal\.syncs$`), family: "qoserved_wal_syncs_total"},
	{path: re(`^wal\.segments$`), family: "qoserved_wal_segments"},
	{path: re(`^wal\.truncatedSegments$`), family: "qoserved_wal_truncated_segments_total"},
	{path: re(`^wal\.checkpoints$`), family: "qoserved_checkpoints_total"},
	{path: re(`^wal\.lastCheckpointLsn$`), family: "qoserved_checkpoint_last_lsn"},
	{path: re(`^wal\.lastCheckpointBytes$`), family: "qoserved_checkpoint_last_bytes"},
	{path: re(`^wal\.lastCheckpointMicros$`), family: "qoserved_checkpoint_last_duration_seconds"},

	{path: re(`^replication\.followers$`), family: "qoserved_replication_followers"},
	{path: re(`^replication\.streamsServed$`), family: "qoserved_replication_streams_served_total"},
	{path: re(`^replication\.recordsShipped$`), family: "qoserved_replication_records_shipped_total"},
	{path: re(`^replication\.bytesShipped$`), family: "qoserved_replication_bytes_shipped_total"},
	{path: re(`^replication\.lagRecords$`), family: "",
		why: "always-serialized follower counter; a primary reports 0 and exposes no lag series (qoserved_replication_lag_records is follower-only)"},
	{path: re(`^replication\.(appliedLsn|frontierLsn|lastTailSec|recordsApplied|reconnects|resyncs)$`),
		family: "", why: "follower-side counters with follower-only families; this conformance server is a primary so they are omitempty-absent anyway"},

	{path: re(`^drift\.enabled$`), family: "qoserved_drift_enabled"},
	{path: re(`^drift\.quarantinedNow$`), family: "qoserved_quarantine_templates"},
	{path: re(`^drift\.probationNow$`), family: "qoserved_quarantine_probation_templates"},
	{path: re(`^drift\.blockedRanks$`), family: "qoserved_quarantine_blocked_ranks_total"},
	{path: re(`^drift\.transitions$`), family: "qoserved_quarantine_transitions_total"},
	{path: re(`^drift\.quarantines$`), family: "qoserved_quarantine_entered_total"},
	{path: re(`^drift\.probations$`), family: "qoserved_quarantine_probations_total"},
	{path: re(`^drift\.restores$`), family: "qoserved_quarantine_restores_total"},
	{path: re(`^drift\.manualTransitions$`), family: "qoserved_quarantine_manual_total"},
	{path: re(`^drift\.journalErrors$`), family: "qoserved_quarantine_journal_errors_total"},
	{path: re(`^drift\.tracked$`), family: "qoserved_drift_tracked_templates"},
	{path: re(`^drift\.suspects$`), family: "qoserved_drift_suspect_templates"},
	{path: re(`^drift\.observations$`), family: "qoserved_drift_observations_total"},
	{path: re(`^drift\.sketchGated$`), family: "qoserved_drift_sketch_gated_total"},
	{path: re(`^drift\.evictions$`), family: "qoserved_drift_evictions_total"},
	{path: re(`^drift\.sketchBytes$`), family: "qoserved_drift_sketch_bytes"},
	{path: re(`^drift\.templates\.`), family: "",
		why: "per-template diagnostic rows (unbounded label cardinality); the aggregate gauges above are the series form"},

	{path: re(`^audit\.queries$`), family: "qoserved_audit_queries_total"},
	{path: re(`^audit\.segmentsScanned$`), family: "qoserved_audit_segments_scanned_total"},
	{path: re(`^audit\.segmentsSkipped$`), family: "qoserved_audit_segments_skipped_total"},
	{path: re(`^audit\.recordsScanned$`), family: "qoserved_audit_records_scanned_total"},
	{path: re(`^audit\.sidecarsBuilt$`), family: "qoserved_audit_sidecars_built_total"},
	{path: re(`^audit\.sidecarsLoaded$`), family: "qoserved_audit_sidecars_loaded_total"},
	{path: re(`^audit\.sidecarsRebuilt$`), family: "qoserved_audit_sidecars_rebuilt_total"},

	{path: re(`^routes\.[^.]+\.count$`), family: "qoserved_http_requests_total"},
	{path: re(`^routes\.[^.]+\.errors$`), family: "qoserved_http_request_errors_total"},
	{path: re(`^routes\.[^.]+\.(totalMicros|maxMicros|p50Micros|p90Micros|p99Micros|p999Micros|hist\..+)$`),
		family: "qoserved_http_request_duration_seconds"},
	{path: re(`^stages\.[^.]+\.`), family: "qoserved_stage_duration_seconds"},

	{path: re(`^slo\.objectives\.\d+\.target$`), family: "qoserved_slo_target"},
	{path: re(`^slo\.objectives\.\d+\.thresholdMicros$`), family: "qoserved_slo_latency_threshold_seconds"},
	{path: re(`^slo\.objectives\.\d+\.windows\.\d+\.ops$`), family: "qoserved_slo_window_ops"},
	{path: re(`^slo\.objectives\.\d+\.windows\.\d+\.compliance$`), family: "qoserved_slo_compliance_ratio"},
	{path: re(`^slo\.objectives\.\d+\.windows\.\d+\.burnRate$`), family: "qoserved_slo_burn_rate"},
	{path: re(`^slo\.objectives\.\d+\.windows\.\d+\.budgetRemaining$`), family: "qoserved_slo_error_budget_remaining"},

	{path: re(`^traces\.retained$`), family: "qoserved_trace_ring_size"},
	{path: re(`^traces\.capacity$`), family: "qoserved_trace_ring_capacity"},
	{path: re(`^traces\.(retainedTotal|retainedSlow|retainedError|retainedSampled)$`),
		family: "qoserved_trace_retained_total"},
	{path: re(`^traces\.evicted$`), family: "qoserved_trace_evicted_total"},
	{path: re(`^traces\.thresholdMicros$`), family: "qoserved_trace_retain_threshold_seconds"},
	{path: re(`^traces\.writeErrors$`), family: "qoserved_trace_write_errors_total"},

	{path: re(`^incidents\.enabled$`), family: "qoserved_incident_enabled"},
	{path: re(`^incidents\.count$`), family: "qoserved_incident_bundles"},
	{path: re(`^incidents\.triggered$`), family: "qoserved_incident_triggered_total"},
	{path: re(`^incidents\.captured$`), family: "qoserved_incident_captured_total"},
	{path: re(`^incidents\.suppressed$`), family: "qoserved_incident_suppressed_total"},
	{path: re(`^incidents\.captureErrors$`), family: "qoserved_incident_capture_errors_total"},
	{path: re(`^incidents\.burnThreshold$`), family: "qoserved_incident_burn_threshold"},
	{path: re(`^incidents\.cooldownSec$`), family: "qoserved_incident_cooldown_seconds"},
	{path: re(`^incidents\.lastAgeSec$`), family: "qoserved_incident_last_age_seconds"},
	{path: re(`^incidents\.lastCaptureMicros$`), family: "qoserved_incident_last_capture_duration_seconds"},

	{path: re(`^version\.modified$`), family: "",
		why: "build identity travels as labels on qoserved_build_info, not as a numeric series"},
}

func re(s string) *regexp.Regexp { return regexp.MustCompile(s) }

// walkLeaves visits every numeric and boolean leaf of a decoded JSON
// document with its dotted path. Strings are identity/label material,
// never counters, and are not visited.
func walkLeaves(prefix string, v any, visit func(path string)) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			walkLeaves(p, val, visit)
		}
	case []any:
		for i, val := range x {
			walkLeaves(fmt.Sprintf("%s.%d", prefix, i), val, visit)
		}
	case float64, bool:
		visit(prefix)
	}
}

// TestStatsMetricsConformance pins the contract between the two
// observability surfaces: every counter and gauge /v2/stats reports —
// including the conditional WAL, replication, drift, audit and SLO
// blocks — must have a qoserved_* family on /metrics (or a justified
// skip in statsMetricRules). The server is deliberately maximal: a
// sync-WAL drift-detecting primary with rank, reward, audit and
// checkpoint traffic, so all conditional stats blocks are present.
func TestStatsMetricsConformance(t *testing.T) {
	ctx := context.Background()
	j, err := wal.Open(wal.Options{Dir: t.TempDir(), Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Catalog: rules.NewCatalog(), Seed: 42, TrainEvery: 8,
		WAL: j, Drift: driftTestConfig(),
		Incidents: &IncidentConfig{Dir: t.TempDir()},
	})
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close(); j.Close() }()

	// Touch every conditional surface: ranks, template-attributed
	// rewards (drift), an audit query, a checkpoint.
	cl := client.New(ts.URL)
	jobs := make([]api.RankRequest, 24)
	for i := range jobs {
		jobs[i] = api.RankRequest{TemplateHash: api.TemplateHash(i%3 + 1), Span: []int{i % 8, 8 + i%8}}
	}
	batch, err := cl.RankBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var events []api.RewardEvent
	for i, res := range batch.Results {
		if res.Error != nil || res.EventID == "" {
			continue
		}
		reward := 0.5
		hash := jobs[i].TemplateHash
		events = append(events, api.RewardEvent{EventID: res.EventID, Reward: &reward, TemplateHash: &hash})
	}
	if _, err := cl.RewardBatch(ctx, events); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AuditRecords(ctx, client.AuditRecordsOptions{Limit: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Checkpoint(t.TempDir() + "/conformance.snap"); err != nil {
		t.Fatal(err)
	}
	// A manual capture populates the incidents block's last-bundle leaves
	// (lastAgeSec, lastCaptureMicros) so their mappings are exercised.
	if _, err := cl.TriggerIncident(ctx); err != nil {
		t.Fatal(err)
	}

	// Raw JSON (not the typed struct): the walk must see exactly what a
	// wire consumer sees, including fields the struct might drop.
	statsBody := httpGet(t, ts.URL+api.RouteV2Stats)
	var doc map[string]any
	if err := json.Unmarshal(statsBody, &doc); err != nil {
		t.Fatal(err)
	}
	for _, required := range []string{"wal", "replication", "drift", "audit", "slo", "traces", "incidents"} {
		if _, ok := doc[required]; !ok {
			t.Fatalf("conformance server must exercise the %q stats block; got keys %v", required, sortedDocKeys(doc))
		}
	}

	families := metricFamilies(t, ts.URL)
	var unmapped []string
	needed := map[string]string{} // family -> example stats path
	walkLeaves("", doc, func(path string) {
		for _, rule := range statsMetricRules {
			if rule.path.MatchString(path) {
				if rule.family != "" {
					needed[rule.family] = path
				}
				return
			}
		}
		unmapped = append(unmapped, path)
	})
	if len(unmapped) > 0 {
		sort.Strings(unmapped)
		t.Fatalf("stats leaves with no metrics mapping (add the family or a justified skip):\n  %s",
			strings.Join(unmapped, "\n  "))
	}
	for family, path := range needed {
		if !families[family] {
			t.Errorf("stats leaf %q maps to %s, which /metrics does not expose", path, family)
		}
	}
}

// metricFamilies scrapes /metrics and returns the set of family names.
func metricFamilies(t *testing.T, base string) map[string]bool {
	t.Helper()
	body := httpGet(t, base+"/metrics")
	fams := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		name = strings.TrimSuffix(name, "_bucket")
		name = strings.TrimSuffix(name, "_sum")
		name = strings.TrimSuffix(name, "_count")
		fams[name] = true
	}
	return fams
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func sortedDocKeys(doc map[string]any) []string {
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
