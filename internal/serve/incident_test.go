package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/wal"
)

// --- trigger layer (pure, injected clock) ---

func TestIncidentTriggerBurnCross(t *testing.T) {
	tr := incidentTriggers{burnThreshold: 2}
	if tr.burnCross(0.5) {
		t.Fatal("below threshold must not cross")
	}
	if !tr.burnCross(2.5) {
		t.Fatal("rising through threshold must cross")
	}
	if tr.burnCross(3.0) {
		t.Fatal("sustained burn must cross exactly once")
	}
	if tr.burnCross(1.0) {
		t.Fatal("falling below is not a crossing")
	}
	if !tr.burnCross(2.0) {
		t.Fatal("re-rising to the threshold must cross again")
	}
}

func TestIncidentTriggerJournalFailure(t *testing.T) {
	tr := incidentTriggers{}
	if tr.journalFailure(0) {
		t.Fatal("no errors yet")
	}
	if !tr.journalFailure(2) {
		t.Fatal("counter advance must trigger")
	}
	if tr.journalFailure(2) {
		t.Fatal("steady counter must not re-trigger")
	}
	if !tr.journalFailure(3) {
		t.Fatal("further advance must trigger again")
	}
}

func TestIncidentTriggerCooldown(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := incidentTriggers{cooldown: 5 * time.Minute}
	if !tr.admit(base, false) {
		t.Fatal("first firing must be admitted")
	}
	if tr.admit(base.Add(time.Minute), false) {
		t.Fatal("firing inside cooldown must be suppressed")
	}
	if !tr.admit(base.Add(6*time.Minute), false) {
		t.Fatal("firing after cooldown must be admitted")
	}
	// Force bypasses the cooldown but still stamps the window.
	if !tr.admit(base.Add(7*time.Minute), true) {
		t.Fatal("forced firing must be admitted inside cooldown")
	}
	if tr.admit(base.Add(8*time.Minute), false) {
		t.Fatal("forced firing must restart the cooldown window")
	}
}

// --- engine + HTTP surface ---

// incidentTestServer builds a sync-WAL drift-enabled primary with the
// incident engine pointed at a temp dir. Tick is an hour so trigger
// evaluation only happens when the test calls evaluate directly.
func incidentTestServer(t *testing.T, cfg IncidentConfig) (*Server, *wal.WAL, *httptest.Server, *client.Client) {
	t.Helper()
	j, err := wal.Open(wal.Options{Dir: t.TempDir(), Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Hour
	}
	srv := New(Config{
		Catalog: rules.NewCatalog(), Seed: 7, TrainEvery: 64,
		WAL: j, Drift: driftTestConfig(),
		Incidents: &cfg,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close(); j.Close() })
	return srv, j, ts, client.New(ts.URL)
}

func TestIncidentDisabledSurfaces(t *testing.T) {
	srv := New(Config{Catalog: rules.NewCatalog(), Seed: 1})
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()
	cl := client.New(ts.URL)
	ctx := context.Background()

	list, err := cl.Incidents(ctx)
	if err != nil {
		t.Fatalf("GET /v2/incidents on a disabled node: %v", err)
	}
	if list.Enabled || len(list.Incidents) != 0 {
		t.Fatalf("disabled node must answer enabled=false, empty list; got %+v", list)
	}
	_, err = cl.TriggerIncident(ctx)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeIncidentsDisabled {
		t.Fatalf("POST on a disabled node must answer %s, got %v", api.CodeIncidentsDisabled, err)
	}
	if srv.Stats().Incidents != nil {
		t.Fatal("disabled node must omit the incidents stats block")
	}
}

func TestIncidentManualCapture(t *testing.T) {
	dir := t.TempDir()
	srv, _, _, cl := incidentTestServer(t, IncidentConfig{Dir: dir, Cooldown: time.Hour})
	ctx := context.Background()

	resp, err := cl.TriggerIncident(ctx)
	if err != nil {
		t.Fatalf("manual capture: %v", err)
	}
	m := resp.Incident
	if m.Reason != incidentManual || m.ID == "" {
		t.Fatalf("unexpected incident meta: %+v", m)
	}
	want := map[string]bool{
		"stats.json": false, "traces.json": false, "histograms.json": false,
		"goroutine.pprof": false, "heap.pprof": false,
	}
	for _, f := range m.Files {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = f.Bytes > 0
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("bundle missing (or empty) artifact %s; files: %+v", name, m.Files)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, m.ID, "meta.json")); err != nil {
		t.Fatalf("bundle meta.json not on disk: %v", err)
	}

	// A second forced capture bypasses the cooldown; list is newest-first.
	resp2, err := cl.TriggerIncident(ctx)
	if err != nil {
		t.Fatalf("second manual capture: %v", err)
	}
	list, err := cl.Incidents(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || len(list.Incidents) != 2 || list.Incidents[0].ID != resp2.Incident.ID {
		t.Fatalf("want 2 bundles newest-first, got %+v", list)
	}

	// Fetch one bundle and stream an artifact through the client.
	got, err := cl.Incident(ctx, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Incident.ID != m.ID {
		t.Fatalf("fetched %q, want %q", got.Incident.ID, m.ID)
	}
	rc, err := cl.IncidentFile(ctx, m.ID, "stats.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("stats.json artifact is not JSON: %v", err)
	}
	if _, ok := doc["wal"]; !ok {
		t.Fatalf("stats.json must carry the full stats document; keys: %v", sortedDocKeys(doc))
	}

	// Path traversal is rejected, unknown bundles 404.
	if _, err := srv.incidents.file(m.ID, "../meta.json"); err == nil {
		t.Fatal("traversal artifact name must be rejected")
	}
	if _, err := cl.Incident(ctx, "no-such-incident"); err == nil {
		t.Fatal("unknown incident must 404")
	}
}

func TestIncidentQuarantineTriggerCaptures(t *testing.T) {
	srv, _, _, cl := incidentTestServer(t, IncidentConfig{Dir: t.TempDir(), Cooldown: time.Hour})
	if _, err := srv.Quarantine(0xabcd, true); err != nil {
		t.Fatal(err)
	}
	// The transition rides the async event channel into the engine's run
	// loop; poll for the capture.
	deadline := time.Now().Add(5 * time.Second)
	for {
		list, err := cl.Incidents(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Incidents) > 0 {
			if got := list.Incidents[0].Reason; got != incidentQuarantine {
				t.Fatalf("bundle reason %q, want %q", got, incidentQuarantine)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no bundle captured for the quarantine transition")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIncidentStallBurnEndToEnd is the flight-recorder proof: an
// injected WAL fsync stall slows a reward request past the SLO
// threshold, the reward-latency burn rate crosses the incident
// threshold, and exactly one bundle is captured (the cooldown and the
// rising-edge trigger suppress repeats) — while the tail sampler
// retains the stalled request's trace, commit-wait stage included.
func TestIncidentStallBurnEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, j, _, cl := incidentTestServer(t, IncidentConfig{
		Dir: dir, BurnThreshold: 2, Cooldown: time.Hour,
	})
	ctx := context.Background()

	// Rank to mint reward event IDs.
	jobs := make([]api.RankRequest, 16)
	for i := range jobs {
		jobs[i] = api.RankRequest{TemplateHash: api.TemplateHash(i%3 + 1), Span: []int{i % 8, 8 + i%8}}
	}
	batch, err := cl.RankBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mkEvents := func(from, to int) []api.RewardEvent {
		var events []api.RewardEvent
		for _, res := range batch.Results[from:to] {
			if res.Error != nil || res.EventID == "" {
				continue
			}
			reward := 0.5
			events = append(events, api.RewardEvent{EventID: res.EventID, Reward: &reward})
		}
		return events
	}

	// Baseline: a fast reward batch, then an evaluation that must not fire.
	if _, err := cl.RewardBatch(ctx, mkEvents(0, 8)); err != nil {
		t.Fatal(err)
	}
	srv.incidents.evaluate(time.Now())
	if n := len(srv.incidents.list()); n != 0 {
		t.Fatalf("no incident expected before the stall, got %d", n)
	}

	// One-shot fsync stall: the next commit waits out the stall, well
	// past both the 100ms reward SLO threshold and the 250ms trace
	// retention threshold.
	const stall = 400 * time.Millisecond
	var armed atomic.Bool
	armed.Store(true)
	j.SetFaults(&wal.Faults{SyncDelay: func() time.Duration {
		if armed.CompareAndSwap(true, false) {
			return stall
		}
		return 0
	}})
	defer j.SetFaults(nil)

	start := time.Now()
	if _, err := cl.RewardBatch(ctx, mkEvents(8, 16)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < stall {
		t.Fatalf("stalled reward batch returned in %v, want >= %v", took, stall)
	}

	// The burn evaluation crosses and captures exactly one bundle.
	srv.incidents.evaluate(time.Now())
	bundles := srv.incidents.list()
	if len(bundles) != 1 {
		t.Fatalf("want exactly 1 bundle after the burn crossing, got %d", len(bundles))
	}
	if bundles[0].Reason != incidentBurn {
		t.Fatalf("bundle reason %q, want %q", bundles[0].Reason, incidentBurn)
	}
	if bundles[0].BurnRate < 2 {
		t.Fatalf("bundle burn rate %v, want >= threshold 2", bundles[0].BurnRate)
	}

	// Sustained burn: further evaluations must not fire again (rising
	// edge latched; the hour-long cooldown would suppress anyway).
	srv.incidents.evaluate(time.Now())
	srv.incidents.evaluate(time.Now())
	if n := len(srv.incidents.list()); n != 1 {
		t.Fatalf("sustained burn must capture once, got %d bundles", n)
	}

	// The retained ring holds the stalled request's trace.
	traces, err := cl.Traces(ctx, client.TracesOptions{Route: api.RouteV2Reward, MinDur: stall})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("stalled reward trace not retained")
	}
	tr := traces.Traces[0]
	if tr.Reason != "slow" || tr.DurMicros < stall.Microseconds() {
		t.Fatalf("retained trace %+v, want reason=slow dur>=%v", tr, stall)
	}
	var commitWait bool
	for _, ev := range traces.TraceEvents {
		if ev.Name == "reward_commit_wait" && time.Duration(ev.Dur*float64(time.Microsecond)) >= stall {
			commitWait = true
		}
	}
	if !commitWait {
		t.Fatal("retained trace must carry the reward_commit_wait stage covering the stall")
	}

	// The bundle's traces.json snapshot carries the same trace.
	b, err := os.ReadFile(filepath.Join(dir, bundles[0].ID, "traces.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap api.TracesResponse
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	var inBundle bool
	for _, m := range snap.Traces {
		if m.Route == api.RouteV2Reward && m.DurMicros >= stall.Microseconds() {
			inBundle = true
		}
	}
	if !inBundle {
		t.Fatal("bundle traces.json must include the stalled reward trace")
	}

	// Stats blocks agree with what happened.
	st := srv.Stats()
	if st.Incidents == nil || st.Incidents.Count != 1 || st.Incidents.LastReason != incidentBurn {
		t.Fatalf("incidents stats block %+v, want count=1 reason=burn", st.Incidents)
	}
	if st.Traces == nil || st.Traces.RetainedSlow < 1 {
		t.Fatalf("traces stats block %+v, want retainedSlow >= 1", st.Traces)
	}
}

// TestIncidentWALFailureTrigger drives the fail-stop trigger: a journal
// append error during a reward batch advances the journal-error
// counter, and the next evaluation captures a "wal" bundle.
func TestIncidentWALFailureTrigger(t *testing.T) {
	// The 5xx the failed batch answers also burns the availability SLO;
	// an unreachable burn threshold isolates the fail-stop trigger.
	srv, j, _, cl := incidentTestServer(t, IncidentConfig{
		Dir: t.TempDir(), Cooldown: time.Hour, BurnThreshold: 1e9,
	})
	ctx := context.Background()

	jobs := []api.RankRequest{{TemplateHash: 1, Span: []int{0, 8}}}
	batch, err := cl.RankBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	srv.incidents.evaluate(time.Now()) // baseline: primes the error-delta trigger

	j.SetFaults(&wal.Faults{AppendErr: func([]byte) error { return errors.New("injected append failure") }})
	reward := 0.5
	if _, err := cl.RewardBatch(ctx, []api.RewardEvent{
		{EventID: batch.Results[0].EventID, Reward: &reward},
	}); err == nil {
		t.Fatal("reward batch must surface the journal failure")
	}
	j.SetFaults(nil)

	srv.incidents.evaluate(time.Now())
	bundles := srv.incidents.list()
	if len(bundles) != 1 || bundles[0].Reason != incidentWAL {
		t.Fatalf("want 1 wal bundle, got %+v", bundles)
	}
}
