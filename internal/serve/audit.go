package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/audit"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/walrec"
)

// The /v2/audit surface is the online face of the journal-audit
// engine: read-only queries over the server's own WAL directory. The
// engine opens lazily on the first audit request (or at the first
// checkpoint, which prebuilds index sidecars for sealed segments) and
// shares its sidecar cache across requests.

// auditLimitDefault/auditLimitMax bound the /v2/audit/records listing.
const (
	auditLimitDefault = 100
	auditLimitMax     = 1000
)

// auditEngine returns the lazily opened audit engine, or the typed
// wal_disabled error on a server that runs without a journal.
func (s *Server) auditEngine() (*audit.Engine, error) {
	if s.wal == nil {
		return nil, api.Errorf(api.CodeWALDisabled, "this server runs without a WAL; nothing to audit")
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	if s.auditEng == nil {
		eng, err := audit.Open(s.wal.Dir())
		if err != nil {
			return nil, err
		}
		s.auditEng = eng
		s.RegisterStage("audit_query", &s.auditLat)
		s.RegisterCollector(s.collectAuditMetrics)
	}
	return s.auditEng, nil
}

// auditStats snapshots the engine's counters for /v2/stats (nil until
// the engine has been opened — the block is additive).
func (s *Server) auditStats() *api.AuditStats {
	s.auditMu.Lock()
	eng := s.auditEng
	s.auditMu.Unlock()
	if eng == nil {
		return nil
	}
	t := eng.Totals()
	return &api.AuditStats{
		Queries:         t.Queries,
		SegmentsScanned: t.SegmentsScanned,
		SegmentsSkipped: t.SegmentsSkipped,
		RecordsScanned:  t.RecordsScanned,
		SidecarsBuilt:   t.SidecarsBuilt,
		SidecarsLoaded:  t.SidecarsLoaded,
		SidecarsRebuilt: t.SidecarsRebuilt,
	}
}

// collectAuditMetrics contributes the qoserved_audit_* families to
// /metrics once the engine exists.
func (s *Server) collectAuditMetrics(e *obs.Exposition) {
	s.auditMu.Lock()
	eng := s.auditEng
	s.auditMu.Unlock()
	if eng == nil {
		return
	}
	t := eng.Totals()
	e.Counter("qoserved_audit_queries_total", "Audit queries served.", nil, float64(t.Queries))
	e.Counter("qoserved_audit_segments_scanned_total", "Journal segments scanned by audit queries.", nil, float64(t.SegmentsScanned))
	e.Counter("qoserved_audit_segments_skipped_total", "Journal segments pruned by audit query planning.", nil, float64(t.SegmentsSkipped))
	e.Counter("qoserved_audit_records_scanned_total", "Journal records scanned by audit queries.", nil, float64(t.RecordsScanned))
	e.Counter("qoserved_audit_records_matched_total", "Journal records matched by audit queries.", nil, float64(t.RecordsMatched))
	e.Counter("qoserved_audit_sidecars_built_total", "Index sidecars built from segment scans.", nil, float64(t.SidecarsBuilt))
	e.Counter("qoserved_audit_sidecars_loaded_total", "Index sidecars loaded from disk.", nil, float64(t.SidecarsLoaded))
	e.Counter("qoserved_audit_sidecars_rebuilt_total", "Index sidecars rejected by validation and rebuilt.", nil, float64(t.SidecarsRebuilt))
}

// buildAuditSidecars is the checkpoint hook: prebuild index sidecars
// for sealed segments so the first audit query after a checkpoint does
// not pay the indexing scan. Best-effort — sidecars are derived data.
func (s *Server) buildAuditSidecars() {
	eng, err := s.auditEngine()
	if err != nil {
		return
	}
	eng.BuildSidecars()
}

// auditScanStats converts engine counters to the wire form.
func auditScanStats(st audit.ScanStats) api.AuditScanStats {
	return api.AuditScanStats{
		SegmentsTotal:   st.SegmentsTotal,
		SegmentsScanned: st.SegmentsScanned,
		SegmentsSkipped: st.SegmentsSkipped,
		SkippedByLSN:    st.SkippedByLSN,
		SkippedByTime:   st.SkippedByTime,
		SkippedByTag:    st.SkippedByTag,
		SkippedByKey:    st.SkippedByKey,
		RecordsScanned:  st.RecordsScanned,
		RecordsMatched:  st.RecordsMatched,
		Truncated:       st.Truncated,
	}
}

// auditPrep resolves the engine and makes the journal's current state
// visible to it: a Sync flushes buffered frames so file reads see
// every acknowledged record.
func (h *httpLayer) auditPrep(w http.ResponseWriter, rid string) (*audit.Engine, bool) {
	eng, err := h.srv.auditEngine()
	if err != nil {
		writeError(w, rid, toAPIError(err))
		return nil, false
	}
	if err := h.srv.wal.Sync(); err != nil {
		writeError(w, rid, api.Errorf(api.CodeInternal, "syncing journal: %v", err))
		return nil, false
	}
	return eng, true
}

// parseLSNParam parses an optional uint64 query parameter.
func parseLSNParam(r *http.Request, name string) (uint64, *api.Error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, api.Errorf(api.CodeInvalidRequest, "bad %s %q", name, q)
	}
	return v, nil
}

// handleAuditRecords lists journal records matching the filter
// parameters: type (comma-separated registry names), event, template
// (64-bit hex), fromLsn/toLsn, limit.
func (h *httpLayer) handleAuditRecords(w http.ResponseWriter, r *http.Request) {
	defer func(start time.Time) { h.srv.auditLat.Observe(time.Since(start)) }(time.Now())
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	eng, ok := h.auditPrep(w, rid)
	if !ok {
		return
	}
	var q audit.Query
	if names := r.URL.Query().Get("type"); names != "" {
		for _, name := range strings.Split(names, ",") {
			tag, err := walrec.ParseTag(strings.TrimSpace(name))
			if err != nil {
				writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "%v", err))
				return
			}
			q.Tags = append(q.Tags, tag)
		}
	}
	q.EventID = r.URL.Query().Get("event")
	if t := r.URL.Query().Get("template"); t != "" {
		v, err := strconv.ParseUint(t, 16, 64)
		if err != nil {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "bad template %q: want 64-bit hex", t))
			return
		}
		q.Template, q.HasTemplate = v, true
	}
	var e *api.Error
	if q.FromLSN, e = parseLSNParam(r, "fromLsn"); e != nil {
		writeError(w, rid, e)
		return
	}
	if q.ToLSN, e = parseLSNParam(r, "toLsn"); e != nil {
		writeError(w, rid, e)
		return
	}
	q.Limit = auditLimitDefault
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "bad limit %q", l))
			return
		}
		q.Limit = min(n, auditLimitMax)
	}

	it, err := eng.Run(q)
	if err != nil {
		writeError(w, rid, toAPIError(err))
		return
	}
	defer it.Close()
	resp := api.AuditRecordsResponse{RequestID: rid, Records: []api.AuditRecord{}}
	for {
		res, ok, err := it.Next()
		if err != nil {
			writeError(w, rid, toAPIError(err))
			return
		}
		if !ok {
			break
		}
		rec := api.AuditRecord{
			LSN:     res.LSN,
			Type:    walrec.Name(res.Rec.Tag),
			Summary: audit.Summary(res),
		}
		if res.Rec.Rank != nil {
			rec.EventID = res.Rec.Rank.EventID
		}
		resp.Records = append(resp.Records, rec)
	}
	resp.Limited = len(resp.Records) == q.Limit
	resp.Scan = auditScanStats(it.Stats())
	writeJSON(w, http.StatusOK, resp)
}

// handleAuditDecision reconstructs one event's decision trace
// (GET /v2/audit/decision?event=...).
func (h *httpLayer) handleAuditDecision(w http.ResponseWriter, r *http.Request) {
	defer func(start time.Time) { h.srv.auditLat.Observe(time.Since(start)) }(time.Now())
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	eventID := r.URL.Query().Get("event")
	if eventID == "" {
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "event parameter required"))
		return
	}
	eng, ok := h.auditPrep(w, rid)
	if !ok {
		return
	}
	tr, err := eng.Trace(eventID)
	if err != nil {
		writeError(w, rid, toAPIError(err))
		return
	}
	resp := api.AuditDecisionResponse{
		EventID:          eventID,
		Found:            tr.Rank != nil,
		TrainedAtLSN:     tr.TrainedAtLSN,
		LineageTruncated: tr.LineageTruncated,
		Scan:             auditScanStats(tr.Scan),
		RequestID:        rid,
	}
	if tr.Rank != nil {
		resp.RankLSN = tr.RankLSN
		resp.Prob = tr.Rank.Prob
		resp.CtxIDs = len(tr.Rank.CtxIDs)
		resp.ActIDs = len(tr.Rank.ActIDs)
	}
	for _, rw := range tr.Rewards {
		resp.Rewards = append(resp.Rewards, api.AuditRewardRef{LSN: rw.LSN, Value: rw.Value})
	}
	for _, lr := range tr.Lineage {
		resp.Lineage = append(resp.Lineage, api.AuditRewardRef{LSN: lr.LSN, Value: lr.Value, EventID: lr.EventID})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAuditTemplate returns a template's steering history
// (GET /v2/audit/template?template=<hex>).
func (h *httpLayer) handleAuditTemplate(w http.ResponseWriter, r *http.Request) {
	defer func(start time.Time) { h.srv.auditLat.Observe(time.Since(start)) }(time.Now())
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	t := r.URL.Query().Get("template")
	if t == "" {
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "template parameter required"))
		return
	}
	hash, err := strconv.ParseUint(t, 16, 64)
	if err != nil {
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest, "bad template %q: want 64-bit hex", t))
		return
	}
	eng, ok := h.auditPrep(w, rid)
	if !ok {
		return
	}
	th, terr := eng.Template(hash)
	if terr != nil {
		writeError(w, rid, toAPIError(terr))
		return
	}
	resp := api.AuditTemplateResponse{
		TemplateHash:      api.TemplateHash(hash),
		Events:            []api.AuditTemplateEvent{},
		Rollovers:         th.Rollovers,
		QuarantineRecords: th.QuarantineRecords,
		Scan:              auditScanStats(th.Scan),
		RequestID:         rid,
	}
	for _, ev := range th.Events {
		out := api.AuditTemplateEvent{
			LSN:      ev.LSN,
			Kind:     ev.Kind,
			Flip:     ev.Flip,
			Day:      ev.Day,
			Gen:      ev.Gen,
			Snapshot: ev.Snapshot,
		}
		if ev.Kind == "quarantine" {
			out.State = drift.State(ev.State).String()
		}
		resp.Events = append(resp.Events, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAuditAsOf reconstructs the model as of an LSN and summarizes
// the result (GET /v2/audit/asof?lsn=...; lsn 0 or absent targets the
// durable frontier). The reconstruction replays the journal with the
// server's own recovery parameters, so for an LSN a checkpoint was
// taken at, the digest matches that checkpoint file's.
func (h *httpLayer) handleAuditAsOf(w http.ResponseWriter, r *http.Request) {
	defer func(start time.Time) { h.srv.auditLat.Observe(time.Since(start)) }(time.Now())
	rid := requestID(r)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	lsn, e := parseLSNParam(r, "lsn")
	if e != nil {
		writeError(w, rid, e)
		return
	}
	eng, ok := h.auditPrep(w, rid)
	if !ok {
		return
	}
	if lsn == 0 {
		lsn = h.srv.wal.SyncedLSN()
	}
	res, err := eng.AsOf(lsn, h.srv.auditOpts)
	if err != nil {
		writeError(w, rid, toAPIError(err))
		return
	}
	// Time travel only works over retained history: if compaction
	// removed records inside the replay window, the reconstruction
	// would silently miss them — reject instead.
	if first := h.srv.wal.FirstLSN(); lsn > res.FromLSN && first > res.FromLSN+1 {
		writeError(w, rid, api.Errorf(api.CodeInvalidRequest,
			"journal history before LSN %d is compacted; reconstruction at %d needs records from %d",
			first, lsn, res.FromLSN+1))
		return
	}
	sum := sha256.Sum256(res.Snapshot)
	writeJSON(w, http.StatusOK, api.AuditAsOfResponse{
		LSN:            res.LSN,
		SnapshotBytes:  len(res.Snapshot),
		SnapshotSHA256: hex.EncodeToString(sum[:]),
		SnapshotSeeded: res.SnapshotSeeded,
		FromLSN:        res.FromLSN,
		Replay: api.AuditReplayStats{
			Records:       res.Replay.Records,
			Ranks:         res.Replay.Ranks,
			Rewards:       res.Replay.Rewards,
			TrainMarks:    res.Replay.TrainMarks,
			TrainRuns:     res.Replay.TrainRuns,
			TrainedEvents: res.Replay.TrainedEvents,
		},
		HintGen:     res.HintGen,
		Hints:       len(res.Hints),
		Quarantined: len(res.Quarantine),
		Scan:        auditScanStats(res.Scan),
		RequestID:   rid,
	})
}
