package serve

import (
	"sync"
	"testing"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
)

func mkHints(n, day int) []sis.Hint {
	out := make([]sis.Hint, n)
	for i := range out {
		out[i] = sis.Hint{
			TemplateHash: uint64(i)*0x9e3779b97f4a7c15 + 1,
			TemplateID:   "T",
			Flip:         rules.Flip{RuleID: i % rules.NumRules, Enable: i%2 == 0},
			Day:          day,
		}
	}
	return out
}

func TestHintCacheReplaceAndLookup(t *testing.T) {
	c := NewHintCache(8)
	if c.Size() != 0 || c.Generation() != 0 {
		t.Fatalf("fresh cache: size=%d gen=%d", c.Size(), c.Generation())
	}
	hints := mkHints(100, 1)
	if gen := c.Replace(hints); gen != 1 {
		t.Fatalf("Replace generation = %d, want 1", gen)
	}
	if c.Size() != 100 {
		t.Fatalf("Size = %d, want 100", c.Size())
	}
	for _, h := range hints {
		got, ok := c.Lookup(h.TemplateHash)
		if !ok {
			t.Fatalf("Lookup(%x) missed", h.TemplateHash)
		}
		if got != h {
			t.Fatalf("Lookup(%x) = %+v, want %+v", h.TemplateHash, got, h)
		}
	}
	if _, ok := c.Lookup(0xdeadbeef); ok {
		t.Error("Lookup of absent template hit")
	}

	// Rollover: a smaller day-2 table fully replaces day 1.
	if gen := c.Replace(mkHints(10, 2)); gen != 2 {
		t.Fatalf("second Replace generation = %d, want 2", gen)
	}
	if c.Size() != 10 {
		t.Fatalf("Size after rollover = %d, want 10", c.Size())
	}
	h, ok := c.Lookup(hints[0].TemplateHash)
	if !ok || h.Day != 2 {
		t.Fatalf("after rollover Lookup = (%+v, %v), want day-2 hint", h, ok)
	}
	if _, ok := c.Lookup(hints[50].TemplateHash); ok {
		t.Error("day-1-only hint survived rollover")
	}
}

func TestHintCacheDuplicateKeepsLast(t *testing.T) {
	c := NewHintCache(4)
	c.Replace([]sis.Hint{
		{TemplateHash: 7, Day: 1, Flip: rules.Flip{RuleID: 1}},
		{TemplateHash: 7, Day: 2, Flip: rules.Flip{RuleID: 2}},
	})
	h, ok := c.Lookup(7)
	if !ok || h.Day != 2 || h.Flip.RuleID != 2 {
		t.Fatalf("duplicate handling: got (%+v, %v), want last occurrence", h, ok)
	}
	if c.Size() != 1 {
		t.Fatalf("Size = %d, want 1", c.Size())
	}
}

func TestHintCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultShards}, {-5, defaultShards}, {1, 1}, {2, 2}, {3, 4}, {17, 32},
	} {
		if got := NewHintCache(tc.in).Shards(); got != tc.want {
			t.Errorf("NewHintCache(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestHintCacheConcurrentSwap hammers lookups while tables hot-swap; the
// -race detector verifies the locking discipline.
func TestHintCacheConcurrentSwap(t *testing.T) {
	c := NewHintCache(8)
	day1, day2 := mkHints(64, 1), mkHints(64, 2)
	c.Replace(day1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h, ok := c.Lookup(day1[i%64].TemplateHash)
				if !ok {
					t.Error("hint vanished during swap")
					return
				}
				if h.Day != 1 && h.Day != 2 {
					t.Errorf("torn hint: day %d", h.Day)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			c.Replace(day2)
		} else {
			c.Replace(day1)
		}
	}
	close(stop)
	wg.Wait()
	if c.Generation() != 51 {
		t.Errorf("Generation = %d, want 51", c.Generation())
	}
}
