package audit_test

import (
	"os"
	"sync"
	"testing"

	"qoadvisor/internal/audit"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/walrec"
)

// The benchmarks share one ≥100k-record multi-segment journal — the
// same fixture the skip test pins — so the cold/indexed comparison and
// the index build rate are measured against a realistic shape. It is
// built once per `go test` process.
var (
	benchOnce sync.Once
	benchDir  string
	benchTmpl uint64
	benchN    int
)

func benchJournal(b *testing.B) (string, uint64) {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "audit-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		benchN = 100_000
		benchTmpl = buildBigJournal(b, dir, benchN, 512<<10)
		benchDir = dir
	})
	if benchDir == "" {
		b.Fatal("bench journal fixture failed to build")
	}
	return benchDir, benchTmpl
}

func dropSidecars(b *testing.B, dir string) {
	b.Helper()
	segs, err := wal.Segments(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Remove(wal.SidecarPath(s.Path)); err != nil && !os.IsNotExist(err) {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditIndexBuild measures the sidecar build rate: a full
// scan-and-index of every sealed segment, reported in records/sec.
func BenchmarkAuditIndexBuild(b *testing.B) {
	dir, _ := benchJournal(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dropSidecars(b, dir)
		eng, err := audit.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.BuildSidecars(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// templateQuery runs the key-filtered rollover listing both query
// benchmarks time — the index's showcase query: two matching records
// buried in a 100k-record journal.
func templateQuery(b *testing.B, eng *audit.Engine, tmpl uint64) {
	b.Helper()
	it, err := eng.Run(audit.Query{
		Tags:     []byte{walrec.TagHintRollover},
		Template: tmpl, HasTemplate: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	matches := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		matches++
	}
	if matches != 2 {
		b.Fatalf("query found %d rollovers, want 2", matches)
	}
}

// BenchmarkAuditColdQuery measures the template-filtered query with no
// sidecars on disk: every segment is scanned and indexed inline.
func BenchmarkAuditColdQuery(b *testing.B) {
	dir, tmpl := benchJournal(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dropSidecars(b, dir)
		eng, err := audit.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		templateQuery(b, eng, tmpl)
	}
}

// BenchmarkAuditIndexedQuery measures the same query against prebuilt
// sidecars loaded from disk by a fresh engine — the planner prunes the
// non-matching segments instead of scanning them.
func BenchmarkAuditIndexedQuery(b *testing.B) {
	dir, tmpl := benchJournal(b)
	warm, err := audit.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.BuildSidecars(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := audit.Open(dir) // fresh engine: sidecars come from disk
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		templateQuery(b, eng, tmpl)
	}
}

// BenchmarkAuditAsOf measures a from-scratch point-in-time model
// reconstruction over the full journal (no snapshot seed — the
// worst case).
func BenchmarkAuditAsOf(b *testing.B) {
	dir, _ := benchJournal(b)
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) == 0 {
		b.Fatalf("segments: %v", err)
	}
	eng, err := audit.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	// Reconstruct as of the middle of the journal so the LSN bound is
	// doing real work too.
	target := segs[len(segs)/2].FirstLSN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.AsOf(target, audit.AsOfOptions{TrainEvery: 256, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Snapshot) == 0 {
			b.Fatal("empty reconstruction")
		}
	}
	b.ReportMetric(float64(target), "records_replayed")
}
