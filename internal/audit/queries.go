package audit

import (
	"fmt"

	"qoadvisor/internal/walrec"
)

// The canned queries answer the three explainability questions the
// roadmap names: the decision trace for an event ("why did job X get
// flip Y" — what was ranked, what rewards came back, when it
// trained), the as-of belief at an LSN (AsOf, in asof.go), and the
// flip/quarantine lineage of a template's steering history.

// TraceReward is one reward observed for the traced event.
type TraceReward struct {
	LSN   uint64
	Value float64
}

// LineageReward is one reward that trained weights the traced
// decision read: its event shares at least one action feature with
// the traced event, and it was applied before the trace's rank.
type LineageReward struct {
	LSN     uint64
	EventID string
	Value   float64
}

// DecisionTrace reconstructs one decision's history from the journal.
type DecisionTrace struct {
	EventID string
	// RankLSN/Rank are the logged decision (nil Rank: the event is not
	// in the journal — never made, or compacted away).
	RankLSN uint64
	Rank    *walrec.Rank
	// Rewards are the event's observed rewards in LSN order.
	Rewards []TraceReward
	// TrainedAtLSN is the first training boundary at or after the last
	// reward — the moment the rewards became weight updates (0 when no
	// train mark follows; periodic threshold training has no marker).
	TrainedAtLSN uint64
	// Lineage are rewards applied BEFORE this decision whose events
	// share action features with it — the observations that trained
	// the weights this decision was scored with. Bounded by the
	// lineage cap, newest first.
	Lineage []LineageReward
	// LineageTruncated reports that the cap cut the lineage short.
	LineageTruncated bool
	// Scan aggregates the iterator counters across the trace's passes.
	Scan ScanStats
}

// maxLineage bounds the lineage pass's memory and output.
const maxLineage = 64

// Trace answers "why did this event get its decision": the rank
// record, its rewards, the training boundary that absorbed them, and
// the reward lineage of the weights it was scored with.
func (e *Engine) Trace(eventID string) (*DecisionTrace, error) {
	tr := &DecisionTrace{EventID: eventID}

	// Pass 1 — the event's own records (bloom-pruned by event key).
	it, err := e.Run(Query{
		Tags:    []byte{walrec.TagRank, walrec.TagRewardBatch},
		EventID: eventID,
	})
	if err != nil {
		return nil, err
	}
	for {
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		switch r.Rec.Tag {
		case walrec.TagRank:
			if tr.Rank == nil { // event IDs are unique; keep the first
				rank := *r.Rec.Rank
				tr.Rank = &rank
				tr.RankLSN = r.LSN
			}
		case walrec.TagRewardBatch:
			for _, entry := range r.Rec.RewardBatch {
				if entry.EventID == eventID {
					tr.Rewards = append(tr.Rewards, TraceReward{LSN: r.LSN, Value: entry.Value})
				}
			}
		}
	}
	addStats(&tr.Scan, it.Stats())
	it.Close()
	if tr.Rank == nil {
		return tr, nil // unknown event: empty trace, not an error
	}

	// Pass 2 — the training boundary that absorbed the last reward.
	if len(tr.Rewards) > 0 {
		last := tr.Rewards[len(tr.Rewards)-1].LSN
		it, err = e.Run(Query{Tags: []byte{walrec.TagTrainMark}, FromLSN: last + 1, Limit: 1})
		if err != nil {
			return nil, err
		}
		r, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if ok {
			tr.TrainedAtLSN = r.LSN
		}
		addStats(&tr.Scan, it.Stats())
		it.Close()
	}

	// Pass 3 — reward lineage: rank records BEFORE this decision that
	// share an action feature, then those events' rewards (still before
	// this decision — later ones trained weights this decision never
	// saw). Memory stays bounded by keeping only the newest candidates.
	if tr.RankLSN > 1 {
		actSet := make(map[uint64]struct{}, len(tr.Rank.ActIDs))
		for _, id := range tr.Rank.ActIDs {
			actSet[id] = struct{}{}
		}
		related := make(map[string]struct{})
		it, err = e.Run(Query{Tags: []byte{walrec.TagRank}, ToLSN: tr.RankLSN - 1})
		if err != nil {
			return nil, err
		}
		for {
			r, ok, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			for _, id := range r.Rec.Rank.ActIDs {
				if _, hit := actSet[id]; hit {
					related[r.Rec.Rank.EventID] = struct{}{}
					break
				}
			}
		}
		addStats(&tr.Scan, it.Stats())
		it.Close()

		if len(related) > 0 {
			it, err = e.Run(Query{Tags: []byte{walrec.TagRewardBatch}, ToLSN: tr.RankLSN - 1})
			if err != nil {
				return nil, err
			}
			for {
				r, ok, err := it.Next()
				if err != nil {
					it.Close()
					return nil, err
				}
				if !ok {
					break
				}
				for _, entry := range r.Rec.RewardBatch {
					if _, hit := related[entry.EventID]; hit {
						tr.Lineage = append(tr.Lineage, LineageReward{LSN: r.LSN, EventID: entry.EventID, Value: entry.Value})
					}
				}
			}
			addStats(&tr.Scan, it.Stats())
			it.Close()
			// Newest first, capped: the most recent observations dominate
			// the weights anyway.
			for i, j := 0, len(tr.Lineage)-1; i < j; i, j = i+1, j-1 {
				tr.Lineage[i], tr.Lineage[j] = tr.Lineage[j], tr.Lineage[i]
			}
			if len(tr.Lineage) > maxLineage {
				tr.Lineage = tr.Lineage[:maxLineage]
				tr.LineageTruncated = true
			}
		}
	}
	return tr, nil
}

// TemplateEvent is one change in a template's steering history.
type TemplateEvent struct {
	LSN uint64
	// Kind is "hint", "hint_removed", "quarantine", or
	// "quarantine_cleared".
	Kind string
	// Flip/Day/Gen describe a hint change (Kind "hint").
	Flip string
	Day  int
	Gen  uint64
	// State is the raw drift state byte for quarantine transitions.
	State byte
	// Snapshot marks a checkpoint re-journal rather than a transition.
	Snapshot bool
}

// TemplateHistory is a template's steering lineage: every hint change
// and quarantine transition the journal records for it.
type TemplateHistory struct {
	TemplateHash uint64
	Events       []TemplateEvent
	// Rollovers/QuarantineRecords count the records inspected (each
	// carries a whole table; only changes produce Events).
	Rollovers         int64
	QuarantineRecords int64
	Scan              ScanStats
}

// Template answers "which flips steered this template, and when":
// the hint/quarantine change history extracted from the wholesale
// table records. Consecutive records that repeat the same state
// (checkpoint re-journals) are collapsed to the first occurrence.
func (e *Engine) Template(hash uint64) (*TemplateHistory, error) {
	th := &TemplateHistory{TemplateHash: hash}
	// Tag filter only — no template key. A removal is proven by a
	// rollover that does NOT carry the hash, and the key filter (bloom
	// included) would prune exactly those records. Tag-based segment
	// skipping still prunes segments with no table records at all.
	it, err := e.Run(Query{
		Tags: []byte{walrec.TagHintRollover, walrec.TagQuarantine},
	})
	if err != nil {
		return nil, err
	}
	defer it.Close()

	var lastFlip string
	var lastDay int
	haveHint := false
	var lastState byte
	haveQuar := false
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch r.Rec.Tag {
		case walrec.TagHintRollover:
			th.Rollovers++
			found := false
			for _, h := range r.Rec.HintRollover.Hints {
				if h.TemplateHash != hash {
					continue
				}
				found = true
				if !haveHint || h.Flip != lastFlip || h.Day != lastDay {
					th.Events = append(th.Events, TemplateEvent{
						LSN: r.LSN, Kind: "hint", Flip: h.Flip, Day: h.Day, Gen: r.Rec.HintRollover.Gen,
					})
					lastFlip, lastDay, haveHint = h.Flip, h.Day, true
				}
				break
			}
			if !found && haveHint {
				th.Events = append(th.Events, TemplateEvent{LSN: r.LSN, Kind: "hint_removed", Gen: r.Rec.HintRollover.Gen})
				haveHint = false
			}
		case walrec.TagQuarantine:
			th.QuarantineRecords++
			st, present := r.Rec.Quarantine.States[hash]
			switch {
			case present && (!haveQuar || st != lastState):
				th.Events = append(th.Events, TemplateEvent{
					LSN: r.LSN, Kind: "quarantine", State: st, Snapshot: r.Rec.Quarantine.Snapshot,
				})
				lastState, haveQuar = st, true
			case !present && haveQuar:
				th.Events = append(th.Events, TemplateEvent{LSN: r.LSN, Kind: "quarantine_cleared", Snapshot: r.Rec.Quarantine.Snapshot})
				haveQuar = false
			}
		}
	}
	th.Scan = it.Stats()
	return th, nil
}

// addStats accumulates one pass's counters into a multi-pass total.
func addStats(dst *ScanStats, s ScanStats) {
	dst.SegmentsTotal += s.SegmentsTotal
	dst.SegmentsScanned += s.SegmentsScanned
	dst.SegmentsSkipped += s.SegmentsSkipped
	dst.SkippedByLSN += s.SkippedByLSN
	dst.SkippedByTime += s.SkippedByTime
	dst.SkippedByTag += s.SkippedByTag
	dst.SkippedByKey += s.SkippedByKey
	dst.RecordsScanned += s.RecordsScanned
	dst.RecordsDecoded += s.RecordsDecoded
	dst.RecordsMatched += s.RecordsMatched
	dst.SidecarsBuilt += s.SidecarsBuilt
	dst.SidecarsLoaded += s.SidecarsLoaded
	dst.SidecarsRebuilt += s.SidecarsRebuilt
	dst.Truncated = dst.Truncated || s.Truncated
}

// Summary renders a one-line human description of a decoded record —
// the CLI listing and the API's summary column share it.
func Summary(r Result) string {
	switch r.Rec.Tag {
	case walrec.TagRank:
		if r.Rec.Rank != nil {
			return fmt.Sprintf("rank %s prob=%.4f ctx=%d act=%d", r.Rec.Rank.EventID, r.Rec.Rank.Prob, len(r.Rec.Rank.CtxIDs), len(r.Rec.Rank.ActIDs))
		}
	case walrec.TagRewardBatch:
		return fmt.Sprintf("reward_batch n=%d", len(r.Rec.RewardBatch))
	case walrec.TagTrainMark:
		return "train_mark"
	case walrec.TagHintRollover:
		if r.Rec.HintRollover != nil {
			return fmt.Sprintf("hint_rollover gen=%d hints=%d", r.Rec.HintRollover.Gen, len(r.Rec.HintRollover.Hints))
		}
	case walrec.TagQuarantine:
		if r.Rec.Quarantine != nil {
			return fmt.Sprintf("quarantine templates=%d snapshot=%v manual=%v", len(r.Rec.Quarantine.States), r.Rec.Quarantine.Snapshot, r.Rec.Quarantine.Manual)
		}
	}
	if name := walrec.Name(r.Rec.Tag); name != "" {
		return name + " (undecoded)"
	}
	return fmt.Sprintf("unknown tag %d", r.Rec.Tag)
}
