// Package audit is the embedded query engine over the decision
// journal: the WAL already records every rank decision, reward batch,
// train mark, hint rollover, and quarantine transition — an
// event-sourced database of the steering system's entire history —
// and this package makes it queryable without any external store.
//
// The design follows the no-statistics embedded-engine playbook:
// streaming iterator composition (segment scan → tag filter → key
// filter → LSN/time window), greedy clause-at-a-time planning that
// orders the cheapest/most-selective predicate first, and cheap
// per-segment index sidecars built on scan rather than by a stats
// pass. Sidecars (wal-NNN.idx) are pure derived data: a sparse
// LSN→offset table every K records, a bloom filter plus count-min
// sketch over the segment's 64-bit membership keys (template hashes
// and hashed event IDs), and the segment's wall-clock bound. Deleting
// them is always safe; they are rebuilt lazily on the next scan and
// eagerly at checkpoint, and never trusted without validating their
// checksum and their source segment's identity and length.
package audit

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"time"

	"qoadvisor/internal/wal"
	"qoadvisor/internal/walrec"
)

const (
	idxMagic   = "QOIDX001"
	idxVersion = 1

	// DefaultSparseEvery is the sparse-index stride: the sidecar
	// records one byte offset every this many records.
	DefaultSparseEvery = 256

	// Count-min geometry: small and fixed — the sketch only has to
	// rank clause selectivity, not be precise.
	cmRows = 4
	cmCols = 1024
)

var idxCRCTable = crc32.MakeTable(crc32.Castagnoli)

// bloom is a fixed-k blocked-free bloom filter over 64-bit keys,
// power-of-two sized, probed by double hashing.
type bloom struct {
	words []uint64
	mask  uint64 // bit-index mask (len(words)*64 - 1)
	k     int
}

func newBloom(nKeys int) bloom {
	bitsWanted := nKeys * 10 // ~10 bits/key ≈ 1% false positives at k=4
	if bitsWanted < 1024 {
		bitsWanted = 1024
	}
	m := uint64(1) << bits.Len64(uint64(bitsWanted-1))
	return bloom{words: make([]uint64, m/64), mask: m - 1, k: 4}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (b bloom) add(key uint64) {
	h1 := splitmix64(key)
	h2 := splitmix64(key^0xdeadbeefcafef00d) | 1
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

func (b bloom) mayContain(key uint64) bool {
	if len(b.words) == 0 {
		return false
	}
	h1 := splitmix64(key)
	h2 := splitmix64(key^0xdeadbeefcafef00d) | 1
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// countMin is a tiny count-min sketch: Estimate upper-bounds how many
// records in the segment carry a key, which is all the planner needs
// to order clauses by selectivity.
type countMin struct {
	cells []uint32 // cmRows × cmCols
}

func newCountMin() countMin { return countMin{cells: make([]uint32, cmRows*cmCols)} }

func (c countMin) add(key uint64) {
	for r := 0; r < cmRows; r++ {
		col := splitmix64(key+uint64(r)*0x9e3779b97f4a7c15) % cmCols
		cell := &c.cells[r*cmCols+int(col)]
		if *cell < ^uint32(0) {
			*cell++
		}
	}
}

func (c countMin) estimate(key uint64) uint64 {
	if len(c.cells) == 0 {
		return 0
	}
	est := ^uint64(0)
	for r := 0; r < cmRows; r++ {
		col := splitmix64(key+uint64(r)*0x9e3779b97f4a7c15) % cmCols
		if v := uint64(c.cells[r*cmCols+int(col)]); v < est {
			est = v
		}
	}
	return est
}

// sidecar is the in-memory form of one segment's index: identity of
// the source segment (for staleness detection), a sparse LSN→offset
// table, per-tag record counts, and membership structures over the
// segment's keys.
type sidecar struct {
	segIndex    uint64
	firstLSN    uint64
	records     uint64
	segBytes    int64 // source segment length at build time
	mtime       time.Time
	sparseEvery uint64
	offsets     []int64 // offsets[i] = byte offset of record firstLSN + i*sparseEvery
	tagCounts   map[byte]uint64
	filter      bloom
	sketch      countMin
}

// lastLSN is the newest LSN the sidecar covers (meaningless when
// records is 0).
func (sc *sidecar) lastLSN() uint64 { return sc.firstLSN + sc.records - 1 }

// seek returns the best known starting point at or below target: a
// byte offset and the LSN of the record found there.
func (sc *sidecar) seek(target uint64) (offset int64, lsn uint64) {
	if target <= sc.firstLSN || len(sc.offsets) == 0 {
		return 0, sc.firstLSN // 0 means "open at the header"
	}
	i := (target - sc.firstLSN) / sc.sparseEvery
	if i >= uint64(len(sc.offsets)) {
		i = uint64(len(sc.offsets)) - 1
	}
	return sc.offsets[i], sc.firstLSN + i*sc.sparseEvery
}

// buildSidecar scans one segment and constructs its index. A torn or
// corrupt tail stops the build at the damage (the index then covers
// the valid prefix); the truncated flag reports it.
func buildSidecar(seg wal.SegmentInfo, sparseEvery int) (*sidecar, bool, error) {
	if sparseEvery <= 0 {
		sparseEvery = DefaultSparseEvery
	}
	st, err := os.Stat(seg.Path)
	if err != nil {
		return nil, false, fmt.Errorf("audit: %w", err)
	}
	sc := &sidecar{
		segIndex:    seg.Index,
		firstLSN:    seg.FirstLSN,
		segBytes:    st.Size(),
		mtime:       st.ModTime(),
		sparseEvery: uint64(sparseEvery),
		tagCounts:   make(map[byte]uint64),
	}
	sr, err := wal.OpenSegment(seg)
	if err != nil {
		return nil, false, err
	}
	defer sr.Close()

	var keys []uint64
	var keybuf []uint64
	truncated := false
	for {
		off := sr.Offset()
		_, payload, rerr := sr.Next()
		if rerr != nil {
			if isEOF(rerr) {
				break
			}
			if wal.IsCorruptRecord(rerr) {
				truncated = true
				break
			}
			return nil, false, rerr
		}
		if sc.records%sc.sparseEvery == 0 {
			sc.offsets = append(sc.offsets, off)
		}
		sc.records++
		if len(payload) > 0 {
			sc.tagCounts[payload[0]]++
			keybuf = keybuf[:0]
			// Unknown or malformed payloads contribute no keys; the tag
			// count above still records their presence.
			if kb, err := walrec.AppendKeys(keybuf, payload); err == nil {
				keys = append(keys, kb...)
			}
		}
	}

	sc.filter = newBloom(len(keys))
	sc.sketch = newCountMin()
	for _, k := range keys {
		sc.filter.add(k)
		sc.sketch.add(k)
	}
	return sc, truncated, nil
}

// encode renders the sidecar's durable form:
//
//	[8B magic][1B version]
//	uvarints: segIndex firstLSN records segBytes mtimeUnixNanos sparseEvery
//	[uvarint nOffsets][uvarint offset deltas]
//	[uvarint nTags]([1B tag][uvarint count])*
//	[uvarint bloomWords][uvarint k][words ×8B LE]
//	[uvarint cmRows][uvarint cmCols][cells ×4B LE]
//	[4B CRC32-C of everything above]
func (sc *sidecar) encode() []byte {
	b := make([]byte, 0, 64+len(sc.offsets)*4+len(sc.filter.words)*8+len(sc.sketch.cells)*4)
	b = append(b, idxMagic...)
	b = append(b, idxVersion)
	b = binary.AppendUvarint(b, sc.segIndex)
	b = binary.AppendUvarint(b, sc.firstLSN)
	b = binary.AppendUvarint(b, sc.records)
	b = binary.AppendUvarint(b, uint64(sc.segBytes))
	b = binary.AppendUvarint(b, uint64(sc.mtime.UnixNano()))
	b = binary.AppendUvarint(b, sc.sparseEvery)
	b = binary.AppendUvarint(b, uint64(len(sc.offsets)))
	prev := int64(0)
	for _, off := range sc.offsets {
		b = binary.AppendUvarint(b, uint64(off-prev)) // offsets ascend
		prev = off
	}
	b = binary.AppendUvarint(b, uint64(len(sc.tagCounts)))
	for _, tag := range walrec.Tags() {
		if n, ok := sc.tagCounts[tag]; ok {
			b = append(b, tag)
			b = binary.AppendUvarint(b, n)
		}
	}
	// Tags outside the registry (journal from a newer binary) still get
	// encoded, after the registered ones, in ascending order.
	for tag := 0; tag < 256; tag++ {
		if walrec.Known(byte(tag)) {
			continue
		}
		if n, ok := sc.tagCounts[byte(tag)]; ok {
			b = append(b, byte(tag))
			b = binary.AppendUvarint(b, n)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(sc.filter.words)))
	b = binary.AppendUvarint(b, uint64(sc.filter.k))
	for _, w := range sc.filter.words {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	b = binary.AppendUvarint(b, cmRows)
	b = binary.AppendUvarint(b, cmCols)
	for _, c := range sc.sketch.cells {
		b = binary.LittleEndian.AppendUint32(b, c)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, idxCRCTable))
}

// decodeSidecar parses and checksums a sidecar file's bytes. Any
// malformation is an error — the caller rebuilds, it never guesses.
func decodeSidecar(b []byte) (*sidecar, error) {
	if len(b) < len(idxMagic)+1+4 {
		return nil, fmt.Errorf("audit: sidecar too short")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, idxCRCTable) != sum {
		return nil, fmt.Errorf("audit: sidecar checksum mismatch")
	}
	if string(body[:8]) != idxMagic {
		return nil, fmt.Errorf("audit: bad sidecar magic %q", body[:8])
	}
	if body[8] != idxVersion {
		return nil, fmt.Errorf("audit: sidecar version %d, want %d", body[8], idxVersion)
	}
	p := body[9:]
	take := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("audit: sidecar truncated")
		}
		p = p[n:]
		return v, nil
	}
	sc := &sidecar{}
	var v uint64
	var err error
	if sc.segIndex, err = take(); err != nil {
		return nil, err
	}
	if sc.firstLSN, err = take(); err != nil {
		return nil, err
	}
	if sc.records, err = take(); err != nil {
		return nil, err
	}
	if v, err = take(); err != nil {
		return nil, err
	}
	sc.segBytes = int64(v)
	if v, err = take(); err != nil {
		return nil, err
	}
	sc.mtime = time.Unix(0, int64(v))
	if sc.sparseEvery, err = take(); err != nil {
		return nil, err
	}
	if sc.sparseEvery == 0 {
		return nil, fmt.Errorf("audit: sidecar sparse stride 0")
	}
	nOff, err := take()
	if err != nil {
		return nil, err
	}
	if nOff > uint64(len(p)) { // each delta is ≥1 byte
		return nil, fmt.Errorf("audit: sidecar claims %d offsets in %d bytes", nOff, len(p))
	}
	sc.offsets = make([]int64, 0, nOff)
	prev := int64(0)
	for i := uint64(0); i < nOff; i++ {
		if v, err = take(); err != nil {
			return nil, err
		}
		prev += int64(v)
		sc.offsets = append(sc.offsets, prev)
	}
	nTags, err := take()
	if err != nil {
		return nil, err
	}
	if nTags > 256 {
		return nil, fmt.Errorf("audit: sidecar claims %d tags", nTags)
	}
	sc.tagCounts = make(map[byte]uint64, nTags)
	for i := uint64(0); i < nTags; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("audit: sidecar truncated at tag table")
		}
		tag := p[0]
		p = p[1:]
		if v, err = take(); err != nil {
			return nil, err
		}
		sc.tagCounts[tag] = v
	}
	nWords, err := take()
	if err != nil {
		return nil, err
	}
	k, err := take()
	if err != nil {
		return nil, err
	}
	if nWords > uint64(len(p))/8 || nWords&(nWords-1) != 0 || k == 0 || k > 16 {
		return nil, fmt.Errorf("audit: sidecar bloom geometry invalid (%d words, k=%d)", nWords, k)
	}
	sc.filter = bloom{words: make([]uint64, nWords), mask: nWords*64 - 1, k: int(k)}
	for i := range sc.filter.words {
		sc.filter.words[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	p = p[nWords*8:]
	rows, err := take()
	if err != nil {
		return nil, err
	}
	cols, err := take()
	if err != nil {
		return nil, err
	}
	if rows != cmRows || cols != cmCols || uint64(len(p)) < rows*cols*4 {
		return nil, fmt.Errorf("audit: sidecar sketch geometry invalid (%d×%d in %d bytes)", rows, cols, len(p))
	}
	sc.sketch = countMin{cells: make([]uint32, rows*cols)}
	for i := range sc.sketch.cells {
		sc.sketch.cells[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	return sc, nil
}

// loadSidecar reads a sidecar file and validates it against its source
// segment: checksum, matching identity (index, first LSN), and a
// byte-identical source length. Any mismatch is an error — stale and
// corrupt sidecars are rebuilt, never trusted.
func loadSidecar(seg wal.SegmentInfo) (*sidecar, error) {
	raw, err := os.ReadFile(wal.SidecarPath(seg.Path))
	if err != nil {
		return nil, err // includes os.ErrNotExist: caller builds
	}
	sc, err := decodeSidecar(raw)
	if err != nil {
		return nil, err
	}
	if sc.segIndex != seg.Index || sc.firstLSN != seg.FirstLSN {
		return nil, fmt.Errorf("audit: sidecar identifies segment %d (lsn %d), file is segment %d (lsn %d)",
			sc.segIndex, sc.firstLSN, seg.Index, seg.FirstLSN)
	}
	st, err := os.Stat(seg.Path)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	if st.Size() != sc.segBytes {
		return nil, fmt.Errorf("audit: sidecar built at %d segment bytes, segment now %d (stale)", sc.segBytes, st.Size())
	}
	return sc, nil
}

// writeSidecar persists the sidecar atomically beside its segment.
// Failure is non-fatal for the caller — the in-memory copy still
// serves this process; read-only journal copies simply stay unindexed
// on disk.
func writeSidecar(seg wal.SegmentInfo, sc *sidecar) error {
	path := wal.SidecarPath(seg.Path)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".idx-*")
	if err != nil {
		return err
	}
	data := sc.encode()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
