package audit

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/wal"
	"qoadvisor/internal/walrec"
)

// Engine is an embedded, read-only query engine over one journal
// directory. It owns an in-memory sidecar cache (backed by the .idx
// files beside the segments) and hands out streaming iterators; it
// never opens the journal for writing, so it can run beside a live
// WAL or over a copied directory. Safe for concurrent use.
type Engine struct {
	dir         string
	sparseEvery int

	mu       sync.Mutex
	sidecars map[uint64]*sidecar // by segment index

	// Cumulative counters across all queries (atomics; exported via
	// Totals for the metrics surface).
	totSegScanned   atomic.Int64
	totSegSkipped   atomic.Int64
	totRecScanned   atomic.Int64
	totRecMatched   atomic.Int64
	totSidecarBuilt atomic.Int64
	totSidecarLoad  atomic.Int64
	totSidecarRebu  atomic.Int64
	totQueries      atomic.Int64
}

// Open builds an engine over a journal directory. The directory must
// exist; holding zero segments is fine (queries return nothing).
func Open(dir string) (*Engine, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("audit: %s is not a directory", dir)
	}
	return &Engine{dir: dir, sparseEvery: DefaultSparseEvery, sidecars: make(map[uint64]*sidecar)}, nil
}

// Dir returns the journal directory the engine reads.
func (e *Engine) Dir() string { return e.dir }

// Totals snapshots the engine's cumulative counters.
type Totals struct {
	Queries         int64
	SegmentsScanned int64
	SegmentsSkipped int64
	RecordsScanned  int64
	RecordsMatched  int64
	SidecarsBuilt   int64
	SidecarsLoaded  int64
	SidecarsRebuilt int64
}

// Totals reports the engine's lifetime counters.
func (e *Engine) Totals() Totals {
	return Totals{
		Queries:         e.totQueries.Load(),
		SegmentsScanned: e.totSegScanned.Load(),
		SegmentsSkipped: e.totSegSkipped.Load(),
		RecordsScanned:  e.totRecScanned.Load(),
		RecordsMatched:  e.totRecMatched.Load(),
		SidecarsBuilt:   e.totSidecarBuilt.Load(),
		SidecarsLoaded:  e.totSidecarLoad.Load(),
		SidecarsRebuilt: e.totSidecarRebu.Load(),
	}
}

// Query selects journal records. All clauses are conjunctive; zero
// values mean "unbounded". Time bounds are segment-granular: the
// journal stores no per-record timestamps, so a segment's modification
// time bounds every record in it (records in segment i were written no
// later than mtime(i) and no earlier than mtime(i-1)) — conservative,
// never lossy.
type Query struct {
	// Tags restricts to these record types (empty = all).
	Tags []byte
	// Template restricts to records that reference this template hash
	// (hint rollovers and quarantine tables carry template hashes).
	Template    uint64
	HasTemplate bool
	// EventID restricts to records that reference this event (rank
	// records and reward batches).
	EventID string
	// FromLSN/ToLSN bound the LSN window inclusively (0 = unbounded).
	FromLSN, ToLSN uint64
	// Since/Until bound wall-clock time (zero = unbounded).
	Since, Until time.Time
	// Limit stops the iterator after this many matches (0 = unlimited).
	Limit int
}

// key returns the membership key the query filters on, if any.
func (q Query) key() (uint64, bool) {
	if q.HasTemplate {
		return q.Template, true
	}
	if q.EventID != "" {
		return walrec.HashEventID(q.EventID), true
	}
	return 0, false
}

// ScanStats counts what one query's iterator actually touched — the
// observable proof that planning skipped work (segment skips are
// attributed to the clause that pruned them).
type ScanStats struct {
	SegmentsTotal   int64
	SegmentsScanned int64
	SegmentsSkipped int64
	SkippedByLSN    int64
	SkippedByTime   int64
	SkippedByTag    int64
	SkippedByKey    int64
	RecordsScanned  int64 // frames read from disk
	RecordsDecoded  int64 // payloads fully decoded
	RecordsMatched  int64 // results delivered
	SidecarsBuilt   int64
	SidecarsLoaded  int64
	SidecarsRebuilt int64
	// Truncated reports a torn tail on the final segment (crash
	// artifact): the scan ended cleanly just before it.
	Truncated bool
}

// Result is one matching record. Raw is the record's wire payload,
// valid only until the next call to Next — copy it to keep it.
type Result struct {
	LSN uint64
	Rec walrec.Record
	Raw []byte
}

// Iter streams query results in LSN order. Not safe for concurrent
// use. Close releases the open segment, if any.
type Iter struct {
	e     *Engine
	q     Query
	key   uint64
	hasK  bool
	segs  []wal.SegmentInfo
	cur   int // next segment to open
	sr    *wal.SegmentReader
	last  bool // sr is the final segment
	stats ScanStats
	done  bool
	nkeys []uint64 // scratch for AppendKeys
}

// Run opens a streaming iterator for q. The segment list is fixed at
// call time; records appended afterwards are not observed.
func (e *Engine) Run(q Query) (*Iter, error) {
	segs, err := wal.Segments(e.dir)
	if err != nil {
		return nil, err
	}
	e.totQueries.Add(1)
	it := &Iter{e: e, q: q, segs: segs}
	it.key, it.hasK = q.key()
	it.stats.SegmentsTotal = int64(len(segs))
	return it, nil
}

// Next returns the next match. ok=false means the stream is exhausted
// (check err: nil for a clean end — including a skipped torn tail on
// the final segment, reported in Stats().Truncated — non-nil for
// mid-log damage or I/O failure).
func (it *Iter) Next() (Result, bool, error) {
	if it.done {
		return Result{}, false, nil
	}
	for {
		if it.q.Limit > 0 && it.stats.RecordsMatched >= int64(it.q.Limit) {
			it.finish()
			return Result{}, false, nil
		}
		if it.sr == nil {
			if !it.advance() {
				it.finish()
				return Result{}, false, nil
			}
		}
		lsn, payload, err := it.sr.Next()
		if err != nil {
			it.sr.Close()
			it.sr = nil
			if errors.Is(err, io.EOF) {
				continue // next segment
			}
			if wal.IsCorruptRecord(err) && it.last {
				// Torn tail on the final segment: the crash artifact the
				// journal's own recovery also skips.
				it.stats.Truncated = true
				it.finish()
				return Result{}, false, nil
			}
			it.finish()
			return Result{}, false, fmt.Errorf("audit: segment damaged mid-log: %w", err)
		}
		it.stats.RecordsScanned++
		if it.q.ToLSN != 0 && lsn > it.q.ToLSN {
			// Records are LSN-dense and ascending: nothing later matches.
			it.sr.Close()
			it.sr = nil
			it.finish()
			return Result{}, false, nil
		}
		if lsn < it.q.FromLSN {
			continue
		}
		if len(it.q.Tags) > 0 && len(payload) > 0 && !tagIn(it.q.Tags, payload[0]) {
			continue
		}
		if it.hasK {
			it.nkeys = it.nkeys[:0]
			keys, err := walrec.AppendKeys(it.nkeys, payload)
			if err != nil {
				continue // unknown/malformed records carry no keys
			}
			it.nkeys = keys
			if !containsKey(keys, it.key) {
				continue
			}
		}
		rec, err := walrec.Decode(payload)
		if err != nil {
			if len(it.q.Tags) == 0 && !it.hasK {
				// Unfiltered listing: surface unknown tags as opaque rows
				// rather than hiding them.
				it.stats.RecordsDecoded++
				it.stats.RecordsMatched++
				it.e.totRecMatched.Add(1)
				return Result{LSN: lsn, Rec: walrec.Record{Tag: payload[0]}, Raw: payload}, true, nil
			}
			continue
		}
		it.stats.RecordsDecoded++
		// Hashed event-ID keys can collide: verify exactly on the
		// decoded record.
		if it.q.EventID != "" && !recordMentionsEvent(rec, it.q.EventID) {
			continue
		}
		it.stats.RecordsMatched++
		it.e.totRecMatched.Add(1)
		return Result{LSN: lsn, Rec: rec, Raw: payload}, true, nil
	}
}

// Stats reports what the iterator touched so far (final after Next
// returns ok=false).
func (it *Iter) Stats() ScanStats { return it.stats }

// Close releases the iterator's open segment.
func (it *Iter) Close() {
	if it.sr != nil {
		it.sr.Close()
		it.sr = nil
	}
	it.done = true
}

func (it *Iter) finish() {
	it.done = true
	it.e.totRecScanned.Add(it.stats.RecordsScanned)
	it.e.totSegScanned.Add(it.stats.SegmentsScanned)
	it.e.totSegSkipped.Add(it.stats.SegmentsSkipped)
}

// advance plans and opens the next segment worth scanning; false means
// no segments remain. This is the greedy clause-at-a-time step: for
// each candidate segment the prune predicates run cheapest-first (LSN
// bounds from the directory scan alone, then wall-clock bounds, then
// the sidecar's tag counts and key membership ordered by their
// estimated selectivity), and the first predicate that proves the
// segment empty skips it without touching its bytes.
func (it *Iter) advance() bool {
	for it.cur < len(it.segs) {
		i := it.cur
		it.cur++
		seg := it.segs[i]
		last := i == len(it.segs)-1

		// Upper LSN bound for the segment: the next segment's first LSN
		// pins it exactly and for free; otherwise the sidecar's record
		// count does (when one is consulted).
		var segLast uint64 // 0 = unknown
		if !last {
			if next := it.segs[i+1].FirstLSN; next > seg.FirstLSN {
				segLast = next - 1
			}
		}

		// Clause 1 — LSN window (no I/O at all).
		if it.q.ToLSN != 0 && seg.FirstLSN > it.q.ToLSN {
			// Everything from here on starts above the window.
			n := int64(len(it.segs) - i)
			it.stats.SegmentsSkipped += n
			it.stats.SkippedByLSN += n
			it.cur = len(it.segs)
			return false
		}
		if it.q.FromLSN != 0 && segLast != 0 && segLast < it.q.FromLSN {
			it.stats.SegmentsSkipped++
			it.stats.SkippedByLSN++
			continue
		}

		// Clause 2 — wall-clock window (one stat; segment-granular).
		if !it.q.Since.IsZero() || !it.q.Until.IsZero() {
			st, err := os.Stat(seg.Path)
			if err == nil {
				// All records in the segment were written by mtime; records
				// after the previous segment's mtime.
				if !it.q.Since.IsZero() && st.ModTime().Before(it.q.Since) {
					it.stats.SegmentsSkipped++
					it.stats.SkippedByTime++
					continue
				}
				if !it.q.Until.IsZero() && i > 0 {
					if pst, perr := os.Stat(it.segs[i-1].Path); perr == nil && pst.ModTime().After(it.q.Until) {
						it.stats.SegmentsSkipped++
						it.stats.SkippedByTime++
						continue
					}
				}
			}
		}

		// Clauses 3/4 — sidecar-backed membership, ordered greedily by
		// estimated selectivity (fewest estimated matches first, so the
		// likeliest pruner runs first).
		needTag := len(it.q.Tags) > 0
		needKey := it.hasK
		var sc *sidecar
		if needTag || needKey || (it.q.FromLSN > seg.FirstLSN) {
			sc = it.e.sidecarFor(seg, last, &it.stats)
		}
		if sc != nil && (needTag || needKey) {
			type clause struct {
				est   uint64
				prune func() bool // true = segment provably empty
				blame *int64
			}
			var clauses []clause
			if needTag {
				var est uint64
				for _, t := range it.q.Tags {
					est += sc.tagCounts[t]
				}
				clauses = append(clauses, clause{est: est, blame: &it.stats.SkippedByTag, prune: func() bool {
					return est == 0
				}})
			}
			if needKey {
				est := sc.sketch.estimate(it.key)
				key := it.key
				clauses = append(clauses, clause{est: est, blame: &it.stats.SkippedByKey, prune: func() bool {
					return !sc.filter.mayContain(key)
				}})
			}
			sort.SliceStable(clauses, func(a, b int) bool { return clauses[a].est < clauses[b].est })
			pruned := false
			for _, c := range clauses {
				if c.prune() {
					it.stats.SegmentsSkipped++
					*c.blame++
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
		}
		if sc != nil && it.q.FromLSN != 0 && segLast == 0 && sc.records > 0 && sc.lastLSN() < it.q.FromLSN && sc.segBytes == segSize(seg.Path) {
			// Final segment, sidecar fresh: its record count bounds the LSNs.
			it.stats.SegmentsSkipped++
			it.stats.SkippedByLSN++
			continue
		}

		// Scan it — seeking through the sparse index when the window
		// starts past the segment's first record.
		var sr *wal.SegmentReader
		var err error
		if sc != nil && it.q.FromLSN > seg.FirstLSN {
			off, lsn := sc.seek(it.q.FromLSN)
			if off > 0 {
				sr, err = wal.OpenSegmentAt(seg, off, lsn)
			}
		}
		if sr == nil && err == nil {
			sr, err = wal.OpenSegment(seg)
		}
		if err != nil {
			// The segment vanished (compacted mid-query) or is unreadable:
			// surface it — silently skipping would fake a complete answer.
			it.stats.SegmentsSkipped++
			continue
		}
		it.stats.SegmentsScanned++
		it.sr = sr
		it.last = last
		return true
	}
	return false
}

// sidecarFor returns the segment's sidecar, from cache, disk, or a
// fresh build — or nil when the segment cannot be indexed right now
// (scans proceed unindexed). Freshness is re-checked against the file
// on every cache hit, so an active segment that grew is re-indexed
// rather than trusted.
func (e *Engine) sidecarFor(seg wal.SegmentInfo, active bool, stats *ScanStats) *sidecar {
	size := segSize(seg.Path)
	if size < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if sc, ok := e.sidecars[seg.Index]; ok {
		if sc.segBytes == size && sc.firstLSN == seg.FirstLSN {
			return sc
		}
		delete(e.sidecars, seg.Index) // stale (segment grew or was replaced)
	}
	hadFile := false
	if sc, err := loadSidecar(seg); err == nil {
		e.sidecars[seg.Index] = sc
		stats.SidecarsLoaded++
		e.totSidecarLoad.Add(1)
		return sc
	} else if !errors.Is(err, os.ErrNotExist) {
		hadFile = true // present but stale/corrupt: rebuild, never trust
	}
	sc, _, err := buildSidecar(seg, e.sparseEvery)
	if err != nil {
		return nil
	}
	e.sidecars[seg.Index] = sc
	stats.SidecarsBuilt++
	e.totSidecarBuilt.Add(1)
	if hadFile {
		stats.SidecarsRebuilt++
		e.totSidecarRebu.Add(1)
	}
	// Persist for the next process; failure (read-only dir) is fine —
	// the in-memory copy serves this one.
	if !active {
		writeSidecar(seg, sc)
	}
	return sc
}

// BuildSidecars eagerly indexes every sealed segment (all but the
// last) — the checkpoint-time hook, so steady-state queries never pay
// the lazy first-scan build. Returns how many sidecars were built.
func (e *Engine) BuildSidecars() (int, error) {
	segs, err := wal.Segments(e.dir)
	if err != nil {
		return 0, err
	}
	var stats ScanStats
	built := 0
	for i, seg := range segs {
		if i == len(segs)-1 {
			break // active segment: still growing, index would go stale
		}
		before := stats.SidecarsBuilt
		if e.sidecarFor(seg, false, &stats) == nil {
			continue
		}
		if stats.SidecarsBuilt > before {
			built++
		}
	}
	return built, nil
}

func segSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return st.Size()
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

func tagIn(tags []byte, t byte) bool {
	for _, x := range tags {
		if x == t {
			return true
		}
	}
	return false
}

func containsKey(keys []uint64, k uint64) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// recordMentionsEvent verifies an event-ID match exactly on the
// decoded record (hashed membership keys can collide).
func recordMentionsEvent(rec walrec.Record, eventID string) bool {
	switch rec.Tag {
	case walrec.TagRank:
		return rec.Rank != nil && rec.Rank.EventID == eventID
	case walrec.TagRewardBatch:
		for _, e := range rec.RewardBatch {
			if e.EventID == eventID {
				return true
			}
		}
	}
	return false
}
