package audit

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/walrec"
)

// AsOfOptions configure a point-in-time reconstruction. They must
// match the serving configuration of the journaled run (same 0-default
// / negative-unbounded semantics as serve.Config) or replay would
// train — or evict — on different boundaries than the live run did.
type AsOfOptions struct {
	// SnapshotPath names a model snapshot to seed replay from. It is
	// used only when it exists AND its WAL watermark is at or below the
	// target LSN; otherwise replay starts from the journal's beginning.
	SnapshotPath string
	// TrainEvery is the ingestion training batch size (0 = default).
	TrainEvery int
	// MaxLogEvents caps the open-event log (0 = serving default 16384,
	// negative = unbounded).
	MaxLogEvents int
	// Seed is the learner's RNG seed (must match the serving seed).
	Seed int64
}

// AsOfResult is a reconstructed point-in-time model state.
type AsOfResult struct {
	// LSN is the reconstruction point.
	LSN uint64
	// Snapshot is the model rendered in the snapshot file format — for
	// a target LSN that a live checkpoint was taken at, byte-identical
	// to that checkpoint's file.
	Snapshot []byte
	// SnapshotSeeded reports whether a snapshot file seeded the replay;
	// FromLSN is its watermark (0 when replay started from the
	// beginning).
	SnapshotSeeded bool
	FromLSN        uint64
	// Replay counts what the journal suffix contributed.
	Replay bandit.ReplayStats
	// HintGen/Hints reflect the newest hint rollover at or below LSN
	// (nil when none is visible in the replayed window).
	HintGen uint64
	Hints   []walrec.Hint
	// Quarantine is the durable safeguard table as of LSN (nil when no
	// quarantine record is visible in the replayed window).
	Quarantine map[uint64]byte
	// Scan describes the journal read that fed the replay.
	Scan ScanStats
}

// AsOf reconstructs what the model believed as of LSN lsn: it loads
// the nearest usable snapshot, replays journal records in
// (watermark, lsn] through the same dispatch the live server recovers
// with, and renders the result in the snapshot format.
//
// Determinism contract: for an LSN at which the live server took a
// checkpoint, the returned bytes are identical to that checkpoint's
// snapshot file. The checkpoint barrier journals a train mark before
// capturing the model, so the mark — and any reward batch straddling
// the boundary — is replayed in-log; no tail flush is applied here
// (stopping exactly at lsn IS the reconstruction; a drain-style extra
// train would reproduce a shutdown, not the asked-for instant).
func (e *Engine) AsOf(lsn uint64, opts AsOfOptions) (*AsOfResult, error) {
	res := &AsOfResult{LSN: lsn}

	var svc *bandit.Service
	if opts.SnapshotPath != "" {
		f, err := os.Open(opts.SnapshotPath)
		switch {
		case err == nil:
			loaded, lerr := bandit.Load(f, opts.Seed)
			f.Close()
			if lerr != nil {
				return nil, fmt.Errorf("audit: loading snapshot %s: %w", opts.SnapshotPath, lerr)
			}
			if loaded.WALWatermark() <= lsn {
				svc = loaded
				res.SnapshotSeeded = true
				res.FromLSN = loaded.WALWatermark()
			}
			// A snapshot from the target's future is useless for this
			// reconstruction: fall through to a from-scratch replay.
		case errors.Is(err, os.ErrNotExist):
			// no snapshot yet: replay from the beginning
		default:
			return nil, fmt.Errorf("audit: %w", err)
		}
	}
	if svc == nil {
		svc = bandit.New(bandit.DefaultConfig(opts.Seed))
	}
	switch {
	case opts.MaxLogEvents == 0:
		svc.SetMaxLog(1 << 14)
	case opts.MaxLogEvents > 0:
		svc.SetMaxLog(opts.MaxLogEvents)
	default:
		svc.SetMaxLog(0)
	}

	rp := bandit.NewReplayer(svc, opts.TrainEvery)
	it, err := e.Run(Query{FromLSN: res.FromLSN + 1, ToLSN: lsn})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch {
		case r.Rec.Tag == walrec.TagHintRollover && r.Rec.HintRollover != nil:
			res.HintGen = r.Rec.HintRollover.Gen
			res.Hints = r.Rec.HintRollover.Hints
			svc.SetWALWatermark(r.LSN)
		case r.Rec.Tag == walrec.TagQuarantine && r.Rec.Quarantine != nil:
			res.Quarantine = r.Rec.Quarantine.States
			svc.SetWALWatermark(r.LSN)
		default:
			// Bandit-owned (and unknown — those must fail loudly) records
			// go through the same Replayer dispatch recovery uses.
			if err := rp.Apply(r.LSN, r.Raw); err != nil {
				return nil, err
			}
		}
	}
	res.Scan = it.Stats()
	res.Replay = rp.Stats

	// A checkpoint records LastLSN at capture time even when the newest
	// records are serve-owned; mirror that so the rendered header's
	// wal= field says lsn, not the last bandit-owned record.
	svc.SetWALWatermark(lsn)

	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		return nil, err
	}
	res.Snapshot = buf.Bytes()
	return res, nil
}
