package audit_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/audit"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/walrec"
)

const (
	asOfSeed       = 42
	asOfTrainEvery = 8
)

// asOfRig is a WAL-backed live server the as-of tests checkpoint
// against, driven over real HTTP so the journal carries exactly what
// production carries.
type asOfRig struct {
	srv *serve.Server
	cl  *client.Client
	j   *wal.WAL
	dir string
}

func newAsOfRig(t *testing.T, segBytes int64) *asOfRig {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Seed: asOfSeed, TrainEvery: asOfTrainEvery, QueueSize: 1024, WAL: j})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &asOfRig{srv: srv, cl: client.New(ts.URL), j: j, dir: dir}
}

func (r *asOfRig) rank(t *testing.T, n, salt int) []string {
	t.Helper()
	jobs := make([]api.RankRequest, n)
	for i := range jobs {
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(uint64(salt)<<32 | uint64(i)),
			Span:         []int{3 + (i+salt)%50, 60 + (i*7+salt)%50, 120 + i%30},
			RowCount:     float64(1000 * (i + 1)),
		}
	}
	resp, err := r.cl.RankBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, n)
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("job %d rejected: %v", i, res.Error)
		}
		ids = append(ids, res.EventID)
	}
	return ids
}

func (r *asOfRig) reward(t *testing.T, ids []string, v float64) {
	t.Helper()
	events := make([]api.RewardEvent, len(ids))
	for i, id := range ids {
		val := v + float64(i)*0.01
		events[i] = api.RewardEvent{EventID: id, Reward: &val}
	}
	resp, err := r.cl.RewardBatch(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Queued != len(ids) {
		t.Fatalf("queued %d of %d rewards: %+v", resp.Queued, len(ids), resp.Rejected)
	}
}

// checkpointCopy checkpoints the server and squirrels the snapshot
// file away, returning the copy's path and the checkpoint watermark.
func (r *asOfRig) checkpointCopy(t *testing.T, name string) (string, uint64) {
	t.Helper()
	snap := filepath.Join(r.dir, "model.snap")
	info, err := r.srv.Checkpoint(snap)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(r.dir, name)
	if err := os.WriteFile(cp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cp, info.LSN
}

// TestAsOfByteIdentical pins the reconstruction contract through real
// segments: replaying to a checkpoint's LSN from the PREVIOUS
// checkpoint's snapshot must reproduce the later checkpoint's file
// byte for byte — including a reward batch that straddles the first
// checkpoint (events ranked before it, rewarded after, so the open
// events travel via the snapshot and the rewards via the journal).
func TestAsOfByteIdentical(t *testing.T) {
	r := newAsOfRig(t, 1024) // tiny segments: the window spans many files
	cat := rules.NewCatalog()

	// Phase A: decisions and some rewards, then checkpoint 1.
	idsA := r.rank(t, 20, 1)
	r.reward(t, idsA[:10], 0.5)
	if _, err := r.srv.InstallHints([]sis.Hint{
		{TemplateHash: 0xabc123, TemplateID: "T0042", Flip: cat.FlipFor(40), Day: 3},
	}); err != nil {
		t.Fatal(err)
	}
	snap1, w1 := r.checkpointCopy(t, "snap1.copy")

	// Phase B: the straddling batch — rewards for phase-A events land
	// after checkpoint 1 — plus fresh decisions, rewards, and a hint
	// rollover. Then checkpoint 2: the reconstruction target.
	r.reward(t, idsA[10:], 0.9)
	idsB := r.rank(t, 17, 2)
	r.reward(t, idsB[:13], 0.25)
	if _, err := r.srv.InstallHints([]sis.Hint{
		{TemplateHash: 0xabc123, TemplateID: "T0042", Flip: cat.FlipFor(41), Day: 4},
		{TemplateHash: 0xdef456, TemplateID: "T0099", Flip: cat.FlipFor(42), Day: 4},
	}); err != nil {
		t.Fatal(err)
	}
	// The target checkpoint runs the same barrier as Checkpoint but
	// truncates nothing (BootstrapSnapshot), so the journal keeps the
	// window (w1, l] the reconstruction needs — time travel only works
	// over history that compaction has not eaten.
	var snap2buf bytes.Buffer
	l, err := r.srv.BootstrapSnapshot(&snap2buf)
	if err != nil {
		t.Fatal(err)
	}
	want := snap2buf.Bytes()
	if l <= w1 {
		t.Fatalf("checkpoint LSNs did not advance: w1=%d l=%d", w1, l)
	}
	snap2 := filepath.Join(r.dir, "snap2.copy")
	if err := os.WriteFile(snap2, want, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase C: the journal moves on past L.
	idsC := r.rank(t, 9, 3)
	r.reward(t, idsC, 0.7)
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}

	eng, err := audit.Open(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.AsOf(l, audit.AsOfOptions{
		SnapshotPath: snap1,
		TrainEvery:   asOfTrainEvery,
		Seed:         asOfSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotSeeded || res.FromLSN != w1 {
		t.Fatalf("reconstruction did not seed from snapshot 1: seeded=%v from=%d want=%d", res.SnapshotSeeded, res.FromLSN, w1)
	}
	if !bytes.Equal(res.Snapshot, want) {
		t.Fatalf("as-of(%d) reconstruction differs from the live checkpoint at %d:\n--- as-of (%d bytes)\n%s\n--- checkpoint (%d bytes)\n%s",
			l, l, len(res.Snapshot), firstDiff(res.Snapshot, want), len(want), firstDiff(want, res.Snapshot))
	}
	if res.Hints == nil || res.HintGen == 0 {
		t.Errorf("as-of window lost the hint rollover: gen=%d hints=%d", res.HintGen, len(res.Hints))
	}

	// A later snapshot must never seed an earlier reconstruction.
	res2, err := eng.AsOf(w1, audit.AsOfOptions{
		SnapshotPath: snap2,
		TrainEvery:   asOfTrainEvery,
		Seed:         asOfSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SnapshotSeeded {
		t.Error("reconstruction at an LSN below the snapshot's watermark must not seed from it")
	}
}

// firstDiff excerpts the first divergent region for failure output.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > len(a) {
				hi = len(a)
			}
			return fmt.Sprintf("(diff at byte %d) ...%q...", i, a[lo:hi])
		}
	}
	return fmt.Sprintf("(equal prefix, lengths %d vs %d)", len(a), len(b))
}

// buildBigJournal writes a synthetic multi-segment journal: nRanks
// rank records with periodic reward batches and train marks, plus
// hint-rollover records mentioning wantTemplate only inside a couple
// of segments (and a decoy template elsewhere). Returns the hash the
// skip test queries for.
func buildBigJournal(tb testing.TB, dir string, nRanks int, segBytes int64) (wantTemplate uint64) {
	tb.Helper()
	// ModeSync with a periodic Commit: segment rolls happen on the
	// committer goroutine, so an uncommitted Append firehose would
	// outrun them and pile everything into one oversized segment.
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync, SegmentBytes: segBytes})
	if err != nil {
		tb.Fatal(err)
	}
	commitEvery := func(lsn uint64) {
		if lsn%256 == 0 {
			if err := j.Commit(lsn); err != nil {
				tb.Fatal(err)
			}
		}
	}
	wantTemplate = 0xfeedface
	const decoy = 0x0ddba11
	var pending []walrec.RewardEntry
	for i := 0; i < nRanks; i++ {
		ev := fmt.Sprintf("ev%08d", i)
		ctx := []uint64{uint64(i) * 3, uint64(i)*3 + 1, uint64(i)*3 + 2}
		act := []uint64{uint64(i % 97), uint64(i%89) + 1000}
		lsn, err := j.Append(walrec.EncodeRank(ev, 0.5, ctx, act))
		if err != nil {
			tb.Fatal(err)
		}
		commitEvery(lsn)
		pending = append(pending, walrec.RewardEntry{EventID: ev, Value: float64(i%10) / 10})
		if len(pending) == 64 {
			if _, err := j.Append(walrec.EncodeRewardBatch(pending)); err != nil {
				tb.Fatal(err)
			}
			pending = pending[:0]
		}
		if i%4096 == 4095 {
			if _, err := j.Append(walrec.EncodeTrainMark()); err != nil {
				tb.Fatal(err)
			}
		}
		// The wanted template's rollovers cluster at ~1/4 and ~3/4 of
		// the journal; decoys appear elsewhere so the key filter (not
		// just the tag filter) has segments to prune.
		switch {
		case i == nRanks/4 || i == 3*nRanks/4:
			hints := []walrec.Hint{{TemplateHash: wantTemplate, TemplateID: "Twant", Flip: "F40", Day: i / 1000}}
			if _, err := j.Append(walrec.EncodeHintRollover(uint64(i), hints)); err != nil {
				tb.Fatal(err)
			}
		case i%(nRanks/8) == nRanks/16:
			hints := []walrec.Hint{{TemplateHash: decoy, TemplateID: "Tdecoy", Flip: "F41", Day: i / 1000}}
			if _, err := j.Append(walrec.EncodeHintRollover(uint64(i), hints)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	lsn, err := j.Append(walrec.EncodeRewardBatch(pending))
	if err != nil {
		tb.Fatal(err)
	}
	if err := j.Commit(lsn); err != nil {
		tb.Fatal(err)
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	return wantTemplate
}

// TestIndexedTemplateQuerySkipsSegments is the acceptance pin for the
// planner: over a ≥100k-record multi-segment journal, a
// template-filtered query must skip the non-matching segments — proved
// by the iterator's own scan counters, not timing — while still
// finding every matching record, streaming.
func TestIndexedTemplateQuerySkipsSegments(t *testing.T) {
	dir := t.TempDir()
	const nRanks = 100_000
	tmpl := buildBigJournal(t, dir, nRanks, 512<<10)

	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 8 {
		t.Fatalf("fixture built only %d segments; need a multi-segment journal", len(segs))
	}

	eng, err := audit.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Key-filtered listing: "rollover records that reference this
	// template". The two matches live in (at most) two segments; the
	// bloom key filter must prune the decoy-rollover segments that the
	// tag filter alone would have to scan.
	it, err := eng.Run(audit.Query{
		Tags:     []byte{walrec.TagHintRollover},
		Template: tmpl, HasTemplate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		matches++
	}
	it.Close()
	if matches != 2 {
		t.Fatalf("key-filtered query found %d rollovers, want 2", matches)
	}
	st := it.Stats()
	if st.SegmentsTotal != int64(len(segs)) {
		t.Fatalf("stats saw %d segments, dir has %d", st.SegmentsTotal, len(segs))
	}
	// The two matching rollovers live in (at most) two segments; allow
	// the active tail segment too. Everything else must be pruned.
	if st.SegmentsScanned > 3 {
		t.Errorf("scanned %d segments for a 2-segment answer (skipped %d of %d)",
			st.SegmentsScanned, st.SegmentsSkipped, st.SegmentsTotal)
	}
	if st.SegmentsSkipped < int64(len(segs))-3 {
		t.Errorf("skipped only %d of %d segments", st.SegmentsSkipped, st.SegmentsTotal)
	}
	if st.SkippedByKey == 0 {
		t.Error("decoy-rollover segments must be pruned by the key filter, not scanned")
	}
	// Streaming proof: the records read from disk are bounded by the
	// scanned segments, nowhere near the journal's total.
	total := int64(nRanks) + int64(nRanks)/64 + int64(nRanks)/4096 + 16
	if st.RecordsScanned >= total/2 {
		t.Errorf("read %d of ~%d records — the scan did not stay local to matching segments", st.RecordsScanned, total)
	}

	// The canned lineage query deliberately drops the key filter —
	// a rollover WITHOUT the hash is what proves removal, and the bloom
	// would prune exactly those records — so it sees all 10 rollovers
	// and extracts the full flap history: two add/remove cycles.
	th, err := eng.Template(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if th.Rollovers != 10 || len(th.Events) != 4 {
		t.Fatalf("template history saw %d rollovers, %d events; want 10 and 4", th.Rollovers, len(th.Events))
	}
	for i, want := range []string{"hint", "hint_removed", "hint", "hint_removed"} {
		if th.Events[i].Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, th.Events[i].Kind, want)
		}
	}
	if th.Scan.SkippedByTag == 0 {
		t.Error("rank-only segments must still be pruned by the tag filter")
	}

	// Second engine over the same dir: sidecars now load from disk
	// (not rebuilt), and the answer is identical.
	eng2, err := audit.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := eng2.Template(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	// Sealed segments load from disk; only the active tail segment's
	// sidecar is built in memory (it is never persisted).
	if th2.Scan.SidecarsLoaded == 0 || th2.Scan.SidecarsBuilt > 1 || th2.Scan.SidecarsRebuilt > 0 {
		t.Errorf("second engine rebuilt instead of loading sidecars: loaded=%d built=%d rebuilt=%d",
			th2.Scan.SidecarsLoaded, th2.Scan.SidecarsBuilt, th2.Scan.SidecarsRebuilt)
	}
	if len(th2.Events) != len(th.Events) {
		t.Errorf("answers diverge across sidecar load: %d vs %d events", len(th2.Events), len(th.Events))
	}
}

// TestSidecarNeverTrusted pins the sidecar validation satellite:
// corrupt, stale, and deleted .idx files are all detected and rebuilt;
// answers never change.
func TestSidecarNeverTrusted(t *testing.T) {
	dir := t.TempDir()
	tmpl := buildBigJournal(t, dir, 4_000, 32<<10)
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("want >=4 segments, got %d", len(segs))
	}

	reference := func(e *audit.Engine) *audit.TemplateHistory {
		th, err := e.Template(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	eng, err := audit.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(eng) // builds sidecars on disk
	if want.Rollovers != 10 {
		t.Fatalf("fixture rollovers = %d, want 10", want.Rollovers)
	}
	idxCount := 0
	for _, s := range segs[:len(segs)-1] {
		if _, err := os.Stat(wal.SidecarPath(s.Path)); err == nil {
			idxCount++
		}
	}
	if idxCount == 0 {
		t.Fatal("first query left no sidecar files on disk")
	}

	t.Run("corrupt idx rebuilt", func(t *testing.T) {
		path := wal.SidecarPath(segs[0].Path)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		e, _ := audit.Open(dir)
		got := reference(e)
		if got.Scan.SidecarsRebuilt == 0 {
			t.Error("corrupt sidecar was not detected and rebuilt")
		}
		if len(got.Events) != len(want.Events) {
			t.Errorf("corrupt sidecar changed the answer: %d vs %d events", len(got.Events), len(want.Events))
		}
	})

	t.Run("stale idx (wrong segment identity) rebuilt", func(t *testing.T) {
		// A sidecar copied from another segment is internally valid but
		// identifies the wrong source: must be rejected by identity, or
		// by source length when identities collide.
		src, err := os.ReadFile(wal.SidecarPath(segs[1].Path))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal.SidecarPath(segs[2].Path), src, 0o644); err != nil {
			t.Fatal(err)
		}
		e, _ := audit.Open(dir)
		got := reference(e)
		if got.Scan.SidecarsRebuilt == 0 {
			t.Error("mis-identified sidecar was not rebuilt")
		}
		if len(got.Events) != len(want.Events) {
			t.Errorf("stale sidecar changed the answer: %d vs %d events", len(got.Events), len(want.Events))
		}
	})

	t.Run("deleted idx rebuilt", func(t *testing.T) {
		for _, s := range segs {
			os.Remove(wal.SidecarPath(s.Path))
		}
		e, _ := audit.Open(dir)
		got := reference(e)
		if got.Scan.SidecarsBuilt == 0 {
			t.Error("deleted sidecars were not rebuilt")
		}
		if got.Scan.SidecarsLoaded != 0 {
			t.Error("loaded a sidecar that does not exist")
		}
		if len(got.Events) != len(want.Events) {
			t.Errorf("rebuild changed the answer: %d vs %d events", len(got.Events), len(want.Events))
		}
	})

	t.Run("grown segment re-indexed in memory", func(t *testing.T) {
		e, _ := audit.Open(dir)
		before := reference(e)
		// The journal grows: reopen and append another matching rollover
		// into the active segment.
		j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync, SegmentBytes: 32 << 10})
		if err != nil {
			t.Fatal(err)
		}
		lsn, err := j.Append(walrec.EncodeHintRollover(999, []walrec.Hint{
			{TemplateHash: tmpl, TemplateID: "Twant", Flip: "F42", Day: 9},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		after := reference(e) // same engine: cached sidecars must invalidate
		if after.Rollovers != before.Rollovers+1 {
			t.Errorf("grown segment not re-read: %d rollovers before, %d after", before.Rollovers, after.Rollovers)
		}
	})
}

// TestTraceAnswersWhy pins the decision-trace canned query on a live
// journal: the rank, its rewards, the absorbing train mark, and a
// bounded lineage.
func TestTraceAnswersWhy(t *testing.T) {
	r := newAsOfRig(t, 4096)
	ids := r.rank(t, 24, 7)
	r.reward(t, ids, 0.6)
	// Drain journals a train mark after the rewards. (A checkpoint
	// would too, but it also compacts the segments holding the rank
	// records — history a trace needs.)
	r.srv.Ingestor().Drain()
	if err := r.j.Sync(); err != nil {
		t.Fatal(err)
	}

	eng, err := audit.Open(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Trace(ids[5])
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rank == nil {
		t.Fatalf("trace found no rank record for %s", ids[5])
	}
	if tr.Rank.EventID != ids[5] {
		t.Fatalf("trace resolved the wrong event: %s", tr.Rank.EventID)
	}
	if len(tr.Rewards) != 1 {
		t.Fatalf("trace found %d rewards, want 1", len(tr.Rewards))
	}
	if tr.TrainedAtLSN == 0 || tr.TrainedAtLSN <= tr.Rewards[0].LSN {
		t.Errorf("training boundary %d does not follow reward at %d", tr.TrainedAtLSN, tr.Rewards[0].LSN)
	}

	missing, err := eng.Trace("ev-no-such-event")
	if err != nil {
		t.Fatal(err)
	}
	if missing.Rank != nil || len(missing.Rewards) != 0 {
		t.Error("unknown event produced a non-empty trace")
	}
}
