package workload

import (
	"fmt"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
)

// ViewRow is one row of the denormalized workload view (§4, Table 1): the
// join of compile-time and runtime information for one query tree of one
// job. SCOPE jobs are DAGs with one output per query tree, so a job
// contributes one row per output; job-level metrics are duplicated across
// its rows, exactly the disconnect the Feature Generation task resolves.
type ViewRow struct {
	// Identity.
	JobID             string
	TemplateID        string
	NormalizedJobName string
	Date              int
	QueryIndex        int
	QueryTemplate     uint64 // per-tree template hash

	// Optimizer outputs (job level unless noted).
	RuleSignature rules.Signature
	EstimatedCost float64
	EstimatedCard float64 // query level: sum of node cardinality estimates
	AvgRowLength  float64 // query level
	RowCount      float64 // query level: estimated output rows

	// Runtime statistics.
	Latency     float64 // job level, seconds
	PNHours     float64 // job level
	Vertices    int     // job level
	BytesRead   float64 // query level
	MaxMemory   float64 // job level
	AvgMemory   float64 // job level
	DataRead    float64 // job level
	DataWritten float64 // job level

	// Tokens is the job's container allocation.
	Tokens int
}

// BuildViewRows assembles the view rows of one executed job: one row per
// query tree (plan root).
func BuildViewRows(job *Job, res *optimizer.Result, m exec.Metrics) []ViewRow {
	rows := make([]ViewRow, 0, len(res.Plan.Roots))
	for qi, root := range res.Plan.Roots {
		// Per-tree aggregates over the nodes reachable from this root.
		var estCard, bytesRead, widthSum float64
		nNodes := 0
		seen := make(map[*optimizer.PhysNode]bool)
		var visit func(n *optimizer.PhysNode)
		visit = func(n *optimizer.PhysNode) {
			if seen[n] {
				return
			}
			seen[n] = true
			estCard += n.EstRows
			widthSum += float64(n.RowWidth)
			nNodes++
			switch n.Op {
			case optimizer.PhysRowScan, optimizer.PhysColumnScan, optimizer.PhysIndexSeek:
				w := float64(n.BaseWidth)
				if w == 0 {
					w = float64(n.RowWidth)
				}
				bytesRead += n.EstRows * w
			}
			for _, in := range n.Inputs {
				visit(in)
			}
		}
		visit(root)

		avgWidth := 0.0
		if nNodes > 0 {
			avgWidth = widthSum / float64(nNodes)
		}
		queryHash := uint64(0)
		if res.Logical != nil && qi < len(res.Logical.Roots) {
			sub := res.Logical.Roots[qi]
			queryHash = sub.Fingerprint()
		}
		rows = append(rows, ViewRow{
			JobID:             job.ID,
			TemplateID:        job.Template.ID,
			NormalizedJobName: job.Template.Name,
			Date:              job.Date,
			QueryIndex:        qi,
			QueryTemplate:     queryHash,
			RuleSignature:     res.Signature,
			EstimatedCost:     res.EstCost,
			EstimatedCard:     estCard,
			AvgRowLength:      avgWidth,
			RowCount:          root.EstRows,
			Latency:           m.LatencySec,
			PNHours:           m.PNHours,
			Vertices:          m.Vertices,
			BytesRead:         bytesRead,
			MaxMemory:         m.MaxMemory,
			AvgMemory:         m.AvgMemory,
			DataRead:          m.DataRead,
			DataWritten:       m.DataWritten,
			Tokens:            job.Tokens,
		})
	}
	return rows
}

// ViewKey identifies a job's rows in the view.
func (r ViewRow) ViewKey() string {
	return fmt.Sprintf("%s#%d", r.JobID, r.QueryIndex)
}
