package workload

import (
	"fmt"
	"strings"
	"testing"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

func newGen(t *testing.T, n int) *Generator {
	t.Helper()
	g, err := New(Config{Seed: 7, NumTemplates: n})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestGeneratorProducesRequestedTemplates(t *testing.T) {
	g := newGen(t, 20)
	if len(g.Templates()) != 20 {
		t.Fatalf("templates = %d", len(g.Templates()))
	}
}

func TestGeneratorIsDeterministic(t *testing.T) {
	a := newGen(t, 10)
	b := newGen(t, 10)
	for i := range a.Templates() {
		ta, tb := a.Templates()[i], b.Templates()[i]
		if ta.ScriptPattern != tb.ScriptPattern {
			t.Fatalf("template %d scripts differ", i)
		}
		if ta.Hash != tb.Hash {
			t.Fatalf("template %d hashes differ", i)
		}
	}
}

func TestAllTemplatesCompile(t *testing.T) {
	g := newGen(t, 40)
	for _, tpl := range g.Templates() {
		j, err := tpl.Instantiate(3, 0)
		if err != nil {
			t.Errorf("template %s: %v\nscript:\n%s", tpl.ID, err, tpl.ScriptPattern)
			continue
		}
		if j.Graph == nil || len(j.Graph.Roots) == 0 {
			t.Errorf("template %s produced empty graph", tpl.ID)
		}
	}
}

func TestTemplateHashStableAcrossDays(t *testing.T) {
	g := newGen(t, 15)
	for _, tpl := range g.Templates() {
		j1, err := tpl.Instantiate(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := tpl.Instantiate(8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if j1.Graph.TemplateHash() != j2.Graph.TemplateHash() {
			t.Errorf("template %s: hash differs across days (recurring identity broken)", tpl.ID)
		}
	}
}

func TestInstanceVariesAcrossDays(t *testing.T) {
	g := newGen(t, 5)
	tpl := g.Templates()[0]
	j1, _ := tpl.Instantiate(1, 0)
	j2, _ := tpl.Instantiate(2, 0)
	// True base rows differ day to day.
	same := true
	for p1, r1 := range j1.Truth.Rows {
		for p2, r2 := range j2.Truth.Rows {
			if strings.Split(p1, "_")[0] == strings.Split(p2, "_")[0] && r1 != r2 {
				same = false
			}
		}
	}
	if same && len(j1.Truth.Rows) > 0 {
		t.Error("true row counts should vary across days")
	}
}

func TestTruthSitesMatchCompiledPlan(t *testing.T) {
	// The generator's true-selectivity site keys must match the site keys
	// the cardinality engine derives from the compiled plan, otherwise
	// truth silently falls back to jitter.
	g := newGen(t, 30)
	totalSites, matched := 0, 0
	for _, tpl := range g.Templates() {
		j, err := tpl.Instantiate(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		planSites := make(map[string]bool)
		for _, n := range j.Graph.Nodes() {
			if k := n.SiteKey(); k != "" {
				planSites[k] = true
			}
			// Filters contribute per-conjunct sites (the cardinality
			// engine estimates conjunct by conjunct).
			if n.Pred != nil {
				for _, c := range scope.Conjuncts(n.Pred) {
					planSites["filter:"+c.String()] = true
				}
			}
		}
		for site := range j.Truth.Sel {
			totalSites++
			if planSites[site] {
				matched++
			}
		}
	}
	if totalSites == 0 {
		t.Fatal("no truth sites generated")
	}
	frac := float64(matched) / float64(totalSites)
	if frac < 0.85 {
		t.Errorf("only %.0f%% of truth sites match plan sites (%d/%d)", frac*100, matched, totalSites)
	}
}

func TestJobsForDay(t *testing.T) {
	g := newGen(t, 10)
	jobs, err := g.JobsForDay(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 10 {
		t.Fatalf("jobs = %d, want >= one per template", len(jobs))
	}
	seen := make(map[string]bool)
	for _, j := range jobs {
		if seen[j.ID] {
			t.Errorf("duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
		if j.Date != 4 {
			t.Errorf("job date = %d", j.Date)
		}
	}
}

func TestStatsHaveEstimationError(t *testing.T) {
	g := newGen(t, 25)
	exact := 0
	total := 0
	for _, tpl := range g.Templates() {
		j, _ := tpl.Instantiate(1, 0)
		for path, ts := range j.Stats {
			total++
			if trueRows, ok := j.Truth.Rows[path]; ok && ts.Rows == trueRows {
				exact++
			}
		}
	}
	if total == 0 {
		t.Fatal("no stats generated")
	}
	if exact > total/10 {
		t.Errorf("optimizer stats should be erroneous: %d/%d exact", exact, total)
	}
}

func TestEndToEndCompileAndRun(t *testing.T) {
	g := newGen(t, 15)
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(3)
	ran := 0
	for _, tpl := range g.Templates() {
		j, err := tpl.Instantiate(5, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := optimizer.Optimize(j.Graph, cat.DefaultConfig(), optimizer.Options{
			Catalog: cat, Stats: j.Stats, Tokens: j.Tokens,
		})
		if err != nil {
			t.Errorf("template %s failed to optimize under default config: %v", tpl.ID, err)
			continue
		}
		m := exec.Run(res.Plan, j.Truth, j.Stats, cluster, 1)
		if m.PNHours <= 0 || m.LatencySec <= 0 {
			t.Errorf("template %s: bad metrics %+v", tpl.ID, m)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("nothing ran")
	}
}

func TestBuildViewRows(t *testing.T) {
	g := newGen(t, 8)
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(3)
	for _, tpl := range g.Templates() {
		j, err := tpl.Instantiate(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := optimizer.Optimize(j.Graph, cat.DefaultConfig(), optimizer.Options{
			Catalog: cat, Stats: j.Stats, Tokens: j.Tokens,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := exec.Run(res.Plan, j.Truth, j.Stats, cluster, 1)
		rows := BuildViewRows(j, res, m)
		if len(rows) != len(res.Plan.Roots) {
			t.Fatalf("view rows = %d, want %d (one per query tree)", len(rows), len(res.Plan.Roots))
		}
		for _, r := range rows {
			if r.JobID != j.ID || r.TemplateID != tpl.ID {
				t.Errorf("identity wrong: %+v", r)
			}
			if r.EstimatedCost <= 0 || r.PNHours <= 0 {
				t.Errorf("bad view row: %+v", r)
			}
			if r.ViewKey() == "" {
				t.Error("empty view key")
			}
		}
	}
}

func TestTableDefPath(t *testing.T) {
	td := TableDef{PathPattern: "store/T001/raw0_@DATE@.tsv"}
	p := td.Path(3)
	if !strings.Contains(p, "20211103") {
		t.Errorf("path = %q", p)
	}
	if strings.Contains(p, "@DATE@") {
		t.Error("placeholder not substituted")
	}
}

func TestDailyInstancesBounds(t *testing.T) {
	g, err := New(Config{Seed: 1, NumTemplates: 30, MaxDailyInstances: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tpl := range g.Templates() {
		if tpl.DailyInstances < 1 || tpl.DailyInstances > 2 {
			t.Errorf("daily instances = %d", tpl.DailyInstances)
		}
	}
}

func TestGeneratedScriptsSurviveFormatRoundTrip(t *testing.T) {
	g := newGen(t, 20)
	for _, tpl := range g.Templates() {
		j, err := tpl.Instantiate(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Re-render the instance source through the formatter and verify
		// the formatted script compiles to the same template.
		src := strings.ReplaceAll(tpl.ScriptPattern, "@DATE@", "20211101")
		for i, lit := range tpl.Literals {
			src = strings.ReplaceAll(src, lit, fmt.Sprintf("%d", 100+i))
		}
		parsed, err := scope.Parse(src)
		if err != nil {
			t.Fatalf("template %s does not parse: %v", tpl.ID, err)
		}
		formatted := scope.Format(parsed)
		g2, err := scope.CompileScript(formatted)
		if err != nil {
			t.Fatalf("template %s formatted output does not compile: %v\n%s", tpl.ID, err, formatted)
		}
		if g2.TemplateHash() != j.Graph.TemplateHash() {
			// Literals differ between the two instantiations, but the
			// template hash wildcards them, so they must match.
			t.Errorf("template %s: hash changed through formatting", tpl.ID)
		}
	}
}

func TestInstancesShareCompiledGraphs(t *testing.T) {
	g, err := New(Config{Seed: 3, NumTemplates: 6, MaxDailyInstances: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tpl := range g.Templates() {
		if tpl.DailyInstances < 2 {
			continue
		}
		a, err := tpl.Instantiate(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tpl.Instantiate(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Graph != b.Graph {
			t.Errorf("template %s: same-day instances should share one compiled graph", tpl.ID)
		}
		c, err := tpl.Instantiate(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Graph == a.Graph {
			t.Errorf("template %s: different dates have different literals and scripts", tpl.ID)
		}
	}
	if st := g.CompileCacheStats(); st.Hits == 0 {
		t.Error("compile cache saw no hits across repeated instantiation")
	}
}

func TestDisabledCompileCacheStillCompiles(t *testing.T) {
	g, err := New(Config{Seed: 3, NumTemplates: 2, CompileCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	tpl := g.Templates()[0]
	a, err := tpl.Instantiate(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tpl.Instantiate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph == b.Graph {
		t.Error("uncached instantiation must compile fresh graphs")
	}
	if a.Graph.TemplateHash() != b.Graph.TemplateHash() {
		t.Error("cached/uncached graphs must agree on template hash")
	}
	if st := g.CompileCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disabled cache must report zero stats, got %+v", st)
	}
}
