// Package workload generates synthetic recurring SCOPE workloads: job
// templates (scripts with a fixed operator shape), daily instances with
// varying input cardinalities, selectivities and filter constants, the
// ground-truth environment the execution simulator consumes, and the
// deliberately erroneous optimizer statistics that make estimated costs
// diverge from real performance.
//
// The paper reports that more than 60% of SCOPE jobs are recurring
// template-scripts; QO-Advisor keys its hints on template identity, so
// template structure is the central concept here.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/scope"
)

// TableDef describes one synthetic base table of a template.
type TableDef struct {
	// PathPattern contains "@DATE@", substituted per instance.
	PathPattern string
	Columns     []scope.ColDef
	// TrueRows is the base true row count; daily instances vary around it.
	TrueRows float64
	// TrueNDV maps column name to true distinct count.
	TrueNDV map[string]float64
	// StatsRowFactor and StatsNDVFactor are the template's fixed
	// estimation errors: the optimizer sees TrueRows*StatsRowFactor.
	StatsRowFactor float64
	StatsNDVFactor map[string]float64
}

// Path returns the concrete path for a date.
func (t *TableDef) Path(date int) string {
	return strings.ReplaceAll(t.PathPattern, "@DATE@", fmt.Sprintf("%08d", 20211100+date))
}

// Template is a recurring job template.
type Template struct {
	ID   string
	Name string // normalized job name
	// ScriptPattern is the script source with "@DATE@" placeholders in
	// paths and "@LIT<i>@" placeholders for varying literals.
	ScriptPattern string
	Tables        []TableDef
	// TrueSel maps site-key patterns (with "@LIT<i>@" placeholders) to
	// the template's true selectivity for that operator site.
	TrueSel map[string]float64
	// Literals lists the placeholder names in order.
	Literals []string
	// DailyInstances is how many instances arrive per day.
	DailyInstances int
	// Tokens is the job's parallelism allocation.
	Tokens int
	// Hash is the template hash of the compiled graph (literals
	// normalized), QO-Advisor's hint key.
	Hash uint64

	// cache memoizes compiled scripts. All daily instances of a template
	// on one date share a script source and hence one compiled (immutable)
	// graph; flighting's next-day re-instantiations hit the same entries.
	// Nil compiles uncached.
	cache *scope.CompileCache
}

// Job is one instance of a template on a given date.
type Job struct {
	ID       string
	Template *Template
	Date     int
	Seq      int
	Graph    *scope.Graph
	Truth    *exec.Truth
	Stats    optimizer.MapStats
	Tokens   int
}

// Generator produces templates and daily job instances deterministically
// from a seed.
type Generator struct {
	seed      int64
	templates []*Template
	cache     *scope.CompileCache
}

// Config controls workload generation.
type Config struct {
	Seed         int64
	NumTemplates int
	// MaxDailyInstances caps per-template daily recurrences (>=1).
	MaxDailyInstances int
	// CompileCacheSize bounds the shared script compile cache (0 = the
	// scope package default, negative = disable caching entirely). The
	// cache only affects speed: cached and uncached instantiation produce
	// structurally identical graphs.
	CompileCacheSize int
}

// hashed returns a deterministic sub-seed from parts.
func hashed(parts ...interface{}) int64 {
	h := fnv.New64a()
	fmt.Fprint(h, parts...)
	return int64(h.Sum64())
}

// rngFor returns a deterministic RNG keyed by parts.
func rngFor(parts ...interface{}) *rand.Rand {
	return rand.New(rand.NewSource(hashed(parts...)))
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

func lognormal(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(rng.NormFloat64() * sigma)
}

// New builds a generator with cfg.NumTemplates templates. Template
// construction is validated: every generated script compiles.
func New(cfg Config) (*Generator, error) {
	if cfg.NumTemplates <= 0 {
		cfg.NumTemplates = 50
	}
	if cfg.MaxDailyInstances <= 0 {
		cfg.MaxDailyInstances = 3
	}
	g := &Generator{seed: cfg.Seed}
	if cfg.CompileCacheSize >= 0 {
		g.cache = scope.NewCompileCache(cfg.CompileCacheSize)
	}
	for i := 0; i < cfg.NumTemplates; i++ {
		t, err := buildTemplate(cfg.Seed, i, cfg.MaxDailyInstances, g.cache)
		if err != nil {
			return nil, fmt.Errorf("workload: template %d: %w", i, err)
		}
		g.templates = append(g.templates, t)
	}
	return g, nil
}

// Templates returns the generated templates.
func (g *Generator) Templates() []*Template { return g.templates }

// CompileCacheStats reports the shared script compile cache's
// effectiveness (zero value when caching is disabled).
func (g *Generator) CompileCacheStats() scope.CompileCacheStats {
	if g.cache == nil {
		return scope.CompileCacheStats{}
	}
	return g.cache.Stats()
}

// JobsForDay instantiates every template's recurrences for the given date.
func (g *Generator) JobsForDay(date int) ([]*Job, error) {
	var jobs []*Job
	for _, t := range g.templates {
		for s := 0; s < t.DailyInstances; s++ {
			j, err := t.Instantiate(date, s)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// Instantiate produces the job instance of a template for (date, seq):
// concrete literals, per-day true row counts, jittered selectivities and
// the optimizer-visible statistics.
func (t *Template) Instantiate(date, seq int) (*Job, error) {
	// Substitute literals: deterministic per (template, literal, date).
	src := strings.ReplaceAll(t.ScriptPattern, "@DATE@", fmt.Sprintf("%08d", 20211100+date))
	litVals := make(map[string]string, len(t.Literals))
	for _, lit := range t.Literals {
		rng := rngFor("lit", t.ID, lit, date)
		litVals[lit] = fmt.Sprintf("%d", 10+rng.Intn(9000))
	}
	for lit, v := range litVals {
		src = strings.ReplaceAll(src, lit, v)
	}
	var graph *scope.Graph
	var err error
	if t.cache != nil {
		graph, err = t.cache.Compile(src)
	} else {
		graph, err = scope.CompileScript(src)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: instance of %s does not compile: %w", t.ID, err)
	}

	truth := &exec.Truth{
		Rows:       make(map[string]float64, len(t.Tables)),
		Sel:        make(map[string]float64, len(t.TrueSel)),
		JitterSeed: hashed("jitter", t.ID),
	}
	statsMap := make(optimizer.MapStats, len(t.Tables))
	for _, tab := range t.Tables {
		path := tab.Path(date)
		dayFactor := lognormal(rngFor("rows", t.ID, tab.PathPattern, date), 0.35)
		trueRows := tab.TrueRows * dayFactor
		truth.Rows[path] = trueRows

		ndv := make(map[string]float64, len(tab.TrueNDV))
		for col, v := range tab.TrueNDV {
			f := tab.StatsNDVFactor[col]
			if f == 0 {
				f = 1
			}
			ndv[col] = math.Max(1, v*f)
		}
		statsMap[path] = optimizer.TableStats{
			Rows: math.Max(1, trueRows*tab.StatsRowFactor*lognormal(rngFor("statdrift", t.ID, tab.PathPattern, date), 0.30)),
			NDV:  ndv,
		}
	}
	for sitePattern, sel := range t.TrueSel {
		site := sitePattern
		for lit, v := range litVals {
			site = strings.ReplaceAll(site, lit, v)
		}
		jitter := lognormal(rngFor("sel", t.ID, sitePattern, date), 0.25)
		s := sel * jitter
		if s > 1 {
			s = 1
		}
		truth.Sel[site] = s
	}

	return &Job{
		ID:       fmt.Sprintf("J%08d_%s_%d", 20211100+date, t.ID, seq),
		Template: t,
		Date:     date,
		Seq:      seq,
		Graph:    graph,
		Truth:    truth,
		Stats:    statsMap,
		Tokens:   t.Tokens,
	}, nil
}

// --- Template construction ---

// buildTemplate synthesizes one template. The script is built
// programmatically (schema-tracked), so generated scripts always compile;
// construction is verified anyway.
func buildTemplate(seed int64, idx, maxDaily int, cache *scope.CompileCache) (*Template, error) {
	rng := rngFor("template", seed, idx)
	b := &scriptBuilder{
		rng:      rng,
		tID:      fmt.Sprintf("T%03d", idx),
		trueSel:  make(map[string]float64),
		rowsets:  make(map[string]*rowsetInfo),
		consumed: make(map[string]bool),
	}
	b.build()

	t := &Template{
		ID:             b.tID,
		Name:           fmt.Sprintf("Prod_%s_Pipeline", b.tID),
		ScriptPattern:  b.script.String(),
		Tables:         b.tables,
		TrueSel:        b.trueSel,
		Literals:       b.literals,
		DailyInstances: 1 + rng.Intn(maxDaily),
		Tokens:         50 + rng.Intn(4)*50,
		cache:          cache,
	}

	// Validate by instantiating day 1 and record the template hash.
	j, err := t.Instantiate(1, 0)
	if err != nil {
		return nil, err
	}
	t.Hash = j.Graph.TemplateHash()
	return t, nil
}

// rowsetInfo tracks the schema of a named rowset during generation.
type rowsetInfo struct {
	name string
	cols []scope.ColDef
	// table is set for raw extracts, letting the builder pick join keys
	// with matching NDVs.
	keyCol string
	rows   float64 // rough true row estimate, to scale selectivities
}

type scriptBuilder struct {
	rng      *rand.Rand
	tID      string
	script   strings.Builder
	tables   []TableDef
	rowsets  map[string]*rowsetInfo
	consumed map[string]bool
	order    []string // rowset creation order
	litSeq   int
	literals []string
	trueSel  map[string]float64
	seq      int
}

func (b *scriptBuilder) newLit() string {
	name := fmt.Sprintf("@LIT%d@", b.litSeq)
	b.litSeq++
	b.literals = append(b.literals, name)
	return name
}

func (b *scriptBuilder) addRowset(info *rowsetInfo) {
	b.rowsets[info.name] = info
	b.order = append(b.order, info.name)
}

var colTypes = []scope.ColType{
	scope.TypeInt, scope.TypeLong, scope.TypeDouble, scope.TypeString, scope.TypeFloat,
}

// build assembles the whole script.
func (b *scriptBuilder) build() {
	nTables := 1 + b.rng.Intn(3)
	for i := 0; i < nTables; i++ {
		b.addExtract(i)
	}
	nTransforms := 3 + b.rng.Intn(4)
	for i := 0; i < nTransforms; i++ {
		b.addTransform()
	}
	b.addOutputs()
}

func (b *scriptBuilder) addExtract(i int) {
	name := fmt.Sprintf("raw%d", i)
	nCols := 3 + b.rng.Intn(4)
	cols := make([]scope.ColDef, 0, nCols+1)
	// Every table gets a join key column.
	keyCol := fmt.Sprintf("%s_key", name)
	cols = append(cols, scope.ColDef{Name: keyCol, Type: scope.TypeLong})
	for c := 0; c < nCols; c++ {
		cols = append(cols, scope.ColDef{
			Name: fmt.Sprintf("%s_c%d", name, c),
			Type: colTypes[b.rng.Intn(len(colTypes))],
		})
	}
	trueRows := logUniform(b.rng, 2e5, 3e7)
	ndv := make(map[string]float64, len(cols))
	ndvErr := make(map[string]float64, len(cols))
	// Join keys share a universe so joins have sane selectivity.
	ndv[keyCol] = logUniform(b.rng, 1e4, 1e6)
	for _, cd := range cols[1:] {
		switch cd.Type {
		case scope.TypeString:
			ndv[cd.Name] = logUniform(b.rng, 10, 1e5)
		default:
			ndv[cd.Name] = logUniform(b.rng, 10, 1e6)
		}
	}
	// Draw in column order, not map order: iterating the map here would
	// consume b.rng in a run-dependent order and make the generated
	// workload itself nondeterministic across processes.
	ndvErr[keyCol] = lognormal(b.rng, 0.5)
	for _, cd := range cols[1:] {
		ndvErr[cd.Name] = lognormal(b.rng, 0.5)
	}
	path := fmt.Sprintf("store/%s/%s_@DATE@.tsv", b.tID, name)
	b.tables = append(b.tables, TableDef{
		PathPattern:    path,
		Columns:        cols,
		TrueRows:       trueRows,
		TrueNDV:        ndv,
		StatsRowFactor: lognormal(b.rng, 0.45),
		StatsNDVFactor: ndvErr,
	})

	fmt.Fprintf(&b.script, "%s = EXTRACT ", name)
	for i, cd := range cols {
		if i > 0 {
			b.script.WriteString(", ")
		}
		fmt.Fprintf(&b.script, "%s:%s", cd.Name, cd.Type)
	}
	fmt.Fprintf(&b.script, " FROM \"%s\";\n", path)
	b.addRowset(&rowsetInfo{name: name, cols: cols, keyCol: keyCol, rows: trueRows})
}

// pickRowset selects an existing rowset, biased toward recent ones, and
// marks it consumed so that dead statements never arise (every sink is
// OUTPUT at the end).
func (b *scriptBuilder) pickRowset() *rowsetInfo {
	var i int
	if b.rng.Float64() < 0.5 {
		i = len(b.order) - 1 - b.rng.Intn(minI(len(b.order), 3))
	} else {
		i = b.rng.Intn(len(b.order))
	}
	name := b.order[i]
	b.consumed[name] = true
	return b.rowsets[name]
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// numericCols returns the numeric columns of a rowset.
func numericCols(cols []scope.ColDef) []scope.ColDef {
	var out []scope.ColDef
	for _, c := range cols {
		switch c.Type {
		case scope.TypeInt, scope.TypeLong, scope.TypeFloat, scope.TypeDouble:
			out = append(out, c)
		}
	}
	return out
}

func (b *scriptBuilder) nextName(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s%d", prefix, b.seq)
}

func (b *scriptBuilder) addTransform() {
	switch b.rng.Intn(10) {
	case 0, 1, 2:
		b.addFilterSelect()
	case 3, 4, 5:
		b.addJoinSelect()
	case 6, 7:
		b.addAggSelect()
	case 8:
		b.addUnion()
	default:
		b.addReduce()
	}
}

// predicate generates a WHERE conjunct over a numeric column, records its
// true selectivity under the site-key pattern, and returns its source.
func (b *scriptBuilder) predicate(rs *rowsetInfo, qualifier string) (string, bool) {
	nums := numericCols(rs.cols)
	if len(nums) == 0 {
		return "", false
	}
	col := nums[b.rng.Intn(len(nums))]
	lit := b.newLit()
	ref := col.Name
	// Predicates referencing a qualified column resolve to the bare
	// merged name at compile time; site keys use the bare name.
	_ = qualifier
	var src string
	var sel float64
	if b.rng.Float64() < 0.3 {
		src = fmt.Sprintf("%s == %s", ref, lit)
		sel = logUniform(b.rng, 0.001, 0.08)
	} else {
		op := []string{">", "<", ">=", "<="}[b.rng.Intn(4)]
		src = fmt.Sprintf("%s %s %s", ref, op, lit)
		sel = logUniform(b.rng, 0.05, 0.9)
	}
	// Site key: the compiled conjunct renders as "(ref op lit)".
	var siteExpr string
	if strings.Contains(src, "==") {
		siteExpr = fmt.Sprintf("(%s == %s)", ref, lit)
	} else {
		parts := strings.SplitN(src, " ", 3)
		siteExpr = fmt.Sprintf("(%s %s %s)", parts[0], parts[1], parts[2])
	}
	b.trueSel["filter:"+siteExpr] = sel
	return src, true
}

func (b *scriptBuilder) addFilterSelect() {
	in := b.pickRowset()
	name := b.nextName("rs")
	// Project a random subset of columns (keep the key when present).
	var kept []scope.ColDef
	for _, c := range in.cols {
		if c.Name == in.keyCol || b.rng.Float64() < 0.7 {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		kept = in.cols[:1]
	}
	names := make([]string, len(kept))
	for i, c := range kept {
		names[i] = c.Name
	}
	fmt.Fprintf(&b.script, "%s = SELECT %s FROM %s", name, strings.Join(names, ", "), in.name)

	rows := in.rows
	nPreds := 1 + b.rng.Intn(2)
	var preds []string
	for i := 0; i < nPreds; i++ {
		if p, ok := b.predicate(in, ""); ok {
			preds = append(preds, p)
		}
	}
	if len(preds) > 0 {
		fmt.Fprintf(&b.script, " WHERE %s", strings.Join(preds, " AND "))
		rows *= 0.3
	}
	if b.rng.Float64() < 0.2 && len(numericCols(kept)) > 0 {
		sortCol := numericCols(kept)[0]
		fmt.Fprintf(&b.script, " ORDER BY %s DESC", sortCol.Name)
		if b.rng.Float64() < 0.6 {
			fmt.Fprintf(&b.script, " TOP %d", 100*(1+b.rng.Intn(50)))
		}
	}
	b.script.WriteString(";\n")
	b.addRowset(&rowsetInfo{name: name, cols: kept, keyCol: keyIfKept(kept, in.keyCol), rows: rows})
}

func keyIfKept(cols []scope.ColDef, key string) string {
	for _, c := range cols {
		if c.Name == key {
			return key
		}
	}
	return ""
}

func (b *scriptBuilder) addJoinSelect() {
	// Need two rowsets with key columns and disjoint column names.
	var candidates []*rowsetInfo
	for _, n := range b.order {
		rs := b.rowsets[n]
		if rs.keyCol != "" {
			candidates = append(candidates, rs)
		}
	}
	if len(candidates) < 2 {
		b.addFilterSelect()
		return
	}
	l := candidates[b.rng.Intn(len(candidates))]
	r := candidates[b.rng.Intn(len(candidates))]
	if l == r || sharesColumns(l, r) {
		b.addFilterSelect()
		return
	}
	b.consumed[l.name] = true
	b.consumed[r.name] = true
	name := b.nextName("rs")
	// Keep a subset of both sides.
	var kept []scope.ColDef
	var names []string
	for _, c := range l.cols {
		if c.Name == l.keyCol || b.rng.Float64() < 0.6 {
			kept = append(kept, c)
			names = append(names, "a."+c.Name)
		}
	}
	// A third of joins keep no right-side columns at all: pure
	// existence-filter joins, the natural semi-join-reduction targets.
	if b.rng.Float64() > 0.35 {
		nRight := 0
		for _, c := range r.cols {
			if c.Name != r.keyCol && b.rng.Float64() < 0.5 {
				kept = append(kept, c)
				names = append(names, "b."+c.Name)
				nRight++
			}
		}
		if nRight == 0 && len(r.cols) > 1 {
			c := r.cols[1]
			kept = append(kept, c)
			names = append(names, "b."+c.Name)
		}
	}
	joinKind := "JOIN"
	if b.rng.Float64() < 0.15 {
		joinKind = "LEFT JOIN"
	}
	fmt.Fprintf(&b.script, "%s = SELECT %s FROM %s AS a %s %s AS b ON a.%s == b.%s",
		name, strings.Join(names, ", "), l.name, joinKind, r.name, l.keyCol, r.keyCol)

	// True join selectivity: fanout per left row over the right side.
	fanout := logUniform(b.rng, 0.2, 4)
	sel := fanout / math.Max(r.rows, 1)
	if sel > 1 {
		sel = 1
	}
	site := fmt.Sprintf("join:(%s == %s)", l.keyCol, r.keyCol)
	b.trueSel[site] = sel

	if b.rng.Float64() < 0.4 {
		if p, ok := b.predicate(l, "a"); ok {
			fmt.Fprintf(&b.script, " WHERE %s", p)
		}
	}
	b.script.WriteString(";\n")
	outRows := l.rows * fanout
	b.addRowset(&rowsetInfo{name: name, cols: kept, keyCol: keyIfKept(kept, l.keyCol), rows: outRows})
}

func sharesColumns(a, c *rowsetInfo) bool {
	set := make(map[string]bool, len(a.cols))
	for _, col := range a.cols {
		set[col.Name] = true
	}
	for _, col := range c.cols {
		if set[col.Name] {
			return true
		}
	}
	return false
}

func (b *scriptBuilder) addAggSelect() {
	in := b.pickRowset()
	nums := numericCols(in.cols)
	if len(nums) == 0 || len(in.cols) < 2 {
		b.addFilterSelect()
		return
	}
	name := b.nextName("rs")
	groupCol := in.cols[b.rng.Intn(len(in.cols))]
	aggCol := nums[b.rng.Intn(len(nums))]
	sumName := fmt.Sprintf("sum_%s", aggCol.Name)
	if sumName == groupCol.Name {
		sumName = fmt.Sprintf("sum%d_%s", b.seq, aggCol.Name)
	}
	cntName := fmt.Sprintf("cnt_%d", b.seq)
	fmt.Fprintf(&b.script, "%s = SELECT %s, SUM(%s) AS %s, COUNT(*) AS %s FROM %s GROUP BY %s",
		name, groupCol.Name, aggCol.Name, sumName, cntName, in.name, groupCol.Name)

	frac := logUniform(b.rng, 0.001, 0.4)
	b.trueSel["agg:"+groupCol.Name] = frac

	if b.rng.Float64() < 0.3 {
		lit := b.newLit()
		fmt.Fprintf(&b.script, " HAVING COUNT(*) > %s", lit)
		b.trueSel[fmt.Sprintf("filter:(%s > %s)", cntName, lit)] = logUniform(b.rng, 0.1, 0.9)
	}
	b.script.WriteString(";\n")
	outCols := []scope.ColDef{
		{Name: groupCol.Name, Type: groupCol.Type},
		{Name: sumName, Type: scope.TypeDouble},
		{Name: cntName, Type: scope.TypeLong},
	}
	b.addRowset(&rowsetInfo{name: name, cols: outCols, rows: in.rows * frac})

	// Dashboards routinely slice aggregates by their group column; such
	// filters are the natural targets of the (off-by-default)
	// push-filter-below-aggregate rewrite.
	if isNumeric(groupCol.Type) && b.rng.Float64() < 0.5 {
		fname := b.nextName("rs")
		lit := b.newLit()
		op := []string{">", "<", ">="}[b.rng.Intn(3)]
		fmt.Fprintf(&b.script, "%s = SELECT %s, %s, %s FROM %s WHERE %s %s %s;\n",
			fname, groupCol.Name, sumName, cntName, name, groupCol.Name, op, lit)
		b.trueSel[fmt.Sprintf("filter:(%s %s %s)", groupCol.Name, op, lit)] = logUniform(b.rng, 0.05, 0.6)
		b.consumed[name] = true
		b.addRowset(&rowsetInfo{name: fname, cols: outCols, rows: in.rows * frac * 0.3})
	}
}

func isNumeric(t scope.ColType) bool {
	switch t {
	case scope.TypeInt, scope.TypeLong, scope.TypeFloat, scope.TypeDouble:
		return true
	}
	return false
}

// addUnion creates two compatible filtered branches over one input and
// unions them — the common "same template, different slices" pattern.
func (b *scriptBuilder) addUnion() {
	in := b.pickRowset()
	if len(numericCols(in.cols)) == 0 {
		b.addFilterSelect()
		return
	}
	names := make([]string, len(in.cols))
	for i, c := range in.cols {
		names[i] = c.Name
	}
	cols := strings.Join(names, ", ")
	n1, n2 := b.nextName("br"), b.nextName("br")
	uname := b.nextName("rs")
	p1, _ := b.predicate(in, "")
	p2, _ := b.predicate(in, "")
	fmt.Fprintf(&b.script, "%s = SELECT %s FROM %s WHERE %s;\n", n1, cols, in.name, p1)
	fmt.Fprintf(&b.script, "%s = SELECT %s FROM %s WHERE %s;\n", n2, cols, in.name, p2)
	all := " ALL"
	if b.rng.Float64() < 0.3 {
		all = ""
		key := make([]string, len(in.cols))
		copy(key, names)
		// Distinct site over the union's columns.
		b.trueSel["distinct:"+strings.Join(key, ",")] = logUniform(b.rng, 0.2, 0.95)
	}
	fmt.Fprintf(&b.script, "%s = %s UNION%s %s;\n", uname, n1, all, n2)
	b.consumed[n1] = true
	b.consumed[n2] = true
	b.addRowset(&rowsetInfo{name: uname, cols: in.cols, keyCol: in.keyCol, rows: in.rows * 0.8})
}

func (b *scriptBuilder) addReduce() {
	in := b.pickRowset()
	if in.keyCol == "" {
		b.addFilterSelect()
		return
	}
	name := b.nextName("rs")
	op := fmt.Sprintf("Reducer_%s_%d", b.tID, b.seq)
	outCols := []scope.ColDef{
		{Name: fmt.Sprintf("%s_rk", name), Type: scope.TypeLong},
		{Name: fmt.Sprintf("%s_rv", name), Type: scope.TypeDouble},
	}
	fmt.Fprintf(&b.script, "%s = REDUCE %s ON %s USING %s PRODUCE %s:long, %s:double;\n",
		name, in.name, in.keyCol, op, outCols[0].Name, outCols[1].Name)
	b.trueSel["reduce:"+op] = logUniform(b.rng, 0.05, 0.7)
	b.addRowset(&rowsetInfo{name: name, cols: outCols, rows: in.rows * 0.3})
}

func (b *scriptBuilder) addOutputs() {
	// Every sink rowset is written out, so scripts contain no dead
	// statements; SCOPE jobs commonly have several outputs.
	outIdx := 0
	for _, name := range b.order {
		if b.consumed[name] {
			continue
		}
		fmt.Fprintf(&b.script, "OUTPUT %s TO \"out/%s/result%d_@DATE@.tsv\";\n", name, b.tID, outIdx)
		outIdx++
	}
	if outIdx == 0 {
		last := b.order[len(b.order)-1]
		fmt.Fprintf(&b.script, "OUTPUT %s TO \"out/%s/result0_@DATE@.tsv\";\n", last, b.tID)
	}
}
