package load

import (
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/fleet"
	"qoadvisor/internal/obs"
)

// PhaseReport is one phase's serialized summary inside BENCH_load.json.
type PhaseReport struct {
	Name        string  `json:"name"`
	Shape       string  `json:"shape"`
	DurationSec float64 `json:"durationSec"`
	// OfferedOps is the scheduled arrival count; CompletedOps how many
	// ran to the end. A widening gap means the run was cancelled or the
	// harness itself saturated.
	OfferedOps   int   `json:"offeredOps"`
	CompletedOps int   `json:"completedOps"`
	RankedJobs   int64 `json:"rankedJobs"`
	// GoodputJobsPerSec is successfully ranked jobs per wall second.
	GoodputJobsPerSec float64 `json:"goodputJobsPerSec"`
	// Latency percentiles in milliseconds, measured open-loop (from
	// scheduled send time) unless the phase is the closed-loop arm.
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	// Errors is the typed failure breakdown (api codes + "transport").
	Errors map[string]int64 `json:"errors,omitempty"`
}

// ms renders a duration in float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize condenses a Result into its report row.
func Summarize(res Result) PhaseReport {
	h := res.Hist
	mean := 0.0
	if h.Count > 0 {
		mean = h.SumSeconds() / float64(h.Count) * 1000
	}
	return PhaseReport{
		Name:              res.Phase.Name,
		Shape:             string(res.Phase.Shape),
		DurationSec:       res.Elapsed.Seconds(),
		OfferedOps:        res.Offered,
		CompletedOps:      res.Completed,
		RankedJobs:        res.RankedJobs,
		GoodputJobsPerSec: res.Goodput(),
		MeanMs:            mean,
		P50Ms:             ms(h.Quantile(0.50)),
		P90Ms:             ms(h.Quantile(0.90)),
		P99Ms:             ms(h.Quantile(0.99)),
		P999Ms:            ms(h.Quantile(0.999)),
		Errors:            res.Errors,
	}
}

// StallReport is the injected-stall arm: the same workload measured
// open-loop and closed-loop against a server whose WAL fsync was
// stalled mid-run. The two p99s are the coordinated-omission story in
// two numbers.
type StallReport struct {
	StallMs    float64     `json:"stallMs"`
	OpenLoop   PhaseReport `json:"openLoop"`
	ClosedLoop PhaseReport `json:"closedLoop"`
}

// FleetNodeReport is one node row of the end-of-run fleet scrape.
type FleetNodeReport struct {
	Endpoint     string `json:"endpoint"`
	Role         string `json:"role"`
	RankRequests int64  `json:"rankRequests"`
	LagRecords   int64  `json:"lagRecords,omitempty"`
	Quarantined  int    `json:"quarantined,omitempty"`
	Err          string `json:"err,omitempty"`
}

// FleetReport embeds the end-of-run fleet aggregation: per-node rows
// plus the merged /v2/rank distribution, with the invariant inputs
// (fleet count vs Σ node counts) spelled out so a reader — or the CI
// smoke's -fleet-check — can verify the merge arithmetic.
type FleetReport struct {
	Nodes []FleetNodeReport `json:"nodes"`
	// RankFleetCount is the merged rank-route histogram count;
	// RankNodeSum is the same figure recomputed as Σ per-node counts.
	// They must be equal.
	RankFleetCount uint64  `json:"rankFleetCount"`
	RankNodeSum    uint64  `json:"rankNodeSum"`
	RankP50Ms      float64 `json:"rankP50Ms"`
	RankP99Ms      float64 `json:"rankP99Ms"`
	RankP999Ms     float64 `json:"rankP999Ms"`
}

// FleetReportFrom condenses a fleet snapshot for the report.
func FleetReportFrom(snap *fleet.Snapshot) *FleetReport {
	fr := &FleetReport{}
	var nodeSum uint64
	for _, n := range snap.Nodes {
		row := FleetNodeReport{Endpoint: n.Endpoint, Role: n.Role()}
		if n.Err != nil {
			row.Err = n.Err.Error()
		} else {
			row.RankRequests = n.Stats.RankRequests
			if r := n.Stats.Replication; r != nil && r.Role == api.RoleFollower {
				row.LagRecords = r.LagRecords
			}
			if d := n.Stats.Drift; d != nil {
				row.Quarantined = d.QuarantinedNow
			}
			nodeSum += fleet.FromWire(n.Stats.Routes[api.RouteV2Rank].Hist).Count
		}
		fr.Nodes = append(fr.Nodes, row)
	}
	m := snap.Routes[api.RouteV2Rank]
	fr.RankFleetCount = m.Hist.Count
	fr.RankNodeSum = nodeSum
	fr.RankP50Ms = ms(m.Hist.Quantile(0.50))
	fr.RankP99Ms = ms(m.Hist.Quantile(0.99))
	fr.RankP999Ms = ms(m.Hist.Quantile(0.999))
	return fr
}

// IncidentReport summarizes the primary's incident engine and trace
// flight recorder at end of run, scraped from /v2/incidents and
// /v2/traces. CI's incident-smoke step asserts on these fields (a
// bundle captured, a retained trace covering the injected stall)
// without re-parsing the endpoints itself.
type IncidentReport struct {
	// Bundles is the number of diagnostic bundles on disk.
	Bundles    int    `json:"bundles"`
	LastID     string `json:"lastId,omitempty"`
	LastReason string `json:"lastReason,omitempty"`
	// RetainedTraces is the flight-recorder ring occupancy;
	// MaxTraceMs is the longest retained trace's duration.
	RetainedTraces int     `json:"retainedTraces"`
	MaxTraceMs     float64 `json:"maxTraceMs"`
}

// Report is the BENCH_load.json document.
type Report struct {
	Target    string          `json:"target"`
	Seed      int64           `json:"seed"`
	Batch     int             `json:"batch"`
	Workers   int             `json:"workers"`
	Templates int             `json:"templates"`
	ZipfS     float64         `json:"zipfS"`
	Phases    []PhaseReport   `json:"phases"`
	Stall     *StallReport    `json:"stall,omitempty"`
	Fleet     *FleetReport    `json:"fleet,omitempty"`
	Incidents *IncidentReport `json:"incidents,omitempty"`
}

// Hist re-exports the snapshot type so cmd/qoload can reference
// percentiles without importing obs directly.
type Hist = obs.HistSnapshot
