package load

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/obs"
)

// Target is the slice of the serving API an op exercises: one rank
// batch plus the reward follow-up that closes the steering loop. Both
// *client.Client and *client.Cluster satisfy it, so a run can drive a
// single node or a primary+followers rotation unchanged.
type Target interface {
	RankBatch(ctx context.Context, jobs []api.RankRequest) (api.BatchRankResponse, error)
	RewardBatch(ctx context.Context, events []api.RewardEvent) (api.BatchRewardResponse, error)
}

// Config parameterizes a Runner.
type Config struct {
	Target Target
	// Templates is the synthetic template population size (default 64).
	Templates int
	// ZipfS is the Zipf skew exponent over the template population
	// (must be > 1; default 1.3). Rank 0 dominates, the tail is heavy —
	// the same shape real workloads show.
	ZipfS float64
	// Batch is the jobs per scheduled op (default 16).
	Batch int
	// Workers caps concurrent in-flight ops (default 64). When every
	// worker is blocked on a stalled server, later ops start late and
	// their open-loop latency grows — by design.
	Workers int
	// Timeout bounds each op (default 30s).
	Timeout time.Duration
	// NoRewards skips the reward follow-up, leaving rank-only ops.
	NoRewards bool
	// Seed makes template populations and mixes reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Templates <= 0 {
		c.Templates = 64
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Batch > api.MaxRankBatch {
		c.Batch = api.MaxRankBatch
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// template is one member of the synthetic population.
type template struct {
	hash  api.TemplateHash
	span  []int
	rows  float64
	bytes float64
}

// Result is one phase's (or closed-loop run's) measurements.
type Result struct {
	Phase Phase
	// Offered is the number of scheduled ops; Completed is how many ran
	// to the end (successfully or with a typed error).
	Offered   int
	Completed int
	// RankedJobs counts jobs that received a steering decision;
	// RewardedEvents counts telemetry events accepted by the server.
	RankedJobs     int64
	RewardedEvents int64
	// Errors is the typed failure breakdown: api error codes plus
	// "transport" for connection-level failures.
	Errors map[string]int64
	// Hist is the op latency distribution. Open-loop runs measure from
	// the op's *scheduled* send time; closed-loop runs from actual send.
	Hist obs.HistSnapshot
	// Elapsed is the wall time the run took.
	Elapsed time.Duration
}

// Goodput is successfully ranked jobs per second of wall time.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.RankedJobs) / r.Elapsed.Seconds()
}

// Runner drives load against a Target.
type Runner struct {
	cfg       Config
	templates []template
}

// NewRunner builds a runner with a seeded synthetic template
// population: spans, row counts and byte sizes are drawn once so every
// phase of a run (and every run with the same seed) sees the same
// workload shape.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := make([]template, cfg.Templates)
	for i := range ts {
		lo := rng.Intn(48)
		ts[i] = template{
			hash:  api.TemplateHash(rng.Uint64() | 1),
			span:  []int{lo, lo + 1 + rng.Intn(15)},
			rows:  float64(1 + rng.Intn(1_000_000)),
			bytes: float64(1 + rng.Intn(1_000_000_000)),
		}
	}
	return &Runner{cfg: cfg, templates: ts}
}

// errTally accumulates the typed-error breakdown across workers.
type errTally struct {
	mu sync.Mutex
	m  map[string]int64
}

func (t *errTally) add(code string) {
	t.mu.Lock()
	t.m[code]++
	t.mu.Unlock()
}

// opStats is the shared accumulation state of one run.
type opStats struct {
	hist      obs.Histogram
	ranked    atomic.Int64
	rewarded  atomic.Int64
	completed atomic.Int64
	errs      errTally
}

// RunPhase executes one phase open-loop: the full send schedule is
// computed up front, workers sleep until each op's scheduled instant,
// and latency is measured from that instant regardless of when the op
// actually got a worker — so server stalls surface as tail latency
// instead of silently thinning the arrival stream.
func (r *Runner) RunPhase(ctx context.Context, p Phase) Result {
	sched := p.Schedule()
	start := time.Now()
	times := make(chan time.Time, len(sched))
	for _, off := range sched {
		times <- start.Add(off)
	}
	close(times)

	st := &opStats{errs: errTally{m: make(map[string]int64)}}
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w) + 1))
			zipf := rand.NewZipf(rng, r.cfg.ZipfS, 1, uint64(len(r.templates)-1))
			for at := range times {
				if d := time.Until(at); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				if ctx.Err() != nil {
					return
				}
				r.doOp(ctx, at, rng, zipf, st)
			}
		}(w)
	}
	wg.Wait()

	return Result{
		Phase:          p,
		Offered:        len(sched),
		Completed:      int(st.completed.Load()),
		RankedJobs:     st.ranked.Load(),
		RewardedEvents: st.rewarded.Load(),
		Errors:         st.errs.m,
		Hist:           st.hist.Snapshot(),
		Elapsed:        time.Since(start),
	}
}

// doOp executes one op — rank a batch, reward its bandit decisions —
// and records its latency from the scheduled send time `at`.
func (r *Runner) doOp(ctx context.Context, at time.Time, rng *rand.Rand, zipf *rand.Zipf, st *opStats) {
	opCtx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()

	jobs := make([]api.RankRequest, r.cfg.Batch)
	hashes := make([]api.TemplateHash, r.cfg.Batch)
	for i := range jobs {
		t := r.templates[zipf.Uint64()]
		hashes[i] = t.hash
		jobs[i] = api.RankRequest{
			TemplateHash: t.hash,
			Span:         t.span,
			RowCount:     t.rows,
			BytesRead:    t.bytes,
		}
	}
	resp, err := r.cfg.Target.RankBatch(opCtx, jobs)
	if err != nil {
		st.errs.add(errCode(err))
		st.completed.Add(1)
		return
	}
	var events []api.RewardEvent
	for i, res := range resp.Results {
		if res.Error != nil {
			st.errs.add(res.Error.Code)
			continue
		}
		st.ranked.Add(1)
		if res.EventID != "" && !r.cfg.NoRewards {
			reward := rng.Float64()
			events = append(events, api.RewardEvent{
				EventID:      res.EventID,
				Reward:       &reward,
				TemplateHash: &hashes[i],
			})
		}
	}
	if len(events) > 0 {
		rresp, rerr := r.cfg.Target.RewardBatch(opCtx, events)
		if rerr != nil {
			st.errs.add(errCode(rerr))
		} else {
			st.rewarded.Add(int64(rresp.Queued))
			for _, rej := range rresp.Rejected {
				st.errs.add(rej.Error.Code)
			}
		}
	}
	st.hist.Observe(time.Since(at))
	st.completed.Add(1)
}

// errCode maps an op failure to its tally key: the api error code when
// the server answered with an envelope, "transport" otherwise.
func errCode(err error) string {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.Code
	}
	return "transport"
}

// ErrorCodes returns the tally's keys sorted, for stable reports.
func (r Result) ErrorCodes() []string {
	codes := make([]string, 0, len(r.Errors))
	for c := range r.Errors {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	return codes
}
