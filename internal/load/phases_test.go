package load

import (
	"testing"
	"time"
)

func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("steady:30s@400, ramp:1m@100..2000,day:45s@200~800,crowd:30s@100!1500")
	if err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		{Name: "steady", Shape: ShapeConstant, Duration: 30 * time.Second, Low: 400},
		{Name: "ramp", Shape: ShapeRamp, Duration: time.Minute, Low: 100, High: 2000},
		{Name: "day", Shape: ShapeDiurnal, Duration: 45 * time.Second, Low: 200, High: 800},
		{Name: "crowd", Shape: ShapeFlash, Duration: 30 * time.Second, Low: 100, High: 1500},
	}
	if len(phases) != len(want) {
		t.Fatalf("got %d phases, want %d", len(phases), len(want))
	}
	for i, p := range phases {
		if p != want[i] {
			t.Errorf("phase %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestParsePhasesRejects(t *testing.T) {
	for _, spec := range []string{"", "noduration@50", "x:5s", "x:5s@", "x:0s@50", "x:5s@-3", "x:5s@10..-3", "x:5s@abc"} {
		if _, err := ParsePhases(spec); err == nil {
			t.Errorf("spec %q: want error", spec)
		}
	}
}

// TestScheduleDensity pins that the schedule integrates the rate curve:
// a constant phase yields rate*duration ops, and a ramp's second half
// is denser than its first.
func TestScheduleDensity(t *testing.T) {
	c := Phase{Name: "c", Shape: ShapeConstant, Duration: 2 * time.Second, Low: 500}
	sched := c.Schedule()
	if n := len(sched); n < 990 || n > 1010 {
		t.Fatalf("constant 500/s over 2s: %d ops, want ~1000", n)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] <= sched[i-1] {
			t.Fatal("schedule must be strictly increasing")
		}
	}

	ramp := Phase{Name: "r", Shape: ShapeRamp, Duration: 2 * time.Second, Low: 100, High: 900}
	rs := ramp.Schedule()
	var first, second int
	for _, off := range rs {
		if off < time.Second {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Fatalf("ramp second half (%d ops) must outnumber first (%d)", second, first)
	}
}

// TestFlashShape pins the flash crowd's burst window: the middle third
// runs at High, the rest at Low.
func TestFlashShape(t *testing.T) {
	p := Phase{Name: "f", Shape: ShapeFlash, Duration: 3 * time.Second, Low: 100, High: 1000}
	if r := p.RateAt(500 * time.Millisecond); r != 100 {
		t.Fatalf("pre-burst rate %v, want 100", r)
	}
	if r := p.RateAt(1500 * time.Millisecond); r != 1000 {
		t.Fatalf("burst rate %v, want 1000", r)
	}
	if r := p.RateAt(2500 * time.Millisecond); r != 100 {
		t.Fatalf("post-burst rate %v, want 100", r)
	}
}

// TestDiurnalShape pins trough at the edges, peak in the middle.
func TestDiurnalShape(t *testing.T) {
	p := Phase{Name: "d", Shape: ShapeDiurnal, Duration: 10 * time.Second, Low: 200, High: 800}
	if r := p.RateAt(0); r != 200 {
		t.Fatalf("trough rate %v, want 200", r)
	}
	if r := p.RateAt(5 * time.Second); r < 799 || r > 801 {
		t.Fatalf("peak rate %v, want ~800", r)
	}
}
