package load

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qoadvisor/internal/api/client"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/wal"
)

// startSyncServer spins a sync-mode WAL-backed server: every reward
// batch's acknowledgment waits for the group fsync, so an injected
// SyncDelay stalls the reward path exactly like a sick disk would.
func startSyncServer(t *testing.T) (*wal.WAL, *httptest.Server) {
	t.Helper()
	j, err := wal.Open(wal.Options{Dir: t.TempDir(), Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Seed: 42, WAL: j})
	t.Cleanup(func() { srv.Close(); j.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return j, ts
}

// armStall installs a one-shot fsync stall that fires once the run is
// `after` old, freezing every in-flight sync-mode commit for `stall`.
func armStall(j *wal.WAL, after, stall time.Duration) {
	start := time.Now()
	var fired atomic.Bool
	j.SetFaults(&wal.Faults{SyncDelay: func() time.Duration {
		if time.Since(start) >= after && fired.CompareAndSwap(false, true) {
			return stall
		}
		return 0
	}})
}

// TestCoordinatedOmission pins the reason this harness is open-loop.
// The same workload runs twice against a sync-mode WAL server with an
// identical injected fsync stall:
//
//   - open-loop: arrivals keep coming on schedule during the stall, so
//     every op queued behind the frozen group commit measures its full
//     wait from its scheduled send time — the stall lands in p99;
//   - closed-loop: the driver just stops sending while stalled, so the
//     stall appears in at most one sample per worker and p99 stays at
//     the fast-path figure.
//
// A closed-loop benchmark would therefore certify a latency SLO this
// server does not meet. That is coordinated omission.
func TestCoordinatedOmission(t *testing.T) {
	const stall = 600 * time.Millisecond
	ctx := context.Background()

	// Open-loop arm: 200 ops/s for 1.2s, stall at t=300ms. The ~120 ops
	// scheduled during the stall back up behind the frozen fsync.
	jOpen, tsOpen := startSyncServer(t)
	open := NewRunner(Config{Target: client.New(tsOpen.URL), Batch: 2, Workers: 256, Seed: 11})
	armStall(jOpen, 300*time.Millisecond, stall)
	openRes := open.RunPhase(ctx, Phase{
		Name: "stall-open", Shape: ShapeConstant, Duration: 1200 * time.Millisecond, Low: 200,
	})

	// Closed-loop arm: same server config, same stall, one back-to-back
	// worker issuing a fixed op count so exactly one sample absorbs the
	// whole stall.
	jClosed, tsClosed := startSyncServer(t)
	closed := NewRunner(Config{Target: client.New(tsClosed.URL), Batch: 2, Workers: 1, Seed: 11})
	armStall(jClosed, 300*time.Millisecond, stall)
	closedRes := closed.RunClosedLoopN(ctx, 400, 1)

	openP99 := openRes.Hist.Quantile(0.99)
	closedP99 := closedRes.Hist.Quantile(0.99)
	t.Logf("open-loop p99 %v (%d ops, errs %v); closed-loop p99 %v (%d ops, errs %v)",
		openP99, openRes.Completed, openRes.Errors, closedP99, closedRes.Completed, closedRes.Errors)

	if openRes.RankedJobs == 0 || closedRes.RankedJobs == 0 {
		t.Fatal("both arms must rank jobs")
	}
	// The open-loop tail must carry a large fraction of the stall.
	if openP99 < stall/3 {
		t.Fatalf("open-loop p99 %v failed to capture the %v stall", openP99, stall)
	}
	// The closed-loop tail must miss it: 1 stalled sample in 400 sits
	// beyond the 99th percentile.
	if closedP99 > stall/3 {
		t.Fatalf("closed-loop p99 %v unexpectedly captured the stall — control arm broken", closedP99)
	}
	if openP99 < 3*closedP99 {
		t.Fatalf("open-loop p99 %v must dwarf closed-loop p99 %v", openP99, closedP99)
	}
}
