package load

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RunClosedLoopN drives n ops back-to-back across `workers` concurrent
// loops, measuring each op from its *actual* send time. This is the
// coordinated-omission control arm: when the server stalls, a closed
// loop simply stops sending, so the stall appears in at most one
// sample per worker and the offered load silently drops. Its
// percentiles therefore under-report exactly the incidents an
// open-loop run is built to expose; co_test.go pins that gap.
func (r *Runner) RunClosedLoopN(ctx context.Context, n, workers int) Result {
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	st := &opStats{errs: errTally{m: make(map[string]int64)}}
	var remaining = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		remaining <- struct{}{}
	}
	close(remaining)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + 7919*int64(w+1)))
			zipf := rand.NewZipf(rng, r.cfg.ZipfS, 1, uint64(len(r.templates)-1))
			for range remaining {
				if ctx.Err() != nil {
					return
				}
				r.doOp(ctx, time.Now(), rng, zipf, st)
			}
		}(w)
	}
	wg.Wait()

	return Result{
		Phase:          Phase{Name: "closed-loop", Shape: ShapeConstant, Duration: time.Since(start)},
		Offered:        n,
		Completed:      int(st.completed.Load()),
		RankedJobs:     st.ranked.Load(),
		RewardedEvents: st.rewarded.Load(),
		Errors:         st.errs.m,
		Hist:           st.hist.Snapshot(),
		Elapsed:        time.Since(start),
	}
}
