// Package load is the open-loop traffic harness behind cmd/qoload.
//
// The defining property is *open-loop* scheduling: every request's
// send time is computed in advance from the phase's rate function, and
// latency is measured from that scheduled instant — not from whenever
// the client got around to sending. A closed-loop driver (send, wait,
// send again) silently slows down when the server stalls, so the stall
// never shows up in its percentiles; that distortion is coordinated
// omission, and this package exists to not have it. The closed-loop
// driver in closed.go is kept only as the control arm that
// demonstrates the gap (see co_test.go).
package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Shape is a phase's rate curve.
type Shape string

const (
	// ShapeConstant holds Low ops/s for the whole phase.
	ShapeConstant Shape = "constant"
	// ShapeRamp moves linearly from Low to High ops/s.
	ShapeRamp Shape = "ramp"
	// ShapeDiurnal traces one sinusoidal trough→peak→trough cycle
	// between Low and High — a compressed day of traffic.
	ShapeDiurnal Shape = "diurnal"
	// ShapeFlash serves Low except for the middle third of the phase,
	// which jumps to High instantly — a flash crowd.
	ShapeFlash Shape = "flash"
)

// Phase is one segment of a load plan.
type Phase struct {
	Name     string
	Shape    Shape
	Duration time.Duration
	// Low and High bound the rate curve in ops/s; ShapeConstant uses
	// only Low.
	Low, High float64
}

// RateAt evaluates the phase's rate curve at offset t ∈ [0, Duration).
func (p Phase) RateAt(t time.Duration) float64 {
	x := float64(t) / float64(p.Duration)
	switch p.Shape {
	case ShapeRamp:
		return p.Low + (p.High-p.Low)*x
	case ShapeDiurnal:
		return p.Low + (p.High-p.Low)*(1-math.Cos(2*math.Pi*x))/2
	case ShapeFlash:
		if x >= 1.0/3 && x < 2.0/3 {
			return p.High
		}
		return p.Low
	default:
		return p.Low
	}
}

// Schedule precomputes every op's send offset for the phase by
// integrating the rate curve: after an op at offset t, the next comes
// 1/RateAt(t) later. Scheduling ahead of time is what makes the
// harness open-loop — the plan never flexes to match the server.
func (p Phase) Schedule() []time.Duration {
	var out []time.Duration
	for t := time.Duration(0); t < p.Duration; {
		r := p.RateAt(t)
		if r <= 0 {
			t += 10 * time.Millisecond
			continue
		}
		out = append(out, t)
		t += time.Duration(float64(time.Second) / r)
	}
	return out
}

// ParsePhases parses a load plan spec: comma-separated phases of the
// form name:duration@rate, where rate is
//
//	500        constant 500 ops/s
//	100..2000  linear ramp 100→2000
//	200~800    diurnal sinusoid between 200 and 800
//	100!2000   flash crowd: 100 baseline, 2000 during the middle third
//
// e.g. "steady:30s@400,ramp:60s@100..2000,crowd:30s@200!1500".
func ParsePhases(spec string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("load: phase %q: want name:duration@rate", part)
		}
		durStr, rateStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("load: phase %q: missing @rate", part)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("load: phase %q: bad duration %q", part, durStr)
		}
		p := Phase{Name: name, Duration: dur}
		switch {
		case strings.Contains(rateStr, ".."):
			p.Shape = ShapeRamp
			p.Low, p.High, err = parseRatePair(rateStr, "..")
		case strings.Contains(rateStr, "~"):
			p.Shape = ShapeDiurnal
			p.Low, p.High, err = parseRatePair(rateStr, "~")
		case strings.Contains(rateStr, "!"):
			p.Shape = ShapeFlash
			p.Low, p.High, err = parseRatePair(rateStr, "!")
		default:
			p.Shape = ShapeConstant
			p.Low, err = strconv.ParseFloat(rateStr, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("load: phase %q: bad rate %q: %v", part, rateStr, err)
		}
		if p.Low < 0 || p.High < 0 {
			return nil, fmt.Errorf("load: phase %q: negative rate", part)
		}
		phases = append(phases, p)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("load: empty phase spec %q", spec)
	}
	return phases, nil
}

func parseRatePair(s, sep string) (lo, hi float64, err error) {
	a, b, _ := strings.Cut(s, sep)
	if lo, err = strconv.ParseFloat(a, 64); err != nil {
		return 0, 0, err
	}
	hi, err = strconv.ParseFloat(b, 64)
	return lo, hi, err
}
