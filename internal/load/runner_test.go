package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/serve"
)

func startServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(serve.Config{Seed: 42})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestRunPhaseOpenLoop drives a short constant phase against a live
// in-process server and checks the harness accounting end to end:
// every scheduled op completes, every job gets a decision, rewards
// close the loop, goodput is nonzero, and the latency histogram holds
// one sample per op.
func TestRunPhaseOpenLoop(t *testing.T) {
	_, ts := startServer(t)
	r := NewRunner(Config{
		Target: client.New(ts.URL),
		Batch:  4, Workers: 8, Seed: 1,
	})
	res := r.RunPhase(context.Background(), Phase{
		Name: "smoke", Shape: ShapeConstant, Duration: 500 * time.Millisecond, Low: 100,
	})
	if res.Offered < 45 || res.Offered > 55 {
		t.Fatalf("offered %d ops, want ~50", res.Offered)
	}
	if res.Completed != res.Offered {
		t.Fatalf("completed %d of %d ops", res.Completed, res.Offered)
	}
	if want := int64(res.Offered * 4); res.RankedJobs != want {
		t.Fatalf("ranked %d jobs, want %d (errors: %v)", res.RankedJobs, want, res.Errors)
	}
	if res.RewardedEvents == 0 {
		t.Fatal("rewards must close the loop on a bandit-only server")
	}
	if res.Goodput() <= 0 {
		t.Fatal("goodput must be nonzero")
	}
	if res.Hist.Count != uint64(res.Completed) {
		t.Fatalf("histogram holds %d samples, want %d", res.Hist.Count, res.Completed)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
}

// TestRunPhaseTypedErrors pins the typed-error breakdown: an
// unreachable target yields transport errors, not a panic or a silent
// zero.
func TestRunPhaseTypedErrors(t *testing.T) {
	r := NewRunner(Config{
		Target: client.New("http://127.0.0.1:1"), // nothing listens
		Batch:  2, Workers: 4, Seed: 1, Timeout: time.Second,
	})
	res := r.RunPhase(context.Background(), Phase{
		Name: "dead", Shape: ShapeConstant, Duration: 200 * time.Millisecond, Low: 50,
	})
	if res.RankedJobs != 0 {
		t.Fatalf("ranked %d jobs against a dead target", res.RankedJobs)
	}
	if res.Errors["transport"] != int64(res.Completed) || res.Completed == 0 {
		t.Fatalf("want every op tallied as transport error, got %v over %d ops", res.Errors, res.Completed)
	}
}

// TestZipfMixIsHeavyTailed pins the template mix shape: with skew >1
// the most popular template must dominate a uniform share by a wide
// margin.
func TestZipfMixIsHeavyTailed(t *testing.T) {
	counts := map[api.TemplateHash]int{}
	rec := &recordingTarget{onRank: func(jobs []api.RankRequest) {
		for _, j := range jobs {
			counts[j.TemplateHash]++
		}
	}}
	r := NewRunner(Config{Target: rec, Templates: 64, ZipfS: 1.3, Batch: 8, Workers: 1, Seed: 3})
	r.RunPhase(context.Background(), Phase{Name: "z", Shape: ShapeConstant, Duration: 300 * time.Millisecond, Low: 200})

	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		t.Fatal("no jobs recorded")
	}
	if share := float64(max) / float64(total); share < 0.2 {
		t.Fatalf("top template share %.2f, want heavy-tailed (≥ 0.2; uniform would be %.3f)", share, 1.0/64)
	}
}

// recordingTarget is an in-memory Target for mix-shape tests.
type recordingTarget struct {
	onRank func(jobs []api.RankRequest)
}

func (r *recordingTarget) RankBatch(_ context.Context, jobs []api.RankRequest) (api.BatchRankResponse, error) {
	r.onRank(jobs)
	out := api.BatchRankResponse{Results: make([]api.RankResult, len(jobs))}
	for i := range out.Results {
		out.Results[i].Source = api.SourceBandit
	}
	return out, nil
}

func (r *recordingTarget) RewardBatch(_ context.Context, events []api.RewardEvent) (api.BatchRewardResponse, error) {
	return api.BatchRewardResponse{Queued: len(events)}, nil
}
