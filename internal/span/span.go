// Package span implements the job-span computation of §4.1: a fix-point
// heuristic that discovers all optimizer rules which, if enabled or
// disabled, can affect a job's final query plan. The span is what limits
// QO-Advisor's action space — the contextual bandit only considers
// flipping rules inside the span.
package span

import (
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// DefaultMaxIterations bounds the fix-point loop.
const DefaultMaxIterations = 8

// Result describes a computed job span.
type Result struct {
	// Span is the set of plan-affecting, non-required rules.
	Span rules.Bitset
	// Iterations is the number of recompilation passes performed.
	Iterations int
	// FailedCompile reports whether the fix point was reached because a
	// perturbed configuration failed to compile (a legitimate
	// termination condition per the paper).
	FailedCompile bool
	// DefaultSignature is the rule signature under the default config.
	DefaultSignature rules.Signature
	// DefaultCost is the estimated cost under the default config.
	DefaultCost float64
}

// Options configures span computation.
type Options struct {
	Optimizer optimizer.Options
	// MaxIterations bounds the fix-point loop; 0 means
	// DefaultMaxIterations.
	MaxIterations int
	// Refine performs one extra single-flip recompilation per candidate
	// rule and drops candidates whose flip leaves both the estimated
	// cost and the signature unchanged ("skipping the unworthy ones").
	Refine bool
}

// Compute runs the span fix-point algorithm for one job.
//
// Starting from the default configuration's signature, it enables all
// off-by-default rules and disables the on-by-default and implementation
// rules that appeared in the signature, recompiles, and repeats — turning
// off newly used rules each round — until no new rule is discovered or a
// recompilation fails.
func Compute(g *scope.Graph, cat *rules.Catalog, opts Options) (*Result, error) {
	if cat == nil {
		cat = rules.NewCatalog()
	}
	if opts.Optimizer.Catalog == nil {
		opts.Optimizer.Catalog = cat
	}
	maxIters := opts.MaxIterations
	if maxIters <= 0 {
		maxIters = DefaultMaxIterations
	}

	def := cat.DefaultConfig()
	base, err := optimizer.Optimize(g, def, opts.Optimizer)
	if err != nil {
		return nil, err // the default config must compile
	}
	res := &Result{
		DefaultSignature: base.Signature,
		DefaultCost:      base.EstCost,
	}

	// The exploration baseline: everything enabled, including the
	// off-by-default rules.
	explore := def
	for _, r := range cat.Rules(rules.OffByDefault) {
		explore.Set(r.ID)
	}

	isSteerable := func(id int) bool {
		return cat.Rule(id).Category != rules.Required
	}

	var seen rules.Bitset // steerable rules observed in any signature
	for _, id := range base.Signature.Bits() {
		if isSteerable(id) {
			seen.Set(id)
		}
	}
	turnedOff := seen // value copy: rules to disable next round

	// Exploration degrades through three levels when a perturbed
	// configuration fails to compile: (0) everything enabled including
	// off-by-default rules and all signature rules disabled, (1) the same
	// without the risky off-by-default rules, (2) disabling only the
	// rewrite (on-by-default) signature rules, keeping implementation
	// rules available. Level 2 always compiles for plans that compiled
	// under the default configuration.
	level := 0
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		cfg := explore
		if level >= 1 {
			cfg = def
		}
		for _, id := range turnedOff.Bits() {
			if level >= 2 && cat.Rule(id).Category == rules.Implementation {
				continue
			}
			cfg.Clear(id)
		}
		r, err := optimizer.Optimize(g, cfg, opts.Optimizer)
		if err != nil {
			if optimizer.IsCompileFailure(err) {
				if level < 2 {
					level++
					continue
				}
				res.FailedCompile = true
				break
			}
			return nil, err
		}
		newFound := false
		for _, id := range r.Signature.Bits() {
			if isSteerable(id) && !seen.Get(id) {
				seen.Set(id)
				turnedOff.Set(id)
				newFound = true
			}
		}
		if !newFound {
			break
		}
	}
	res.Span = seen

	if opts.Refine {
		res.Span = refine(g, cat, opts.Optimizer, def, base, seen)
	}
	return res, nil
}

// refine drops span candidates whose single flip does not change the
// estimated cost or the signature — flips that provably cannot steer.
func refine(g *scope.Graph, cat *rules.Catalog, oopts optimizer.Options, def rules.Config, base *optimizer.Result, candidates rules.Bitset) rules.Bitset {
	var kept rules.Bitset
	for _, id := range candidates.Bits() {
		flip := cat.FlipFor(id)
		r, err := optimizer.Optimize(g, def.WithFlip(flip), oopts)
		if err != nil {
			kept.Set(id) // a failing flip definitely affects the plan
			continue
		}
		if r.EstCost != base.EstCost || !r.Signature.Equal(base.Signature.Bitset) {
			kept.Set(id)
		}
	}
	return kept
}
