package span

import (
	"testing"

	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
	"qoadvisor/internal/workload"
)

const spanScript = `
logs = EXTRACT uid:long, page:string, dur:int FROM "data/logs.tsv";
users = EXTRACT uid:long, region:string FROM "data/users.tsv";
clicks = SELECT uid, dur FROM logs WHERE dur > 100;
joined = SELECT l.uid, l.dur, u.region FROM clicks AS l JOIN users AS u ON l.uid == u.uid;
agg = SELECT region, SUM(dur) AS total FROM joined GROUP BY region ORDER BY total DESC TOP 10;
OUTPUT agg TO "out/agg.tsv";
`

func spanStats() optimizer.MapStats {
	return optimizer.MapStats{
		"data/logs.tsv":  {Rows: 5e6, NDV: map[string]float64{"uid": 1e5, "dur": 1000}},
		"data/users.tsv": {Rows: 1e5, NDV: map[string]float64{"uid": 1e5, "region": 40}},
	}
}

func computeSpan(t *testing.T, refine bool) *Result {
	t.Helper()
	g, err := scope.CompileScript(spanScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	res, err := Compute(g, cat, Options{
		Optimizer: optimizer.Options{Catalog: cat, Stats: spanStats()},
		Refine:    refine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpanIsNonEmpty(t *testing.T) {
	res := computeSpan(t, false)
	if res.Span.IsEmpty() {
		t.Fatal("span should not be empty for a join+agg job")
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.DefaultCost <= 0 {
		t.Errorf("default cost = %v", res.DefaultCost)
	}
}

func TestSpanExcludesRequiredRules(t *testing.T) {
	res := computeSpan(t, false)
	cat := rules.NewCatalog()
	for _, id := range res.Span.Bits() {
		if cat.Rule(id).Category == rules.Required {
			t.Errorf("required rule %d in span", id)
		}
	}
}

func TestSpanContainsDefaultSignatureRules(t *testing.T) {
	res := computeSpan(t, false)
	cat := rules.NewCatalog()
	for _, id := range res.DefaultSignature.Bits() {
		if cat.Rule(id).Category == rules.Required {
			continue
		}
		if !res.Span.Get(id) {
			t.Errorf("fired rule %d missing from span", id)
		}
	}
}

func TestSpanDiscoversAlternatives(t *testing.T) {
	// The fix point must discover rules beyond the default signature:
	// disabling the chosen implementations forces alternatives to fire.
	res := computeSpan(t, false)
	var def rules.Bitset
	for _, id := range res.DefaultSignature.Bits() {
		def.Set(id)
	}
	extra := res.Span.Minus(def)
	if extra.IsEmpty() {
		t.Error("span should contain alternative rules beyond the default signature")
	}
}

func TestSpanIsDeterministic(t *testing.T) {
	a := computeSpan(t, false)
	b := computeSpan(t, false)
	if !a.Span.Equal(b.Span) {
		t.Error("span not deterministic")
	}
}

func TestRefineShrinksOrKeepsSpan(t *testing.T) {
	full := computeSpan(t, false)
	refined := computeSpan(t, true)
	if refined.Span.Count() > full.Span.Count() {
		t.Errorf("refined span (%d) larger than full (%d)", refined.Span.Count(), full.Span.Count())
	}
	// Refined span must be a subset.
	if !refined.Span.Minus(full.Span).IsEmpty() {
		t.Error("refined span is not a subset of the full span")
	}
}

func TestSpanAcrossWorkloadTemplates(t *testing.T) {
	gen, err := workload.New(workload.Config{Seed: 4, NumTemplates: 20})
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	sizes := make([]int, 0, 20)
	for _, tpl := range gen.Templates() {
		j, err := tpl.Instantiate(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compute(j.Graph, cat, Options{
			Optimizer: optimizer.Options{Catalog: cat, Stats: j.Stats, Tokens: j.Tokens},
		})
		if err != nil {
			t.Fatalf("template %s: %v", tpl.ID, err)
		}
		sizes = append(sizes, res.Span.Count())
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	avg := float64(sum) / float64(len(sizes))
	// The paper reports an average span around 10 with a long tail;
	// our simulator should land in a sane band.
	if avg < 2 || avg > 60 {
		t.Errorf("average span size %.1f out of plausible band", avg)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g, err := scope.CompileScript(spanScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	res, err := Compute(g, cat, Options{
		Optimizer:     optimizer.Options{Catalog: cat, Stats: spanStats()},
		MaxIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("iterations = %d, want <= 1", res.Iterations)
	}
}
