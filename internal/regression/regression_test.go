package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversExactLine(t *testing.T) {
	// y = 3 + 2*x0 - x1, noise free.
	X := [][]float64{{1, 0}, {0, 1}, {2, 3}, {4, 1}, {5, 5}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 3 + 2*row[0] - row[1]
	}
	m, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-8 || math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+1) > 1e-8 {
		t.Errorf("model = %s", m)
	}
}

func TestFitWithNoiseApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		X = append(X, []float64{x})
		y = append(y, 1.5+0.8*x+rng.NormFloat64()*0.1)
	}
	m, err := Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.8) > 0.05 || math.Abs(m.Intercept-1.5) > 0.1 {
		t.Errorf("model = %s", m)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should fail")
	}
	// Perfectly collinear features are singular without ridge.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := Fit(X, y); err == nil {
		t.Error("collinear OLS should be singular")
	}
	if _, err := FitRidge(X, y, 0.1); err != nil {
		t.Errorf("ridge should handle collinearity: %v", err)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		X = append(X, []float64{x})
		y = append(y, 5*x+rng.NormFloat64()*0.01)
	}
	ols, _ := Fit(X, y)
	ridge, _ := FitRidge(X, y, 1000)
	if math.Abs(ridge.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Errorf("ridge |coef| %v should be < ols %v", ridge.Coef[0], ols.Coef[0])
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	// y = 1 - 2x + 0.5x^2
	var xs, ys []float64
	for x := -5.0; x <= 5; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, 1-2*x+0.5*x*x)
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	for i, w := range want {
		if math.Abs(p.Coef[i]-w) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", i, p.Coef[i], w)
		}
	}
	if got := p.Predict(2); math.Abs(got-(1-4+2)) > 1e-6 {
		t.Errorf("Predict(2) = %v", got)
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	p, err := PolyFit([]float64{1, 2, 3}, []float64{4, 5, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Predict(100)-5) > 1e-9 {
		t.Errorf("degree-0 fit should be the mean, got %v", p.Predict(100))
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit(nil, nil, 1); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree should fail")
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r2 := RSquared(y, y); math.Abs(r2-1) > 1e-12 {
		t.Errorf("perfect prediction R2 = %v", r2)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r2 := RSquared(y, mean); math.Abs(r2) > 1e-12 {
		t.Errorf("mean prediction R2 = %v", r2)
	}
	if r2 := RSquared(y, []float64{1}); r2 != 0 {
		t.Error("mismatched lengths should return 0")
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2}, []float64{2, 4}); got != 1.5 {
		t.Errorf("MAE = %v", got)
	}
	if MAE(nil, nil) != 0 {
		t.Error("empty MAE should be 0")
	}
}

func TestTemporalSplit(t *testing.T) {
	samples := []Sample{
		{Date: 1, Y: 1}, {Date: 5, Y: 2}, {Date: 8, Y: 3}, {Date: 10, Y: 4},
	}
	train, test := TemporalSplit(samples, 8)
	if len(train) != 2 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	for _, s := range train {
		if s.Date >= 8 {
			t.Error("train contains future sample")
		}
	}
	for _, s := range test {
		if s.Date < 8 {
			t.Error("test contains past sample")
		}
	}
}

func TestFitSamples(t *testing.T) {
	var samples []Sample
	for i := 0; i < 50; i++ {
		x := float64(i)
		samples = append(samples, Sample{Date: i % 14, X: []float64{x}, Y: 2*x + 1})
	}
	m, err := FitSamples(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 1e-6 {
		t.Errorf("model = %s", m)
	}
	if _, err := FitSamples(nil, 0); err == nil {
		t.Error("no samples should fail")
	}
}

// Property: OLS residuals are orthogonal to the features (normal
// equations hold).
func TestOLSNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		d := 1 + rng.Intn(3)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
			}
			y[i] = rng.NormFloat64()
		}
		m, err := Fit(X, y)
		if err != nil {
			return true // singular draws are fine to skip
		}
		for j := 0; j < d; j++ {
			dot := 0.0
			for i := range X {
				res := y[i] - m.Predict(X[i])
				dot += res * X[i][j]
			}
			if math.Abs(dot) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: adding ridge penalty never increases coefficient norms.
func TestRidgeMonotoneShrinkageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 10
		}
		small, err1 := FitRidge(X, y, 0.01)
		large, err2 := FitRidge(X, y, 100)
		if err1 != nil || err2 != nil {
			return true
		}
		normSmall := small.Coef[0]*small.Coef[0] + small.Coef[1]*small.Coef[1]
		normLarge := large.Coef[0]*large.Coef[0] + large.Coef[1]*large.Coef[1]
		return normLarge <= normSmall+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
