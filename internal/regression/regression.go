// Package regression provides the small linear-modelling toolkit
// QO-Advisor's Validation stage relies on: ordinary least squares, ridge
// regularization, one-dimensional polynomial fits (the trend lines in
// Figures 7 and 8), and temporal train/test splitting of timestamped
// datasets (§4.3: "split the dataset by date ... to test whether the
// trained model can generalize to other dates temporally").
package regression

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are not solvable.
var ErrSingular = errors.New("regression: singular system")

// Linear is a fitted linear model y = Intercept + Σ Coef[i] * x[i].
type Linear struct {
	Coef      []float64
	Intercept float64
}

// Predict evaluates the model on one feature vector.
func (m *Linear) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		if i < len(x) {
			y += c * x[i]
		}
	}
	return y
}

// String renders the model equation.
func (m *Linear) String() string {
	s := fmt.Sprintf("y = %.4g", m.Intercept)
	for i, c := range m.Coef {
		s += fmt.Sprintf(" + %.4g*x%d", c, i)
	}
	return s
}

// Fit performs ordinary least squares of y on X (rows are observations).
func Fit(X [][]float64, y []float64) (*Linear, error) {
	return FitRidge(X, y, 0)
}

// FitRidge performs ridge regression with penalty lambda >= 0 (the
// intercept is not penalized).
func FitRidge(X [][]float64, y []float64, lambda float64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("regression: bad dimensions")
	}
	d := len(X[0])
	for _, row := range X {
		if len(row) != d {
			return nil, errors.New("regression: ragged feature matrix")
		}
	}
	// Augment with the intercept column.
	k := d + 1
	// Normal equations: (A'A + λI) w = A'y with A = [1 | X].
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k+1) // last column holds A'y
	}
	for r := 0; r < n; r++ {
		row := make([]float64, k)
		row[0] = 1
		copy(row[1:], X[r])
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][k] += row[i] * y[r]
		}
	}
	for i := 1; i < k; i++ { // skip the intercept
		ata[i][i] += lambda
	}
	w, err := solve(ata)
	if err != nil {
		return nil, err
	}
	return &Linear{Intercept: w[0], Coef: w[1:]}, nil
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented matrix [M | b], returning the solution vector.
func solve(m [][]float64) ([]float64, error) {
	k := len(m)
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	w := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := m[i][k]
		for j := i + 1; j < k; j++ {
			sum -= m[i][j] * w[j]
		}
		w[i] = sum / m[i][i]
	}
	return w, nil
}

// Polynomial is a fitted 1-D polynomial y = Σ Coef[i] * x^i.
type Polynomial struct {
	Coef []float64 // Coef[0] is the constant term
}

// Predict evaluates the polynomial at x.
func (p *Polynomial) Predict(x float64) float64 {
	y := 0.0
	pow := 1.0
	for _, c := range p.Coef {
		y += c * pow
		pow *= x
	}
	return y
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by least
// squares — the "one-dimensional polynomial fit" trend lines of the
// paper's Figures 7 and 8.
func PolyFit(xs, ys []float64, degree int) (*Polynomial, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, errors.New("regression: bad dimensions")
	}
	if degree < 0 {
		return nil, errors.New("regression: negative degree")
	}
	X := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree)
		pow := x
		for d := 0; d < degree; d++ {
			row[d] = pow
			pow *= x
		}
		X[i] = row
	}
	lin, err := FitRidge(X, ys, 1e-9)
	if err != nil {
		return nil, err
	}
	return &Polynomial{Coef: append([]float64{lin.Intercept}, lin.Coef...)}, nil
}

// RSquared computes the coefficient of determination of predictions.
func RSquared(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) || len(yTrue) == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range yTrue {
		mean += y
	}
	mean /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		t := yTrue[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// MAE computes the mean absolute error of predictions.
func MAE(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) || len(yTrue) == 0 {
		return 0
	}
	sum := 0.0
	for i := range yTrue {
		sum += math.Abs(yTrue[i] - yPred[i])
	}
	return sum / float64(len(yTrue))
}

// Sample is one timestamped observation for temporal splitting.
type Sample struct {
	Date int
	X    []float64
	Y    float64
}

// TemporalSplit partitions samples into a training set (Date < cutoff) and
// a test set (Date >= cutoff), the paper's week0/week1 protocol.
func TemporalSplit(samples []Sample, cutoff int) (train, test []Sample) {
	for _, s := range samples {
		if s.Date < cutoff {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	return train, test
}

// FitSamples fits a ridge model on a sample set.
func FitSamples(samples []Sample, lambda float64) (*Linear, error) {
	if len(samples) == 0 {
		return nil, errors.New("regression: no samples")
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = s.X
		y[i] = s.Y
	}
	return FitRidge(X, y, lambda)
}
