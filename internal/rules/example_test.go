package rules_test

import (
	"fmt"

	"qoadvisor/internal/rules"
)

// ExampleCatalog_DefaultConfig shows the default rule configuration:
// everything but the off-by-default rules is enabled.
func ExampleCatalog_DefaultConfig() {
	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	fmt.Println("total rules:", cat.Size())
	fmt.Println("enabled by default:", cfg.Count())
	fmt.Println("off by default:", cat.Size()-cfg.Count())
	// Output:
	// total rules: 256
	// enabled by default: 179
	// off by default: 77
}

// ExampleCatalog_FlipFor shows QO-Advisor's steering action: a single
// rule flip away from the default configuration.
func ExampleCatalog_FlipFor() {
	cat := rules.NewCatalog()
	off := cat.Rules(rules.OffByDefault)[0]
	flip := cat.FlipFor(off.ID)
	fmt.Println(flip) // off-by-default rules flip ON

	on := cat.Rules(rules.OnByDefault)[0]
	fmt.Println(cat.FlipFor(on.ID)) // on-by-default rules flip OFF

	cfg := cat.DefaultConfig().WithFlip(flip)
	fmt.Println("config changed:", !cfg.Equal(cat.DefaultConfig().Bitset))
	// Output:
	// +R054
	// -R012
	// config changed: true
}
