// Package rules defines the optimizer rule catalog that QO-Advisor steers.
//
// The SCOPE optimizer described in the paper has 256 rules split into four
// categories: required (must always be enabled to get valid plans),
// on-by-default, off-by-default (experimental or very sensitive to
// estimates), and implementation rules (mapping logical operators into
// physical ones). A rule configuration is a 256-bit vector of enabled
// rules; a rule signature is a 256-bit vector of the rules that directly
// contributed to a plan. This package provides the catalog, the bit-vector
// types, and the single-rule Flip that is QO-Advisor's steering action.
package rules

import (
	"fmt"
	"strings"
)

// NumRules is the size of the rule catalog, matching the paper's SCOPE
// optimizer ("There are 256 rules in the SCOPE optimizer").
const NumRules = 256

// Category classifies a rule the way §2.1 of the paper does.
type Category int

const (
	// Required rules must always be enabled to obtain valid plans.
	Required Category = iota
	// OnByDefault rules are regular exploration rules enabled by default.
	OnByDefault
	// OffByDefault rules are experimental or sensitive to estimates and
	// disabled by default.
	OffByDefault
	// Implementation rules map logical operators into physical ones.
	Implementation
)

// String returns the category name used in logs and hint files.
func (c Category) String() string {
	switch c {
	case Required:
		return "required"
	case OnByDefault:
		return "on-by-default"
	case OffByDefault:
		return "off-by-default"
	case Implementation:
		return "implementation"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Kind identifies the optimizer behaviour a rule controls. The optimizer
// package dispatches on Kind; Variant distinguishes sibling rules of the
// same kind (for example, tuning rules that fire on different plan
// fingerprints).
type Kind int

const (
	// Required / normalization kinds.
	KindResolveColumns Kind = iota
	KindNormalizePredicates
	KindConstantFolding
	KindEnforceOutput
	KindEnforceExchange
	KindAssignStages

	// Logical rewrite kinds.
	KindPushFilterBelowJoin
	KindPushFilterBelowProject
	KindPushFilterBelowUnion
	KindPushFilterBelowAgg
	KindPushFilterIntoScan
	KindMergeFilters
	KindMergeProjects
	KindPruneColumns
	KindJoinCommute
	KindJoinAssociate
	KindLocalGlobalAgg
	KindPartialAggBelowJoin
	KindPartialAggBelowUnion
	KindDistinctToAgg
	KindEliminateDistinctOnKey
	KindRemoveRedundantSort
	KindTopNPushdown
	KindSemiJoinReduction
	KindFlattenUnion
	KindProjectPullUp
	KindSplitComplexFilter
	KindBroadcastAnnotation
	KindUnionDedupPushdown
	KindJoinPredicateInference

	// Implementation kinds.
	KindImplHashJoin
	KindImplMergeJoin
	KindImplBroadcastJoin
	KindImplNestedLoopJoin
	KindImplHashAgg
	KindImplStreamAgg
	KindImplHashPartition
	KindImplRangePartition
	KindImplRoundRobin
	KindImplConcatUnion
	KindImplSortedUnion
	KindImplRowScan
	KindImplColumnScan
	KindImplExternalSort
	KindImplTopNHeap
	KindImplIndexSeek

	// Tuning kinds: parameterized variants that adjust physical properties
	// for plan fragments whose fingerprint matches the rule's variant.
	KindTunePartitionCount
	KindTuneStageFusion
	KindTuneVertexPacking
	KindTuneExchangeCompression
	KindTuneSortBuffer
	KindTuneBroadcastThreshold

	numKinds // sentinel, keep last
)

var kindNames = map[Kind]string{
	KindResolveColumns:          "ResolveColumns",
	KindNormalizePredicates:     "NormalizePredicates",
	KindConstantFolding:         "ConstantFolding",
	KindEnforceOutput:           "EnforceOutput",
	KindEnforceExchange:         "EnforceExchange",
	KindAssignStages:            "AssignStages",
	KindPushFilterBelowJoin:     "PushFilterBelowJoin",
	KindPushFilterBelowProject:  "PushFilterBelowProject",
	KindPushFilterBelowUnion:    "PushFilterBelowUnion",
	KindPushFilterBelowAgg:      "PushFilterBelowAgg",
	KindPushFilterIntoScan:      "PushFilterIntoScan",
	KindMergeFilters:            "MergeFilters",
	KindMergeProjects:           "MergeProjects",
	KindPruneColumns:            "PruneColumns",
	KindJoinCommute:             "JoinCommute",
	KindJoinAssociate:           "JoinAssociate",
	KindLocalGlobalAgg:          "LocalGlobalAgg",
	KindPartialAggBelowJoin:     "PartialAggBelowJoin",
	KindPartialAggBelowUnion:    "PartialAggBelowUnion",
	KindDistinctToAgg:           "DistinctToAgg",
	KindEliminateDistinctOnKey:  "EliminateDistinctOnKey",
	KindRemoveRedundantSort:     "RemoveRedundantSort",
	KindTopNPushdown:            "TopNPushdown",
	KindSemiJoinReduction:       "SemiJoinReduction",
	KindFlattenUnion:            "FlattenUnion",
	KindProjectPullUp:           "ProjectPullUp",
	KindSplitComplexFilter:      "SplitComplexFilter",
	KindBroadcastAnnotation:     "BroadcastAnnotation",
	KindUnionDedupPushdown:      "UnionDedupPushdown",
	KindJoinPredicateInference:  "JoinPredicateInference",
	KindImplHashJoin:            "ImplHashJoin",
	KindImplMergeJoin:           "ImplMergeJoin",
	KindImplBroadcastJoin:       "ImplBroadcastJoin",
	KindImplNestedLoopJoin:      "ImplNestedLoopJoin",
	KindImplHashAgg:             "ImplHashAgg",
	KindImplStreamAgg:           "ImplStreamAgg",
	KindImplHashPartition:       "ImplHashPartition",
	KindImplRangePartition:      "ImplRangePartition",
	KindImplRoundRobin:          "ImplRoundRobin",
	KindImplConcatUnion:         "ImplConcatUnion",
	KindImplSortedUnion:         "ImplSortedUnion",
	KindImplRowScan:             "ImplRowScan",
	KindImplColumnScan:          "ImplColumnScan",
	KindImplExternalSort:        "ImplExternalSort",
	KindImplTopNHeap:            "ImplTopNHeap",
	KindImplIndexSeek:           "ImplIndexSeek",
	KindTunePartitionCount:      "TunePartitionCount",
	KindTuneStageFusion:         "TuneStageFusion",
	KindTuneVertexPacking:       "TuneVertexPacking",
	KindTuneExchangeCompression: "TuneExchangeCompression",
	KindTuneSortBuffer:          "TuneSortBuffer",
	KindTuneBroadcastThreshold:  "TuneBroadcastThreshold",
}

// String returns the kind's canonical name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is a single optimizer rule. ID is its bit position in configurations
// and signatures.
type Rule struct {
	ID       int
	Name     string
	Category Category
	Kind     Kind
	// Variant distinguishes sibling rules of the same Kind. For tuning
	// kinds it selects the plan-fragment fingerprint residue the rule
	// fires on and the magnitude of its adjustment.
	Variant int
}

// Flip is QO-Advisor's steering action: turn exactly one rule on or off
// relative to the default configuration.
type Flip struct {
	RuleID int
	Enable bool // true = turn the rule on, false = turn it off
}

// String renders the flip the way hint files do, e.g. "+R123" or "-R007".
func (f Flip) String() string {
	sign := "-"
	if f.Enable {
		sign = "+"
	}
	return fmt.Sprintf("%sR%03d", sign, f.RuleID)
}

// ParseFlip parses the textual form produced by Flip.String.
func ParseFlip(s string) (Flip, error) {
	if len(s) < 3 || (s[0] != '+' && s[0] != '-') || s[1] != 'R' {
		return Flip{}, fmt.Errorf("rules: malformed flip %q", s)
	}
	var id int
	if _, err := fmt.Sscanf(s[2:], "%d", &id); err != nil {
		return Flip{}, fmt.Errorf("rules: malformed flip %q: %v", s, err)
	}
	if id < 0 || id >= NumRules {
		return Flip{}, fmt.Errorf("rules: flip rule id %d out of range", id)
	}
	return Flip{RuleID: id, Enable: s[0] == '+'}, nil
}

// Catalog is an immutable collection of rules indexed by ID and name.
type Catalog struct {
	rules  []Rule
	byName map[string]int
}

// NewCatalog builds the canonical 256-rule catalog. The layout is
// deterministic: required normalization rules first, then logical rewrites
// (on-by-default), then experimental variants (off-by-default), then
// implementation rules, then tuning variants filling the remaining IDs.
func NewCatalog() *Catalog {
	c := &Catalog{byName: make(map[string]int, NumRules)}

	add := func(name string, cat Category, kind Kind, variant int) {
		id := len(c.rules)
		if id >= NumRules {
			panic("rules: catalog overflow")
		}
		c.rules = append(c.rules, Rule{ID: id, Name: name, Category: cat, Kind: kind, Variant: variant})
		c.byName[name] = id
	}

	// --- Required normalization rules (IDs 0-11). ---
	required := []Kind{
		KindResolveColumns, KindNormalizePredicates, KindConstantFolding,
		KindEnforceOutput, KindEnforceExchange, KindAssignStages,
	}
	for _, k := range required {
		add(k.String(), Required, k, 0)
		add(k.String()+"Ex", Required, k, 1)
	}

	// --- On-by-default logical rewrites. ---
	onKinds := []Kind{
		KindPushFilterBelowJoin, KindPushFilterBelowProject,
		KindPushFilterBelowUnion, KindPushFilterIntoScan,
		KindMergeFilters, KindMergeProjects, KindPruneColumns,
		KindJoinCommute, KindLocalGlobalAgg, KindDistinctToAgg,
		KindRemoveRedundantSort, KindTopNPushdown, KindFlattenUnion,
		KindSplitComplexFilter,
	}
	for _, k := range onKinds {
		for v := 0; v < 3; v++ {
			add(fmt.Sprintf("%s_v%d", k, v), OnByDefault, k, v)
		}
	}

	// --- Off-by-default experimental rewrites. ---
	offKinds := []Kind{
		KindPushFilterBelowAgg, KindJoinAssociate, KindPartialAggBelowJoin,
		KindPartialAggBelowUnion, KindEliminateDistinctOnKey,
		KindSemiJoinReduction, KindProjectPullUp, KindBroadcastAnnotation,
		KindUnionDedupPushdown, KindJoinPredicateInference,
	}
	for _, k := range offKinds {
		for v := 0; v < 3; v++ {
			add(fmt.Sprintf("%s_x%d", k, v), OffByDefault, k, v)
		}
	}

	// --- Implementation rules. ---
	implKinds := []Kind{
		KindImplHashJoin, KindImplMergeJoin, KindImplBroadcastJoin,
		KindImplNestedLoopJoin, KindImplHashAgg, KindImplStreamAgg,
		KindImplHashPartition, KindImplRangePartition, KindImplRoundRobin,
		KindImplConcatUnion, KindImplSortedUnion, KindImplRowScan,
		KindImplColumnScan, KindImplExternalSort, KindImplTopNHeap,
		KindImplIndexSeek,
	}
	for _, k := range implKinds {
		for v := 0; v < 2; v++ {
			add(fmt.Sprintf("%s_p%d", k, v), Implementation, k, v)
		}
	}

	// --- Tuning variants fill the remaining IDs. ---
	// Alternate between on-by-default and off-by-default so that both flip
	// directions occur in job spans, as in the production catalog.
	tuneKinds := []Kind{
		KindTunePartitionCount, KindTuneStageFusion, KindTuneVertexPacking,
		KindTuneExchangeCompression, KindTuneSortBuffer,
		KindTuneBroadcastThreshold,
	}
	variant := 0
	for len(c.rules) < NumRules {
		k := tuneKinds[variant%len(tuneKinds)]
		cat := OnByDefault
		if variant%3 == 1 {
			cat = OffByDefault
		}
		add(fmt.Sprintf("%s_t%02d", k, variant), cat, k, variant)
		variant++
	}

	if len(c.rules) != NumRules {
		panic("rules: catalog must contain exactly 256 rules")
	}
	return c
}

// Size returns the number of rules in the catalog.
func (c *Catalog) Size() int { return len(c.rules) }

// Rule returns the rule with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error.
func (c *Catalog) Rule(id int) Rule {
	return c.rules[id]
}

// ByName looks a rule up by its unique name.
func (c *Catalog) ByName(name string) (Rule, bool) {
	id, ok := c.byName[name]
	if !ok {
		return Rule{}, false
	}
	return c.rules[id], true
}

// Rules returns all rules in the given category, in ID order.
func (c *Catalog) Rules(cat Category) []Rule {
	var out []Rule
	for _, r := range c.rules {
		if r.Category == cat {
			out = append(out, r)
		}
	}
	return out
}

// All returns every rule in ID order. The returned slice is shared; callers
// must not modify it.
func (c *Catalog) All() []Rule { return c.rules }

// DefaultConfig returns the default rule configuration: required,
// on-by-default and implementation rules enabled; off-by-default disabled.
func (c *Catalog) DefaultConfig() Config {
	var cfg Config
	for _, r := range c.rules {
		if r.Category != OffByDefault {
			cfg.Set(r.ID)
		}
	}
	return cfg
}

// FlipFor returns the single-rule Flip that moves the default configuration
// toward the opposite setting for rule id: off-by-default rules are turned
// on, all others are turned off.
func (c *Catalog) FlipFor(id int) Flip {
	return Flip{RuleID: id, Enable: c.rules[id].Category == OffByDefault}
}

// Bitset is a fixed 256-bit vector. The zero value is the empty set. Bitset
// is a value type: assignment copies it.
type Bitset struct {
	w [NumRules / 64]uint64
}

// Get reports whether bit id is set.
func (b Bitset) Get(id int) bool {
	return b.w[id>>6]&(1<<(uint(id)&63)) != 0
}

// Set sets bit id.
func (b *Bitset) Set(id int) { b.w[id>>6] |= 1 << (uint(id) & 63) }

// Clear clears bit id.
func (b *Bitset) Clear(id int) { b.w[id>>6] &^= 1 << (uint(id) & 63) }

// Flip toggles bit id.
func (b *Bitset) Flip(id int) { b.w[id>>6] ^= 1 << (uint(id) & 63) }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b.w {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// IsEmpty reports whether no bits are set.
func (b Bitset) IsEmpty() bool {
	for _, w := range b.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o contain the same bits.
func (b Bitset) Equal(o Bitset) bool { return b.w == o.w }

// Union returns the set union of b and o.
func (b Bitset) Union(o Bitset) Bitset {
	var out Bitset
	for i := range b.w {
		out.w[i] = b.w[i] | o.w[i]
	}
	return out
}

// Intersect returns the set intersection of b and o.
func (b Bitset) Intersect(o Bitset) Bitset {
	var out Bitset
	for i := range b.w {
		out.w[i] = b.w[i] & o.w[i]
	}
	return out
}

// Minus returns the bits set in b but not in o.
func (b Bitset) Minus(o Bitset) Bitset {
	var out Bitset
	for i := range b.w {
		out.w[i] = b.w[i] &^ o.w[i]
	}
	return out
}

// Bits returns the IDs of all set bits in ascending order.
func (b Bitset) Bits() []int {
	out := make([]int, 0, b.Count())
	for i := 0; i < NumRules; i++ {
		if b.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the bitset as a 64-hex-digit string, most significant
// word first, matching the "rule signature" dumps in SCOPE job logs.
func (b Bitset) String() string {
	var sb strings.Builder
	for i := len(b.w) - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "%016x", b.w[i])
	}
	return sb.String()
}

// ParseBitset parses the hex form produced by Bitset.String.
func ParseBitset(s string) (Bitset, error) {
	var b Bitset
	if len(s) != NumRules/4 {
		return b, fmt.Errorf("rules: bitset hex must be %d chars, got %d", NumRules/4, len(s))
	}
	for i := range b.w {
		chunk := s[(len(b.w)-1-i)*16 : (len(b.w)-i)*16]
		if _, err := fmt.Sscanf(chunk, "%016x", &b.w[i]); err != nil {
			return Bitset{}, fmt.Errorf("rules: bad bitset hex %q: %v", s, err)
		}
	}
	return b, nil
}

// Config is a rule configuration: the set of enabled rules handed to the
// optimizer at compile time. It is a value type.
type Config struct {
	Bitset
}

// Enabled reports whether rule id is enabled.
func (c Config) Enabled(id int) bool { return c.Get(id) }

// WithFlip returns a copy of c with the given flip applied.
func (c Config) WithFlip(f Flip) Config {
	out := c
	if f.Enable {
		out.Set(f.RuleID)
	} else {
		out.Clear(f.RuleID)
	}
	return out
}

// DiffFrom returns the flips that transform base into c, in rule-ID order.
func (c Config) DiffFrom(base Config) []Flip {
	var flips []Flip
	for i := 0; i < NumRules; i++ {
		cb, bb := c.Get(i), base.Get(i)
		if cb != bb {
			flips = append(flips, Flip{RuleID: i, Enable: cb})
		}
	}
	return flips
}

// Signature records the rules that directly contributed to a plan, i.e.
// the rules that fired during optimization ("if only the first and second
// rule were used, the rule signature will be 1100000000...").
type Signature struct {
	Bitset
}

// Fired reports whether rule id fired.
func (s Signature) Fired(id int) bool { return s.Get(id) }

// Record marks rule id as fired.
func (s *Signature) Record(id int) { s.Set(id) }
