package rules

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogHasExactly256Rules(t *testing.T) {
	c := NewCatalog()
	if c.Size() != NumRules {
		t.Fatalf("catalog size = %d, want %d", c.Size(), NumRules)
	}
	if len(c.All()) != NumRules {
		t.Fatalf("All() length = %d, want %d", len(c.All()), NumRules)
	}
}

func TestCatalogIDsAreSequential(t *testing.T) {
	c := NewCatalog()
	for i, r := range c.All() {
		if r.ID != i {
			t.Fatalf("rule at index %d has ID %d", i, r.ID)
		}
	}
}

func TestCatalogNamesAreUnique(t *testing.T) {
	c := NewCatalog()
	seen := make(map[string]bool)
	for _, r := range c.All() {
		if seen[r.Name] {
			t.Fatalf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestCatalogByName(t *testing.T) {
	c := NewCatalog()
	for _, r := range c.All() {
		got, ok := c.ByName(r.Name)
		if !ok || got.ID != r.ID {
			t.Fatalf("ByName(%q) = %+v ok=%v", r.Name, got, ok)
		}
	}
	if _, ok := c.ByName("NoSuchRule"); ok {
		t.Error("ByName should miss on unknown names")
	}
}

func TestCatalogHasAllFourCategories(t *testing.T) {
	c := NewCatalog()
	for _, cat := range []Category{Required, OnByDefault, OffByDefault, Implementation} {
		rs := c.Rules(cat)
		if len(rs) == 0 {
			t.Errorf("no rules in category %v", cat)
		}
		for _, r := range rs {
			if r.Category != cat {
				t.Errorf("Rules(%v) returned rule of category %v", cat, r.Category)
			}
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := NewCatalog()
	cfg := c.DefaultConfig()
	for _, r := range c.All() {
		want := r.Category != OffByDefault
		if cfg.Enabled(r.ID) != want {
			t.Errorf("rule %d (%v): enabled=%v, want %v", r.ID, r.Category, cfg.Enabled(r.ID), want)
		}
	}
}

func TestFlipFor(t *testing.T) {
	c := NewCatalog()
	for _, r := range c.All() {
		f := c.FlipFor(r.ID)
		if f.RuleID != r.ID {
			t.Fatalf("FlipFor(%d).RuleID = %d", r.ID, f.RuleID)
		}
		// Applying the flip to the default config must change exactly
		// that rule's setting.
		def := c.DefaultConfig()
		mod := def.WithFlip(f)
		if mod.Enabled(r.ID) == def.Enabled(r.ID) {
			t.Fatalf("flip %v did not change rule %d", f, r.ID)
		}
		diff := mod.DiffFrom(def)
		if len(diff) != 1 || diff[0].RuleID != r.ID {
			t.Fatalf("diff after single flip = %v", diff)
		}
	}
}

func TestFlipStringRoundTrip(t *testing.T) {
	for _, f := range []Flip{{RuleID: 0, Enable: true}, {RuleID: 255, Enable: false}, {RuleID: 42, Enable: true}} {
		got, err := ParseFlip(f.String())
		if err != nil {
			t.Fatalf("ParseFlip(%q): %v", f.String(), err)
		}
		if got != f {
			t.Fatalf("round trip %v -> %q -> %v", f, f.String(), got)
		}
	}
}

func TestParseFlipErrors(t *testing.T) {
	for _, s := range []string{"", "R1", "+X001", "+R999", "*R001", "+R"} {
		if _, err := ParseFlip(s); err == nil {
			t.Errorf("ParseFlip(%q) should fail", s)
		}
	}
}

func TestBitsetBasicOps(t *testing.T) {
	var b Bitset
	if !b.IsEmpty() {
		t.Fatal("zero bitset should be empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(255)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, id := range []int{0, 63, 64, 255} {
		if !b.Get(id) {
			t.Errorf("bit %d should be set", id)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unexpected bits set")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	b.Flip(63)
	if !b.Get(63) {
		t.Error("Flip failed to set")
	}
	b.Flip(63)
	if b.Get(63) {
		t.Error("Flip failed to clear")
	}
}

func TestBitsetSetOps(t *testing.T) {
	var a, b Bitset
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	u := a.Union(b)
	if u.Count() != 3 || !u.Get(1) || !u.Get(2) || !u.Get(3) {
		t.Errorf("union wrong: %v", u.Bits())
	}
	i := a.Intersect(b)
	if i.Count() != 1 || !i.Get(2) {
		t.Errorf("intersect wrong: %v", i.Bits())
	}
	m := a.Minus(b)
	if m.Count() != 1 || !m.Get(1) {
		t.Errorf("minus wrong: %v", m.Bits())
	}
}

func TestBitsetBitsSorted(t *testing.T) {
	var b Bitset
	for _, id := range []int{200, 5, 100, 64, 63} {
		b.Set(id)
	}
	bits := b.Bits()
	want := []int{5, 63, 64, 100, 200}
	if len(bits) != len(want) {
		t.Fatalf("Bits = %v", bits)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", bits, want)
		}
	}
}

func TestBitsetStringRoundTrip(t *testing.T) {
	var b Bitset
	b.Set(0)
	b.Set(77)
	b.Set(255)
	s := b.String()
	if len(s) != 64 {
		t.Fatalf("hex length = %d, want 64", len(s))
	}
	got, err := ParseBitset(s)
	if err != nil {
		t.Fatalf("ParseBitset: %v", err)
	}
	if !got.Equal(b) {
		t.Fatalf("round trip mismatch: %s vs %s", got, b)
	}
}

func TestParseBitsetErrors(t *testing.T) {
	if _, err := ParseBitset("abc"); err == nil {
		t.Error("short hex should fail")
	}
	bad := make([]byte, 64)
	for i := range bad {
		bad[i] = 'z'
	}
	if _, err := ParseBitset(string(bad)); err == nil {
		t.Error("non-hex should fail")
	}
}

func TestConfigWithFlipDoesNotMutateOriginal(t *testing.T) {
	c := NewCatalog()
	def := c.DefaultConfig()
	before := def.Count()
	_ = def.WithFlip(Flip{RuleID: 7, Enable: !def.Enabled(7)})
	if def.Count() != before {
		t.Error("WithFlip mutated the receiver")
	}
}

func TestSignatureRecordFired(t *testing.T) {
	var s Signature
	s.Record(10)
	s.Record(200)
	if !s.Fired(10) || !s.Fired(200) || s.Fired(11) {
		t.Error("signature record/fired mismatch")
	}
}

// Property: union/intersect/minus obey set algebra identities.
func TestBitsetAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b Bitset
		for i := 0; i < 40; i++ {
			a.Set(r.Intn(NumRules))
			b.Set(r.Intn(NumRules))
		}
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		if a.Union(b).Count() != a.Count()+b.Count()-a.Intersect(b).Count() {
			return false
		}
		// A \ B and A ∩ B partition A.
		if a.Minus(b).Count()+a.Intersect(b).Count() != a.Count() {
			return false
		}
		// Union is commutative.
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hex round trip preserves arbitrary bitsets.
func TestBitsetHexRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b Bitset
		for i := 0; i < r.Intn(100); i++ {
			b.Set(r.Intn(NumRules))
		}
		got, err := ParseBitset(b.String())
		return err == nil && got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a double flip restores the original configuration.
func TestConfigDoubleFlipProperty(t *testing.T) {
	c := NewCatalog()
	def := c.DefaultConfig()
	f := func(idRaw uint8) bool {
		id := int(idRaw)
		f1 := Flip{RuleID: id, Enable: !def.Enabled(id)}
		f2 := Flip{RuleID: id, Enable: def.Enabled(id)}
		return def.WithFlip(f1).WithFlip(f2).Equal(def.Bitset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestCategoryString(t *testing.T) {
	if Required.String() != "required" || Implementation.String() != "implementation" {
		t.Error("category names wrong")
	}
	if Category(99).String() == "" {
		t.Error("unknown category should still render")
	}
}

func TestKindString(t *testing.T) {
	if KindJoinCommute.String() != "JoinCommute" {
		t.Errorf("KindJoinCommute = %q", KindJoinCommute)
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}
