package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v, want 11", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestVariance(t *testing.T) {
	// Known sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance of nil should be 0")
	}
}

func TestStdDevIsSqrtVariance(t *testing.T) {
	xs := []float64{1, 3, 3, 7, 11}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoefficientOfVariation(xs); got != 0 {
		t.Errorf("CV of constant sample = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{-1, 1}); got != 0 {
		t.Errorf("CV with zero mean = %v, want 0", got)
	}
	xs = []float64{8, 12} // mean 10, sd sqrt(8)
	want := math.Sqrt(8) / 10
	if got := CoefficientOfVariation(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("CV = %v, want %v", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	q, err := Quantile(xs, 0.5)
	if err != nil || !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("median = %v err %v, want 2.5", q, err)
	}
	q, err = Quantile(xs, 0)
	if err != nil || q != 1 {
		t.Errorf("q0 = %v err %v, want 1", q, err)
	}
	q, err = Quantile(xs, 1)
	if err != nil || q != 4 {
		t.Errorf("q1 = %v err %v, want 4", q, err)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error on out-of-range q")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestMedianSingleton(t *testing.T) {
	m, err := Median([]float64{42})
	if err != nil || m != 42 {
		t.Errorf("Median singleton = %v err %v", m, err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v err %v, want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v err %v, want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("expected short-input error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected zero-variance error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone, nonlinear
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman = %v err %v, want 1", r, err)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	if got := FractionBelow(xs, 0); got != 0.4 {
		t.Errorf("FractionBelow = %v, want 0.4", got)
	}
	if got := FractionAbove(xs, 0); got != 0.4 {
		t.Errorf("FractionAbove = %v, want 0.4", got)
	}
	if FractionBelow(nil, 0) != 0 || FractionAbove(nil, 0) != 0 {
		t.Error("fractions of empty input should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.1, 0.5, 0.99, 1.0, 2.0}
	h := NewHistogram(xs, 0, 1, 4)
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 1 {
		t.Errorf("Over = %d, want 1", h.Over)
	}
	if h.Total() != len(xs) {
		t.Errorf("Total = %d, want %d", h.Total(), len(xs))
	}
	// 1.0 must land in the last bin, not overflow.
	if h.Counts[3] != 2 { // 0.99 and 1.0
		t.Errorf("last bin = %d, want 2 (got %v)", h.Counts[3], h.Counts)
	}
	if c := h.BinCenter(0); !almostEqual(c, 0.125, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.125", c)
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 5, 0)
	if len(h.Counts) != 1 {
		t.Errorf("expected 1 bin, got %d", len(h.Counts))
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2", h.Total())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{-1, 0, 1, 2})
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if s.Min != -1 || s.Max != 2 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.FracAboveZero != 0.5 || s.FracBelowZero != 0.25 {
		t.Errorf("fractions = %v / %v", s.FracAboveZero, s.FracBelowZero)
	}
	if s.AbsoluteSpread != 3 {
		t.Errorf("spread = %v", s.AbsoluteSpread)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestRelativeDelta(t *testing.T) {
	if got := RelativeDelta(100, 90); !almostEqual(got, -0.1, 1e-12) {
		t.Errorf("delta = %v, want -0.1", got)
	}
	if got := RelativeDelta(100, 150); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("delta = %v, want 0.5", got)
	}
	if got := RelativeDelta(0, 10); got != 0 {
		t.Errorf("delta with old=0 should be 0, got %v", got)
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 2) != 2 || Clip(-5, 0, 2) != 0 || Clip(1, 0, 2) != 1 {
		t.Error("Clip misbehaves")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			if v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Pearson correlation is always within [-1, 1].
func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c, err := Pearson(xs, ys)
		if err != nil {
			return true // zero-variance draws are legitimately rejected
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation-weight-preserving map; their sum equals
// n(n+1)/2 regardless of ties.
func TestRanksSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(10)) // force ties
		}
		sum := Sum(Ranks(xs))
		want := float64(n*(n+1)) / 2
		return almostEqual(sum, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		v := Variance(xs)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i := range xs {
			shifted[i] = xs[i] + 123.0
			scaled[i] = xs[i] * 3.0
		}
		return almostEqual(Variance(shifted), v, 1e-6*(1+v)) &&
			almostEqual(Variance(scaled), 9*v, 1e-6*(1+9*v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*4 - 2
		}
		h := NewHistogram(xs, -1, 1, 8)
		return h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
