// Package stats provides the descriptive statistics used throughout the
// QO-Advisor experiments: moments, quantiles, correlation measures and
// simple histogram summaries. All functions operate on float64 slices and
// never mutate their inputs unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefficientOfVariation returns StdDev/|Mean|, the scale-free dispersion
// measure the paper uses for its A/A variance plots (Figures 3 and 5).
// It returns 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	mean := Mean(xs)
	if mean == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(mean)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. The input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the slices differ in length, are shorter than 2,
// or either has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, in the original order.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of xs strictly above threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram is a fixed-width binned summary of a sample.
type Histogram struct {
	Lo, Hi float64 // inclusive range covered by the bins
	Counts []int   // per-bin counts
	Under  int     // values below Lo
	Over   int     // values above Hi
}

// NewHistogram bins xs into nbins equal-width bins over [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		default:
			bin := int((x - lo) / width)
			if bin == nbins { // x == hi lands in the last bin
				bin = nbins - 1
			}
			h.Counts[bin]++
		}
	}
	return h
}

// Total returns the total number of observations, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Summary bundles the descriptive statistics printed by the experiment
// harness for a metric sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, P25       float64
	Median, P75    float64
	P90, P95, Max  float64
	CoefVariation  float64
	FracAboveZero  float64 // fraction of strictly positive values (regressions for deltas)
	FracBelowZero  float64 // fraction of strictly negative values (improvements for deltas)
	SumOfValues    float64
	AbsoluteSpread float64 // Max - Min
}

// Summarize computes a Summary of xs. Quantiles of an empty sample are 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	s.Min = Min(xs)
	s.Max = Max(xs)
	s.P25, _ = Quantile(xs, 0.25)
	s.Median, _ = Quantile(xs, 0.5)
	s.P75, _ = Quantile(xs, 0.75)
	s.P90, _ = Quantile(xs, 0.90)
	s.P95, _ = Quantile(xs, 0.95)
	s.CoefVariation = CoefficientOfVariation(xs)
	s.FracAboveZero = FractionAbove(xs, 0)
	s.FracBelowZero = FractionBelow(xs, 0)
	s.SumOfValues = Sum(xs)
	s.AbsoluteSpread = s.Max - s.Min
	return s
}

// RelativeDelta returns new/old - 1, the "delta" convention used by every
// figure in the paper (a value > 0 is a regression). It returns 0 when old
// is 0 to keep aggregate statistics finite.
func RelativeDelta(oldVal, newVal float64) float64 {
	if oldVal == 0 {
		return 0
	}
	return newVal/oldVal - 1
}

// Clip bounds x to [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
