// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated SCOPE substrate. Each experiment is a
// function returning a structured result that the cmd/experiments binary
// and the root benchmark suite print in the same form the paper reports:
// the absolute numbers come from the simulator, but the shapes — which
// metric is stable, who wins, by roughly what factor — are the
// reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math/rand"

	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/workload"
)

// Config sizes an experiment run. The zero value is usable: Defaults are
// applied by NewLab.
type Config struct {
	Seed         int64
	NumTemplates int
	// AARuns is the number of A/A repetitions for variance experiments.
	AARuns int
}

// Scale presets.
var (
	// Quick is sized for benchmarks and tests.
	Quick = Config{Seed: 42, NumTemplates: 40, AARuns: 10}
	// Full is sized for the cmd/experiments reproduction run.
	Full = Config{Seed: 42, NumTemplates: 120, AARuns: 10}
)

// Lab bundles the shared infrastructure of all experiments: the workload
// generator, rule catalog, cluster model, and caches of compiled jobs.
type Lab struct {
	Cfg     Config
	Catalog *rules.Catalog
	Gen     *workload.Generator
	Cluster *exec.Cluster

	compiled map[string]*optimizer.Result // default-config compilations
	flights  map[[2]int][]FlightObservation
}

// NewLab builds the shared experiment infrastructure.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.NumTemplates <= 0 {
		cfg.NumTemplates = 40
	}
	if cfg.AARuns <= 0 {
		cfg.AARuns = 10
	}
	gen, err := workload.New(workload.Config{Seed: cfg.Seed, NumTemplates: cfg.NumTemplates, MaxDailyInstances: 2})
	if err != nil {
		return nil, err
	}
	return &Lab{
		Cfg:      cfg,
		Catalog:  rules.NewCatalog(),
		Gen:      gen,
		Cluster:  exec.DefaultCluster(cfg.Seed),
		compiled: make(map[string]*optimizer.Result),
		flights:  make(map[[2]int][]FlightObservation),
	}, nil
}

// opts returns per-job compile options.
func (l *Lab) opts(job *workload.Job) optimizer.Options {
	return optimizer.Options{Catalog: l.Catalog, Stats: job.Stats, Tokens: job.Tokens}
}

// compileDefault compiles a job under the default configuration, cached.
func (l *Lab) compileDefault(job *workload.Job) (*optimizer.Result, error) {
	if res, ok := l.compiled[job.ID]; ok {
		return res, nil
	}
	res, err := optimizer.Optimize(job.Graph, l.Catalog.DefaultConfig(), l.opts(job))
	if err != nil {
		return nil, err
	}
	l.compiled[job.ID] = res
	return res, nil
}

// jobsForDay instantiates the day's workload.
func (l *Lab) jobsForDay(day int) ([]*workload.Job, error) {
	return l.Gen.JobsForDay(day)
}

// uniqueJobsForDay returns one instance per template for the day (the
// variance and stability experiments operate on unique recurring jobs).
func (l *Lab) uniqueJobsForDay(day int) ([]*workload.Job, error) {
	var jobs []*workload.Job
	for _, tpl := range l.Gen.Templates() {
		j, err := tpl.Instantiate(day, 0)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// costImprovingFlip searches a job's span (in randomized order) for a
// single rule flip whose recompilation lowers the estimated cost. It
// returns the flip, the treatment result, and whether one was found —
// the "rule flips leading to lower estimated costs" the paper flights.
func (l *Lab) costImprovingFlip(job *workload.Job, spanBits []int, rng *rand.Rand) (rules.Flip, *optimizer.Result, bool) {
	base, err := l.compileDefault(job)
	if err != nil {
		return rules.Flip{}, nil, false
	}
	order := rng.Perm(len(spanBits))
	for _, i := range order {
		flip := l.Catalog.FlipFor(spanBits[i])
		cfg := l.Catalog.DefaultConfig().WithFlip(flip)
		res, err := optimizer.Optimize(job.Graph, cfg, l.opts(job))
		if err != nil {
			continue
		}
		if res.EstCost < base.EstCost {
			return flip, res, true
		}
	}
	return rules.Flip{}, nil, false
}

// bestCostFlip searches the whole span for the flip with the lowest
// recompiled estimated cost, mirroring the flighting queue's
// lowest-estimated-cost-first priority.
func (l *Lab) bestCostFlip(job *workload.Job, spanBits []int) (rules.Flip, *optimizer.Result, bool) {
	base, err := l.compileDefault(job)
	if err != nil {
		return rules.Flip{}, nil, false
	}
	var bestFlip rules.Flip
	var bestRes *optimizer.Result
	for _, id := range spanBits {
		flip := l.Catalog.FlipFor(id)
		res, err := optimizer.Optimize(job.Graph, l.Catalog.DefaultConfig().WithFlip(flip), l.opts(job))
		if err != nil {
			continue
		}
		if res.EstCost < base.EstCost && (bestRes == nil || res.EstCost < bestRes.EstCost) {
			bestFlip, bestRes = flip, res
		}
	}
	return bestFlip, bestRes, bestRes != nil
}

// compileWith compiles a job under an arbitrary configuration.
func (l *Lab) compileWith(job *workload.Job, cfg rules.Config) (*optimizer.Result, error) {
	return optimizer.Optimize(job.Graph, cfg, l.opts(job))
}

// freshStore returns an empty SIS store for pipeline experiments.
func (l *Lab) freshStore() *sis.Store { return sis.NewStore(l.Catalog) }

// production wires a production loop against a store.
func (l *Lab) production(store *sis.Store, seed int64) *core.Production {
	return core.NewProduction(l.Catalog, store, l.Cluster, seed)
}

// FormatPct renders a fraction as a signed percentage the way the paper's
// tables do.
func FormatPct(x float64) string {
	return fmt.Sprintf("%+.1f%%", x*100)
}
