package experiments

import (
	"testing"
)

// tinyLab builds a small lab shared by the experiment smoke tests.
func tinyLab(t *testing.T) *Lab {
	t.Helper()
	lab, err := NewLab(Config{Seed: 9, NumTemplates: 12, AARuns: 6})
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestVarianceShapes(t *testing.T) {
	lab := tinyLab(t)
	lat, err := lab.Variance("latency")
	if err != nil {
		t.Fatal(err)
	}
	pn, err := lab.Variance("pnhours")
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Points) == 0 || len(pn.Points) == 0 {
		t.Fatal("no variance points")
	}
	// The paper's central §5.1 finding: latency is far noisier than
	// PNhours under A/A runs.
	if lat.FracAbove5 <= pn.FracAbove5 {
		t.Errorf("latency variance (%.2f) should exceed pnhours (%.2f)", lat.FracAbove5, pn.FracAbove5)
	}
	if lat.MedianCV <= pn.MedianCV {
		t.Errorf("median CV: latency %.3f vs pnhours %.3f", lat.MedianCV, pn.MedianCV)
	}
	for _, p := range lat.Points {
		if p.NormalizedTime < 0 || p.NormalizedTime > 1 {
			t.Errorf("normalized time out of range: %v", p.NormalizedTime)
		}
	}
}

func TestStabilityShapes(t *testing.T) {
	lab := tinyLab(t)
	latRes, err := lab.Stability("latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(latRes.Points) == 0 {
		t.Skip("no stability points at this scale")
	}
	if latRes.FracImproved < 0 || latRes.FracImproved > 1 {
		t.Errorf("frac improved = %v", latRes.FracImproved)
	}
	if latRes.FracRegressed < 0 || latRes.FracRegressed > 1 {
		t.Errorf("frac regressed = %v", latRes.FracRegressed)
	}
}

func TestCostVsLatencyShapes(t *testing.T) {
	lab := tinyLab(t)
	res, err := lab.CostVsLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observations) == 0 {
		t.Skip("no observations at this scale")
	}
	// All gathered flips improve the estimated cost by construction.
	for _, o := range res.Observations {
		if o.CostDelta >= 0 {
			t.Errorf("observation with non-improving cost delta: %+v", o)
		}
	}
	// The correlation must be weak (the paper's central negative result).
	if res.Pearson > 0.5 || res.Pearson < -0.5 {
		t.Errorf("cost-latency correlation suspiciously strong: %v", res.Pearson)
	}
}

func TestIOCorrelationShapes(t *testing.T) {
	lab := tinyLab(t)
	read, err := lab.IOCorrelation("read")
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Observations) == 0 {
		t.Skip("no observations at this scale")
	}
	// DataRead delta must positively predict PNhours delta.
	if read.Pearson <= 0 {
		t.Errorf("read-PNhours correlation = %v, want positive", read.Pearson)
	}
	if read.Trend == nil || read.TrendSlope <= 0 {
		t.Errorf("trend slope = %v, want positive", read.TrendSlope)
	}
}

func TestValidationAccuracyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lab := tinyLab(t)
	res, err := lab.ValidationAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSamples == 0 || res.TestSamples == 0 {
		t.Fatal("temporal split produced empty sets")
	}
	if res.Model == nil {
		t.Fatal("no model fitted")
	}
	// Precision among accepted predictions must beat the base rate when
	// anything is accepted at all.
	if res.AcceptedCount > 3 && res.FracActualBelow0 < 0.5 {
		t.Errorf("validation precision below 0 = %v with %d accepted", res.FracActualBelow0, res.AcceptedCount)
	}
}

func TestAggregateRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lab := tinyLab(t)
	res, err := lab.Aggregate(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalJobs == 0 {
		t.Fatal("no jobs on evaluation day")
	}
	if res.FinalDayReport == nil {
		t.Fatal("missing final day report")
	}
	if res.MatchedJobs != len(res.Deltas) {
		t.Errorf("matched %d != deltas %d", res.MatchedJobs, len(res.Deltas))
	}
	sorted := res.SortedDeltas("pnhours")
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedDeltas not sorted")
		}
	}
}

func TestTable3Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lab := tinyLab(t)
	res, err := lab.Table3(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsConsidered == 0 {
		t.Fatal("no jobs considered")
	}
	if res.NonEmptySpanFrac <= 0 || res.NonEmptySpanFrac > 1 {
		t.Errorf("non-empty span fraction = %v", res.NonEmptySpanFrac)
	}
	total := func(r Table3Row) int { return r.LowerCost + r.EqualCost + r.HigherCost + r.Failures }
	if total(res.Random) != total(res.CB) {
		t.Errorf("row totals differ: random %d, CB %d", total(res.Random), total(res.CB))
	}
	if res.RandomTotalCost <= 0 || res.CBTotalCost <= 0 {
		t.Error("total costs must be positive")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(-0.143); got != "-14.3%" {
		t.Errorf("FormatPct = %q", got)
	}
	if got := FormatPct(0.5); got != "+50.0%" {
		t.Errorf("FormatPct = %q", got)
	}
}

func TestLabDeterminism(t *testing.T) {
	a := tinyLab(t)
	b := tinyLab(t)
	va, err := a.Variance("pnhours")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Variance("pnhours")
	if err != nil {
		t.Fatal(err)
	}
	if va.FracAbove5 != vb.FracAbove5 || va.MedianCV != vb.MedianCV {
		t.Error("experiments are not deterministic across identical labs")
	}
}

func TestOffPolicyEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lab := tinyLab(t)
	res, err := lab.OffPolicyEvaluation(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoggedEvents == 0 {
		t.Fatal("no logged events")
	}
	// The logging policy's value sits near 1 (most flips change little);
	// the IPS estimate must be finite and non-negative.
	if res.LoggingValue <= 0 || res.LoggingValue > 2 {
		t.Errorf("logging value = %v", res.LoggingValue)
	}
	if res.GreedyIPSValue < 0 {
		t.Errorf("greedy IPS value = %v", res.GreedyIPSValue)
	}
}
