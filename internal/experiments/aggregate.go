package experiments

import (
	"sort"

	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/stats"
)

// JobDeltas is one hinted job's A/B deltas against the default plan
// (Figures 10-12 plot these sorted per metric).
type JobDeltas struct {
	JobID        string
	TemplateID   string
	PNDelta      float64
	LatencyDelta float64
	VertexDelta  float64
}

// AggregateResult reproduces Table 2 and Figures 10-12: after the
// pipeline has run for several days, the jobs matching QO-Advisor hints
// are compared against their default plans in pre-production.
type AggregateResult struct {
	TrainingDays int
	// MatchedJobs is the number of jobs with an active hint on the
	// evaluation day (the paper's Table 2 covers 70 such jobs).
	MatchedJobs int
	TotalJobs   int

	// Table 2: aggregate percentage reductions (negative = savings).
	PNHoursReduction  float64
	LatencyReduction  float64
	VerticesReduction float64

	// Figures 10-12 raw data.
	Deltas []JobDeltas

	// Distribution summaries.
	FracPNImproved      float64
	BestPNDelta         float64
	WorstPNDelta        float64
	FracLatencyImproved float64
	BestLatencyDelta    float64
	WorstLatencyDelta   float64
	BestVertexDelta     float64
	WorstVertexDelta    float64

	// Pipeline bookkeeping from the final training day.
	FinalDayReport *core.DayReport
}

// Aggregate runs the full QO-Advisor loop for trainDays days and then
// evaluates the installed hints on the next day's workload.
func (l *Lab) Aggregate(trainDays int) (*AggregateResult, error) {
	store := l.freshStore()
	adv := core.NewAdvisor(l.Catalog, store, core.Config{
		Seed:                 l.Cfg.Seed,
		MinValidationSamples: 12,
		Flighting:            flighting.Config{Catalog: l.Catalog, Cluster: l.Cluster, Seed: l.Cfg.Seed + 5},
		UniformLogging:       true,
	})
	prod := l.production(store, l.Cfg.Seed+9)

	res := &AggregateResult{TrainingDays: trainDays}
	for day := 1; day <= trainDays; day++ {
		// Off-policy design (§4.2): gather rewards uniformly at random
		// for the first half of the run, then act with the learned
		// contextual-bandit policy.
		adv.CB.Uniform = day <= trainDays/2
		jobs, err := l.jobsForDay(day)
		if err != nil {
			return nil, err
		}
		_, view, err := prod.RunDay(day, jobs)
		if err != nil {
			return nil, err
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			return nil, err
		}
		res.FinalDayReport = rep
	}

	// Evaluation day: A/B hinted configs against the default plans.
	evalDay := trainDays + 1
	jobs, err := l.jobsForDay(evalDay)
	if err != nil {
		return nil, err
	}
	res.TotalJobs = len(jobs)
	def := l.Catalog.DefaultConfig()
	var totalPNBase, totalPNTreat float64
	var totalLatBase, totalLatTreat float64
	var totalVBase, totalVTreat float64
	for i, job := range jobs {
		hint, ok := store.Lookup(job.Template.Hash)
		if !ok {
			continue
		}
		base, err := l.compileWith(job, def)
		if err != nil {
			continue
		}
		treat, err := l.compileWith(job, def.WithFlip(hint.Flip))
		if err != nil {
			continue
		}
		res.MatchedJobs++
		seed := int64(evalDay*1000000 + i*17)
		mBase := exec.Run(base.Plan, job.Truth, job.Stats, l.Cluster, seed)
		mTreat := exec.Run(treat.Plan, job.Truth, job.Stats, l.Cluster, seed+1)

		totalPNBase += mBase.PNHours
		totalPNTreat += mTreat.PNHours
		totalLatBase += mBase.LatencySec
		totalLatTreat += mTreat.LatencySec
		totalVBase += float64(mBase.Vertices)
		totalVTreat += float64(mTreat.Vertices)

		res.Deltas = append(res.Deltas, JobDeltas{
			JobID:        job.ID,
			TemplateID:   job.Template.ID,
			PNDelta:      stats.RelativeDelta(mBase.PNHours, mTreat.PNHours),
			LatencyDelta: stats.RelativeDelta(mBase.LatencySec, mTreat.LatencySec),
			VertexDelta:  stats.RelativeDelta(float64(mBase.Vertices), float64(mTreat.Vertices)),
		})
	}
	res.PNHoursReduction = stats.RelativeDelta(totalPNBase, totalPNTreat)
	res.LatencyReduction = stats.RelativeDelta(totalLatBase, totalLatTreat)
	res.VerticesReduction = stats.RelativeDelta(totalVBase, totalVTreat)

	var pn, lat, vert []float64
	for _, d := range res.Deltas {
		pn = append(pn, d.PNDelta)
		lat = append(lat, d.LatencyDelta)
		vert = append(vert, d.VertexDelta)
	}
	res.FracPNImproved = stats.FractionBelow(pn, 0)
	res.BestPNDelta = stats.Min(pn)
	res.WorstPNDelta = stats.Max(pn)
	res.FracLatencyImproved = stats.FractionBelow(lat, 0)
	res.BestLatencyDelta = stats.Min(lat)
	res.WorstLatencyDelta = stats.Max(lat)
	res.BestVertexDelta = stats.Min(vert)
	res.WorstVertexDelta = stats.Max(vert)
	return res, nil
}

// SortedDeltas returns the per-job deltas of the chosen metric in
// ascending order, the exact series Figures 10-12 plot.
func (r *AggregateResult) SortedDeltas(metric string) []float64 {
	out := make([]float64, 0, len(r.Deltas))
	for _, d := range r.Deltas {
		switch metric {
		case "latency":
			out = append(out, d.LatencyDelta)
		case "vertices":
			out = append(out, d.VertexDelta)
		default:
			out = append(out, d.PNDelta)
		}
	}
	sort.Float64s(out)
	return out
}
