package experiments

import (
	"math/rand"

	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/regression"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/span"
	"qoadvisor/internal/stats"
	"qoadvisor/internal/workload"
)

// FlightObservation is one A/B flighting measurement of a
// cost-improving rule flip: the raw material of Figures 6-9.
type FlightObservation struct {
	JobID string
	Day   int

	CostDelta    float64 // estimated-cost delta (new/old - 1)
	LatencyDelta float64
	PNDelta      float64
	ReadDelta    float64
	WrittenDelta float64
	// FuturePNDelta is the PNhours delta of the recurring job's next
	// occurrence under the same flip — the validation model's label.
	FuturePNDelta float64
	HasFuture     bool
}

// gatherFlights flights one cost-improving flip per unique job per day
// over the given day range, returning the observations.
func (l *Lab) gatherFlights(firstDay, lastDay int) ([]FlightObservation, error) {
	if cached, ok := l.flights[[2]int{firstDay, lastDay}]; ok {
		return cached, nil
	}
	rng := rand.New(rand.NewSource(l.Cfg.Seed + 301))
	var out []FlightObservation
	spanCache := make(map[uint64][]int)
	for day := firstDay; day <= lastDay; day++ {
		jobs, err := l.uniqueJobsForDay(day)
		if err != nil {
			return nil, err
		}
		for i, job := range jobs {
			bits, ok := spanCache[job.Template.Hash]
			if !ok {
				sp, err := span.Compute(job.Graph, l.Catalog, span.Options{Optimizer: l.opts(job)})
				if err != nil {
					spanCache[job.Template.Hash] = nil
					continue
				}
				bits = sp.Span.Bits()
				spanCache[job.Template.Hash] = bits
			}
			if len(bits) == 0 {
				continue
			}
			base, err := l.compileDefault(job)
			if err != nil {
				continue
			}
			// Mixed flip population: mostly random cost-improving flips,
			// with a share of best-estimated-cost flips mirroring the
			// flighting queue's cheapest-first processing bias.
			var flip rules.Flip
			var treat *optimizer.Result
			var found bool
			if rng.Float64() < 0.3 {
				flip, treat, found = l.bestCostFlip(job, bits)
			} else {
				flip, treat, found = l.costImprovingFlip(job, bits, rng)
			}
			if !found {
				continue
			}
			seed := int64(day*100000 + i*13)
			mBase := exec.Run(base.Plan, job.Truth, job.Stats, l.Cluster, seed)
			mTreat := exec.Run(treat.Plan, job.Truth, job.Stats, l.Cluster, seed+1)
			readD, writtenD, pnD := core.Deltas(mBase, mTreat)
			obs := FlightObservation{
				JobID:        job.ID,
				Day:          day,
				CostDelta:    treat.EstCost/base.EstCost - 1,
				LatencyDelta: stats.RelativeDelta(mBase.LatencySec, mTreat.LatencySec),
				PNDelta:      pnD,
				ReadDelta:    readD,
				WrittenDelta: writtenD,
			}
			// Next occurrence under the same flip: the validation label.
			if future, err := job.Template.Instantiate(job.Date+1, job.Seq); err == nil {
				fb, err1 := l.compileDefault(future)
				ft, err2 := l.compileWith(future, l.Catalog.DefaultConfig().WithFlip(flip))
				if err1 == nil && err2 == nil {
					fmB := exec.Run(fb.Plan, future.Truth, future.Stats, l.Cluster, seed+77)
					fmT := exec.Run(ft.Plan, future.Truth, future.Stats, l.Cluster, seed+78)
					_, _, obs.FuturePNDelta = core.Deltas(fmB, fmT)
					obs.HasFuture = true
				}
			}
			out = append(out, obs)
		}
	}
	l.flights[[2]int{firstDay, lastDay}] = out
	return out, nil
}

// CostVsLatencyResult reproduces Figure 6: estimated-cost delta versus
// latency delta for jobs flighted over several days.
type CostVsLatencyResult struct {
	Observations []FlightObservation
	// Correlation between cost delta and latency delta — near zero in
	// the paper ("no real correlation").
	Pearson  float64
	Spearman float64
	// FracRegressedAmongImproved is the fraction of cost-improved jobs
	// whose latency regressed (paper: over 40%).
	FracRegressedAmongImproved float64
}

// CostVsLatency runs the Figure 6 experiment over five days of jobs.
func (l *Lab) CostVsLatency() (*CostVsLatencyResult, error) {
	obs, err := l.gatherFlights(1, 5)
	if err != nil {
		return nil, err
	}
	res := &CostVsLatencyResult{Observations: obs}
	var costs, lats []float64
	regressed, improved := 0, 0
	for _, o := range obs {
		costs = append(costs, o.CostDelta)
		lats = append(lats, o.LatencyDelta)
		if o.CostDelta < 0 { // all gathered flips improve cost by construction
			improved++
			if o.LatencyDelta > 0 {
				regressed++
			}
		}
	}
	if p, err := stats.Pearson(costs, lats); err == nil {
		res.Pearson = p
	}
	if s, err := stats.Spearman(costs, lats); err == nil {
		res.Spearman = s
	}
	if improved > 0 {
		res.FracRegressedAmongImproved = float64(regressed) / float64(improved)
	}
	return res, nil
}

// IOCorrelationResult reproduces Figures 7 (DataRead) and 8
// (DataWritten): the correlation between an I/O delta and the PNhours
// delta, with the polynomial trend line the figures draw.
type IOCorrelationResult struct {
	Metric       string // "read" or "written"
	Observations []FlightObservation
	Pearson      float64
	// Trend is the 1-D polynomial fit (degree 1), matching the dotted
	// trend line.
	Trend *regression.Polynomial
	// TrendSlope is the linear coefficient (positive in the paper).
	TrendSlope float64
}

// IOCorrelation runs the Figure 7/8 experiment for "read" or "written".
func (l *Lab) IOCorrelation(metric string) (*IOCorrelationResult, error) {
	obs, err := l.gatherFlights(1, 5)
	if err != nil {
		return nil, err
	}
	res := &IOCorrelationResult{Metric: metric, Observations: obs}
	var xs, ys []float64
	for _, o := range obs {
		x := o.ReadDelta
		if metric == "written" {
			x = o.WrittenDelta
		}
		xs = append(xs, x)
		ys = append(ys, o.PNDelta)
	}
	if p, err := stats.Pearson(xs, ys); err == nil {
		res.Pearson = p
	}
	if len(xs) >= 3 {
		if trend, err := regression.PolyFit(xs, ys, 1); err == nil {
			res.Trend = trend
			res.TrendSlope = trend.Coef[1]
		}
	}
	return res, nil
}

// observationsToSamples converts flight observations (with future labels)
// into validation training samples.
func observationsToSamples(obs []FlightObservation) []regression.Sample {
	var out []regression.Sample
	for _, o := range obs {
		if !o.HasFuture {
			continue
		}
		out = append(out, regression.Sample{
			Date: o.Day,
			X:    []float64{o.PNDelta, o.ReadDelta, o.WrittenDelta},
			Y:    o.FuturePNDelta,
		})
	}
	return out
}

var _ = workload.ViewRow{} // keep the workload dependency explicit
