package experiments

import (
	"fmt"

	"qoadvisor/internal/core"
	"qoadvisor/internal/span"
	"qoadvisor/internal/workload"
)

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Label      string
	LowerCost  int
	EqualCost  int
	HigherCost int
	Failures   int
}

// Table3Result reproduces Table 3: random versus contextual-bandit rule
// flips, compared on recompiled estimated cost.
type Table3Result struct {
	JobsConsidered   int
	NonEmptySpanFrac float64
	Random           Table3Row
	CB               Table3Row
	// Total estimated costs of the workload under each policy (a job's
	// cost is its flipped-config estimate when it compiled, else its
	// default). The paper reports a >100x gap (1.7e11 vs 1.0e9).
	RandomTotalCost float64
	CBTotalCost     float64
	TrainingDays    int
}

// featuresForDay featurizes one day's jobs: span + default cost. With
// uniqueOnly, one instance per template is used (the evaluation setting);
// otherwise every recurrence contributes training data.
func (l *Lab) featuresForDay(day int, spanCache map[uint64]*span.Result, uniqueOnly bool) ([]*core.JobFeatures, int, error) {
	var jobs []*workload.Job
	var err error
	if uniqueOnly {
		jobs, err = l.uniqueJobsForDay(day)
	} else {
		jobs, err = l.jobsForDay(day)
	}
	if err != nil {
		return nil, 0, err
	}
	var feats []*core.JobFeatures
	total := 0
	for _, job := range jobs {
		total++
		sp, ok := spanCache[job.Template.Hash]
		if !ok {
			computed, err := span.Compute(job.Graph, l.Catalog, span.Options{Optimizer: l.opts(job)})
			if err != nil {
				spanCache[job.Template.Hash] = nil
				continue
			}
			sp = computed
			spanCache[job.Template.Hash] = sp
		}
		if sp == nil || sp.Span.IsEmpty() {
			continue
		}
		base, err := l.compileDefault(job)
		if err != nil {
			continue
		}
		f := &core.JobFeatures{
			Job:           job,
			RuleSignature: base.Signature,
			EstCost:       base.EstCost,
			Span:          sp.Span,
		}
		// Coarse input features for the bandit context.
		f.RowCount = base.Plan.Roots[0].EstRows
		feats = append(feats, f)
	}
	return feats, total, nil
}

// Table3 trains the CB recommender off-policy for trainDays days and then
// compares CB flips against uniform-random flips on a fresh day.
func (l *Lab) Table3(trainDays int) (*Table3Result, error) {
	spanCache := make(map[uint64]*span.Result)

	cb := core.NewCBRecommender(l.Catalog, l.Cfg.Seed+77)
	cb.Uniform = true // off-policy data collection
	for day := 1; day <= trainDays; day++ {
		feats, _, err := l.featuresForDay(day, spanCache, false)
		if err != nil {
			return nil, err
		}
		core.Recommend(cb, l.Catalog, feats)
		cb.Train()
	}

	evalDay := trainDays + 1
	feats, total, err := l.featuresForDay(evalDay, spanCache, true)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{
		JobsConsidered: total,
		TrainingDays:   trainDays,
	}
	if total > 0 {
		res.NonEmptySpanFrac = float64(len(feats)) / float64(total)
	}

	// Evaluation policies: the trained CB acting on its learned policy
	// versus uniform-random flips.
	cb.Uniform = false
	rnd := core.NewRandomRecommender(l.Catalog, l.Cfg.Seed+99)

	cbRecs := core.Recommend(cb, l.Catalog, feats)
	rndRecs := core.Recommend(rnd, l.Catalog, feats)

	res.CB = tabulate("contextual-bandit", cbRecs)
	res.Random = tabulate("random", rndRecs)
	res.CBTotalCost = totalCost(cbRecs)
	res.RandomTotalCost = totalCost(rndRecs)
	return res, nil
}

func tabulate(label string, recs []*core.Recommendation) Table3Row {
	row := Table3Row{Label: label}
	for _, r := range recs {
		switch {
		case r.NoOp:
			// The CB may choose "change nothing": count as equal cost.
			row.EqualCost++
		case r.CompileFailed:
			row.Failures++
		case r.CostDelta < 0:
			row.LowerCost++
		case r.CostDelta == 0:
			row.EqualCost++
		default:
			row.HigherCost++
		}
	}
	return row
}

// totalCost sums the estimated cost of the workload under a policy's
// flips as applied: the flipped configuration's cost when it compiled,
// and the default cost for no-ops and compile failures. Random flips can
// blow individual jobs up by orders of magnitude, which is what drives
// the paper's >100x total-cost gap between the two rows.
func totalCost(recs []*core.Recommendation) float64 {
	sum := 0.0
	for _, r := range recs {
		if r.NoOp || r.CompileFailed || r.Recompiled == nil {
			sum += r.Features.EstCost
			continue
		}
		sum += r.Recompiled.EstCost
	}
	return sum
}

// OffPolicyResult is the counterfactual evaluation of §6: using the
// logged uniform-random telemetry, estimate offline how the learned
// greedy policy would have performed ("we use counter-factual evaluations
// where we can rely on past telemetry offline to improve learning
// parameters and to tune the model").
type OffPolicyResult struct {
	LoggedEvents int
	// LoggingValue is the average reward the uniform logging policy
	// actually obtained (reward 1.0 = no change; >1 = cost reduction).
	LoggingValue float64
	// GreedyIPSValue is the inverse-propensity-scored estimate of the
	// learned greedy policy's average reward on the same log.
	GreedyIPSValue float64
}

// OffPolicyEvaluation trains the CB off-policy and evaluates the learned
// greedy policy counterfactually against the logging policy.
func (l *Lab) OffPolicyEvaluation(trainDays int) (*OffPolicyResult, error) {
	spanCache := make(map[uint64]*span.Result)
	cb := core.NewCBRecommender(l.Catalog, l.Cfg.Seed+177)
	cb.Uniform = true
	for day := 1; day <= trainDays; day++ {
		feats, _, err := l.featuresForDay(day, spanCache, false)
		if err != nil {
			return nil, err
		}
		core.Recommend(cb, l.Catalog, feats)
		cb.Train()
	}
	res := &OffPolicyResult{}
	sum, n := 0.0, 0
	for _, ev := range cb.Service.Events() {
		if ev.Rewarded {
			sum += ev.Reward
			n++
		}
	}
	if n == 0 {
		return nil, errNoRewardedEvents
	}
	res.LoggedEvents = n
	res.LoggingValue = sum / float64(n)
	v, err := cb.Service.CounterfactualValue(cb.Service.GreedyPolicy())
	if err != nil {
		return nil, err
	}
	res.GreedyIPSValue = v
	return res, nil
}

var errNoRewardedEvents = fmt.Errorf("experiments: no rewarded events logged")
