package experiments

import (
	"math/rand"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/span"
	"qoadvisor/internal/stats"
)

// candidateFlights is how many candidate flips the week-0 protocol
// flights per job before keeping the best observed one (the prior work
// flighted the 10 most promising configurations; single flips give a
// smaller pool).
const candidateFlights = 1

type rulesFlip = rules.Flip
type execMetrics = exec.Metrics

// StabilityPoint is one job's week0/week1 delta pair (Figures 2 and 4):
// the A/B improvement measured in week0 versus the improvement of the
// same recurring job re-measured one week later.
type StabilityPoint struct {
	JobID      string
	Week0Delta float64
	Week1Delta float64
}

// StabilityResult reproduces Figures 2 (latency) and 4 (PNhours).
type StabilityResult struct {
	Metric string
	Points []StabilityPoint
	// FracImproved is the fraction of jobs with a week0 improvement.
	FracImproved float64
	// FracRegressed is the fraction of week0-improved jobs that regress
	// when re-run in week1 — the paper reports more than 40%.
	FracRegressed float64
}

// Stability runs the recurring-job stability experiment for the given
// metric ("latency" or "pnhours"): find a cost-improving flip per job,
// A/B it in week0 (day 1) and again in week1 (day 8), and compare deltas.
func (l *Lab) Stability(metric string) (*StabilityResult, error) {
	rng := rand.New(rand.NewSource(l.Cfg.Seed + 101))
	res := &StabilityResult{Metric: metric}

	week0Jobs, err := l.uniqueJobsForDay(1)
	if err != nil {
		return nil, err
	}
	pickMetric := func(m exec.Metrics) float64 {
		if metric == "pnhours" {
			return m.PNHours
		}
		return m.LatencySec
	}

	improvedW0 := 0
	regressedW1 := 0
	for _, j0 := range week0Jobs {
		sp, err := span.Compute(j0.Graph, l.Catalog, span.Options{Optimizer: l.opts(j0)})
		if err != nil || sp.Span.IsEmpty() {
			continue
		}
		base0, err := l.compileDefault(j0)
		if err != nil {
			continue
		}
		seed0 := int64(1000 + len(res.Points))
		mBase0 := exec.Run(base0.Plan, j0.Truth, j0.Stats, l.Cluster, seed0)

		// Week 0: flight up to candidateFlights cost-improving flips and
		// keep the one with the best observed week-0 metric — the
		// select-best-of-flighted protocol of the prior work [29], whose
		// winner's-curse selection is what Figures 2 and 4 expose.
		bits := sp.Span.Bits()
		order := rng.Perm(len(bits))
		var bestFlip rulesFlip
		var bestTreat0 execMetrics
		found := false
		flighted := 0
		for _, bi := range order {
			if flighted >= candidateFlights {
				break
			}
			flip := l.Catalog.FlipFor(bits[bi])
			cfg := l.Catalog.DefaultConfig().WithFlip(flip)
			treatRes, err := l.compileWith(j0, cfg)
			if err != nil || treatRes.EstCost >= base0.EstCost {
				continue
			}
			flighted++
			m := exec.Run(treatRes.Plan, j0.Truth, j0.Stats, l.Cluster, seed0+int64(flighted))
			if !found || pickMetric(m) < pickMetric(bestTreat0) {
				found = true
				bestFlip = flip
				bestTreat0 = m
			}
		}
		if !found {
			continue
		}
		flip := bestFlip
		mTreat0 := bestTreat0

		// Week 1: the same recurring template, seven days later, with
		// that week's inputs and fresh cluster noise.
		j1, err := j0.Template.Instantiate(j0.Date+7, 0)
		if err != nil {
			continue
		}
		base1, err := l.compileDefault(j1)
		if err != nil {
			continue
		}
		cfg := l.Catalog.DefaultConfig().WithFlip(flip)
		treat1, err := l.compileWith(j1, cfg)
		if err != nil {
			continue
		}
		seed1 := seed0 + 50000
		mBase1 := exec.Run(base1.Plan, j1.Truth, j1.Stats, l.Cluster, seed1)
		mTreat1 := exec.Run(treat1.Plan, j1.Truth, j1.Stats, l.Cluster, seed1+1)

		d0 := stats.RelativeDelta(pickMetric(mBase0), pickMetric(mTreat0))
		d1 := stats.RelativeDelta(pickMetric(mBase1), pickMetric(mTreat1))
		res.Points = append(res.Points, StabilityPoint{JobID: j0.ID, Week0Delta: d0, Week1Delta: d1})
		if d0 < 0 {
			improvedW0++
			if d1 > 0 {
				regressedW1++
			}
		}
	}
	if len(res.Points) > 0 {
		res.FracImproved = float64(improvedW0) / float64(len(res.Points))
	}
	if improvedW0 > 0 {
		res.FracRegressed = float64(regressedW1) / float64(improvedW0)
	}
	return res, nil
}

// VariancePoint is one job's A/A variance sample (Figures 3 and 5).
type VariancePoint struct {
	JobID string
	// NormalizedTime is the job's mean runtime normalized to the
	// workload's maximum (the figures' x axis).
	NormalizedTime float64
	// CV is the coefficient of variation of the metric over AARuns runs.
	CV float64
}

// VarianceResult reproduces Figures 3 (latency) and 5 (PNhours).
type VarianceResult struct {
	Metric string
	Points []VariancePoint
	// FracAbove5 is the fraction of jobs with more than 5% variance —
	// above 90% for latency, below 50% for PNhours in the paper.
	FracAbove5 float64
	MedianCV   float64
	MaxCV      float64
}

// Variance runs the A/A experiment: each unique job executes AARuns times
// under the default configuration and identical inputs; only cluster
// noise differs.
func (l *Lab) Variance(metric string) (*VarianceResult, error) {
	jobs, err := l.uniqueJobsForDay(1)
	if err != nil {
		return nil, err
	}
	res := &VarianceResult{Metric: metric}
	var means []float64
	var cvs []float64
	for i, job := range jobs {
		base, err := l.compileDefault(job)
		if err != nil {
			continue
		}
		runs := exec.RunN(base.Plan, job.Truth, job.Stats, l.Cluster, int64(9000+i*37), l.Cfg.AARuns)
		var vals []float64
		for _, m := range runs {
			if metric == "pnhours" {
				vals = append(vals, m.PNHours)
			} else {
				vals = append(vals, m.LatencySec)
			}
		}
		cv := stats.CoefficientOfVariation(vals)
		means = append(means, stats.Mean(vals))
		cvs = append(cvs, cv)
		res.Points = append(res.Points, VariancePoint{JobID: job.ID, CV: cv})
	}
	maxMean := stats.Max(means)
	for i := range res.Points {
		if maxMean > 0 {
			res.Points[i].NormalizedTime = means[i] / maxMean
		}
	}
	res.FracAbove5 = stats.FractionAbove(cvs, 0.05)
	res.MedianCV, _ = stats.Median(cvs)
	res.MaxCV = stats.Max(cvs)
	return res, nil
}
