package experiments

import (
	"qoadvisor/internal/core"
	"qoadvisor/internal/regression"
)

// ValidationAccuracyResult reproduces Figure 9: the validation model is
// trained on the first week of flighting observations and evaluated on
// the second week; among test jobs whose predicted PNhours delta clears
// the -0.1 threshold, the paper reports 85% with actual delta < -0.1 and
// 91% with actual delta < 0.
type ValidationAccuracyResult struct {
	TrainSamples int
	TestSamples  int
	// Points pairs predicted and actual PNhours deltas on the test set.
	Points []ValidationPoint
	// Among predictions below the threshold:
	AcceptedCount    int
	FracActualBelowT float64 // actual < threshold
	FracActualBelow0 float64 // actual < 0
	Model            *regression.Linear
	RSquaredOnTest   float64
	Threshold        float64
}

// ValidationPoint is one test-set prediction.
type ValidationPoint struct {
	JobID     string
	Predicted float64
	Actual    float64
}

// ValidationAccuracy runs the Figure 9 experiment: gather 14 days of
// flights, train on days 1-7, test on days 8-14, using the production
// acceptance threshold.
func (l *Lab) ValidationAccuracy() (*ValidationAccuracyResult, error) {
	return l.ValidationSweep(core.DefaultValidationThreshold)
}

// ValidationSweep runs the Figure 9 protocol with an explicit acceptance
// threshold — the aggressiveness knob of §4.3.
func (l *Lab) ValidationSweep(threshold float64) (*ValidationAccuracyResult, error) {
	obs, err := l.gatherFlights(1, 14)
	if err != nil {
		return nil, err
	}
	samples := observationsToSamples(obs)
	train, test := regression.TemporalSplit(samples, 8)

	v := core.NewValidator()
	v.Threshold = threshold
	for _, s := range train {
		v.Observe(s.Date, s.X[0], s.X[1], s.X[2], s.Y)
	}
	if err := v.Train(); err != nil {
		return nil, err
	}

	res := &ValidationAccuracyResult{
		TrainSamples: len(train),
		TestSamples:  len(test),
		Model:        v.Model(),
		Threshold:    v.Threshold,
	}
	var preds, actuals []float64
	belowT, below0 := 0, 0
	testObs := obs[len(obs)-len(test):]
	for i, s := range test {
		pred := v.Predict(s.X[0], s.X[1], s.X[2])
		jobID := ""
		if i < len(testObs) {
			jobID = testObs[i].JobID
		}
		res.Points = append(res.Points, ValidationPoint{JobID: jobID, Predicted: pred, Actual: s.Y})
		preds = append(preds, pred)
		actuals = append(actuals, s.Y)
		if pred < v.Threshold {
			res.AcceptedCount++
			if s.Y < v.Threshold {
				belowT++
			}
			if s.Y < 0 {
				below0++
			}
		}
	}
	if res.AcceptedCount > 0 {
		res.FracActualBelowT = float64(belowT) / float64(res.AcceptedCount)
		res.FracActualBelow0 = float64(below0) / float64(res.AcceptedCount)
	}
	res.RSquaredOnTest = regression.RSquared(actuals, preds)
	return res, nil
}
