// Package fleet aggregates a serving cluster's observability into one
// view: it scrapes /v2/stats from every node, rebuilds the raw latency
// histograms each node ships (api.Hist → obs.HistSnapshot), and merges
// them into fleet-wide per-route and per-stage distributions beside
// per-node rows (role, replication lag, quarantine state).
//
// Merging the raw buckets is the whole point — a p99 of per-node p99s
// is not the fleet p99, but log₂ histograms merge exactly (bucket-wise
// addition), so the fleet percentiles here are as accurate as any
// single node's. PR 6 made obs.HistSnapshot mergeable for precisely
// this use; this package is the first cross-node consumer.
//
// Consumers: `qoserved -check -cluster host1,host2,...` renders the
// table form, and cmd/qoload embeds a fleet snapshot in its end-of-run
// BENCH_load.json report.
package fleet

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/obs"
)

// Node is one scraped cluster member.
type Node struct {
	Endpoint string
	// Err is the scrape failure, if any; Stats is valid only when nil.
	Err   error
	Stats api.StatsResponse
}

// Role reports the node's cluster role ("primary", "follower",
// "standalone", or "?" when the scrape failed).
func (n Node) Role() string {
	switch {
	case n.Err != nil:
		return "?"
	case n.Stats.Replication != nil:
		return n.Stats.Replication.Role
	default:
		return "standalone"
	}
}

// Merged is one series' fleet-wide aggregate: the bucket-wise merge of
// every node's histogram plus the summed wire counters.
type Merged struct {
	// Hist is the merged latency distribution; Hist.Count is the sum of
	// the per-node histogram counts by construction.
	Hist obs.HistSnapshot
	// Count / Errors are the summed route counters (Count mirrors
	// Hist.Count for nodes that ship buckets; Errors is routes-only).
	Count  int64
	Errors int64
}

// Snapshot is one aggregation pass over a cluster.
type Snapshot struct {
	Nodes []Node
	// Routes / Stages hold the fleet-merged series keyed by route path
	// and stage name.
	Routes map[string]Merged
	Stages map[string]Merged
}

// FromWire rebuilds a node's histogram from its wire form (nil-safe:
// an empty snapshot for nodes predating the hist field).
func FromWire(h *api.Hist) obs.HistSnapshot {
	if h == nil {
		return obs.HistSnapshot{}
	}
	return obs.SnapshotFromParts(h.SumNanos, h.Buckets)
}

// Scrape fetches /v2/stats from every endpoint concurrently and
// aggregates the answers. Unreachable nodes appear in Nodes with Err
// set and contribute nothing to the merged series; the context bounds
// the whole pass.
func Scrape(ctx context.Context, endpoints []string, opts ...client.Option) *Snapshot {
	nodes := make([]Node, len(endpoints))
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			st, err := client.New(ep, opts...).Stats(ctx)
			nodes[i] = Node{Endpoint: ep, Stats: st, Err: err}
		}(i, ep)
	}
	wg.Wait()
	return Aggregate(nodes)
}

// Aggregate merges already-scraped node stats into a fleet snapshot.
// Merge order does not matter: bucket-wise addition is commutative and
// associative, which TestAggregateCommutes pins.
func Aggregate(nodes []Node) *Snapshot {
	s := &Snapshot{
		Nodes:  nodes,
		Routes: make(map[string]Merged),
		Stages: make(map[string]Merged),
	}
	for _, n := range nodes {
		if n.Err != nil {
			continue
		}
		for route, rs := range n.Stats.Routes {
			m := s.Routes[route]
			m.Hist.Merge(FromWire(rs.Hist))
			m.Count += rs.Count
			m.Errors += rs.Errors
			s.Routes[route] = m
		}
		for stage, ls := range n.Stats.Stages {
			m := s.Stages[stage]
			m.Hist.Merge(FromWire(ls.Hist))
			m.Count += ls.Count
			s.Stages[stage] = m
		}
	}
	return s
}

// Reachable counts nodes whose scrape succeeded.
func (s *Snapshot) Reachable() int {
	n := 0
	for _, node := range s.Nodes {
		if node.Err == nil {
			n++
		}
	}
	return n
}

// micros renders a duration as integer microseconds for the tables.
func micros(d time.Duration) string { return fmt.Sprintf("%d", d.Microseconds()) }

// Render writes the human-readable fleet report: per-node rows, then
// the fleet-merged route and stage percentile tables (microseconds).
func (s *Snapshot) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tROLE\tUPTIME\tRANKS\tLAG\tQUARANTINED\tINCIDENTS\tERROR")
	for _, n := range s.Nodes {
		if n.Err != nil {
			fmt.Fprintf(tw, "%s\t?\t-\t-\t-\t-\t-\t%v\n", n.Endpoint, n.Err)
			continue
		}
		lag := "-"
		if r := n.Stats.Replication; r != nil && r.Role == api.RoleFollower {
			lag = fmt.Sprintf("%d", r.LagRecords)
		}
		quar := "-"
		if d := n.Stats.Drift; d != nil {
			quar = fmt.Sprintf("%d", d.QuarantinedNow)
		}
		// Incident column: bundle count plus the newest bundle's age, so
		// a fleet sweep shows where (and how recently) something fired.
		inc := "-"
		if in := n.Stats.Incidents; in != nil {
			inc = fmt.Sprintf("%d", in.Count)
			if in.Count > 0 && in.LastAgeSec > 0 {
				inc += fmt.Sprintf(" (%s ago)", (time.Duration(in.LastAgeSec) * time.Second).String())
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t\n",
			n.Endpoint, n.Role(), (time.Duration(n.Stats.UptimeSec) * time.Second).String(),
			n.Stats.RankRequests, lag, quar, inc)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nfleet routes (%d/%d nodes, latency µs):\n", s.Reachable(), len(s.Nodes))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ROUTE\tCOUNT\tERRORS\tP50\tP90\tP99\tP999")
	for _, route := range sortedKeys(s.Routes) {
		m := s.Routes[route]
		if m.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\n", route, m.Count, m.Errors,
			micros(m.Hist.Quantile(0.50)), micros(m.Hist.Quantile(0.90)),
			micros(m.Hist.Quantile(0.99)), micros(m.Hist.Quantile(0.999)))
	}
	tw.Flush()

	fmt.Fprintln(w, "\nfleet stages (latency µs):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tCOUNT\tP50\tP90\tP99\tP999")
	for _, stage := range sortedKeys(s.Stages) {
		m := s.Stages[stage]
		if m.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", stage, m.Count,
			micros(m.Hist.Quantile(0.50)), micros(m.Hist.Quantile(0.90)),
			micros(m.Hist.Quantile(0.99)), micros(m.Hist.Quantile(0.999)))
	}
	tw.Flush()
}

func sortedKeys(m map[string]Merged) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
