package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/serve"
)

// startNodes spins n standalone serving nodes and drives jobsPer rank
// jobs into each, so every node holds distinct route histograms.
func startNodes(t *testing.T, n, jobsPer int) ([]*httptest.Server, []string) {
	t.Helper()
	ctx := context.Background()
	servers := make([]*httptest.Server, n)
	endpoints := make([]string, n)
	for i := range servers {
		srv := serve.New(serve.Config{Seed: int64(i + 1)})
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		servers[i] = ts
		endpoints[i] = ts.URL

		jobs := make([]api.RankRequest, jobsPer)
		for j := range jobs {
			jobs[j] = api.RankRequest{TemplateHash: api.TemplateHash(j + 1), Span: []int{j % 8, 8 + j%8}}
		}
		if _, err := client.New(ts.URL).RankBatch(ctx, jobs); err != nil {
			t.Fatalf("seeding node %d: %v", i, err)
		}
	}
	return servers, endpoints
}

// TestScrapeMergesCounts pins the central fleet invariant: the merged
// histogram's count equals the sum of the per-node counts, for routes
// and stages alike.
func TestScrapeMergesCounts(t *testing.T) {
	_, endpoints := startNodes(t, 3, 5)
	snap := Scrape(context.Background(), endpoints, client.WithTimeout(5*time.Second))
	if got := snap.Reachable(); got != 3 {
		t.Fatalf("expected 3 reachable nodes, got %d: %+v", got, snap.Nodes)
	}

	var nodeSum uint64
	var wireSum int64
	for _, n := range snap.Nodes {
		rs := n.Stats.Routes[api.RouteV2Rank]
		if rs.Hist == nil {
			t.Fatalf("node %s ships no raw histogram for %s", n.Endpoint, api.RouteV2Rank)
		}
		nodeSum += FromWire(rs.Hist).Count
		wireSum += rs.Count
	}
	m := snap.Routes[api.RouteV2Rank]
	if m.Hist.Count != nodeSum {
		t.Fatalf("fleet count %d != Σ node counts %d", m.Hist.Count, nodeSum)
	}
	if m.Count != wireSum || m.Count != 3 {
		t.Fatalf("fleet route counter %d, want wire sum %d = 3 batch requests", m.Count, wireSum)
	}

	var stageSum uint64
	for _, n := range snap.Nodes {
		stageSum += FromWire(n.Stats.Stages["rank_bandit"].Hist).Count
	}
	if sm := snap.Stages["rank_bandit"]; sm.Hist.Count != stageSum || stageSum == 0 {
		t.Fatalf("stage merge: fleet %d != Σ nodes %d (must be nonzero)", sm.Hist.Count, stageSum)
	}
}

// TestAggregateCommutes pins merge commutativity: scraping the same
// nodes in any order yields identical fleet distributions.
func TestAggregateCommutes(t *testing.T) {
	_, endpoints := startNodes(t, 3, 4)
	snap := Scrape(context.Background(), endpoints)

	fwd := Aggregate(snap.Nodes)
	rev := make([]Node, len(snap.Nodes))
	for i, n := range snap.Nodes {
		rev[len(rev)-1-i] = n
	}
	bwd := Aggregate(rev)
	for route, m := range fwd.Routes {
		if bwd.Routes[route].Hist != m.Hist {
			t.Fatalf("route %s merge not commutative", route)
		}
		if bwd.Routes[route].Count != m.Count || bwd.Routes[route].Errors != m.Errors {
			t.Fatalf("route %s counters not commutative", route)
		}
	}
	for stage, m := range fwd.Stages {
		if bwd.Stages[stage].Hist != m.Hist {
			t.Fatalf("stage %s merge not commutative", stage)
		}
	}
}

// TestMergedExpositionInfEqualsCount pins the +Inf == count invariant
// on a fleet-merged histogram rendered through the Prometheus builder:
// merging across nodes must not break exposition validity.
func TestMergedExpositionInfEqualsCount(t *testing.T) {
	_, endpoints := startNodes(t, 2, 6)
	snap := Scrape(context.Background(), endpoints)
	m := snap.Routes[api.RouteV2Rank]
	if m.Hist.Count == 0 {
		t.Fatal("merged histogram unexpectedly empty")
	}

	e := obs.NewExposition()
	e.Histogram("fleet_route_duration_seconds", "merged", obs.L("route", api.RouteV2Rank), m.Hist)
	var buf bytes.Buffer
	e.WriteTo(&buf)
	var infVal, countVal string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `le="+Inf"`) {
			infVal = line[strings.LastIndex(line, " ")+1:]
		}
		if strings.HasPrefix(line, "fleet_route_duration_seconds_count") {
			countVal = line[strings.LastIndex(line, " ")+1:]
		}
	}
	want := fmt.Sprintf("%d", m.Hist.Count)
	if infVal != want || countVal != want {
		t.Fatalf("+Inf bucket %q and _count %q must both equal merged count %q", infVal, countVal, want)
	}
}

// TestScrapeUnreachableNode keeps a dead endpoint in the node rows
// without poisoning the merge.
func TestScrapeUnreachableNode(t *testing.T) {
	_, endpoints := startNodes(t, 1, 3)
	endpoints = append(endpoints, "http://127.0.0.1:1") // nothing listens
	snap := Scrape(context.Background(), endpoints, client.WithTimeout(2*time.Second))
	if snap.Reachable() != 1 {
		t.Fatalf("expected 1 reachable node, got %d", snap.Reachable())
	}
	if snap.Nodes[1].Err == nil {
		t.Fatal("dead endpoint must report its scrape error")
	}
	if snap.Routes[api.RouteV2Rank].Hist.Count == 0 {
		t.Fatal("live node's series must still merge")
	}

	var buf bytes.Buffer
	snap.Render(&buf)
	out := buf.String()
	for _, want := range []string{endpoints[0], endpoints[1], "ROLE", "standalone", api.RouteV2Rank, "rank_bandit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}
