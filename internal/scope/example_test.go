package scope_test

import (
	"fmt"

	"qoadvisor/internal/scope"
)

// ExampleCompileScript shows the lexer→parser→compiler path from script
// source to a logical operator DAG.
func ExampleCompileScript() {
	src := `
events = EXTRACT uid:long, kind:string, ms:int FROM "store/events.tsv";
slow = SELECT uid, ms FROM events WHERE ms > 500;
byUser = SELECT uid, COUNT(*) AS cnt FROM slow GROUP BY uid;
OUTPUT byUser TO "out/by_user.tsv";
`
	g, err := scope.CompileScript(src)
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	for _, n := range g.Nodes() {
		fmt.Println(n.Label())
	}
	// Output:
	// Scan(store/events.tsv)
	// Filter((ms > 500))
	// Project(uid,ms)
	// Agg(by=uid aggs=COUNT(*))
	// Project(uid,cnt)
	// Output(out/by_user.tsv)
}

// ExampleGraph_TemplateHash demonstrates recurring-job identity: two
// instances with different constants and dated paths share a template.
func ExampleGraph_TemplateHash() {
	day1, _ := scope.CompileScript(`
t = EXTRACT v:int FROM "data/20211103.tsv";
x = SELECT v FROM t WHERE v > 100;
OUTPUT x TO "out/20211103.tsv";`)
	day2, _ := scope.CompileScript(`
t = EXTRACT v:int FROM "data/20211104.tsv";
x = SELECT v FROM t WHERE v > 250;
OUTPUT x TO "out/20211104.tsv";`)
	fmt.Println(day1.TemplateHash() == day2.TemplateHash())
	// Output: true
}

// ExampleConjuncts shows predicate decomposition, the unit of selectivity
// bookkeeping throughout the optimizer.
func ExampleConjuncts() {
	s, _ := scope.Parse(`x = SELECT a FROM t WHERE a > 1 AND b == 2 AND c < 3; OUTPUT x TO "o";`)
	pred := s.Statements[0].(*scope.SelectStmt).Where
	for _, c := range scope.Conjuncts(pred) {
		fmt.Println(c)
	}
	// Output:
	// (a > 1)
	// (b == 2)
	// (c < 3)
}
