package scope

// Conjuncts splits an expression on top-level ANDs, returning the list of
// conjuncts. A non-AND expression is its own single conjunct. Conjunct
// identity is what keeps filter-merge and filter-split rewrites
// cardinality-neutral: the engine estimates each conjunct independently.
func Conjuncts(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(Conjuncts(be.Left), Conjuncts(be.Right)...)
	}
	return []Expr{e}
}

// AndAll combines expressions with AND. It returns nil for an empty list
// and the sole expression for a singleton.
func AndAll(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: e}
	}
	return out
}

// RefNames returns the set of column names referenced by e.
func RefNames(e Expr) map[string]bool {
	out := make(map[string]bool)
	for _, r := range CollectColRefs(e, nil) {
		out[r.Name] = true
	}
	return out
}

// RenameRefs returns a copy of e with column references renamed through
// mapping; names missing from the mapping are kept. The input expression
// is never mutated.
func RenameRefs(e Expr, mapping map[string]string) Expr {
	switch x := e.(type) {
	case *ColRef:
		if to, ok := mapping[x.Name]; ok {
			return &ColRef{Name: to}
		}
		return &ColRef{Name: x.Name}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: RenameRefs(x.Left, mapping), Right: RenameRefs(x.Right, mapping)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, Expr: RenameRefs(x.Expr, mapping)}
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, RenameRefs(a, mapping))
		}
		return out
	default:
		return e
	}
}

// SubstituteRefs returns a copy of e with column references replaced by
// the mapped expressions; names missing from the mapping are kept as
// references. Used to move predicates through projections.
func SubstituteRefs(e Expr, mapping map[string]Expr) Expr {
	switch x := e.(type) {
	case *ColRef:
		if to, ok := mapping[x.Name]; ok {
			return to
		}
		return &ColRef{Name: x.Name}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: SubstituteRefs(x.Left, mapping), Right: SubstituteRefs(x.Right, mapping)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, Expr: SubstituteRefs(x.Expr, mapping)}
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, SubstituteRefs(a, mapping))
		}
		return out
	default:
		return e
	}
}
