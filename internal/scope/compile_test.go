package scope

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := CompileScript(src)
	if err != nil {
		t.Fatalf("CompileScript: %v", err)
	}
	return g
}

func TestCompileSample(t *testing.T) {
	g := mustCompile(t, sampleScript)
	if len(g.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(g.Roots))
	}
	root := g.Roots[0]
	if root.Kind != OpOutput {
		t.Fatalf("root kind = %v", root.Kind)
	}
	// Expected chain: Output <- Top <- Filter(having) <- Agg <- Join ...
	kinds := map[OpKind]int{}
	for _, n := range g.Nodes() {
		kinds[n.Kind]++
	}
	if kinds[OpScan] != 2 {
		t.Errorf("scans = %d, want 2", kinds[OpScan])
	}
	if kinds[OpJoin] != 1 {
		t.Errorf("joins = %d, want 1", kinds[OpJoin])
	}
	if kinds[OpAgg] != 1 {
		t.Errorf("aggs = %d, want 1", kinds[OpAgg])
	}
	if kinds[OpTop] != 1 {
		t.Errorf("tops = %d, want 1", kinds[OpTop])
	}
	// HAVING plus WHERE both lower to filters.
	if kinds[OpFilter] != 2 {
		t.Errorf("filters = %d, want 2", kinds[OpFilter])
	}
}

func TestCompileSchemaPropagation(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT a:int, b:string FROM "in.tsv";
x = SELECT a FROM t WHERE b == "v";
OUTPUT x TO "o.tsv";`)
	root := g.Roots[0]
	if len(root.Cols) != 1 || root.Cols[0].Name != "a" || root.Cols[0].Type != TypeInt {
		t.Errorf("output cols = %+v", root.Cols)
	}
	// Scan column carries its base-table source identity.
	var scan *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpScan {
			scan = n
		}
	}
	if scan.Cols[0].Source != "in.tsv:a" {
		t.Errorf("scan source = %q", scan.Cols[0].Source)
	}
	if root.Cols[0].Source != "in.tsv:a" {
		t.Errorf("projected column should keep source, got %q", root.Cols[0].Source)
	}
}

func TestCompileSharedRowsetIsDAG(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT a:int, b:int FROM "in.tsv";
x = SELECT a FROM t WHERE a > 1;
y = SELECT b FROM t WHERE b > 2;
OUTPUT x TO "x.tsv";
OUTPUT y TO "y.tsv";`)
	if len(g.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(g.Roots))
	}
	scans := 0
	for _, n := range g.Nodes() {
		if n.Kind == OpScan {
			scans++
		}
	}
	if scans != 1 {
		t.Errorf("shared extract should compile to a single scan node, got %d", scans)
	}
}

func TestCompileJoinColumnCollision(t *testing.T) {
	g := mustCompile(t, `
l = EXTRACT id:long, v:int FROM "l.tsv";
r = EXTRACT id:long, w:int FROM "r.tsv";
j = SELECT l.id, l.v, r.w FROM l AS l JOIN r AS r ON l.id == r.id;
OUTPUT j TO "o.tsv";`)
	var join *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpJoin {
			join = n
		}
	}
	if join == nil {
		t.Fatal("no join node")
	}
	// Right side's "id" collides; it must be renamed in the join schema.
	names := join.ColNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate column %q in join schema %v", n, names)
		}
		seen[n] = true
	}
	if !seen["r_id"] {
		t.Errorf("expected renamed column r_id in %v", names)
	}
	// The join condition references the merged name.
	if !strings.Contains(join.JoinCond.String(), "r_id") {
		t.Errorf("join condition should use merged name: %s", join.JoinCond)
	}
}

func TestCompileSemiJoinSchema(t *testing.T) {
	g := mustCompile(t, `
l = EXTRACT a:int FROM "l.tsv";
r = EXTRACT b:int FROM "r.tsv";
j = SELECT a FROM l SEMI JOIN r ON a == b;
OUTPUT j TO "o.tsv";`)
	var join *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpJoin {
			join = n
		}
	}
	if join.JoinType != JoinSemi {
		t.Fatalf("join type = %v", join.JoinType)
	}
	if len(join.Cols) != 1 || join.Cols[0].Name != "a" {
		t.Errorf("semi join should keep only left columns: %v", join.ColNames())
	}
}

func TestCompileAggregation(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT k:int, v:double FROM "t.tsv";
a = SELECT k, SUM(v) AS total, COUNT(*) AS cnt FROM t GROUP BY k;
OUTPUT a TO "o.tsv";`)
	var agg *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpAgg {
			agg = n
		}
	}
	if agg == nil {
		t.Fatal("no agg node")
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0].Name != "k" {
		t.Errorf("group by = %+v", agg.GroupBy)
	}
	if len(agg.Aggs) != 2 {
		t.Fatalf("aggs = %+v", agg.Aggs)
	}
	if agg.Aggs[0].Name != "total" || agg.Aggs[0].Func != "SUM" {
		t.Errorf("agg 0 = %+v", agg.Aggs[0])
	}
	if agg.Aggs[1].Name != "cnt" || !agg.Aggs[1].Star {
		t.Errorf("agg 1 = %+v", agg.Aggs[1])
	}
	// SUM(double) -> double; COUNT -> long.
	if c, _ := agg.FindCol("total"); c.Type != TypeDouble {
		t.Errorf("total type = %v", c.Type)
	}
	if c, _ := agg.FindCol("cnt"); c.Type != TypeLong {
		t.Errorf("cnt type = %v", c.Type)
	}
}

func TestCompileAggDedupsIdenticalAggregates(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT k:int, v:int FROM "t.tsv";
a = SELECT k, COUNT(*) AS c1 FROM t GROUP BY k HAVING COUNT(*) > 5;
OUTPUT a TO "o.tsv";`)
	var agg *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpAgg {
			agg = n
		}
	}
	if len(agg.Aggs) != 1 {
		t.Errorf("identical COUNT(*) in items and HAVING should share a spec: %+v", agg.Aggs)
	}
}

func TestCompileNonGroupedColumnRejected(t *testing.T) {
	_, err := CompileScript(`
t = EXTRACT k:int, v:int FROM "t.tsv";
a = SELECT v, COUNT(*) AS c FROM t GROUP BY k;
OUTPUT a TO "o.tsv";`)
	if err == nil {
		t.Fatal("expected error for non-grouped column in projection")
	}
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("error = %v", err)
	}
}

func TestCompileGlobalAggregateWithoutGroupBy(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT v:int FROM "t.tsv";
a = SELECT COUNT(*) AS c, SUM(v) AS s FROM t;
OUTPUT a TO "o.tsv";`)
	var agg *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpAgg {
			agg = n
		}
	}
	if agg == nil || len(agg.GroupBy) != 0 || len(agg.Aggs) != 2 {
		t.Errorf("global agg = %+v", agg)
	}
}

func TestCompileDistinct(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT a:int FROM "t.tsv";
d = SELECT DISTINCT a FROM t;
OUTPUT d TO "o.tsv";`)
	found := false
	for _, n := range g.Nodes() {
		if n.Kind == OpDistinct {
			found = true
		}
	}
	if !found {
		t.Error("DISTINCT should lower to a Distinct node")
	}
}

func TestCompileUnionTypechecks(t *testing.T) {
	_, err := CompileScript(`
a = EXTRACT x:int FROM "a.tsv";
b = EXTRACT y:string FROM "b.tsv";
u = a UNION ALL b;
OUTPUT u TO "o.tsv";`)
	if err == nil {
		t.Fatal("expected type mismatch error")
	}
	g := mustCompile(t, `
a = EXTRACT x:int FROM "a.tsv";
b = EXTRACT x:int FROM "b.tsv";
u = a UNION b;
OUTPUT u TO "o.tsv";`)
	// Non-ALL union adds a distinct above the union node.
	kinds := map[OpKind]int{}
	for _, n := range g.Nodes() {
		kinds[n.Kind]++
	}
	if kinds[OpUnion] != 1 || kinds[OpDistinct] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCompileReduceAndProcess(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT k:int, payload:string FROM "t.tsv";
r = REDUCE t ON k USING Sessionize PRODUCE k:int, sess:long;
p = PROCESS r USING Enrich PRODUCE k:int, sess:long, extra:double;
OUTPUT p TO "o.tsv";`)
	var reduce, process *Node
	for _, n := range g.Nodes() {
		switch n.Kind {
		case OpReduce:
			reduce = n
		case OpProcess:
			process = n
		}
	}
	if reduce == nil || reduce.UserOp != "Sessionize" || len(reduce.GroupBy) != 1 {
		t.Errorf("reduce = %+v", reduce)
	}
	if process == nil || process.UserOp != "Enrich" || len(process.Cols) != 3 {
		t.Errorf("process = %+v", process)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, wantSubstr string
	}{
		{`x = SELECT a FROM nosuch; OUTPUT x TO "o";`, "unknown rowset"},
		{`t = EXTRACT a:int FROM "f"; t = EXTRACT b:int FROM "g"; OUTPUT t TO "o";`, "redefined"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT nocol FROM t; OUTPUT x TO "o";`, "unknown column"},
		{`t = EXTRACT a:int, a:int FROM "f"; OUTPUT t TO "o";`, "duplicate column"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT a AS z, a AS z FROM t; OUTPUT x TO "o";`, "duplicate output column"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT a FROM t WHERE SUM(a) > 1; OUTPUT x TO "o";`, "WHERE"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT a FROM t HAVING a > 1; OUTPUT x TO "o";`, "HAVING"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT a FROM t ORDER BY nocol; OUTPUT x TO "o";`, "ORDER BY"},
		{`t = EXTRACT a:int FROM "f"; x = SELECT * FROM t GROUP BY a; OUTPUT x TO "o";`, "SELECT *"},
		{`t = EXTRACT a:int FROM "f"; r = REDUCE t ON nocol USING R PRODUCE a:int; OUTPUT r TO "o";`, "not found"},
		{`t = EXTRACT a:int FROM "f";`, "no OUTPUT"},
		{`t = EXTRACT a:int FROM "f"; u = t UNION t; x = SELECT a FROM t JOIN t AS t2 ON a == a; OUTPUT x TO "o";`, "ambiguous"},
	}
	for _, c := range cases {
		_, err := CompileScript(c.src)
		if err == nil {
			t.Errorf("CompileScript(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSubstr) {
			t.Errorf("CompileScript(%q) error = %v, want substring %q", c.src, err, c.wantSubstr)
		}
	}
}

func TestCompileSelfJoinWithAliases(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT id:long, v:int FROM "t.tsv";
j = SELECT a.id, b.v FROM t AS a JOIN t AS b ON a.id == b.id;
OUTPUT j TO "o.tsv";`)
	var join *Node
	for _, n := range g.Nodes() {
		if n.Kind == OpJoin {
			join = n
		}
	}
	if join == nil {
		t.Fatal("no join")
	}
	// Self join shares the scan node.
	if join.Inputs[0] != join.Inputs[1] {
		t.Error("self join should share the scan node")
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := mustCompile(t, sampleScript)
	clone := g.Clone()
	if clone.NodeCount() != g.NodeCount() {
		t.Fatalf("clone nodes = %d, want %d", clone.NodeCount(), g.NodeCount())
	}
	// Mutating the clone must not affect the original.
	for _, n := range clone.Nodes() {
		n.Cols = nil
	}
	for _, n := range g.Nodes() {
		if n.Kind != OpScan && len(n.Cols) == 0 && n.Kind != OpOutput {
			// Outputs and scans always have cols in sample; any zeroed col
			// in the original means Clone aliased slices.
		}
	}
	orig := g.Roots[0]
	if len(orig.Cols) == 0 {
		t.Error("Clone aliased column slices with the original")
	}
}

func TestGraphClonePreservesSharing(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT a:int FROM "t.tsv";
x = SELECT a FROM t WHERE a > 1;
y = SELECT a FROM t WHERE a > 2;
OUTPUT x TO "x";
OUTPUT y TO "y";`)
	clone := g.Clone()
	scans := 0
	for _, n := range clone.Nodes() {
		if n.Kind == OpScan {
			scans++
		}
	}
	if scans != 1 {
		t.Errorf("clone should preserve node sharing, got %d scans", scans)
	}
}

func TestTemplateHashStableAcrossLiterals(t *testing.T) {
	mk := func(path, threshold string) *Graph {
		return mustCompile(t, `
t = EXTRACT a:int FROM "`+path+`";
x = SELECT a FROM t WHERE a > `+threshold+`;
OUTPUT x TO "out.tsv";`)
	}
	g1 := mk("data/2021/11/03.tsv", "100")
	g2 := mk("data/2021/11/04.tsv", "250")
	if g1.TemplateHash() != g2.TemplateHash() {
		t.Error("template hash should ignore literals and date components")
	}
	g3 := mustCompile(t, `
t = EXTRACT a:int FROM "data/2021/11/03.tsv";
x = SELECT a FROM t WHERE a < 100;
OUTPUT x TO "out.tsv";`)
	if g1.TemplateHash() == g3.TemplateHash() {
		t.Error("different predicates should produce different templates")
	}
}

func TestFingerprintDiffersAcrossShapes(t *testing.T) {
	g1 := mustCompile(t, `t = EXTRACT a:int FROM "f"; x = SELECT a FROM t WHERE a > 1; OUTPUT x TO "o";`)
	g2 := mustCompile(t, `t = EXTRACT a:int FROM "f"; x = SELECT a FROM t; OUTPUT x TO "o";`)
	if g1.Roots[0].Fingerprint() == g2.Roots[0].Fingerprint() {
		t.Error("fingerprints of different plans should differ")
	}
	// Fingerprint is deterministic.
	if g1.Roots[0].Fingerprint() != g1.Clone().Roots[0].Fingerprint() {
		t.Error("fingerprint should be stable under clone")
	}
}

func TestSiteKeys(t *testing.T) {
	g := mustCompile(t, sampleScript)
	keys := map[string]int{}
	for _, n := range g.Nodes() {
		if k := n.SiteKey(); k != "" {
			keys[k]++
		}
	}
	if len(keys) == 0 {
		t.Fatal("no site keys")
	}
	// Filter site keys embed the predicate text.
	foundFilter := false
	for k := range keys {
		if strings.HasPrefix(k, "filter:") {
			foundFilter = true
		}
	}
	if !foundFilter {
		t.Error("expected filter site keys")
	}
}

func TestGraphStringRendersAllRoots(t *testing.T) {
	g := mustCompile(t, `
t = EXTRACT a:int FROM "t.tsv";
OUTPUT t TO "a";
OUTPUT t TO "b";`)
	s := g.String()
	if !strings.Contains(s, "root 0") || !strings.Contains(s, "root 1") {
		t.Errorf("graph dump missing roots:\n%s", s)
	}
	if !strings.Contains(s, "shared") {
		t.Errorf("graph dump should mark shared nodes:\n%s", s)
	}
}

func TestRowWidth(t *testing.T) {
	g := mustCompile(t, `t = EXTRACT a:int, b:string, c:long FROM "f"; OUTPUT t TO "o";`)
	// int(4) + string(24) + long(8) = 36
	if w := g.Roots[0].RowWidth(); w != 36 {
		t.Errorf("row width = %d, want 36", w)
	}
}
