package scope

import (
	"fmt"
	"sync"
	"testing"
)

const cacheTestScript = `raw0 = EXTRACT a:long, b:int FROM "store/t/x.tsv";
rs1 = SELECT a, b FROM raw0 WHERE b > %d;
OUTPUT rs1 TO "out/t/r.tsv";
`

func TestCompileCacheHitsShareGraphs(t *testing.T) {
	c := NewCompileCache(0)
	src := fmt.Sprintf(cacheTestScript, 10)
	g1, err := c.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("same source must return the identical cached graph")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	// A different source is a different key.
	if _, err := c.Compile(fmt.Sprintf(cacheTestScript, 11)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

func TestCompileCacheCachesErrors(t *testing.T) {
	c := NewCompileCache(0)
	bad := "rs = SELECT x FROM nowhere;"
	if _, err := c.Compile(bad); err == nil {
		t.Fatal("expected compile error")
	}
	if _, err := c.Compile(bad); err == nil {
		t.Fatal("cached result must preserve the error")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("error entries must be cache hits too: %+v", st)
	}
}

func TestCompileCacheEvictsOldestAtCapacity(t *testing.T) {
	c := NewCompileCache(2)
	srcs := []string{
		fmt.Sprintf(cacheTestScript, 1),
		fmt.Sprintf(cacheTestScript, 2),
		fmt.Sprintf(cacheTestScript, 3),
	}
	for _, s := range srcs {
		if _, err := c.Compile(s); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Size != 2 {
		t.Errorf("size = %d, want cap 2", st.Size)
	}
	// The oldest source was invalidated: recompiling it is a miss...
	before := c.Stats().Misses
	if _, err := c.Compile(srcs[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != before+1 {
		t.Errorf("evicted entry should recompile as a miss: misses %d -> %d", before, got)
	}
	// ...while the newest is still a hit.
	beforeHits := c.Stats().Hits
	if _, err := c.Compile(srcs[2]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != beforeHits+1 {
		t.Errorf("resident entry should hit: hits %d -> %d", beforeHits, got)
	}
}

func TestCompileCacheConcurrentSingleflight(t *testing.T) {
	c := NewCompileCache(0)
	src := fmt.Sprintf(cacheTestScript, 42)
	const n = 16
	graphs := make([]*Graph, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Compile(src)
			if err != nil {
				t.Error(err)
				return
			}
			graphs[i] = g
			// Exercise the memoized template hash concurrently.
			_ = g.TemplateHash()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("concurrent compilations of one source must share a graph")
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", st.Misses)
	}
}

func TestTemplateHashMemoStable(t *testing.T) {
	src := fmt.Sprintf(cacheTestScript, 7)
	g1, err := CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if g1.TemplateHash() != g1.TemplateHash() {
		t.Error("memoized hash changed between calls")
	}
	if g1.TemplateHash() != g2.TemplateHash() {
		t.Error("identical sources must share a template hash")
	}
	if g1.Clone().TemplateHash() != g1.TemplateHash() {
		t.Error("clone must hash identically to its original")
	}
}
