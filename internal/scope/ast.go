package scope

import (
	"fmt"
	"strings"
)

// ColType is the small SCOPE column type system used by the simulator.
type ColType int

const (
	TypeInt ColType = iota
	TypeLong
	TypeFloat
	TypeDouble
	TypeString
	TypeBool
	TypeDateTime
)

var colTypeNames = [...]string{"int", "long", "float", "double", "string", "bool", "datetime"}

func (t ColType) String() string {
	if int(t) < len(colTypeNames) {
		return colTypeNames[t]
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// ParseColType maps a type name to a ColType.
func ParseColType(s string) (ColType, error) {
	for i, n := range colTypeNames {
		if n == strings.ToLower(s) {
			return ColType(i), nil
		}
	}
	return 0, fmt.Errorf("scope: unknown column type %q", s)
}

// Width returns the synthetic byte width of a value of this type, used for
// data-volume accounting in the simulator.
func (t ColType) Width() int64 {
	switch t {
	case TypeInt, TypeFloat:
		return 4
	case TypeLong, TypeDouble, TypeDateTime:
		return 8
	case TypeBool:
		return 1
	case TypeString:
		return 24
	default:
		return 8
	}
}

// --- Expressions ---

// Expr is an expression tree node. Expressions appear in projections,
// predicates, join conditions and aggregate arguments.
type Expr interface {
	// String renders the expression in canonical source form; it is used
	// both for error messages and as the stable site key that lets the
	// execution simulator attach true selectivities to predicates that
	// survive plan rewrites.
	String() string
	// Normalized renders the expression with literals replaced by '?',
	// producing the template form used for recurring-job identity.
	Normalized() string
}

// ColRef references a column, optionally qualified by a rowset alias.
type ColRef struct {
	Qualifier string // may be empty
	Name      string
}

func (c *ColRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Normalized of a column reference is itself: column identity is part of
// the template.
func (c *ColRef) Normalized() string { return c.String() }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

func (l *IntLit) String() string     { return fmt.Sprintf("%d", l.Value) }
func (l *IntLit) Normalized() string { return "?" }

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

func (l *FloatLit) String() string     { return fmt.Sprintf("%g", l.Value) }
func (l *FloatLit) Normalized() string { return "?" }

// StringLit is a string literal.
type StringLit struct{ Value string }

func (l *StringLit) String() string     { return fmt.Sprintf("%q", l.Value) }
func (l *StringLit) Normalized() string { return "?" }

// BoolLit is a boolean literal.
type BoolLit struct{ Value bool }

func (l *BoolLit) String() string     { return fmt.Sprintf("%t", l.Value) }
func (l *BoolLit) Normalized() string { return "?" }

// BinaryExpr applies an infix operator: comparison, arithmetic, AND, OR.
type BinaryExpr struct {
	Op          string // "==" "!=" "<" "<=" ">" ">=" "+" "-" "*" "/" "%" "AND" "OR"
	Left, Right Expr
}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

func (b *BinaryExpr) Normalized() string {
	return "(" + b.Left.Normalized() + " " + b.Op + " " + b.Right.Normalized() + ")"
}

// UnaryExpr applies a prefix operator: NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (u *UnaryExpr) String() string     { return u.Op + " " + u.Expr.String() }
func (u *UnaryExpr) Normalized() string { return u.Op + " " + u.Expr.Normalized() }

// FuncExpr is a function call. Aggregate functions (SUM, COUNT, AVG, MIN,
// MAX) are distinguished during semantic analysis.
type FuncExpr struct {
	Name string // canonical upper case
	Args []Expr
	Star bool // COUNT(*)
}

func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

func (f *FuncExpr) Normalized() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Normalized()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// aggregateFuncs is the set of supported aggregate function names.
var aggregateFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregateFunc reports whether name (canonical case) is an aggregate.
func IsAggregateFunc(name string) bool { return aggregateFuncs[strings.ToUpper(name)] }

// ContainsAggregate reports whether the expression tree contains an
// aggregate function call.
func ContainsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		if IsAggregateFunc(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return ContainsAggregate(x.Left) || ContainsAggregate(x.Right)
	case *UnaryExpr:
		return ContainsAggregate(x.Expr)
	}
	return false
}

// CollectColRefs appends all column references in e to out and returns it.
func CollectColRefs(e Expr, out []*ColRef) []*ColRef {
	switch x := e.(type) {
	case *ColRef:
		out = append(out, x)
	case *BinaryExpr:
		out = CollectColRefs(x.Left, out)
		out = CollectColRefs(x.Right, out)
	case *UnaryExpr:
		out = CollectColRefs(x.Expr, out)
	case *FuncExpr:
		for _, a := range x.Args {
			out = CollectColRefs(a, out)
		}
	}
	return out
}

// --- Statements ---

// Statement is a top-level script statement.
type Statement interface {
	stmtNode()
	// Pos returns the source line of the statement for diagnostics.
	Pos() int
}

// ColDef declares a column in an EXTRACT schema.
type ColDef struct {
	Name string
	Type ColType
}

// ExtractStmt reads a rowset from an input file:
//
//	name = EXTRACT a:int, b:string FROM "path";
type ExtractStmt struct {
	Name   string
	Schema []ColDef
	Path   string
	Line   int
}

func (*ExtractStmt) stmtNode()  {}
func (s *ExtractStmt) Pos() int { return s.Line }

// SelectItem is a single projection: expression plus optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string // empty means derive from expression
	Star  bool   // SELECT *
}

// TableRef names an input rowset with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// AliasOrName returns the alias if present, else the rowset name.
func (t TableRef) AliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinType enumerates the supported join flavours.
type JoinType int

const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinSemi
)

func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinFull:
		return "FULL"
	case JoinSemi:
		return "SEMI"
	default:
		return fmt.Sprintf("join(%d)", int(j))
	}
}

// JoinClause is one JOIN ... ON ... attached to the FROM clause.
type JoinClause struct {
	Type JoinType
	Ref  TableRef
	On   Expr
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Col  *ColRef
	Desc bool
}

// SelectStmt is the workhorse statement:
//
//	name = SELECT [DISTINCT] items FROM ref [JOIN ref ON cond]...
//	       [WHERE pred] [GROUP BY cols] [HAVING pred]
//	       [ORDER BY keys] [TOP n];
type SelectStmt struct {
	Name     string
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []*ColRef
	Having   Expr
	OrderBy  []SortKey
	Top      int64 // 0 = absent
	Line     int
}

func (*SelectStmt) stmtNode()  {}
func (s *SelectStmt) Pos() int { return s.Line }

// UnionStmt combines rowsets:
//
//	name = a UNION [ALL] b [UNION [ALL] c ...];
type UnionStmt struct {
	Name   string
	Inputs []string
	All    bool
	Line   int
}

func (*UnionStmt) stmtNode()  {}
func (s *UnionStmt) Pos() int { return s.Line }

// ReduceStmt applies a user-defined reducer, SCOPE's extensibility hook:
//
//	name = REDUCE input ON col1, col2 USING MyReducer PRODUCE a:int, b:string;
type ReduceStmt struct {
	Name    string
	Input   string
	On      []*ColRef
	UserOp  string
	Produce []ColDef
	Line    int
}

func (*ReduceStmt) stmtNode()  {}
func (s *ReduceStmt) Pos() int { return s.Line }

// ProcessStmt applies a user-defined row processor:
//
//	name = PROCESS input USING MyProcessor PRODUCE a:int;
type ProcessStmt struct {
	Name    string
	Input   string
	UserOp  string
	Produce []ColDef
	Line    int
}

func (*ProcessStmt) stmtNode()  {}
func (s *ProcessStmt) Pos() int { return s.Line }

// OutputStmt writes a rowset to a file, creating a DAG root:
//
//	OUTPUT name TO "path";
type OutputStmt struct {
	Input string
	Path  string
	Line  int
}

func (*OutputStmt) stmtNode()  {}
func (s *OutputStmt) Pos() int { return s.Line }

// Script is a parsed SCOPE script: an ordered list of statements.
type Script struct {
	Statements []Statement
}

// Outputs returns the script's OUTPUT statements in order.
func (s *Script) Outputs() []*OutputStmt {
	var outs []*OutputStmt
	for _, st := range s.Statements {
		if o, ok := st.(*OutputStmt); ok {
			outs = append(outs, o)
		}
	}
	return outs
}
