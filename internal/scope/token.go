// Package scope implements a SCOPE-like scripting language and its
// compiler. SCOPE scripts ("jobs") are data flows of one or more SQL-like
// statements stitched into a single DAG: statements assign rowsets to
// names, later statements consume them, and OUTPUT statements create the
// DAG's roots. The package provides the lexer, parser, semantic analysis
// and compilation to the logical operator DAG that the optimizer package
// transforms.
package scope

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenKeyword
	TokenInt
	TokenFloat
	TokenString
	TokenOperator // == != <= >= < > + - * / % && || !
	TokenPunct    // ( ) , ; = . :
)

func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "EOF"
	case TokenIdent:
		return "identifier"
	case TokenKeyword:
		return "keyword"
	case TokenInt:
		return "integer"
	case TokenFloat:
		return "float"
	case TokenString:
		return "string"
	case TokenOperator:
		return "operator"
	case TokenPunct:
		return "punctuation"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keyword text is upper-cased
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the set of reserved words. SCOPE keywords are
// case-insensitive; the lexer canonicalizes them to upper case.
var keywords = map[string]bool{
	"EXTRACT": true, "FROM": true, "SELECT": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"TOP": true, "DISTINCT": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"SEMI": true, "OUTER": true, "ON": true, "UNION": true,
	"ALL": true, "OUTPUT": true, "TO": true, "REDUCE": true,
	"PROCESS": true, "USING": true, "PRODUCE": true, "AND": true,
	"OR": true, "NOT": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "NULL": true,
}

// IsKeyword reports whether s (any case) is a reserved word.
func IsKeyword(s string) bool {
	return keywords[strings.ToUpper(s)]
}

// LexError describes a lexical error with position information.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("scope: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes a SCOPE script.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize lexes the whole script, returning all tokens (excluding the
// final EOF) or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokenEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{startLine, startCol, "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or a TokenEOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokenEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	ch := l.peek()

	switch {
	case isIdentStart(ch):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if IsKeyword(text) {
			return Token{Kind: TokenKeyword, Text: strings.ToUpper(text), Line: line, Col: col}, nil
		}
		return Token{Kind: TokenIdent, Text: text, Line: line, Col: col}, nil

	case ch >= '0' && ch <= '9':
		return l.lexNumber(line, col)

	case ch == '"':
		return l.lexString(line, col)

	default:
		return l.lexOperator(line, col)
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func isIdentPart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch)) || (ch >= '0' && ch <= '9')
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		ch := l.peek()
		if ch >= '0' && ch <= '9' {
			l.advance()
			continue
		}
		if ch == '.' && !isFloat && l.peek2() >= '0' && l.peek2() <= '9' {
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	kind := TokenInt
	if isFloat {
		kind = TokenFloat
	}
	// A number immediately followed by an identifier char is malformed
	// (e.g. "12abc").
	if l.pos < len(l.src) && isIdentStart(l.peek()) {
		return Token{}, &LexError{line, col, fmt.Sprintf("malformed number %q", text+string(l.peek()))}
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		ch := l.advance()
		switch ch {
		case '"':
			return Token{Kind: TokenString, Text: sb.String(), Line: line, Col: col}, nil
		case '\\':
			if l.pos >= len(l.src) {
				return Token{}, &LexError{line, col, "unterminated string"}
			}
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"':
				sb.WriteByte(esc)
			default:
				return Token{}, &LexError{line, col, fmt.Sprintf("bad escape \\%c", esc)}
			}
		case '\n':
			return Token{}, &LexError{line, col, "newline in string literal"}
		default:
			sb.WriteByte(ch)
		}
	}
	return Token{}, &LexError{line, col, "unterminated string"}
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

func (l *Lexer) lexOperator(line, col int) (Token, error) {
	ch := l.advance()
	if l.pos < len(l.src) {
		two := string(ch) + string(l.peek())
		if twoCharOps[two] {
			l.advance()
			return Token{Kind: TokenOperator, Text: two, Line: line, Col: col}, nil
		}
	}
	switch ch {
	case '<', '>', '+', '-', '*', '/', '%', '!':
		return Token{Kind: TokenOperator, Text: string(ch), Line: line, Col: col}, nil
	case '(', ')', ',', ';', '=', '.', ':':
		return Token{Kind: TokenPunct, Text: string(ch), Line: line, Col: col}, nil
	default:
		return Token{}, &LexError{line, col, fmt.Sprintf("unexpected character %q", ch)}
	}
}
