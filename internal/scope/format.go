package scope

import (
	"fmt"
	"strings"
)

// Format renders a parsed script back to canonical source form. Parsing
// the output yields an equivalent script (same statements, same
// expressions up to canonical spelling), which makes Format useful for
// normalizing templates and for debugging generated workloads.
func Format(s *Script) string {
	var sb strings.Builder
	for _, st := range s.Statements {
		sb.WriteString(formatStatement(st))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatStatement(st Statement) string {
	switch s := st.(type) {
	case *ExtractStmt:
		return fmt.Sprintf("%s = EXTRACT %s FROM %q;", s.Name, formatColDefs(s.Schema), s.Path)
	case *SelectStmt:
		return formatSelect(s)
	case *UnionStmt:
		op := " UNION "
		if s.All {
			op = " UNION ALL "
		}
		return fmt.Sprintf("%s = %s;", s.Name, strings.Join(s.Inputs, op))
	case *ReduceStmt:
		keys := make([]string, len(s.On))
		for i, k := range s.On {
			keys[i] = k.String()
		}
		return fmt.Sprintf("%s = REDUCE %s ON %s USING %s PRODUCE %s;",
			s.Name, s.Input, strings.Join(keys, ", "), s.UserOp, formatColDefs(s.Produce))
	case *ProcessStmt:
		return fmt.Sprintf("%s = PROCESS %s USING %s PRODUCE %s;",
			s.Name, s.Input, s.UserOp, formatColDefs(s.Produce))
	case *OutputStmt:
		return fmt.Sprintf("OUTPUT %s TO %q;", s.Input, s.Path)
	default:
		return fmt.Sprintf("// unsupported statement %T", st)
	}
}

func formatColDefs(defs []ColDef) string {
	parts := make([]string, len(defs))
	for i, d := range defs {
		parts[i] = fmt.Sprintf("%s:%s", d.Name, d.Type)
	}
	return strings.Join(parts, ", ")
}

func formatSelect(s *SelectStmt) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s = SELECT ", s.Name)
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		switch {
		case it.Star:
			items[i] = "*"
		case it.Alias != "":
			items[i] = fmt.Sprintf("%s AS %s", formatExpr(it.Expr), it.Alias)
		default:
			items[i] = formatExpr(it.Expr)
		}
	}
	sb.WriteString(strings.Join(items, ", "))
	fmt.Fprintf(&sb, " FROM %s", formatTableRef(s.From))
	for _, j := range s.Joins {
		fmt.Fprintf(&sb, " %s %s ON %s", joinKeyword(j.Type), formatTableRef(j.Ref), formatExpr(j.On))
	}
	if s.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", formatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, k := range s.GroupBy {
			keys[i] = k.String()
		}
		fmt.Fprintf(&sb, " GROUP BY %s", strings.Join(keys, ", "))
	}
	if s.Having != nil {
		fmt.Fprintf(&sb, " HAVING %s", formatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			dir := " ASC"
			if k.Desc {
				dir = " DESC"
			}
			keys[i] = k.Col.String() + dir
		}
		fmt.Fprintf(&sb, " ORDER BY %s", strings.Join(keys, ", "))
	}
	if s.Top > 0 {
		fmt.Fprintf(&sb, " TOP %d", s.Top)
	}
	sb.WriteString(";")
	return sb.String()
}

func joinKeyword(t JoinType) string {
	switch t {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinSemi:
		return "SEMI JOIN"
	default:
		return "JOIN"
	}
}

func formatTableRef(r TableRef) string {
	if r.Alias != "" {
		return r.Name + " AS " + r.Alias
	}
	return r.Name
}

// formatExpr renders an expression without the outermost parentheses that
// Expr.String adds around binary operations.
func formatExpr(e Expr) string {
	s := e.String()
	if be, ok := e.(*BinaryExpr); ok && len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		_ = be
		return s[1 : len(s)-1]
	}
	return s
}
