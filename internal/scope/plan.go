package scope

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// OpKind enumerates logical operator kinds in the plan DAG.
type OpKind int

const (
	OpScan OpKind = iota // EXTRACT from an input file
	OpFilter
	OpProject
	OpJoin
	OpAgg // group-by aggregation; Partial marks optimizer-introduced local aggs
	OpDistinct
	OpUnion
	OpSort
	OpTop
	OpReduce  // user-defined reducer (partitioned by On columns)
	OpProcess // user-defined row processor
	OpOutput  // DAG root: write to a file
)

var opKindNames = [...]string{
	"Scan", "Filter", "Project", "Join", "Agg", "Distinct", "Union",
	"Sort", "Top", "Reduce", "Process", "Output",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Column describes one output column of a plan node.
type Column struct {
	Name string
	Type ColType
	// Source identifies the base-table column this column carries, as
	// "path:column", or "" for computed columns. The cost model uses it
	// to look up distinct-value counts.
	Source string
}

// NamedExpr is a projection item: a computed expression with its output name.
type NamedExpr struct {
	Name string
	E    Expr
}

// AggSpec is one aggregate computation in an Agg node.
type AggSpec struct {
	Func string // SUM, COUNT, AVG, MIN, MAX
	Arg  Expr   // nil when Star
	Star bool
	Name string // output column name
}

// String renders the aggregate in canonical form.
func (a AggSpec) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Arg.String() + ")"
}

// Node is a logical plan operator. Nodes form a DAG: a node may be an
// input to multiple consumers (SCOPE scripts reuse rowsets), and the
// graph has one root per OUTPUT statement.
type Node struct {
	ID     int
	Kind   OpKind
	Inputs []*Node
	Cols   []Column

	// Operator payloads; which fields are meaningful depends on Kind.
	TablePath string   // Scan
	BaseWidth int64    // Scan: full row width before column pruning
	Pred      Expr     // Filter
	JoinType  JoinType // Join
	JoinCond  Expr     // Join
	Projs     []NamedExpr
	GroupBy   []Column  // Agg, Reduce partition columns
	Aggs      []AggSpec // Agg
	Partial   bool      // Agg: optimizer-introduced local (partial) aggregation
	SortKeys  []SortKey // Sort, Top
	TopN      int64     // Top
	OutPath   string    // Output
	UserOp    string    // Reduce, Process

	// BroadcastRight is a logical annotation set by the broadcast
	// annotation rule: broadcast the join's build side instead of
	// repartitioning both inputs. Implementation rules honour it when
	// choosing the physical join.
	BroadcastRight bool

	// BuildLeft marks a join whose build side is the left input (set by
	// the join-commute rule when the left side is estimated smaller).
	// By default joins build on the right input.
	BuildLeft bool

	// RightRenames maps merged output column names back to the right
	// input's original column names for Join nodes whose right side was
	// renamed to avoid collisions (merged name -> original name).
	RightRenames map[string]string
}

// ColNames returns the node's output column names in order.
func (n *Node) ColNames() []string {
	names := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		names[i] = c.Name
	}
	return names
}

// FindCol returns the column with the given name and whether it exists.
func (n *Node) FindCol(name string) (Column, bool) {
	for _, c := range n.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// Label renders a one-line description of the operator for plan dumps.
func (n *Node) Label() string {
	switch n.Kind {
	case OpScan:
		return fmt.Sprintf("Scan(%s)", n.TablePath)
	case OpFilter:
		return fmt.Sprintf("Filter(%s)", n.Pred)
	case OpProject:
		parts := make([]string, len(n.Projs))
		for i, p := range n.Projs {
			parts[i] = p.Name
		}
		return fmt.Sprintf("Project(%s)", strings.Join(parts, ","))
	case OpJoin:
		return fmt.Sprintf("%sJoin(%s)", n.JoinType, n.JoinCond)
	case OpAgg:
		kind := "Agg"
		if n.Partial {
			kind = "PartialAgg"
		}
		keys := make([]string, len(n.GroupBy))
		for i, c := range n.GroupBy {
			keys[i] = c.Name
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("%s(by=%s aggs=%s)", kind, strings.Join(keys, ","), strings.Join(aggs, ","))
	case OpDistinct:
		return "Distinct"
	case OpUnion:
		return fmt.Sprintf("Union(%d-way)", len(n.Inputs))
	case OpSort:
		return fmt.Sprintf("Sort(%s)", sortKeysString(n.SortKeys))
	case OpTop:
		return fmt.Sprintf("Top(%d, %s)", n.TopN, sortKeysString(n.SortKeys))
	case OpReduce:
		return fmt.Sprintf("Reduce(%s)", n.UserOp)
	case OpProcess:
		return fmt.Sprintf("Process(%s)", n.UserOp)
	case OpOutput:
		return fmt.Sprintf("Output(%s)", n.OutPath)
	default:
		return n.Kind.String()
	}
}

func sortKeysString(keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = k.Col.String() + " " + dir
	}
	return strings.Join(parts, ",")
}

// Graph is a logical plan DAG with one root per OUTPUT statement.
//
// Once a Graph has been handed to the optimizer or published through a
// CompileCache it must be treated as immutable: compiled graphs are
// shared across job instances and across goroutines, and the optimizer
// always rewrites a Clone, never the input.
type Graph struct {
	Roots  []*Node
	nextID int

	// tmplOnce/tmplHash memoize TemplateHash: the hash walks the whole
	// DAG through fmt, which is far too expensive to redo on every
	// compilation of a shared graph. Callers must not invoke TemplateHash
	// until the graph has reached its final shape (the optimizer only
	// hashes input graphs and fully rewritten clones).
	tmplOnce sync.Once
	tmplHash uint64
}

// NewNode allocates a node with a fresh ID attached to this graph.
func (g *Graph) NewNode(kind OpKind, inputs ...*Node) *Node {
	n := &Node{ID: g.nextID, Kind: kind, Inputs: inputs}
	g.nextID++
	return n
}

// Nodes returns all nodes reachable from the roots in a deterministic
// topological order (inputs before consumers).
func (g *Graph) Nodes() []*Node {
	var order []*Node
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	for _, r := range g.Roots {
		visit(r)
	}
	return order
}

// NodeCount returns the number of reachable nodes.
func (g *Graph) NodeCount() int { return len(g.Nodes()) }

// Clone deep-copies the DAG, preserving node sharing. The clone's node IDs
// match the originals so that site keys remain comparable.
func (g *Graph) Clone() *Graph {
	clone := &Graph{nextID: g.nextID}
	mapping := make(map[*Node]*Node)
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		if c, ok := mapping[n]; ok {
			return c
		}
		c := &Node{}
		*c = *n // shallow copy of scalar fields and expression pointers
		c.Inputs = make([]*Node, len(n.Inputs))
		c.Cols = append([]Column(nil), n.Cols...)
		c.Projs = append([]NamedExpr(nil), n.Projs...)
		c.GroupBy = append([]Column(nil), n.GroupBy...)
		c.Aggs = append([]AggSpec(nil), n.Aggs...)
		c.SortKeys = append([]SortKey(nil), n.SortKeys...)
		if n.RightRenames != nil {
			c.RightRenames = make(map[string]string, len(n.RightRenames))
			for k, v := range n.RightRenames {
				c.RightRenames[k] = v
			}
		}
		mapping[n] = c
		for i, in := range n.Inputs {
			c.Inputs[i] = cp(in)
		}
		return c
	}
	clone.Roots = make([]*Node, len(g.Roots))
	for i, r := range g.Roots {
		clone.Roots[i] = cp(r)
	}
	return clone
}

// String renders the DAG as an indented tree per root, with shared nodes
// marked by reference after their first occurrence.
func (g *Graph) String() string {
	var sb strings.Builder
	printed := make(map[*Node]bool)
	var dump func(n *Node, depth int)
	dump = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if printed[n] {
			fmt.Fprintf(&sb, "#%d (shared %s)\n", n.ID, n.Kind)
			return
		}
		printed[n] = true
		fmt.Fprintf(&sb, "#%d %s\n", n.ID, n.Label())
		for _, in := range n.Inputs {
			dump(in, depth+1)
		}
	}
	for i, r := range g.Roots {
		fmt.Fprintf(&sb, "root %d:\n", i)
		dump(r, 1)
	}
	return sb.String()
}

// Fingerprint returns a stable hash of the node's operator identity
// (kind, payload, input fingerprints). Tuning rules use fingerprints to
// decide which plan fragments they apply to.
func (n *Node) Fingerprint() uint64 {
	h := fnv.New64a()
	var write func(x *Node)
	seen := make(map[*Node]bool)
	write = func(x *Node) {
		if seen[x] {
			fmt.Fprintf(h, "^")
			return
		}
		seen[x] = true
		fmt.Fprintf(h, "%s|", x.Kind)
		switch x.Kind {
		case OpScan:
			fmt.Fprintf(h, "%s", x.TablePath)
		case OpFilter:
			fmt.Fprintf(h, "%s", x.Pred.Normalized())
		case OpJoin:
			fmt.Fprintf(h, "%s:%s", x.JoinType, x.JoinCond.Normalized())
		case OpAgg:
			for _, c := range x.GroupBy {
				fmt.Fprintf(h, "%s,", c.Name)
			}
			for _, a := range x.Aggs {
				fmt.Fprintf(h, "%s,", a.String())
			}
		case OpProject:
			for _, p := range x.Projs {
				fmt.Fprintf(h, "%s,", p.Name)
			}
		case OpSort, OpTop:
			fmt.Fprintf(h, "%s:%d", sortKeysString(x.SortKeys), x.TopN)
		case OpOutput:
			fmt.Fprintf(h, "%s", x.OutPath)
		case OpReduce, OpProcess:
			fmt.Fprintf(h, "%s", x.UserOp)
		}
		fmt.Fprintf(h, "(")
		for _, in := range x.Inputs {
			write(in)
		}
		fmt.Fprintf(h, ")")
	}
	write(n)
	return h.Sum64()
}

// RowWidth returns the synthetic row width in bytes of the node's schema.
func (n *Node) RowWidth() int64 {
	var w int64
	for _, c := range n.Cols {
		w += c.Type.Width()
	}
	if w == 0 {
		w = 8
	}
	return w
}

// TemplateHash returns a stable hash of the graph's normalized structure:
// operators and normalized expressions, with literals wildcarded. Two
// instances of the same recurring job template share a TemplateHash even
// when their filter constants and input paths' date components differ.
// The hash is computed once and memoized (safe for concurrent callers);
// it must not be called before the graph has reached its final shape.
func (g *Graph) TemplateHash() uint64 {
	g.tmplOnce.Do(func() { g.tmplHash = g.computeTemplateHash() })
	return g.tmplHash
}

func (g *Graph) computeTemplateHash() uint64 {
	h := fnv.New64a()
	for _, n := range g.Nodes() {
		fmt.Fprintf(h, "%s|", n.Kind)
		switch n.Kind {
		case OpScan:
			fmt.Fprintf(h, "%s", normalizePath(n.TablePath))
		case OpFilter:
			fmt.Fprintf(h, "%s", n.Pred.Normalized())
		case OpJoin:
			fmt.Fprintf(h, "%s:%s", n.JoinType, n.JoinCond.Normalized())
		case OpAgg:
			for _, c := range n.GroupBy {
				fmt.Fprintf(h, "%s,", c.Name)
			}
		case OpOutput:
			fmt.Fprintf(h, "%s", normalizePath(n.OutPath))
		case OpReduce, OpProcess:
			fmt.Fprintf(h, "%s", n.UserOp)
		}
		fmt.Fprintf(h, ";")
	}
	return h.Sum64()
}

// normalizePath strips digit runs from a path so that date-partitioned
// inputs ("clicks/2021/11/03.tsv") normalize to the same template.
func normalizePath(p string) string {
	var sb strings.Builder
	inDigits := false
	for i := 0; i < len(p); i++ {
		if p[i] >= '0' && p[i] <= '9' {
			if !inDigits {
				sb.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		sb.WriteByte(p[i])
	}
	return sb.String()
}

// SiteKey returns the stable identity of an operator "site" used to carry
// true selectivities from the workload generator to the execution
// simulator. Sites are keyed by the operator's semantic payload, which
// survives plan rewrites (a pushed-down filter keeps its predicate).
func (n *Node) SiteKey() string {
	switch n.Kind {
	case OpFilter:
		return "filter:" + n.Pred.String()
	case OpJoin:
		return "join:" + n.JoinCond.String()
	case OpAgg:
		keys := make([]string, len(n.GroupBy))
		for i, c := range n.GroupBy {
			keys[i] = c.Name
		}
		sort.Strings(keys)
		return "agg:" + strings.Join(keys, ",")
	case OpDistinct:
		return "distinct:" + strings.Join(n.ColNames(), ",")
	case OpReduce:
		return "reduce:" + n.UserOp
	case OpProcess:
		return "process:" + n.UserOp
	case OpScan:
		return "scan:" + n.TablePath
	default:
		return ""
	}
}
