package scope

import (
	"fmt"
	"strconv"
)

// ParseError describes a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scope: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser is a recursive-descent parser for SCOPE scripts.
type Parser struct {
	toks []Token
	pos  int
}

// Parse tokenizes and parses src into a Script.
func Parse(src string) (*Script, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	script := &Script{}
	for !p.atEOF() {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		script.Statements = append(script.Statements, st)
	}
	if len(script.Statements) == 0 {
		return nil, &ParseError{1, 1, "empty script"}
	}
	return script, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Token{Kind: TokenEOF}
		if len(p.toks) > 0 {
			prev := p.toks[len(p.toks)-1]
			last.Line, last.Col = prev.Line, prev.Col+len(prev.Text)
		}
		return last
	}
	return p.toks[p.pos]
}

func (p *Parser) advance() Token {
	t := p.cur()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	t := p.cur()
	return &ParseError{t.Line, t.Col, fmt.Sprintf(format, args...)}
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokenKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.cur().Text)
	}
	return nil
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokenPunct && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, found %q", s, p.cur().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokenIdent {
		return Token{}, p.errorf("expected identifier, found %q", t.Text)
	}
	p.advance()
	return t, nil
}

func (p *Parser) expectString() (Token, error) {
	t := p.cur()
	if t.Kind != TokenString {
		return Token{}, p.errorf("expected string literal, found %q", t.Text)
	}
	p.advance()
	return t, nil
}

// parseStatement dispatches on the statement head. Statements are either
// "OUTPUT ..." or "name = <rowset expression>".
func (p *Parser) parseStatement() (Statement, error) {
	if p.isKeyword("OUTPUT") {
		return p.parseOutput()
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.Kind == TokenKeyword && t.Text == "EXTRACT":
		return p.parseExtract(name)
	case t.Kind == TokenKeyword && t.Text == "SELECT":
		return p.parseSelect(name)
	case t.Kind == TokenKeyword && t.Text == "REDUCE":
		return p.parseReduce(name)
	case t.Kind == TokenKeyword && t.Text == "PROCESS":
		return p.parseProcess(name)
	case t.Kind == TokenIdent:
		// Could be a UNION statement: name = a UNION b;
		return p.parseUnion(name)
	default:
		return nil, p.errorf("expected EXTRACT, SELECT, REDUCE, PROCESS or rowset name after '=', found %q", t.Text)
	}
}

func (p *Parser) parseColDefs() ([]ColDef, error) {
	var defs []ColDef
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		tt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ct, err := ParseColType(tt.Text)
		if err != nil {
			return nil, &ParseError{tt.Line, tt.Col, err.Error()}
		}
		defs = append(defs, ColDef{Name: name.Text, Type: ct})
		if !p.acceptPunct(",") {
			return defs, nil
		}
	}
}

func (p *Parser) parseExtract(name Token) (Statement, error) {
	if err := p.expectKeyword("EXTRACT"); err != nil {
		return nil, err
	}
	schema, err := p.parseColDefs()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	path, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ExtractStmt{Name: name.Text, Schema: schema, Path: path.Text, Line: name.Line}, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name.Text}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.Text
	}
	return ref, nil
}

func (p *Parser) parseSelect(name Token) (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Name: name.Text, Line: name.Line}
	st.Distinct = p.acceptKeyword("DISTINCT")

	// Projection list.
	for {
		if p.cur().Kind == TokenOperator && p.cur().Text == "*" {
			p.advance()
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias.Text
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptPunct(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.From = from

	// JOIN clauses.
	for {
		jt, isJoin, err := p.parseJoinType()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Type: jt, Ref: ref, On: cond})
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, cr)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			key := SortKey{Col: cr}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("TOP") {
		t := p.cur()
		if t.Kind != TokenInt {
			return nil, p.errorf("expected integer after TOP, found %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errorf("bad TOP count %q", t.Text)
		}
		p.advance()
		st.Top = n
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseJoinType consumes an optional join head ([INNER|LEFT|RIGHT|FULL|SEMI]
// [OUTER] JOIN) and reports whether one was present.
func (p *Parser) parseJoinType() (JoinType, bool, error) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true, nil
	case p.acceptKeyword("INNER"):
		return JoinInner, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		return JoinLeft, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		return JoinRight, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		return JoinFull, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("SEMI"):
		return JoinSemi, true, p.expectKeyword("JOIN")
	default:
		return JoinInner, false, nil
	}
}

func (p *Parser) parseUnion(name Token) (Statement, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UnionStmt{Name: name.Text, Inputs: []string{first.Text}, Line: name.Line}
	if !p.isKeyword("UNION") {
		return nil, p.errorf("expected UNION after rowset name, found %q", p.cur().Text)
	}
	sawAll, sawDistinct := false, false
	for p.acceptKeyword("UNION") {
		if p.acceptKeyword("ALL") {
			sawAll = true
		} else {
			sawDistinct = true
		}
		in, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Inputs = append(st.Inputs, in.Text)
	}
	if sawAll && sawDistinct {
		return nil, p.errorf("mixing UNION and UNION ALL in one statement is not supported")
	}
	st.All = sawAll
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseReduce(name Token) (Statement, error) {
	if err := p.expectKeyword("REDUCE"); err != nil {
		return nil, err
	}
	in, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ReduceStmt{Name: name.Text, Input: in.Text, Line: name.Line}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	for {
		cr, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		st.On = append(st.On, cr)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	op, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.UserOp = op.Text
	if err := p.expectKeyword("PRODUCE"); err != nil {
		return nil, err
	}
	produce, err := p.parseColDefs()
	if err != nil {
		return nil, err
	}
	st.Produce = produce
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseProcess(name Token) (Statement, error) {
	if err := p.expectKeyword("PROCESS"); err != nil {
		return nil, err
	}
	in, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ProcessStmt{Name: name.Text, Input: in.Text, Line: name.Line}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	op, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.UserOp = op.Text
	if err := p.expectKeyword("PRODUCE"); err != nil {
		return nil, err
	}
	produce, err := p.parseColDefs()
	if err != nil {
		return nil, err
	}
	st.Produce = produce
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseOutput() (Statement, error) {
	line := p.cur().Line
	if err := p.expectKeyword("OUTPUT"); err != nil {
		return nil, err
	}
	in, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	path, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &OutputStmt{Input: in.Text, Path: path.Text, Line: line}, nil
}

// --- Expression parsing (precedence climbing) ---

// parseExpr parses an expression with OR as the lowest-precedence operator.
func (p *Parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") || (p.cur().Kind == TokenOperator && p.cur().Text == "||") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") || (p.cur().Kind == TokenOperator && p.cur().Text == "&&") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") || (p.cur().Kind == TokenOperator && p.cur().Text == "!") {
		p.advance()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokenOperator && comparisonOps[t.Text] {
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: t.Text, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokenOperator && (t.Text == "+" || t.Text == "-") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokenOperator && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokenOperator && t.Text == "-" {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokenInt:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Text)
		}
		return &IntLit{Value: v}, nil
	case TokenFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.Text)
		}
		return &FloatLit{Value: v}, nil
	case TokenString:
		p.advance()
		return &StringLit{Value: t.Text}, nil
	case TokenKeyword:
		switch t.Text {
		case "TRUE":
			p.advance()
			return &BoolLit{Value: true}, nil
		case "FALSE":
			p.advance()
			return &BoolLit{Value: false}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokenIdent:
		// Function call or column reference.
		next := p.pos + 1
		if next < len(p.toks) && p.toks[next].Kind == TokenPunct && p.toks[next].Text == "(" {
			return p.parseFuncCall()
		}
		return p.parseColRef()
	case TokenPunct:
		if t.Text == "(" {
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *Parser) parseFuncCall() (Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: canonicalFuncName(name.Text)}
	if p.cur().Kind == TokenOperator && p.cur().Text == "*" {
		p.advance()
		fe.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	if !p.isPunct(")") {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, arg)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return fe, nil
}

// canonicalFuncName upper-cases aggregate names so COUNT/count/Count all
// compare equal; scalar function names keep their case.
func canonicalFuncName(name string) string {
	if IsAggregateFunc(name) {
		return upper(name)
	}
	return name
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// parseColRef parses "name" or "qualifier.name".
func (p *Parser) parseColRef() (*ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct(".") {
		second, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColRef{Qualifier: first.Text, Name: second.Text}, nil
	}
	return &ColRef{Name: first.Text}, nil
}
