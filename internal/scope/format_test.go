package scope

import (
	"strings"
	"testing"
)

func TestFormatRoundTripSample(t *testing.T) {
	s := mustParse(t, sampleScript)
	formatted := Format(s)
	s2, err := Parse(formatted)
	if err != nil {
		t.Fatalf("formatted script does not parse: %v\n%s", err, formatted)
	}
	if len(s2.Statements) != len(s.Statements) {
		t.Fatalf("statement count changed: %d vs %d", len(s2.Statements), len(s.Statements))
	}
	// Idempotence: formatting the reparse gives the same text.
	if Format(s2) != formatted {
		t.Error("Format is not idempotent")
	}
}

func TestFormatRoundTripPreservesSemantics(t *testing.T) {
	// Compile both the original and the formatted script: same template
	// hash means same normalized plan structure.
	g1, err := CompileScript(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	s := mustParse(t, sampleScript)
	g2, err := CompileScript(Format(s))
	if err != nil {
		t.Fatal(err)
	}
	if g1.TemplateHash() != g2.TemplateHash() {
		t.Error("formatting changed the compiled template")
	}
}

func TestFormatStatements(t *testing.T) {
	cases := []string{
		`x = EXTRACT a:int, b:string FROM "f.tsv";`,
		`u = a UNION ALL b;`,
		`u = a UNION b;`,
		`r = REDUCE t ON k1, k2 USING MyReducer PRODUCE a:int, b:string;`,
		`p = PROCESS t USING Cleaner PRODUCE a:long;`,
		`OUTPUT x TO "o.tsv";`,
		`x = SELECT DISTINCT a, b AS bb FROM t AS q LEFT JOIN u AS w ON a == c WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC TOP 7;`,
	}
	for _, src := range cases {
		// Self-contained script for the parser.
		full := src
		if !strings.HasPrefix(src, "OUTPUT") {
			full = src + "\nOUTPUT " + strings.SplitN(src, " ", 2)[0] + ` TO "o";`
		} else {
			full = `x = EXTRACT a:int FROM "f";` + "\n" + src
		}
		s, err := Parse(full)
		if err != nil {
			t.Fatalf("parse %q: %v", full, err)
		}
		formatted := Format(s)
		if _, err := Parse(formatted); err != nil {
			t.Errorf("formatted output unparseable for %q:\n%s\n%v", src, formatted, err)
		}
	}
}

func TestFormatExprDropsOuterParens(t *testing.T) {
	s := mustParse(t, `x = SELECT a FROM t WHERE a > 1 AND b < 2; OUTPUT x TO "o";`)
	out := Format(s)
	// The top-level AND is unwrapped; only operand-level parens remain.
	if strings.Contains(out, "WHERE ((") {
		t.Errorf("outermost parens should be dropped: %s", out)
	}
	if !strings.Contains(out, "WHERE (a > 1) AND (b < 2)") {
		t.Errorf("unexpected predicate rendering: %s", out)
	}
}

func TestFormatWorkloadScripts(t *testing.T) {
	// All generated workload scripts must survive a format round trip.
	// (Uses the raw sample script family here; the workload package has
	// its own generator tests.)
	srcs := []string{
		sampleScript,
		`a = EXTRACT x:int FROM "a.tsv";
b = EXTRACT x:int FROM "b.tsv";
u = a UNION ALL b;
t10 = SELECT * FROM u ORDER BY x DESC TOP 10;
OUTPUT t10 TO "o";`,
	}
	for _, src := range srcs {
		s, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(Format(s)); err != nil {
			t.Errorf("round trip failed: %v", err)
		}
	}
}
