package scope

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`rs = SELECT a, b FROM input;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokenIdent, TokenPunct, TokenKeyword, TokenIdent, TokenPunct,
		TokenIdent, TokenKeyword, TokenIdent, TokenPunct,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %v", i, toks[i], k)
		}
	}
}

func TestTokenizeKeywordCaseInsensitive(t *testing.T) {
	toks, err := Tokenize(`select Select SELECT`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != TokenKeyword || tok.Text != "SELECT" {
			t.Errorf("token %v should canonicalize to keyword SELECT", tok)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, err := Tokenize(`1 23 4.5 0.001`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokenKind{TokenInt, TokenInt, TokenFloat, TokenFloat}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestTokenizeMalformedNumber(t *testing.T) {
	if _, err := Tokenize(`12abc`); err == nil {
		t.Error("expected error for malformed number")
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize(`"hello" "a\"b" "tab\there"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", `a"b`, "tab\there"}
	for i, w := range want {
		if toks[i].Kind != TokenString || toks[i].Text != w {
			t.Errorf("token %d = %v, want string %q", i, toks[i], w)
		}
	}
}

func TestTokenizeStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"line\nbreak\"", `"bad\escape"`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(`== != <= >= < > + - * / % && ||`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"==", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%", "&&", "||"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != TokenOperator || toks[i].Text != w {
			t.Errorf("token %d = %v, want operator %q", i, toks[i], w)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `a // line comment
	/* block
	comment */ b`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestTokenizeUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize(`a /* never closed`); err == nil {
		t.Error("expected error for unterminated block comment")
	}
}

func TestTokenizeLineNumbers(t *testing.T) {
	toks, err := Tokenize("a\nb\n  c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("line numbers wrong: %v", toks)
	}
	if toks[2].Col != 3 {
		t.Errorf("column of c = %d, want 3", toks[2].Col)
	}
}

func TestTokenizeUnexpectedChar(t *testing.T) {
	_, err := Tokenize("a @ b")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("error = %v", err)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("SELECT") || !IsKeyword("Output") {
		t.Error("keywords should be case-insensitive")
	}
	if IsKeyword("myident") {
		t.Error("myident is not a keyword")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: TokenIdent, Text: "x", Line: 3, Col: 7}
	if got := tok.String(); !strings.Contains(got, "x") || !strings.Contains(got, "3:7") {
		t.Errorf("Token.String = %q", got)
	}
}
