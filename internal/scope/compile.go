package scope

import (
	"fmt"
)

// CompileError describes a semantic error found while lowering a script.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("scope: compile error at line %d: %s", e.Line, e.Msg)
}

// CompileScript parses and compiles a script source into a logical DAG.
func CompileScript(src string) (*Graph, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(script)
}

// Compile lowers a parsed script into a logical operator DAG. Rowsets
// consumed by multiple statements become shared nodes, so the result is a
// true DAG with one root per OUTPUT statement.
func Compile(script *Script) (*Graph, error) {
	c := &compiler{
		graph: &Graph{},
		env:   make(map[string]*Node),
	}
	for _, st := range script.Statements {
		if err := c.compileStatement(st); err != nil {
			return nil, err
		}
	}
	if len(c.graph.Roots) == 0 {
		return nil, &CompileError{0, "script has no OUTPUT statement"}
	}
	return c.graph, nil
}

type compiler struct {
	graph   *Graph
	env     map[string]*Node
	anonSeq int
}

func (c *compiler) define(name string, line int, n *Node) error {
	if _, exists := c.env[name]; exists {
		return &CompileError{line, fmt.Sprintf("rowset %q redefined", name)}
	}
	c.env[name] = n
	return nil
}

func (c *compiler) lookup(name string, line int) (*Node, error) {
	n, ok := c.env[name]
	if !ok {
		return nil, &CompileError{line, fmt.Sprintf("unknown rowset %q", name)}
	}
	return n, nil
}

func (c *compiler) compileStatement(st Statement) error {
	switch s := st.(type) {
	case *ExtractStmt:
		return c.compileExtract(s)
	case *SelectStmt:
		return c.compileSelect(s)
	case *UnionStmt:
		return c.compileUnion(s)
	case *ReduceStmt:
		return c.compileReduce(s)
	case *ProcessStmt:
		return c.compileProcess(s)
	case *OutputStmt:
		return c.compileOutput(s)
	default:
		return &CompileError{st.Pos(), fmt.Sprintf("unsupported statement %T", st)}
	}
}

func (c *compiler) compileExtract(s *ExtractStmt) error {
	if len(s.Schema) == 0 {
		return &CompileError{s.Line, "EXTRACT needs at least one column"}
	}
	n := c.graph.NewNode(OpScan)
	n.TablePath = s.Path
	seen := make(map[string]bool)
	for _, cd := range s.Schema {
		if seen[cd.Name] {
			return &CompileError{s.Line, fmt.Sprintf("duplicate column %q in EXTRACT", cd.Name)}
		}
		seen[cd.Name] = true
		n.Cols = append(n.Cols, Column{
			Name:   cd.Name,
			Type:   cd.Type,
			Source: s.Path + ":" + cd.Name,
		})
	}
	n.BaseWidth = n.RowWidth()
	return c.define(s.Name, s.Line, n)
}

// scopeEntry maps a (qualifier, original name) pair to the merged output
// column of the current FROM/JOIN scope.
type scopeEntry struct {
	alias    string
	origName string
	col      Column // merged name
}

type selScope struct {
	entries []scopeEntry
	line    int
}

func (sc *selScope) addInput(alias string, cols []Column, mergedNames []string) {
	for i, col := range cols {
		merged := col
		merged.Name = mergedNames[i]
		sc.entries = append(sc.entries, scopeEntry{alias: alias, origName: col.Name, col: merged})
	}
}

// resolve maps a column reference to its merged column.
func (sc *selScope) resolve(ref *ColRef) (Column, error) {
	var found []scopeEntry
	for _, e := range sc.entries {
		if ref.Qualifier != "" {
			if e.alias == ref.Qualifier && e.origName == ref.Name {
				found = append(found, e)
			}
		} else if e.origName == ref.Name {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return Column{}, &CompileError{sc.line, fmt.Sprintf("unknown column %q", ref)}
	case 1:
		return found[0].col, nil
	default:
		return Column{}, &CompileError{sc.line, fmt.Sprintf("ambiguous column %q", ref)}
	}
}

// resolveExpr rewrites every column reference in e to its merged name.
// The rewrite allocates new ColRef nodes so AST expressions are never
// mutated in place.
func (sc *selScope) resolveExpr(e Expr) (Expr, error) {
	switch x := e.(type) {
	case *ColRef:
		col, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return &ColRef{Name: col.Name}, nil
	case *BinaryExpr:
		l, err := sc.resolveExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := sc.resolveExpr(x.Right)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case *UnaryExpr:
		inner, err := sc.resolveExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: x.Op, Expr: inner}, nil
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			ra, err := sc.resolveExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	default:
		return e, nil
	}
}

// typeOf infers the result type of a resolved expression against cols.
func typeOf(e Expr, cols []Column) ColType {
	switch x := e.(type) {
	case *ColRef:
		for _, c := range cols {
			if c.Name == x.Name {
				return c.Type
			}
		}
		return TypeDouble
	case *IntLit:
		return TypeLong
	case *FloatLit:
		return TypeDouble
	case *StringLit:
		return TypeString
	case *BoolLit:
		return TypeBool
	case *UnaryExpr:
		if x.Op == "NOT" {
			return TypeBool
		}
		return typeOf(x.Expr, cols)
	case *BinaryExpr:
		switch x.Op {
		case "AND", "OR", "==", "!=", "<", "<=", ">", ">=":
			return TypeBool
		default:
			lt, rt := typeOf(x.Left, cols), typeOf(x.Right, cols)
			if lt == TypeDouble || rt == TypeDouble || lt == TypeFloat || rt == TypeFloat {
				return TypeDouble
			}
			return TypeLong
		}
	case *FuncExpr:
		switch x.Name {
		case "COUNT":
			return TypeLong
		case "AVG":
			return TypeDouble
		case "SUM":
			if len(x.Args) == 1 {
				at := typeOf(x.Args[0], cols)
				if at == TypeFloat || at == TypeDouble {
					return TypeDouble
				}
				return TypeLong
			}
			return TypeLong
		case "MIN", "MAX":
			if len(x.Args) == 1 {
				return typeOf(x.Args[0], cols)
			}
			return TypeDouble
		default:
			return TypeDouble
		}
	default:
		return TypeDouble
	}
}

// sourceOf returns the base-table source identity an expression carries:
// bare column references keep their source, computed expressions lose it.
func sourceOf(e Expr, cols []Column) string {
	if cr, ok := e.(*ColRef); ok {
		for _, c := range cols {
			if c.Name == cr.Name {
				return c.Source
			}
		}
	}
	return ""
}

func (c *compiler) compileSelect(s *SelectStmt) error {
	// 1. Assemble the FROM/JOIN scope, building the join tree left-deep.
	from, err := c.lookup(s.From.Name, s.Line)
	if err != nil {
		return err
	}
	sc := &selScope{line: s.Line}
	cur := from
	curCols := append([]Column(nil), from.Cols...)
	usedNames := make(map[string]bool)
	mergedNames := make([]string, len(from.Cols))
	for i, col := range from.Cols {
		mergedNames[i] = col.Name
		usedNames[col.Name] = true
	}
	sc.addInput(s.From.AliasOrName(), from.Cols, mergedNames)
	// curCols uses merged names.
	for i := range curCols {
		curCols[i].Name = mergedNames[i]
	}

	aliasSeen := map[string]bool{s.From.AliasOrName(): true}
	for _, jc := range s.Joins {
		right, err := c.lookup(jc.Ref.Name, s.Line)
		if err != nil {
			return err
		}
		alias := jc.Ref.AliasOrName()
		if aliasSeen[alias] {
			return &CompileError{s.Line, fmt.Sprintf("duplicate rowset alias %q", alias)}
		}
		aliasSeen[alias] = true

		// Merge the right side's columns, renaming on collision.
		rightMerged := make([]string, len(right.Cols))
		renames := make(map[string]string)
		for i, col := range right.Cols {
			name := col.Name
			if usedNames[name] {
				name = alias + "_" + col.Name
				if usedNames[name] {
					return &CompileError{s.Line, fmt.Sprintf("column name collision on %q", name)}
				}
			}
			usedNames[name] = true
			rightMerged[i] = name
			renames[name] = col.Name
		}
		sc.addInput(alias, right.Cols, rightMerged)

		cond, err := sc.resolveExpr(jc.On)
		if err != nil {
			return err
		}
		join := c.graph.NewNode(OpJoin, cur, right)
		join.JoinType = jc.Type
		join.JoinCond = cond
		join.RightRenames = renames
		// Semi joins only produce the left side's columns.
		if jc.Type == JoinSemi {
			join.Cols = append([]Column(nil), curCols...)
		} else {
			join.Cols = append([]Column(nil), curCols...)
			for i, col := range right.Cols {
				mc := col
				mc.Name = rightMerged[i]
				join.Cols = append(join.Cols, mc)
			}
		}
		cur = join
		curCols = join.Cols
	}

	// 2. WHERE.
	if s.Where != nil {
		if ContainsAggregate(s.Where) {
			return &CompileError{s.Line, "aggregates are not allowed in WHERE"}
		}
		pred, err := sc.resolveExpr(s.Where)
		if err != nil {
			return err
		}
		f := c.graph.NewNode(OpFilter, cur)
		f.Pred = pred
		f.Cols = append([]Column(nil), curCols...)
		cur = f
	}

	// 3. Aggregation.
	hasAggItems := false
	for _, it := range s.Items {
		if !it.Star && ContainsAggregate(it.Expr) {
			hasAggItems = true
		}
	}
	needsAgg := len(s.GroupBy) > 0 || hasAggItems || (s.Having != nil && ContainsAggregate(s.Having))
	var having Expr
	items := make([]SelectItem, len(s.Items))
	copy(items, s.Items)

	if needsAgg {
		agg := c.graph.NewNode(OpAgg, cur)
		// Group-by columns.
		gbNames := make(map[string]bool)
		for _, g := range s.GroupBy {
			col, err := sc.resolve(g)
			if err != nil {
				return err
			}
			if gbNames[col.Name] {
				return &CompileError{s.Line, fmt.Sprintf("duplicate GROUP BY column %q", col.Name)}
			}
			gbNames[col.Name] = true
			agg.GroupBy = append(agg.GroupBy, col)
		}

		// Extract aggregate expressions from items and HAVING, replacing
		// them with references to synthesized agg output columns.
		extractor := &aggExtractor{sc: sc, curCols: curCols, line: s.Line, used: usedNames}
		for i := range items {
			if items[i].Star {
				return &CompileError{s.Line, "SELECT * cannot be combined with GROUP BY or aggregates"}
			}
			preferred := items[i].Alias
			rewritten, err := extractor.rewrite(items[i].Expr, preferred)
			if err != nil {
				return err
			}
			items[i].Expr = rewritten
		}
		if s.Having != nil {
			rewritten, err := extractor.rewrite(s.Having, "")
			if err != nil {
				return err
			}
			having = rewritten
		}
		agg.Aggs = extractor.specs
		if len(agg.Aggs) == 0 && len(agg.GroupBy) == 0 {
			return &CompileError{s.Line, "aggregation requires GROUP BY columns or aggregate functions"}
		}
		agg.Cols = append([]Column(nil), agg.GroupBy...)
		for _, spec := range agg.Aggs {
			var argType ColType = TypeLong
			if spec.Arg != nil {
				argType = typeOf(spec.Arg, curCols)
			}
			agg.Cols = append(agg.Cols, Column{Name: spec.Name, Type: aggResultType(spec, argType)})
		}
		cur = agg
		curCols = agg.Cols

		// Non-aggregate references above the agg must be group-by columns.
		for i := range items {
			if err := checkAggScope(items[i].Expr, agg, s.Line); err != nil {
				return err
			}
		}
		if having != nil {
			if err := checkAggScope(having, agg, s.Line); err != nil {
				return err
			}
			f := c.graph.NewNode(OpFilter, cur)
			f.Pred = having
			f.Cols = append([]Column(nil), curCols...)
			cur = f
		}
	} else if s.Having != nil {
		return &CompileError{s.Line, "HAVING requires GROUP BY or aggregates"}
	}

	// 4. Projection. After aggregation, item expressions are already in
	// terms of agg output columns; otherwise resolve them now.
	isSelectStar := len(items) == 1 && items[0].Star
	if !isSelectStar {
		proj := c.graph.NewNode(OpProject, cur)
		outNames := make(map[string]bool)
		for i, it := range items {
			if it.Star {
				return &CompileError{s.Line, "SELECT * must be the only projection item"}
			}
			var e Expr
			var err error
			if needsAgg {
				e = it.Expr // already rewritten in agg scope
			} else {
				e, err = sc.resolveExpr(it.Expr)
				if err != nil {
					return err
				}
			}
			name := it.Alias
			if name == "" {
				if cr, ok := e.(*ColRef); ok {
					name = cr.Name
				} else {
					name = fmt.Sprintf("col%d", i)
				}
			}
			if outNames[name] {
				return &CompileError{s.Line, fmt.Sprintf("duplicate output column %q", name)}
			}
			outNames[name] = true
			proj.Projs = append(proj.Projs, NamedExpr{Name: name, E: e})
			proj.Cols = append(proj.Cols, Column{
				Name:   name,
				Type:   typeOf(e, curCols),
				Source: sourceOf(e, curCols),
			})
		}
		cur = proj
		curCols = proj.Cols
	}

	// 5. DISTINCT.
	if s.Distinct {
		d := c.graph.NewNode(OpDistinct, cur)
		d.Cols = append([]Column(nil), curCols...)
		cur = d
	}

	// 6. ORDER BY / TOP. Keys must name output columns.
	resolveKeys := func(keys []SortKey) ([]SortKey, error) {
		out := make([]SortKey, 0, len(keys))
		for _, k := range keys {
			name := k.Col.Name
			found := false
			for _, col := range curCols {
				if col.Name == name {
					found = true
					break
				}
			}
			if !found {
				return nil, &CompileError{s.Line, fmt.Sprintf("ORDER BY column %q is not in the output", name)}
			}
			out = append(out, SortKey{Col: &ColRef{Name: name}, Desc: k.Desc})
		}
		return out, nil
	}
	switch {
	case s.Top > 0:
		keys, err := resolveKeys(s.OrderBy)
		if err != nil {
			return err
		}
		top := c.graph.NewNode(OpTop, cur)
		top.TopN = s.Top
		top.SortKeys = keys
		top.Cols = append([]Column(nil), curCols...)
		cur = top
	case len(s.OrderBy) > 0:
		keys, err := resolveKeys(s.OrderBy)
		if err != nil {
			return err
		}
		srt := c.graph.NewNode(OpSort, cur)
		srt.SortKeys = keys
		srt.Cols = append([]Column(nil), curCols...)
		cur = srt
	}

	return c.define(s.Name, s.Line, cur)
}

// aggResultType computes the output type of an aggregate.
func aggResultType(spec AggSpec, argType ColType) ColType {
	switch spec.Func {
	case "COUNT":
		return TypeLong
	case "AVG":
		return TypeDouble
	case "SUM":
		if argType == TypeFloat || argType == TypeDouble {
			return TypeDouble
		}
		return TypeLong
	default: // MIN, MAX
		return argType
	}
}

// aggExtractor pulls aggregate function calls out of expressions, creating
// AggSpecs and replacing the calls with references to the agg outputs.
type aggExtractor struct {
	sc      *selScope
	curCols []Column
	line    int
	used    map[string]bool
	specs   []AggSpec
	seq     int
}

// rewrite returns e with every aggregate call replaced by a ColRef to an
// agg output column. preferred is used as the output name when the whole
// expression is a single aggregate call with an alias.
func (ax *aggExtractor) rewrite(e Expr, preferred string) (Expr, error) {
	switch x := e.(type) {
	case *FuncExpr:
		if IsAggregateFunc(x.Name) {
			return ax.extract(x, preferred)
		}
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			ra, err := ax.rewrite(a, "")
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	case *BinaryExpr:
		l, err := ax.rewrite(x.Left, "")
		if err != nil {
			return nil, err
		}
		r, err := ax.rewrite(x.Right, "")
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case *UnaryExpr:
		inner, err := ax.rewrite(x.Expr, "")
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: x.Op, Expr: inner}, nil
	case *ColRef:
		return ax.sc.resolveExpr(x)
	default:
		return e, nil
	}
}

func (ax *aggExtractor) extract(fe *FuncExpr, preferred string) (Expr, error) {
	spec := AggSpec{Func: fe.Name, Star: fe.Star}
	if !fe.Star {
		if len(fe.Args) != 1 {
			return nil, &CompileError{ax.line, fmt.Sprintf("%s takes exactly one argument", fe.Name)}
		}
		if ContainsAggregate(fe.Args[0]) {
			return nil, &CompileError{ax.line, "nested aggregates are not allowed"}
		}
		arg, err := ax.sc.resolveExpr(fe.Args[0])
		if err != nil {
			return nil, err
		}
		spec.Arg = arg
	}
	// Reuse an existing spec for the same computation.
	for _, sp := range ax.specs {
		if sp.String() == spec.String() {
			return &ColRef{Name: sp.Name}, nil
		}
	}
	name := preferred
	if name == "" || ax.used[name] {
		name = fmt.Sprintf("agg%d", ax.seq)
		ax.seq++
	}
	ax.used[name] = true
	spec.Name = name
	ax.specs = append(ax.specs, spec)
	return &ColRef{Name: name}, nil
}

// checkAggScope verifies that every column reference in e is an output of
// the agg node (group-by column or aggregate result).
func checkAggScope(e Expr, agg *Node, line int) error {
	for _, ref := range CollectColRefs(e, nil) {
		if _, ok := agg.FindCol(ref.Name); !ok {
			return &CompileError{line, fmt.Sprintf("column %q must appear in GROUP BY or inside an aggregate", ref.Name)}
		}
	}
	return nil
}

func (c *compiler) compileUnion(s *UnionStmt) error {
	if len(s.Inputs) < 2 {
		return &CompileError{s.Line, "UNION needs at least two inputs"}
	}
	var inputs []*Node
	for _, name := range s.Inputs {
		n, err := c.lookup(name, s.Line)
		if err != nil {
			return err
		}
		inputs = append(inputs, n)
	}
	first := inputs[0]
	for _, n := range inputs[1:] {
		if len(n.Cols) != len(first.Cols) {
			return &CompileError{s.Line, fmt.Sprintf("UNION inputs have different column counts (%d vs %d)", len(first.Cols), len(n.Cols))}
		}
		for i := range n.Cols {
			if n.Cols[i].Type != first.Cols[i].Type {
				return &CompileError{s.Line, fmt.Sprintf("UNION input column %d type mismatch (%s vs %s)", i, first.Cols[i].Type, n.Cols[i].Type)}
			}
		}
	}
	u := c.graph.NewNode(OpUnion, inputs...)
	u.Cols = make([]Column, len(first.Cols))
	for i, col := range first.Cols {
		u.Cols[i] = Column{Name: col.Name, Type: col.Type} // sources differ across inputs
	}
	result := u
	if !s.All {
		d := c.graph.NewNode(OpDistinct, u)
		d.Cols = append([]Column(nil), u.Cols...)
		result = d
	}
	return c.define(s.Name, s.Line, result)
}

func (c *compiler) compileReduce(s *ReduceStmt) error {
	in, err := c.lookup(s.Input, s.Line)
	if err != nil {
		return err
	}
	if len(s.Produce) == 0 {
		return &CompileError{s.Line, "REDUCE must PRODUCE at least one column"}
	}
	n := c.graph.NewNode(OpReduce, in)
	n.UserOp = s.UserOp
	for _, ref := range s.On {
		col, ok := in.FindCol(ref.Name)
		if !ok {
			return &CompileError{s.Line, fmt.Sprintf("REDUCE ON column %q not found in input", ref.Name)}
		}
		n.GroupBy = append(n.GroupBy, col)
	}
	for _, cd := range s.Produce {
		n.Cols = append(n.Cols, Column{Name: cd.Name, Type: cd.Type})
	}
	return c.define(s.Name, s.Line, n)
}

func (c *compiler) compileProcess(s *ProcessStmt) error {
	in, err := c.lookup(s.Input, s.Line)
	if err != nil {
		return err
	}
	if len(s.Produce) == 0 {
		return &CompileError{s.Line, "PROCESS must PRODUCE at least one column"}
	}
	n := c.graph.NewNode(OpProcess, in)
	n.UserOp = s.UserOp
	for _, cd := range s.Produce {
		n.Cols = append(n.Cols, Column{Name: cd.Name, Type: cd.Type})
	}
	return c.define(s.Name, s.Line, n)
}

func (c *compiler) compileOutput(s *OutputStmt) error {
	in, err := c.lookup(s.Input, s.Line)
	if err != nil {
		return err
	}
	n := c.graph.NewNode(OpOutput, in)
	n.OutPath = s.Path
	n.Cols = append([]Column(nil), in.Cols...)
	c.graph.Roots = append(c.graph.Roots, n)
	return nil
}
