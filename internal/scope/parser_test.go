package scope

import (
	"strings"
	"testing"
)

const sampleScript = `
logs = EXTRACT uid:long, page:string, dur:int, score:double FROM "wasb://data/logs_20211103.tsv";
users = EXTRACT uid:long, region:string FROM "wasb://data/users.tsv";
clicks = SELECT uid, page, dur FROM logs WHERE dur > 100 AND score >= 0.5;
agg = SELECT region, COUNT(*) AS cnt, SUM(l.dur) AS total
      FROM clicks AS l JOIN users AS u ON l.uid == u.uid
      GROUP BY region
      HAVING COUNT(*) > 10
      ORDER BY cnt DESC
      TOP 100;
OUTPUT agg TO "wasb://out/agg.tsv";
`

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseSampleScript(t *testing.T) {
	s := mustParse(t, sampleScript)
	if len(s.Statements) != 5 {
		t.Fatalf("got %d statements, want 5", len(s.Statements))
	}
	if _, ok := s.Statements[0].(*ExtractStmt); !ok {
		t.Errorf("stmt 0 is %T, want *ExtractStmt", s.Statements[0])
	}
	sel, ok := s.Statements[3].(*SelectStmt)
	if !ok {
		t.Fatalf("stmt 3 is %T, want *SelectStmt", s.Statements[3])
	}
	if sel.Name != "agg" {
		t.Errorf("select name = %q", sel.Name)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Type != JoinInner {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Name != "region" {
		t.Errorf("group by = %+v", sel.GroupBy)
	}
	if sel.Having == nil {
		t.Error("missing HAVING")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Top != 100 {
		t.Errorf("top = %d", sel.Top)
	}
	if len(s.Outputs()) != 1 {
		t.Errorf("outputs = %d, want 1", len(s.Outputs()))
	}
}

func TestParseExtract(t *testing.T) {
	s := mustParse(t, `x = EXTRACT a:int, b:string FROM "f.tsv"; OUTPUT x TO "o";`)
	ex := s.Statements[0].(*ExtractStmt)
	if ex.Name != "x" || ex.Path != "f.tsv" {
		t.Errorf("extract = %+v", ex)
	}
	if len(ex.Schema) != 2 || ex.Schema[0].Type != TypeInt || ex.Schema[1].Type != TypeString {
		t.Errorf("schema = %+v", ex.Schema)
	}
}

func TestParseExtractBadType(t *testing.T) {
	if _, err := Parse(`x = EXTRACT a:blob FROM "f"; OUTPUT x TO "o";`); err == nil {
		t.Error("expected error for unknown column type")
	}
}

func TestParseJoinVariants(t *testing.T) {
	cases := map[string]JoinType{
		"JOIN":            JoinInner,
		"INNER JOIN":      JoinInner,
		"LEFT JOIN":       JoinLeft,
		"LEFT OUTER JOIN": JoinLeft,
		"RIGHT JOIN":      JoinRight,
		"FULL OUTER JOIN": JoinFull,
		"SEMI JOIN":       JoinSemi,
	}
	for kw, want := range cases {
		src := `x = SELECT a FROM t ` + kw + ` u ON a == b; OUTPUT x TO "o";`
		s := mustParse(t, src)
		sel := s.Statements[0].(*SelectStmt)
		if len(sel.Joins) != 1 || sel.Joins[0].Type != want {
			t.Errorf("%s: join = %+v, want %v", kw, sel.Joins, want)
		}
	}
}

func TestParseUnion(t *testing.T) {
	s := mustParse(t, `u = a UNION ALL b UNION ALL c; OUTPUT u TO "o";`)
	un := s.Statements[0].(*UnionStmt)
	if !un.All || len(un.Inputs) != 3 {
		t.Errorf("union = %+v", un)
	}
	s = mustParse(t, `u = a UNION b; OUTPUT u TO "o";`)
	un = s.Statements[0].(*UnionStmt)
	if un.All {
		t.Error("UNION without ALL should have All=false")
	}
}

func TestParseUnionMixedFails(t *testing.T) {
	if _, err := Parse(`u = a UNION ALL b UNION c; OUTPUT u TO "o";`); err == nil {
		t.Error("mixed UNION/UNION ALL should fail")
	}
}

func TestParseReduce(t *testing.T) {
	s := mustParse(t, `r = REDUCE input ON k1, k2 USING MyReducer PRODUCE a:int, b:string; OUTPUT r TO "o";`)
	rd := s.Statements[0].(*ReduceStmt)
	if rd.UserOp != "MyReducer" || len(rd.On) != 2 || len(rd.Produce) != 2 {
		t.Errorf("reduce = %+v", rd)
	}
}

func TestParseProcess(t *testing.T) {
	s := mustParse(t, `p = PROCESS input USING Cleaner PRODUCE a:long; OUTPUT p TO "o";`)
	pr := s.Statements[0].(*ProcessStmt)
	if pr.UserOp != "Cleaner" || pr.Input != "input" {
		t.Errorf("process = %+v", pr)
	}
}

func TestParseSelectDistinctStar(t *testing.T) {
	s := mustParse(t, `d = SELECT DISTINCT * FROM t; OUTPUT d TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	if !sel.Distinct || !sel.Items[0].Star {
		t.Errorf("select = %+v", sel)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := mustParse(t, `x = SELECT a FROM t WHERE a + b * 2 > 10 AND c == "v" OR NOT d; OUTPUT x TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	got := sel.Where.String()
	// OR binds loosest, then AND, then NOT, comparisons, then + over *.
	want := `(((a + (b * 2)) > 10) AND (c == "v")) OR NOT d`
	want = "(" + want + ")"
	if got != want {
		t.Errorf("Where = %s, want %s", got, want)
	}
}

func TestParseSymbolicBoolOps(t *testing.T) {
	s := mustParse(t, `x = SELECT a FROM t WHERE a > 1 && b < 2 || !c; OUTPUT x TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	str := sel.Where.String()
	if !strings.Contains(str, "AND") || !strings.Contains(str, "OR") || !strings.Contains(str, "NOT") {
		t.Errorf("symbolic ops not canonicalized: %s", str)
	}
}

func TestParseQualifiedRefsAndFuncs(t *testing.T) {
	s := mustParse(t, `x = SELECT t.a, SUM(t.b) AS s, floor(t.c) AS f FROM t GROUP BY a; OUTPUT x TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if cr, ok := sel.Items[0].Expr.(*ColRef); !ok || cr.Qualifier != "t" || cr.Name != "a" {
		t.Errorf("item 0 = %#v", sel.Items[0].Expr)
	}
	if fe, ok := sel.Items[1].Expr.(*FuncExpr); !ok || fe.Name != "SUM" {
		t.Errorf("item 1 = %#v", sel.Items[1].Expr)
	}
	if fe, ok := sel.Items[2].Expr.(*FuncExpr); !ok || fe.Name != "floor" {
		t.Errorf("scalar func name should keep case: %#v", sel.Items[2].Expr)
	}
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, `x = SELECT COUNT(*) AS c FROM t; OUTPUT x TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	fe := sel.Items[0].Expr.(*FuncExpr)
	if !fe.Star || fe.Name != "COUNT" {
		t.Errorf("count(*) = %#v", fe)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                    // empty script
		`x =`,                                 // truncated
		`x = SELECT FROM t;`,                  // missing projection
		`x = SELECT a FROM t`,                 // missing semicolon
		`OUTPUT TO "f";`,                      // missing rowset
		`x = SELECT a FROM t WHERE;`,          // missing predicate
		`x = SELECT a FROM t TOP 0;`,          // bad TOP
		`x = SELECT a FROM t TOP -5;`,         // negative TOP
		`x = EXTRACT FROM "f";`,               // empty schema
		`x = a;`,                              // bare rowset assignment
		`x = SELECT a FROM t JOIN u;`,         // missing ON
		`x = REDUCE t ON k USING R;`,          // missing PRODUCE
		`x = SELECT a FROM t GROUP BY;`,       // empty group by
		`x = SELECT a FROM t ORDER BY;`,       // empty order by
		`x = SELECT a FROM t WHERE (a > 1;`,   // unbalanced paren
		`x = SELECT a FROM t WHERE a > SUM(;`, // bad func args
		`OUTPUT x "f";`,                       // missing TO
		`x = SELECT a, FROM t;`,               // dangling comma
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("x = SELECT a FROM t\nWHERE ;")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestNormalizedExprWildcardsLiterals(t *testing.T) {
	s := mustParse(t, `x = SELECT a FROM t WHERE a > 100 AND b == "xyz"; OUTPUT x TO "o";`)
	sel := s.Statements[0].(*SelectStmt)
	norm := sel.Where.Normalized()
	if strings.Contains(norm, "100") || strings.Contains(norm, "xyz") {
		t.Errorf("Normalized should wildcard literals: %s", norm)
	}
	if !strings.Contains(norm, "?") {
		t.Errorf("Normalized should contain wildcards: %s", norm)
	}
	if !strings.Contains(norm, "a") || !strings.Contains(norm, "b") {
		t.Errorf("Normalized should keep column names: %s", norm)
	}
}

func TestParsedExprStringStable(t *testing.T) {
	src := `x = SELECT a FROM t WHERE (a > 1) AND (b < 2); OUTPUT x TO "o";`
	s1 := mustParse(t, src)
	s2 := mustParse(t, src)
	w1 := s1.Statements[0].(*SelectStmt).Where.String()
	w2 := s2.Statements[0].(*SelectStmt).Where.String()
	if w1 != w2 {
		t.Errorf("expression String not stable: %q vs %q", w1, w2)
	}
}
