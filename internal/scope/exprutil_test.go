package scope

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func parsePred(t *testing.T, pred string) Expr {
	t.Helper()
	src := `x = SELECT a FROM t WHERE ` + pred + `; OUTPUT x TO "o";`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	return s.Statements[0].(*SelectStmt).Where
}

func TestConjunctsSplitsNestedAnds(t *testing.T) {
	e := parsePred(t, "a > 1 AND b < 2 AND c == 3")
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cs))
	}
	// ORs are not split.
	e2 := parsePred(t, "a > 1 OR b < 2")
	if len(Conjuncts(e2)) != 1 {
		t.Error("OR must stay a single conjunct")
	}
	// Mixed: AND over OR splits at the AND only.
	e3 := parsePred(t, "(a > 1 OR b < 2) AND c == 3")
	if len(Conjuncts(e3)) != 2 {
		t.Error("AND over OR should yield two conjuncts")
	}
}

func TestAndAllInvertsConjuncts(t *testing.T) {
	e := parsePred(t, "a > 1 AND b < 2 AND c == 3")
	cs := Conjuncts(e)
	rebuilt := AndAll(cs)
	if len(Conjuncts(rebuilt)) != len(cs) {
		t.Error("AndAll/Conjuncts round trip changed arity")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	single := AndAll(cs[:1])
	if single.String() != cs[0].String() {
		t.Error("AndAll of one element should be the element")
	}
}

func TestRefNames(t *testing.T) {
	e := parsePred(t, "a > 1 AND b < c")
	refs := RefNames(e)
	for _, want := range []string{"a", "b", "c"} {
		if !refs[want] {
			t.Errorf("missing ref %q in %v", want, refs)
		}
	}
	if len(refs) != 3 {
		t.Errorf("refs = %v", refs)
	}
}

func TestRenameRefsDoesNotMutate(t *testing.T) {
	e := parsePred(t, "a > 1 AND b == 2")
	before := e.String()
	renamed := RenameRefs(e, map[string]string{"a": "x"})
	if e.String() != before {
		t.Fatal("RenameRefs mutated its input")
	}
	if !strings.Contains(renamed.String(), "x") || strings.Contains(renamed.String(), "a >") {
		t.Errorf("rename failed: %s", renamed)
	}
	// Unmapped names survive.
	if !strings.Contains(renamed.String(), "b") {
		t.Errorf("unmapped name lost: %s", renamed)
	}
}

func TestSubstituteRefsInlinesExpressions(t *testing.T) {
	e := parsePred(t, "s > 10")
	inner := parsePred(t, "a + b > 0").(*BinaryExpr).Left // (a + b)
	out := SubstituteRefs(e, map[string]Expr{"s": inner})
	if !strings.Contains(out.String(), "a + b") {
		t.Errorf("substitution failed: %s", out)
	}
	// Input untouched.
	if !strings.Contains(e.String(), "s") {
		t.Error("SubstituteRefs mutated its input")
	}
}

// randomExpr builds a random expression tree for property tests.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Float64() < 0.3 {
		switch rng.Intn(3) {
		case 0:
			return &ColRef{Name: string(rune('a' + rng.Intn(6)))}
		case 1:
			return &IntLit{Value: int64(rng.Intn(100))}
		default:
			return &FloatLit{Value: rng.Float64() * 10}
		}
	}
	ops := []string{"AND", "OR", "+", "-", "*", "==", "<", ">"}
	return &BinaryExpr{
		Op:    ops[rng.Intn(len(ops))],
		Left:  randomExpr(rng, depth-1),
		Right: randomExpr(rng, depth-1),
	}
}

// Property: AndAll(Conjuncts(e)) preserves the conjunct multiset.
func TestConjunctsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		cs := Conjuncts(e)
		rebuilt := AndAll(cs)
		cs2 := Conjuncts(rebuilt)
		if len(cs) != len(cs2) {
			return false
		}
		for i := range cs {
			if cs[i].String() != cs2[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: renaming with an identity map is a no-op on the rendering.
func TestRenameIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		identity := make(map[string]string)
		for name := range RefNames(e) {
			identity[name] = name
		}
		return RenameRefs(e, identity).String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rename then rename-back restores the original rendering when
// the mapping is a bijection to fresh names.
func TestRenameInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		fwd := make(map[string]string)
		back := make(map[string]string)
		i := 0
		for name := range RefNames(e) {
			fresh := "fresh" + string(rune('A'+i))
			fwd[name] = fresh
			back[fresh] = name
			i++
		}
		return RenameRefs(RenameRefs(e, fwd), back).String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Normalized never contains digits from integer literals.
func TestNormalizedWildcardsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &BinaryExpr{
			Op:    ">",
			Left:  &ColRef{Name: "col"},
			Right: &IntLit{Value: int64(rng.Intn(100000) + 10)},
		}
		return !strings.ContainsAny(e.Normalized(), "0123456789")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Parser robustness: random garbage must error out, never panic.
func TestParseNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tokens := []string{
		"SELECT", "FROM", "WHERE", "EXTRACT", "OUTPUT", "TO", "JOIN",
		"ON", "GROUP", "BY", "UNION", "x", "y", "=", ";", ",", "(", ")",
		"==", ">", "\"s\"", "123", "4.5", "AND", "TOP", ":", "int", ".",
	}
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = Parse(sb.String()) // error or success both fine
		}()
	}
}

// Compiler robustness: random garbage that parses must compile or error,
// never panic.
func TestCompileNeverPanicsOnRandomScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		// Small random-but-plausible scripts.
		var sb strings.Builder
		sb.WriteString(`t = EXTRACT a:int, b:long FROM "f";` + "\n")
		switch rng.Intn(4) {
		case 0:
			sb.WriteString(`x = SELECT a FROM t WHERE nosuch > 1;` + "\n")
		case 1:
			sb.WriteString(`x = SELECT a, a FROM t;` + "\n")
		case 2:
			sb.WriteString(`x = SELECT SUM(a) AS s FROM t GROUP BY nosuch;` + "\n")
		default:
			sb.WriteString(`x = SELECT a FROM t;` + "\n")
		}
		sb.WriteString(`OUTPUT x TO "o";`)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("compiler panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = CompileScript(sb.String())
		}()
	}
}
