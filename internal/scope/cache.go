package scope

import "qoadvisor/internal/cache"

// DefaultCompileCacheSize bounds a CompileCache built with size 0. Daily
// pipelines see one distinct script per (template, date); a few thousand
// entries covers weeks of a large template population.
const DefaultCompileCacheSize = 4096

// CompileCache memoizes CompileScript by script source, so each distinct
// script is parsed and lowered to a logical DAG exactly once per process.
// Recurring-job pipelines compile the same source over and over — every
// daily instance of a template shares one script, and flighting re-derives
// the next day's instance for validation labels — so the cache turns the
// dominant parse+lower cost into a map lookup.
//
// The cache is safe for concurrent use and deduplicates concurrent
// compilations of the same source (only one goroutine compiles; the rest
// wait for its result). Compile errors are cached too: a script that does
// not compile keeps not compiling until it changes. Cached graphs are
// shared: callers must treat them as immutable, which the optimizer
// guarantees by always rewriting a Clone. Eviction is FIFO past the cap —
// "invalidation" is purely capacity-driven, since sources are
// content-addressed and a changed script is simply a different key.
type CompileCache struct {
	f *cache.FIFO[string, *Graph]
}

// CompileCacheStats is a point-in-time snapshot of cache effectiveness.
type CompileCacheStats = cache.Stats

// NewCompileCache builds a cache holding at most max compiled scripts
// (0 = DefaultCompileCacheSize).
func NewCompileCache(max int) *CompileCache {
	if max <= 0 {
		max = DefaultCompileCacheSize
	}
	return &CompileCache{f: cache.NewFIFO[string, *Graph](max)}
}

// Compile returns the compiled logical DAG for src, serving repeats from
// the cache.
func (c *CompileCache) Compile(src string) (*Graph, error) {
	return c.f.Do(src, func() (*Graph, error) { return CompileScript(src) })
}

// Stats snapshots the hit/miss counters and current occupancy.
func (c *CompileCache) Stats() CompileCacheStats { return c.f.Stats() }
