// Package walrec is the registry of journal record types: every tag
// the write-ahead log carries, its registered name, and the wire codec
// for its payload. It is the single decoder layer shared by journal
// replay (qoadvisor/internal/bandit.Replayer), crash recovery and
// follower tailing (qoadvisor/internal/serve.Applier via
// internal/replicate), and the audit query engine
// (qoadvisor/internal/audit) — one place where a tag byte becomes a
// typed struct, so the three consumers can never drift apart on the
// format.
//
// The package is deliberately wire-level: it depends only on the
// standard library and decodes into raw forms (flips as strings,
// quarantine states as bytes). Domain interpretation — parsing a flip
// into rules.Flip, validating a drift.State — stays with the owning
// packages, which wrap these codecs.
//
// Encodings are little-endian: fixed 8-byte words for hashes and float
// bits (feature IDs span the full 64-bit space, so varints would
// inflate them), uvarints for lengths and counts. Every payload starts
// with its tag byte.
package walrec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Journal record tags. LSN-ordered replay dispatches on the payload's
// first byte; these constants are the one authoritative assignment
// (the bandit and serve packages alias them for compatibility).
const (
	// TagRank is one logged rank decision in resolved form: event ID,
	// propensity, context feature IDs, chosen action's feature IDs.
	TagRank byte = 1
	// TagRewardBatch is the accepted slice of one reward batch.
	TagRewardBatch byte = 2
	// TagTrainMark is an out-of-band training flush (drain, shutdown,
	// checkpoint barrier).
	TagTrainMark byte = 3
	// TagHintRollover is a wholesale hint-table install (complete table
	// plus the cache generation it minted).
	TagHintRollover byte = 4
	// TagQuarantine is the complete durable drift-safeguard table.
	TagQuarantine byte = 5
)

// tagNames maps each registered tag to its stable name — the registry
// the audit surface, metrics labels, and error messages share.
var tagNames = map[byte]string{
	TagRank:         "rank",
	TagRewardBatch:  "reward_batch",
	TagTrainMark:    "train_mark",
	TagHintRollover: "hint_rollover",
	TagQuarantine:   "quarantine",
}

// Name returns the tag's registered name, or "" when the tag is
// unknown (a journal written by a newer binary).
func Name(tag byte) string { return tagNames[tag] }

// Known reports whether the tag is registered.
func Known(tag byte) bool { _, ok := tagNames[tag]; return ok }

// Tags lists every registered tag in ascending order.
func Tags() []byte {
	return []byte{TagRank, TagRewardBatch, TagTrainMark, TagHintRollover, TagQuarantine}
}

// ParseTag resolves a registered name back to its tag byte.
func ParseTag(name string) (byte, error) {
	for tag, n := range tagNames {
		if n == name {
			return tag, nil
		}
	}
	return 0, fmt.Errorf("walrec: unknown record type %q", name)
}

// Rank is the decoded form of a TagRank payload.
type Rank struct {
	EventID string
	Prob    float64
	CtxIDs  []uint64
	ActIDs  []uint64
}

// RewardEntry is one (event, reward) observation inside a journaled
// reward batch.
type RewardEntry struct {
	EventID string
	Value   float64
}

// Hint is the wire-level form of one hint inside a rollover record:
// the flip travels as its string rendering (the owning package parses
// it into a typed rules.Flip).
type Hint struct {
	TemplateHash uint64
	TemplateID   string
	Flip         string
	Day          int
}

// HintRollover is the decoded form of a TagHintRollover payload.
type HintRollover struct {
	Gen   uint64
	Hints []Hint
}

// Quarantine flag bits.
const (
	// QuarFlagSnapshot marks a checkpoint/bootstrap re-journal of the
	// live table (no transition happened at this LSN).
	QuarFlagSnapshot byte = 1 << 0
	// QuarFlagManual marks an operator-initiated transition.
	QuarFlagManual byte = 1 << 1
)

// Quarantine is the decoded form of a TagQuarantine payload. States
// map template hashes to raw drift-state bytes; the serve layer
// validates them against drift.State's durable set.
type Quarantine struct {
	States   map[uint64]byte
	Snapshot bool
	Manual   bool
}

// --- shared wire primitives ---

func appendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("walrec: record truncated at varint")
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, fmt.Errorf("walrec: record truncated at string")
	}
	return string(b[:n]), b[n:], nil
}

// skipString advances past a length-prefixed string without
// materializing it — the key-extraction fast path.
func skipString(b []byte) ([]byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) < n {
		return nil, fmt.Errorf("walrec: record truncated at string")
	}
	return b[n:], nil
}

func takeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("walrec: record truncated at word")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeIDs(b []byte) ([]uint64, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < n*8 {
		return nil, nil, fmt.Errorf("walrec: record truncated at ID list")
	}
	if n == 0 {
		return nil, b, nil
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return ids, b[n*8:], nil
}

// --- rank (tag 1) ---

// EncodeRank frames one rank decision.
func EncodeRank(eventID string, prob float64, ctxIDs, actIDs []uint64) []byte {
	b := make([]byte, 0, 1+len(eventID)+4+8+(len(ctxIDs)+len(actIDs))*8+8)
	b = append(b, TagRank)
	b = appendString(b, eventID)
	b = appendUint64(b, math.Float64bits(prob))
	b = binary.AppendUvarint(b, uint64(len(ctxIDs)))
	for _, id := range ctxIDs {
		b = appendUint64(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(actIDs)))
	for _, id := range actIDs {
		b = appendUint64(b, id)
	}
	return b
}

// DecodeRank parses a TagRank payload (including the type tag).
func DecodeRank(p []byte) (Rank, error) {
	var rec Rank
	if len(p) == 0 || p[0] != TagRank {
		return rec, fmt.Errorf("walrec: not a rank record")
	}
	b := p[1:]
	var err error
	if rec.EventID, b, err = takeString(b); err != nil {
		return rec, err
	}
	var bits uint64
	if bits, b, err = takeUint64(b); err != nil {
		return rec, err
	}
	rec.Prob = math.Float64frombits(bits)
	if rec.CtxIDs, b, err = takeIDs(b); err != nil {
		return rec, err
	}
	if rec.ActIDs, _, err = takeIDs(b); err != nil {
		return rec, err
	}
	return rec, nil
}

// --- reward batch (tag 2) ---

// EncodeRewardBatch frames the accepted slice of one reward batch.
func EncodeRewardBatch(entries []RewardEntry) []byte {
	size := 2
	for _, e := range entries {
		size += len(e.EventID) + 4 + 8
	}
	b := make([]byte, 0, size)
	b = append(b, TagRewardBatch)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.EventID)
		b = appendUint64(b, math.Float64bits(e.Value))
	}
	return b
}

// DecodeRewardBatch parses a TagRewardBatch payload.
func DecodeRewardBatch(p []byte) ([]RewardEntry, error) {
	if len(p) == 0 || p[0] != TagRewardBatch {
		return nil, fmt.Errorf("walrec: not a reward-batch record")
	}
	b := p[1:]
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	// An entry encodes to at least 9 bytes (length prefix + 8-byte
	// float); a count claiming more is corruption, not an allocation
	// request.
	if n > uint64(len(b))/9 {
		return nil, fmt.Errorf("walrec: reward batch claims %d entries in %d bytes", n, len(b))
	}
	entries := make([]RewardEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e RewardEntry
		if e.EventID, b, err = takeString(b); err != nil {
			return nil, err
		}
		var bits uint64
		if bits, b, err = takeUint64(b); err != nil {
			return nil, err
		}
		e.Value = math.Float64frombits(bits)
		entries = append(entries, e)
	}
	return entries, nil
}

// --- train mark (tag 3) ---

// EncodeTrainMark frames an out-of-band training flush.
func EncodeTrainMark() []byte { return []byte{TagTrainMark} }

// --- hint rollover (tag 4) ---

// EncodeHintRollover frames one hint-table rollover:
//
//	[tag][uvarint generation][uvarint count]
//	per hint: [8-byte hash][string templateID][string flip][uvarint day]
func EncodeHintRollover(gen uint64, hints []Hint) []byte {
	size := 1 + 2*binary.MaxVarintLen64
	for _, h := range hints {
		size += 8 + len(h.TemplateID) + len(h.Flip) + 16
	}
	b := make([]byte, 0, size)
	b = append(b, TagHintRollover)
	b = binary.AppendUvarint(b, gen)
	b = binary.AppendUvarint(b, uint64(len(hints)))
	for _, h := range hints {
		b = appendUint64(b, h.TemplateHash)
		b = appendString(b, h.TemplateID)
		b = appendString(b, h.Flip)
		b = binary.AppendUvarint(b, uint64(h.Day))
	}
	return b
}

// DecodeHintRollover parses a TagHintRollover payload.
func DecodeHintRollover(p []byte) (HintRollover, error) {
	var rec HintRollover
	if len(p) == 0 || p[0] != TagHintRollover {
		return rec, fmt.Errorf("walrec: not a hint-rollover record")
	}
	b := p[1:]
	var err error
	if rec.Gen, b, err = takeUvarint(b); err != nil {
		return rec, err
	}
	var n uint64
	if n, b, err = takeUvarint(b); err != nil {
		return rec, err
	}
	// A hint encodes to at least 11 bytes (8-byte hash, two length
	// prefixes, one day varint); a count claiming more than the payload
	// could hold is corruption, not an allocation request.
	const minHintEnc = 11
	if n > uint64(len(b))/minHintEnc {
		return rec, fmt.Errorf("walrec: hint record claims %d hints in %d bytes", n, len(b))
	}
	rec.Hints = make([]Hint, 0, n)
	for i := uint64(0); i < n; i++ {
		var h Hint
		if len(b) < 8 {
			return rec, fmt.Errorf("walrec: hint record truncated at hash")
		}
		h.TemplateHash = binary.LittleEndian.Uint64(b)
		b = b[8:]
		if h.TemplateID, b, err = takeString(b); err != nil {
			return rec, err
		}
		if h.Flip, b, err = takeString(b); err != nil {
			return rec, err
		}
		var day uint64
		if day, b, err = takeUvarint(b); err != nil {
			return rec, err
		}
		h.Day = int(day)
		rec.Hints = append(rec.Hints, h)
	}
	return rec, nil
}

// --- quarantine (tag 5) ---

// EncodeQuarantine frames the durable quarantine table:
//
//	[tag][flags][uvarint count] per template: [8-byte hash][state byte]
//
// Iteration order is unspecified; decode builds a map, so records with
// the same content replay identically regardless of encoding order.
func EncodeQuarantine(states map[uint64]byte, snapshot, manual bool) []byte {
	var flags byte
	if snapshot {
		flags |= QuarFlagSnapshot
	}
	if manual {
		flags |= QuarFlagManual
	}
	b := make([]byte, 0, 2+binary.MaxVarintLen64+9*len(states))
	b = append(b, TagQuarantine, flags)
	b = binary.AppendUvarint(b, uint64(len(states)))
	for hash, st := range states {
		b = appendUint64(b, hash)
		b = append(b, st)
	}
	return b
}

// DecodeQuarantine parses a TagQuarantine payload.
func DecodeQuarantine(p []byte) (Quarantine, error) {
	var rec Quarantine
	if len(p) < 2 || p[0] != TagQuarantine {
		return rec, fmt.Errorf("walrec: not a quarantine record")
	}
	rec.Snapshot = p[1]&QuarFlagSnapshot != 0
	rec.Manual = p[1]&QuarFlagManual != 0
	b := p[2:]
	n, b, err := takeUvarint(b)
	if err != nil {
		return rec, err
	}
	if n > uint64(len(b))/9 {
		return rec, fmt.Errorf("walrec: quarantine record claims %d templates in %d bytes", n, len(b))
	}
	rec.States = make(map[uint64]byte, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 9 {
			return rec, fmt.Errorf("walrec: quarantine record truncated")
		}
		rec.States[binary.LittleEndian.Uint64(b)] = b[8]
		b = b[9:]
	}
	return rec, nil
}

// --- unified decode ---

// Record is one journal record in decoded form: the tag plus exactly
// one populated payload pointer (TagTrainMark populates none — the
// mark carries no data).
type Record struct {
	Tag          byte
	Rank         *Rank
	RewardBatch  []RewardEntry
	HintRollover *HintRollover
	Quarantine   *Quarantine
}

// Decode parses any registered record payload into its typed form.
// Unknown tags return an error carrying the tag byte; callers that
// must fail loudly (replay) already do, and callers that may skip
// (audit listing) can branch on Known.
func Decode(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("walrec: empty record")
	}
	rec := Record{Tag: p[0]}
	switch p[0] {
	case TagRank:
		r, err := DecodeRank(p)
		if err != nil {
			return rec, err
		}
		rec.Rank = &r
	case TagRewardBatch:
		entries, err := DecodeRewardBatch(p)
		if err != nil {
			return rec, err
		}
		rec.RewardBatch = entries
	case TagTrainMark:
		// no payload
	case TagHintRollover:
		r, err := DecodeHintRollover(p)
		if err != nil {
			return rec, err
		}
		rec.HintRollover = &r
	case TagQuarantine:
		r, err := DecodeQuarantine(p)
		if err != nil {
			return rec, err
		}
		rec.Quarantine = &r
	default:
		return rec, fmt.Errorf("walrec: unknown record tag %d", p[0])
	}
	return rec, nil
}

// HashEventID maps an event ID into the same 64-bit key space the
// audit sidecars index template hashes in (FNV-1a; collisions are
// harmless — membership filters are probabilistic anyway).
func HashEventID(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// AppendKeys appends the record's 64-bit membership keys to dst and
// returns it: template hashes as-is (hint rollovers, quarantines) and
// hashed event IDs (ranks, reward batches). This is the sidecar
// builder's and the query filter's fast path — it walks the payload
// without materializing strings or structs.
func AppendKeys(dst []uint64, p []byte) ([]uint64, error) {
	if len(p) == 0 {
		return dst, fmt.Errorf("walrec: empty record")
	}
	var err error
	switch p[0] {
	case TagRank:
		b := p[1:]
		var n uint64
		if n, b, err = takeUvarint(b); err != nil {
			return dst, err
		}
		if uint64(len(b)) < n {
			return dst, fmt.Errorf("walrec: record truncated at string")
		}
		dst = append(dst, hashBytes(b[:n]))
	case TagRewardBatch:
		b := p[1:]
		var n uint64
		if n, b, err = takeUvarint(b); err != nil {
			return dst, err
		}
		for i := uint64(0); i < n; i++ {
			var l uint64
			if l, b, err = takeUvarint(b); err != nil {
				return dst, err
			}
			if uint64(len(b)) < l+8 {
				return dst, fmt.Errorf("walrec: reward batch truncated")
			}
			dst = append(dst, hashBytes(b[:l]))
			b = b[l+8:]
		}
	case TagTrainMark:
		// no keys
	case TagHintRollover:
		b := p[1:]
		if _, b, err = takeUvarint(b); err != nil { // gen
			return dst, err
		}
		var n uint64
		if n, b, err = takeUvarint(b); err != nil {
			return dst, err
		}
		for i := uint64(0); i < n; i++ {
			if len(b) < 8 {
				return dst, fmt.Errorf("walrec: hint record truncated at hash")
			}
			dst = append(dst, binary.LittleEndian.Uint64(b))
			b = b[8:]
			if b, err = skipString(b); err != nil { // templateID
				return dst, err
			}
			if b, err = skipString(b); err != nil { // flip
				return dst, err
			}
			if _, b, err = takeUvarint(b); err != nil { // day
				return dst, err
			}
		}
	case TagQuarantine:
		if len(p) < 2 {
			return dst, fmt.Errorf("walrec: quarantine record truncated")
		}
		b := p[2:]
		var n uint64
		if n, b, err = takeUvarint(b); err != nil {
			return dst, err
		}
		for i := uint64(0); i < n; i++ {
			if len(b) < 9 {
				return dst, fmt.Errorf("walrec: quarantine record truncated")
			}
			dst = append(dst, binary.LittleEndian.Uint64(b))
			b = b[9:]
		}
	default:
		return dst, fmt.Errorf("walrec: unknown record tag %d", p[0])
	}
	return dst, nil
}

// hashBytes is HashEventID without the string conversion.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
