// Package cache provides the singleflight FIFO memo behind the compile
// caches (scope script→DAG, optimizer logical phase).
package cache

import (
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits   uint64
	Misses uint64
	Size   int
	Max    int
}

// FIFO memoizes a compute function by key. Concurrent callers of one key
// share a single computation (singleflight); past max entries the oldest
// keys are evicted, costing only a recompute on re-request. Results —
// values and errors alike — are memoized until eviction, and cached
// values are shared across goroutines, so callers must treat them as
// immutable.
type FIFO[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	entries map[K]*entry[V]
	order   []K // insertion order, for FIFO eviction
	hits    uint64
	misses  uint64
}

type entry[V any] struct {
	once sync.Once
	v    V
	err  error
	// done marks that compute returned normally; it stays false when
	// compute panics, so waiters and later callers can tell a poisoned
	// entry from a legitimate (zero, nil) result.
	done bool
}

// NewFIFO builds a cache holding at most max entries (max must be
// positive; wrappers apply their own defaults).
func NewFIFO[K comparable, V any](max int) *FIFO[K, V] {
	return &FIFO[K, V]{max: max, entries: make(map[K]*entry[V])}
}

// Do returns the memoized result for key, running compute on first use.
// compute runs outside the cache lock: a slow computation must not
// serialize unrelated lookups, and in-flight computations keep running
// for their waiters even if the entry is evicted meanwhile.
//
// If compute panics, the panic propagates to the computing caller, the
// poisoned entry is dropped so a later Do retries instead of serving a
// spurious (zero, nil), and concurrent waiters get an error. The dropped
// entry's key lingers in the eviction order; if the key is re-requested
// the stale slot can at worst evict its replacement early — a recompute,
// never a wrong result.
func (c *FIFO[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &entry[V]{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.evictLocked()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if !e.done {
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
			}
		}()
		e.v, e.err = compute()
		e.done = true
	})
	if !e.done {
		var zero V
		return zero, fmt.Errorf("cache: computation for key %v panicked", key)
	}
	return e.v, e.err
}

// evictLocked drops the oldest entries until the cache fits its cap.
func (c *FIFO[K, V]) evictLocked() {
	for len(c.order) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
}

// Stats snapshots the hit/miss counters and current occupancy.
func (c *FIFO[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Size: len(c.entries), Max: c.max}
}
