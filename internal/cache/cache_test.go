package cache

import (
	"errors"
	"testing"
)

func TestDoMemoizesValuesAndErrors(t *testing.T) {
	c := NewFIFO[string, int](8)
	calls := 0
	get := func() (int, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", get)
		if v != 7 || err != nil {
			t.Fatalf("Do = (%d, %v), want (7, nil)", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.Do("bad", func() (int, error) { calls++; return 0, boom }); err != boom {
			t.Fatalf("error not memoized: %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("error compute ran %d times, want 1", calls-1)
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Size != 2 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses / size 2", st)
	}
}

func TestDoEvictsFIFO(t *testing.T) {
	c := NewFIFO[int, int](2)
	for k := 0; k < 3; k++ {
		c.Do(k, func() (int, error) { return k, nil })
	}
	recomputed := false
	c.Do(0, func() (int, error) { recomputed = true; return 0, nil })
	if !recomputed {
		t.Error("oldest key must be evicted at capacity")
	}
	if st := c.Stats(); st.Size != 2 {
		t.Errorf("size = %d, want 2", st.Size)
	}
}

// TestDoPanicDoesNotPoison is the singleflight panic contract: the panic
// reaches the computing caller, and the key is retried — not served as a
// spurious (zero, nil) — on the next Do.
func TestDoPanicDoesNotPoison(t *testing.T) {
	c := NewFIFO[string, *int](8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must propagate to the computing caller")
			}
		}()
		c.Do("k", func() (*int, error) { panic("compute blew up") })
	}()
	v := 42
	got, err := c.Do("k", func() (*int, error) { return &v, nil })
	if err != nil || got != &v {
		t.Fatalf("retry after panic = (%v, %v), want the fresh result", got, err)
	}
}
