package exec

import (
	"testing"

	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// buildPlan compiles a script under the default configuration.
func buildPlan(t *testing.T, src string, st optimizer.MapStats) *optimizer.Plan {
	t.Helper()
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	res, err := optimizer.Optimize(g, cat.DefaultConfig(), optimizer.Options{Catalog: cat, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func TestScanReadsScaleWithTrueRows(t *testing.T) {
	src := `
t = EXTRACT a:long, b:double FROM "data/t.tsv";
OUTPUT t TO "o";`
	st := optimizer.MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 1e5}}}
	plan := buildPlan(t, src, st)
	cl := DefaultCluster(1)
	m1 := Run(plan, &Truth{Rows: map[string]float64{"data/t.tsv": 1e6}, JitterSeed: 1}, st, cl, 1)
	m2 := Run(plan, &Truth{Rows: map[string]float64{"data/t.tsv": 2e6}, JitterSeed: 1}, st, cl, 1)
	ratio := m2.DataRead / m1.DataRead
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling true rows should ~double data read, ratio=%v", ratio)
	}
}

func TestOutputContributesDataWritten(t *testing.T) {
	src := `
t = EXTRACT a:long FROM "data/t.tsv";
OUTPUT t TO "o";`
	st := optimizer.MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 1e5}}}
	plan := buildPlan(t, src, st)
	m := Run(plan, &Truth{Rows: map[string]float64{"data/t.tsv": 1e6}, JitterSeed: 1}, st, DefaultCluster(1), 1)
	// A pure copy job writes its full output: 1e6 rows * 8 bytes.
	if m.DataWritten < 7e6 || m.DataWritten > 9e6 {
		t.Errorf("data written = %v, want ~8e6", m.DataWritten)
	}
}

func TestShuffleCountsReadAndWrite(t *testing.T) {
	// An aggregation shuffles: exchange bytes count as both written (by
	// producers) and read (by consumers).
	src := `
t = EXTRACT k:long, v:double FROM "data/t.tsv";
a = SELECT k, SUM(v) AS s FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := optimizer.MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"k": 5e5, "v": 1e4}}}
	plan := buildPlan(t, src, st)
	truth := &Truth{
		Rows:       map[string]float64{"data/t.tsv": 1e6},
		Sel:        map[string]float64{"agg:k": 0.5},
		JitterSeed: 1,
	}
	m := Run(plan, truth, st, DefaultCluster(1), 1)
	if m.DataWritten <= 0 {
		t.Fatal("shuffle should produce written bytes")
	}
	// Reads include the base scan plus the shuffle read.
	scanBytes := 1e6 * 16 // two 8-byte columns
	if m.DataRead <= scanBytes*0.5 {
		t.Errorf("reads (%v) should include shuffle traffic beyond the scan", m.DataRead)
	}
}

func TestBroadcastMultipliesBytesByPartitions(t *testing.T) {
	src := `
big = EXTRACT k:long, v:int FROM "data/big.tsv";
dim = EXTRACT k:long, s:int FROM "data/dim.tsv";
j = SELECT a.v, b.s FROM big AS a JOIN dim AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := optimizer.MapStats{
		"data/big.tsv": {Rows: 2e7, NDV: map[string]float64{"k": 1e6}},
		"data/dim.tsv": {Rows: 1e3, NDV: map[string]float64{"k": 1e3}},
	}
	plan := buildPlan(t, src, st)
	hasBroadcast := false
	for _, n := range plan.Nodes() {
		if n.IsExchange() && n.Exchange == optimizer.ExchangeBroadcast {
			hasBroadcast = true
			if n.Partitions < 2 {
				t.Skip("broadcast to a single partition: nothing to check")
			}
		}
	}
	if !hasBroadcast {
		t.Skip("planner did not choose a broadcast join for this shape")
	}
	truth := &Truth{
		Rows:       map[string]float64{"data/big.tsv": 2e7, "data/dim.tsv": 1e3},
		Sel:        map[string]float64{"join:(k == b_k)": 1e-3},
		JitterSeed: 1,
	}
	m := Run(plan, truth, st, DefaultCluster(1), 1)
	if m.DataWritten <= 0 {
		t.Error("broadcast should produce shuffle bytes")
	}
}

func TestMemoryTracksHashBuildSide(t *testing.T) {
	src := `
l = EXTRACT k:long, v:int FROM "data/l.tsv";
r = EXTRACT k:long, w:int FROM "data/r.tsv";
j = SELECT a.v, b.w FROM l AS a JOIN r AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := optimizer.MapStats{
		"data/l.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e6}},
		"data/r.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e6}},
	}
	plan := buildPlan(t, src, st)
	small := &Truth{Rows: map[string]float64{"data/l.tsv": 5e6, "data/r.tsv": 1e4}, JitterSeed: 2}
	big := &Truth{Rows: map[string]float64{"data/l.tsv": 5e6, "data/r.tsv": 5e7}, JitterSeed: 2}
	cl := DefaultCluster(2)
	mSmall := Run(plan, small, st, cl, 1)
	mBig := Run(plan, big, st, cl, 1)
	if mBig.MaxMemory <= mSmall.MaxMemory {
		t.Errorf("bigger build side should need more memory: %v vs %v", mBig.MaxMemory, mSmall.MaxMemory)
	}
}

func TestLatencyRespondsToCriticalPath(t *testing.T) {
	// A deeper plan (join + agg + sort) should have higher latency than a
	// flat copy of the same input volume.
	flat := `
t = EXTRACT k:long, v:double FROM "data/t.tsv";
OUTPUT t TO "o";`
	deep := `
t = EXTRACT k:long, v:double FROM "data/t.tsv";
u = EXTRACT k:long, w:double FROM "data/u.tsv";
j = SELECT a.k, a.v, b.w FROM t AS a JOIN u AS b ON a.k == b.k;
g = SELECT k, SUM(v) AS s FROM j GROUP BY k;
o = SELECT k, s FROM g ORDER BY s DESC;
OUTPUT o TO "out";`
	st := optimizer.MapStats{
		"data/t.tsv": {Rows: 2e6, NDV: map[string]float64{"k": 1e5, "v": 1e4}},
		"data/u.tsv": {Rows: 2e6, NDV: map[string]float64{"k": 1e5, "w": 1e4}},
	}
	truth := &Truth{
		Rows:       map[string]float64{"data/t.tsv": 2e6, "data/u.tsv": 2e6},
		JitterSeed: 3,
	}
	cl := DefaultCluster(3)
	cl.QueueSigma = 0 // remove global noise for a clean comparison
	cl.StragglerSigma = 0
	cl.HiccupProb = 0
	mFlat := Run(buildPlan(t, flat, st), truth, st, cl, 1)
	mDeep := Run(buildPlan(t, deep, st), truth, st, cl, 1)
	if mDeep.LatencySec <= mFlat.LatencySec {
		t.Errorf("deep plan latency (%v) should exceed flat copy (%v)", mDeep.LatencySec, mFlat.LatencySec)
	}
}

func TestNoiseFreeClusterIsFullyDeterministicAcrossSeeds(t *testing.T) {
	src := `
t = EXTRACT a:long FROM "data/t.tsv";
OUTPUT t TO "o";`
	st := optimizer.MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 1e5}}}
	plan := buildPlan(t, src, st)
	truth := &Truth{Rows: map[string]float64{"data/t.tsv": 1e6}, JitterSeed: 1}
	cl := &Cluster{Seed: 1} // all sigmas zero
	m1 := Run(plan, truth, st, cl, 1)
	m2 := Run(plan, truth, st, cl, 999)
	if m1.PNHours != m2.PNHours || m1.LatencySec != m2.LatencySec {
		t.Error("zero-noise cluster should be seed-invariant")
	}
}

func TestVerticesMatchPlanEstimate(t *testing.T) {
	src := `
t = EXTRACT k:long, v:double FROM "data/t.tsv";
a = SELECT k, SUM(v) AS s FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := optimizer.MapStats{"data/t.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e5}}}
	plan := buildPlan(t, src, st)
	m := Run(plan, &Truth{Rows: map[string]float64{"data/t.tsv": 5e6}, JitterSeed: 1}, st, DefaultCluster(1), 1)
	if m.Vertices != plan.EstVertices {
		t.Errorf("runtime vertices %d != compiled plan vertices %d", m.Vertices, plan.EstVertices)
	}
}
