package exec

import (
	"math"
	"testing"

	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
	"qoadvisor/internal/stats"
)

const testScript = `
logs = EXTRACT uid:long, page:string, dur:int FROM "data/logs.tsv";
users = EXTRACT uid:long, region:string FROM "data/users.tsv";
clicks = SELECT uid, dur FROM logs WHERE dur > 100;
joined = SELECT l.uid, l.dur, u.region FROM clicks AS l JOIN users AS u ON l.uid == u.uid;
agg = SELECT region, SUM(dur) AS total FROM joined GROUP BY region;
OUTPUT agg TO "out/agg.tsv";
`

func testStats() optimizer.MapStats {
	return optimizer.MapStats{
		"data/logs.tsv":  {Rows: 2e6, NDV: map[string]float64{"uid": 1e5, "page": 1000, "dur": 500}},
		"data/users.tsv": {Rows: 1e5, NDV: map[string]float64{"uid": 1e5, "region": 50}},
	}
}

func testTruth() *Truth {
	return &Truth{
		Rows: map[string]float64{"data/logs.tsv": 2.4e6, "data/users.tsv": 1e5},
		Sel: map[string]float64{
			"filter:(dur > 100)": 0.4,
		},
		JitterSeed: 99,
	}
}

func compilePlan(t *testing.T) *optimizer.Plan {
	t.Helper()
	g, err := scope.CompileScript(testScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	res, err := optimizer.Optimize(g, cat.DefaultConfig(), optimizer.Options{Catalog: cat, Stats: testStats()})
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func TestRunProducesPositiveMetrics(t *testing.T) {
	plan := compilePlan(t)
	m := Run(plan, testTruth(), testStats(), DefaultCluster(1), 0)
	if m.LatencySec <= 0 {
		t.Errorf("latency = %v", m.LatencySec)
	}
	if m.PNHours <= 0 {
		t.Errorf("pnhours = %v", m.PNHours)
	}
	if m.Vertices <= 0 {
		t.Errorf("vertices = %d", m.Vertices)
	}
	if m.DataRead <= 0 || m.DataWritten <= 0 {
		t.Errorf("io: read=%v written=%v", m.DataRead, m.DataWritten)
	}
	if m.MaxMemory <= 0 || m.AvgMemory <= 0 {
		t.Errorf("memory: max=%v avg=%v", m.MaxMemory, m.AvgMemory)
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	plan := compilePlan(t)
	a := Run(plan, testTruth(), testStats(), DefaultCluster(1), 42)
	b := Run(plan, testTruth(), testStats(), DefaultCluster(1), 42)
	if a != b {
		t.Errorf("same seed must give identical metrics:\n%+v\n%+v", a, b)
	}
	c := Run(plan, testTruth(), testStats(), DefaultCluster(1), 43)
	if a.LatencySec == c.LatencySec {
		t.Error("different seeds should vary latency")
	}
}

func TestDataVolumesAreRunInvariant(t *testing.T) {
	// DataRead/DataWritten must be identical across A/A runs: this is the
	// paper's core argument for validating on I/O-derived metrics.
	plan := compilePlan(t)
	runs := RunN(plan, testTruth(), testStats(), DefaultCluster(1), 0, 10)
	for _, r := range runs[1:] {
		if r.DataRead != runs[0].DataRead || r.DataWritten != runs[0].DataWritten {
			t.Fatal("data volumes varied across A/A runs")
		}
		if r.Vertices != runs[0].Vertices {
			t.Fatal("vertices varied across A/A runs")
		}
	}
}

func TestLatencyVarianceExceedsPNHoursVariance(t *testing.T) {
	plan := compilePlan(t)
	runs := RunN(plan, testTruth(), testStats(), DefaultCluster(7), 100, 30)
	var lat, pn []float64
	for _, r := range runs {
		lat = append(lat, r.LatencySec)
		pn = append(pn, r.PNHours)
	}
	cvLat := stats.CoefficientOfVariation(lat)
	cvPN := stats.CoefficientOfVariation(pn)
	if cvLat <= cvPN {
		t.Errorf("latency CV (%v) should exceed PNhours CV (%v)", cvLat, cvPN)
	}
	if cvPN > 0.10 {
		t.Errorf("PNhours CV = %v, want small", cvPN)
	}
	if cvLat < 0.05 {
		t.Errorf("latency CV = %v, want substantial", cvLat)
	}
}

func TestTruthSelectivityLookup(t *testing.T) {
	tr := testTruth()
	if got := tr.Selectivity("filter:(dur > 100)", 0.3); got != 0.4 {
		t.Errorf("known site = %v, want 0.4", got)
	}
	// Unknown sites: deterministic jitter of the heuristic.
	a := tr.Selectivity("filter:(x == 1)", 0.1)
	b := tr.Selectivity("filter:(x == 1)", 0.1)
	if a != b {
		t.Error("unknown-site jitter must be deterministic")
	}
	if a <= 0 || a > 1 {
		t.Errorf("selectivity out of range: %v", a)
	}
	c := tr.Selectivity("filter:(y == 2)", 0.1)
	if a == c {
		t.Error("different sites should jitter differently")
	}
}

func TestTruthBaseRowsDefault(t *testing.T) {
	tr := &Truth{}
	if got := tr.BaseRows("unknown"); got != 1e6 {
		t.Errorf("default base rows = %v", got)
	}
}

func TestBiggerDataMeansBiggerMetrics(t *testing.T) {
	plan := compilePlan(t)
	small := &Truth{Rows: map[string]float64{"data/logs.tsv": 1e5, "data/users.tsv": 1e4}, JitterSeed: 5}
	big := &Truth{Rows: map[string]float64{"data/logs.tsv": 1e7, "data/users.tsv": 1e6}, JitterSeed: 5}
	cl := DefaultCluster(3)
	ms := Run(plan, small, testStats(), cl, 1)
	mb := Run(plan, big, testStats(), cl, 1)
	if mb.DataRead <= ms.DataRead {
		t.Errorf("read: big=%v small=%v", mb.DataRead, ms.DataRead)
	}
	if mb.PNHours <= ms.PNHours {
		t.Errorf("pnhours: big=%v small=%v", mb.PNHours, ms.PNHours)
	}
}

func TestHiccupTailExists(t *testing.T) {
	plan := compilePlan(t)
	cl := DefaultCluster(11)
	cl.HiccupProb = 0.5
	cl.HiccupFactor = 10
	runs := RunN(plan, testTruth(), testStats(), cl, 0, 40)
	var lat []float64
	for _, r := range runs {
		lat = append(lat, r.LatencySec)
	}
	max := stats.Max(lat)
	med, _ := stats.Median(lat)
	if max < med*2 {
		t.Errorf("hiccups should create a heavy tail: max=%v median=%v", max, med)
	}
}

func TestPNHoursComponentsAddUp(t *testing.T) {
	plan := compilePlan(t)
	m := Run(plan, testTruth(), testStats(), DefaultCluster(1), 0)
	// PNhours must be at least the noise-free IO + vertex overhead.
	lower := (m.TotalIOSec + 0.9*m.TotalCPUSec) / 3600
	upper := (m.TotalIOSec + 1.5*m.TotalCPUSec + 1.0*float64(m.Vertices)) / 3600
	if m.PNHours < lower || m.PNHours > upper {
		t.Errorf("PNhours %v outside [%v, %v]", m.PNHours, lower, upper)
	}
	if math.IsNaN(m.PNHours) {
		t.Error("NaN PNhours")
	}
}

func TestRunNSeedsDiffer(t *testing.T) {
	plan := compilePlan(t)
	runs := RunN(plan, testTruth(), testStats(), DefaultCluster(5), 0, 5)
	distinct := make(map[float64]bool)
	for _, r := range runs {
		distinct[r.LatencySec] = true
	}
	if len(distinct) < 2 {
		t.Error("A/A runs should produce varying latencies")
	}
}
