// Package exec simulates distributed execution of physical plans on a
// SCOPE-like cluster. It produces the runtime metrics the paper's
// experiments are built on — latency, PNhours (total CPU + I/O time over
// all vertices), vertices count, DataRead and DataWritten — and models the
// cloud variability that makes latency a poor optimization target:
// stragglers and queueing noise hit the latency critical path hard, while
// PNhours stays comparatively stable because data volumes are
// deterministic (§5.1 of the paper).
package exec

import (
	"hash/fnv"
	"math"
	"math/rand"

	"qoadvisor/internal/optimizer"
)

// Metrics are the runtime statistics logged for one job execution.
type Metrics struct {
	LatencySec  float64
	PNHours     float64
	Vertices    int
	DataRead    float64 // bytes
	DataWritten float64 // bytes
	MaxMemory   float64 // bytes, max per-vertex working set
	AvgMemory   float64 // bytes, mean per-vertex working set
	TotalCPUSec float64
	TotalIOSec  float64
}

// Truth is the ground-truth cardinality environment: the real base-table
// sizes and the real per-site selectivities of a job instance. It
// implements optimizer.Environment, so the optimizer's own cardinality
// engine can be re-run under truth (the simulator's "actual" data flow).
type Truth struct {
	// Rows maps table path to true row count.
	Rows map[string]float64
	// Sel maps operator site keys to true selectivities/fractions.
	Sel map[string]float64
	// JitterSeed derives deterministic selectivity jitter for sites not
	// present in Sel (predicates synthesized by rewrites).
	JitterSeed int64
}

// BaseRows implements optimizer.Environment.
func (t *Truth) BaseRows(path string) float64 {
	if r, ok := t.Rows[path]; ok {
		return r
	}
	return 1e6
}

// Selectivity implements optimizer.Environment: known sites return their
// true value; unknown sites get the heuristic distorted by a deterministic
// per-site jitter, so even synthesized predicates behave consistently
// across recompilations.
func (t *Truth) Selectivity(site string, heuristic float64) float64 {
	if s, ok := t.Sel[site]; ok {
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	seed := int64(h.Sum64()) ^ t.JitterSeed
	rng := rand.New(rand.NewSource(seed))
	// Log-uniform distortion in [1/4, 4): true selectivities routinely
	// differ from estimates by multiples.
	factor := math.Exp((rng.Float64()*2 - 1) * math.Ln2 * 2)
	s := heuristic * factor
	if s > 1 {
		s = 1
	}
	if s < 1e-5 {
		s = 1e-5
	}
	return s
}

// Cluster models the execution environment and its variability.
type Cluster struct {
	// Seed is the cluster's base randomness seed; combined with the
	// per-run seed so A/A runs differ.
	Seed int64
	// StragglerSigma controls the lognormal per-stage straggler tail
	// multiplying stage latency.
	StragglerSigma float64
	// QueueSigma controls the global lognormal queueing/scheduling noise
	// on job latency.
	QueueSigma float64
	// CPUNoiseSigma controls the small lognormal noise on total CPU time
	// (and hence PNhours).
	CPUNoiseSigma float64
	// IONoiseSigma controls the bounded lognormal noise on total I/O
	// time: data volumes are constant across A/A runs, but disk and
	// network service times still vary a little.
	IONoiseSigma float64
	// HiccupProb is the probability that a run hits a cluster hiccup
	// multiplying latency by HiccupFactor (the >100% variance tail).
	HiccupProb   float64
	HiccupFactor float64
}

// DefaultCluster returns a cluster with variability calibrated to the
// paper's A/A observations: most jobs above 5% latency variance, fewer
// than half above 5% PNhours variance.
func DefaultCluster(seed int64) *Cluster {
	return &Cluster{
		Seed:           seed,
		StragglerSigma: 0.18,
		QueueSigma:     0.16,
		CPUNoiseSigma:  0.12,
		IONoiseSigma:   0.04,
		HiccupProb:     0.04,
		HiccupFactor:   2.5,
	}
}

// Simulated hardware constants (microseconds per row, bytes per second).
const (
	diskBytesPerSec = 110e6
	netBytesPerSec  = 16e6
	vertexStartupMs = 180.0
	perVertexCPUSec = 0.05 // scheduling + container overhead per vertex
)

// cpuMicrosPerRow returns the per-row CPU cost of a physical operator in
// microseconds. These "true" constants deliberately differ from the cost
// model's weights: the gap is the cost-model error the paper measures.
func cpuMicros(n *optimizer.PhysNode, inRows []float64, outRows float64) float64 {
	total := 0.0
	for _, r := range inRows {
		total += r
	}
	switch n.Op {
	case optimizer.PhysRowScan:
		return outRows * 0.18
	case optimizer.PhysColumnScan:
		return outRows * 0.28
	case optimizer.PhysIndexSeek:
		return outRows * 0.4
	case optimizer.PhysFilter:
		return total * 0.06
	case optimizer.PhysProject:
		return total * 0.05
	case optimizer.PhysHashJoin:
		build := 0.0
		if len(inRows) == 2 {
			build = inRows[1] * 0.5
		}
		return total*0.3 + build + outRows*0.2
	case optimizer.PhysMergeJoin:
		return total*0.45 + outRows*0.2
	case optimizer.PhysBroadcastJoin:
		build := 0.0
		if len(inRows) == 2 {
			// The build side is replicated into every partition.
			build = inRows[1] * 0.5 * float64(maxInt(n.Partitions, 1))
		}
		return inRows[0]*0.3 + build + outRows*0.2
	case optimizer.PhysNestedLoopJoin:
		if len(inRows) == 2 {
			return inRows[0] * inRows[1] * 0.002
		}
		return total * 0.3
	case optimizer.PhysHashAgg:
		return total*0.45 + outRows*0.2
	case optimizer.PhysStreamAgg:
		return total*(0.12+0.014*math.Log2(math.Max(total, 2))) + outRows*0.1
	case optimizer.PhysSort, optimizer.PhysTopNSort:
		c := total * 0.08 * math.Log2(math.Max(total, 2))
		if n.PackFactor > 0 && n.PackFactor != 1 {
			c *= n.PackFactor
		}
		return c
	case optimizer.PhysTopNHeap:
		return total * 0.12
	case optimizer.PhysConcatUnion:
		return total * 0.01
	case optimizer.PhysSortedUnion:
		return total * 0.2
	case optimizer.PhysExchange:
		c := total * 0.05
		if n.Compress {
			c = total * 0.22 // compression costs CPU
		}
		return c
	case optimizer.PhysReduce:
		return total * 1.2 // user-defined reducers are CPU heavy
	case optimizer.PhysProcess:
		return total * 0.6
	case optimizer.PhysOutput:
		return total * 0.05
	default:
		return total * 0.1
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ioBytes returns (read, written) bytes for a physical node given true
// cardinalities.
func ioBytes(n *optimizer.PhysNode, rows map[*optimizer.PhysNode]float64, truth *Truth) (read, written float64) {
	out := rows[n]
	width := float64(n.RowWidth)
	switch n.Op {
	case optimizer.PhysRowScan:
		base := truth.BaseRows(scanPath(n))
		w := float64(n.BaseWidth)
		if w == 0 {
			w = width
		}
		return base * w, 0
	case optimizer.PhysColumnScan:
		base := truth.BaseRows(scanPath(n))
		return base * width * 1.05, 0
	case optimizer.PhysIndexSeek:
		return out*width + 4096*float64(maxInt(n.Partitions, 1)), 0
	case optimizer.PhysExchange:
		if n.Fused {
			return 0, 0
		}
		in := 0.0
		for _, i := range n.Inputs {
			in += rows[i]
		}
		bytes := in * width
		if n.Exchange == optimizer.ExchangeBroadcast {
			bytes *= float64(maxInt(n.Partitions, 1))
		}
		if n.Compress {
			bytes *= 0.55
		}
		// Shuffled data is written by the producer and read by the
		// consumer.
		return bytes, bytes
	case optimizer.PhysOutput:
		return 0, out * width
	case optimizer.PhysSort, optimizer.PhysTopNSort:
		// External sorts spill a pass to disk.
		in := 0.0
		for _, i := range n.Inputs {
			in += rows[i]
		}
		spill := in * width * 0.5
		return spill, spill
	default:
		return 0, 0
	}
}

func scanPath(n *optimizer.PhysNode) string {
	if n.Logical != nil {
		return n.Logical.TablePath
	}
	return ""
}

// memoryBytes returns the per-vertex working set of an operator.
func memoryBytes(n *optimizer.PhysNode, rows map[*optimizer.PhysNode]float64) float64 {
	parts := float64(maxInt(n.Partitions, 1))
	width := float64(n.RowWidth)
	switch n.Op {
	case optimizer.PhysHashJoin:
		if len(n.Inputs) == 2 {
			return rows[n.Inputs[1]] * width / parts
		}
	case optimizer.PhysBroadcastJoin, optimizer.PhysNestedLoopJoin:
		if len(n.Inputs) == 2 {
			return rows[n.Inputs[1]] * width // full build copy per vertex
		}
	case optimizer.PhysHashAgg:
		return rows[n] * width / parts
	case optimizer.PhysSort, optimizer.PhysTopNSort:
		in := 0.0
		for _, i := range n.Inputs {
			in += rows[i]
		}
		return in * width / parts * 0.25
	}
	return 64 << 20 // baseline container working set
}

// Run executes the plan once against the truth environment and returns
// its metrics. runSeed distinguishes repeated executions: two runs with
// different seeds model an A/A pair.
func Run(plan *optimizer.Plan, truth *Truth, stats optimizer.StatsProvider, cluster *Cluster, runSeed int64) Metrics {
	rows := plan.Recardinalize(truth, stats)
	rng := rand.New(rand.NewSource(cluster.Seed*1e9 + runSeed))

	var m Metrics
	stageCPU := make(map[int]float64) // seconds
	stageIO := make(map[int]float64)  // seconds
	maxMem := 0.0
	sumMem := 0.0
	memCount := 0

	for _, n := range plan.Nodes() {
		if n.Fused {
			continue
		}
		var inRows []float64
		for _, in := range n.Inputs {
			inRows = append(inRows, rows[in])
		}
		out := rows[n]
		cpuSec := cpuMicros(n, inRows, out) / 1e6
		read, written := ioBytes(n, rows, truth)
		ioSec := read/diskBytesPerSec + written/netBytesPerSec

		m.DataRead += read
		m.DataWritten += written
		m.TotalCPUSec += cpuSec
		m.TotalIOSec += ioSec
		stageCPU[n.StageID] += cpuSec
		stageIO[n.StageID] += ioSec

		mem := memoryBytes(n, rows)
		if mem > maxMem {
			maxMem = mem
		}
		sumMem += mem
		memCount++
	}

	// Vertices: the compiled plan's stage parallelism.
	for _, s := range plan.Stages {
		m.Vertices += s.Partitions
	}

	// PNhours: total CPU + I/O over all vertices plus per-vertex
	// overhead. CPU gets small multiplicative noise; I/O is bounded
	// because data read and written stay constant across runs (§4.3).
	cpuNoise := math.Exp(rng.NormFloat64() * cluster.CPUNoiseSigma)
	ioNoise := math.Exp(rng.NormFloat64() * cluster.IONoiseSigma)
	totalSec := m.TotalCPUSec*cpuNoise + m.TotalIOSec*ioNoise + perVertexCPUSec*float64(m.Vertices)
	m.PNHours = totalSec / 3600

	// Latency: critical path over the stage DAG, with per-stage
	// straggler noise and global queueing noise.
	stageLatency := make(map[int]float64)
	for _, s := range plan.Stages {
		parts := float64(maxInt(s.Partitions, 1))
		work := (stageCPU[s.ID] + stageIO[s.ID]) / parts
		// The slowest of P vertices: lognormal straggler whose tail
		// grows with the fan-out.
		straggler := math.Exp(math.Abs(rng.NormFloat64()) * cluster.StragglerSigma * math.Sqrt(math.Log2(parts+1)))
		stageLatency[s.ID] = work*straggler + vertexStartupMs/1000
	}
	// Longest path: stages' InputIDs point upstream.
	depth := make(map[int]float64)
	var critical func(id int) float64
	critical = func(id int) float64 {
		if d, ok := depth[id]; ok {
			return d
		}
		depth[id] = 0 // guard cycles (none expected)
		best := 0.0
		var st *optimizer.Stage
		for _, s := range plan.Stages {
			if s.ID == id {
				st = s
				break
			}
		}
		if st != nil {
			for _, in := range st.InputIDs {
				if d := critical(in); d > best {
					best = d
				}
			}
			best += stageLatency[id]
		}
		depth[id] = best
		return best
	}
	longest := 0.0
	for _, s := range plan.Stages {
		if d := critical(s.ID); d > longest {
			longest = d
		}
	}
	queue := math.Exp(rng.NormFloat64() * cluster.QueueSigma)
	if rng.Float64() < cluster.HiccupProb {
		queue *= cluster.HiccupFactor
	}
	m.LatencySec = longest * queue

	m.MaxMemory = maxMem
	if memCount > 0 {
		m.AvgMemory = sumMem / float64(memCount)
	}
	return m
}

// RunN performs n A/A executions with distinct run seeds.
func RunN(plan *optimizer.Plan, truth *Truth, stats optimizer.StatsProvider, cluster *Cluster, baseSeed int64, n int) []Metrics {
	out := make([]Metrics, n)
	for i := 0; i < n; i++ {
		out[i] = Run(plan, truth, stats, cluster, baseSeed+int64(i)*7919)
	}
	return out
}
