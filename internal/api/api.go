// Package api defines the versioned wire protocol of QO-Advisor's
// online steering service: every request and response type the HTTP
// surface speaks, a structured error envelope with machine-readable
// codes, and the batch /v2 shapes. The package is the single contract
// shared by the server (internal/serve), the typed Go client
// (internal/api/client), the CLI, and the examples — it depends only on
// the standard library so any binary can embed it.
//
// Protocol versions:
//
//   - v1 — the original single-job surface (/v1/rank, /v1/reward,
//     /v1/hints, /v1/stats, /v1/model/snapshot). Stable; served as thin
//     adapters over the v2 handlers. Success shapes are unchanged from
//     the pre-versioned protocol; errors now use the structured
//     envelope.
//   - v2 — the batch-first surface (/v2/rank, /v2/reward, /v2/healthz,
//     /v2/stats). Every v2 response carries the hint-table generation
//     and the request ID assigned (or propagated) by the server.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Versions of the HTTP surface, as path prefixes.
const (
	V1 = "v1"
	V2 = "v2"
)

// Route paths. Clients should use these constants rather than spelling
// paths so protocol moves stay one-line changes.
const (
	RouteV1Rank     = "/v1/rank"
	RouteV1Reward   = "/v1/reward"
	RouteV1Hints    = "/v1/hints"
	RouteV1Stats    = "/v1/stats"
	RouteV1Snapshot = "/v1/model/snapshot"

	RouteV2Rank    = "/v2/rank"
	RouteV2Reward  = "/v2/reward"
	RouteV2Healthz = "/v2/healthz"
	RouteV2Stats   = "/v2/stats"
	RouteV2Version = "/v2/version"

	// RouteV2Quarantine is the drift-safeguard admin surface: GET lists
	// the durable quarantine table (any node), POST applies a manual
	// quarantine or restore (primary only; journaled like a detector
	// transition, so it replicates and survives restarts).
	RouteV2Quarantine = "/v2/quarantine"

	// RouteMetrics is the Prometheus text-format exposition endpoint.
	// Unversioned by convention: scrapers expect exactly "/metrics".
	RouteMetrics = "/metrics"

	// Replication surface (primary only). RouteV2WAL streams framed
	// journal records from ?from=<lsn> with a long-poll tail;
	// RouteV2WALSnapshot streams a checkpoint-consistent model snapshot
	// whose embedded watermark is where a follower starts tailing.
	RouteV2WAL         = "/v2/wal"
	RouteV2WALSnapshot = "/v2/wal/snapshot"

	// Audit surface (WAL-backed nodes, read-only). RouteV2AuditRecords
	// lists journal records matching filter query parameters;
	// RouteV2AuditDecision reconstructs one event's decision trace;
	// RouteV2AuditTemplate returns a template's steering history;
	// RouteV2AuditAsOf summarizes a point-in-time model reconstruction.
	RouteV2AuditRecords  = "/v2/audit/records"
	RouteV2AuditDecision = "/v2/audit/decision"
	RouteV2AuditTemplate = "/v2/audit/template"
	RouteV2AuditAsOf     = "/v2/audit/asof"

	// Flight-recorder surface (any node). RouteV2Traces queries the
	// tail-retained slow-trace ring as Chrome-trace JSON (filters:
	// ?route=&min_ms=&limit=). RouteV2Incidents lists captured
	// diagnostic bundles on GET and triggers a manual capture on POST;
	// one bundle is fetched at /v2/incidents/{id}, and ?file=<name>
	// streams a single bundle artifact (profiles, stats, traces).
	RouteV2Traces    = "/v2/traces"
	RouteV2Incidents = "/v2/incidents"
)

// RequestIDHeader carries the request ID on every instrumented route.
// Clients may set it to propagate their own correlation ID; the server
// echoes it back, or assigns one when absent.
const RequestIDHeader = "X-Request-Id"

// MaxRankBatch bounds the job count of one BatchRankRequest. Larger
// batches are rejected with CodeInvalidRequest rather than silently
// truncated.
const MaxRankBatch = 4096

// MaxRewardBatch bounds the event count of one BatchRewardRequest.
const MaxRewardBatch = 8192

// TemplateHash is a 64-bit job-template hash. On the wire it travels as
// a 16-digit hex string — 64-bit integers do not survive JSON number
// decoding in every client — matching the SIS exchange format.
type TemplateHash uint64

// MarshalJSON renders the hash as a zero-padded hex string.
func (h TemplateHash) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON accepts a hex string of up to 16 digits.
func (h *TemplateHash) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("api: templateHash must be a hex string, got %s", b)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("api: bad templateHash %q: want 64-bit hex", s)
	}
	*h = TemplateHash(v)
	return nil
}

// String renders the canonical wire form.
func (h TemplateHash) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// RankRequest is one steering query: "which rule flip for this job?".
// Span carries the job span's bit positions; RowCount and BytesRead are
// the coarse input-stream features of the paper's featurization.
type RankRequest struct {
	TemplateHash TemplateHash `json:"templateHash"`
	TemplateID   string       `json:"templateId,omitempty"`
	Span         []int        `json:"span"`
	RowCount     float64      `json:"rowCount,omitempty"`
	BytesRead    float64      `json:"bytesRead,omitempty"`
}

// UnmarshalJSON rejects a request whose templateHash field is absent: a
// client that silently drops it would otherwise collapse all its
// traffic onto template 0 and still receive plausible decisions. An
// explicit "0000000000000000" remains valid.
func (r *RankRequest) UnmarshalJSON(b []byte) error {
	type plain RankRequest
	aux := struct {
		*plain
		TemplateHash *TemplateHash `json:"templateHash"`
	}{plain: (*plain)(r)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	if aux.TemplateHash == nil {
		return fmt.Errorf("api: templateHash is required")
	}
	r.TemplateHash = *aux.TemplateHash
	return nil
}

// RankResponse is the steering decision. Source "hint" means the sharded
// cache had a validated hint for the template (the production fast path:
// no bandit call, no event logged). Source "bandit" means the learner
// picked an action and logged a rank event awaiting a reward.
type RankResponse struct {
	Source     string  `json:"source"`
	Flip       string  `json:"flip,omitempty"`
	NoOp       bool    `json:"noop"`
	EventID    string  `json:"eventId,omitempty"`
	Prob       float64 `json:"prob,omitempty"`
	Chosen     int     `json:"chosen,omitempty"`
	HintDay    int     `json:"hintDay,omitempty"`
	Generation uint64  `json:"generation"`
}

// Rank decision sources.
const (
	SourceHint   = "hint"
	SourceBandit = "bandit"
)

// BatchRankRequest is the /v2/rank payload: up to MaxRankBatch jobs
// steered in one call, fanned out over the server's worker pool.
type BatchRankRequest struct {
	Jobs []RankRequest `json:"jobs"`
}

// RankResult is one job's outcome inside a batch: either a decision or
// a per-job error (the batch itself still returns 200 — one malformed
// job must not void its neighbors' decisions).
type RankResult struct {
	RankResponse
	Error *Error `json:"error,omitempty"`
}

// BatchRankResponse answers /v2/rank. Results align index-for-index
// with the submitted jobs.
type BatchRankResponse struct {
	RequestID  string       `json:"requestId"`
	Generation uint64       `json:"generation"`
	Results    []RankResult `json:"results"`
}

// RewardEvent is one telemetry observation: the reward earned by a
// previously ranked event. Reward is a pointer so "field absent" is
// distinguishable from a legitimate 0.0 reward.
//
// TemplateHash, when present, attributes the reward to a job template
// for the drift safeguard — the only reward path that exists for
// hint-served decisions, which log no rank event and so have no
// EventID. An event may carry either or both: EventID feeds the
// learner, TemplateHash feeds drift detection. A template-only event
// is observed but not queued (it trains nothing).
type RewardEvent struct {
	EventID      string        `json:"eventId,omitempty"`
	Reward       *float64      `json:"reward"`
	TemplateHash *TemplateHash `json:"templateHash,omitempty"`
}

// RewardResponse answers /v1/reward.
type RewardResponse struct {
	Status string `json:"status"`
}

// BatchRewardRequest is the /v2/reward payload: a batch of telemetry
// events fed to the ingestion queue in one call.
type BatchRewardRequest struct {
	Events []RewardEvent `json:"events"`
}

// RewardRejection reports one event of a batch that was not queued,
// with the index it held in the request.
type RewardRejection struct {
	Index   int    `json:"index"`
	EventID string `json:"eventId"`
	Error   Error  `json:"error"`
}

// BatchRewardResponse answers /v2/reward. Queued counts events accepted
// into the ingestion queue; Rejected lists the rest with per-event
// errors. When nothing was queued and backpressure (CodeQueueFull) was
// among the rejection reasons, the response status is 503 so clients
// retry the whole batch (safe: no event was accepted, and other
// rejections re-reject deterministically); any partial acceptance
// returns 202.
type BatchRewardResponse struct {
	RequestID  string            `json:"requestId"`
	Generation uint64            `json:"generation"`
	Queued     int               `json:"queued"`
	Rejected   []RewardRejection `json:"rejected,omitempty"`
	// Observed counts events whose reward fed the drift safeguard
	// (events carrying a templateHash). Additive; 0 when detection is
	// off or no event carried a template.
	Observed int `json:"observed,omitempty"`
}

// QuarantineRequest is the POST /v2/quarantine payload: a manual
// safeguard override for one template.
type QuarantineRequest struct {
	TemplateHash TemplateHash `json:"templateHash"`
	// Action is "quarantine" (refuse the template's hint) or "restore"
	// (force it healthy, skipping probation).
	Action string `json:"action"`
}

// Quarantine actions.
const (
	QuarantineActionQuarantine = "quarantine"
	QuarantineActionRestore    = "restore"
)

// QuarantineResponse answers POST /v2/quarantine with the committed
// transition.
type QuarantineResponse struct {
	RequestID    string       `json:"requestId"`
	TemplateHash TemplateHash `json:"templateHash"`
	From         string       `json:"from"`
	To           string       `json:"to"`
}

// QuarantineEntry is one durable quarantine-table row.
type QuarantineEntry struct {
	TemplateHash TemplateHash `json:"templateHash"`
	State        string       `json:"state"`
}

// QuarantineListResponse answers GET /v2/quarantine: the node's
// durable quarantine table (identical on a caught-up follower).
type QuarantineListResponse struct {
	RequestID string            `json:"requestId"`
	Templates []QuarantineEntry `json:"templates"`
}

// HintsInstallResponse answers POST /v1/hints (the pipeline rollover).
type HintsInstallResponse struct {
	Installed  int    `json:"installed"`
	Day        int    `json:"day"`
	Generation uint64 `json:"generation"`
}

// SnapshotSaveResponse answers POST /v1/model/snapshot.
type SnapshotSaveResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// IngestStats is a point-in-time snapshot of the reward-ingestion
// counters, embedded in StatsResponse.
type IngestStats struct {
	Enqueued      int64 `json:"enqueued"`
	Dropped       int64 `json:"dropped"`
	Applied       int64 `json:"applied"`
	UnknownEvents int64 `json:"unknownEvents"`
	TrainRuns     int64 `json:"trainRuns"`
	TrainedEvents int64 `json:"trainedEvents"`
	QueueDepth    int   `json:"queueDepth"`
	QueueCap      int   `json:"queueCap"`
	// JournalErrors counts failed durable-journal writes (0 when the
	// server runs without a WAL).
	JournalErrors int64 `json:"journalErrors,omitempty"`
}

// WALStats is a point-in-time snapshot of the durable reward journal,
// embedded in StatsResponse when the server runs with a WAL. Mode is
// the group-commit durability discipline ("sync", "async", or "off");
// LSNs are journal positions (FirstLSN..LastLSN is the retained
// window, SyncedLSN the durable frontier).
type WALStats struct {
	Mode              string `json:"mode"`
	FirstLSN          uint64 `json:"firstLsn"`
	LastLSN           uint64 `json:"lastLsn"`
	SyncedLSN         uint64 `json:"syncedLsn"`
	Appends           int64  `json:"appends"`
	AppendedBytes     int64  `json:"appendedBytes"`
	Syncs             int64  `json:"syncs"`
	Segments          int    `json:"segments"`
	TruncatedSegments int64  `json:"truncatedSegments"`
	Checkpoints       int64  `json:"checkpoints"`
	LastCheckpointLSN uint64 `json:"lastCheckpointLsn"`
	LastCheckpointB   int64  `json:"lastCheckpointBytes"`
	LastCheckpointUs  int64  `json:"lastCheckpointMicros"`
}

// Replication roles, as reported in ReplicationStats.Role.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// ReplicationStats describes a node's place in a WAL-shipped serving
// cluster, embedded in StatsResponse. A primary (a WAL-backed server)
// reports how many followers are tailing it and how much log it has
// shipped; a follower reports how far it has applied, its lag behind
// the primary frontier it last observed, and the age of its last tail
// activity.
type ReplicationStats struct {
	Role string `json:"role"`
	// LeaderURL is where writes must go (set on followers; it is the
	// same URL carried by not_primary error envelopes).
	LeaderURL string `json:"leaderUrl,omitempty"`

	// Primary-side counters.
	Followers      int   `json:"followers"`
	StreamsServed  int64 `json:"streamsServed,omitempty"`
	RecordsShipped int64 `json:"recordsShipped,omitempty"`
	BytesShipped   int64 `json:"bytesShipped,omitempty"`

	// Follower-side counters. AppliedLSN is the newest journal record
	// applied locally; FrontierLSN is the newest durable primary LSN the
	// follower has observed; LagRecords is their difference.
	AppliedLSN     uint64  `json:"appliedLsn,omitempty"`
	FrontierLSN    uint64  `json:"frontierLsn,omitempty"`
	LagRecords     int64   `json:"lagRecords"`
	LastTailSec    float64 `json:"lastTailSec,omitempty"`
	RecordsApplied int64   `json:"recordsApplied,omitempty"`
	Reconnects     int64   `json:"reconnects,omitempty"`
	Resyncs        int64   `json:"resyncs,omitempty"`
}

// Hist carries a latency histogram's raw log₂ buckets on the wire
// (bucket i holds durations of nanosecond bit-length i, matching
// internal/obs). Percentile summaries cannot be merged across nodes —
// a p99 of p99s is not a fleet p99 — so /v2/stats additionally ships
// the buckets themselves, letting fleet tooling rebuild and merge the
// underlying distributions exactly.
type Hist struct {
	Count    uint64   `json:"count"`
	SumNanos uint64   `json:"sumNanos"`
	Buckets  []uint64 `json:"buckets"`
}

// RouteStats aggregates the middleware's per-route counters. The
// percentile fields are estimated from a log₂-bucketed latency
// histogram (one bucket spans a doubling, so estimates are exact to
// within one bucket); they are 0 until the route has served a request.
type RouteStats struct {
	Count       int64 `json:"count"`
	Errors      int64 `json:"errors"`
	TotalMicros int64 `json:"totalMicros"`
	MaxMicros   int64 `json:"maxMicros"`
	P50Micros   int64 `json:"p50Micros"`
	P90Micros   int64 `json:"p90Micros"`
	P99Micros   int64 `json:"p99Micros"`
	P999Micros  int64 `json:"p999Micros"`
	// Hist is the route's raw latency histogram (v2 only, additive),
	// the mergeable source the percentiles above were estimated from.
	Hist *Hist `json:"hist,omitempty"`
}

// LatencySummary reports one instrumented stage's latency
// distribution (percentiles estimated from log₂ buckets), embedded in
// StatsResponse.Stages under stable stage names (rank_hint_lookup,
// rank_bandit, reward_wal_append, reward_commit_wait,
// reward_queue_wait, reward_apply, wal_fsync, checkpoint,
// replication_apply).
type LatencySummary struct {
	Count      int64 `json:"count"`
	MeanMicros int64 `json:"meanMicros"`
	P50Micros  int64 `json:"p50Micros"`
	P90Micros  int64 `json:"p90Micros"`
	P99Micros  int64 `json:"p99Micros"`
	P999Micros int64 `json:"p999Micros"`
	// Hist is the stage's raw latency histogram (additive), the
	// mergeable source of the percentiles above.
	Hist *Hist `json:"hist,omitempty"`
}

// VersionInfo identifies a running node's build: module version,
// toolchain, and VCS metadata when the binary was built from a
// checkout. Embedded in StatsResponse and served by /v2/version.
type VersionInfo struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"buildTime,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// VersionResponse answers GET /v2/version.
type VersionResponse struct {
	VersionInfo
	RequestID string `json:"requestId,omitempty"`
}

// StatsResponse answers /v1/stats and /v2/stats. The v1 field set is
// unchanged from the pre-versioned protocol; v2 additionally populates
// RequestID and the per-route Routes metrics.
type StatsResponse struct {
	UptimeSec    float64     `json:"uptimeSec"`
	RankRequests int64       `json:"rankRequests"`
	HintHits     int64       `json:"hintHits"`
	BanditRanks  int64       `json:"banditRanks"`
	NoOps        int64       `json:"noops"`
	CacheSize    int         `json:"cacheSize"`
	CacheGen     uint64      `json:"cacheGeneration"`
	CacheShards  int         `json:"cacheShards"`
	BanditLog    int64       `json:"banditLogSize"`
	Ingest       IngestStats `json:"ingest"`
	// WAL is present when the server journals rewards durably.
	WAL *WALStats `json:"wal,omitempty"`
	// Replication is present on cluster nodes: a WAL-backed primary or a
	// log-tailing follower.
	Replication *ReplicationStats `json:"replication,omitempty"`

	RequestID string                `json:"requestId,omitempty"`
	Routes    map[string]RouteStats `json:"routes,omitempty"`
	// Stages reports per-stage latency distributions from the serving
	// path instrumentation (v2 only, additive).
	Stages map[string]LatencySummary `json:"stages,omitempty"`
	// Version identifies the node's build (v2 only, additive).
	Version *VersionInfo `json:"version,omitempty"`
	// Drift reports the drift-safeguard state (v2 only, additive; the
	// /v1/stats field set is unchanged).
	Drift *DriftStats `json:"drift,omitempty"`
	// Audit reports the journal-audit engine's counters (v2 only,
	// additive; present once an audit query has run on this node).
	Audit *AuditStats `json:"audit,omitempty"`
	// SLO reports the node's service-level objectives and their rolling
	// error-budget burn rates (v2 only, additive).
	SLO *SLOStats `json:"slo,omitempty"`
	// Traces reports the flight recorder's tail-retention counters
	// (v2 only, additive; present when retention is enabled).
	Traces *TraceStats `json:"traces,omitempty"`
	// Incidents reports the incident engine's trigger and capture
	// counters (v2 only, additive; present when -incident-dir is set).
	Incidents *IncidentStats `json:"incidents,omitempty"`
}

// TraceStats is the traces block of /v2/stats: the flight recorder's
// retention ring and the trace export arm's write-error count.
type TraceStats struct {
	// Retained / Capacity describe the ring's current occupancy.
	Retained int `json:"retained"`
	Capacity int `json:"capacity"`
	// RetainedTotal is the lifetime retention count; the per-reason
	// counters below sum to it.
	RetainedTotal   int64 `json:"retainedTotal"`
	RetainedSlow    int64 `json:"retainedSlow"`
	RetainedError   int64 `json:"retainedError"`
	RetainedSampled int64 `json:"retainedSampled"`
	// Evicted counts retained traces pushed out of the ring by newer
	// ones.
	Evicted int64 `json:"evicted"`
	// ThresholdMicros is the default slow-retention cutoff.
	ThresholdMicros int64 `json:"thresholdMicros"`
	// WriteErrors counts failed writes on the -trace-out export stream.
	WriteErrors int64 `json:"writeErrors"`
}

// TraceEvent is one span in Chrome trace-event format ("X" complete
// events; ts/dur in microseconds relative to the recorder's epoch).
// The field set matches what chrome://tracing and Perfetto load.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceMeta summarizes one retained trace in a /v2/traces answer.
type TraceMeta struct {
	Seq       uint64  `json:"seq"`
	Route     string  `json:"route"`
	RequestID string  `json:"requestId,omitempty"`
	Reason    string  `json:"reason"`
	Status    int     `json:"status,omitempty"`
	StartUnix float64 `json:"startUnixSec"`
	DurMicros int64   `json:"durMicros"`
	Events    int     `json:"events"`
}

// TracesResponse answers GET /v2/traces. TraceEvents uses the Chrome
// trace-event object form — the whole response body loads directly in
// chrome://tracing or Perfetto (extra keys are ignored there); each
// retained trace renders as its own process (pid = retention seq).
type TracesResponse struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	Traces      []TraceMeta  `json:"traces"`
	RequestID   string       `json:"requestId,omitempty"`
}

// IncidentStats is the incidents block of /v2/stats.
type IncidentStats struct {
	Enabled bool `json:"enabled"`
	// Count is the number of bundles on disk (including ones found at
	// startup from earlier runs).
	Count int64 `json:"count"`
	// Triggered / Captured / Suppressed: trigger firings, bundles
	// actually written, and firings swallowed by the cooldown.
	Triggered  int64 `json:"triggered"`
	Captured   int64 `json:"captured"`
	Suppressed int64 `json:"suppressed"`
	// CaptureErrors counts bundle artifacts that failed to write.
	CaptureErrors int64   `json:"captureErrors"`
	BurnThreshold float64 `json:"burnThreshold"`
	CooldownSec   float64 `json:"cooldownSec"`
	// LastAgeSec is the age of the newest bundle (absent before the
	// first capture).
	LastAgeSec float64 `json:"lastAgeSec,omitempty"`
	// LastCaptureMicros is the wall time the newest capture took.
	LastCaptureMicros int64  `json:"lastCaptureMicros,omitempty"`
	LastReason        string `json:"lastReason,omitempty"`
	LastID            string `json:"lastId,omitempty"`
}

// IncidentFile is one artifact inside a captured bundle.
type IncidentFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// IncidentMeta describes one captured diagnostic bundle (the content
// of its meta.json, which doubles as the listing entry).
type IncidentMeta struct {
	ID string `json:"id"`
	// Reason is the trigger: "burn", "quarantine", "wal", or "manual".
	Reason string `json:"reason"`
	// Detail carries trigger context (objective name and burn rate,
	// template hash, journal error count...).
	Detail   string  `json:"detail,omitempty"`
	UnixNano int64   `json:"unixNano"`
	Time     string  `json:"time"`
	BurnRate float64 `json:"burnRate,omitempty"`
	// CaptureMicros is the wall time the capture took.
	CaptureMicros int64          `json:"captureMicros,omitempty"`
	Files         []IncidentFile `json:"files,omitempty"`
}

// IncidentsResponse answers GET /v2/incidents (newest first).
type IncidentsResponse struct {
	Enabled   bool           `json:"enabled"`
	Incidents []IncidentMeta `json:"incidents"`
	RequestID string         `json:"requestId,omitempty"`
}

// IncidentResponse answers GET /v2/incidents/{id} and POST
// /v2/incidents (manual capture): one bundle's metadata, re-read from
// the bundle's meta.json so a listed-but-deleted bundle 404s.
type IncidentResponse struct {
	Incident  IncidentMeta `json:"incident"`
	RequestID string       `json:"requestId,omitempty"`
}

// SLOWindowStats is one objective's state over one rolling window.
type SLOWindowStats struct {
	// Window is the rolling window ("1m", "5m", "30m").
	Window string `json:"window"`
	// Ops is the operations observed inside the window.
	Ops float64 `json:"ops"`
	// Compliance is the achieved good fraction (1 with no traffic).
	Compliance float64 `json:"compliance"`
	// BurnRate is the error rate divided by the budgeted error rate:
	// 1.0 spends the budget exactly, >1 burns it faster.
	BurnRate float64 `json:"burnRate"`
	// BudgetRemaining is the unspent fraction of the window's error
	// budget (negative once overspent).
	BudgetRemaining float64 `json:"budgetRemaining"`
}

// SLOObjectiveStats is one declared objective with its multi-window
// burn-rate report.
type SLOObjectiveStats struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target"`
	// ThresholdMicros is the latency bound of a latency objective.
	ThresholdMicros int64            `json:"thresholdMicros,omitempty"`
	Windows         []SLOWindowStats `json:"windows"`
}

// SLOStats is the slo block of /v2/stats.
type SLOStats struct {
	Objectives []SLOObjectiveStats `json:"objectives"`
}

// AuditStats is the audit block of /v2/stats: cumulative engine
// counters across every query served since the engine was opened.
type AuditStats struct {
	Queries         int64 `json:"queries"`
	SegmentsScanned int64 `json:"segmentsScanned"`
	SegmentsSkipped int64 `json:"segmentsSkipped"`
	RecordsScanned  int64 `json:"recordsScanned"`
	SidecarsBuilt   int64 `json:"sidecarsBuilt"`
	SidecarsLoaded  int64 `json:"sidecarsLoaded"`
	SidecarsRebuilt int64 `json:"sidecarsRebuilt"`
}

// AuditScanStats reports one audit query's iterator counters: how much
// of the journal was actually read versus pruned, and which filter
// clause did the pruning. Clients use it to verify index effectiveness
// (skips are attributed, so a misbehaving sidecar shows up as a
// scanned-not-skipped segment, never as a wrong answer).
type AuditScanStats struct {
	SegmentsTotal   int64 `json:"segmentsTotal"`
	SegmentsScanned int64 `json:"segmentsScanned"`
	SegmentsSkipped int64 `json:"segmentsSkipped"`
	SkippedByLSN    int64 `json:"skippedByLsn,omitempty"`
	SkippedByTime   int64 `json:"skippedByTime,omitempty"`
	SkippedByTag    int64 `json:"skippedByTag,omitempty"`
	SkippedByKey    int64 `json:"skippedByKey,omitempty"`
	RecordsScanned  int64 `json:"recordsScanned"`
	RecordsMatched  int64 `json:"recordsMatched"`
	// Truncated reports that the scan stopped at a torn tail (the
	// journal's crash artifact) — results cover the intact prefix.
	Truncated bool `json:"truncated,omitempty"`
}

// AuditRecord is one journal record in an audit listing.
type AuditRecord struct {
	LSN     uint64 `json:"lsn"`
	Type    string `json:"type"`
	Summary string `json:"summary"`
	// EventID is set for rank records.
	EventID string `json:"eventId,omitempty"`
}

// AuditRecordsResponse answers GET /v2/audit/records.
type AuditRecordsResponse struct {
	Records []AuditRecord  `json:"records"`
	Scan    AuditScanStats `json:"scan"`
	// Limited reports that the listing stopped at the row limit; narrow
	// the filters or page with fromLsn to see the rest.
	Limited   bool   `json:"limited,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

// AuditRewardRef is one reward observation in a decision trace.
type AuditRewardRef struct {
	LSN     uint64  `json:"lsn"`
	Value   float64 `json:"value"`
	EventID string  `json:"eventId,omitempty"`
}

// AuditDecisionResponse answers GET /v2/audit/decision: the journaled
// history of one rank decision.
type AuditDecisionResponse struct {
	EventID string `json:"eventId"`
	// Found is false when the journal holds no rank record for the
	// event (never ranked, or compacted away by a checkpoint).
	Found   bool             `json:"found"`
	RankLSN uint64           `json:"rankLsn,omitempty"`
	Prob    float64          `json:"prob,omitempty"`
	CtxIDs  int              `json:"ctxFeatures,omitempty"`
	ActIDs  int              `json:"actFeatures,omitempty"`
	Rewards []AuditRewardRef `json:"rewards,omitempty"`
	// TrainedAtLSN is the first training boundary after the last
	// reward — when the rewards became weight updates (0: none logged).
	TrainedAtLSN uint64 `json:"trainedAtLsn,omitempty"`
	// Lineage lists rewards (newest first, capped) whose events share
	// action features with this decision and were applied before it —
	// the observations behind the weights it was scored with.
	Lineage          []AuditRewardRef `json:"lineage,omitempty"`
	LineageTruncated bool             `json:"lineageTruncated,omitempty"`
	Scan             AuditScanStats   `json:"scan"`
	RequestID        string           `json:"requestId,omitempty"`
}

// AuditTemplateEvent is one change in a template's steering history.
type AuditTemplateEvent struct {
	LSN uint64 `json:"lsn"`
	// Kind is "hint", "hint_removed", "quarantine", or
	// "quarantine_cleared".
	Kind string `json:"kind"`
	Flip string `json:"flip,omitempty"`
	Day  int    `json:"day,omitempty"`
	Gen  uint64 `json:"generation,omitempty"`
	// State is the drift state name for quarantine transitions.
	State string `json:"state,omitempty"`
	// Snapshot marks a checkpoint re-journal rather than a transition.
	Snapshot bool `json:"snapshot,omitempty"`
}

// AuditTemplateResponse answers GET /v2/audit/template.
type AuditTemplateResponse struct {
	TemplateHash TemplateHash         `json:"templateHash"`
	Events       []AuditTemplateEvent `json:"events"`
	// Rollovers/QuarantineRecords count the journal records inspected
	// (each carries a whole table; only changes produce Events).
	Rollovers         int64          `json:"rollovers"`
	QuarantineRecords int64          `json:"quarantineRecords"`
	Scan              AuditScanStats `json:"scan"`
	RequestID         string         `json:"requestId,omitempty"`
}

// AuditReplayStats summarizes what the journal suffix contributed to a
// point-in-time reconstruction.
type AuditReplayStats struct {
	Records       int64 `json:"records"`
	Ranks         int64 `json:"ranks"`
	Rewards       int64 `json:"rewards"`
	TrainMarks    int64 `json:"trainMarks"`
	TrainRuns     int64 `json:"trainRuns"`
	TrainedEvents int64 `json:"trainedEvents"`
}

// AuditAsOfResponse answers GET /v2/audit/asof: a summary of the model
// state reconstructed as of an LSN. The snapshot itself is identified
// by size and digest (byte-identical to a live checkpoint taken at the
// same LSN); the full bytes are an offline `qoserved -audit asof`
// operation, not an HTTP payload.
type AuditAsOfResponse struct {
	LSN            uint64 `json:"lsn"`
	SnapshotBytes  int    `json:"snapshotBytes"`
	SnapshotSHA256 string `json:"snapshotSha256"`
	// SnapshotSeeded/FromLSN report whether a checkpoint seeded the
	// replay and from which watermark.
	SnapshotSeeded bool             `json:"snapshotSeeded"`
	FromLSN        uint64           `json:"fromLsn,omitempty"`
	Replay         AuditReplayStats `json:"replay"`
	HintGen        uint64           `json:"hintGeneration,omitempty"`
	Hints          int              `json:"hints,omitempty"`
	Quarantined    int              `json:"quarantined,omitempty"`
	Scan           AuditScanStats   `json:"scan"`
	RequestID      string           `json:"requestId,omitempty"`
}

// DriftTemplateStats is one template's drift view: its state-machine
// position and (on the detecting primary) its streaming statistics.
type DriftTemplateStats struct {
	TemplateHash TemplateHash `json:"templateHash"`
	State        string       `json:"state"`
	Score        float64      `json:"score,omitempty"`
	FastMean     float64      `json:"fastMean,omitempty"`
	SlowMean     float64      `json:"slowMean,omitempty"`
	Observations int64        `json:"observations,omitempty"`
}

// DriftStats is the drift-safeguard block of /v2/stats. Enabled is
// true only on a node running detection (a primary with -drift);
// enforcement counters (BlockedRanks, QuarantinedNow) are live on
// every node because the quarantine table replicates.
type DriftStats struct {
	Enabled        bool  `json:"enabled"`
	Tracked        int   `json:"tracked,omitempty"`
	Observations   int64 `json:"observations,omitempty"`
	SketchGated    int64 `json:"sketchGated,omitempty"`
	Evictions      int64 `json:"evictions,omitempty"`
	SketchBytes    int   `json:"sketchBytes,omitempty"`
	Suspects       int   `json:"suspects,omitempty"`
	QuarantinedNow int   `json:"quarantinedNow"`
	ProbationNow   int   `json:"probationNow"`
	BlockedRanks   int64 `json:"blockedRanks"`
	Transitions    int64 `json:"transitions"`
	Quarantines    int64 `json:"quarantines"`
	Probations     int64 `json:"probations"`
	Restores       int64 `json:"restores"`
	Manual         int64 `json:"manualTransitions,omitempty"`
	JournalErrs    int64 `json:"journalErrors,omitempty"`
	// Templates lists non-healthy templates (every node) plus the
	// worst-scoring tracked ones (detecting primary only).
	Templates []DriftTemplateStats `json:"templates,omitempty"`
}

// HealthResponse answers /v2/healthz: a cheap liveness probe carrying
// the serving generation and queue depth so load balancers and rollover
// tooling can gate on it without the full stats payload.
type HealthResponse struct {
	Status     string  `json:"status"`
	RequestID  string  `json:"requestId,omitempty"`
	Generation uint64  `json:"generation"`
	UptimeSec  float64 `json:"uptimeSec"`
	Hints      int     `json:"hints"`
	QueueDepth int     `json:"queueDepth"`
	QueueCap   int     `json:"queueCap"`
}

// Health Status values. A follower whose replication tail has gone
// stale reports HealthDegraded (served with HTTP 503) so load
// balancers stop routing reads to a replica serving outdated state.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// Machine-readable error codes. Codes are the stable contract — clients
// branch on Code, never on Message text.
const (
	// CodeMethodNotAllowed: the route exists but not for this verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such route in either protocol version.
	CodeNotFound = "not_found"
	// CodeInvalidJSON: the body failed JSON decoding.
	CodeInvalidJSON = "invalid_json"
	// CodeInvalidRequest: well-formed JSON, semantically invalid
	// (empty span, span bit out of range, empty batch, batch too
	// large, missing required fields).
	CodeInvalidRequest = "invalid_request"
	// CodeBodyTooLarge: the body exceeded the route's size cap.
	CodeBodyTooLarge = "body_too_large"
	// CodeInvalidReward: the reward value is NaN or ±Inf — accepted, it
	// would poison the bandit weights and the drift sketches.
	CodeInvalidReward = "invalid_reward"
	// CodeUnknownEvent: the reward names no logged rank event (never
	// ranked, evicted, or already trained).
	CodeUnknownEvent = "unknown_event"
	// CodeQueueFull: the reward-ingestion queue is saturated; retry.
	CodeQueueFull = "queue_full"
	// CodeValidationFailed: a hint rollover failed SIS validation.
	CodeValidationFailed = "validation_failed"
	// CodeSnapshotUnconfigured: POST snapshot with no path configured.
	CodeSnapshotUnconfigured = "snapshot_unconfigured"
	// CodeNotPrimary: the request mutates state but this node is a
	// read-only follower. The envelope's Leader field carries the
	// primary's base URL; clients re-issue the write there.
	CodeNotPrimary = "not_primary"
	// CodeWALDisabled: a replication route on a server that runs without
	// a write-ahead log (no -wal-dir); there is nothing to ship.
	CodeWALDisabled = "wal_disabled"
	// CodeWALGap: the requested resume LSN predates the oldest retained
	// journal record (snapshot compaction removed it). The follower must
	// re-bootstrap from /v2/wal/snapshot.
	CodeWALGap = "wal_gap"
	// CodeIncidentsDisabled: an incident-capture request on a node
	// running without -incident-dir; there is nowhere to write bundles.
	CodeIncidentsDisabled = "incidents_disabled"
	// CodeDegraded: synthesized by the typed client when a health probe
	// answers 503 with a HealthResponse body (a follower whose
	// replication tail has gone stale). The server deliberately ships
	// the health body — not an envelope — so LB checks act on the
	// status code while the decoded response still carries the
	// diagnosis; it never appears on the wire as an envelope code.
	CodeDegraded = "degraded"
	// CodeInternal: the server failed; the request may be retried.
	CodeInternal = "internal"
)

// Error is the structured error envelope's payload. It implements the
// error interface so client methods can return it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Leader carries the primary's base URL on not_primary errors so a
	// client can chase the redirect without a discovery round-trip.
	Leader string `json:"leader,omitempty"`
	// HTTPStatus is the transport status the error traveled with. It is
	// not serialized; the client fills it in for callers that want to
	// branch on status rather than code.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds an *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// NotPrimary builds the write-rejection envelope a follower returns,
// carrying the leader URL writes must be re-issued against.
func NotPrimary(leader string) *Error {
	return &Error{
		Code:    CodeNotPrimary,
		Message: "this node is a read-only follower; send writes to the primary",
		Leader:  leader,
	}
}

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Error     Error  `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

// StatusForCode maps an error code to its canonical HTTP status. The
// server uses it when writing envelopes so code→status stays consistent
// across routes and versions.
func StatusForCode(code string) int {
	switch code {
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeInvalidJSON, CodeInvalidRequest, CodeValidationFailed, CodeInvalidReward:
		return http.StatusBadRequest
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnknownEvent, CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull, CodeDegraded:
		return http.StatusServiceUnavailable
	case CodeSnapshotUnconfigured, CodeWALDisabled, CodeIncidentsDisabled:
		return http.StatusConflict
	case CodeNotPrimary:
		return http.StatusMisdirectedRequest
	case CodeWALGap:
		return http.StatusGone
	default:
		return http.StatusInternalServerError
	}
}
