package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// TestAPIConformanceClientEndToEnd drives every client method against a
// real steering server: install hints, health, batch rank, reward (v1
// and v2 batch), stats, snapshot.
func TestAPIConformanceClientEndToEnd(t *testing.T) {
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 17, TrainEvery: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Rollover: upload a hint file through the typed client.
	var buf bytes.Buffer
	if err := sis.Serialize(&buf, sis.File{Day: 4, Hints: []sis.Hint{
		{TemplateHash: 0x99, TemplateID: "T9", Flip: cat.FlipFor(47), Day: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	install, err := c.InstallHints(ctx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if install.Installed != 1 || install.Generation != 1 {
		t.Fatalf("install = %+v", install)
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != api.HealthOK || health.Generation != 1 || health.Hints != 1 {
		t.Fatalf("health = %+v", health)
	}

	// Batch rank: one hint hit, one bandit decision.
	batch, err := c.RankBatch(ctx, []api.RankRequest{
		{TemplateHash: 0x99, Span: []int{47}},
		{TemplateHash: 0x100, Span: []int{12, 47}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Generation != 1 {
		t.Fatalf("batch = %+v", batch)
	}
	if batch.Results[0].Source != api.SourceHint {
		t.Errorf("result 0 = %+v, want hint", batch.Results[0])
	}
	ev := batch.Results[1]
	if ev.Source != api.SourceBandit || ev.EventID == "" {
		t.Fatalf("result 1 = %+v, want bandit event", ev)
	}

	// v1 reward through the client, then a v2 batch with one unknown.
	if err := c.Reward(ctx, ev.EventID, 1.2); err != nil {
		t.Fatal(err)
	}
	val := 0.5
	rb, err := c.RewardBatch(ctx, []api.RewardEvent{
		{EventID: ev.EventID, Reward: &val},
		{EventID: "ev-unknown", Reward: &val},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Queued != 1 || len(rb.Rejected) != 1 || rb.Rejected[0].Error.Code != api.CodeUnknownEvent {
		t.Fatalf("reward batch = %+v", rb)
	}
	srv.Ingestor().Drain()

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HintHits != 1 || stats.BanditRanks != 1 || stats.Ingest.Applied != 2 {
		t.Errorf("stats = %+v, want 1 hint hit, 1 bandit rank, 2 applied", stats)
	}
	if stats.Routes[api.RouteV2Rank].Count != 1 {
		t.Errorf("route metrics = %+v, want one v2 rank call", stats.Routes[api.RouteV2Rank])
	}

	// Snapshot streams a loadable model.
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := bandit.Load(snap, 1); err != nil {
		t.Fatalf("snapshot not loadable: %v", err)
	}
}

func TestClientTypedError(t *testing.T) {
	srv := serve.New(serve.Config{Seed: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)

	_, err := c.Rank(context.Background(), api.RankRequest{TemplateHash: 1, Span: []int{}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %T %v, want *api.Error", err, err)
	}
	if apiErr.Code != api.CodeInvalidRequest || apiErr.HTTPStatus != http.StatusBadRequest {
		t.Errorf("error = %+v, want invalid_request / 400", apiErr)
	}
}

func TestClientRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: *api.Errorf(api.CodeQueueFull, "full")})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.RewardResponse{Status: "queued"})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3, time.Millisecond))
	if err := c.Reward(context.Background(), "ev1", 1.0); err != nil {
		t.Fatalf("reward after retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (2 x 503 + success)", calls.Load())
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: *api.Errorf(api.CodeQueueFull, "full")})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(2, time.Millisecond))
	err := c.Reward(context.Background(), "ev1", 1.0)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull {
		t.Fatalf("error = %v, want queue_full after exhausted retries", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (initial + 2 retries)", calls.Load())
	}
}

// A 503 that is NOT queue backpressure — a degraded follower's
// /v2/healthz answers 503 with a HealthResponse body, no error
// envelope — must fail immediately (re-probing a permanently stale
// node burns the backoff budget a cluster rotation could have spent
// failing over to a healthy one) and must still hand the decoded
// health body to the caller: the degraded node's generation, hints,
// and uptime are exactly what an operator probes it for.
func TestClientDoesNotRetryDegraded503(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.HealthResponse{Status: api.HealthDegraded, Generation: 7, Hints: 3})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3, time.Millisecond))
	resp, err := c.Health(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeDegraded || apiErr.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("error = %v, want degraded *api.Error with HTTP 503", err)
	}
	if resp.Status != api.HealthDegraded || resp.Generation != 7 || resp.Hints != 3 {
		t.Errorf("degraded body not decoded: %+v", resp)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (degraded healthz is not retryable)", calls.Load())
	}
}

func TestRankAllChunksBatches(t *testing.T) {
	var batchSizes []int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchRankRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		batchSizes = append(batchSizes, len(req.Jobs))
		resp := api.BatchRankResponse{Results: make([]api.RankResult, len(req.Jobs))}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	jobs := make([]api.RankRequest, api.MaxRankBatch+5)
	results, err := client.New(ts.URL).RankAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Errorf("results = %d, want %d", len(results), len(jobs))
	}
	if len(batchSizes) != 2 || batchSizes[0] != api.MaxRankBatch || batchSizes[1] != 5 {
		t.Errorf("batch sizes = %v, want [%d 5]", batchSizes, api.MaxRankBatch)
	}
}

// TestClientWALStatsPassthrough pins the durable-journal fields of the
// stats payload through the typed client: a WAL-backed server reports
// its sync mode, journal positions, and checkpoint counters in
// /v2/stats, and a server without a WAL omits the block entirely.
func TestClientWALStatsPassthrough(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	srv := serve.New(serve.Config{Seed: 4, TrainEvery: 4, WAL: j})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Rank + reward so the journal has records, then checkpoint.
	r, err := cl.Rank(ctx, api.RankRequest{TemplateHash: 1, Span: []int{3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Reward(ctx, r.EventID, 1.0); err != nil {
		t.Fatal(err)
	}
	srv.Ingestor().Drain()
	if _, err := srv.Checkpoint(dir + "/model.snap"); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WAL == nil {
		t.Fatal("WAL stats missing from /v2/stats on a journaled server")
	}
	if stats.WAL.Mode != "sync" {
		t.Errorf("WAL mode = %q, want sync", stats.WAL.Mode)
	}
	if stats.WAL.LastLSN == 0 || stats.WAL.Appends == 0 {
		t.Errorf("journal looks empty after traffic: %+v", stats.WAL)
	}
	if stats.WAL.SyncedLSN != stats.WAL.LastLSN {
		t.Errorf("sync mode left unsynced tail: synced %d, last %d", stats.WAL.SyncedLSN, stats.WAL.LastLSN)
	}
	if stats.WAL.Checkpoints != 1 || stats.WAL.LastCheckpointLSN == 0 {
		t.Errorf("checkpoint counters = %+v", stats.WAL)
	}
	if stats.Ingest.JournalErrors != 0 {
		t.Errorf("JournalErrors = %d on a healthy disk", stats.Ingest.JournalErrors)
	}

	// No WAL: the block is omitted (omitempty pointer).
	srv2 := serve.New(serve.Config{Seed: 5})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	stats2, err := client.New(ts2.URL).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.WAL != nil {
		t.Errorf("WAL stats present on an in-memory server: %+v", stats2.WAL)
	}
}
