package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"qoadvisor/internal/api"
	"qoadvisor/internal/par"
)

// Cluster is the multi-endpoint client for a replicated steering
// deployment: reads (rank, health, stats) fan out round-robin across
// every node — followers serve them from their local replica — and
// fail over to the next node on transport faults; writes (rewards,
// hint rollovers, snapshot saves) are sent to the current leader
// guess and chase the not_primary redirect when the guess is stale,
// learning the real leader from the error envelope's leader URL.
//
// Cluster is safe for concurrent use. It assumes the follower serving
// model: replicas are read-only and eventually consistent (bounded by
// the primary's group-commit window plus shipping latency), so a read
// may observe a hint generation one step behind a write just issued —
// the same contract a load balancer in front of the fleet would give.
type Cluster struct {
	opts []Option

	mu      sync.RWMutex
	clients map[string]*Client
	order   []string // read rotation, as given (plus learned leaders)
	leader  string

	rr atomic.Uint64

	// maxLeaderHops bounds redirect chasing so two nodes pointing at
	// each other cannot loop a write forever.
	maxLeaderHops int
}

// NewCluster builds a cluster client over one or more node base URLs.
// The first endpoint is the initial leader guess; every endpoint
// serves reads. Options apply to each per-node client.
func NewCluster(endpoints []string, opts ...Option) (*Cluster, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("client: cluster needs at least one endpoint")
	}
	c := &Cluster{
		opts:          opts,
		clients:       make(map[string]*Client, len(endpoints)),
		leader:        endpoints[0],
		maxLeaderHops: 3,
	}
	for _, ep := range endpoints {
		if _, dup := c.clients[ep]; dup {
			continue
		}
		c.clients[ep] = New(ep, opts...)
		c.order = append(c.order, ep)
	}
	return c, nil
}

// Endpoints returns the node URLs currently in the read rotation.
func (c *Cluster) Endpoints() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Leader returns the current leader guess (updated by redirects).
func (c *Cluster) Leader() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.leader
}

// client returns (creating if needed) the per-node client for base.
func (c *Cluster) client(base string) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.clients[base]
	if !ok {
		cl = New(base, c.opts...)
		c.clients[base] = cl
		c.order = append(c.order, base)
	}
	return cl
}

// readRotation returns the node order for one read: round-robin start,
// then the rest as fallbacks.
func (c *Cluster) readRotation() []*Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.order)
	start := int(c.rr.Add(1)-1) % n
	out := make([]*Client, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.clients[c.order[(start+i)%n]])
	}
	return out
}

// read runs fn against nodes in rotation order until one succeeds.
// Typed protocol errors (an *api.Error) are returned immediately — the
// request itself is wrong and every node would reject it the same way;
// transport faults (connection refused, timeouts, missing envelopes)
// and node-specific conditions (internal faults, a degraded follower's
// health probe) fail over to the next node.
func (c *Cluster) read(fn func(*Client) error) error {
	var lastErr error
	for _, cl := range c.readRotation() {
		err := fn(cl)
		if err == nil {
			return nil
		}
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code != api.CodeInternal && apiErr.Code != api.CodeDegraded {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("client: every cluster node failed: %w", lastErr)
}

// write runs fn against the leader guess, following not_primary
// redirects (learning the leader as it goes, up to maxLeaderHops) and
// failing over to other known endpoints on transport faults — a dead
// leader guess must not fail a write while a healthy follower could
// have redirected us to the live primary. Typed protocol rejections
// other than internal faults return immediately: every node would
// reject the request the same way.
func (c *Cluster) write(fn func(*Client) error) error {
	base := c.Leader()
	tried := make(map[string]bool)
	redirects := 0
	var lastErr error
	failover := func(err error) error {
		tried[base] = true
		lastErr = err
		base = ""
		for _, ep := range c.Endpoints() {
			if !tried[ep] {
				base = ep
				break
			}
		}
		if base == "" {
			return fmt.Errorf("client: write failed on every known endpoint: %w", lastErr)
		}
		return nil
	}
	for {
		err := fn(c.client(base))
		var apiErr *api.Error
		switch {
		case err == nil:
			return nil
		case errors.As(err, &apiErr) && apiErr.Code == api.CodeNotPrimary:
			if apiErr.Leader == "" {
				// A follower that doesn't know its leader: treat like an
				// unusable node and try the other known endpoints — one of
				// them may be (or name) the primary.
				if ferr := failover(err); ferr != nil {
					return ferr
				}
				continue
			}
			if redirects >= c.maxLeaderHops {
				return fmt.Errorf("client: leader chase exceeded %d hops (last redirect to %s): %w",
					c.maxLeaderHops, apiErr.Leader, err)
			}
			redirects++
			base = apiErr.Leader
			c.mu.Lock()
			c.leader = base
			c.mu.Unlock()
		case errors.As(err, &apiErr) && apiErr.Code != api.CodeInternal:
			return err
		default:
			if ferr := failover(err); ferr != nil {
				return ferr
			}
		}
	}
}

// --- reads (fan across all nodes) ---

// Rank steers one job on whichever node the rotation picks.
func (c *Cluster) Rank(ctx context.Context, job api.RankRequest) (api.RankResponse, error) {
	var out api.RankResponse
	err := c.read(func(cl *Client) error {
		var rerr error
		out, rerr = cl.Rank(ctx, job)
		return rerr
	})
	return out, err
}

// RankBatch steers one batch on one node of the rotation.
func (c *Cluster) RankBatch(ctx context.Context, jobs []api.RankRequest) (api.BatchRankResponse, error) {
	var out api.BatchRankResponse
	err := c.read(func(cl *Client) error {
		var rerr error
		out, rerr = cl.RankBatch(ctx, jobs)
		return rerr
	})
	return out, err
}

// RankAll steers a job list of any size, fanning its MaxRankBatch
// chunks out concurrently across the read rotation — keeping one
// request in flight per rotation slot is what turns a second serving
// node into aggregate rank throughput (a sequential chunk loop never
// has more than one node working). Results stay index-aligned with
// jobs; the first failing chunk's error is returned.
func (c *Cluster) RankAll(ctx context.Context, jobs []api.RankRequest) ([]api.RankResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	chunks := (len(jobs) + api.MaxRankBatch - 1) / api.MaxRankBatch
	results := make([]api.RankResult, len(jobs))
	errs := make([]error, chunks)
	par.For(chunks, 2*len(c.Endpoints()), func(i int) {
		start := i * api.MaxRankBatch
		end := min(start+api.MaxRankBatch, len(jobs))
		resp, err := c.RankBatch(ctx, jobs[start:end])
		if err != nil {
			errs[i] = fmt.Errorf("client: batch at offset %d: %w", start, err)
			return
		}
		copy(results[start:end], resp.Results)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Health probes one node of the rotation.
func (c *Cluster) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	err := c.read(func(cl *Client) error {
		var rerr error
		out, rerr = cl.Health(ctx)
		return rerr
	})
	return out, err
}

// Stats fetches one node's stats (role-dependent; use StatsAll for the
// whole fleet).
func (c *Cluster) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := c.read(func(cl *Client) error {
		var rerr error
		out, rerr = cl.Stats(ctx)
		return rerr
	})
	return out, err
}

// StatsAll fetches every node's stats keyed by endpoint (nodes that
// fail are omitted; an empty map means nobody answered).
func (c *Cluster) StatsAll(ctx context.Context) map[string]api.StatsResponse {
	c.mu.RLock()
	order := append([]string(nil), c.order...)
	c.mu.RUnlock()
	out := make(map[string]api.StatsResponse, len(order))
	for _, ep := range order {
		if st, err := c.client(ep).Stats(ctx); err == nil {
			out[ep] = st
		}
	}
	return out
}

// --- writes (chase the leader) ---

// Reward reports one event's reward to the leader.
func (c *Cluster) Reward(ctx context.Context, eventID string, value float64) error {
	return c.write(func(cl *Client) error { return cl.Reward(ctx, eventID, value) })
}

// RewardBatch feeds a telemetry batch to the leader.
func (c *Cluster) RewardBatch(ctx context.Context, events []api.RewardEvent) (api.BatchRewardResponse, error) {
	var out api.BatchRewardResponse
	err := c.write(func(cl *Client) error {
		var werr error
		out, werr = cl.RewardBatch(ctx, events)
		return werr
	})
	return out, err
}

// InstallHints uploads a hint rollover to the leader. The file is read
// once up front so redirect hops (and 503 retries) replay identical
// bytes.
func (c *Cluster) InstallHints(ctx context.Context, hintFile io.Reader) (api.HintsInstallResponse, error) {
	payload, err := io.ReadAll(hintFile)
	if err != nil {
		return api.HintsInstallResponse{}, fmt.Errorf("client: reading hint file: %w", err)
	}
	var out api.HintsInstallResponse
	err = c.write(func(cl *Client) error {
		var werr error
		out, werr = cl.InstallHints(ctx, bytes.NewReader(payload))
		return werr
	})
	return out, err
}

// SaveSnapshot asks the leader to persist its model.
func (c *Cluster) SaveSnapshot(ctx context.Context) (api.SnapshotSaveResponse, error) {
	var out api.SnapshotSaveResponse
	err := c.write(func(cl *Client) error {
		var werr error
		out, werr = cl.SaveSnapshot(ctx)
		return werr
	})
	return out, err
}
