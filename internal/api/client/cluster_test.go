package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"qoadvisor/internal/api"
)

// fakeNode is a scripted cluster node: it answers reads and either
// accepts writes (leader) or redirects them to leaderURL.
type fakeNode struct {
	name      string
	leaderURL string // "" = this node IS the leader
	reads     atomic.Int64
	writes    atomic.Int64
	failReads atomic.Bool
	degraded  atomic.Bool
	ts        *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name}
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.RouteV2Rank:
			n.reads.Add(1)
			if n.failReads.Load() {
				http.Error(w, "boom", http.StatusBadGateway)
				return
			}
			var req api.BatchRankRequest
			json.NewDecoder(r.Body).Decode(&req)
			results := make([]api.RankResult, len(req.Jobs))
			for i := range results {
				results[i].RankResponse = api.RankResponse{Source: api.SourceHint, Flip: "+R001", Generation: 1}
			}
			json.NewEncoder(w).Encode(api.BatchRankResponse{RequestID: n.name, Results: results})
		case api.RouteV2Reward:
			if n.leaderURL != "" {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusMisdirectedRequest)
				json.NewEncoder(w).Encode(api.ErrorResponse{Error: *api.NotPrimary(n.leaderURL)})
				return
			}
			n.writes.Add(1)
			var req api.BatchRewardRequest
			json.NewDecoder(r.Body).Decode(&req)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(api.BatchRewardResponse{RequestID: n.name, Queued: len(req.Events)})
		case api.RouteV2Healthz:
			n.reads.Add(1)
			if n.degraded.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(api.HealthResponse{Status: api.HealthDegraded})
				return
			}
			json.NewEncoder(w).Encode(api.HealthResponse{Status: api.HealthOK})
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: *api.Errorf(api.CodeNotFound, "no route")})
		}
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func rankJobs(n int) []api.RankRequest {
	jobs := make([]api.RankRequest, n)
	for i := range jobs {
		jobs[i] = api.RankRequest{TemplateHash: api.TemplateHash(i), Span: []int{1}}
	}
	return jobs
}

// TestClusterReadsFanOut: batches rotate across every node, and a
// failing node is skipped rather than failing the read.
func TestClusterReadsFanOut(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	cc, err := NewCluster([]string{a.ts.URL, b.ts.URL, c.ts.URL}, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := cc.RankBatch(context.Background(), rankJobs(2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*fakeNode{a, b, c} {
		if got := n.reads.Load(); got != 3 {
			t.Errorf("node %s served %d reads, want 3 (round-robin)", n.name, got)
		}
	}

	// Node b starts failing: reads silently fail over to a and c.
	b.failReads.Store(true)
	for i := 0; i < 6; i++ {
		if _, err := cc.RankBatch(context.Background(), rankJobs(1)); err != nil {
			t.Fatalf("read with one dead node: %v", err)
		}
	}
	if a.reads.Load()+c.reads.Load() < 9 {
		t.Errorf("survivors did not absorb the failed node's reads (a=%d c=%d)", a.reads.Load(), c.reads.Load())
	}

	// All nodes failing: the error reports the cluster-wide failure.
	a.failReads.Store(true)
	c.failReads.Store(true)
	if _, err := cc.RankBatch(context.Background(), rankJobs(1)); err == nil ||
		!strings.Contains(err.Error(), "every cluster node failed") {
		t.Fatalf("total outage error = %v", err)
	}
}

// TestClusterHealthFailsOverDegradedNode: a stale follower's degraded
// 503 is node-specific, not a request rejection — the rotation must
// move past it to a healthy node instead of reporting the whole
// cluster unhealthy ~1/N of the time.
func TestClusterHealthFailsOverDegradedNode(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	b.degraded.Store(true)
	cc, err := NewCluster([]string{a.ts.URL, b.ts.URL, c.ts.URL}, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Enough probes that the rotation is guaranteed to land on b.
	for i := 0; i < 6; i++ {
		h, herr := cc.Health(context.Background())
		if herr != nil {
			t.Fatalf("probe %d: %v (degraded node must fail over, not fail the probe)", i, herr)
		}
		if h.Status != api.HealthOK {
			t.Fatalf("probe %d: status %q from a rotation with healthy nodes", i, h.Status)
		}
	}
	if b.reads.Load() == 0 {
		t.Fatal("rotation never hit the degraded node; test is vacuous")
	}

	// Every node degraded: the probe reports the cluster-wide failure.
	a.degraded.Store(true)
	c.degraded.Store(true)
	if _, err := cc.Health(context.Background()); err == nil {
		t.Fatal("all-degraded cluster probe succeeded")
	}
}

// TestClusterWritesChaseLeader: a write aimed at a follower follows
// the not_primary redirect, the leader is learned, and later writes go
// straight there.
func TestClusterWritesChaseLeader(t *testing.T) {
	leader := newFakeNode(t, "leader")
	f1, f2 := newFakeNode(t, "f1"), newFakeNode(t, "f2")
	f1.leaderURL = leader.ts.URL
	f2.leaderURL = leader.ts.URL

	// The leader is not even in the initial endpoint list: it must be
	// discovered from the redirect envelope.
	cc, err := NewCluster([]string{f1.ts.URL, f2.ts.URL}, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	v := 0.5
	resp, err := cc.RewardBatch(context.Background(), []api.RewardEvent{{EventID: "e1", Reward: &v}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Queued != 1 || leader.writes.Load() != 1 {
		t.Fatalf("write did not land on the leader: %+v (leader writes %d)", resp, leader.writes.Load())
	}
	if cc.Leader() != leader.ts.URL {
		t.Fatalf("leader not learned: %q", cc.Leader())
	}
	// Second write: straight to the leader, no extra redirect hop.
	if _, err := cc.RewardBatch(context.Background(), []api.RewardEvent{{EventID: "e2", Reward: &v}}); err != nil {
		t.Fatal(err)
	}
	if leader.writes.Load() != 2 {
		t.Fatalf("leader writes = %d, want 2", leader.writes.Load())
	}
}

// TestClusterRedirectLoopBounded: two nodes pointing at each other
// must not loop a write forever.
func TestClusterRedirectLoopBounded(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	a.leaderURL = b.ts.URL
	b.leaderURL = a.ts.URL
	cc, err := NewCluster([]string{a.ts.URL}, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	v := 1.0
	_, err = cc.RewardBatch(context.Background(), []api.RewardEvent{{EventID: "e", Reward: &v}})
	if err == nil || !strings.Contains(err.Error(), "leader chase exceeded") {
		t.Fatalf("redirect loop error = %v", err)
	}
}

// TestClusterWriteFailsOverDeadLeaderGuess: the initial leader guess is
// unreachable; the write must fall back to another known endpoint,
// learn the real leader from its redirect, and land.
func TestClusterWriteFailsOverDeadLeaderGuess(t *testing.T) {
	leader := newFakeNode(t, "leader")
	follower := newFakeNode(t, "follower")
	follower.leaderURL = leader.ts.URL
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // port now refuses connections

	cc, err := NewCluster([]string{dead.URL, follower.ts.URL}, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	v := 1.0
	resp, err := cc.RewardBatch(context.Background(), []api.RewardEvent{{EventID: "e", Reward: &v}})
	if err != nil {
		t.Fatalf("write with dead leader guess: %v", err)
	}
	if resp.Queued != 1 || leader.writes.Load() != 1 || cc.Leader() != leader.ts.URL {
		t.Fatalf("write did not reach the leader via failover: %+v (leader writes %d, learned %q)",
			resp, leader.writes.Load(), cc.Leader())
	}

	// Every endpoint dead: the error says so.
	leader.ts.Close()
	follower.ts.Close()
	if _, err := cc.RewardBatch(context.Background(), []api.RewardEvent{{EventID: "e2", Reward: &v}}); err == nil ||
		!strings.Contains(err.Error(), "every known endpoint") {
		t.Fatalf("total write outage error = %v", err)
	}
}
