// Package client is the typed Go client for QO-Advisor's steering
// protocol (qoadvisor/internal/api): one implementation of timeouts,
// retry-on-queue_full (reward-queue backpressure), error envelope decoding,
// and batch helpers, shared by the server CLI, the examples, and the
// benchmarks instead of hand-rolled JSON.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"qoadvisor/internal/api"
)

// Client talks the versioned steering protocol to one server.
// Zero-value is unusable; use New. Client is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (pooling, TLS, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout caps each attempt end to end (default 10s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// WithRetries sets how many times a queue_full 503 (reward-queue
// backpressure; nothing was accepted, retrying the whole batch is
// safe) is retried and the base backoff between attempts, which
// doubles per retry. Other 503s — a degraded follower's healthz, a
// proxy shedding load — fail immediately so rotations can move on.
// retries <= 0 disables retrying.
func WithRetries(retries int, backoff time.Duration) Option {
	return func(c *Client) {
		c.retries = retries
		c.backoff = backoff
	}
}

// New builds a client for a server base URL ("http://host:port").
// Defaults: 10s per-attempt timeout, 3 retries on 503 with 50ms base
// backoff.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 10 * time.Second},
		retries: 3,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one protocol call: marshal in (nil = no body), retry
// queue_full 503s, decode either the typed response into out or the
// error envelope into an *api.Error. The request body is re-sent from
// the encoded bytes on each retry, so retries are never partial.
func (c *Client) do(ctx context.Context, method, path, contentType string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
		if contentType == "" {
			contentType = "application/json"
		}
	}
	return c.doRaw(ctx, method, path, contentType, payload, func(resp *http.Response) error {
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
		return nil
	})
}

// doRaw is the transport loop under do, also used directly for
// non-JSON bodies (hint files) and streamed responses (snapshots).
// onOK consumes a 2xx response's body; non-2xx responses become
// *api.Error after the retry budget is spent.
func (c *Client) doRaw(ctx context.Context, method, path, contentType string, payload []byte, onOK func(*http.Response) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			wait := c.backoff << (attempt - 1)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			}
		}

		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if resp.StatusCode < 400 {
			err := onOK(resp)
			resp.Body.Close()
			return err
		}
		apiErr := decodeError(resp)
		resp.Body.Close()
		// Retry only backpressure: queue_full means nothing was accepted
		// and the condition is transient. Other 503s are not — notably a
		// degraded follower's /v2/healthz, where re-probing the same
		// stale node burns the backoff budget a rotation could have
		// spent failing over to a healthy one.
		if resp.StatusCode == http.StatusServiceUnavailable && apiErr.Code == api.CodeQueueFull && attempt < c.retries {
			lastErr = apiErr
			continue
		}
		return apiErr
	}
}

// DecodeError turns a non-2xx response into an *api.Error, synthesizing
// an envelope when the body does not carry one (proxies, panics). It is
// exported for callers that drive raw HTTP against the protocol (the
// replication tailer reads a streaming route the typed client does not
// wrap) so envelope decoding has exactly one implementation.
func DecodeError(resp *http.Response) *api.Error { return decodeError(resp) }

// decodeError is DecodeError's internal form.
func decodeError(resp *http.Response) *api.Error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return decodeErrorBytes(resp.StatusCode, body)
}

// decodeErrorBytes decodes an already-read error body (Health reads
// the body up front to try the degraded HealthResponse shape first).
func decodeErrorBytes(status int, body []byte) *api.Error {
	var env api.ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return &api.Error{
			Code:       api.CodeInternal,
			Message:    fmt.Sprintf("HTTP %d with no error envelope", status),
			HTTPStatus: status,
		}
	}
	e := env.Error
	e.HTTPStatus = status
	return &e
}

// Rank steers one job via the stable v1 single-job endpoint.
func (c *Client) Rank(ctx context.Context, job api.RankRequest) (api.RankResponse, error) {
	var out api.RankResponse
	err := c.do(ctx, http.MethodPost, api.RouteV1Rank, "", job, &out)
	return out, err
}

// RankBatch steers up to api.MaxRankBatch jobs in one /v2/rank call.
// Per-job failures ride inside Results; only transport- or batch-level
// problems surface as the returned error.
func (c *Client) RankBatch(ctx context.Context, jobs []api.RankRequest) (api.BatchRankResponse, error) {
	var out api.BatchRankResponse
	err := c.do(ctx, http.MethodPost, api.RouteV2Rank, "", api.BatchRankRequest{Jobs: jobs}, &out)
	return out, err
}

// RankAll steers a job list of any size, splitting it into
// api.MaxRankBatch-sized /v2/rank calls and concatenating the results
// (index-aligned with jobs).
func (c *Client) RankAll(ctx context.Context, jobs []api.RankRequest) ([]api.RankResult, error) {
	results := make([]api.RankResult, 0, len(jobs))
	for start := 0; start < len(jobs); start += api.MaxRankBatch {
		end := min(start+api.MaxRankBatch, len(jobs))
		resp, err := c.RankBatch(ctx, jobs[start:end])
		if err != nil {
			return nil, fmt.Errorf("client: batch at offset %d: %w", start, err)
		}
		results = append(results, resp.Results...)
	}
	return results, nil
}

// Reward reports one event's reward via v1. A saturated queue (503) is
// retried per the client's retry policy before the error is returned.
func (c *Client) Reward(ctx context.Context, eventID string, value float64) error {
	return c.do(ctx, http.MethodPost, api.RouteV1Reward, "",
		api.RewardEvent{EventID: eventID, Reward: &value}, nil)
}

// RewardBatch feeds a telemetry batch to /v2/reward. The transport
// retries whole-batch 503s (nothing was queued in that case); per-event
// rejections are returned in the response for the caller to inspect.
func (c *Client) RewardBatch(ctx context.Context, events []api.RewardEvent) (api.BatchRewardResponse, error) {
	var out api.BatchRewardResponse
	err := c.do(ctx, http.MethodPost, api.RouteV2Reward, "", api.BatchRewardRequest{Events: events}, &out)
	return out, err
}

// InstallHints uploads a SIS exchange-format hint file (the pipeline
// rollover). The body is read fully up front so 503 retries can replay
// it.
func (c *Client) InstallHints(ctx context.Context, hintFile io.Reader) (api.HintsInstallResponse, error) {
	payload, err := io.ReadAll(hintFile)
	if err != nil {
		return api.HintsInstallResponse{}, fmt.Errorf("client: reading hint file: %w", err)
	}
	var out api.HintsInstallResponse
	err = c.doRaw(ctx, http.MethodPost, api.RouteV1Hints, "text/plain", payload, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	return out, err
}

// Health probes /v2/healthz with a single attempt (a health probe
// reports the node's state NOW; retrying would only mask it). A
// degraded node — a follower whose replication tail went stale —
// answers 503 with the same HealthResponse body instead of an error
// envelope; that body is decoded and returned ALONGSIDE a degraded
// *api.Error, so rotations still treat the node as failed while
// operators see what is wrong with it.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.RouteV2Healthz, nil)
	if err != nil {
		return out, fmt.Errorf("client: GET %s: %w", api.RouteV2Healthz, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, fmt.Errorf("client: GET %s: %w", api.RouteV2Healthz, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 {
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
			return out, fmt.Errorf("client: decoding %s response: %w", api.RouteV2Healthz, derr)
		}
		return out, nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusServiceUnavailable {
		var hr api.HealthResponse
		if json.Unmarshal(body, &hr) == nil && hr.Status != "" {
			return hr, &api.Error{
				Code:       api.CodeDegraded,
				Message:    fmt.Sprintf("node reports status %q", hr.Status),
				HTTPStatus: resp.StatusCode,
			}
		}
	}
	return out, decodeErrorBytes(resp.StatusCode, body)
}

// Stats fetches /v2/stats (serving counters plus per-route metrics).
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := c.do(ctx, http.MethodGet, api.RouteV2Stats, "", nil, &out)
	return out, err
}

// Quarantine flips one template's safeguard state on the primary
// (POST /v2/quarantine). Action is api.QuarantineActionQuarantine or
// api.QuarantineActionRestore; the response reports the transition the
// server journaled. Followers answer 403 — point this at the primary.
func (c *Client) Quarantine(ctx context.Context, templateHash api.TemplateHash, action string) (api.QuarantineResponse, error) {
	var out api.QuarantineResponse
	err := c.do(ctx, http.MethodPost, api.RouteV2Quarantine, "",
		api.QuarantineRequest{TemplateHash: templateHash, Action: action}, &out)
	return out, err
}

// QuarantineList fetches the templates currently held in a durable
// safeguard state — quarantined or probation (GET /v2/quarantine).
func (c *Client) QuarantineList(ctx context.Context) (api.QuarantineListResponse, error) {
	var out api.QuarantineListResponse
	err := c.do(ctx, http.MethodGet, api.RouteV2Quarantine, "", nil, &out)
	return out, err
}

// Version fetches the server's build identity (GET /v2/version).
func (c *Client) Version(ctx context.Context) (api.VersionResponse, error) {
	var out api.VersionResponse
	err := c.do(ctx, http.MethodGet, api.RouteV2Version, "", nil, &out)
	return out, err
}

// Snapshot streams the model's persisted form from the server. The
// caller must Close the returned reader.
func (c *Client) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.RouteV1Snapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot: %w", err)
	}
	if resp.StatusCode >= 400 {
		apiErr := decodeError(resp)
		resp.Body.Close()
		return nil, apiErr
	}
	return resp.Body, nil
}

// BootstrapSnapshot streams the primary's replication bootstrap
// snapshot (GET /v2/wal/snapshot): a checkpoint-consistent model whose
// embedded WAL watermark is where a follower starts tailing. The
// caller must Close the returned reader.
func (c *Client) BootstrapSnapshot(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.RouteV2WALSnapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("client: bootstrap snapshot: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: bootstrap snapshot: %w", err)
	}
	if resp.StatusCode >= 400 {
		apiErr := decodeError(resp)
		resp.Body.Close()
		return nil, apiErr
	}
	return resp.Body, nil
}

// AuditRecordsOptions filter a GET /v2/audit/records listing. Zero
// values mean "no filter"; the server caps Limit.
type AuditRecordsOptions struct {
	// Types restricts the listing to named record types (the journal
	// registry's names: "rank", "reward_batch", "train_mark",
	// "hint_rollover", "quarantine").
	Types []string
	// EventID restricts to records mentioning the event.
	EventID string
	// TemplateHash restricts to records mentioning the template (hint
	// rollovers, quarantine records). HasTemplate gates it so hash 0
	// stays queryable.
	TemplateHash api.TemplateHash
	HasTemplate  bool
	// FromLSN/ToLSN bound the scan (inclusive; 0 = unbounded).
	FromLSN, ToLSN uint64
	// Limit caps the rows returned (0 = server default).
	Limit int
}

// AuditRecords lists journal records matching the filters
// (GET /v2/audit/records). WAL-backed nodes only.
func (c *Client) AuditRecords(ctx context.Context, opts AuditRecordsOptions) (api.AuditRecordsResponse, error) {
	q := url.Values{}
	if len(opts.Types) > 0 {
		q.Set("type", strings.Join(opts.Types, ","))
	}
	if opts.EventID != "" {
		q.Set("event", opts.EventID)
	}
	if opts.HasTemplate {
		q.Set("template", opts.TemplateHash.String())
	}
	if opts.FromLSN > 0 {
		q.Set("fromLsn", strconv.FormatUint(opts.FromLSN, 10))
	}
	if opts.ToLSN > 0 {
		q.Set("toLsn", strconv.FormatUint(opts.ToLSN, 10))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	path := api.RouteV2AuditRecords
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.AuditRecordsResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// AuditDecision fetches one event's decision trace
// (GET /v2/audit/decision?event=...).
func (c *Client) AuditDecision(ctx context.Context, eventID string) (api.AuditDecisionResponse, error) {
	var out api.AuditDecisionResponse
	path := api.RouteV2AuditDecision + "?event=" + url.QueryEscape(eventID)
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// AuditTemplate fetches a template's steering history
// (GET /v2/audit/template?template=...).
func (c *Client) AuditTemplate(ctx context.Context, hash api.TemplateHash) (api.AuditTemplateResponse, error) {
	var out api.AuditTemplateResponse
	path := api.RouteV2AuditTemplate + "?template=" + hash.String()
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// AuditAsOf asks the server to reconstruct its model as of an LSN and
// summarize the result (GET /v2/audit/asof?lsn=...). lsn 0 means "the
// journal's current end".
func (c *Client) AuditAsOf(ctx context.Context, lsn uint64) (api.AuditAsOfResponse, error) {
	var out api.AuditAsOfResponse
	path := api.RouteV2AuditAsOf
	if lsn > 0 {
		path += "?lsn=" + strconv.FormatUint(lsn, 10)
	}
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// TracesOptions filter a GET /v2/traces listing. Zero values mean "no
// filter".
type TracesOptions struct {
	// Route restricts to traces of one route (exact match).
	Route string
	// MinDur drops traces shorter than this.
	MinDur time.Duration
	// Limit caps the traces returned, newest first (0 = all retained).
	Limit int
}

// Traces fetches the retained slow-trace ring (GET /v2/traces) as a
// Chrome-trace document plus per-trace metadata.
func (c *Client) Traces(ctx context.Context, opts TracesOptions) (api.TracesResponse, error) {
	q := url.Values{}
	if opts.Route != "" {
		q.Set("route", opts.Route)
	}
	if opts.MinDur > 0 {
		q.Set("min_ms", strconv.FormatFloat(float64(opts.MinDur)/float64(time.Millisecond), 'f', -1, 64))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	path := api.RouteV2Traces
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.TracesResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// Incidents lists the node's diagnostic capture bundles, newest first
// (GET /v2/incidents). A node without -incident-dir answers an empty
// list with Enabled false.
func (c *Client) Incidents(ctx context.Context) (api.IncidentsResponse, error) {
	var out api.IncidentsResponse
	err := c.do(ctx, http.MethodGet, api.RouteV2Incidents, "", nil, &out)
	return out, err
}

// Incident fetches one bundle's metadata (GET /v2/incidents/{id}).
func (c *Client) Incident(ctx context.Context, id string) (api.IncidentResponse, error) {
	var out api.IncidentResponse
	err := c.do(ctx, http.MethodGet, api.RouteV2Incidents+"/"+url.PathEscape(id), "", nil, &out)
	return out, err
}

// IncidentFile streams one bundle artifact
// (GET /v2/incidents/{id}?file={name}). The caller must Close the
// returned reader.
func (c *Client) IncidentFile(ctx context.Context, id, name string) (io.ReadCloser, error) {
	path := api.RouteV2Incidents + "/" + url.PathEscape(id) + "?file=" + url.QueryEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: incident file: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: incident file: %w", err)
	}
	if resp.StatusCode >= 400 {
		apiErr := decodeError(resp)
		resp.Body.Close()
		return nil, apiErr
	}
	return resp.Body, nil
}

// TriggerIncident captures a diagnostic bundle now (POST /v2/incidents),
// bypassing the capture cooldown. Nodes without -incident-dir answer
// incidents_disabled.
func (c *Client) TriggerIncident(ctx context.Context) (api.IncidentResponse, error) {
	var out api.IncidentResponse
	err := c.do(ctx, http.MethodPost, api.RouteV2Incidents, "", nil, &out)
	return out, err
}

// SaveSnapshot asks the server to persist its model to the configured
// snapshot path.
func (c *Client) SaveSnapshot(ctx context.Context) (api.SnapshotSaveResponse, error) {
	var out api.SnapshotSaveResponse
	err := c.do(ctx, http.MethodPost, api.RouteV1Snapshot, "", nil, &out)
	return out, err
}
