package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestTemplateHashJSONRoundTrip(t *testing.T) {
	for _, h := range []TemplateHash{0, 1, 0xdeadbeef, ^TemplateHash(0)} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 18 { // 16 hex digits + quotes
			t.Errorf("marshal(%v) = %s, want 16-digit quoted hex", uint64(h), b)
		}
		var back TemplateHash
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != h {
			t.Errorf("round trip %v -> %s -> %v", uint64(h), b, uint64(back))
		}
	}
}

func TestTemplateHashUnmarshalRejectsBadInput(t *testing.T) {
	for _, in := range []string{`42`, `"zz"`, `""`, `"10000000000000000"`, `null`} {
		var h TemplateHash
		if err := json.Unmarshal([]byte(in), &h); err == nil {
			t.Errorf("unmarshal(%s) accepted, want error", in)
		}
	}
}

func TestRankRequestWireShape(t *testing.T) {
	// The v1 wire contract: templateHash as hex string, camelCase keys.
	req := RankRequest{TemplateHash: 0xabc, TemplateID: "T1", Span: []int{3, 17}, RowCount: 10, BytesRead: 20}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"templateHash":"0000000000000abc"`, `"templateId":"T1"`, `"span":[3,17]`, `"rowCount":10`, `"bytesRead":20`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form %s missing %s", s, want)
		}
	}
}

func TestRankRequestUnmarshalRequiresTemplateHash(t *testing.T) {
	var r RankRequest
	if err := json.Unmarshal([]byte(`{"span":[1]}`), &r); err == nil {
		t.Error("missing templateHash accepted, want error")
	}
	if err := json.Unmarshal([]byte(`{"templateHash":"0000000000000000","span":[1]}`), &r); err != nil {
		t.Errorf("explicit zero hash rejected: %v", err)
	}
	if err := json.Unmarshal([]byte(`{"templateHash":"ab","templateId":"T","span":[1,2],"rowCount":3}`), &r); err != nil {
		t.Fatal(err)
	}
	if r.TemplateHash != 0xab || r.TemplateID != "T" || len(r.Span) != 2 || r.RowCount != 3 {
		t.Errorf("decoded = %+v", r)
	}
}

func TestErrorEnvelope(t *testing.T) {
	e := Errorf(CodeQueueFull, "queue at %d", 4096)
	if e.Error() != "queue_full: queue at 4096" {
		t.Errorf("Error() = %q", e.Error())
	}
	b, err := json.Marshal(ErrorResponse{Error: *e, RequestID: "r1"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"queue_full","message":"queue at 4096"},"requestId":"r1"}`
	if string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
}

func TestStatusForCode(t *testing.T) {
	cases := map[string]int{
		CodeMethodNotAllowed:     http.StatusMethodNotAllowed,
		CodeInvalidJSON:          http.StatusBadRequest,
		CodeInvalidRequest:       http.StatusBadRequest,
		CodeValidationFailed:     http.StatusBadRequest,
		CodeBodyTooLarge:         http.StatusRequestEntityTooLarge,
		CodeUnknownEvent:         http.StatusNotFound,
		CodeNotFound:             http.StatusNotFound,
		CodeQueueFull:            http.StatusServiceUnavailable,
		CodeSnapshotUnconfigured: http.StatusConflict,
		CodeInternal:             http.StatusInternalServerError,
		"anything_else":          http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := StatusForCode(code); got != want {
			t.Errorf("StatusForCode(%s) = %d, want %d", code, got, want)
		}
	}
}

func TestWALFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("a"), bytes.Repeat([]byte{0xAB}, 300), []byte("final")}
	for i, p := range payloads {
		if err := WriteWALFrame(&buf, uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		lsn, got, err := ReadWALFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if lsn != uint64(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: lsn %d payload %d bytes", i, lsn, len(got))
		}
	}
	if _, _, err := ReadWALFrame(r); err != io.EOF {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}

	// Torn mid-frame: cut inside the last payload.
	torn := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	var err error
	for {
		if _, _, err = ReadWALFrame(torn); err != nil {
			break
		}
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame = %v, want io.ErrUnexpectedEOF", err)
	}

	// Flipped payload bit: CRC must catch it.
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[WALFrameHeaderSize] ^= 0x01
	if _, _, err := ReadWALFrame(bytes.NewReader(flipped)); err == nil || err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("corrupt payload = %v, want CRC error", err)
	}
}

func TestReplicationErrorContract(t *testing.T) {
	e := NotPrimary("http://primary:8080")
	if e.Code != CodeNotPrimary || e.Leader != "http://primary:8080" {
		t.Fatalf("NotPrimary = %+v", e)
	}
	b, err := json.Marshal(ErrorResponse{Error: *e, RequestID: "r1"})
	if err != nil {
		t.Fatal(err)
	}
	var back ErrorResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error.Leader != e.Leader {
		t.Fatalf("leader lost on the wire: %+v", back.Error)
	}
	for code, want := range map[string]int{
		CodeNotPrimary:  http.StatusMisdirectedRequest,
		CodeWALGap:      http.StatusGone,
		CodeWALDisabled: http.StatusConflict,
		CodeDegraded:    http.StatusServiceUnavailable,
	} {
		if got := StatusForCode(code); got != want {
			t.Errorf("StatusForCode(%s) = %d, want %d", code, got, want)
		}
	}
}
