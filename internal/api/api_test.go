package api

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestTemplateHashJSONRoundTrip(t *testing.T) {
	for _, h := range []TemplateHash{0, 1, 0xdeadbeef, ^TemplateHash(0)} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 18 { // 16 hex digits + quotes
			t.Errorf("marshal(%v) = %s, want 16-digit quoted hex", uint64(h), b)
		}
		var back TemplateHash
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != h {
			t.Errorf("round trip %v -> %s -> %v", uint64(h), b, uint64(back))
		}
	}
}

func TestTemplateHashUnmarshalRejectsBadInput(t *testing.T) {
	for _, in := range []string{`42`, `"zz"`, `""`, `"10000000000000000"`, `null`} {
		var h TemplateHash
		if err := json.Unmarshal([]byte(in), &h); err == nil {
			t.Errorf("unmarshal(%s) accepted, want error", in)
		}
	}
}

func TestRankRequestWireShape(t *testing.T) {
	// The v1 wire contract: templateHash as hex string, camelCase keys.
	req := RankRequest{TemplateHash: 0xabc, TemplateID: "T1", Span: []int{3, 17}, RowCount: 10, BytesRead: 20}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"templateHash":"0000000000000abc"`, `"templateId":"T1"`, `"span":[3,17]`, `"rowCount":10`, `"bytesRead":20`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form %s missing %s", s, want)
		}
	}
}

func TestRankRequestUnmarshalRequiresTemplateHash(t *testing.T) {
	var r RankRequest
	if err := json.Unmarshal([]byte(`{"span":[1]}`), &r); err == nil {
		t.Error("missing templateHash accepted, want error")
	}
	if err := json.Unmarshal([]byte(`{"templateHash":"0000000000000000","span":[1]}`), &r); err != nil {
		t.Errorf("explicit zero hash rejected: %v", err)
	}
	if err := json.Unmarshal([]byte(`{"templateHash":"ab","templateId":"T","span":[1,2],"rowCount":3}`), &r); err != nil {
		t.Fatal(err)
	}
	if r.TemplateHash != 0xab || r.TemplateID != "T" || len(r.Span) != 2 || r.RowCount != 3 {
		t.Errorf("decoded = %+v", r)
	}
}

func TestErrorEnvelope(t *testing.T) {
	e := Errorf(CodeQueueFull, "queue at %d", 4096)
	if e.Error() != "queue_full: queue at 4096" {
		t.Errorf("Error() = %q", e.Error())
	}
	b, err := json.Marshal(ErrorResponse{Error: *e, RequestID: "r1"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"queue_full","message":"queue at 4096"},"requestId":"r1"}`
	if string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
}

func TestStatusForCode(t *testing.T) {
	cases := map[string]int{
		CodeMethodNotAllowed:     http.StatusMethodNotAllowed,
		CodeInvalidJSON:          http.StatusBadRequest,
		CodeInvalidRequest:       http.StatusBadRequest,
		CodeValidationFailed:     http.StatusBadRequest,
		CodeBodyTooLarge:         http.StatusRequestEntityTooLarge,
		CodeUnknownEvent:         http.StatusNotFound,
		CodeNotFound:             http.StatusNotFound,
		CodeQueueFull:            http.StatusServiceUnavailable,
		CodeSnapshotUnconfigured: http.StatusConflict,
		CodeInternal:             http.StatusInternalServerError,
		"anything_else":          http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := StatusForCode(code); got != want {
			t.Errorf("StatusForCode(%s) = %d, want %d", code, got, want)
		}
	}
}
