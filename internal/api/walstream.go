package api

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL replication stream wire format (GET /v2/wal?from=<lsn>).
//
// The response body is a sequence of self-delimiting frames, one per
// journal record, in LSN order:
//
//	[uint64 LSN][uint32 payload length][uint32 CRC32-Castagnoli][payload]
//
// all little-endian. Every frame carries its own LSN and checksum so a
// torn connection is detectable mid-frame (short read) and a corrupted
// one mid-payload (CRC mismatch); in both cases the follower drops the
// connection and reconnects with from=<last applied LSN> — frames are
// idempotent to re-receive because LSNs are dense and monotonic.
//
// The stream is chunked and long-polls at the tail: the primary holds
// the response open while new records arrive, then closes it after an
// idle window or a bounded stream duration, and the follower simply
// reconnects. Response headers:
//
//	X-Qoadvisor-Wal-Frontier  the primary's durable frontier at stream
//	                          start (records beyond it are never shipped)
//	X-Qoadvisor-Wal-First     the oldest retained LSN (0 = empty log)
const (
	WALFrontierHeader    = "X-Qoadvisor-Wal-Frontier"
	WALFirstHeader       = "X-Qoadvisor-Wal-First"
	WALStreamContentType = "application/x-qoadvisor-wal"

	// WALFrameHeaderSize is the fixed frame prefix: LSN + length + CRC.
	WALFrameHeaderSize = 16

	// MaxWALFramePayload bounds one frame's payload. It mirrors the
	// journal's own record limit (wal.MaxRecordSize; this package is
	// stdlib-only so the value is restated, and a serve-side test pins
	// the two together): a larger length prefix is treated as stream
	// corruption, not an allocation request.
	MaxWALFramePayload = 16 << 20
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WriteWALFrame frames one journal record onto a replication stream.
func WriteWALFrame(w io.Writer, lsn uint64, payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxWALFramePayload {
		return fmt.Errorf("api: wal frame payload of %d bytes (want 1..%d)", len(payload), MaxWALFramePayload)
	}
	var hdr [WALFrameHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[:8], lsn)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, walCRCTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadWALFrame reads and verifies one frame. A clean end of stream
// (the primary closed between frames) returns io.EOF; a connection
// torn mid-frame returns io.ErrUnexpectedEOF; a CRC or length
// violation returns a descriptive error. The returned payload is
// freshly allocated and owned by the caller.
func ReadWALFrame(r io.Reader) (lsn uint64, payload []byte, err error) {
	var hdr [WALFrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean frame boundary
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	lsn = binary.LittleEndian.Uint64(hdr[:8])
	length := binary.LittleEndian.Uint32(hdr[8:12])
	crc := binary.LittleEndian.Uint32(hdr[12:])
	if length == 0 || length > MaxWALFramePayload {
		return lsn, nil, fmt.Errorf("api: wal frame at lsn %d has corrupt length %d", lsn, length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return lsn, nil, io.ErrUnexpectedEOF
	}
	if got := crc32.Checksum(payload, walCRCTable); got != crc {
		return lsn, nil, fmt.Errorf("api: wal frame at lsn %d CRC mismatch: stored %08x, computed %08x", lsn, crc, got)
	}
	return lsn, payload, nil
}
