package core

import (
	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/workload"
)

// JobRun is one production execution of a job.
type JobRun struct {
	Job     *workload.Job
	Result  *optimizer.Result
	Metrics exec.Metrics
	// Hinted reports whether a SIS hint steered this compilation.
	Hinted bool
	Flip   rules.Flip
}

// Production simulates the online side of the loop: every submitted job
// is compiled with the optimizer, consulting the SIS hint store for its
// template, then executed on the cluster; the resulting telemetry becomes
// the next day's denormalized workload view.
type Production struct {
	Catalog *rules.Catalog
	Store   *sis.Store
	Cluster *exec.Cluster
	Seed    int64
}

// NewProduction wires the production loop.
func NewProduction(cat *rules.Catalog, store *sis.Store, cluster *exec.Cluster, seed int64) *Production {
	if cat == nil {
		cat = rules.NewCatalog()
	}
	if store == nil {
		store = sis.NewStore(cat)
	}
	if cluster == nil {
		cluster = exec.DefaultCluster(seed)
	}
	return &Production{Catalog: cat, Store: store, Cluster: cluster, Seed: seed}
}

// RunJob compiles and executes a single job under the current hints. If a
// hinted compilation fails, production falls back to the default
// configuration (hints must never break jobs).
func (p *Production) RunJob(job *workload.Job, runSeed int64) (JobRun, error) {
	def := p.Catalog.DefaultConfig()
	cfg := p.Store.ConfigFor(job.Template.Hash, def)
	hinted := !cfg.Equal(def.Bitset)

	opts := optimizer.Options{Catalog: p.Catalog, Stats: job.Stats, Tokens: job.Tokens}
	res, err := optimizer.Optimize(job.Graph, cfg, opts)
	if err != nil && hinted {
		res, err = optimizer.Optimize(job.Graph, def, opts)
		hinted = false
	}
	if err != nil {
		return JobRun{}, err
	}
	run := JobRun{Job: job, Result: res, Hinted: hinted}
	if hinted {
		if h, ok := p.Store.Lookup(job.Template.Hash); ok {
			run.Flip = h.Flip
		}
	}
	run.Metrics = exec.Run(res.Plan, job.Truth, job.Stats, p.Cluster, runSeed)
	return run, nil
}

// RunDay executes all of a day's jobs and assembles the denormalized
// workload view from their telemetry.
func (p *Production) RunDay(date int, jobs []*workload.Job) ([]JobRun, []workload.ViewRow, error) {
	var runs []JobRun
	var view []workload.ViewRow
	for i, job := range jobs {
		run, err := p.RunJob(job, p.Seed+int64(date)*100003+int64(i)*7)
		if err != nil {
			// A job that cannot compile even under the default config is
			// dropped from the day's view.
			continue
		}
		runs = append(runs, run)
		view = append(view, workload.BuildViewRows(job, run.Result, run.Metrics)...)
	}
	return runs, view, nil
}
