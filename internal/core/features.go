// Package core implements the QO-Advisor pipeline itself: the five daily
// tasks of Figure 1 — Feature Generation, rule Recommendation (contextual
// bandit), Recompilation, Validation and Hint Generation — plus the
// production loop that applies installed hints at compile time. The
// pipeline runs offline over the previous day's denormalized workload
// view and emits (job template, rule hint) pairs to the Stats & Insight
// Service.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/par"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/span"
	"qoadvisor/internal/workload"
)

// JobFeatures is the per-job feature vector produced by the Feature
// Generation task: the Table 1 features aggregated from per-query view
// rows to job level (the "super root" aggregation of §4.1), plus the job
// span.
type JobFeatures struct {
	Job *workload.Job

	NormalizedJobName string
	RuleSignature     rules.Signature

	// Job-level features (aggregated with min — identical across a
	// job's query rows).
	Latency   float64
	EstCost   float64
	Vertices  int
	MaxMemory float64
	AvgMemory float64
	PNHours   float64

	// Query-level features aggregated by their semantics.
	EstCardinality float64 // sum
	BytesRead      float64 // sum
	RowCount       float64 // sum
	AvgRowLength   float64 // avg

	// Span is the set of plan-affecting rules (empty-span jobs are
	// dropped before recommendation).
	Span rules.Bitset
	// SpanFailedCompile records that span computation hit a compile
	// failure (a legitimate fix-point exit).
	SpanFailedCompile bool
}

// FeatureGen is the Feature Generation task.
type FeatureGen struct {
	Catalog *rules.Catalog
	// SpanIterations bounds the span fix point (0 = default).
	SpanIterations int
	// Parallelism bounds the span-computation worker pool
	// (0 = GOMAXPROCS, 1 = sequential). Output is bit-identical at any
	// setting: span computation is a pure per-template function and the
	// result set is sorted by job ID.
	Parallelism int
	// Cache memoizes the optimizer's logical phase across the many
	// recompilations span computation performs.
	Cache *optimizer.CompileCache

	// spanCache memoizes span computation per template hash: instances
	// of a template share plan shape and hence span. Entries singleflight
	// so concurrent instances of one template compute its span once.
	mu        sync.Mutex
	spanCache map[uint64]*spanEntry
}

type spanEntry struct {
	once sync.Once
	sp   *span.Result
	err  error
}

// NewFeatureGen creates the task.
func NewFeatureGen(cat *rules.Catalog) *FeatureGen {
	if cat == nil {
		cat = rules.NewCatalog()
	}
	return &FeatureGen{Catalog: cat, spanCache: make(map[uint64]*spanEntry)}
}

// Aggregate turns the per-query view rows of one job into job-level
// features using the Table 1 aggregation functions: min for job-level
// features, sum for cardinalities/bytes/rows, avg for row length.
func Aggregate(rows []workload.ViewRow) (JobFeatures, error) {
	if len(rows) == 0 {
		return JobFeatures{}, fmt.Errorf("core: no view rows to aggregate")
	}
	f := JobFeatures{
		NormalizedJobName: rows[0].NormalizedJobName,
		RuleSignature:     rows[0].RuleSignature,
		Latency:           math.Inf(1),
		EstCost:           math.Inf(1),
		MaxMemory:         math.Inf(1),
		AvgMemory:         math.Inf(1),
		PNHours:           math.Inf(1),
	}
	vertices := math.Inf(1)
	widthSum := 0.0
	for _, r := range rows {
		// Job-level: min (all rows carry the same value).
		f.Latency = math.Min(f.Latency, r.Latency)
		f.EstCost = math.Min(f.EstCost, r.EstimatedCost)
		f.MaxMemory = math.Min(f.MaxMemory, r.MaxMemory)
		f.AvgMemory = math.Min(f.AvgMemory, r.AvgMemory)
		f.PNHours = math.Min(f.PNHours, r.PNHours)
		vertices = math.Min(vertices, float64(r.Vertices))
		// Query-level: semantic aggregation.
		f.EstCardinality += r.EstimatedCard
		f.BytesRead += r.BytesRead
		f.RowCount += r.RowCount
		widthSum += r.AvgRowLength
	}
	f.Vertices = int(vertices)
	f.AvgRowLength = widthSum / float64(len(rows))
	return f, nil
}

// Run executes Feature Generation for one day: it aggregates each job's
// view rows and computes job spans, dropping jobs with empty spans.
// Span computation — the expensive part, a fix point of recompilations —
// fans out across a bounded worker pool, deduplicated per template. The
// returned slice is sorted by job ID, so output is identical at any
// parallelism.
func (fg *FeatureGen) Run(jobs []*workload.Job, view []workload.ViewRow) ([]*JobFeatures, error) {
	byJob := make(map[string][]workload.ViewRow)
	for _, r := range view {
		byJob[r.JobID] = append(byJob[r.JobID], r)
	}

	results := make([]*JobFeatures, len(jobs))
	errs := make([]error, len(jobs))
	work := func(i int) {
		job := jobs[i]
		rows, ok := byJob[job.ID]
		if !ok {
			return // job missing from the view (e.g. failed upstream)
		}
		f, err := Aggregate(rows)
		if err != nil {
			errs[i] = err
			return
		}
		f.Job = job

		sp, err := fg.spanFor(job)
		if err != nil {
			// Span computation requires a default compile; a job that
			// cannot compile is dropped.
			return
		}
		f.Span = sp.Span
		f.SpanFailedCompile = sp.FailedCompile
		if f.Span.IsEmpty() {
			return // "all jobs that have an empty span are not further considered"
		}
		results[i] = &f
	}

	par.For(len(jobs), fg.Parallelism, work)

	var out []*JobFeatures
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if results[i] != nil {
			out = append(out, results[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job.ID < out[j].Job.ID })
	return out, nil
}

// spanFor computes (or serves from cache) the span of a job's template.
// Concurrent callers for one template share a single computation.
func (fg *FeatureGen) spanFor(job *workload.Job) (*span.Result, error) {
	key := job.Template.Hash
	fg.mu.Lock()
	e, ok := fg.spanCache[key]
	if !ok {
		e = &spanEntry{}
		fg.spanCache[key] = e
	}
	fg.mu.Unlock()
	e.once.Do(func() {
		e.sp, e.err = span.Compute(job.Graph, fg.Catalog, span.Options{
			Optimizer:     optimizerOptions(fg.Catalog, job, fg.Cache),
			MaxIterations: fg.SpanIterations,
		})
	})
	if e.err != nil {
		// Failures are not memoized across days: a later instance (new
		// graph, new stats) deserves a fresh attempt, matching the
		// pre-parallel behaviour.
		fg.mu.Lock()
		if fg.spanCache[key] == e {
			delete(fg.spanCache, key)
		}
		fg.mu.Unlock()
	}
	return e.sp, e.err
}
