package core

import (
	"math/rand"

	"qoadvisor/internal/flighting"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/workload"
)

// Config parameterizes the Advisor pipeline.
type Config struct {
	Seed int64
	// ValidationThreshold is the acceptance cutoff on predicted PNhours
	// delta (default -0.1).
	ValidationThreshold float64
	// MinValidationSamples gates hint generation until the validation
	// model has gathered enough flighting observations (the paper
	// gathers 14 days of data before trusting the model).
	MinValidationSamples int
	// MaxFlightCostDelta prunes flights whose estimated-cost improvement
	// is too small to bother (delta > this value is skipped). Zero means
	// "any improvement".
	MaxFlightCostDelta float64
	// ExplorationFlightsPerDay is the number of random (job, span-flip)
	// pairs flighted purely to grow the validation model's training set
	// ("we flight a random subset of the jobs over a period of 14 days to
	// gather a data set of flighting results", §4.3).
	ExplorationFlightsPerDay int
	// Flighting configures the pre-production A/B service.
	Flighting flighting.Config
	// UniformLogging switches the CB recommender to uniform-at-random
	// data collection ("off-policy learning").
	UniformLogging bool
	// SkipHinted makes the pipeline stateful (§8): templates that already
	// carry an active hint are not re-explored on later dates.
	SkipHinted bool
	// Parallelism bounds the worker pools the pipeline tasks (feature
	// generation, recompilation, flighting) fan out across
	// (0 = GOMAXPROCS, 1 = strictly sequential). Every parallel stage
	// reduces deterministically, so DayReports and SIS uploads are
	// bit-identical at any setting.
	Parallelism int
	// CompileCacheSize bounds the shared logical-compilation cache
	// (0 = the optimizer default, negative = disable). The cache only
	// affects speed, never results.
	CompileCacheSize int
}

// DayReport summarizes one daily pipeline run.
type DayReport struct {
	Date int

	JobsInView      int
	JobsWithSpan    int
	Recommendations int
	NoOps           int

	// Recompilation outcome counts (Table 3's categories).
	LowerCost    int
	EqualCost    int
	HigherCost   int
	CompileFails int

	FlightsRequested int
	FlightOutcomes   map[flighting.Outcome]int

	ValidationSamples int
	ValidatorTrained  bool
	Validated         int
	HintsUploaded     int
}

// Advisor is the daily QO-Advisor pipeline: Feature Generation →
// Recommendation (contextual bandit) → Recompilation → Flighting →
// Validation → Hint Generation → SIS upload.
type Advisor struct {
	Catalog    *rules.Catalog
	FeatureGen *FeatureGen
	CB         *CBRecommender
	Flight     *flighting.Service
	Validator  *Validator
	Store      *sis.Store

	cfg   Config
	cache *optimizer.CompileCache

	// lastHints caches the most recent uploaded hint set (in upload
	// order) so the daily merge does not rebuild it from the store's
	// version history; lastVersion detects out-of-band store uploads.
	lastHints   []sis.Hint
	lastVersion int
}

// NewAdvisor assembles a pipeline around a shared catalog and SIS store.
func NewAdvisor(cat *rules.Catalog, store *sis.Store, cfg Config) *Advisor {
	if cat == nil {
		cat = rules.NewCatalog()
	}
	if store == nil {
		store = sis.NewStore(cat)
	}
	if cfg.ValidationThreshold == 0 {
		cfg.ValidationThreshold = DefaultValidationThreshold
	}
	if cfg.MinValidationSamples == 0 {
		cfg.MinValidationSamples = 20
	}
	if cfg.ExplorationFlightsPerDay == 0 {
		cfg.ExplorationFlightsPerDay = 8
	}
	if cfg.Flighting.Catalog == nil {
		cfg.Flighting.Catalog = cat
	}
	var cache *optimizer.CompileCache
	if cfg.CompileCacheSize >= 0 {
		cache = optimizer.NewCompileCache(cfg.CompileCacheSize)
	}
	if cfg.Flighting.Parallelism == 0 {
		cfg.Flighting.Parallelism = cfg.Parallelism
	}
	if cfg.Flighting.Cache == nil {
		cfg.Flighting.Cache = cache
	}
	cb := NewCBRecommender(cat, cfg.Seed)
	cb.Uniform = cfg.UniformLogging
	v := NewValidator()
	v.Threshold = cfg.ValidationThreshold
	fg := NewFeatureGen(cat)
	fg.Parallelism = cfg.Parallelism
	fg.Cache = cache
	return &Advisor{
		Catalog:    cat,
		FeatureGen: fg,
		CB:         cb,
		Flight:     flighting.New(cfg.Flighting),
		Validator:  v,
		Store:      store,
		cfg:        cfg,
		cache:      cache,
	}
}

// CompileCacheStats reports the shared logical-compilation cache's
// effectiveness (zero value when disabled).
func (a *Advisor) CompileCacheStats() optimizer.CompileCacheStats {
	if a.cache == nil {
		return optimizer.CompileCacheStats{}
	}
	return a.cache.Stats()
}

// RunDay executes the full pipeline over one day's workload view and
// uploads the validated hints to SIS.
func (a *Advisor) RunDay(date int, jobs []*workload.Job, view []workload.ViewRow) (*DayReport, error) {
	rep := &DayReport{Date: date, FlightOutcomes: make(map[flighting.Outcome]int)}
	seen := make(map[string]bool)
	for _, r := range view {
		if !seen[r.JobID] {
			seen[r.JobID] = true
			rep.JobsInView++
		}
	}

	// 1. Feature Generation (aggregation + spans).
	feats, err := a.FeatureGen.Run(jobs, view)
	if err != nil {
		return nil, err
	}
	if a.cfg.SkipHinted {
		kept := feats[:0]
		for _, f := range feats {
			if _, hinted := a.Store.Lookup(f.Job.Template.Hash); !hinted {
				kept = append(kept, f)
			}
		}
		feats = kept
	}
	rep.JobsWithSpan = len(feats)

	// 2-3. Recommendation + Recompilation.
	recs := RecommendWith(a.CB, a.Catalog, feats, RecommendOptions{
		Parallelism: a.cfg.Parallelism,
		Cache:       a.cache,
	})
	a.CB.Train()
	rep.Recommendations = len(recs)
	for _, r := range recs {
		switch {
		case r.NoOp:
			rep.NoOps++
		case r.CompileFailed:
			rep.CompileFails++
		case r.CostDelta < 0:
			rep.LowerCost++
		case r.CostDelta == 0:
			rep.EqualCost++
		default:
			rep.HigherCost++
		}
	}

	// 4. Flighting: improved flips only, one representative per
	// template, within cost-delta threshold.
	improved := Improved(recs)
	reps := RepresentativePerTemplate(improved, a.cfg.Seed+int64(date))
	var reqs []flighting.Request
	for _, r := range reps {
		if a.cfg.MaxFlightCostDelta != 0 && r.CostDelta > a.cfg.MaxFlightCostDelta {
			continue
		}
		reqs = append(reqs, flighting.Request{
			Job:       r.Features.Job,
			Treatment: a.Catalog.DefaultConfig().WithFlip(r.Flip),
			EstCost:   r.Recompiled.EstCost,
			Flip:      r.Flip,
		})
	}
	rep.FlightsRequested = len(reqs)
	results := a.Flight.Run(reqs)
	for _, res := range results {
		rep.FlightOutcomes[res.Outcome]++
	}

	// 5. Validation: grow the dataset — from the recommendation flights
	// plus a random exploration subset — train once warm, and accept
	// flips whose predicted PNhours delta clears the threshold.
	successes := flighting.Successes(results)
	observe := func(res flighting.Result) {
		if !res.HasFuture {
			return
		}
		readD, writtenD, pnD := Deltas(res.Baseline, res.Treat)
		_, _, futurePN := Deltas(res.FutureBaseline, res.FutureTreat)
		a.Validator.Observe(date, pnD, readD, writtenD, futurePN)
	}
	for _, res := range successes {
		observe(res)
	}
	for _, res := range flighting.Successes(a.explorationFlights(date, feats)) {
		observe(res)
	}
	rep.ValidationSamples = a.Validator.SampleCount()

	var hints []sis.Hint
	if a.Validator.SampleCount() >= a.cfg.MinValidationSamples {
		if err := a.Validator.Train(); err == nil {
			rep.ValidatorTrained = true
			for _, res := range successes {
				readD, writtenD, pnD := Deltas(res.Baseline, res.Treat)
				// Both the model's prediction and the observed flight
				// direction must agree, avoiding regressions introduced
				// by cluster variability (§4.3).
				if a.Validator.Accept(pnD, readD, writtenD) && pnD < 0 {
					rep.Validated++
					hints = append(hints, sis.Hint{
						TemplateHash: res.Request.Job.Template.Hash,
						TemplateID:   res.Request.Job.Template.ID,
						Flip:         res.Request.Flip,
						Day:          date,
					})
				}
			}
		}
	}

	// 6. Hint Generation: merge the day's accepted hints with the
	// still-active ones and upload a fresh SIS version.
	merged := a.mergeHints(hints)
	if err := a.Store.Upload(sis.File{Day: date, Hints: merged}); err != nil {
		return nil, err
	}
	a.lastHints = merged
	a.lastVersion = a.Store.Version()
	rep.HintsUploaded = len(merged)
	return rep, nil
}

// ActiveHints exports the pipeline's current hint table in servable
// form: a caller-owned snapshot of the latest SIS version, sorted by
// template hash. The online steering layer installs this into its hint
// cache on pipeline rollover.
func (a *Advisor) ActiveHints() []sis.Hint {
	return a.Store.Current()
}

// explorationFlights flights random (job, span-flip) pairs to feed the
// validation model's training set.
func (a *Advisor) explorationFlights(date int, feats []*JobFeatures) []flighting.Result {
	if a.cfg.ExplorationFlightsPerDay <= 0 || len(feats) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(a.cfg.Seed + int64(date)*31))
	var reqs []flighting.Request
	for i := 0; i < a.cfg.ExplorationFlightsPerDay; i++ {
		f := feats[rng.Intn(len(feats))]
		bits := f.Span.Bits()
		if len(bits) == 0 {
			continue
		}
		flip := a.Catalog.FlipFor(bits[rng.Intn(len(bits))])
		reqs = append(reqs, flighting.Request{
			Job:       f.Job,
			Treatment: a.Catalog.DefaultConfig().WithFlip(flip),
			EstCost:   f.EstCost,
			Flip:      flip,
		})
	}
	return a.Flight.Run(reqs)
}

// mergeHints combines newly validated hints with the active set; new
// hints win on conflict. The active set comes from the Advisor's cached
// copy of its last upload (refreshed from the store only when another
// writer has uploaded in between), and the merge map is pre-sized, so a
// steady-state day costs O(active + fresh) with two allocations instead
// of rebuilding state from the store's version history.
func (a *Advisor) mergeHints(fresh []sis.Hint) []sis.Hint {
	a.refreshLastHints()
	byTemplate := make(map[uint64]sis.Hint, len(a.lastHints)+len(fresh))
	order := make([]uint64, 0, len(a.lastHints)+len(fresh))
	for _, h := range a.lastHints {
		if _, ok := byTemplate[h.TemplateHash]; !ok {
			order = append(order, h.TemplateHash)
		}
		byTemplate[h.TemplateHash] = h
	}
	for _, h := range fresh {
		if _, ok := byTemplate[h.TemplateHash]; !ok {
			order = append(order, h.TemplateHash)
		}
		byTemplate[h.TemplateHash] = h
	}
	out := make([]sis.Hint, 0, len(order))
	for _, key := range order {
		out = append(out, byTemplate[key])
	}
	return out
}

// refreshLastHints reconciles the cached last-upload with the store: if
// a version was installed that this Advisor did not produce (tests and
// operators pre-seed hint sets), adopt its hints as the active set.
func (a *Advisor) refreshLastHints() {
	if v := a.Store.Version(); v != a.lastVersion {
		hist := a.Store.History()
		a.lastHints = nil
		if len(hist) > 0 {
			a.lastHints = append([]sis.Hint(nil), hist[len(hist)-1].Hints...)
		}
		a.lastVersion = v
	}
}
