package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/workload"
)

func testWorkload(t *testing.T, n int) *workload.Generator {
	t.Helper()
	gen, err := workload.New(workload.Config{Seed: 11, NumTemplates: n, MaxDailyInstances: 2})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// runProductionDay compiles and runs one day's jobs and returns jobs+view.
func runProductionDay(t *testing.T, gen *workload.Generator, store *sis.Store, cat *rules.Catalog, date int) ([]*workload.Job, []workload.ViewRow) {
	t.Helper()
	jobs, err := gen.JobsForDay(date)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewProduction(cat, store, exec.DefaultCluster(1), 5)
	_, view, err := prod.RunDay(date, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs, view
}

func TestAggregate(t *testing.T) {
	rows := []workload.ViewRow{
		{JobID: "j", NormalizedJobName: "n", Latency: 10, EstimatedCost: 100, Vertices: 5,
			EstimatedCard: 1000, BytesRead: 1e6, RowCount: 500, AvgRowLength: 20,
			MaxMemory: 1e9, AvgMemory: 5e8, PNHours: 2},
		{JobID: "j", NormalizedJobName: "n", Latency: 10, EstimatedCost: 100, Vertices: 5,
			EstimatedCard: 2000, BytesRead: 2e6, RowCount: 700, AvgRowLength: 40,
			MaxMemory: 1e9, AvgMemory: 5e8, PNHours: 2},
	}
	f, err := Aggregate(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Job-level features: min.
	if f.Latency != 10 || f.EstCost != 100 || f.Vertices != 5 || f.PNHours != 2 {
		t.Errorf("job-level aggregation wrong: %+v", f)
	}
	// Query-level: sum.
	if f.EstCardinality != 3000 || f.BytesRead != 3e6 || f.RowCount != 1200 {
		t.Errorf("sum aggregation wrong: %+v", f)
	}
	// Avg row length: avg.
	if f.AvgRowLength != 30 {
		t.Errorf("avg aggregation wrong: %v", f.AvgRowLength)
	}
}

func TestAggregateEmptyFails(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("expected error")
	}
}

func TestFeatureGenProducesSpans(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 12)
	store := sis.NewStore(cat)
	jobs, view := runProductionDay(t, gen, store, cat, 1)

	fg := NewFeatureGen(cat)
	feats, err := fg.Run(jobs, view)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features produced")
	}
	for _, f := range feats {
		if f.Span.IsEmpty() {
			t.Error("empty-span jobs must be dropped")
		}
		if f.EstCost <= 0 {
			t.Errorf("bad est cost for %s", f.Job.ID)
		}
		// Spans contain no required rules.
		for _, id := range f.Span.Bits() {
			if cat.Rule(id).Category == rules.Required {
				t.Errorf("required rule %d in span", id)
			}
		}
	}
}

func TestSpanCacheSharedAcrossInstances(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 6)
	store := sis.NewStore(cat)
	jobs, view := runProductionDay(t, gen, store, cat, 1)
	fg := NewFeatureGen(cat)
	if _, err := fg.Run(jobs, view); err != nil {
		t.Fatal(err)
	}
	if len(fg.spanCache) > len(gen.Templates()) {
		t.Errorf("span cache has %d entries for %d templates", len(fg.spanCache), len(gen.Templates()))
	}
}

func TestContextFeaturesIncludeCoOccurrence(t *testing.T) {
	var f JobFeatures
	f.Span.Set(3)
	f.Span.Set(7)
	f.Span.Set(9)
	f.RowCount = 1e6
	ctx := ContextFeatures(&f)
	want := map[uint64]string{
		feat1(tagSpan, 3):                      "span:3",
		feat1(tagSpan, 7):                      "span:7",
		feat1(tagSpan, 9):                      "span:9",
		feat2(tagSpan2, 3, 7):                  "span2:3,7",
		feat2(tagSpan2, 3, 9):                  "span2:3,9",
		feat2(tagSpan2, 7, 9):                  "span2:7,9",
		feat3(tagSpan3, 3, 7, 9):               "span3:3,7,9",
		feat1(tagRows, uint64(logBucket(1e6))): "rows:6",
	}
	have := make(map[uint64]bool, len(ctx.IDs))
	for _, id := range ctx.IDs {
		if have[id] {
			t.Errorf("duplicate feature ID %#x", id)
		}
		have[id] = true
	}
	for id, name := range want {
		if !have[id] {
			t.Errorf("missing context feature %s (ID %#x) in %v", name, id, ctx.IDs)
		}
	}
	// The string adapter keeps the original token form for external
	// clients (HTTP API, persisted snapshots).
	legacy := LegacyContextFeatures(&f)
	tokens := make(map[string]bool, len(legacy.Features))
	for _, tok := range legacy.Features {
		tokens[tok] = true
	}
	for _, name := range want {
		if !tokens[name] {
			t.Errorf("legacy adapter missing token %q in %v", name, legacy.Features)
		}
	}
}

func TestActionsForIncludesNoopAndAllSpanFlips(t *testing.T) {
	cat := rules.NewCatalog()
	var f JobFeatures
	f.Span.Set(20)
	f.Span.Set(100)
	actions, flips := ActionsFor(cat, &f)
	if len(actions) != 3 || len(flips) != 3 {
		t.Fatalf("actions = %d, want 3 (noop + 2 flips)", len(actions))
	}
	if actions[0].ID != "noop" {
		t.Error("first action must be noop")
	}
	// Flip direction: off-by-default rules turn on, others turn off.
	for i, flip := range flips[1:] {
		r := cat.Rule(flip.RuleID)
		wantEnable := r.Category == rules.OffByDefault
		if flip.Enable != wantEnable {
			t.Errorf("flip %d: enable=%v for category %v", i, flip.Enable, r.Category)
		}
	}
}

func TestRecommendAndLearn(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 10)
	store := sis.NewStore(cat)
	jobs, view := runProductionDay(t, gen, store, cat, 1)
	fg := NewFeatureGen(cat)
	feats, err := fg.Run(jobs, view)
	if err != nil {
		t.Fatal(err)
	}
	cb := NewCBRecommender(cat, 3)
	recs := Recommend(cb, cat, feats)
	if len(recs) != len(feats) {
		t.Fatalf("recs = %d, want %d", len(recs), len(feats))
	}
	for _, r := range recs {
		if r.NoOp {
			if r.Reward != 1 {
				t.Errorf("noop reward = %v, want 1", r.Reward)
			}
			continue
		}
		if r.CompileFailed {
			if r.Reward != 0 {
				t.Errorf("failed recompile reward = %v, want 0", r.Reward)
			}
			continue
		}
		if r.Reward <= 0 || r.Reward > RewardClip {
			t.Errorf("reward out of range: %v", r.Reward)
		}
	}
	if n := cb.Train(); n == 0 {
		t.Error("training should consume rewarded events")
	}
}

// TestRecommendWithCappedLearnerLosesNoEvents guards the rank-all /
// recompile / learn-all phase split against a serve-layer event-log cap
// on a shared learner: without eviction suspension, a day larger than the
// cap would evict the earliest ranks before phase 3 rewards them, and
// those jobs would silently never train.
func TestRecommendWithCappedLearnerLosesNoEvents(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 12)
	store := sis.NewStore(cat)
	jobs, view := runProductionDay(t, gen, store, cat, 1)
	fg := NewFeatureGen(cat)
	feats, err := fg.Run(jobs, view)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bandit.DefaultConfig(3)
	cfg.MaxLogEvents = 4 // far below the day's job count
	cb := &CBRecommender{Catalog: cat, Service: bandit.New(cfg)}
	recs := RecommendWith(cb, cat, feats, RecommendOptions{Parallelism: 1})
	want := 0
	for _, r := range recs {
		if !r.CompileFailed {
			want++ // noops and successful recompiles are both rewarded
		}
	}
	if want <= cfg.MaxLogEvents {
		t.Fatalf("test needs more jobs (%d) than the cap (%d) to exercise eviction", want, cfg.MaxLogEvents)
	}
	if got := cb.Train(); got != want {
		t.Errorf("trained %d events, want %d: capped log evicted batch events before their reward", got, want)
	}
	// The cap is restored after the batch: the next ranks re-bound the log.
	for i := 0; i < cfg.MaxLogEvents*2; i++ {
		cb.Recommend(feats[0])
	}
	if n := cb.Service.LogSize(); n > cfg.MaxLogEvents+cfg.MaxLogEvents/4 {
		t.Errorf("log size %d after batch: SuspendEviction did not restore the cap", n)
	}
}

func TestRandomRecommenderPicksFromSpan(t *testing.T) {
	cat := rules.NewCatalog()
	rr := NewRandomRecommender(cat, 1)
	var f JobFeatures
	f.Span.Set(30)
	f.Span.Set(31)
	for i := 0; i < 20; i++ {
		flip, noop, _ := rr.Recommend(&f)
		if noop {
			t.Fatal("random recommender should always flip")
		}
		if flip.RuleID != 30 && flip.RuleID != 31 {
			t.Fatalf("flip outside span: %v", flip)
		}
	}
	// Empty span: noop.
	var empty JobFeatures
	if _, noop, _ := rr.Recommend(&empty); !noop {
		t.Error("empty span must be noop")
	}
}

func TestImprovedFilters(t *testing.T) {
	recs := []*Recommendation{
		{NoOp: true},
		{CompileFailed: true, CostDelta: 1},
		{CostDelta: -0.2},
		{CostDelta: 0.3},
		{CostDelta: 0},
	}
	got := Improved(recs)
	if len(got) != 1 || got[0].CostDelta != -0.2 {
		t.Errorf("Improved = %+v", got)
	}
}

func TestRepresentativePerTemplate(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 5)
	jobs, err := gen.JobsForDay(1)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*Recommendation
	for _, j := range jobs {
		f := &JobFeatures{Job: j}
		recs = append(recs, &Recommendation{Features: f, CostDelta: -0.1})
	}
	reps := RepresentativePerTemplate(recs, 7)
	seen := make(map[uint64]bool)
	for _, r := range reps {
		h := r.Features.Job.Template.Hash
		if seen[h] {
			t.Error("duplicate template among representatives")
		}
		seen[h] = true
	}
	// Deterministic for a fixed seed.
	reps2 := RepresentativePerTemplate(recs, 7)
	for i := range reps {
		if reps[i] != reps2[i] {
			t.Error("representative selection not deterministic")
		}
	}
	_ = cat
}

func TestValidatorLifecycle(t *testing.T) {
	v := NewValidator()
	if v.Ready() {
		t.Fatal("untrained validator should not be ready")
	}
	if err := v.Train(); err == nil {
		t.Fatal("training on empty dataset should fail")
	}
	// Synthetic relationship: the future PN delta tracks the observed
	// one, stabilized by the I/O deltas.
	for day := 0; day < 14; day++ {
		for i := 0; i < 5; i++ {
			read := float64(i-2) * 0.1
			written := float64(day%5-2) * 0.1
			pnObs := 0.5*read + 0.3*written
			v.Observe(day, pnObs, read, written, 0.5*pnObs+0.3*read+0.2*written)
		}
	}
	if v.SampleCount() != 70 {
		t.Fatalf("samples = %d", v.SampleCount())
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	if !v.Ready() {
		t.Fatal("trained validator should be ready")
	}
	// Strongly negative observations must be accepted, positive rejected.
	if !v.Accept(-0.4, -0.5, -0.5) {
		t.Error("big observed reduction should pass validation")
	}
	if v.Accept(0.3, 0.3, 0.3) {
		t.Error("observed increase should fail validation")
	}
	// Temporal split training.
	if err := v.TrainBefore(7); err != nil {
		t.Fatal(err)
	}
	if v.Model() == nil {
		t.Error("model should be exposed")
	}
}

func TestDeltas(t *testing.T) {
	base := exec.Metrics{DataRead: 100, DataWritten: 50, PNHours: 10}
	treat := exec.Metrics{DataRead: 80, DataWritten: 60, PNHours: 9}
	r, w, p := Deltas(base, treat)
	if r < -0.2001 || r > -0.1999 {
		t.Errorf("read delta = %v", r)
	}
	if w < 0.1999 || w > 0.2001 {
		t.Errorf("written delta = %v", w)
	}
	if p < -0.1001 || p > -0.0999 {
		t.Errorf("pn delta = %v", p)
	}
}

func TestProductionAppliesHints(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 5)
	store := sis.NewStore(cat)
	jobs, err := gen.JobsForDay(2)
	if err != nil {
		t.Fatal(err)
	}
	tpl := jobs[0].Template
	// Install a hint for the first template, picking a rule whose flip
	// actually compiles (flips can hit deterministic "unsupported
	// combination" rejections).
	var onRule rules.Rule
	found := false
	for _, cand := range cat.Rules(rules.OnByDefault) {
		cfg := cat.DefaultConfig().WithFlip(rules.Flip{RuleID: cand.ID, Enable: false})
		if _, err := optimizer.Optimize(jobs[0].Graph, cfg, optimizer.Options{Catalog: cat, Stats: jobs[0].Stats}); err == nil {
			onRule = cand
			found = true
			break
		}
	}
	if !found {
		t.Skip("no compilable flip for this template")
	}
	err = store.Upload(sis.File{Day: 1, Hints: []sis.Hint{{
		TemplateHash: tpl.Hash, TemplateID: tpl.ID,
		Flip: rules.Flip{RuleID: onRule.ID, Enable: false}, Day: 1,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	prod := NewProduction(cat, store, exec.DefaultCluster(1), 9)
	runs, view, err := prod.RunDay(2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(view) == 0 {
		t.Fatal("no view rows")
	}
	hinted := 0
	for _, r := range runs {
		if r.Job.Template == tpl && r.Hinted {
			hinted++
			if r.Flip.RuleID != onRule.ID {
				t.Errorf("wrong flip applied: %v", r.Flip)
			}
		}
		if r.Job.Template != tpl && r.Hinted {
			t.Error("hint leaked to other template")
		}
	}
	if hinted == 0 {
		t.Error("hint was not applied to the target template")
	}
}

func TestAdvisorEndToEnd(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 15)
	store := sis.NewStore(cat)
	adv := NewAdvisor(cat, store, Config{
		Seed:                 1,
		MinValidationSamples: 5,
		Flighting:            flighting.Config{Catalog: cat, Seed: 2},
		UniformLogging:       true,
	})

	prod := NewProduction(cat, store, exec.DefaultCluster(1), 3)
	var lastReport *DayReport
	for day := 1; day <= 4; day++ {
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			t.Fatal(err)
		}
		_, view, err := prod.RunDay(day, jobs)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			t.Fatal(err)
		}
		lastReport = rep
		if rep.JobsInView == 0 {
			t.Fatal("no jobs in view")
		}
		if rep.Recommendations != rep.JobsWithSpan {
			t.Errorf("day %d: recommendations %d != jobs with span %d",
				day, rep.Recommendations, rep.JobsWithSpan)
		}
		total := rep.NoOps + rep.LowerCost + rep.EqualCost + rep.HigherCost + rep.CompileFails
		if total != rep.Recommendations {
			t.Errorf("day %d: outcome counts %d != recommendations %d", day, total, rep.Recommendations)
		}
	}
	if lastReport.ValidationSamples == 0 {
		t.Error("validator gathered no samples over 4 days")
	}
	if store.Version() != 4 {
		t.Errorf("SIS versions = %d, want 4 (one per day)", store.Version())
	}
}

// TestParallelRunDayDeterministic is the parallelism contract: running
// the full pipeline with a worker pool must produce byte-identical
// DayReports and SIS uploads to the strictly sequential run, for every
// simulated day. Run under -race this also exercises the shared
// compile-cache and bandit locking.
func TestParallelRunDayDeterministic(t *testing.T) {
	type dayOut struct {
		Report *DayReport
		Hints  []sis.Hint
	}
	run := func(parallelism int) []dayOut {
		cat := rules.NewCatalog()
		gen, err := workload.New(workload.Config{Seed: 11, NumTemplates: 15, MaxDailyInstances: 2})
		if err != nil {
			t.Fatal(err)
		}
		store := sis.NewStore(cat)
		adv := NewAdvisor(cat, store, Config{
			Seed:                 1,
			MinValidationSamples: 5,
			Parallelism:          parallelism,
			Flighting:            flighting.Config{Catalog: cat, Seed: 2},
		})
		prod := NewProduction(cat, store, exec.DefaultCluster(1), 3)
		var out []dayOut
		for day := 1; day <= 3; day++ {
			jobs, err := gen.JobsForDay(day)
			if err != nil {
				t.Fatal(err)
			}
			_, view, err := prod.RunDay(day, jobs)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := adv.RunDay(day, jobs, view)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, dayOut{Report: rep, Hints: adv.ActiveHints()})
		}
		return out
	}

	seq := run(1)
	par := run(8)
	for i := range seq {
		sj, err := json.Marshal(seq[i])
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(par[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("day %d diverged between sequential and parallel runs:\nseq: %s\npar: %s", i+1, sj, pj)
		}
	}
}

func TestAdvisorHintsSurviveAcrossDays(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 12)
	store := sis.NewStore(cat)
	adv := NewAdvisor(cat, store, Config{
		Seed:                 7,
		MinValidationSamples: 3,
		Flighting:            flighting.Config{Catalog: cat, Seed: 2},
	})
	prod := NewProduction(cat, store, exec.DefaultCluster(2), 3)
	maxHints := 0
	for day := 1; day <= 6; day++ {
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			t.Fatal(err)
		}
		_, view, err := prod.RunDay(day, jobs)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			t.Fatal(err)
		}
		if rep.HintsUploaded < maxHints {
			// Hints merge with previous versions, so the count cannot
			// shrink in this setup.
			t.Errorf("day %d: hints shrank from %d to %d", day, maxHints, rep.HintsUploaded)
		}
		if rep.HintsUploaded > maxHints {
			maxHints = rep.HintsUploaded
		}
	}
}

func TestGreedyMultiFlip(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 8)
	jobs, err := gen.JobsForDay(1)
	if err != nil {
		t.Fatal(err)
	}
	fg := NewFeatureGen(cat)
	improvedAny := false
	for _, job := range jobs[:minInt(len(jobs), 6)] {
		sp, err := fg.spanFor(job)
		if err != nil || sp.Span.IsEmpty() {
			continue
		}
		one, err := GreedyMultiFlip(cat, job, sp.Span, 1)
		if err != nil {
			t.Fatal(err)
		}
		two, err := GreedyMultiFlip(cat, job, sp.Span, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(one.Flips) > 1 {
			t.Errorf("maxFlips=1 returned %d flips", len(one.Flips))
		}
		if two.Result.EstCost > one.Result.EstCost {
			t.Error("two greedy flips can never cost more than one")
		}
		if two.CostDelta() > 0 {
			t.Error("greedy search must never regress the estimated cost")
		}
		if len(two.Flips) > 0 {
			improvedAny = true
		}
		if two.Recompilations <= len(sp.Span.Bits()) && len(two.Flips) > 1 {
			t.Error("recompilation count should reflect the extra rounds")
		}
	}
	if !improvedAny {
		t.Skip("no improving flips among sampled jobs (seed-dependent)")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAdvisorSkipHinted(t *testing.T) {
	cat := rules.NewCatalog()
	gen := testWorkload(t, 8)
	store := sis.NewStore(cat)
	// Pre-install hints for every template: a stateful advisor then has
	// nothing left to explore.
	var hints []sis.Hint
	for i, tpl := range gen.Templates() {
		off := cat.Rules(rules.OffByDefault)[i%3]
		hints = append(hints, sis.Hint{
			TemplateHash: tpl.Hash, TemplateID: tpl.ID,
			Flip: rules.Flip{RuleID: off.ID, Enable: true}, Day: 0,
		})
	}
	if err := store.Upload(sis.File{Day: 0, Hints: hints}); err != nil {
		t.Fatal(err)
	}
	adv := NewAdvisor(cat, store, Config{
		Seed:       3,
		SkipHinted: true,
		Flighting:  flighting.Config{Catalog: cat, Seed: 4},
	})
	jobs, err := gen.JobsForDay(1)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewProduction(cat, store, exec.DefaultCluster(1), 5)
	_, view, err := prod.RunDay(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := adv.RunDay(1, jobs, view)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsWithSpan != 0 {
		t.Errorf("stateful advisor should skip all hinted templates, got %d", rep.JobsWithSpan)
	}
	if rep.HintsUploaded != len(hints) {
		t.Errorf("existing hints must survive: %d vs %d", rep.HintsUploaded, len(hints))
	}
}
