package core

import (
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/workload"
)

// MultiFlipResult is the outcome of a greedy multi-flip search.
type MultiFlipResult struct {
	Flips  []rules.Flip
	Config rules.Config
	Result *optimizer.Result
	// BaseCost is the default configuration's estimated cost.
	BaseCost float64
	// Recompilations counts the optimizer invocations spent, the cost
	// the paper's single-flip design keeps low.
	Recompilations int
}

// CostDelta returns the relative estimated-cost change achieved.
func (m *MultiFlipResult) CostDelta() float64 {
	if m.Result == nil || m.BaseCost == 0 {
		return 0
	}
	return m.Result.EstCost/m.BaseCost - 1
}

// GreedyMultiFlip searches for up to maxFlips rule flips from the job's
// span, greedily stacking the best single improvement at each round —
// the §8 future-work extension ("in future work we will propose multiple
// rule flips"). Each round costs one recompilation per remaining span
// rule, which is exactly the maintainability pressure that made the
// production system start with single flips.
func GreedyMultiFlip(cat *rules.Catalog, job *workload.Job, span rules.Bitset, maxFlips int) (*MultiFlipResult, error) {
	opts := optimizerOptions(cat, job, nil)
	base, err := optimizer.Optimize(job.Graph, cat.DefaultConfig(), opts)
	if err != nil {
		return nil, err
	}
	out := &MultiFlipResult{
		Config:         cat.DefaultConfig(),
		Result:         base,
		BaseCost:       base.EstCost,
		Recompilations: 1,
	}
	remaining := span.Bits()
	for round := 0; round < maxFlips && len(remaining) > 0; round++ {
		bestIdx := -1
		var bestRes *optimizer.Result
		var bestFlip rules.Flip
		for i, id := range remaining {
			flip := cat.FlipFor(id)
			// Stacked flips re-flip relative to the current config.
			cfg := out.Config.WithFlip(flip)
			out.Recompilations++
			res, err := optimizer.Optimize(job.Graph, cfg, opts)
			if err != nil {
				continue
			}
			if res.EstCost < out.Result.EstCost && (bestRes == nil || res.EstCost < bestRes.EstCost) {
				bestIdx, bestRes, bestFlip = i, res, flip
			}
		}
		if bestIdx < 0 {
			break // no remaining flip improves: greedy fix point
		}
		out.Flips = append(out.Flips, bestFlip)
		out.Config = out.Config.WithFlip(bestFlip)
		out.Result = bestRes
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out, nil
}
