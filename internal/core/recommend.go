package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/par"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/workload"
)

// RewardClip caps the estimated-cost-ratio reward: "we clip any plan that
// is more than 2x the baseline" (§4.2).
const RewardClip = 2.0

// Recommendation is the output of the Recommendation + Recompilation
// tasks for one job.
type Recommendation struct {
	Features *JobFeatures
	// Flip is the selected action; NoOp is true when the model chose to
	// change nothing.
	Flip rules.Flip
	NoOp bool
	// Recompiled is the treatment compilation result (nil on NoOp or
	// compile failure).
	Recompiled *optimizer.Result
	// CompileFailed marks flips that failed recompilation.
	CompileFailed bool
	// CostDelta is newCost/oldCost - 1 (negative is an improvement).
	CostDelta float64
	// Reward is the clipped cost-ratio reward fed back to the learner.
	Reward float64
}

// Recommender proposes at most one rule flip per job. Implementations:
// the contextual-bandit recommender and the uniform-random baseline.
type Recommender interface {
	// Recommend picks an action for the job.
	Recommend(f *JobFeatures) (flip rules.Flip, noop bool, eventID string)
	// Learn feeds back the observed reward for a previous Recommend.
	Learn(eventID string, reward float64)
	// Name identifies the recommender in reports.
	Name() string
}

// BatchRecommender is optionally implemented by recommenders whose
// learner must be told that a rank-all-then-learn-all batch is in flight
// (RecommendWith ranks every job before feeding back any reward, so a
// bounded learner could otherwise evict the earliest events before their
// Learn call arrives). Wrappers around a BatchRecommender must forward
// BeginBatch.
type BatchRecommender interface {
	Recommender
	// BeginBatch marks the start of a rank/learn batch; the returned
	// function (idempotent) ends it.
	BeginBatch() (end func())
}

// --- Featurization (§4.2 and §6: span co-occurrence features) ---
//
// Features are emitted as pre-hashed 64-bit IDs built by integer mixing
// of span bits — no fmt.Sprintf, no string hashing on the Rank hot path.
// Each feature family gets a distinct tag constant so "span bit 3" can
// never collide with "rows bucket 3" by construction rather than by
// string prefixing. LegacyContextFeatures keeps the original string-token
// form as the adapter/benchmark reference.

// featureMixK aliases the bandit's mixing constant: the featurizer and
// the learner's pair index must stay in the same hash space, so the
// constant and the bandit.Mix64 finalizer live in one place (the bandit).
const featureMixK = bandit.MixGamma

// Feature-family tags (arbitrary distinct constants).
const (
	tagSpan uint64 = iota + 0x51
	tagSpan2
	tagSpan3
	tagSpanAll
	tagRows
	tagBytes
	tagVertices
	tagActNoop
	tagActRule
	tagActKind
	tagActCat
	tagActKindDir
)

func feat1(tag, a uint64) uint64 { return bandit.Mix64(tag*featureMixK + a + 1) }
func feat2(tag, a, b uint64) uint64 {
	return bandit.Mix64(bandit.Mix64(tag*featureMixK+a+1)*featureMixK + b + 1)
}
func feat3(tag, a, b, c uint64) uint64 {
	return bandit.Mix64(bandit.Mix64(bandit.Mix64(tag*featureMixK+a+1)*featureMixK+b+1)*featureMixK + c + 1)
}

// ContextFeatures builds the bandit context for a job: the complete job
// span as bit-position indicators with second and third order
// co-occurrence crosses ("the surprising effectiveness of span features"),
// plus coarse input-size information. All features are pre-hashed IDs
// computed once at featurization; Rank never hashes strings.
func ContextFeatures(f *JobFeatures) bandit.Context {
	bits := f.Span.Bits()
	const maxPairs, maxTriples = 60, 40
	ids := make([]uint64, 0, len(bits)+maxPairs+maxTriples+3)
	for _, b := range bits {
		ids = append(ids, feat1(tagSpan, uint64(b)))
	}
	// Second and third order co-occurrence indicators, capped so long-tail
	// spans do not dilute per-feature credit.
	n := 0
	for i := 0; i < len(bits) && n < maxPairs; i++ {
		for j := i + 1; j < len(bits) && n < maxPairs; j++ {
			ids = append(ids, feat2(tagSpan2, uint64(bits[i]), uint64(bits[j])))
			n++
		}
	}
	n = 0
	for i := 0; i < len(bits) && n < maxTriples; i++ {
		for j := i + 1; j < len(bits) && n < maxTriples; j++ {
			for k := j + 1; k < len(bits) && n < maxTriples; k++ {
				ids = append(ids, feat3(tagSpan3, uint64(bits[i]), uint64(bits[j]), uint64(bits[k])))
				n++
			}
		}
	}
	// The complete span as one identity feature: "the complete set of bit
	// positions in the job span provides valuable and concise information"
	// (§6) — this is the highest-order co-occurrence indicator.
	all := tagSpanAll
	for _, b := range bits {
		all = bandit.Mix64(all*featureMixK + uint64(b) + 1)
	}
	ids = append(ids, all)
	// Input stream properties: log-bucketed row count and bytes read
	// ("representing some properties of the input data streams provided
	// marginal improvement").
	ids = append(ids,
		feat1(tagRows, uint64(logBucket(f.RowCount))),
		feat1(tagBytes, uint64(logBucket(f.BytesRead))),
	)
	return bandit.Context{IDs: ids}
}

// BasicContextFeatures builds a context without any span information:
// only the coarse input-stream properties. The paper found such plan-level
// featurizations "mostly ineffective" compared to span co-occurrence
// features (§6).
func BasicContextFeatures(f *JobFeatures) bandit.Context {
	return bandit.Context{IDs: []uint64{
		feat1(tagRows, uint64(logBucket(f.RowCount))),
		feat1(tagBytes, uint64(logBucket(f.BytesRead))),
		feat1(tagVertices, uint64(logBucket(float64(f.Vertices)))),
	}}
}

// LegacyContextFeatures is the original string-token featurization, kept
// as the adapter reference (external clients may still submit tokens
// through bandit.HashFeatures) and as the baseline the allocation
// benchmarks compare against. It encodes the same information as
// ContextFeatures in a different (string-hashed) ID space.
func LegacyContextFeatures(f *JobFeatures) bandit.Context {
	bits := f.Span.Bits()
	feats := make([]string, 0, len(bits)*3)
	for _, b := range bits {
		feats = append(feats, fmt.Sprintf("span:%d", b))
	}
	const maxPairs, maxTriples = 60, 40
	n := 0
	for i := 0; i < len(bits) && n < maxPairs; i++ {
		for j := i + 1; j < len(bits) && n < maxPairs; j++ {
			feats = append(feats, fmt.Sprintf("span2:%d,%d", bits[i], bits[j]))
			n++
		}
	}
	n = 0
	for i := 0; i < len(bits) && n < maxTriples; i++ {
		for j := i + 1; j < len(bits) && n < maxTriples; j++ {
			for k := j + 1; k < len(bits) && n < maxTriples; k++ {
				feats = append(feats, fmt.Sprintf("span3:%d,%d,%d", bits[i], bits[j], bits[k]))
				n++
			}
		}
	}
	all := tagSpanAll
	for _, b := range bits {
		all = bandit.Mix64(all*featureMixK + uint64(b) + 1)
	}
	feats = append(feats, fmt.Sprintf("spanall:%x", all))
	feats = append(feats,
		fmt.Sprintf("rows:%d", logBucket(f.RowCount)),
		fmt.Sprintf("bytes:%d", logBucket(f.BytesRead)),
	)
	return bandit.Context{Features: feats}
}

func logBucket(x float64) int {
	if x <= 1 {
		return 0
	}
	return int(math.Log10(x))
}

// flipNames caches the rendered form of every possible single-rule flip
// so ActionsFor does not re-run fmt for each job × span bit.
var (
	flipNamesOnce sync.Once
	flipNames     [rules.NumRules][2]string
)

func flipName(f rules.Flip) string {
	flipNamesOnce.Do(func() {
		for id := 0; id < rules.NumRules; id++ {
			flipNames[id][0] = rules.Flip{RuleID: id, Enable: false}.String()
			flipNames[id][1] = rules.Flip{RuleID: id, Enable: true}.String()
		}
	})
	dir := 0
	if f.Enable {
		dir = 1
	}
	return flipNames[f.RuleID][dir]
}

// noopActionIDs is the shared featurization of the "change nothing"
// action (immutable).
var noopActionIDs = []uint64{feat1(tagActNoop, 0)}

// ActionsFor builds the bandit action set for a job: no-op plus one flip
// per span rule, "corresponding to either changing nothing (1) or
// flipping a single bit in the span (S)". Actions are featurized by rule
// ID, rule kind and rule category as pre-hashed feature IDs.
func ActionsFor(cat *rules.Catalog, f *JobFeatures) ([]bandit.Action, []rules.Flip) {
	bits := f.Span.Bits()
	actions := make([]bandit.Action, 0, len(bits)+1)
	flips := make([]rules.Flip, 0, len(bits)+1)
	actions = append(actions, bandit.Action{ID: "noop", IDs: noopActionIDs})
	flips = append(flips, rules.Flip{})
	// One backing array for all per-rule feature IDs of this job.
	backing := make([]uint64, 0, len(bits)*4)
	for _, b := range bits {
		r := cat.Rule(b)
		flip := cat.FlipFor(b)
		enable := uint64(0)
		if flip.Enable {
			enable = 1
		}
		start := len(backing)
		backing = append(backing,
			feat1(tagActRule, uint64(r.ID)),
			feat1(tagActKind, uint64(r.Kind)),
			feat1(tagActCat, uint64(r.Category)),
			// Kind crossed with flip direction: the decisive signal
			// ("disabling compression helps", "enabling it hurts").
			feat2(tagActKindDir, uint64(r.Kind), enable),
		)
		actions = append(actions, bandit.Action{
			ID:  flipName(flip),
			IDs: backing[start : start+4 : start+4],
		})
		flips = append(flips, flip)
	}
	return actions, flips
}

// --- Contextual-bandit recommender ---

// CBRecommender selects flips with the bandit service (Azure
// Personalizer stand-in).
type CBRecommender struct {
	Catalog *rules.Catalog
	Service *bandit.Service
	// Uniform switches to the uniform-at-random logging policy used for
	// off-policy data collection.
	Uniform bool
	// BasicContext drops the span co-occurrence features and keeps only
	// coarse input-size context — the ablation for §6's "surprising
	// effectiveness of span features".
	BasicContext bool
}

// NewCBRecommender builds a CB recommender with its own bandit service.
func NewCBRecommender(cat *rules.Catalog, seed int64) *CBRecommender {
	return &CBRecommender{Catalog: cat, Service: bandit.New(bandit.DefaultConfig(seed))}
}

// Name implements Recommender.
func (c *CBRecommender) Name() string { return "contextual-bandit" }

// Recommend implements Recommender.
func (c *CBRecommender) Recommend(f *JobFeatures) (rules.Flip, bool, string) {
	ctx := ContextFeatures(f)
	if c.BasicContext {
		ctx = BasicContextFeatures(f)
	}
	actions, flips := ActionsFor(c.Catalog, f)
	var ranked bandit.Ranked
	var err error
	if c.Uniform {
		ranked, err = c.Service.RankUniform(ctx, actions)
	} else {
		ranked, err = c.Service.Rank(ctx, actions)
	}
	if err != nil {
		return rules.Flip{}, true, ""
	}
	flip := flips[ranked.Chosen]
	return flip, ranked.Chosen == 0, ranked.EventID
}

// Learn implements Recommender.
func (c *CBRecommender) Learn(eventID string, reward float64) {
	if eventID == "" {
		return
	}
	_ = c.Service.Reward(eventID, reward)
}

// Train triggers an off-policy training pass over rewarded events.
func (c *CBRecommender) Train() int { return c.Service.Train() }

// BeginBatch implements BatchRecommender by suspending event-log eviction
// on the bandit service for the duration of the batch.
func (c *CBRecommender) BeginBatch() (end func()) {
	if c.Service == nil {
		return func() {}
	}
	return c.Service.SuspendEviction()
}

// --- Uniform-random baseline (Table 3's comparator) ---

// RandomRecommender flips one rule chosen uniformly at random from the
// span — the baseline of §5.6.
type RandomRecommender struct {
	Catalog *rules.Catalog
	rng     *rand.Rand
}

// NewRandomRecommender builds the baseline recommender.
func NewRandomRecommender(cat *rules.Catalog, seed int64) *RandomRecommender {
	return &RandomRecommender{Catalog: cat, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Recommender.
func (r *RandomRecommender) Name() string { return "uniform-random" }

// Recommend implements Recommender.
func (r *RandomRecommender) Recommend(f *JobFeatures) (rules.Flip, bool, string) {
	bits := f.Span.Bits()
	if len(bits) == 0 {
		return rules.Flip{}, true, ""
	}
	id := bits[r.rng.Intn(len(bits))]
	return r.Catalog.FlipFor(id), false, ""
}

// Learn implements Recommender (the baseline does not learn).
func (r *RandomRecommender) Learn(string, float64) {}

// --- Recommendation + Recompilation tasks ---

// RecommendOptions tunes how the Recommendation + Recompilation tasks
// execute; the zero value reproduces defaults (GOMAXPROCS workers, no
// compile cache).
type RecommendOptions struct {
	// Parallelism bounds the recompilation worker pool (0 = GOMAXPROCS,
	// 1 = sequential). Results are bit-identical at any setting.
	Parallelism int
	// Cache memoizes the logical compilation phase across recompilations.
	Cache *optimizer.CompileCache
}

// Recommend runs the Recommendation and Recompilation tasks for a set of
// featurized jobs: pick an action per job, recompile under the flip,
// compute the clipped cost-ratio reward, and feed it back to the learner.
// Jobs whose flip does not improve the estimated cost are kept in the
// output (with their deltas) so callers can prune and count them.
func Recommend(rec Recommender, cat *rules.Catalog, feats []*JobFeatures) []*Recommendation {
	return RecommendWith(rec, cat, feats, RecommendOptions{})
}

// RecommendWith is Recommend with explicit execution options. The task is
// split into three phases so recompilation — the expensive, pure part —
// can fan out across a worker pool without perturbing the learner:
//
//  1. rank every job sequentially (the recommender's exploration RNG and
//     event log consume randomness in job order, exactly as before),
//  2. recompile the chosen flips in parallel (optimizer.Optimize is a
//     pure function of (graph, config, stats)),
//  3. feed rewards back sequentially in job order (training order — and
//     hence the learned weights — match the sequential pipeline bit for
//     bit).
func RecommendWith(rec Recommender, cat *rules.Catalog, feats []*JobFeatures, o RecommendOptions) []*Recommendation {
	// The rank-all-then-learn-all split below must not lose events: on a
	// shared learner the serve layer may have capped the event log, and a
	// day larger than the cap would evict the earliest ranks before their
	// reward arrives in phase 3. Tell batch-aware recommenders.
	if br, ok := rec.(BatchRecommender); ok {
		defer br.BeginBatch()()
	}
	out := make([]*Recommendation, len(feats))
	eventIDs := make([]string, len(feats))

	// Phase 1: sequential ranks.
	for i, f := range feats {
		r := &Recommendation{Features: f}
		r.Flip, r.NoOp, eventIDs[i] = rec.Recommend(f)
		out[i] = r
	}

	// Phase 2: parallel recompilation of the non-noop flips.
	recompile := func(i int) {
		r := out[i]
		f := r.Features
		cfg := cat.DefaultConfig().WithFlip(r.Flip)
		res, err := optimizer.Optimize(f.Job.Graph, cfg, optimizerOptions(cat, f.Job, o.Cache))
		if err != nil {
			// A failed recompilation produces no cost estimate and hence
			// no reward; the rank event stays unrewarded and is skipped
			// by training (which is why the learned policy only slightly
			// reduces failures relative to random, as in Table 3).
			r.CompileFailed = true
			r.Reward = 0
			r.CostDelta = math.Inf(1)
			return
		}
		r.Recompiled = res
		r.CostDelta = res.EstCost/f.EstCost - 1
		// Reward: ratio of default estimated cost over the recompiled
		// cost, clipped so outliers do not skew the model.
		ratio := f.EstCost / res.EstCost
		if ratio > RewardClip {
			ratio = RewardClip
		}
		r.Reward = ratio
	}
	par.For(len(out), o.Parallelism, func(i int) {
		if !out[i].NoOp {
			recompile(i)
		}
	})

	// Phase 3: sequential reward feedback in job order.
	for i, r := range out {
		if r.NoOp {
			r.Reward = 1 // "the reward of reject is known (relative change is 0)"
			r.CostDelta = 0
			rec.Learn(eventIDs[i], r.Reward)
			continue
		}
		if r.CompileFailed {
			continue // no reward: the rank event stays unrewarded
		}
		rec.Learn(eventIDs[i], r.Reward)
	}
	return out
}

// optimizerOptions bundles per-job compilation options.
func optimizerOptions(cat *rules.Catalog, job *workload.Job, cache *optimizer.CompileCache) optimizer.Options {
	return optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens, Cache: cache}
}

// Improved filters recommendations down to real flips with an estimated
// cost improvement, the short-circuit before flighting.
func Improved(recs []*Recommendation) []*Recommendation {
	var out []*Recommendation
	for _, r := range recs {
		if !r.NoOp && !r.CompileFailed && r.CostDelta < 0 {
			out = append(out, r)
		}
	}
	return out
}

// RepresentativePerTemplate keeps one recommendation per job template,
// picked deterministically from the seed: "we flight one representative
// job per template (picked randomly)".
func RepresentativePerTemplate(recs []*Recommendation, seed int64) []*Recommendation {
	byTemplate := make(map[uint64][]*Recommendation)
	var order []uint64
	for _, r := range recs {
		key := r.Features.Job.Template.Hash
		if _, ok := byTemplate[key]; !ok {
			order = append(order, key)
		}
		byTemplate[key] = append(byTemplate[key], r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Recommendation, 0, len(order))
	for _, key := range order {
		group := byTemplate[key]
		out = append(out, group[rng.Intn(len(group))])
	}
	return out
}
