package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"qoadvisor/internal/bandit"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/workload"
)

// RewardClip caps the estimated-cost-ratio reward: "we clip any plan that
// is more than 2x the baseline" (§4.2).
const RewardClip = 2.0

// Recommendation is the output of the Recommendation + Recompilation
// tasks for one job.
type Recommendation struct {
	Features *JobFeatures
	// Flip is the selected action; NoOp is true when the model chose to
	// change nothing.
	Flip rules.Flip
	NoOp bool
	// Recompiled is the treatment compilation result (nil on NoOp or
	// compile failure).
	Recompiled *optimizer.Result
	// CompileFailed marks flips that failed recompilation.
	CompileFailed bool
	// CostDelta is newCost/oldCost - 1 (negative is an improvement).
	CostDelta float64
	// Reward is the clipped cost-ratio reward fed back to the learner.
	Reward float64
}

// Recommender proposes at most one rule flip per job. Implementations:
// the contextual-bandit recommender and the uniform-random baseline.
type Recommender interface {
	// Recommend picks an action for the job.
	Recommend(f *JobFeatures) (flip rules.Flip, noop bool, eventID string)
	// Learn feeds back the observed reward for a previous Recommend.
	Learn(eventID string, reward float64)
	// Name identifies the recommender in reports.
	Name() string
}

// --- Featurization (§4.2 and §6: span co-occurrence features) ---

// ContextFeatures builds the bandit context for a job: the complete job
// span as bit-position indicators with second and third order
// co-occurrence crosses ("the surprising effectiveness of span features"),
// plus coarse input-size information.
func ContextFeatures(f *JobFeatures) bandit.Context {
	bits := f.Span.Bits()
	feats := make([]string, 0, len(bits)*3)
	for _, b := range bits {
		feats = append(feats, fmt.Sprintf("span:%d", b))
	}
	// Second and third order co-occurrence indicators, capped so long-tail
	// spans do not dilute per-feature credit.
	const maxPairs, maxTriples = 60, 40
	n := 0
	for i := 0; i < len(bits) && n < maxPairs; i++ {
		for j := i + 1; j < len(bits) && n < maxPairs; j++ {
			feats = append(feats, fmt.Sprintf("span2:%d,%d", bits[i], bits[j]))
			n++
		}
	}
	n = 0
	for i := 0; i < len(bits) && n < maxTriples; i++ {
		for j := i + 1; j < len(bits) && n < maxTriples; j++ {
			for k := j + 1; k < len(bits) && n < maxTriples; k++ {
				feats = append(feats, fmt.Sprintf("span3:%d,%d,%d", bits[i], bits[j], bits[k]))
				n++
			}
		}
	}
	// The complete span as one identity token: "the complete set of bit
	// positions in the job span provides valuable and concise information"
	// (§6) — this is the highest-order co-occurrence indicator.
	h := fnv.New64a()
	for _, b := range bits {
		fmt.Fprintf(h, "%d,", b)
	}
	feats = append(feats, fmt.Sprintf("spanall:%x", h.Sum64()))
	// Input stream properties: log-bucketed row count and bytes read
	// ("representing some properties of the input data streams provided
	// marginal improvement").
	feats = append(feats,
		fmt.Sprintf("rows:%d", logBucket(f.RowCount)),
		fmt.Sprintf("bytes:%d", logBucket(f.BytesRead)),
	)
	return bandit.Context{Features: feats}
}

// BasicContextFeatures builds a context without any span information:
// only the coarse input-stream properties. The paper found such plan-level
// featurizations "mostly ineffective" compared to span co-occurrence
// features (§6).
func BasicContextFeatures(f *JobFeatures) bandit.Context {
	return bandit.Context{Features: []string{
		fmt.Sprintf("rows:%d", logBucket(f.RowCount)),
		fmt.Sprintf("bytes:%d", logBucket(f.BytesRead)),
		fmt.Sprintf("vertices:%d", logBucket(float64(f.Vertices))),
	}}
}

func logBucket(x float64) int {
	if x <= 1 {
		return 0
	}
	return int(math.Log10(x))
}

// ActionsFor builds the bandit action set for a job: no-op plus one flip
// per span rule, "corresponding to either changing nothing (1) or
// flipping a single bit in the span (S)". Actions are featurized by rule
// ID and rule category.
func ActionsFor(cat *rules.Catalog, f *JobFeatures) ([]bandit.Action, []rules.Flip) {
	bits := f.Span.Bits()
	actions := make([]bandit.Action, 0, len(bits)+1)
	flips := make([]rules.Flip, 0, len(bits)+1)
	actions = append(actions, bandit.Action{ID: "noop", Features: []string{"act:noop"}})
	flips = append(flips, rules.Flip{})
	for _, b := range bits {
		r := cat.Rule(b)
		flip := cat.FlipFor(b)
		actions = append(actions, bandit.Action{
			ID: flip.String(),
			Features: []string{
				fmt.Sprintf("rule:%d", r.ID),
				fmt.Sprintf("kind:%s", r.Kind),
				fmt.Sprintf("cat:%s", r.Category),
				// Kind crossed with flip direction: the decisive signal
				// ("disabling compression helps", "enabling it hurts").
				fmt.Sprintf("kinddir:%s:%v", r.Kind, flip.Enable),
			},
		})
		flips = append(flips, flip)
	}
	return actions, flips
}

// --- Contextual-bandit recommender ---

// CBRecommender selects flips with the bandit service (Azure
// Personalizer stand-in).
type CBRecommender struct {
	Catalog *rules.Catalog
	Service *bandit.Service
	// Uniform switches to the uniform-at-random logging policy used for
	// off-policy data collection.
	Uniform bool
	// BasicContext drops the span co-occurrence features and keeps only
	// coarse input-size context — the ablation for §6's "surprising
	// effectiveness of span features".
	BasicContext bool
}

// NewCBRecommender builds a CB recommender with its own bandit service.
func NewCBRecommender(cat *rules.Catalog, seed int64) *CBRecommender {
	return &CBRecommender{Catalog: cat, Service: bandit.New(bandit.DefaultConfig(seed))}
}

// Name implements Recommender.
func (c *CBRecommender) Name() string { return "contextual-bandit" }

// Recommend implements Recommender.
func (c *CBRecommender) Recommend(f *JobFeatures) (rules.Flip, bool, string) {
	ctx := ContextFeatures(f)
	if c.BasicContext {
		ctx = BasicContextFeatures(f)
	}
	actions, flips := ActionsFor(c.Catalog, f)
	var ranked bandit.Ranked
	var err error
	if c.Uniform {
		ranked, err = c.Service.RankUniform(ctx, actions)
	} else {
		ranked, err = c.Service.Rank(ctx, actions)
	}
	if err != nil {
		return rules.Flip{}, true, ""
	}
	flip := flips[ranked.Chosen]
	return flip, ranked.Chosen == 0, ranked.EventID
}

// Learn implements Recommender.
func (c *CBRecommender) Learn(eventID string, reward float64) {
	if eventID == "" {
		return
	}
	_ = c.Service.Reward(eventID, reward)
}

// Train triggers an off-policy training pass over rewarded events.
func (c *CBRecommender) Train() int { return c.Service.Train() }

// --- Uniform-random baseline (Table 3's comparator) ---

// RandomRecommender flips one rule chosen uniformly at random from the
// span — the baseline of §5.6.
type RandomRecommender struct {
	Catalog *rules.Catalog
	rng     *rand.Rand
}

// NewRandomRecommender builds the baseline recommender.
func NewRandomRecommender(cat *rules.Catalog, seed int64) *RandomRecommender {
	return &RandomRecommender{Catalog: cat, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Recommender.
func (r *RandomRecommender) Name() string { return "uniform-random" }

// Recommend implements Recommender.
func (r *RandomRecommender) Recommend(f *JobFeatures) (rules.Flip, bool, string) {
	bits := f.Span.Bits()
	if len(bits) == 0 {
		return rules.Flip{}, true, ""
	}
	id := bits[r.rng.Intn(len(bits))]
	return r.Catalog.FlipFor(id), false, ""
}

// Learn implements Recommender (the baseline does not learn).
func (r *RandomRecommender) Learn(string, float64) {}

// --- Recommendation + Recompilation tasks ---

// Recommend runs the Recommendation and Recompilation tasks for a set of
// featurized jobs: pick an action per job, recompile under the flip,
// compute the clipped cost-ratio reward, and feed it back to the learner.
// Jobs whose flip does not improve the estimated cost are kept in the
// output (with their deltas) so callers can prune and count them.
func Recommend(rec Recommender, cat *rules.Catalog, feats []*JobFeatures) []*Recommendation {
	out := make([]*Recommendation, 0, len(feats))
	for _, f := range feats {
		r := &Recommendation{Features: f}
		flip, noop, eventID := rec.Recommend(f)
		r.Flip = flip
		r.NoOp = noop
		if noop {
			r.Reward = 1 // "the reward of reject is known (relative change is 0)"
			r.CostDelta = 0
			rec.Learn(eventID, r.Reward)
			out = append(out, r)
			continue
		}
		cfg := cat.DefaultConfig().WithFlip(flip)
		res, err := optimizer.Optimize(f.Job.Graph, cfg, optimizerOptions(cat, f.Job))
		if err != nil {
			// A failed recompilation produces no cost estimate and hence
			// no reward; the rank event stays unrewarded and is skipped
			// by training (which is why the learned policy only slightly
			// reduces failures relative to random, as in Table 3).
			r.CompileFailed = true
			r.Reward = 0
			r.CostDelta = math.Inf(1)
			out = append(out, r)
			continue
		}
		r.Recompiled = res
		r.CostDelta = res.EstCost/f.EstCost - 1
		// Reward: ratio of default estimated cost over the recompiled
		// cost, clipped so outliers do not skew the model.
		ratio := f.EstCost / res.EstCost
		if ratio > RewardClip {
			ratio = RewardClip
		}
		r.Reward = ratio
		rec.Learn(eventID, r.Reward)
		out = append(out, r)
	}
	return out
}

// optimizerOptions bundles per-job compilation options.
func optimizerOptions(cat *rules.Catalog, job *workload.Job) optimizer.Options {
	return optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens}
}

// Improved filters recommendations down to real flips with an estimated
// cost improvement, the short-circuit before flighting.
func Improved(recs []*Recommendation) []*Recommendation {
	var out []*Recommendation
	for _, r := range recs {
		if !r.NoOp && !r.CompileFailed && r.CostDelta < 0 {
			out = append(out, r)
		}
	}
	return out
}

// RepresentativePerTemplate keeps one recommendation per job template,
// picked deterministically from the seed: "we flight one representative
// job per template (picked randomly)".
func RepresentativePerTemplate(recs []*Recommendation, seed int64) []*Recommendation {
	byTemplate := make(map[uint64][]*Recommendation)
	var order []uint64
	for _, r := range recs {
		key := r.Features.Job.Template.Hash
		if _, ok := byTemplate[key]; !ok {
			order = append(order, key)
		}
		byTemplate[key] = append(byTemplate[key], r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Recommendation, 0, len(order))
	for _, key := range order {
		group := byTemplate[key]
		out = append(out, group[rng.Intn(len(group))])
	}
	return out
}
