package core

import (
	"errors"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/regression"
)

// DefaultValidationThreshold is the acceptance cutoff on the predicted
// PNhours delta. The paper's production setting is -0.1 for its SCOPE
// workloads and is explicitly a per-workload knob ("the threshold can be
// increased or decreased based on how aggressive we want to be", §4.3);
// the simulator's delta scale is roughly 2-3x more compressed than the
// production workloads', so the default here is -0.05.
const DefaultValidationThreshold = -0.05

// Validator is the Validation task: a supervised linear-regression model
// that predicts the PNhours delta of a rule flip from the DataRead and
// DataWritten deltas observed in a single flighting run (§4.3). The
// intuition: "if with the new configuration a job reads and writes less
// data, this will likely translate into better runtime", and unlike
// latency those I/O volumes are stable across runs.
type Validator struct {
	// Threshold is the acceptance cutoff on predicted PNhours delta.
	Threshold float64
	// Lambda is the ridge penalty used when fitting.
	Lambda float64

	samples []regression.Sample
	model   *regression.Linear
}

// NewValidator creates a validator with the production threshold.
func NewValidator() *Validator {
	return &Validator{Threshold: DefaultValidationThreshold, Lambda: 1e-6}
}

// Deltas computes the (DataRead delta, DataWritten delta, PNhours delta)
// triple of an A/B flight, using the new/old - 1 convention.
func Deltas(base, treat exec.Metrics) (readDelta, writtenDelta, pnDelta float64) {
	return relDelta(base.DataRead, treat.DataRead),
		relDelta(base.DataWritten, treat.DataWritten),
		relDelta(base.PNHours, treat.PNHours)
}

func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return newV/oldV - 1
}

// Observe adds one flighting observation to the training dataset: the
// single flight's observed PNhours delta plus the DataRead and
// DataWritten deltas ("in addition to the PNhours metric itself, DataRead
// and DataWritten deltas are good indicators"), labelled with the PNhours
// delta of the job's next occurrence. The date indexes the sample for
// temporal splitting.
func (v *Validator) Observe(date int, pnObserved, readDelta, writtenDelta, futurePNDelta float64) {
	v.samples = append(v.samples, regression.Sample{
		Date: date,
		X:    []float64{pnObserved, readDelta, writtenDelta},
		Y:    futurePNDelta,
	})
}

// SampleCount returns the size of the gathered dataset.
func (v *Validator) SampleCount() int { return len(v.samples) }

// Train fits the model on all gathered samples.
func (v *Validator) Train() error {
	if len(v.samples) < 4 {
		return errors.New("core: not enough validation samples")
	}
	m, err := regression.FitSamples(v.samples, v.Lambda)
	if err != nil {
		return err
	}
	v.model = m
	return nil
}

// TrainBefore fits the model only on samples dated strictly before
// cutoff, the paper's temporal train/test protocol (train on week0, test
// on week1).
func (v *Validator) TrainBefore(cutoff int) error {
	train, _ := regression.TemporalSplit(v.samples, cutoff)
	if len(train) < 4 {
		return errors.New("core: not enough validation samples before cutoff")
	}
	m, err := regression.FitSamples(train, v.Lambda)
	if err != nil {
		return err
	}
	v.model = m
	return nil
}

// Ready reports whether the model has been trained.
func (v *Validator) Ready() bool { return v.model != nil }

// Predict returns the predicted future PNhours delta of a flip from one
// flight's observed deltas. It panics if the model is untrained; check
// Ready first.
func (v *Validator) Predict(pnObserved, readDelta, writtenDelta float64) float64 {
	return v.model.Predict([]float64{pnObserved, readDelta, writtenDelta})
}

// Accept decides whether a flip passes validation: the predicted future
// PNhours delta must be below the threshold.
func (v *Validator) Accept(pnObserved, readDelta, writtenDelta float64) bool {
	return v.Predict(pnObserved, readDelta, writtenDelta) < v.Threshold
}

// Model exposes the fitted model for reporting (nil if untrained).
func (v *Validator) Model() *regression.Linear { return v.model }

// Samples exposes the gathered dataset (shared slice; do not modify).
func (v *Validator) Samples() []regression.Sample { return v.samples }
