package flighting

import (
	"testing"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/workload"
)

func testJobs(t *testing.T, n int) []*workload.Job {
	t.Helper()
	gen, err := workload.New(workload.Config{Seed: 21, NumTemplates: n})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := gen.JobsForDay(3)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func requestsFor(jobs []*workload.Job, cat *rules.Catalog) []Request {
	def := cat.DefaultConfig()
	var reqs []Request
	for i, j := range jobs {
		// Flip an arbitrary on-by-default rule per job.
		r := cat.Rules(rules.OnByDefault)[i%10]
		flip := rules.Flip{RuleID: r.ID, Enable: false}
		reqs = append(reqs, Request{
			Job:       j,
			Treatment: def.WithFlip(flip),
			EstCost:   float64(i),
			Flip:      flip,
		})
	}
	return reqs
}

func TestRunReturnsResultPerRequest(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 12)
	svc := New(Config{Catalog: cat, Seed: 1})
	reqs := requestsFor(jobs, cat)
	results := svc.Run(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
}

func TestOutcomeTaxonomy(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 40)
	svc := New(Config{Catalog: cat, Seed: 1})
	results := svc.Run(requestsFor(jobs, cat))
	counts := CountByOutcome(results)
	if counts[Success] == 0 {
		t.Error("expected some successes")
	}
	// The deterministic taxonomy should produce some non-success
	// outcomes over 40+ templates.
	if counts[Failure]+counts[Filtered] == 0 {
		t.Error("expected some failures or filtered jobs")
	}
	for _, r := range results {
		if r.Outcome == Success {
			if r.Baseline.PNHours <= 0 || r.Treat.PNHours <= 0 {
				t.Errorf("success without metrics: %+v", r.Outcome)
			}
			if r.HoursUsed <= 0 {
				t.Error("success should consume budget")
			}
		}
	}
}

func TestBudgetExhaustionSkips(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 30)
	svc := New(Config{Catalog: cat, Seed: 1, TotalBudgetHours: 1e-9, QueueSize: 1})
	results := svc.Run(requestsFor(jobs, cat))
	counts := CountByOutcome(results)
	if counts[Skipped] == 0 {
		t.Error("tiny budget should skip most requests")
	}
	if counts[Success] > 1 {
		t.Errorf("tiny budget ran %d successes", counts[Success])
	}
}

func TestCheapestFirstOrdering(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 10)
	// Give the LAST request the lowest estimated cost and a budget that
	// only fits roughly one flight: it must be the one processed.
	reqs := requestsFor(jobs, cat)
	for i := range reqs {
		reqs[i].EstCost = float64(len(reqs) - i)
	}
	svc := New(Config{Catalog: cat, Seed: 1, TotalBudgetHours: 1e-9, QueueSize: 1})
	results := svc.Run(reqs)
	// First processed result must be the cheapest request.
	if len(results) == 0 {
		t.Fatal("no results")
	}
	first := results[0]
	if first.Request.EstCost != 1 {
		t.Errorf("first processed cost = %v, want 1 (cheapest first)", first.Request.EstCost)
	}
}

func TestSuccesses(t *testing.T) {
	rs := []Result{{Outcome: Success}, {Outcome: Failure}, {Outcome: Success}, {Outcome: Skipped}}
	if got := len(Successes(rs)); got != 2 {
		t.Errorf("successes = %d", got)
	}
}

func TestTreatmentCompileFailureIsFailure(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 8)
	def := cat.DefaultConfig()
	req := cat.Rules(rules.Required)[0]
	var reqs []Request
	for _, j := range jobs {
		reqs = append(reqs, Request{
			Job:       j,
			Treatment: def.WithFlip(rules.Flip{RuleID: req.ID, Enable: false}),
		})
	}
	results := New(Config{Catalog: cat, Seed: 1}).Run(reqs)
	for _, r := range results {
		if r.Outcome == Success {
			t.Error("disabling a required rule can never flight successfully")
		}
	}
}

func TestABRunsShareJobButDifferInSeed(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 15)
	svc := New(Config{Catalog: cat, Seed: 5})
	results := svc.Run(requestsFor(jobs, cat))
	for _, r := range Successes(results) {
		if r.Baseline.LatencySec == r.Treat.LatencySec && r.Baseline.DataRead == r.Treat.DataRead {
			// Identical latency AND identical IO would mean the A/B arms
			// shared a seed and a plan; at least the noise must differ.
			t.Error("A and B arms look identical")
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if Success.String() != "success" || Skipped.String() != "skipped" {
		t.Error("outcome names wrong")
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome should render")
	}
}

// resultsEqual compares two result slices field-by-field on the
// deterministic payload (outcome, metrics, budget accounting).
func resultsEqual(t *testing.T, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Outcome != b[i].Outcome ||
			a[i].HoursUsed != b[i].HoursUsed ||
			a[i].Baseline != b[i].Baseline ||
			a[i].Treat != b[i].Treat ||
			a[i].FutureBaseline != b[i].FutureBaseline ||
			a[i].FutureTreat != b[i].FutureTreat ||
			a[i].HasFuture != b[i].HasFuture ||
			a[i].Request.Job.ID != b[i].Request.Job.ID {
			t.Fatalf("result %d differs:\nseq: %+v\npar: %+v", i, a[i], b[i])
		}
	}
}

// TestParallelRunMatchesSequential is the determinism contract of the
// worker pool: any parallelism produces results bit-identical to the
// sequential path, both with a generous budget and with one tight enough
// that skips happen mid-chunk.
func TestParallelRunMatchesSequential(t *testing.T) {
	cat := rules.NewCatalog()
	jobs := testJobs(t, 14)
	for _, budget := range []float64{0, 0.02} { // 0 = default (generous)
		seq := New(Config{Catalog: cat, Seed: 9, Parallelism: 1, TotalBudgetHours: budget, QueueSize: 1})
		par := New(Config{Catalog: cat, Seed: 9, Parallelism: 8, TotalBudgetHours: budget, QueueSize: 1})
		reqs := requestsFor(jobs, cat)
		resultsEqual(t, seq.Run(reqs), par.Run(reqs))
	}
}
