// Package flighting simulates the SCOPE Flighting Service: a
// pre-production A/B testing environment that re-runs jobs under a
// treatment rule configuration and compares them with the default. The
// simulator reproduces the operational surface the paper describes in
// §4.3: a fixed-size job queue, a per-job timeout, a total time budget,
// cheapest-estimated-cost-first ordering, and the four outcomes (failure,
// timeout, filtered, success).
package flighting

import (
	"fmt"
	"sort"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/par"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/workload"
)

// Outcome classifies one flighting attempt.
type Outcome int

const (
	// Success: both arms ran and produced metrics.
	Success Outcome = iota
	// Failure: the job information or input data expired, or the
	// treatment configuration failed to compile.
	Failure
	// Timeout: the flight exceeded the per-job time limit.
	Timeout
	// Filtered: the job belongs to a class the Flighting Service does
	// not support.
	Filtered
	// Skipped: the total flighting budget ran out before this request.
	Skipped
)

var outcomeNames = [...]string{"success", "failure", "timeout", "filtered", "skipped"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Request asks for one A/B flight of a job under a treatment config.
type Request struct {
	Job       *workload.Job
	Treatment rules.Config
	// EstCost is the treatment's estimated cost, used for
	// cheapest-first ordering.
	EstCost float64
	// Flip is carried through for bookkeeping.
	Flip rules.Flip
}

// Result is the outcome of one flighting attempt.
type Result struct {
	Request   Request
	Outcome   Outcome
	Baseline  exec.Metrics
	Treat     exec.Metrics
	HoursUsed float64

	// FutureBaseline/FutureTreat are the metrics of the recurring job's
	// next occurrence under each arm. In production these arrive with the
	// following days' telemetry; the simulator computes them eagerly so
	// the Validation model can be trained on (single flight -> future
	// outcome) pairs, the exact question of §5.3.
	FutureBaseline exec.Metrics
	FutureTreat    exec.Metrics
	HasFuture      bool

	// Err holds the compile error for Failure outcomes caused by the
	// treatment configuration.
	Err error
}

// Config parameterizes the service.
type Config struct {
	Catalog *rules.Catalog
	Cluster *exec.Cluster
	// QueueSize is the number of concurrent flighting slots.
	QueueSize int
	// PerJobTimeoutHours is the per-flight wall-clock cap (paper: 24h).
	PerJobTimeoutHours float64
	// TotalBudgetHours is the total flighting budget per pipeline run.
	TotalBudgetHours float64
	// Seed drives the A/B run seeds.
	Seed int64
	// Parallelism bounds the worker pool flights fan out across
	// (0 = GOMAXPROCS, 1 = strictly sequential). Every flight is
	// deterministic per request, and the budget is folded over the
	// cheapest-first order after execution, so results are bit-identical
	// at any parallelism.
	Parallelism int
	// Cache, when set, memoizes the logical compilation phase across the
	// baseline/treatment/future arms (shared with the offline pipeline).
	Cache *optimizer.CompileCache
}

// Service runs flights.
type Service struct {
	cfg Config
}

// New creates a flighting service. Zero config fields get defaults
// mirroring the paper's description.
func New(cfg Config) *Service {
	if cfg.Catalog == nil {
		cfg.Catalog = rules.NewCatalog()
	}
	if cfg.Cluster == nil {
		cfg.Cluster = exec.DefaultCluster(cfg.Seed)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 8
	}
	if cfg.PerJobTimeoutHours <= 0 {
		cfg.PerJobTimeoutHours = 24
	}
	if cfg.TotalBudgetHours <= 0 {
		cfg.TotalBudgetHours = 200
	}
	return &Service{cfg: cfg}
}

// classify applies the deterministic failure/filter taxonomy: some job
// classes are unsupported by the Flighting Service, and some inputs have
// expired by the time the offline pipeline runs (the view is ~3 days
// delayed).
func classify(job *workload.Job) Outcome {
	h := job.Template.Hash
	switch {
	case h%17 == 4:
		return Failure // input data expired
	case h%11 == 3:
		return Filtered // unsupported job class
	default:
		return Success
	}
}

// Run processes requests cheapest-estimated-cost-first under the service
// budgets and returns one Result per request (in processing order).
// Requests that do not fit in the budget come back as Skipped, so callers
// can still learn from a partially completed flighting pass — "we flight
// jobs with lower estimated costs first, such that if we finish the total
// time budget, we are still able to provide some suggestion".
//
// Flights execute on a bounded worker pool (Config.Parallelism). Each
// flight is a pure function of its request, so parallel execution is
// speculative with respect to the budget: chunks of the ordered queue run
// concurrently, then the budget is folded over the chunk sequentially in
// cheapest-first order, reproducing the sequential semantics exactly —
// including which requests come back Skipped.
func (s *Service) Run(reqs []Request) []Result {
	ordered := append([]Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].EstCost < ordered[j].EstCost
	})

	budget := s.cfg.TotalBudgetHours * float64(s.cfg.QueueSize)
	workers := par.Resolve(s.cfg.Parallelism)

	used := 0.0
	results := make([]Result, 0, len(ordered))
	if workers == 1 {
		for _, req := range ordered {
			if used >= budget {
				results = append(results, Result{Request: req, Outcome: Skipped})
				continue
			}
			res := s.flightOne(req)
			used += res.HoursUsed
			results = append(results, res)
		}
		return results
	}

	// Chunked speculative execution: bounded wasted work when the budget
	// runs out mid-chunk, full parallelism when it does not (the common
	// case — the paper sizes the budget to cover the queue).
	chunkSize := workers * 4
	for start := 0; start < len(ordered); start += chunkSize {
		if used >= budget {
			// Budget exhausted: everything left is Skipped, uncomputed.
			for _, req := range ordered[start:] {
				results = append(results, Result{Request: req, Outcome: Skipped})
			}
			break
		}
		chunk := ordered[start:min(start+chunkSize, len(ordered))]
		computed := make([]Result, len(chunk))
		par.For(len(chunk), workers, func(i int) { computed[i] = s.flightOne(chunk[i]) })
		// Sequential budget fold over the chunk, in queue order.
		for i, req := range chunk {
			if used >= budget {
				results = append(results, Result{Request: req, Outcome: Skipped})
				continue
			}
			used += computed[i].HoursUsed
			results = append(results, computed[i])
		}
	}
	return results
}

// flightOne runs a single A/B comparison.
func (s *Service) flightOne(req Request) Result {
	out := Result{Request: req}
	if o := classify(req.Job); o != Success {
		out.Outcome = o
		out.HoursUsed = 0.05 // setup cost of a failed attempt
		return out
	}
	job := req.Job
	opts := optimizer.Options{Catalog: s.cfg.Catalog, Stats: job.Stats, Tokens: job.Tokens, Cache: s.cfg.Cache}

	baseRes, err := optimizer.Optimize(job.Graph, s.cfg.Catalog.DefaultConfig(), opts)
	if err != nil {
		out.Outcome = Failure
		out.Err = err
		return out
	}
	treatRes, err := optimizer.Optimize(job.Graph, req.Treatment, opts)
	if err != nil {
		out.Outcome = Failure
		out.Err = err
		out.HoursUsed = 0.05
		return out
	}

	seed := s.cfg.Seed + int64(job.Date)*1000003 + int64(len(job.ID))
	out.Baseline = exec.Run(baseRes.Plan, job.Truth, job.Stats, s.cfg.Cluster, seed)
	out.Treat = exec.Run(treatRes.Plan, job.Truth, job.Stats, s.cfg.Cluster, seed+1)

	hours := (out.Baseline.LatencySec + out.Treat.LatencySec) / 3600
	if out.Baseline.LatencySec/3600 > s.cfg.PerJobTimeoutHours ||
		out.Treat.LatencySec/3600 > s.cfg.PerJobTimeoutHours {
		out.Outcome = Timeout
		out.HoursUsed = s.cfg.PerJobTimeoutHours
		return out
	}
	out.Outcome = Success
	out.HoursUsed = hours

	// Next occurrence of the recurring template, for validation labels.
	if future, err := job.Template.Instantiate(job.Date+1, job.Seq); err == nil {
		fOpts := optimizer.Options{Catalog: s.cfg.Catalog, Stats: future.Stats, Tokens: future.Tokens, Cache: s.cfg.Cache}
		fBase, err1 := optimizer.Optimize(future.Graph, s.cfg.Catalog.DefaultConfig(), fOpts)
		fTreat, err2 := optimizer.Optimize(future.Graph, req.Treatment, fOpts)
		if err1 == nil && err2 == nil {
			out.FutureBaseline = exec.Run(fBase.Plan, future.Truth, future.Stats, s.cfg.Cluster, seed+77)
			out.FutureTreat = exec.Run(fTreat.Plan, future.Truth, future.Stats, s.cfg.Cluster, seed+78)
			out.HasFuture = true
		}
	}
	return out
}

// Successes filters results down to successful flights.
func Successes(results []Result) []Result {
	var ok []Result
	for _, r := range results {
		if r.Outcome == Success {
			ok = append(ok, r)
		}
	}
	return ok
}

// CountByOutcome tallies results per outcome.
func CountByOutcome(results []Result) map[Outcome]int {
	m := make(map[Outcome]int)
	for _, r := range results {
		m[r.Outcome]++
	}
	return m
}
