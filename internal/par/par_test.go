package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForSequentialPreservesOrder(t *testing.T) {
	var got []int
	For(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("workers=1 order = %v, want ascending", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("visited %d indexes, want 5", len(got))
	}
}

func TestForParallelVisitsAllOnce(t *testing.T) {
	const n = 200
	seen := make([]int32, n)
	For(n, 8, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	inFlight, peak := 0, 0
	For(50, workers, func(int) {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		mu.Lock()
		inFlight--
		mu.Unlock()
	})
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak, workers)
	}
}

func TestResolve(t *testing.T) {
	if Resolve(4) != 4 {
		t.Error("Resolve(4) != 4")
	}
	if Resolve(0) < 1 || Resolve(-1) < 1 {
		t.Error("Resolve must return at least 1 for non-positive input")
	}
}
