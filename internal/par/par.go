// Package par provides the bounded worker-pool primitive the pipeline's
// parallel stages (feature generation, recompilation, flighting) share.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0, n) on a worker pool bounded to
// workers goroutines (workers <= 0 means GOMAXPROCS). workers == 1 runs
// strictly sequentially in index order on the calling goroutine — the
// mode the pipeline's "bit-identical at any parallelism" guarantee is
// checked against — so at any other setting fn must be order-independent
// and safe for concurrent invocation. For returns when every fn call has.
func For(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Resolve maps a Parallelism config value to the worker count For would
// use, for callers that need the number itself (e.g. to size work chunks).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}
