package wal

import "time"

// Faults is a fault-injection plan for chaos testing the journal's
// callers: error and latency injection on the append path, latency
// injection on the fsync path. Injection is deliberately NON-latching
// — a real I/O error latches the journal fail-stop (every later
// append fails), but an injected AppendErr fails only the appends the
// plan says to fail, so tests can script a fault window and then
// verify the system recovers once the window closes. Callbacks must
// be safe for concurrent use; they run on the caller's goroutine
// (AppendErr/AppendDelay on the appending request, SyncDelay on the
// committer or a sync-mode Commit waiter).
type Faults struct {
	// AppendErr, when non-nil, is consulted by every Append before any
	// journal state changes; a non-nil return fails that append with
	// the returned error and no LSN is consumed.
	AppendErr func(payload []byte) error
	// AppendDelay, when non-nil, stalls each Append by the returned
	// duration before it runs (slow-buffered-write simulation). The
	// stall happens outside the journal mutex.
	AppendDelay func() time.Duration
	// SyncDelay, when non-nil, stalls each fsync by the returned
	// duration (group-commit stall simulation). Like the fsync itself
	// it runs outside the journal mutex, so appends keep flowing while
	// commit waiters stall — exactly a slow disk's signature.
	SyncDelay func() time.Duration
}

// SetFaults installs a fault-injection plan (nil removes it). This is
// test instrumentation: when no plan is installed the cost is one
// atomic load per append/fsync.
func (w *WAL) SetFaults(f *Faults) {
	if f == nil {
		w.faults.Store(nil)
		return
	}
	w.faults.Store(f)
}

// injectAppend runs the append-side plan, returning the injected
// error if any.
func (w *WAL) injectAppend(payload []byte) error {
	f := w.faults.Load()
	if f == nil {
		return nil
	}
	if f.AppendDelay != nil {
		if d := f.AppendDelay(); d > 0 {
			time.Sleep(d)
		}
	}
	if f.AppendErr != nil {
		return f.AppendErr(payload)
	}
	return nil
}

// injectSyncDelay runs the fsync-side latency plan.
func (w *WAL) injectSyncDelay() {
	f := w.faults.Load()
	if f == nil || f.SyncDelay == nil {
		return
	}
	if d := f.SyncDelay(); d > 0 {
		time.Sleep(d)
	}
}
