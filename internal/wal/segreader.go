package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
)

// SegmentInfo describes one journal segment file on disk — the
// exported form of the directory scan, shared by replay, tailing, and
// the audit engine.
type SegmentInfo struct {
	// Path is the segment file's location.
	Path string
	// Index is the segment's sequence number (from the filename).
	Index uint64
	// FirstLSN is the LSN of the segment's first record (from the
	// header). Records are dense: record i has LSN FirstLSN+i.
	FirstLSN uint64
}

// Segments lists the journal segments in dir in LSN order, read-only —
// the offline entry point for DirSource replay and audit queries.
// Non-segment files (snapshots, index sidecars) are ignored.
func Segments(dir string) ([]SegmentInfo, error) {
	segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	infos := make([]SegmentInfo, len(segs))
	for i, s := range segs {
		infos[i] = SegmentInfo{Path: s.path, Index: s.index, FirstLSN: s.firstLSN}
	}
	return infos, nil
}

// SidecarPath returns the index-sidecar path paired with a segment
// file: wal-NNN.seg → wal-NNN.idx. Sidecars are derived data — always
// safe to delete, rebuilt on demand — and the journal's own directory
// scan ignores them.
func SidecarPath(segPath string) string {
	return strings.TrimSuffix(segPath, segSuffix) + ".idx"
}

// CorruptRecordError reports a torn or corrupt record frame inside a
// segment: a short header or payload, an absurd length prefix, or a
// CRC mismatch. Whether it is fatal depends on where it sits — at the
// tail of the final segment it is the expected crash artifact
// (truncate and move on); anywhere else it is real data loss. Callers
// detect it with errors.As and decide.
type CorruptRecordError struct {
	// Path is the damaged segment file.
	Path string
	// Offset is the byte offset of the damaged frame.
	Offset int64
	// Reason describes the damage ("torn record header", "CRC
	// mismatch: stored x, computed y", ...).
	Reason string
	// Err is the underlying I/O error, when one exists.
	Err error
}

// Error implements the error interface.
func (e *CorruptRecordError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("wal: %s: %s at offset %d: %v", e.Path, e.Reason, e.Offset, e.Err)
	}
	return fmt.Sprintf("wal: %s: %s at offset %d", e.Path, e.Reason, e.Offset)
}

// Unwrap exposes the underlying I/O error to errors.Is.
func (e *CorruptRecordError) Unwrap() error { return e.Err }

// IsCorruptRecord reports whether err is (or wraps) a
// *CorruptRecordError.
func IsCorruptRecord(err error) bool {
	var cre *CorruptRecordError
	return errors.As(err, &cre)
}

// SegmentReader iterates one segment's records in LSN order. It is the
// single framing decoder all journal consumers share: Replay and
// DirSource wrap it per segment, the tail Cursor resumes it at a saved
// offset, and the audit engine seeks it through sparse indexes.
//
// Next returns io.EOF at a clean frame boundary (the segment's current
// end — an active segment may grow past it later) and a
// *CorruptRecordError at damage; the caller chooses whether damage is
// a torn tail to truncate or mid-log loss to fail on.
type SegmentReader struct {
	path    string
	f       *os.File
	br      *bufio.Reader
	nextLSN uint64
	off     int64
	scratch []byte
}

// OpenSegment opens a segment at its first record, validating the
// 16-byte header (magic and first-LSN agreement with the directory
// scan).
func OpenSegment(info SegmentInfo) (*SegmentReader, error) {
	f, err := os.Open(info.Path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s: short segment header: %w", info.Path, err)
	}
	if string(hdr[:8]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("wal: %s: bad segment magic %q", info.Path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != info.FirstLSN {
		f.Close()
		return nil, fmt.Errorf("wal: %s: header first LSN %d, directory scan said %d", info.Path, got, info.FirstLSN)
	}
	return &SegmentReader{path: info.Path, f: f, br: br, nextLSN: info.FirstLSN, off: segHeaderSize}, nil
}

// OpenSegmentAt opens a segment positioned at a known frame boundary:
// offset must be a value previously returned by Offset (or recorded in
// an index sidecar) and nextLSN the LSN of the record starting there.
// The header is not re-validated — the caller already did when the
// offset was learned.
func OpenSegmentAt(info SegmentInfo, offset int64, nextLSN uint64) (*SegmentReader, error) {
	f, err := os.Open(info.Path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &SegmentReader{
		path:    info.Path,
		f:       f,
		br:      bufio.NewReaderSize(f, 1<<16),
		nextLSN: nextLSN,
		off:     offset,
	}, nil
}

// Next returns the next record. The payload slice is reused between
// calls — consume or copy it before calling Next again. A clean end at
// a frame boundary returns io.EOF; damage returns a
// *CorruptRecordError positioned at the bad frame.
func (r *SegmentReader) Next() (lsn uint64, payload []byte, err error) {
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, &CorruptRecordError{Path: r.path, Offset: r.off, Reason: "torn record header", Err: err}
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > MaxRecordSize {
		return 0, nil, &CorruptRecordError{Path: r.path, Offset: r.off, Reason: fmt.Sprintf("corrupt record length %d", length)}
	}
	if cap(r.scratch) < int(length) {
		r.scratch = make([]byte, length)
	}
	payload = r.scratch[:length]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return 0, nil, &CorruptRecordError{Path: r.path, Offset: r.off, Reason: "torn record payload", Err: err}
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return 0, nil, &CorruptRecordError{Path: r.path, Offset: r.off, Reason: fmt.Sprintf("CRC mismatch: stored %08x, computed %08x", crc, got)}
	}
	lsn = r.nextLSN
	r.nextLSN++
	r.off += int64(recHeaderSize) + int64(length)
	return lsn, payload, nil
}

// Offset returns the byte offset of the next unread frame — a valid
// resume point for OpenSegmentAt.
func (r *SegmentReader) Offset() int64 { return r.off }

// NextLSN returns the LSN the next Next call would deliver.
func (r *SegmentReader) NextLSN() uint64 { return r.nextLSN }

// Close releases the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// detachScratch hands the reader's payload buffer back to a pooling
// caller (the tail Cursor keeps one across readSegment calls).
func (r *SegmentReader) detachScratch() []byte { return r.scratch }

// attachScratch seeds the payload buffer from a pooling caller.
func (r *SegmentReader) attachScratch(b []byte) { r.scratch = b }
